// imsr_cli — command-line driver for the IMSR pipeline on CSV interaction
// logs. Subcommands:
//
//   generate   --preset=taobao --scale=0.3 --out=log.csv
//              synthesise an interaction log (see data/synthetic.h)
//   stats      --log=log.csv [--spans=6] [--alpha=0.5]
//              Table-II-style statistics of a log
//   pretrain   --log=log.csv --checkpoint=ckpt.bin [--model=dr] [--dim=32]
//              train on the pre-training span, write a checkpoint.
//              --batch_size=B sets the optimizer minibatch (default 64);
//              --batched=false falls back to the per-sample loss loop
//              (bitwise identical at batch_size=1, mainly for debugging)
//   train-span --log=log.csv --checkpoint=ckpt.bin --span=1
//              one incremental IMSR update (EIR+NID+PIT), checkpoint back
//
// Checkpoint-writing commands accept --keep_checkpoints=N to rotate the
// previous checkpoint to ckpt.bin.1 … ckpt.bin.N before saving, so span-t
// state survives even a failed span-t+1 save (saves are additionally
// atomic: tmp file + fsync + rename).
//   evaluate   --log=log.csv --checkpoint=ckpt.bin --test-span=2
//              HR@N / NDCG@N of the stored interests on a span's test
//              items, scored over a published ServingSnapshot (identical
//              to the live-model path bitwise)
//   recommend  --log=log.csv --checkpoint=ckpt.bin --user=5 [--top-n=10]
//              top-N items for one user from the stored interests
//   recommend  --log=log.csv --checkpoint=ckpt.bin
//              --recommend_requests=req.txt --recommend_out=top.csv
//              batch serving: publishes the checkpoint state as a
//              ServingSnapshot and answers every request in req.txt (one
//              "user[,top_n]" per line, '#' comments allowed) through the
//              serve::Recommend fan-out; per-user errors land in the
//              output as error rows, a malformed request line is a usage
//              error. --rule=attentive|max and --threads=N apply.
//   stream     --log=log.csv [--checkpoint=ckpt.bin] [--mode=imsr|ft]
//              online loop: replays the post-pretrain events of the log
//              through prequential (test-then-learn) evaluation — each
//              event is scored against the live ServingSnapshot before a
//              micro-span trainer learns from it and republishes every
//              --publish_every events. --window=N sizes the sliding
//              recall window, --queue_cap=N bounds the ingest queue
//              (full queue blocks the producer), --expand_every=K runs
//              NID/PIT every K publishes, --max_events=N truncates the
//              stream, --curve_out=csv / --summary_out=json export the
//              recall curve and run summary. Without --checkpoint the
//              pre-training span is trained in-process first.
//
// The model configuration (--model, --dim) must match across commands
// that share a checkpoint; optimiser state is rebuilt per invocation (the
// paper's per-span fine-tuning restarts Adam each span as well).
//
// Retrieval (evaluate / recommend / stream): --retrieval=exact|ivf picks
// brute-force or IVF approximate retrieval; under ivf an index is built
// into every published snapshot and --nprobe=N sets the lists probed per
// interest (default: the index's own default). The flag default follows
// the IMSR_RETRIEVAL env var, exact unless set.
//
// Observability (any subcommand): --metrics_out=metrics.json (or .csv)
// exports the metrics registry at exit, --trace_out=trace.json exports a
// chrome://tracing-loadable trace, --metrics_interval=SECONDS rewrites
// the metrics file periodically during long runs. When any of these is
// set a summary table of all recorded metrics is printed at exit.
#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/checkpoint.h"
#include "core/imsr_trainer.h"
#include "data/log_io.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/ranker.h"
#include "obs/obs.h"
#include "obs/session.h"
#include "serve/recommend.h"
#include "serve/registry.h"
#include "serve/snapshot.h"
#include "stream/event_source.h"
#include "stream/prequential.h"
#include "stream/service.h"
#include "stream/stream_trainer.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/shutdown.h"
#include "util/thread_pool.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

int Usage() {
  std::fprintf(
      stderr,
      "usage: imsr_cli <generate|stats|pretrain|train-span|evaluate|"
      "recommend|stream> [--flags]\n"
      "run 'imsr_cli <subcommand> --help' for that subcommand's flags.\n");
  return 2;
}

// --- per-subcommand flag registries -----------------------------------
// Every subcommand builds a util::FlagSet from these helpers, so parsing
// is fallible (typos get suggestions instead of aborts) and
// `imsr_cli <cmd> --help` renders the exact flag table that command
// accepts. The Cmd* bodies read through the FlagSet's legacy-map view,
// which only contains flags that were actually given — dynamic defaults
// (e.g. --span defaulting to the checkpoint's next span) keep working.

// Flags every subcommand accepts: threading + observability exports.
void RegisterObsFlags(util::FlagSet* set) {
  set->AddInt("threads", 0,
              "process-wide worker pool size (0 = hardware threads)");
  set->AddString("metrics_out", "",
                 "write the metrics registry here at exit (.json or .csv)");
  set->AddString("trace_out", "",
                 "write a chrome://tracing trace here at exit");
  set->AddDouble("metrics_interval", 0.0,
                 "rewrite --metrics_out every N seconds while running");
}

void RegisterDatasetFlags(util::FlagSet* set) {
  set->AddString("log", "", "CSV interaction log (required)");
  set->AddInt("spans", 6, "incremental spans to split the log into");
  set->AddDouble("alpha", 0.5, "pre-training fraction of the log");
  set->AddInt("min_interactions", 12,
              "drop users with fewer total interactions");
}

void RegisterModelFlags(util::FlagSet* set) {
  set->AddString("model", "dr",
                 "interest extractor (mind | dr | sa)");
  set->AddInt("dim", 32, "embedding / attention dimension");
}

void RegisterTrainFlags(util::FlagSet* set) {
  set->AddInt("pretrain_epochs", 5, "epochs over the pre-training span");
  set->AddInt("epochs", 3, "epochs per incremental span");
  set->AddInt("batch_size", 64, "optimizer minibatch size");
  set->AddBool("batched", true,
               "minibatched loss (false = per-sample debug loop)");
  set->AddDouble("lr", 0.005, "Adam learning rate");
  set->AddInt("k0", 4, "initial interests per user");
  set->AddDouble("kd", 0.1, "EIR retention coefficient");
  set->AddDouble("c1", 0.06, "NID puzzlement threshold coefficient");
  set->AddDouble("c2", 0.3, "PIT trim threshold coefficient");
  set->AddInt("delta_k", 3, "max interests added per expansion");
  set->AddBool("early_stopping", false, "stop a span on loss plateau");
  set->AddInt("seed", 7, "RNG seed for init and sampling");
}

void RegisterCheckpointFlags(util::FlagSet* set, bool writes) {
  set->AddString("checkpoint", "", "checkpoint file (required)");
  if (writes) {
    set->AddInt("keep_checkpoints", 0,
                "rotate N previous checkpoints before saving");
  }
}

void RegisterRetrievalFlags(util::FlagSet* set) {
  set->AddString("retrieval",
                 serve::RetrievalModeName(serve::DefaultRetrievalMode()),
                 "retrieval mode (exact | ivf); default follows "
                 "IMSR_RETRIEVAL");
  set->AddInt("nprobe", 0,
              "IVF lists probed per interest (omit = index default)");
}

void RegisterRuleFlag(util::FlagSet* set) {
  set->AddString("rule", "attentive", "scoring rule (attentive | max)");
}

// Builds the registry for `command`; false for unknown subcommands.
bool BuildFlagSet(const std::string& command, util::FlagSet* out) {
  if (command == "generate") {
    util::FlagSet set("imsr_cli generate",
                      "synthesise a CSV interaction log");
    set.AddString("preset", "taobao",
                  "dataset preset (taobao | electronics)");
    set.AddDouble("scale", 0.3, "fraction of the preset's full size");
    set.AddInt("seed", 0, "generator seed (omit to keep the preset's)");
    set.AddString("out", "", "output CSV path (required)");
    RegisterObsFlags(&set);
    *out = std::move(set);
    return true;
  }
  if (command == "stats") {
    util::FlagSet set("imsr_cli stats",
                      "Table-II-style statistics of a log");
    RegisterDatasetFlags(&set);
    RegisterObsFlags(&set);
    *out = std::move(set);
    return true;
  }
  if (command == "pretrain" || command == "train-span") {
    util::FlagSet set(
        "imsr_cli " + command,
        command == "pretrain"
            ? "train on the pre-training span, write a checkpoint"
            : "one incremental IMSR update (EIR+NID+PIT)");
    RegisterDatasetFlags(&set);
    RegisterModelFlags(&set);
    RegisterTrainFlags(&set);
    RegisterCheckpointFlags(&set, /*writes=*/true);
    if (command == "train-span") {
      set.AddInt("span", 0,
                 "span to train (omit = next after the checkpoint)");
    }
    RegisterObsFlags(&set);
    *out = std::move(set);
    return true;
  }
  if (command == "evaluate") {
    util::FlagSet set("imsr_cli evaluate",
                      "HR@N / NDCG@N over a published snapshot");
    RegisterDatasetFlags(&set);
    RegisterModelFlags(&set);
    RegisterCheckpointFlags(&set, /*writes=*/false);
    set.AddInt("test_span", 0,
               "span to test (omit = next after the checkpoint)");
    set.AddInt("top_n", 20, "ranking cutoff N");
    RegisterRuleFlag(&set);
    RegisterRetrievalFlags(&set);
    RegisterObsFlags(&set);
    *out = std::move(set);
    return true;
  }
  if (command == "recommend") {
    util::FlagSet set("imsr_cli recommend",
                      "top-N items for one user or a request file");
    RegisterDatasetFlags(&set);
    RegisterModelFlags(&set);
    RegisterCheckpointFlags(&set, /*writes=*/false);
    set.AddInt("user", -1, "user id to recommend for");
    set.AddInt("top_n", 10, "items to return per request");
    set.AddString("recommend_requests", "",
                  "request file ('user[,top_n]' per line) for batch mode");
    set.AddString("recommend_out", "",
                  "output CSV for batch mode (required with requests)");
    RegisterRuleFlag(&set);
    RegisterRetrievalFlags(&set);
    RegisterObsFlags(&set);
    *out = std::move(set);
    return true;
  }
  if (command == "stream") {
    util::FlagSet set("imsr_cli stream",
                      "online prequential loop with live publishes");
    RegisterDatasetFlags(&set);
    RegisterModelFlags(&set);
    RegisterTrainFlags(&set);
    RegisterCheckpointFlags(&set, /*writes=*/false);
    set.AddString("mode", "imsr",
                  "training mode (imsr | ft fine-tuning baseline)");
    set.AddInt("publish_every", 200, "events between snapshot publishes");
    set.AddInt("expand_every", 5, "publishes between NID/PIT expansions");
    set.AddInt("micro_epochs", 1, "epochs per micro-span");
    set.AddInt("top_n", 20, "prequential ranking cutoff N");
    set.AddInt("window", 500, "sliding recall window size");
    set.AddInt("curve_every", 0,
               "curve sample cadence (omit = publish_every / 2)");
    set.AddInt("queue_cap", 1024, "ingest queue bound (full blocks)");
    set.AddInt("max_events", 0, "truncate the stream (0 = all)");
    set.AddBool("threaded", true,
                "run producer and trainer on separate threads");
    set.AddString("curve_out", "", "write the recall curve CSV here");
    set.AddString("summary_out", "", "write the run summary JSON here");
    RegisterRuleFlag(&set);
    RegisterRetrievalFlags(&set);
    RegisterObsFlags(&set);
    *out = std::move(set);
    return true;
  }
  return false;
}

// Fills `config` from --model/--dim; a bad --model value prints the valid
// names and returns false (usage error) instead of aborting.
bool ModelConfigFromFlags(const util::Flags& flags,
                          models::ModelConfig* config) {
  std::string error;
  if (!models::ExtractorKindFromName(flags.GetString("model", "dr"),
                                     &config->kind, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
  }
  config->embedding_dim = flags.GetInt("dim", 32);
  config->attention_dim = flags.GetInt("dim", 32);
  return true;
}

// Reads --rule (attentive | max); a typo prints the valid names and
// returns false.
bool ScoreRuleFromFlags(const util::Flags& flags, eval::ScoreRule* rule) {
  std::string error;
  if (!eval::ScoreRuleFromName(flags.GetString("rule", "attentive"), rule,
                               &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
  }
  return true;
}

// Reads --retrieval (exact | ivf) and --nprobe. The default follows
// IMSR_RETRIEVAL (exact unless set). An unknown --retrieval spelling or
// an explicit --nprobe < 1 is a usage error.
bool RetrievalFromFlags(const util::Flags& flags,
                        serve::RetrievalMode* mode, int* nprobe) {
  std::string error;
  if (!serve::RetrievalModeFromName(
          flags.GetString("retrieval", serve::RetrievalModeName(
                                           serve::DefaultRetrievalMode())),
          mode, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
  }
  const int64_t value = flags.GetInt("nprobe", 0);
  if (flags.Has("nprobe") && value < 1) {
    std::fprintf(stderr, "error: --nprobe must be >= 1\n");
    return false;
  }
  *nprobe = static_cast<int>(value);
  return true;
}

core::TrainConfig TrainConfigFromFlags(const util::Flags& flags) {
  core::TrainConfig config;
  config.pretrain_epochs =
      static_cast<int>(flags.GetInt("pretrain_epochs", 5));
  config.epochs = static_cast<int>(flags.GetInt("epochs", 3));
  config.batch_size = static_cast<int>(
      flags.GetInt("batch_size", config.batch_size));
  config.batched = flags.GetBool("batched", config.batched);
  config.learning_rate =
      static_cast<float>(flags.GetDouble("lr", 0.005));
  config.initial_interests = static_cast<int>(flags.GetInt("k0", 4));
  config.eir.coefficient =
      static_cast<float>(flags.GetDouble("kd", 0.1));
  config.expansion.nid.c1 = flags.GetDouble("c1", 0.06);
  config.expansion.pit.c2 = flags.GetDouble("c2", 0.3);
  config.expansion.delta_k =
      static_cast<int>(flags.GetInt("delta_k", 3));
  config.early_stopping = flags.GetBool("early_stopping", false);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  return config;
}

// Loads the CSV log and builds the span-structured dataset.
bool LoadDataset(const util::Flags& flags,
                 std::unique_ptr<data::Dataset>* dataset) {
  const std::string path = flags.GetString("log", "");
  if (path.empty()) {
    std::fprintf(stderr, "error: --log=<csv> is required\n");
    return false;
  }
  data::InteractionLog log;
  std::string error;
  if (!data::ReadInteractionsCsv(path, &log, &error)) {
    std::fprintf(stderr, "error reading %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  data::CompactIds(&log);
  *dataset = std::make_unique<data::Dataset>(
      log.num_users, log.num_items, std::move(log.interactions),
      static_cast<int>(flags.GetInt("spans", 6)),
      flags.GetDouble("alpha", 0.5),
      static_cast<int>(flags.GetInt("min_interactions", 12)));
  return true;
}

int CmdGenerate(const util::Flags& flags) {
  data::SyntheticConfig config = data::SyntheticConfig::Preset(
      flags.GetString("preset", "taobao"), flags.GetDouble("scale", 0.3));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", config.seed));
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: --out=<csv> is required\n");
    return 2;
  }
  // Re-generate the raw log (the generator emits a Dataset; the shared
  // flattener rebuilds flat interactions from the span structure, laid
  // out so re-splitting with the default alpha=0.5 and the same span
  // count reproduces the structure).
  const data::SyntheticDataset synthetic = GenerateSynthetic(config);
  const std::vector<data::Interaction> interactions =
      FlattenDatasetToLog(*synthetic.dataset);
  if (!WriteInteractionsCsv(out, interactions)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu interactions (%d users, %d items) to %s\n",
              interactions.size(), config.num_users, config.num_items,
              out.c_str());
  return 0;
}

int CmdStats(const util::Flags& flags) {
  std::unique_ptr<data::Dataset> dataset;
  if (!LoadDataset(flags, &dataset)) return 1;
  const data::DatasetStats stats = ComputeStats(*dataset);
  util::Table table({"metric", "value"});
  table.AddRow({"users (kept)", std::to_string(stats.num_users)});
  table.AddRow({"items seen", std::to_string(stats.num_items_seen)});
  table.AddRow({"mean sequence length",
                util::FormatDouble(stats.mean_sequence_length, 1)});
  for (size_t span = 0; span < stats.span_interactions.size(); ++span) {
    table.AddRow({span == 0 ? "pre-training interactions"
                            : "span " + std::to_string(span) +
                                  " interactions",
                  std::to_string(stats.span_interactions[span])});
  }
  std::printf("%s", table.ToPrettyString().c_str());
  return 0;
}

int CmdPretrain(const util::Flags& flags) {
  std::unique_ptr<data::Dataset> dataset;
  if (!LoadDataset(flags, &dataset)) return 1;
  const std::string checkpoint = flags.GetString("checkpoint", "");
  if (checkpoint.empty()) {
    std::fprintf(stderr, "error: --checkpoint=<file> is required\n");
    return 2;
  }
  const core::TrainConfig train = TrainConfigFromFlags(flags);
  models::ModelConfig model_config;
  if (!ModelConfigFromFlags(flags, &model_config)) return 2;
  models::MsrModel model(model_config, dataset->num_items(), train.seed);
  core::InterestStore store;
  core::ImsrTrainer trainer(&model, &store, train);
  trainer.Pretrain(*dataset);
  core::CheckpointMetadata metadata;
  metadata.trained_through_span = 0;
  metadata.note = "imsr_cli pretrain";
  core::RotateCheckpoints(
      checkpoint, static_cast<int>(flags.GetInt("keep_checkpoints", 0)));
  std::string error;
  if (!SaveCheckpoint(checkpoint, model, store, metadata, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("pretrained on span 0 (%lld users with interests); wrote %s\n",
              static_cast<long long>(store.num_users()),
              checkpoint.c_str());
  return 0;
}

int CmdTrainSpan(const util::Flags& flags) {
  std::unique_ptr<data::Dataset> dataset;
  if (!LoadDataset(flags, &dataset)) return 1;
  const std::string checkpoint = flags.GetString("checkpoint", "");
  if (checkpoint.empty()) {
    std::fprintf(stderr, "error: --checkpoint=<file> is required\n");
    return 2;
  }
  const core::TrainConfig train = TrainConfigFromFlags(flags);
  models::ModelConfig model_config;
  if (!ModelConfigFromFlags(flags, &model_config)) return 2;
  models::MsrModel model(model_config, dataset->num_items(), train.seed);
  core::InterestStore store;
  core::CheckpointMetadata metadata;
  std::string error;
  if (!LoadCheckpoint(checkpoint, &model, &store, &metadata, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const int span = static_cast<int>(flags.GetInt(
      "span", metadata.trained_through_span + 1));
  if (span < 1 || span > dataset->num_incremental_spans()) {
    std::fprintf(stderr, "error: --span must be in [1, %d]\n",
                 dataset->num_incremental_spans());
    return 2;
  }
  core::ImsrTrainer trainer(&model, &store, train);
  trainer.TrainSpan(*dataset, span);
  metadata.trained_through_span = span;
  metadata.note = "imsr_cli train-span";
  core::RotateCheckpoints(
      checkpoint, static_cast<int>(flags.GetInt("keep_checkpoints", 0)));
  if (!SaveCheckpoint(checkpoint, model, store, metadata, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "trained span %d (IMSR: +%d interests for %d users, %d trimmed); "
      "avg K %.2f; wrote %s\n",
      span, trainer.expansion_totals().interests_added,
      trainer.expansion_totals().users_expanded,
      trainer.expansion_totals().interests_trimmed,
      store.AverageInterests(), checkpoint.c_str());
  return 0;
}

int CmdEvaluate(const util::Flags& flags) {
  std::unique_ptr<data::Dataset> dataset;
  if (!LoadDataset(flags, &dataset)) return 1;
  const std::string checkpoint = flags.GetString("checkpoint", "");
  if (checkpoint.empty()) {
    std::fprintf(stderr, "error: --checkpoint=<file> is required\n");
    return 2;
  }
  models::ModelConfig model_config;
  if (!ModelConfigFromFlags(flags, &model_config)) return 2;
  models::MsrModel model(model_config, dataset->num_items(), 1);
  core::InterestStore store;
  core::CheckpointMetadata metadata;
  std::string error;
  if (!LoadCheckpoint(checkpoint, &model, &store, &metadata, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  eval::EvalConfig config;
  config.top_n = static_cast<int>(flags.GetInt("top_n", 20));
  if (!ScoreRuleFromFlags(flags, &config.rule)) return 2;
  // <= 0 defers to the process-wide pool size (--threads / IMSR_THREADS).
  config.threads = static_cast<int>(flags.GetInt("threads", 0));
  if (!RetrievalFromFlags(flags, &config.retrieval, &config.nprobe)) {
    return 2;
  }
  const int test_span = static_cast<int>(flags.GetInt(
      "test_span", metadata.trained_through_span + 1));
  // Score over a published snapshot — the exact state the serving path
  // reads, bitwise identical to the live-model path. Under --retrieval=ivf
  // the snapshot carries an index and ranks run serving-accurate.
  serve::SnapshotRegistry registry;
  if (config.retrieval == serve::RetrievalMode::kIVF) {
    registry.Publish(serve::BuildSnapshot(
        model, store, metadata.trained_through_span,
        serve::IvfBuildConfig{}));
  } else {
    registry.Publish(serve::BuildSnapshot(
        model, store, metadata.trained_through_span));
  }
  const eval::EvalResult result =
      EvaluateSpan(*registry.Current(), *dataset, test_span, config);
  std::printf("span %d: HR@%d %.4f  NDCG@%d %.4f  (%lld users, %.1f ms "
              "total)\n",
              test_span, config.top_n, result.metrics.hit_ratio,
              config.top_n, result.metrics.ndcg,
              static_cast<long long>(result.metrics.users),
              result.total_seconds * 1e3);
  if (result.ivf.searches > 0) {
    const double searches = static_cast<double>(result.ivf.searches);
    std::printf("ivf: %lld searches, mean probes %.1f, mean shortlist "
                "%.1f, mean reranked %.1f\n",
                static_cast<long long>(result.ivf.searches),
                static_cast<double>(result.ivf.probes) / searches,
                static_cast<double>(result.ivf.shortlist) / searches,
                static_cast<double>(result.ivf.reranked) / searches);
  }
  return 0;
}

// Parses one "user[,top_n]" request line (surrounding spaces allowed).
// Returns false on any malformed token.
bool ParseRequestLine(const std::string& line,
                      serve::RecommendRequest* request) {
  std::string trimmed = line;
  while (!trimmed.empty() && std::isspace(
             static_cast<unsigned char>(trimmed.back()))) {
    trimmed.pop_back();
  }
  size_t begin = 0;
  while (begin < trimmed.size() && std::isspace(
             static_cast<unsigned char>(trimmed[begin]))) {
    ++begin;
  }
  trimmed = trimmed.substr(begin);
  const size_t comma = trimmed.find(',');
  const std::string user_token = trimmed.substr(0, comma);
  auto parse_int = [](const std::string& token, int64_t* out) {
    const char* first = token.data();
    const char* last = token.data() + token.size();
    auto [ptr, ec] = std::from_chars(first, last, *out);
    return ec == std::errc() && ptr == last && !token.empty();
  };
  int64_t user = 0;
  if (!parse_int(user_token, &user) || user < 0) return false;
  request->user = static_cast<data::UserId>(user);
  request->top_n = 0;
  if (comma != std::string::npos) {
    int64_t top_n = 0;
    if (!parse_int(trimmed.substr(comma + 1), &top_n) || top_n <= 0) {
      return false;
    }
    request->top_n = static_cast<int>(top_n);
  }
  return true;
}

// Batch-serving mode of `recommend`: requests file -> top-N CSV, answered
// from a published ServingSnapshot via the serve::Recommend fan-out.
int RecommendBatch(const util::Flags& flags, const models::MsrModel& model,
                   const core::InterestStore& store,
                   int trained_through_span) {
  const std::string requests_path = flags.GetString("recommend_requests", "");
  const std::string out_path = flags.GetString("recommend_out", "");
  if (out_path.empty()) {
    std::fprintf(stderr,
                 "error: --recommend_requests needs --recommend_out=<csv>\n");
    return 2;
  }
  std::ifstream in(requests_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", requests_path.c_str());
    return 1;
  }
  std::vector<serve::RecommendRequest> requests;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Blank lines and '#' comments are allowed.
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    serve::RecommendRequest request;
    if (!ParseRequestLine(line, &request)) {
      std::fprintf(stderr,
                   "error: %s:%d: malformed request '%s' (expected "
                   "'user[,top_n]')\n",
                   requests_path.c_str(), line_number, line.c_str());
      return 2;
    }
    requests.push_back(request);
  }

  serve::ServeConfig config;
  config.default_top_n = static_cast<int>(flags.GetInt("top_n", 10));
  eval::ScoreRule rule;
  if (!ScoreRuleFromFlags(flags, &rule)) return 2;
  config.rule = rule;
  config.threads = static_cast<int>(flags.GetInt("threads", 0));
  if (!RetrievalFromFlags(flags, &config.retrieval, &config.nprobe)) {
    return 2;
  }

  serve::SnapshotRegistry registry;
  if (config.retrieval == serve::RetrievalMode::kIVF) {
    registry.Publish(serve::BuildSnapshot(model, store,
                                          trained_through_span,
                                          serve::IvfBuildConfig{}));
  } else {
    registry.Publish(serve::BuildSnapshot(model, store,
                                          trained_through_span));
  }
  const std::shared_ptr<const serve::ServingSnapshot> snapshot =
      registry.Current();
  const std::vector<serve::RecommendResponse> responses =
      Recommend(*snapshot, requests, config);

  std::ostringstream out;
  out << "user,rank,item,score\n";
  size_t ok = 0;
  for (const serve::RecommendResponse& response : responses) {
    if (!response.ok) {
      out << response.user << ",error,," << response.error << "\n";
      continue;
    }
    ++ok;
    for (size_t i = 0; i < response.items.size(); ++i) {
      char score[32];
      std::snprintf(score, sizeof(score), "%.6f",
                    static_cast<double>(response.items[i].second));
      out << response.user << "," << (i + 1) << ","
          << response.items[i].first << "," << score << "\n";
    }
  }
  std::ofstream out_file(out_path, std::ios::trunc);
  if (!out_file || !(out_file << out.str()) || !out_file.flush()) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("served %zu requests (%zu ok, %zu failed) from snapshot v%llu "
              "(span %d, %lld users); wrote %s\n",
              responses.size(), ok, responses.size() - ok,
              static_cast<unsigned long long>(snapshot->version()),
              snapshot->trained_through_span(),
              static_cast<long long>(snapshot->num_users()),
              out_path.c_str());
  return 0;
}

// Online serving loop: replays the post-pretrain portion of --log as a
// live stream through the prequential (test-then-learn) protocol. Every
// event is scored against the currently *published* ServingSnapshot
// before the micro-span trainer learns from it; every --publish_every
// events a fresh snapshot is trained and published. --mode=ft selects
// the plain fine-tuning baseline (no retention loss, no expansion, no
// interest persistence) for freshness-vs-retention comparisons.
int CmdStream(const util::Flags& flags) {
  const std::string log_path = flags.GetString("log", "");
  if (log_path.empty()) {
    std::fprintf(stderr, "error: --log=<csv> is required\n");
    return 2;
  }
  data::InteractionLog log;
  std::string error;
  if (!data::ReadInteractionsCsv(log_path, &log, &error)) {
    std::fprintf(stderr, "error reading %s: %s\n", log_path.c_str(),
                 error.c_str());
    return 1;
  }
  data::CompactIds(&log);
  const double alpha = flags.GetDouble("alpha", 0.5);
  std::vector<data::Interaction> interactions = log.interactions;
  data::Dataset dataset(
      log.num_users, log.num_items, std::move(log.interactions),
      static_cast<int>(flags.GetInt("spans", 6)), alpha,
      static_cast<int>(flags.GetInt("min_interactions", 12)));

  core::TrainConfig train = TrainConfigFromFlags(flags);
  const std::string mode = flags.GetString("mode", "imsr");
  if (mode == "ft") {
    train.eir.kind = core::RetentionKind::kNone;
    train.enable_expansion = false;
    train.persist_interests = false;
  } else if (mode != "imsr") {
    std::fprintf(stderr, "error: --mode must be 'imsr' or 'ft'\n");
    return 2;
  }
  models::ModelConfig model_config;
  if (!ModelConfigFromFlags(flags, &model_config)) return 2;

  // Base state: a checkpoint when given, otherwise an in-process
  // pretrain on span 0 of the log.
  models::MsrModel model(model_config, dataset.num_items(), train.seed);
  core::InterestStore store;
  core::CheckpointMetadata metadata;
  const std::string checkpoint = flags.GetString("checkpoint", "");
  if (!checkpoint.empty()) {
    if (!LoadCheckpoint(checkpoint, &model, &store, &metadata, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  } else {
    core::ImsrTrainer pretrainer(&model, &store, train);
    pretrainer.Pretrain(dataset);
    metadata.trained_through_span = 0;
  }

  // The stream: everything after the pre-training window, kept users
  // only (cold ids never earn a dataset entry, matching the batch eval).
  const int64_t boundary =
      stream::PretrainBoundaryTimestamp(interactions, alpha);
  interactions.erase(
      std::remove_if(interactions.begin(), interactions.end(),
                     [&](const data::Interaction& record) {
                       return record.timestamp < boundary ||
                              !dataset.user_kept(record.user);
                     }),
      interactions.end());
  stream::ReplayEventSource source(std::move(interactions), boundary - 1);

  serve::RetrievalMode retrieval;
  int nprobe = 0;
  if (!RetrievalFromFlags(flags, &retrieval, &nprobe)) return 2;

  stream::StreamTrainerConfig trainer_config;
  trainer_config.publish_every = flags.GetInt("publish_every", 200);
  trainer_config.expand_every =
      static_cast<int>(flags.GetInt("expand_every", 5));
  trainer_config.micro_epochs =
      static_cast<int>(flags.GetInt("micro_epochs", 1));
  trainer_config.initial_span =
      static_cast<int>(metadata.trained_through_span);
  trainer_config.train = train;
  // Under IVF every publish (initial included) builds a fresh index into
  // the snapshot; the build cost lands inside the publish latency stats.
  trainer_config.build_index = retrieval == serve::RetrievalMode::kIVF;

  stream::PrequentialConfig eval_config;
  eval_config.top_n = static_cast<int>(flags.GetInt("top_n", 20));
  eval_config.window = flags.GetInt("window", 500);
  eval_config.retrieval = retrieval;
  eval_config.nprobe = nprobe;
  eval_config.curve_every = flags.GetInt(
      "curve_every", std::max<int64_t>(trainer_config.publish_every / 2,
                                       1));
  if (!ScoreRuleFromName(flags.GetString("rule", "attentive"),
                         &eval_config.rule, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  stream::StreamServiceConfig service_config;
  service_config.queue_cap =
      static_cast<size_t>(flags.GetInt("queue_cap", 1024));
  service_config.max_events =
      static_cast<uint64_t>(flags.GetInt("max_events", 0));
  service_config.threaded = flags.GetBool("threaded", true);
  // Ctrl-C / SIGTERM drains the queue, flushes the trainer and still
  // writes --curve_out / --summary_out before exiting 0.
  util::InstallShutdownHandlers();
  service_config.stop = util::ShutdownFlag();

  serve::SnapshotRegistry registry;
  stream::StreamTrainer trainer(&model, &store, &registry, trainer_config);
  stream::PrequentialEvaluator evaluator(eval_config);
  stream::StreamService service(&trainer, &evaluator, &registry,
                                service_config);
  const stream::StreamResult result = service.Run(&source);

  const std::string curve_out = flags.GetString("curve_out", "");
  if (!curve_out.empty()) {
    std::ostringstream curve;
    curve << "last_sequence,scored,window_recall,window_ndcg,"
             "window_count,snapshot_version,staleness_events\n";
    for (const stream::CurvePoint& point : evaluator.curve()) {
      char recall[32], ndcg[32];
      std::snprintf(recall, sizeof(recall), "%.6f", point.window_recall);
      std::snprintf(ndcg, sizeof(ndcg), "%.6f", point.window_ndcg);
      curve << point.last_sequence << "," << point.scored << "," << recall
            << "," << ndcg << "," << point.window_count << ","
            << point.snapshot_version << "," << point.staleness_events
            << "\n";
    }
    std::ofstream out(curve_out, std::ios::trunc);
    if (!out || !(out << curve.str()) || !out.flush()) {
      std::fprintf(stderr, "error: cannot write %s\n", curve_out.c_str());
      return 1;
    }
  }

  const std::string summary_out = flags.GetString("summary_out", "");
  if (!summary_out.empty()) {
    std::ostringstream summary;
    char buffer[64];
    summary << "{\n";
    summary << "  \"mode\": \"" << mode << "\",\n";
    summary << "  \"retrieval\": \"" << serve::RetrievalModeName(retrieval)
            << "\",\n";
    summary << "  \"nprobe\": " << nprobe << ",\n";
    summary << "  \"index_builds\": " << result.index_builds << ",\n";
    summary << "  \"ivf_searches\": " << result.ivf.searches << ",\n";
    summary << "  \"ivf_probes\": " << result.ivf.probes << ",\n";
    summary << "  \"ivf_shortlist\": " << result.ivf.shortlist << ",\n";
    summary << "  \"ivf_reranked\": " << result.ivf.reranked << ",\n";
    summary << "  \"publish_every\": " << trainer_config.publish_every
            << ",\n";
    summary << "  \"window\": " << eval_config.window << ",\n";
    summary << "  \"events\": " << result.events << ",\n";
    summary << "  \"scored\": " << result.scored << ",\n";
    summary << "  \"skipped\": " << result.skipped << ",\n";
    summary << "  \"publishes\": " << result.publishes << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.3f", result.seconds);
    summary << "  \"seconds\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.1f", result.events_per_sec);
    summary << "  \"events_per_sec\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.3f", result.publish_mean_ms);
    summary << "  \"publish_mean_ms\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.3f", result.publish_max_ms);
    summary << "  \"publish_max_ms\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.6f",
                  result.final_window.hit_ratio);
    summary << "  \"final_window_recall\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.6f",
                  result.final_window.ndcg);
    summary << "  \"final_window_ndcg\": " << buffer << ",\n";
    summary << "  \"final_window_count\": "
            << result.final_window.count << ",\n";
    summary << "  \"final_version\": " << result.final_version << ",\n";
    summary << "  \"queue_max_depth\": " << result.queue_max_depth
            << ",\n";
    summary << "  \"blocked_pushes\": " << result.blocked_pushes << "\n";
    summary << "}\n";
    std::ofstream out(summary_out, std::ios::trunc);
    if (!out || !(out << summary.str()) || !out.flush()) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   summary_out.c_str());
      return 1;
    }
  }

  std::printf(
      "streamed %llu events (%lld scored, %lld skipped) in %.2fs "
      "(%.0f ev/s); %llu publishes (mean %.1f ms, max %.1f ms); final "
      "window HR@%d %.4f NDCG@%d %.4f over %lld events; snapshot v%llu\n",
      static_cast<unsigned long long>(result.events),
      static_cast<long long>(result.scored),
      static_cast<long long>(result.skipped), result.seconds,
      result.events_per_sec,
      static_cast<unsigned long long>(result.publishes),
      result.publish_mean_ms, result.publish_max_ms, eval_config.top_n,
      result.final_window.hit_ratio, eval_config.top_n,
      result.final_window.ndcg,
      static_cast<long long>(result.final_window.count),
      static_cast<unsigned long long>(result.final_version));
  return 0;
}

int CmdRecommend(const util::Flags& flags) {
  std::unique_ptr<data::Dataset> dataset;
  if (!LoadDataset(flags, &dataset)) return 1;
  const std::string checkpoint = flags.GetString("checkpoint", "");
  if (checkpoint.empty()) {
    std::fprintf(stderr, "error: --checkpoint=<file> is required\n");
    return 2;
  }
  models::ModelConfig model_config;
  if (!ModelConfigFromFlags(flags, &model_config)) return 2;
  models::MsrModel model(model_config, dataset->num_items(), 1);
  core::InterestStore store;
  core::CheckpointMetadata metadata;
  std::string error;
  if (!LoadCheckpoint(checkpoint, &model, &store, &metadata, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (flags.Has("recommend_requests")) {
    return RecommendBatch(flags, model, store,
                          metadata.trained_through_span);
  }
  const auto user =
      static_cast<data::UserId>(flags.GetInt("user", -1));
  if (user < 0 || !store.Has(user)) {
    std::fprintf(stderr,
                 "error: --user=<id> must name a user with interests\n");
    return 2;
  }
  serve::RetrievalMode retrieval;
  int nprobe = 0;
  if (!RetrievalFromFlags(flags, &retrieval, &nprobe)) return 2;
  const int top_n = static_cast<int>(flags.GetInt("top_n", 10));
  std::vector<std::pair<data::ItemId, float>> top;
  if (retrieval == serve::RetrievalMode::kIVF) {
    // Same answer path production would take: snapshot + index + the
    // serve::Recommend shortlist/re-rank machinery.
    serve::SnapshotRegistry registry;
    registry.Publish(serve::BuildSnapshot(
        model, store, metadata.trained_through_span,
        serve::IvfBuildConfig{}));
    serve::ServeConfig config;
    config.default_top_n = top_n;
    config.retrieval = retrieval;
    config.nprobe = nprobe;
    const std::vector<serve::RecommendResponse> responses = Recommend(
        *registry.Current(), {serve::RecommendRequest{user, top_n}},
        config);
    top = responses.front().items;
  } else {
    top = eval::TopNItems(
        store.Interests(user), model.embeddings().parameter().value(),
        top_n, eval::ScoreRule::kAttentive);
  }
  std::printf("user %d (K=%lld interests):\n", user,
              static_cast<long long>(store.NumInterests(user)));
  for (size_t i = 0; i < top.size(); ++i) {
    std::printf("  %2zu. item %-8d score %.4f\n", i + 1, top[i].first,
                top[i].second);
  }
  return 0;
}

}  // namespace

int Dispatch(const std::string& command, const util::Flags& flags) {
  if (command == "generate") return CmdGenerate(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "pretrain") return CmdPretrain(flags);
  if (command == "train-span") return CmdTrainSpan(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "recommend") return CmdRecommend(flags);
  if (command == "stream") return CmdStream(flags);
  return Usage();
}

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    Usage();
    return 0;
  }
  util::FlagSet flag_set("imsr_cli", "");
  if (!BuildFlagSet(command, &flag_set)) return Usage();
  std::string parse_error;
  if (!flag_set.Parse(argc - 2, argv + 2, &parse_error)) {
    std::fprintf(stderr, "error: %s\n", parse_error.c_str());
    std::fprintf(stderr, "run 'imsr_cli %s --help' for the flag list\n",
                 command.c_str());
    return 2;
  }
  if (flag_set.help_requested()) {
    std::printf("%s", flag_set.HelpText().c_str());
    return 0;
  }
  const util::Flags& flags = flag_set.flags();
  util::ApplyThreadFlag(flags);  // --threads=N sizes the process-wide pool
  // The session enables tracing / periodic metric flushing while the
  // command runs; its destructor (after the command's spans close) writes
  // the final exports and prints the summary table.
  obs::ObsSession obs_session(obs::ObsOptionsFromFlags(flags));
  int status = 0;
  {
    IMSR_TRACE_SPAN("cli/command");
    status = Dispatch(command, flags);
  }
  return status;
}
