#!/bin/sh
# Corpus-scale retrieval benchmark: runs the exact-vs-IVF section of
# bench/bench_serve once per corpus size and writes BENCH_PR8.json at the
# repo root — index build cost vs corpus size, Recommend throughput in
# exact and IVF mode (same snapshot, same requests), recall@top_n of the
# probe against the brute-force oracle, and the probe/shortlist/re-rank
# accounting.
#
# Every size runs in its own process so the timed passes see a cold
# snapshot; within a process the QPS numbers are best-of-three after a
# warm-up (scheduler noise only ever slows a pass down).
#
# Usage: tools/bench_pr8.sh [bench_serve-binary] [output-json]
#   BENCH_IVF_SIZES="a b ..."  corpus sizes (default "10000 100000 1000000")
#   BENCH_IVF_REQUESTS=<n>     timed Recommend batch (default 256)
#   BENCH_IVF_RECALL=<n>       oracle recall queries (default 100)
set -eu

BENCH="${1:-build/bench/bench_serve}"
OUT="${2:-BENCH_PR8.json}"
SIZES="${BENCH_IVF_SIZES:-10000 100000 1000000}"
REQUESTS="${BENCH_IVF_REQUESTS:-256}"
RECALL="${BENCH_IVF_RECALL:-100}"

if [ ! -x "$BENCH" ]; then
  echo "bench_pr8.sh: bench binary not found: $BENCH" >&2
  echo "build it first: cmake --build build --target bench_serve" >&2
  exit 1
fi
if ! command -v jq >/dev/null 2>&1; then
  echo "bench_pr8.sh: jq is required" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

for size in $SIZES; do
  # --scale=0.001 shrinks the publish/throughput sections to noise-level
  # cost; this run is about section 3 (exact vs IVF).
  "$BENCH" --scale=0.001 --requests=16 --threads=0 \
    --ivf_sizes="$size" --ivf_requests="$REQUESTS" \
    --ivf_recall_queries="$RECALL" \
    --json_out="$TMP_DIR/ivf.$size.json" >/dev/null
done

jq -s '
  {
    pr: ("Corpus-scale serving: IVF index + int8 quantized scoring, "
         + "exact float re-rank"),
    description: ("bench_serve exact-vs-IVF on a clustered corpus: one "
                  + "indexed snapshot per size, identical Recommend "
                  + "batches through both retrieval modes (pool "
                  + "threads), recall@top_n against the brute-force "
                  + "oracle at the default nprobe. Returned IVF scores "
                  + "are bitwise-exact float re-rank scores; only "
                  + "candidate selection is approximate."),
    sizes: add
  }
' "$TMP_DIR"/ivf.*.json > "$OUT"

echo "wrote $OUT"
jq -r '.sizes[] |
       "\(.items) items: build \(.index_build_ms) ms, " +
       "exact \(.exact_qps) qps, ivf \(.ivf_qps) qps " +
       "(\(.speedup)x), recall@\(.top_n) \(.recall_at_top_n) " +
       "at nprobe \(.nprobe)"' "$OUT"
