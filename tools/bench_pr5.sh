#!/bin/sh
# Runs the training-step benchmarks (bench/bench_train) and writes
# BENCH_PR5.json at the repo root: per-benchmark before/after times and
# speedups for the memory-subsystem work (DESIGN.md section 10).
#
# The "before" numbers are the recorded pre-change baseline (commit
# add1994, RelWithDebInfo, single-core container); the "after" numbers
# come from the run this script performs. Compare on the same machine
# configuration for the speedups to be meaningful.
#
# Usage: tools/bench_pr5.sh [bench_train-binary] [output-json]
#   BENCH_MIN_TIME=<seconds> overrides the per-benchmark minimum runtime.
set -eu

BENCH="${1:-build/bench/bench_train}"
OUT="${2:-BENCH_PR5.json}"
MIN_TIME="${BENCH_MIN_TIME:-2}"

if [ ! -x "$BENCH" ]; then
  echo "bench_pr5.sh: benchmark binary not found: $BENCH" >&2
  echo "build it first: cmake --build build --target bench_train" >&2
  exit 1
fi
if ! command -v jq >/dev/null 2>&1; then
  echo "bench_pr5.sh: jq is required" >&2
  exit 1
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

"$BENCH" --benchmark_min_time="$MIN_TIME" --benchmark_format=json \
  > "$TMP"

jq '
  # Pre-change baseline, nanoseconds (recorded at commit add1994).
  def baseline_ns: {
    "BM_SampleLoss/32":      7253,
    "BM_SampleLoss/64":      9340,
    "BM_TrainEpochStep/32":  102000000,
    "BM_TrainEpochStep/64":  205000000,
    "BM_ValidationLoss":     1590000
  };
  def to_ns: if .time_unit == "ms" then .real_time * 1e6
             elif .time_unit == "us" then .real_time * 1e3
             else .real_time end;
  {
    pr: "zero-allocation steady-state training",
    description: ("Pooled tensor storage + arena-backed autograd graphs; "
                  + "before = pre-change baseline at commit add1994, "
                  + "after = this run."),
    context: .context,
    benchmarks: [
      .benchmarks[]
      | select(.run_type != "aggregate")
      | {name: .name, after_ns: to_ns}
      | . + {before_ns: baseline_ns[.name]}
      | . + {speedup: (if .before_ns != null
                       then (.before_ns / .after_ns * 100 | round / 100)
                       else null end)}
    ]
  }
' "$TMP" > "$OUT"

echo "wrote $OUT"
jq -r '.benchmarks[] |
       "\(.name): \(.before_ns // "n/a") -> \(.after_ns) ns" +
       (if .speedup then "  (\(.speedup)x)" else "" end)' "$OUT"
