// imsr_loadgen — load harness for imsr_serve: replays a heavy-traffic
// request mix over C concurrent connections and reports throughput and
// latency quantiles from obs histograms.
//
// Traffic shape:
//   * user ids drawn Zipf(--zipf) over [0, --users) — hot-user skew, the
//     YCSB-style generator, so a few users dominate exactly like
//     production fan-in (0 = uniform);
//   * closed loop (default) with --depth outstanding requests per
//     connection, or open loop with --rate=N: Poisson arrivals at N
//     aggregate req/s, sends never gated on responses, latency measured
//     from the *scheduled* arrival time so a slow server inflates the
//     tail instead of silently thinning the load (no coordinated
//     omission);
//   * optional bursts (closed loop): every --burst_every responses a
//     connection fires --burst_size extra requests beyond its depth
//     window, probing the server's admission control.
//
// Every response is validated: the request_id must match an in-flight
// request, ok responses must carry exactly top_n items with scores in
// descending order. Any violation (or a framing/CRC error) is a
// *failure* and makes the exit status non-zero — the CI load-smoke
// asserts zero failures across a mid-flight snapshot publish.
//
// Latencies are recorded into the obs metrics registry
// ("loadgen/latency_ms", dense geometric buckets) and the p50/p99/p99.9
// estimates come from obs::HistogramQuantile over its snapshot — the
// same estimator the server's own metrics exports use.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/session.h"
#include "serve/protocol.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)
using Clock = std::chrono::steady_clock;

// YCSB-style bounded Zipfian generator: rank r is drawn with probability
// proportional to 1/r^theta over [0, n). theta in (0, 1); hot items are
// the low ids.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
    zeta_n_ = Zeta(n, theta);
    const double zeta2 = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zeta_n_);
  }

  uint64_t Next(util::Rng* rng) const {
    const double u = rng->NextDouble();
    const double uz = u * zeta_n_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zeta_n_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

// Dense geometric latency buckets: 10us .. 10s at ~10% resolution, so
// interpolated quantiles are accurate to a few percent.
std::vector<double> DenseLatencyBoundsMs() {
  std::vector<double> bounds;
  for (double edge = 0.01; edge <= 10000.0; edge *= 1.1) {
    bounds.push_back(edge);
  }
  return bounds;
}

struct WorkerStats {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;      // kError responses (e.g. unknown user)
  uint64_t overloaded = 0;  // admission-control rejections
  uint64_t failures = 0;    // protocol violations / bad responses
  std::string first_failure;
};

struct LoadConfig {
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;
  uint64_t quota = 0;  // requests this connection must send
  int depth = 8;
  uint64_t users = 0;
  double zipf = 0.0;
  int top_n = 10;
  uint64_t burst_every = 0;
  uint64_t burst_size = 0;
  uint64_t seed = 1;
  // Open-loop mode: this connection's Poisson arrival rate in req/s
  // (the aggregate --rate split across connections). 0 = closed loop.
  double rate = 0.0;
};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Per-connection RNG seed: splitmix64 over (seed, worker) decorrelates
// the streams completely — a linear offset would hand neighbouring
// workers overlapping Zipf/user/gap sequences — while staying a pure
// function of --seed, so a bench cell replays its exact traffic.
uint64_t WorkerSeed(uint64_t seed, int worker_id) {
  return SplitMix64(seed ^
                    SplitMix64(static_cast<uint64_t>(worker_id) + 1));
}

// Counts one validated response into `stats` (shared by the closed- and
// open-loop workers, so the two modes enforce the identical response
// contract).
void CountResponse(const serve::ResponseFrame& response, int top_n,
                   WorkerStats* stats) {
  const auto fail = [&](const std::string& why) {
    stats->failures++;
    if (stats->first_failure.empty()) stats->first_failure = why;
  };
  switch (response.status) {
    case serve::ResponseStatus::kOk: {
      bool sorted = true;
      for (size_t i = 1; i < response.items.size(); ++i) {
        if (response.items[i].second > response.items[i - 1].second) {
          sorted = false;
        }
      }
      if (response.items.size() != static_cast<size_t>(top_n)) {
        fail("ok response with " + std::to_string(response.items.size()) +
             " items, want " + std::to_string(top_n));
      } else if (!sorted) {
        fail("ok response with unsorted scores");
      } else {
        ++stats->ok;
      }
      break;
    }
    case serve::ResponseStatus::kError:
      ++stats->errors;
      break;
    case serve::ResponseStatus::kOverloaded:
    case serve::ResponseStatus::kShuttingDown:
      ++stats->overloaded;
      break;
  }
}

int ConnectServer(const LoadConfig& config, std::string* error) {
  int fd = -1;
  if (!config.unix_path.empty()) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::strerror(errno);
      return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      *error = "connect " + config.unix_path + ": " + std::strerror(errno);
      ::close(fd);
      return -1;
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::strerror(errno);
      return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(config.port));
    ::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      *error = "connect port " + std::to_string(config.port) + ": " +
               std::strerror(errno);
      ::close(fd);
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

bool SendAll(int fd, const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// One closed-loop connection. Returns when its quota is sent and every
// outstanding request got a response (or on a fatal failure).
void RunWorker(const LoadConfig& config, int worker_id,
               const ZipfGenerator* zipf, obs::Histogram* latency,
               WorkerStats* stats) {
  std::string error;
  const int fd = ConnectServer(config, &error);
  if (fd < 0) {
    stats->failures++;
    stats->first_failure = error;
    return;
  }
  util::Rng rng(WorkerSeed(config.seed, worker_id));
  std::unordered_map<uint64_t, Clock::time_point> in_flight;
  uint64_t next_sequence = 0;
  const uint64_t id_base = static_cast<uint64_t>(worker_id) << 40;

  const auto fail = [&](const std::string& why) {
    stats->failures++;
    if (stats->first_failure.empty()) stats->first_failure = why;
  };
  const auto send_one = [&]() -> bool {
    serve::RequestFrame request;
    request.request_id = id_base | next_sequence;
    request.user = static_cast<data::UserId>(
        zipf != nullptr ? zipf->Next(&rng)
                        : rng.NextBelow(config.users));
    request.top_n = config.top_n;
    const Clock::time_point now = Clock::now();
    if (!SendAll(fd, EncodeRequest(request))) {
      fail("send failed: " + std::string(std::strerror(errno)));
      return false;
    }
    in_flight.emplace(request.request_id, now);
    ++next_sequence;
    ++stats->sent;
    return true;
  };

  serve::FrameAssembler assembler;
  uint64_t received = 0;
  bool fatal = false;
  while (!fatal &&
         (stats->sent < config.quota || !in_flight.empty())) {
    // Top up the window (bursts overshoot it deliberately).
    while (stats->sent < config.quota &&
           in_flight.size() < static_cast<size_t>(config.depth)) {
      if (!send_one()) {
        fatal = true;
        break;
      }
    }
    if (fatal || in_flight.empty()) break;
    uint8_t buffer[64 * 1024];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n == 0) {
      fail("server closed connection with " +
           std::to_string(in_flight.size()) + " in flight");
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("recv failed: " + std::string(std::strerror(errno)));
      break;
    }
    assembler.Append(buffer, static_cast<size_t>(n));
    std::vector<uint8_t> payload;
    for (;;) {
      const serve::FrameAssembler::Result result =
          assembler.Next(&payload, &error);
      if (result == serve::FrameAssembler::Result::kNeedMore) break;
      if (result == serve::FrameAssembler::Result::kError) {
        fail("framing error: " + error);
        fatal = true;
        break;
      }
      serve::ResponseFrame response;
      if (!serve::TryDecodeResponse(payload, &response, &error)) {
        fail("decode error: " + error);
        fatal = true;
        break;
      }
      const auto it = in_flight.find(response.request_id);
      if (it == in_flight.end()) {
        fail("response for unknown request_id " +
             std::to_string(response.request_id));
        fatal = true;
        break;
      }
      const double millis =
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    it->second)
              .count();
      in_flight.erase(it);
      latency->Record(millis);
      ++received;
      CountResponse(response, config.top_n, stats);
      // Burst injection: deliberately overshoot the depth window.
      if (config.burst_every > 0 && received % config.burst_every == 0) {
        for (uint64_t b = 0;
             b < config.burst_size && stats->sent < config.quota; ++b) {
          if (!send_one()) {
            fatal = true;
            break;
          }
        }
      }
      if (fatal) break;
    }
  }
  ::close(fd);
}

// One open-loop connection: Poisson arrivals at config.rate req/s.
// Sends are driven purely by the arrival schedule — never gated on
// responses — and each latency sample is measured from the request's
// *scheduled* arrival time, so queueing delay behind a slow send or a
// saturated server counts against the tail instead of being silently
// absorbed (the coordinated-omission fix). Returns when the quota is
// sent and everything outstanding got a response.
void RunOpenWorker(const LoadConfig& config, int worker_id,
                   const ZipfGenerator* zipf, obs::Histogram* latency,
                   WorkerStats* stats) {
  std::string error;
  const int fd = ConnectServer(config, &error);
  if (fd < 0) {
    stats->failures++;
    stats->first_failure = error;
    return;
  }
  util::Rng rng(WorkerSeed(config.seed, worker_id));
  std::unordered_map<uint64_t, Clock::time_point> in_flight;
  uint64_t next_sequence = 0;
  const uint64_t id_base = static_cast<uint64_t>(worker_id) << 40;
  const auto fail = [&](const std::string& why) {
    stats->failures++;
    if (stats->first_failure.empty()) stats->first_failure = why;
  };
  // Exponential inter-arrival gap for a Poisson process at config.rate.
  const auto next_gap = [&]() {
    const double u = rng.NextDouble();
    const double gap_s =
        -std::log(1.0 - u) / std::max(config.rate, 1e-9);
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gap_s));
  };
  const auto send_scheduled = [&](Clock::time_point scheduled) -> bool {
    serve::RequestFrame request;
    request.request_id = id_base | next_sequence;
    request.user = static_cast<data::UserId>(
        zipf != nullptr ? zipf->Next(&rng) : rng.NextBelow(config.users));
    request.top_n = config.top_n;
    if (!SendAll(fd, EncodeRequest(request))) {
      fail("send failed: " + std::string(std::strerror(errno)));
      return false;
    }
    in_flight.emplace(request.request_id, scheduled);
    ++next_sequence;
    ++stats->sent;
    return true;
  };

  serve::FrameAssembler assembler;
  bool fatal = false;
  Clock::time_point next_send = Clock::now();
  while (!fatal && (stats->sent < config.quota || !in_flight.empty())) {
    // Fire everything whose scheduled arrival has passed (catch-up
    // sends go back-to-back — the schedule, not the server, is the
    // clock).
    Clock::time_point now = Clock::now();
    while (stats->sent < config.quota && now >= next_send) {
      if (!send_scheduled(next_send)) {
        fatal = true;
        break;
      }
      next_send += next_gap();
    }
    if (fatal) break;
    if (in_flight.empty() && stats->sent >= config.quota) break;
    // Wait for responses until the next scheduled send (capped so the
    // loop stays responsive around sparse schedules).
    int timeout_ms = 100;
    if (stats->sent < config.quota) {
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
          next_send - Clock::now());
      timeout_ms = static_cast<int>(
          std::min<int64_t>(100, std::max<int64_t>(0, until.count())));
    }
    pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail("poll failed: " + std::string(std::strerror(errno)));
      break;
    }
    if (ready == 0) continue;
    uint8_t buffer[64 * 1024];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n == 0) {
      fail("server closed connection with " +
           std::to_string(in_flight.size()) + " in flight");
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("recv failed: " + std::string(std::strerror(errno)));
      break;
    }
    assembler.Append(buffer, static_cast<size_t>(n));
    std::vector<uint8_t> payload;
    for (;;) {
      const serve::FrameAssembler::Result result =
          assembler.Next(&payload, &error);
      if (result == serve::FrameAssembler::Result::kNeedMore) break;
      if (result == serve::FrameAssembler::Result::kError) {
        fail("framing error: " + error);
        fatal = true;
        break;
      }
      serve::ResponseFrame response;
      if (!serve::TryDecodeResponse(payload, &response, &error)) {
        fail("decode error: " + error);
        fatal = true;
        break;
      }
      const auto it = in_flight.find(response.request_id);
      if (it == in_flight.end()) {
        fail("response for unknown request_id " +
             std::to_string(response.request_id));
        fatal = true;
        break;
      }
      const double millis = std::chrono::duration<double, std::milli>(
                                Clock::now() - it->second)
                                .count();
      in_flight.erase(it);
      latency->Record(millis);
      CountResponse(response, config.top_n, stats);
    }
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags("imsr_loadgen",
                      "closed-loop load harness for imsr_serve");
  flags.AddString("socket", "", "server unix-domain socket path");
  flags.AddString("host", "127.0.0.1", "server host (tcp)");
  flags.AddInt("port", 0, "server tcp port (when --socket is empty)");
  flags.AddInt("connections", 4, "concurrent client connections");
  flags.AddInt("depth", 8,
               "outstanding requests per connection (closed loop)");
  flags.AddDouble("rate", 0.0,
                  "open-loop Poisson arrival rate in req/s across all "
                  "connections (0 = closed loop)");
  flags.AddInt("requests", 10000, "total requests across all connections");
  flags.AddInt("users", 100000, "user id space [0, N)");
  flags.AddDouble("zipf", 0.99,
                  "Zipf skew theta in (0,1); 0 = uniform user draw");
  flags.AddInt("top_n", 10, "items requested per query");
  flags.AddInt("burst_every", 0,
               "every K responses fire a burst (0 = no bursts)");
  flags.AddInt("burst_size", 0, "extra requests per burst");
  flags.AddInt("seed", 1, "traffic RNG seed");
  flags.AddString("json_out", "", "write the results JSON here");
  flags.AddString("metrics_out", "",
                  "write the metrics registry here at exit");
  flags.AddString("trace_out", "", "write a tracing export here at exit");
  flags.AddDouble("metrics_interval", 0.0,
                  "rewrite --metrics_out every N seconds while running");

  std::string parse_error;
  if (!flags.Parse(argc - 1, argv + 1, &parse_error)) {
    std::fprintf(stderr, "error: %s\nrun 'imsr_loadgen --help'\n",
                 parse_error.c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpText().c_str());
    return 0;
  }
  obs::ObsSession obs_session(obs::ObsOptionsFromFlags(flags.flags()));

  LoadConfig config;
  config.unix_path = flags.GetString("socket");
  config.host = flags.GetString("host");
  config.port = static_cast<int>(flags.GetInt("port"));
  config.depth = static_cast<int>(flags.GetInt("depth"));
  config.users = static_cast<uint64_t>(flags.GetInt("users"));
  config.zipf = flags.GetDouble("zipf");
  config.top_n = static_cast<int>(flags.GetInt("top_n"));
  config.burst_every = static_cast<uint64_t>(flags.GetInt("burst_every"));
  config.burst_size = static_cast<uint64_t>(flags.GetInt("burst_size"));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const double rate = flags.GetDouble("rate");
  const int connections = static_cast<int>(flags.GetInt("connections"));
  const uint64_t total_requests =
      static_cast<uint64_t>(flags.GetInt("requests"));
  if (config.unix_path.empty() && config.port == 0) {
    std::fprintf(stderr, "error: need --socket or --port\n");
    return 2;
  }
  if (connections < 1 || config.depth < 1 || config.users == 0) {
    std::fprintf(stderr,
                 "error: --connections, --depth and --users must be "
                 "positive\n");
    return 2;
  }
  if (config.zipf >= 1.0) {
    std::fprintf(stderr, "error: --zipf must be in [0, 1)\n");
    return 2;
  }
  if (rate < 0.0) {
    std::fprintf(stderr, "error: --rate must be >= 0\n");
    return 2;
  }
  const bool open_loop = rate > 0.0;
  if (open_loop) config.rate = rate / connections;

  std::unique_ptr<ZipfGenerator> zipf;
  if (config.zipf > 0.0) {
    zipf = std::make_unique<ZipfGenerator>(config.users, config.zipf);
  }
  // Direct registry use (not the macros) so latency recording works in
  // every build, including -DIMSR_OBS=OFF.
  obs::Histogram* latency = &obs::Registry().GetHistogram(
      "loadgen/latency_ms", DenseLatencyBoundsMs());

  std::vector<WorkerStats> stats(static_cast<size_t>(connections));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(connections));
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < connections; ++i) {
    LoadConfig worker_config = config;
    worker_config.quota = total_requests / connections +
                          (static_cast<uint64_t>(i) <
                                   total_requests % connections
                               ? 1
                               : 0);
    workers.emplace_back(open_loop ? RunOpenWorker : RunWorker,
                         worker_config, i, zipf.get(), latency,
                         &stats[static_cast<size_t>(i)]);
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  WorkerStats total;
  for (const WorkerStats& w : stats) {
    total.sent += w.sent;
    total.ok += w.ok;
    total.errors += w.errors;
    total.overloaded += w.overloaded;
    total.failures += w.failures;
    if (total.first_failure.empty() && !w.first_failure.empty()) {
      total.first_failure = w.first_failure;
    }
  }
  // Quantiles from the obs histogram snapshot — the exporter's own
  // estimator (HistogramQuantile), not a second implementation.
  obs::HistogramSnapshot latency_snapshot;
  for (const obs::HistogramSnapshot& histogram :
       obs::Registry().Snapshot().histograms) {
    if (histogram.name == "loadgen/latency_ms") {
      latency_snapshot = histogram;
    }
  }
  const double p50 = obs::HistogramQuantile(latency_snapshot, 0.50);
  const double p99 = obs::HistogramQuantile(latency_snapshot, 0.99);
  const double p999 = obs::HistogramQuantile(latency_snapshot, 0.999);
  const double qps =
      elapsed > 0.0 ? static_cast<double>(total.sent) / elapsed : 0.0;
  const double mean_ms =
      latency_snapshot.count > 0
          ? latency_snapshot.sum / static_cast<double>(latency_snapshot.count)
          : 0.0;

  std::printf(
      "sent %llu requests over %d connections in %.2fs: %.0f req/s\n"
      "responses: %llu ok, %llu error, %llu overloaded, %llu FAILED\n"
      "latency ms: mean %.3f  p50 %.3f  p99 %.3f  p99.9 %.3f  max %.3f\n",
      static_cast<unsigned long long>(total.sent), connections, elapsed,
      qps, static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.errors),
      static_cast<unsigned long long>(total.overloaded),
      static_cast<unsigned long long>(total.failures), mean_ms, p50, p99,
      p999, latency_snapshot.max);
  if (total.failures > 0) {
    std::fprintf(stderr, "first failure: %s\n",
                 total.first_failure.c_str());
  }

  const std::string json_out = flags.GetString("json_out");
  if (!json_out.empty()) {
    std::ostringstream json;
    char buffer[64];
    json << "{\n";
    json << "  \"mode\": \"" << (open_loop ? "open" : "closed")
         << "\",\n";
    std::snprintf(buffer, sizeof(buffer), "%.1f", rate);
    json << "  \"rate\": " << buffer << ",\n";
    json << "  \"connections\": " << connections << ",\n";
    json << "  \"depth\": " << config.depth << ",\n";
    json << "  \"users\": " << config.users << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.3f", config.zipf);
    json << "  \"zipf\": " << buffer << ",\n";
    json << "  \"top_n\": " << config.top_n << ",\n";
    json << "  \"sent\": " << total.sent << ",\n";
    json << "  \"ok\": " << total.ok << ",\n";
    json << "  \"errors\": " << total.errors << ",\n";
    json << "  \"overloaded\": " << total.overloaded << ",\n";
    json << "  \"failures\": " << total.failures << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.3f", elapsed);
    json << "  \"elapsed_s\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.1f", qps);
    json << "  \"qps\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.4f", mean_ms);
    json << "  \"mean_ms\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.4f", p50);
    json << "  \"p50_ms\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.4f", p99);
    json << "  \"p99_ms\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.4f", p999);
    json << "  \"p999_ms\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.4f", latency_snapshot.max);
    json << "  \"max_ms\": " << buffer << "\n";
    json << "}\n";
    std::ofstream out(json_out, std::ios::trunc);
    if (!out || !(out << json.str()) || !out.flush()) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 1;
    }
  }
  return total.failures == 0 ? 0 : 1;
}
