#!/bin/sh
# Runs the training benchmarks (bench/bench_train) plus the serving-side
# kernels the SIMD work touches (bench/bench_micro_ops: MatMulTransB and
# the corpus-ranking loops built on it) and writes BENCH_PR6.json at the
# repo root: per-benchmark before/after times and speedups for the
# vectorized kernels + minibatched training path (DESIGN.md section 11).
#
# The "before" numbers are the recorded pre-change baseline (commit
# a1df90c, RelWithDebInfo, single-core container); the "after" numbers
# come from the run this script performs. Compare on the same machine
# configuration for the speedups to be meaningful.
#
# Usage: tools/bench_pr6.sh [bench-binary-dir] [output-json]
#   BENCH_MIN_TIME=<seconds> overrides the per-benchmark minimum runtime.
#   BENCH_REPEATS=<n> runs each binary n times and keeps the fastest
#   sample per benchmark — the noise floor is the comparable statistic on
#   machines whose effective clock drifts between runs.
set -eu

BENCH_DIR="${1:-build/bench}"
OUT="${2:-BENCH_PR6.json}"
MIN_TIME="${BENCH_MIN_TIME:-2}"
REPEATS="${BENCH_REPEATS:-3}"

for binary in bench_train bench_micro_ops; do
  if [ ! -x "$BENCH_DIR/$binary" ]; then
    echo "bench_pr6.sh: benchmark binary not found: $BENCH_DIR/$binary" >&2
    echo "build it first: cmake --build build --target $binary" >&2
    exit 1
  fi
done
if ! command -v jq >/dev/null 2>&1; then
  echo "bench_pr6.sh: jq is required" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

i=0
while [ "$i" -lt "$REPEATS" ]; do
  "$BENCH_DIR/bench_train" --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=json > "$TMP_DIR/train.$i.json"
  "$BENCH_DIR/bench_micro_ops" --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=json \
    --benchmark_filter='BM_MatMulTransB|BM_FullCorpusRanking|BM_RankAllUsers' \
    > "$TMP_DIR/micro.$i.json"
  i=$((i + 1))
done

jq -s '
  # Pre-change baseline, nanoseconds (recorded at commit a1df90c).
  def baseline_ns: {
    "BM_SampleLoss/32":         5097,
    "BM_SampleLoss/64":         6203,
    "BM_TrainEpochStep/32":     38954392,
    "BM_TrainEpochStep/64":     106777757,
    "BM_ValidationLoss":        811183,
    "BM_MatMulTransB/16":       2966,
    "BM_MatMulTransB/64":       11903,
    "BM_MatMulTransB/256":      48600,
    "BM_FullCorpusRanking/1000": 80766,
    "BM_FullCorpusRanking/4000": 278494,
    "BM_RankAllUsers/1000":     4526450,
    "BM_RankAllUsers/4000":     17727562
  };
  def to_ns: if .time_unit == "ms" then .real_time * 1e6
             elif .time_unit == "us" then .real_time * 1e3
             else .real_time end;
  {
    pr: "SIMD-vectorized kernels + minibatched training path",
    description: ("omp-simd annotated kernels (scalar fallback via "
                  + "-DIMSR_SIMD=OFF or IMSR_SIMD=off) and a fused "
                  + "minibatched sampled-softmax training step; before = "
                  + "pre-change baseline at commit a1df90c, after = this "
                  + "run."),
    context: .[0].context,
    benchmarks: [
      [ .[].benchmarks[]
        | select(.run_type != "aggregate")
        | {name: .name, after_ns: to_ns} ]
      | group_by(.name)[]
      | {name: .[0].name, after_ns: (map(.after_ns) | min)}
      | . + {before_ns: baseline_ns[.name]}
      | . + {speedup: (if .before_ns != null
                       then (.before_ns / .after_ns * 100 | round / 100)
                       else null end)}
    ]
  }
' "$TMP_DIR"/*.json > "$OUT"

echo "wrote $OUT"
jq -r '.benchmarks[] |
       "\(.name): \(.before_ns // "n/a") -> \(.after_ns) ns" +
       (if .speedup then "  (\(.speedup)x)" else "" end)' "$OUT"
