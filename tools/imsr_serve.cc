// imsr_serve — long-lived sharded recommendation server speaking the
// serve/protocol framing over a Unix-domain or TCP socket.
//
// Boot modes (exactly one):
//   --log=log.csv [--checkpoint=ckpt.bin]
//       dataset boot: load the log, restore the checkpoint (or pretrain
//       in-process when none is given), publish the snapshot, serve.
//       --live=true additionally replays the post-pretrain events of the
//       log through an in-process StreamTrainer on a background thread,
//       so micro-span publishes (with IVF index builds under
//       --retrieval=ivf) land while requests are in flight.
//   --items=N --users=N
//       synthetic boot: a clustered corpus at exactly that scale (the
//       IVF-friendly regime bench_serve measures), no files needed —
//       the shape the load harness drives. --publish_ms=T republishes a
//       freshly built snapshot every T milliseconds from a background
//       thread, exercising the publish-while-serving path.
//
// Transport: --socket=/path (unix) or --port=N (tcp on 127.0.0.1;
// 0 binds an ephemeral port). The bound endpoint is printed as
// "listening on ..." once serving, so harnesses can scrape it.
//
// SIGINT/SIGTERM shut down gracefully: accept stops, admitted requests
// drain to their connections, final metrics flush, exit 0.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>

#include "core/checkpoint.h"
#include "core/imsr_trainer.h"
#include "data/log_io.h"
#include "models/msr_model.h"
#include "obs/obs.h"
#include "obs/session.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "stream/event_source.h"
#include "stream/prequential.h"
#include "stream/service.h"
#include "stream/stream_trainer.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/shutdown.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

// Clustered corpus + matching interests (same regime bench_serve
// measures): item rows land near sqrt(num_items) centers and every user
// gets 2..4 interests near centers, like a trained store.
void MakeClusteredState(int64_t num_items, int64_t num_users, int64_t dim,
                        uint64_t seed, models::MsrModel* model,
                        core::InterestStore* store) {
  util::Rng rng(seed);
  const int64_t num_clusters = std::max<int64_t>(
      16, static_cast<int64_t>(std::sqrt(static_cast<double>(num_items))));
  const nn::Tensor centers = nn::Tensor::Randn({num_clusters, dim}, rng);
  nn::Tensor& table = model->embeddings().parameter().mutable_value();
  for (int64_t i = 0; i < num_items; ++i) {
    const int64_t c = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(num_clusters)));
    const float* center = centers.data() + c * dim;
    float* row = table.data() + i * dim;
    for (int64_t k = 0; k < dim; ++k) {
      row[k] = center[k] + 0.15f * static_cast<float>(rng.NextGaussian());
    }
  }
  for (int64_t user = 0; user < num_users; ++user) {
    const int64_t k = 2 + user % 3;
    store->Initialize(static_cast<data::UserId>(user), k, dim, 0, rng);
    nn::Tensor interests = nn::Tensor::Uninitialized({k, dim});
    for (int64_t j = 0; j < k; ++j) {
      const int64_t c = static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(num_clusters)));
      const float* center = centers.data() + c * dim;
      float* row = interests.data() + j * dim;
      for (int64_t d = 0; d < dim; ++d) {
        row[d] = center[d] + 0.1f * static_cast<float>(rng.NextGaussian());
      }
    }
    store->SetInterests(static_cast<data::UserId>(user),
                        std::move(interests));
  }
}

void PublishSnapshot(const models::MsrModel& model,
                     const core::InterestStore& store, int span,
                     bool with_index, bool allow_shared,
                     serve::SnapshotRegistry* registry) {
  // Timed republish of an unchanged model (--republish=shared): share
  // the current snapshot's frozen content instead of re-exporting it —
  // the version still bumps, the data epoch carries forward, and the
  // publisher thread stops stealing a corpus-sized export from the
  // serving core every cycle. Any model/store change (or
  // --republish=full, the PR 9 behavior benchmarks baseline against)
  // falls through to the full build.
  std::shared_ptr<serve::ServingSnapshot> shared =
      allow_shared
          ? serve::BuildSnapshotShared(model, store, span,
                                       registry->Current())
          : nullptr;
  if (shared != nullptr) {
    registry->Publish(std::move(shared));
  } else if (with_index) {
    registry->Publish(
        serve::BuildSnapshot(model, store, span, serve::IvfBuildConfig{}));
  } else {
    registry->Publish(serve::BuildSnapshot(model, store, span));
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags("imsr_serve",
                      "sharded concurrent recommendation server");
  flags.AddString("socket", "", "unix-domain socket path to listen on");
  flags.AddInt("port", 0,
               "tcp port on 127.0.0.1 when --socket is empty (0 = "
               "ephemeral)");
  flags.AddInt("shards", 4, "worker shards (hash-routed by user id)");
  flags.AddInt("queue_cap", 256,
               "per-shard queue bound; full queues reject with overload");
  flags.AddInt("batch_max", 32,
               "max requests a shard scores per queue drain (1 = the "
               "unbatched pop-score-respond loop)");
  flags.AddInt("cache_mb", 64,
               "total response-cache budget in MiB, split across shards");
  flags.AddString("cache", "on",
                  "response cache (on | off); off ignores --cache_mb");
  flags.AddString("republish", "shared",
                  "timed-republish strategy (shared = reuse the current "
                  "snapshot's frozen content when the model and store "
                  "are unchanged | full = always re-export)");
  flags.AddInt("top_n", 10, "default items per request");
  flags.AddString("rule", "attentive", "scoring rule (attentive | max)");
  flags.AddString("retrieval",
                  serve::RetrievalModeName(serve::DefaultRetrievalMode()),
                  "retrieval mode (exact | ivf)");
  flags.AddInt("nprobe", 0,
               "IVF lists probed per interest (omit = index default)");
  // Dataset boot.
  flags.AddString("log", "", "CSV interaction log (dataset boot)");
  flags.AddString("checkpoint", "",
                  "checkpoint to restore (omit = pretrain in-process)");
  flags.AddInt("spans", 6, "spans for the dataset split");
  flags.AddDouble("alpha", 0.5, "pre-training fraction of the log");
  flags.AddInt("min_interactions", 12,
               "drop users with fewer total interactions");
  flags.AddString("model", "dr", "interest extractor (mind | dr | sa)");
  flags.AddInt("dim", 32, "embedding / attention dimension");
  flags.AddInt("pretrain_epochs", 1,
               "epochs for the in-process pretrain fallback");
  flags.AddInt("k0", 4, "initial interests per user (pretrain fallback)");
  flags.AddInt("seed", 7, "RNG seed");
  flags.AddBool("live", false,
                "replay the log's post-pretrain events through an "
                "in-process StreamTrainer while serving");
  flags.AddInt("publish_every", 200,
               "events per micro-span publish under --live");
  // Synthetic boot.
  flags.AddInt("items", 0, "synthetic corpus items (synthetic boot)");
  flags.AddInt("users", 0, "synthetic users (synthetic boot)");
  flags.AddInt("publish_ms", 0,
               "republish a fresh snapshot every T ms (synthetic boot)");
  flags.AddInt("threads", 0,
               "process-wide worker pool size (snapshot/index builds)");
  flags.AddString("metrics_out", "",
                  "write the metrics registry here at exit");
  flags.AddString("trace_out", "", "write a tracing export here at exit");
  flags.AddDouble("metrics_interval", 0.0,
                  "rewrite --metrics_out every N seconds while serving");

  std::string parse_error;
  if (!flags.Parse(argc - 1, argv + 1, &parse_error)) {
    std::fprintf(stderr, "error: %s\nrun 'imsr_serve --help'\n",
                 parse_error.c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpText().c_str());
    return 0;
  }
  util::ApplyThreadFlag(flags.flags());
  obs::ObsSession obs_session(obs::ObsOptionsFromFlags(flags.flags()));

  eval::ScoreRule rule;
  serve::RetrievalMode retrieval;
  std::string error;
  if (!eval::ScoreRuleFromName(flags.GetString("rule"), &rule, &error) ||
      !serve::RetrievalModeFromName(flags.GetString("retrieval"),
                                    &retrieval, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  const bool with_index = retrieval == serve::RetrievalMode::kIVF;
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const std::string cache_flag = flags.GetString("cache");
  if (cache_flag != "on" && cache_flag != "off") {
    std::fprintf(stderr, "error: --cache must be 'on' or 'off', got '%s'\n",
                 cache_flag.c_str());
    return 2;
  }
  const std::string republish_flag = flags.GetString("republish");
  if (republish_flag != "shared" && republish_flag != "full") {
    std::fprintf(stderr,
                 "error: --republish must be 'shared' or 'full', got "
                 "'%s'\n",
                 republish_flag.c_str());
    return 2;
  }
  const bool shared_republish = republish_flag == "shared";

  // --- boot: build model + store, publish the first snapshot ----------
  serve::SnapshotRegistry registry;
  models::ModelConfig model_config;
  if (!models::ExtractorKindFromName(flags.GetString("model"),
                                     &model_config.kind, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  model_config.embedding_dim = flags.GetInt("dim");
  model_config.attention_dim = flags.GetInt("dim");

  std::unique_ptr<models::MsrModel> model;
  core::InterestStore store;
  int span = 0;
  // Live-trainer state (dataset boot only).
  std::vector<data::Interaction> replay;
  std::unique_ptr<data::Dataset> dataset;

  const util::Stopwatch boot_watch;
  if (flags.GetInt("items") > 0) {
    const int64_t items = flags.GetInt("items");
    const int64_t users = flags.GetInt("users") > 0
                              ? flags.GetInt("users")
                              : items;
    model = std::make_unique<models::MsrModel>(model_config, items, seed);
    MakeClusteredState(items, users, flags.GetInt("dim"), seed,
                       model.get(), &store);
    std::printf("synthetic corpus: %lld items, %lld users, dim %lld\n",
                static_cast<long long>(items),
                static_cast<long long>(users),
                static_cast<long long>(flags.GetInt("dim")));
  } else if (!flags.GetString("log").empty()) {
    const std::string log_path = flags.GetString("log");
    data::InteractionLog log;
    if (!data::ReadInteractionsCsv(log_path, &log, &error)) {
      std::fprintf(stderr, "error reading %s: %s\n", log_path.c_str(),
                   error.c_str());
      return 1;
    }
    data::CompactIds(&log);
    const double alpha = flags.GetDouble("alpha");
    std::vector<data::Interaction> interactions = log.interactions;
    dataset = std::make_unique<data::Dataset>(
        log.num_users, log.num_items, std::move(log.interactions),
        static_cast<int>(flags.GetInt("spans")), alpha,
        static_cast<int>(flags.GetInt("min_interactions")));
    model = std::make_unique<models::MsrModel>(
        model_config, dataset->num_items(), seed);
    core::TrainConfig train;
    train.seed = seed;
    train.pretrain_epochs =
        static_cast<int>(flags.GetInt("pretrain_epochs"));
    train.initial_interests = static_cast<int>(flags.GetInt("k0"));
    core::CheckpointMetadata metadata;
    const std::string checkpoint = flags.GetString("checkpoint");
    if (!checkpoint.empty()) {
      if (!LoadCheckpoint(checkpoint, model.get(), &store, &metadata,
                          &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
    } else {
      core::ImsrTrainer pretrainer(model.get(), &store, train);
      pretrainer.Pretrain(*dataset);
      metadata.trained_through_span = 0;
    }
    span = metadata.trained_through_span;
    if (flags.GetBool("live")) {
      const int64_t boundary =
          stream::PretrainBoundaryTimestamp(interactions, alpha);
      for (const data::Interaction& record : interactions) {
        if (record.timestamp >= boundary &&
            dataset->user_kept(record.user)) {
          replay.push_back(record);
        }
      }
    }
    std::printf("dataset boot: %d items, %lld users with interests\n",
                dataset->num_items(),
                static_cast<long long>(store.num_users()));
  } else {
    std::fprintf(stderr,
                 "error: pick a boot mode: --log=<csv> or --items=N\n");
    return 2;
  }
  PublishSnapshot(*model, store, span, with_index, shared_republish,
                  &registry);
  std::printf("snapshot v1 published in %.2fs (%s retrieval)\n",
              boot_watch.ElapsedSeconds(),
              serve::RetrievalModeName(retrieval));

  // --- transport ------------------------------------------------------
  util::InstallShutdownHandlers();
  serve::ServerConfig server_config;
  server_config.unix_path = flags.GetString("socket");
  server_config.tcp_port = static_cast<int>(flags.GetInt("port"));
  server_config.shards.num_shards = static_cast<int>(flags.GetInt("shards"));
  server_config.shards.queue_cap =
      static_cast<size_t>(flags.GetInt("queue_cap"));
  server_config.shards.batch_max =
      static_cast<int>(flags.GetInt("batch_max"));
  server_config.shards.cache_bytes =
      cache_flag == "on"
          ? static_cast<size_t>(flags.GetInt("cache_mb")) * (1u << 20)
          : 0;
  server_config.shards.serve.default_top_n =
      static_cast<int>(flags.GetInt("top_n"));
  server_config.shards.serve.rule = rule;
  server_config.shards.serve.retrieval = retrieval;
  server_config.shards.serve.nprobe =
      static_cast<int>(flags.GetInt("nprobe"));
  server_config.stop = util::ShutdownFlag();

  serve::Server server(&registry, server_config);
  if (!server.Start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (!server_config.unix_path.empty()) {
    std::printf("listening on unix:%s (%d shards)\n",
                server_config.unix_path.c_str(),
                server_config.shards.num_shards);
  } else {
    std::printf("listening on tcp:127.0.0.1:%d (%d shards)\n",
                server.port(), server_config.shards.num_shards);
  }
  std::fflush(stdout);

  // --- optional live publishes while serving --------------------------
  std::atomic<bool> stop_background{false};
  std::thread background;
  const auto background_stop = [&stop_background] {
    return stop_background.load(std::memory_order_relaxed) ||
           util::ShutdownRequested();
  };
  if (!replay.empty()) {
    // In-process StreamTrainer: micro-span publishes (IVF builds under
    // ivf) land in the shared registry while shards serve from it. The
    // service polls the global shutdown flag, so SIGINT stops training
    // and serving together.
    background = std::thread([&] {
      stream::StreamTrainerConfig trainer_config;
      trainer_config.publish_every = flags.GetInt("publish_every");
      trainer_config.initial_span = span;
      trainer_config.train.seed = seed;
      trainer_config.build_index = with_index;
      stream::StreamTrainer trainer(model.get(), &store, &registry,
                                    trainer_config);
      stream::PrequentialEvaluator evaluator(stream::PrequentialConfig{});
      stream::StreamServiceConfig service_config;
      service_config.threaded = false;
      service_config.stop = util::ShutdownFlag();
      stream::StreamService service(&trainer, &evaluator, &registry,
                                    service_config);
      stream::ReplayEventSource source(std::move(replay));
      const stream::StreamResult result = service.Run(&source);
      std::printf("live trainer done: %llu events, %llu publishes\n",
                  static_cast<unsigned long long>(result.events),
                  static_cast<unsigned long long>(result.publishes));
      std::fflush(stdout);
    });
  } else if (flags.GetInt("publish_ms") > 0) {
    const int64_t interval_ms = flags.GetInt("publish_ms");
    background = std::thread([&, interval_ms] {
      while (!background_stop()) {
        // Sleep in small slices so shutdown is prompt.
        for (int64_t waited = 0;
             waited < interval_ms && !background_stop(); waited += 20) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        if (background_stop()) break;
        PublishSnapshot(*model, store, ++span, with_index,
                        shared_republish, &registry);
        IMSR_COUNTER_ADD("serve/background_publishes", 1);
      }
    });
  }

  server.Run();  // until SIGINT/SIGTERM
  stop_background.store(true, std::memory_order_relaxed);
  if (background.joinable()) background.join();

  const serve::ServerStats stats = server.stats();
  const serve::ShardSetStats shard_stats = server.shard_stats();
  std::printf(
      "served %llu frames (%llu answered, %llu overload-rejected) over "
      "%llu connections; %llu protocol errors; final snapshot v%llu\n",
      static_cast<unsigned long long>(stats.frames),
      static_cast<unsigned long long>(shard_stats.answered),
      static_cast<unsigned long long>(shard_stats.rejected),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.protocol_errors),
      static_cast<unsigned long long>(registry.versions_published()));
  // Batch/cache accounting from the shard atomics, so the smoke harness
  // can assert on it in every build (obs included or compiled out).
  const double mean_batch =
      shard_stats.batches > 0
          ? static_cast<double>(shard_stats.answered) /
                static_cast<double>(shard_stats.batches)
          : 0.0;
  std::printf(
      "batching: %llu batches (mean %.2f/drain); cache: %llu hits, "
      "%llu misses, %llu evictions, %llu bytes resident\n",
      static_cast<unsigned long long>(shard_stats.batches), mean_batch,
      static_cast<unsigned long long>(shard_stats.cache_hits),
      static_cast<unsigned long long>(shard_stats.cache_misses),
      static_cast<unsigned long long>(shard_stats.cache_evictions),
      static_cast<unsigned long long>(shard_stats.cache_bytes));
  return 0;
}
