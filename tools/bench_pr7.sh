#!/bin/sh
# Streaming benchmark: runs `imsr_cli stream` on a replayed synthetic log
# at several publish cadences and writes BENCH_PR7.json at the repo root —
# per-cadence publish latency (mean/max), sustained events/sec, and the
# freshness trade-off (final sliding-window recall: small micro-spans
# publish fresher snapshots but pay more publish overhead per event).
#
# All cadences share one pretrained checkpoint and one replayed log, so
# the numbers differ only in the update cadence.
#
# Usage: tools/bench_pr7.sh [cli-binary] [output-json]
#   BENCH_STREAM_EVENTS=<n>  events replayed per run (default 4000)
#   BENCH_CADENCES="a b ..." publish_every values (default "100 400")
#   BENCH_STREAM_SCALE=<s>   synthetic log scale (default 0.3)
set -eu

CLI="${1:-build/tools/imsr_cli}"
OUT="${2:-BENCH_PR7.json}"
EVENTS="${BENCH_STREAM_EVENTS:-4000}"
CADENCES="${BENCH_CADENCES:-100 400}"
SCALE="${BENCH_STREAM_SCALE:-0.3}"

if [ ! -x "$CLI" ]; then
  echo "bench_pr7.sh: CLI binary not found: $CLI" >&2
  echo "build it first: cmake --build build --target imsr_cli" >&2
  exit 1
fi
if ! command -v jq >/dev/null 2>&1; then
  echo "bench_pr7.sh: jq is required" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

LOG="$TMP_DIR/stream_log.csv"
CKPT="$TMP_DIR/stream_ckpt.bin"

"$CLI" generate --preset=taobao --scale="$SCALE" --seed=11 \
  --out="$LOG" >/dev/null
"$CLI" pretrain --log="$LOG" --checkpoint="$CKPT" \
  --pretrain_epochs=2 >/dev/null

for cadence in $CADENCES; do
  "$CLI" stream --log="$LOG" --checkpoint="$CKPT" \
    --publish_every="$cadence" --window=500 --max_events="$EVENTS" \
    --summary_out="$TMP_DIR/summary.$cadence.json" >/dev/null
done

jq -s '
  {
    pr: "Online IMSR: streaming ingestion + prequential evaluation",
    description: ("imsr_cli stream on a replayed taobao-preset log, one "
                  + "pretrained checkpoint, identical events per run; "
                  + "each entry is one publish cadence (events per "
                  + "micro-span). Lower publish_every = fresher serving "
                  + "snapshots at higher publish overhead."),
    events_per_run: (.[0].events),
    cadences: [ .[] | {
      publish_every,
      publishes,
      events_per_sec,
      publish_mean_ms,
      publish_max_ms,
      final_window_recall,
      final_window_ndcg,
      blocked_pushes,
      queue_max_depth
    } ]
  }
' "$TMP_DIR"/summary.*.json > "$OUT"

echo "wrote $OUT"
jq -r '.cadences[] |
       "publish_every \(.publish_every): \(.events_per_sec) ev/s, " +
       "publish mean \(.publish_mean_ms) ms / max \(.publish_max_ms) ms, " +
       "window recall \(.final_window_recall)"' "$OUT"
