#!/bin/sh
# Serving-under-load benchmark: boots imsr_serve on a clustered synthetic
# corpus and drives imsr_loadgen against it for every shard count x
# retrieval mode in the matrix, with snapshots republishing mid-flight
# the whole time. Writes BENCH_PR9.json at the repo root: QPS and
# p50/p99/p99.9 latency per cell, plus the zero-failure accounting
# (every request answered, none dropped or corrupted).
#
# Each cell runs a fresh server process on its own unix socket so cells
# never share warmed caches; any loadgen-reported failure (decode error,
# unknown request_id, malformed top-N) aborts the benchmark.
#
# Usage: tools/bench_pr9.sh [imsr_serve] [imsr_loadgen] [output-json]
#   BENCH_LOAD_ITEMS=<n>       corpus size (default 100000)
#   BENCH_LOAD_USERS=<n>       user id space (default 1000000)
#   BENCH_LOAD_REQUESTS=<n>    requests per cell (default 20000)
#   BENCH_LOAD_SHARDS="a b .." shard counts (default "1 2 4")
#   BENCH_LOAD_MODES="a b .."  retrieval modes (default "exact ivf")
#   BENCH_LOAD_CONNECTIONS=<n> loadgen connections (default 8)
#   BENCH_LOAD_PUBLISH_MS=<n>  background republish cadence (default 2000;
#                              packing a million-user snapshot is itself
#                              expensive, so an aggressive cadence turns
#                              the benchmark into a publish benchmark)
set -eu

SERVE="${1:-build/tools/imsr_serve}"
LOADGEN="${2:-build/tools/imsr_loadgen}"
OUT="${3:-BENCH_PR9.json}"
ITEMS="${BENCH_LOAD_ITEMS:-100000}"
USERS="${BENCH_LOAD_USERS:-1000000}"
REQUESTS="${BENCH_LOAD_REQUESTS:-20000}"
SHARDS="${BENCH_LOAD_SHARDS:-1 2 4}"
MODES="${BENCH_LOAD_MODES:-exact ivf}"
CONNECTIONS="${BENCH_LOAD_CONNECTIONS:-8}"
PUBLISH_MS="${BENCH_LOAD_PUBLISH_MS:-2000}"

for bin in "$SERVE" "$LOADGEN"; do
  if [ ! -x "$bin" ]; then
    echo "bench_pr9.sh: binary not found: $bin" >&2
    echo "build first: cmake --build build --target imsr_serve imsr_loadgen" >&2
    exit 1
  fi
done
if ! command -v jq >/dev/null 2>&1; then
  echo "bench_pr9.sh: jq is required" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP_DIR"
}
trap cleanup EXIT

for mode in $MODES; do
  for shards in $SHARDS; do
    SOCK="$TMP_DIR/serve.$mode.$shards.sock"
    LOG="$TMP_DIR/serve.$mode.$shards.log"
    CELL="$TMP_DIR/cell.$mode.$shards.json"
    "$SERVE" --items="$ITEMS" --users="$USERS" --socket="$SOCK" \
      --shards="$shards" --retrieval="$mode" --publish_ms="$PUBLISH_MS" \
      --queue_cap=1024 >"$LOG" 2>&1 &
    SERVER_PID=$!
    i=0
    while ! grep -q "listening on" "$LOG" 2>/dev/null; do
      i=$((i + 1))
      if [ "$i" -gt 1200 ]; then
        echo "bench_pr9.sh: server did not start ($mode, $shards shards)" >&2
        cat "$LOG" >&2
        exit 1
      fi
      kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG" >&2; exit 1; }
      sleep 0.1
    done

    echo "== $mode retrieval, $shards shard(s): $REQUESTS requests =="
    "$LOADGEN" --socket="$SOCK" --connections="$CONNECTIONS" --depth=8 \
      --requests="$REQUESTS" --users="$USERS" --zipf=0.9 \
      --json_out="$CELL"

    kill -TERM "$SERVER_PID"
    wait "$SERVER_PID" || {
      echo "bench_pr9.sh: server exited non-zero" >&2
      cat "$LOG" >&2
      exit 1
    }
    SERVER_PID=""
    jq --argjson shards "$shards" --arg mode "$mode" \
      '. + {shards: $shards, retrieval: $mode}' "$CELL" \
      > "$CELL.tagged" && mv "$CELL.tagged" "$CELL"
  done
done

jq -s --argjson items "$ITEMS" --argjson publish_ms "$PUBLISH_MS" '
  {
    pr: "imsr_serve: sharded concurrent serving under loadgen traffic",
    description: ("imsr_loadgen (closed loop, Zipf 0.9 user skew) vs "
                  + "imsr_serve on a clustered synthetic corpus, one "
                  + "fresh server process per cell, snapshots "
                  + "republishing in the background throughout. "
                  + "failures counts protocol violations and malformed "
                  + "responses — the acceptance bar is 0 in every "
                  + "cell."),
    items: $items,
    publish_every_ms: $publish_ms,
    runs: .
  }
' "$TMP_DIR"/cell.*.json > "$OUT"

echo "wrote $OUT"
jq -r '.runs[] |
       "\(.retrieval) x \(.shards) shard(s): \(.qps) req/s, " +
       "p50 \(.p50_ms) ms, p99 \(.p99_ms) ms, p99.9 \(.p999_ms) ms, " +
       "\(.overloaded) overloaded, \(.failures) failures"' "$OUT"
jq -e '[.runs[].failures] | add == 0' "$OUT" >/dev/null || {
  echo "bench_pr9.sh: FAILED requests recorded" >&2
  exit 1
}
