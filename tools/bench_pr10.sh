#!/bin/sh
# Cross-request batching + response cache benchmark: the BENCH_PR9.json
# workload (clustered synthetic corpus, Zipf 0.9 user skew, snapshots
# republishing mid-flight) driven against three server configurations
# per retrieval mode:
#
#   baseline     --batch_max=1  --cache=off --republish=full
#                (the PR 9 serving loop, full re-export every publish)
#   batch        --batch_max=32 --cache=off --republish=full
#                (micro-batching alone)
#   batch_cache  --batch_max=32 --cache=on  --republish=shared
#                (batching + response cache + content-shared republish —
#                the full PR 10 configuration)
#
# plus two open-loop cells (--rate > 0: Poisson arrivals, latency
# measured from the scheduled send time, so coordinated omission cannot
# hide queueing delay) against the full batch_cache configuration.
#
# Writes BENCH_PR10.json at the repo root: QPS and p50/p99/p99.9 per
# cell plus the zero-failure accounting. Any loadgen-reported failure
# aborts the benchmark; the baseline cells reproduce BENCH_PR9.json
# within noise.
#
# Usage: tools/bench_pr10.sh [imsr_serve] [imsr_loadgen] [output-json]
#   BENCH_LOAD_ITEMS=<n>       corpus size (default 100000)
#   BENCH_LOAD_USERS=<n>       user id space (default 1000000)
#   BENCH_LOAD_REQUESTS=<n>    requests per closed-loop cell (default 12000)
#   BENCH_LOAD_SHARDS=<n>      shard count (default 2)
#   BENCH_LOAD_MODES="a b .."  retrieval modes (default "exact ivf")
#   BENCH_LOAD_CONNECTIONS=<n> loadgen connections (default 8)
#   BENCH_LOAD_PUBLISH_MS=<n>  background republish cadence (default 2000)
#   BENCH_LOAD_CACHE_MB=<n>    response-cache budget (default 64)
#   BENCH_OPEN_REQUESTS=<n>    requests per open-loop cell (default 8000)
#   BENCH_OPEN_RATE_EXACT=<r>  open-loop arrival rate, exact (default 400)
#   BENCH_OPEN_RATE_IVF=<r>    open-loop arrival rate, ivf (default 1300)
#
# The default rates sit at ~80% of the measured batch_cache capacity on
# the reference single-core container (exact ~500 req/s, ivf ~1650), so
# the open-loop cells exercise real queueing without tipping into
# overload; override them when benchmarking other hardware.
set -eu

SERVE="${1:-build/tools/imsr_serve}"
LOADGEN="${2:-build/tools/imsr_loadgen}"
OUT="${3:-BENCH_PR10.json}"
ITEMS="${BENCH_LOAD_ITEMS:-100000}"
USERS="${BENCH_LOAD_USERS:-1000000}"
REQUESTS="${BENCH_LOAD_REQUESTS:-12000}"
SHARDS="${BENCH_LOAD_SHARDS:-2}"
MODES="${BENCH_LOAD_MODES:-exact ivf}"
CONNECTIONS="${BENCH_LOAD_CONNECTIONS:-8}"
PUBLISH_MS="${BENCH_LOAD_PUBLISH_MS:-2000}"
CACHE_MB="${BENCH_LOAD_CACHE_MB:-64}"
OPEN_REQUESTS="${BENCH_OPEN_REQUESTS:-8000}"
OPEN_RATE_EXACT="${BENCH_OPEN_RATE_EXACT:-400}"
OPEN_RATE_IVF="${BENCH_OPEN_RATE_IVF:-1300}"

for bin in "$SERVE" "$LOADGEN"; do
  if [ ! -x "$bin" ]; then
    echo "bench_pr10.sh: binary not found: $bin" >&2
    echo "build first: cmake --build build --target imsr_serve imsr_loadgen" >&2
    exit 1
  fi
done
if ! command -v jq >/dev/null 2>&1; then
  echo "bench_pr10.sh: jq is required" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
SERVER_PID=""
CELL_SEED=1
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP_DIR"
}
trap cleanup EXIT

# run_cell <name> <mode> <batch_max> <cache on|off> <requests> <rate> \
#          <republish full|shared>
# rate 0 = closed loop (depth 8); rate > 0 = open loop at that rate.
run_cell() {
  name="$1"; mode="$2"; batch_max="$3"; cache="$4"
  requests="$5"; rate="$6"; republish="$7"
  SOCK="$TMP_DIR/serve.$name.$mode.sock"
  LOG="$TMP_DIR/serve.$name.$mode.log"
  CELL="$TMP_DIR/cell.$name.$mode.json"
  "$SERVE" --items="$ITEMS" --users="$USERS" --socket="$SOCK" \
    --shards="$SHARDS" --retrieval="$mode" --publish_ms="$PUBLISH_MS" \
    --queue_cap=1024 --batch_max="$batch_max" --cache="$cache" \
    --cache_mb="$CACHE_MB" --republish="$republish" >"$LOG" 2>&1 &
  SERVER_PID=$!
  i=0
  while ! grep -q "listening on" "$LOG" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 1200 ]; then
      echo "bench_pr10.sh: server did not start ($name, $mode)" >&2
      cat "$LOG" >&2
      exit 1
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG" >&2; exit 1; }
    sleep 0.1
  done

  echo "== $name / $mode: $requests requests" \
    "(batch_max=$batch_max cache=$cache republish=$republish rate=$rate) =="
  CELL_SEED=$((CELL_SEED + 1))
  "$LOADGEN" --socket="$SOCK" --connections="$CONNECTIONS" --depth=8 \
    --requests="$requests" --users="$USERS" --zipf=0.9 --rate="$rate" \
    --seed="$CELL_SEED" --json_out="$CELL"

  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID" || {
    echo "bench_pr10.sh: server exited non-zero" >&2
    cat "$LOG" >&2
    exit 1
  }
  SERVER_PID=""
  # Server-side batch/cache accounting from the final stats line.
  hits="$(sed -n 's/.*cache: \([0-9]*\) hits.*/\1/p' "$LOG")"
  batches="$(sed -n 's/.*batching: \([0-9]*\) batches.*/\1/p' "$LOG")"
  jq --arg config "$name" --arg mode "$mode" \
    --argjson batch_max "$batch_max" --arg cache "$cache" \
    --arg republish "$republish" --argjson shards "$SHARDS" \
    --argjson cache_hits "${hits:-0}" --argjson batches "${batches:-0}" \
    '. + {config: $config, retrieval: $mode, shards: $shards,
          batch_max: $batch_max, cache: $cache, republish: $republish,
          server_cache_hits: $cache_hits, server_batches: $batches}' \
    "$CELL" > "$CELL.tagged" && mv "$CELL.tagged" "$CELL"
}

for mode in $MODES; do
  run_cell baseline "$mode" 1 off "$REQUESTS" 0 full
  run_cell batch "$mode" 32 off "$REQUESTS" 0 full
  run_cell batch_cache "$mode" 32 on "$REQUESTS" 0 shared
done

# Open-loop cells: fixed Poisson arrival rates against the full
# configuration, so reported latency includes queueing delay relative to
# the intended schedule.
for mode in $MODES; do
  case "$mode" in
    exact) rate="$OPEN_RATE_EXACT" ;;
    *) rate="$OPEN_RATE_IVF" ;;
  esac
  run_cell open_batch_cache "$mode" 32 on "$OPEN_REQUESTS" "$rate" shared
done

jq -s --argjson items "$ITEMS" --argjson publish_ms "$PUBLISH_MS" '
  {
    pr: ("imsr_serve: cross-request micro-batching + snapshot-versioned "
         + "response cache"),
    description: ("The BENCH_PR9.json workload (Zipf 0.9 user skew, "
                  + "snapshots republishing in the background, one fresh "
                  + "server process per cell) against baseline "
                  + "(batch_max=1, cache off, full re-export per publish "
                  + "— the PR 9 loop), batching alone, and batching + "
                  + "response cache + content-shared republish, in closed "
                  + "loop; plus open-loop (fixed-rate Poisson arrivals, "
                  + "latency from scheduled send time) cells against the "
                  + "full configuration. failures counts protocol "
                  + "violations and malformed responses — the acceptance "
                  + "bar is 0 in every cell."),
    items: $items,
    publish_every_ms: $publish_ms,
    host_note: ("single-core container: gains come from cache hits and "
                + "batch locality, not parallelism"),
    runs: .
  }
' "$TMP_DIR"/cell.*.json > "$OUT"

echo "wrote $OUT"
jq -r '.runs[] |
       "\(.config) \(.retrieval) [\(.mode)]: \(.qps) req/s, " +
       "p50 \(.p50_ms) ms, p99 \(.p99_ms) ms, " +
       "\(.server_cache_hits) cache hits, \(.overloaded) overloaded, " +
       "\(.failures) failures"' "$OUT"
jq -e '[.runs[].failures] | add == 0' "$OUT" >/dev/null || {
  echo "bench_pr10.sh: FAILED requests recorded" >&2
  exit 1
}
