# Empty compiler generated dependencies file for imsr_cli.
# This may be replaced when dependencies are built.
