file(REMOVE_RECURSE
  "CMakeFiles/imsr_cli.dir/imsr_cli.cc.o"
  "CMakeFiles/imsr_cli.dir/imsr_cli.cc.o.d"
  "imsr_cli"
  "imsr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imsr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
