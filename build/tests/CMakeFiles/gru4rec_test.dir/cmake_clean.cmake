file(REMOVE_RECURSE
  "CMakeFiles/gru4rec_test.dir/gru4rec_test.cc.o"
  "CMakeFiles/gru4rec_test.dir/gru4rec_test.cc.o.d"
  "gru4rec_test"
  "gru4rec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gru4rec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
