# Empty dependencies file for gru4rec_test.
# This may be replaced when dependencies are built.
