# Empty compiler generated dependencies file for diversity_test.
# This may be replaced when dependencies are built.
