# Empty dependencies file for imsr.
# This may be replaced when dependencies are built.
