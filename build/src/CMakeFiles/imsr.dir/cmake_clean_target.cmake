file(REMOVE_RECURSE
  "libimsr.a"
)
