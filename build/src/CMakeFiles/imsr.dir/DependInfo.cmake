
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ader.cc" "src/CMakeFiles/imsr.dir/baselines/ader.cc.o" "gcc" "src/CMakeFiles/imsr.dir/baselines/ader.cc.o.d"
  "/root/repo/src/baselines/gru4rec.cc" "src/CMakeFiles/imsr.dir/baselines/gru4rec.cc.o" "gcc" "src/CMakeFiles/imsr.dir/baselines/gru4rec.cc.o.d"
  "/root/repo/src/baselines/limarec.cc" "src/CMakeFiles/imsr.dir/baselines/limarec.cc.o" "gcc" "src/CMakeFiles/imsr.dir/baselines/limarec.cc.o.d"
  "/root/repo/src/baselines/mimn.cc" "src/CMakeFiles/imsr.dir/baselines/mimn.cc.o" "gcc" "src/CMakeFiles/imsr.dir/baselines/mimn.cc.o.d"
  "/root/repo/src/baselines/sml.cc" "src/CMakeFiles/imsr.dir/baselines/sml.cc.o" "gcc" "src/CMakeFiles/imsr.dir/baselines/sml.cc.o.d"
  "/root/repo/src/core/checkpoint.cc" "src/CMakeFiles/imsr.dir/core/checkpoint.cc.o" "gcc" "src/CMakeFiles/imsr.dir/core/checkpoint.cc.o.d"
  "/root/repo/src/core/eir.cc" "src/CMakeFiles/imsr.dir/core/eir.cc.o" "gcc" "src/CMakeFiles/imsr.dir/core/eir.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/imsr.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/imsr.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/imsr_trainer.cc" "src/CMakeFiles/imsr.dir/core/imsr_trainer.cc.o" "gcc" "src/CMakeFiles/imsr.dir/core/imsr_trainer.cc.o.d"
  "/root/repo/src/core/interest_store.cc" "src/CMakeFiles/imsr.dir/core/interest_store.cc.o" "gcc" "src/CMakeFiles/imsr.dir/core/interest_store.cc.o.d"
  "/root/repo/src/core/interests_expansion.cc" "src/CMakeFiles/imsr.dir/core/interests_expansion.cc.o" "gcc" "src/CMakeFiles/imsr.dir/core/interests_expansion.cc.o.d"
  "/root/repo/src/core/nid.cc" "src/CMakeFiles/imsr.dir/core/nid.cc.o" "gcc" "src/CMakeFiles/imsr.dir/core/nid.cc.o.d"
  "/root/repo/src/core/online_update.cc" "src/CMakeFiles/imsr.dir/core/online_update.cc.o" "gcc" "src/CMakeFiles/imsr.dir/core/online_update.cc.o.d"
  "/root/repo/src/core/pit.cc" "src/CMakeFiles/imsr.dir/core/pit.cc.o" "gcc" "src/CMakeFiles/imsr.dir/core/pit.cc.o.d"
  "/root/repo/src/core/strategies.cc" "src/CMakeFiles/imsr.dir/core/strategies.cc.o" "gcc" "src/CMakeFiles/imsr.dir/core/strategies.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/imsr.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/imsr.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/log_io.cc" "src/CMakeFiles/imsr.dir/data/log_io.cc.o" "gcc" "src/CMakeFiles/imsr.dir/data/log_io.cc.o.d"
  "/root/repo/src/data/sampler.cc" "src/CMakeFiles/imsr.dir/data/sampler.cc.o" "gcc" "src/CMakeFiles/imsr.dir/data/sampler.cc.o.d"
  "/root/repo/src/data/stats.cc" "src/CMakeFiles/imsr.dir/data/stats.cc.o" "gcc" "src/CMakeFiles/imsr.dir/data/stats.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/imsr.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/imsr.dir/data/synthetic.cc.o.d"
  "/root/repo/src/eval/evaluator.cc" "src/CMakeFiles/imsr.dir/eval/evaluator.cc.o" "gcc" "src/CMakeFiles/imsr.dir/eval/evaluator.cc.o.d"
  "/root/repo/src/eval/interest_analysis.cc" "src/CMakeFiles/imsr.dir/eval/interest_analysis.cc.o" "gcc" "src/CMakeFiles/imsr.dir/eval/interest_analysis.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/imsr.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/imsr.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/projection.cc" "src/CMakeFiles/imsr.dir/eval/projection.cc.o" "gcc" "src/CMakeFiles/imsr.dir/eval/projection.cc.o.d"
  "/root/repo/src/eval/ranker.cc" "src/CMakeFiles/imsr.dir/eval/ranker.cc.o" "gcc" "src/CMakeFiles/imsr.dir/eval/ranker.cc.o.d"
  "/root/repo/src/models/aggregator.cc" "src/CMakeFiles/imsr.dir/models/aggregator.cc.o" "gcc" "src/CMakeFiles/imsr.dir/models/aggregator.cc.o.d"
  "/root/repo/src/models/capsule_routing.cc" "src/CMakeFiles/imsr.dir/models/capsule_routing.cc.o" "gcc" "src/CMakeFiles/imsr.dir/models/capsule_routing.cc.o.d"
  "/root/repo/src/models/comirec_dr.cc" "src/CMakeFiles/imsr.dir/models/comirec_dr.cc.o" "gcc" "src/CMakeFiles/imsr.dir/models/comirec_dr.cc.o.d"
  "/root/repo/src/models/comirec_sa.cc" "src/CMakeFiles/imsr.dir/models/comirec_sa.cc.o" "gcc" "src/CMakeFiles/imsr.dir/models/comirec_sa.cc.o.d"
  "/root/repo/src/models/diversity.cc" "src/CMakeFiles/imsr.dir/models/diversity.cc.o" "gcc" "src/CMakeFiles/imsr.dir/models/diversity.cc.o.d"
  "/root/repo/src/models/embedding.cc" "src/CMakeFiles/imsr.dir/models/embedding.cc.o" "gcc" "src/CMakeFiles/imsr.dir/models/embedding.cc.o.d"
  "/root/repo/src/models/mind.cc" "src/CMakeFiles/imsr.dir/models/mind.cc.o" "gcc" "src/CMakeFiles/imsr.dir/models/mind.cc.o.d"
  "/root/repo/src/models/msr_model.cc" "src/CMakeFiles/imsr.dir/models/msr_model.cc.o" "gcc" "src/CMakeFiles/imsr.dir/models/msr_model.cc.o.d"
  "/root/repo/src/models/sampled_softmax.cc" "src/CMakeFiles/imsr.dir/models/sampled_softmax.cc.o" "gcc" "src/CMakeFiles/imsr.dir/models/sampled_softmax.cc.o.d"
  "/root/repo/src/nn/gradcheck.cc" "src/CMakeFiles/imsr.dir/nn/gradcheck.cc.o" "gcc" "src/CMakeFiles/imsr.dir/nn/gradcheck.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/imsr.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/imsr.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/CMakeFiles/imsr.dir/nn/ops.cc.o" "gcc" "src/CMakeFiles/imsr.dir/nn/ops.cc.o.d"
  "/root/repo/src/nn/optim.cc" "src/CMakeFiles/imsr.dir/nn/optim.cc.o" "gcc" "src/CMakeFiles/imsr.dir/nn/optim.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/CMakeFiles/imsr.dir/nn/tensor.cc.o" "gcc" "src/CMakeFiles/imsr.dir/nn/tensor.cc.o.d"
  "/root/repo/src/nn/variable.cc" "src/CMakeFiles/imsr.dir/nn/variable.cc.o" "gcc" "src/CMakeFiles/imsr.dir/nn/variable.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/imsr.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/imsr.dir/util/csv.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/imsr.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/imsr.dir/util/flags.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/imsr.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/imsr.dir/util/logging.cc.o.d"
  "/root/repo/src/util/math_util.cc" "src/CMakeFiles/imsr.dir/util/math_util.cc.o" "gcc" "src/CMakeFiles/imsr.dir/util/math_util.cc.o.d"
  "/root/repo/src/util/parallel.cc" "src/CMakeFiles/imsr.dir/util/parallel.cc.o" "gcc" "src/CMakeFiles/imsr.dir/util/parallel.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/imsr.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/imsr.dir/util/rng.cc.o.d"
  "/root/repo/src/util/serialization.cc" "src/CMakeFiles/imsr.dir/util/serialization.cc.o" "gcc" "src/CMakeFiles/imsr.dir/util/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
