file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_incremental.dir/ecommerce_incremental.cpp.o"
  "CMakeFiles/ecommerce_incremental.dir/ecommerce_incremental.cpp.o.d"
  "ecommerce_incremental"
  "ecommerce_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
