# Empty compiler generated dependencies file for ecommerce_incremental.
# This may be replaced when dependencies are built.
