file(REMOVE_RECURSE
  "CMakeFiles/interest_evolution.dir/interest_evolution.cpp.o"
  "CMakeFiles/interest_evolution.dir/interest_evolution.cpp.o.d"
  "interest_evolution"
  "interest_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interest_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
