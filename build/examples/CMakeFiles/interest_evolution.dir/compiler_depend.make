# Empty compiler generated dependencies file for interest_evolution.
# This may be replaced when dependencies are built.
