file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_puzzlement.dir/bench_fig2_puzzlement.cc.o"
  "CMakeFiles/bench_fig2_puzzlement.dir/bench_fig2_puzzlement.cc.o.d"
  "bench_fig2_puzzlement"
  "bench_fig2_puzzlement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_puzzlement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
