file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_lifelong.dir/bench_table4_lifelong.cc.o"
  "CMakeFiles/bench_table4_lifelong.dir/bench_table4_lifelong.cc.o.d"
  "bench_table4_lifelong"
  "bench_table4_lifelong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_lifelong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
