# Empty dependencies file for bench_fig3_redundancy.
# This may be replaced when dependencies are built.
