file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_redundancy.dir/bench_fig3_redundancy.cc.o"
  "CMakeFiles/bench_fig3_redundancy.dir/bench_fig3_redundancy.cc.o.d"
  "bench_fig3_redundancy"
  "bench_fig3_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
