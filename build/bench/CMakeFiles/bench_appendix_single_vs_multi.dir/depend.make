# Empty dependencies file for bench_appendix_single_vs_multi.
# This may be replaced when dependencies are built.
