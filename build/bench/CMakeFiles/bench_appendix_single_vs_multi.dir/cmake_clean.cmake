file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_single_vs_multi.dir/bench_appendix_single_vs_multi.cc.o"
  "CMakeFiles/bench_appendix_single_vs_multi.dir/bench_appendix_single_vs_multi.cc.o.d"
  "bench_appendix_single_vs_multi"
  "bench_appendix_single_vs_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_single_vs_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
