// Quickstart: generate a synthetic interaction stream, train a ComiRec-DR
// base model incrementally with IMSR, and compare against plain
// fine-tuning.
//
//   ./examples/quickstart [--users=300] [--spans=6] [--epochs=3]
#include <cstdio>

#include "core/experiment.h"
#include "data/synthetic.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace imsr;  // NOLINT(build/namespaces) — example brevity
  util::Flags flags(argc, argv);

  // 1. Simulate an e-commerce interaction log with evolving interests.
  data::SyntheticConfig data_config = data::SyntheticConfig::Taobao(0.4);
  data_config.num_users =
      static_cast<int32_t>(flags.GetInt("users", data_config.num_users));
  const data::SyntheticDataset synthetic =
      data::GenerateSynthetic(data_config);
  const data::Dataset& dataset = *synthetic.dataset;
  std::printf("dataset: %lld users kept, %d items, %d incremental spans\n",
              static_cast<long long>(dataset.num_kept_users()),
              dataset.num_items(), dataset.num_incremental_spans());

  // 2. Configure the base model and the IMSR strategy.
  core::ExperimentConfig config;
  config.model.kind = models::ExtractorKind::kComiRecDr;
  config.model.embedding_dim = 32;
  config.strategy.kind = core::StrategyKind::kImsr;
  config.strategy.train.epochs =
      static_cast<int>(flags.GetInt("epochs", 3));
  config.eval.top_n = 20;

  // 3. Run IMSR and plain fine-tuning on the same data.
  const core::ExperimentResult imsr = RunExperiment(dataset, config);
  config.strategy.kind = core::StrategyKind::kFineTune;
  const core::ExperimentResult ft = RunExperiment(dataset, config);

  // 4. Report.
  std::printf("\n%-6s %-12s %-12s %-12s %-12s\n", "span", "IMSR HR@20",
              "IMSR NDCG", "FT HR@20", "FT NDCG");
  for (size_t i = 0; i < imsr.spans.size(); ++i) {
    std::printf("%-6d %-12.4f %-12.4f %-12.4f %-12.4f\n",
                imsr.spans[i].trained_through_span, imsr.spans[i].hit_ratio,
                imsr.spans[i].ndcg, ft.spans[i].hit_ratio,
                ft.spans[i].ndcg);
  }
  std::printf("\naverages over incremental spans:\n");
  std::printf("  IMSR: HR@20 %.4f  NDCG@20 %.4f  (avg interests %.2f)\n",
              imsr.avg_hit_ratio, imsr.avg_ndcg,
              imsr.spans.back().avg_interests);
  std::printf("  FT:   HR@20 %.4f  NDCG@20 %.4f\n", ft.avg_hit_ratio,
              ft.avg_ndcg);
  std::printf("  IMSR added %d interests (%d users expanded, %d trimmed)\n",
              imsr.expansion.interests_added, imsr.expansion.users_expanded,
              imsr.expansion.interests_trimmed);
  return 0;
}
