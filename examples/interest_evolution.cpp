// Interest-evolution walkthrough: follows a single user across time spans
// and narrates what IMSR's components decide — the puzzlement score (NID),
// whether new interest vectors are created, what the trimmer removes
// (PIT), and how far the inherited interests drift (EIR's effect).
//
//   ./examples/interest_evolution [--scale=0.3] [--user=-1]
#include <algorithm>
#include <cstdio>

#include "core/imsr_trainer.h"
#include "core/nid.h"
#include "data/synthetic.h"
#include "util/csv.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace imsr;  // NOLINT(build/namespaces)
  util::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.3);

  const data::SyntheticDataset synthetic =
      data::GenerateSynthetic(data::SyntheticConfig::Taobao(scale));
  const data::Dataset& dataset = *synthetic.dataset;

  models::ModelConfig model_config;
  model_config.kind = models::ExtractorKind::kComiRecDr;
  model_config.embedding_dim = 32;
  models::MsrModel model(model_config, dataset.num_items(), 7);
  core::InterestStore store;
  core::TrainConfig train_config;
  core::ImsrTrainer trainer(&model, &store, train_config);
  trainer.Pretrain(dataset);

  // Pick a user who develops a new ground-truth interest mid-stream (or
  // honour --user=).
  data::UserId user = static_cast<data::UserId>(flags.GetInt("user", -1));
  if (user < 0) {
    for (data::UserId candidate : dataset.active_users(1)) {
      if (!store.Has(candidate)) continue;
      const auto& births =
          synthetic.truth
              .interest_birth_span[static_cast<size_t>(candidate)];
      const bool gains_new =
          std::any_of(births.begin(), births.end(),
                      [](int birth) { return birth >= 1; });
      int active_spans = 0;
      for (int span = 1; span <= dataset.num_incremental_spans(); ++span) {
        active_spans += dataset.user_span(candidate, span).active();
      }
      if (gains_new && active_spans >= dataset.num_incremental_spans() - 1) {
        user = candidate;
        break;
      }
    }
  }
  IMSR_CHECK(user >= 0 && store.Has(user)) << "no suitable user found";

  std::printf("following user %d\n", user);
  std::printf("ground-truth interests (category@birth-span):");
  const auto& interests =
      synthetic.truth.user_interests[static_cast<size_t>(user)];
  const auto& births =
      synthetic.truth.interest_birth_span[static_cast<size_t>(user)];
  for (size_t i = 0; i < interests.size(); ++i) {
    std::printf(" %d@%d", interests[i], births[i]);
  }
  std::printf("\n\n");

  for (int span = 1; span <= dataset.num_incremental_spans() - 1; ++span) {
    const data::UserSpanData& span_data = dataset.user_span(user, span);
    const int64_t k_before = store.NumInterests(user);
    const nn::Tensor interests_before = store.Interests(user);

    double kl = -1.0;
    if (span_data.active()) {
      kl = core::MeanAssignmentKl(
          model.embeddings().LookupNoGrad(span_data.all),
          store.Interests(user));
    }

    trainer.TrainSpan(dataset, span);

    const int64_t k_after = store.NumInterests(user);
    // Drift of the inherited interests across the span.
    double drift = 0.0;
    for (int64_t k = 0; k < k_before; ++k) {
      drift += nn::L2NormFlat(
          nn::Sub(store.Interests(user).Row(k), interests_before.Row(k)));
    }
    drift /= static_cast<double>(k_before);

    std::printf("span %d: %2zu interactions | mean KL %s%s | K %lld -> "
                "%lld | inherited drift %.3f\n",
                span, span_data.all.size(),
                kl >= 0 ? util::FormatDouble(kl, 4).c_str() : "n/a",
                kl >= 0 && kl < train_config.expansion.nid.c1
                    ? " (puzzled!)"
                    : "",
                static_cast<long long>(k_before),
                static_cast<long long>(k_after), drift);

    if (k_after > k_before) {
      std::printf("        -> NID fired; PIT kept %lld of %d candidate "
                  "vectors\n",
                  static_cast<long long>(k_after - k_before),
                  train_config.expansion.delta_k);
    }
  }

  std::printf("\nbirth spans of the final interest set:");
  for (int birth : store.BirthSpans(user)) std::printf(" %d", birth);
  std::printf("\ntotal expansion across all users: +%d interests "
              "(%d users, %d trimmed)\n",
              trainer.expansion_totals().interests_added,
              trainer.expansion_totals().users_expanded,
              trainer.expansion_totals().interests_trimmed);
  return 0;
}
