// E-commerce scenario: a Taobao-like click stream arrives in time spans;
// the platform fine-tunes its multi-interest recommender with IMSR after
// each span and serves top-N recommendations from the stored interests.
// Demonstrates the full production loop: pretrain -> per-span update ->
// checkpoint -> serve.
//
//   ./examples/ecommerce_incremental [--scale=0.3] [--top_n=10]
#include <cstdio>

#include "core/imsr_trainer.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/ranker.h"
#include "models/diversity.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace imsr;  // NOLINT(build/namespaces)
  util::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.3);
  const int top_n = static_cast<int>(flags.GetInt("top_n", 10));

  // The platform's historical click log.
  const data::SyntheticDataset synthetic =
      data::GenerateSynthetic(data::SyntheticConfig::Taobao(scale));
  const data::Dataset& dataset = *synthetic.dataset;
  std::printf("click log: %lld users, %d items, %d incremental spans\n\n",
              static_cast<long long>(dataset.num_kept_users()),
              dataset.num_items(), dataset.num_incremental_spans());

  // Base recommender: ComiRec-DR with IMSR's incremental machinery.
  models::ModelConfig model_config;
  model_config.kind = models::ExtractorKind::kComiRecDr;
  model_config.embedding_dim = 32;
  models::MsrModel model(model_config, dataset.num_items(), /*seed=*/7);
  core::InterestStore store;
  core::TrainConfig train_config;
  train_config.epochs = 3;
  core::ImsrTrainer trainer(&model, &store, train_config);

  // Night 0: pretrain on everything collected so far.
  std::printf("[night 0] pretraining on the historical log...\n");
  trainer.Pretrain(dataset);

  eval::EvalConfig eval_config;
  eval_config.top_n = 20;
  for (int span = 1; span < dataset.num_incremental_spans(); ++span) {
    // A new day/span of interactions arrived: incremental update only.
    trainer.TrainSpan(dataset, span);

    // Persist a checkpoint exactly as a serving stack would.
    util::BinaryWriter writer;
    model.Save(&writer);
    store.Save(&writer);
    std::printf(
        "[night %d] incremental update done; checkpoint %.1f KiB; "
        "avg interests/user %.2f\n",
        span, static_cast<double>(writer.buffer().size()) / 1024.0,
        store.AverageInterests());

    // Online metric on the next span's held-out purchases.
    const eval::EvalResult result = eval::EvaluateSpan(
        model.embeddings().parameter().value(), store, dataset, span + 1,
        eval_config);
    std::printf("          next-span HR@20 %.4f over %lld users\n",
                result.metrics.hit_ratio,
                static_cast<long long>(result.metrics.users));
  }

  // Serve: top-N recommendations for one user from the stored interests.
  const data::UserId user = dataset.active_users(1)[0];
  std::printf("\nserving user %d (K=%lld interests):\n", user,
              static_cast<long long>(store.NumInterests(user)));
  const auto top = eval::TopNItems(
      store.Interests(user), model.embeddings().parameter().value(),
      top_n, eval::ScoreRule::kAttentive);
  for (size_t i = 0; i < top.size(); ++i) {
    std::printf("  %2zu. item %-6d (category %d, score %.3f)\n", i + 1,
                top[i].first,
                synthetic.truth
                    .item_category[static_cast<size_t>(top[i].first)],
                top[i].second);
  }
  std::printf(
      "\nrecommendations span the user's ground-truth interests: {");
  for (int category :
       synthetic.truth.user_interests[static_cast<size_t>(user)]) {
    std::printf(" %d", category);
  }
  std::printf(" }\n");

  // Controllable diversity (ComiRec's aggregation module): re-rank a
  // larger candidate pool with a category-coverage bonus.
  const auto pool = eval::TopNItems(
      store.Interests(user), model.embeddings().parameter().value(),
      top_n * 4, eval::ScoreRule::kAttentive);
  models::DiversityConfig diversity;
  diversity.top_n = top_n;
  diversity.lambda = 0.2;
  const auto diverse = models::ControllableRerank(
      pool, synthetic.truth.item_category, diversity);
  std::printf(
      "diversity@%d: plain %.2f -> controllable (lambda=%.1f) %.2f\n",
      top_n, models::ListDiversity(top, synthetic.truth.item_category),
      diversity.lambda,
      models::ListDiversity(diverse, synthetic.truth.item_category));
  return 0;
}
