// Strategy comparison on one dataset: runs every learning strategy (FR,
// FT, SML, ADER, IMSR and the IMSR ablations) on the same synthetic log
// and prints average HR/NDCG, per-span series, training cost and interest
// growth — a minimal version of the paper's Table III + Figure 4 in one
// binary.
//
//   ./examples/strategy_comparison [--data=books] [--model=dr]
//                                  [--scale=0.3] [--repeats=1]
#include <cstdio>

#include "core/experiment.h"
#include "data/synthetic.h"
#include "util/csv.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace imsr;  // NOLINT(build/namespaces)
  util::Flags flags(argc, argv);

  const data::SyntheticDataset synthetic =
      data::GenerateSynthetic(data::SyntheticConfig::Preset(
          flags.GetString("data", "taobao"),
          flags.GetDouble("scale", 0.3)));
  const data::Dataset& dataset = *synthetic.dataset;
  std::printf("%s: %lld users, %d items\n\n",
              synthetic.config.name.c_str(),
              static_cast<long long>(dataset.num_kept_users()),
              dataset.num_items());

  core::ExperimentConfig config;
  {
    const std::string model_name = flags.GetString("model", "dr");
    std::string error;
    if (!models::ExtractorKindFromName(model_name, &config.model.kind,
                                       &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
  }
  config.model.embedding_dim = flags.GetInt("dim", 32);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 1));

  util::Table table({"Strategy", "avg HR@20", "avg NDCG@20", "train s",
                     "avg K"});
  const std::vector<core::StrategyKind> strategies = {
      core::StrategyKind::kFullRetrain,
      core::StrategyKind::kFineTune,
      core::StrategyKind::kSml,
      core::StrategyKind::kAder,
      core::StrategyKind::kImsrNoExpansion,
      core::StrategyKind::kImsrNoEir,
      core::StrategyKind::kImsr,
  };
  for (core::StrategyKind kind : strategies) {
    config.strategy.kind = kind;
    const core::ExperimentResult result =
        RunRepeatedExperiment(dataset, config, repeats);
    double train_seconds = 0.0;
    for (const core::SpanMetrics& span : result.spans) {
      train_seconds += span.train_seconds;
    }
    table.AddRow({core::StrategyKindName(kind),
                  util::FormatPercent(result.avg_hit_ratio),
                  util::FormatPercent(result.avg_ndcg),
                  util::FormatDouble(train_seconds, 1),
                  util::FormatDouble(result.spans.back().avg_interests,
                                     1)});
  }
  std::printf("%s", table.ToPrettyString().c_str());
  std::printf(
      "\nExpected ordering: FR highest (full data, high cost); IMSR best\n"
      "incremental strategy; FT cheapest but forgets existing interests.\n");
  return 0;
}
