// ThreadPool contract: exact coverage of [0, count) for any pool size /
// grain, inline nested regions, exception propagation, reuse across many
// dispatches, and thread-count-independent results.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.h"

namespace imsr::util {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    for (int64_t count : {1, 2, 3, 31, 100, 1000}) {
      for (int64_t grain : {0, 1, 7, 64, 5000}) {
        std::vector<std::atomic<int>> hits(static_cast<size_t>(count));
        for (auto& h : hits) h.store(0);
        pool.ParallelFor(count, grain, [&](int64_t begin, int64_t end) {
          ASSERT_LE(0, begin);
          ASSERT_LT(begin, end);
          ASSERT_LE(end, count);
          for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        });
        for (int64_t i = 0; i < count; ++i) {
          EXPECT_EQ(hits[i].load(), 1)
              << "threads=" << threads << " count=" << count
              << " grain=" << grain << " i=" << i;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, 8, [&](int64_t, int64_t) { called = true; });
  pool.ParallelFor(-5, 8, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleElementRunsInline) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelFor(1, 0, [&](int64_t begin, int64_t end) {
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 1);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineAndCovers) {
  ThreadPool pool(4);
  constexpr int64_t kOuter = 16;
  constexpr int64_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kOuter, 1, [&](int64_t begin, int64_t end) {
    for (int64_t o = begin; o < end; ++o) {
      // Nested region: must not deadlock; runs inline on this worker.
      pool.ParallelFor(kInner, 8, [&](int64_t ib, int64_t ie) {
        for (int64_t i = ib; i < ie; ++i) {
          hits[static_cast<size_t>(o * kInner + i)].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100, 1,
                       [&](int64_t begin, int64_t) {
                         if (begin == 42) {
                           throw std::runtime_error("chunk failure");
                         }
                       }),
      std::runtime_error);
  // The pool must still be usable after a failed region.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ResultsIdenticalAcrossThreadCounts) {
  constexpr int64_t kCount = 4096;
  auto run = [&](int threads) {
    ThreadPool pool(threads);
    std::vector<double> out(kCount, 0.0);
    pool.ParallelFor(kCount, 128, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        out[static_cast<size_t>(i)] =
            static_cast<double>(i) * 0.5 + 1.25;
      }
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(serial, run(threads)) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, ManySmallDispatchesReuseWorkers) {
  ThreadPool pool(4);
  int64_t total = 0;
  for (int round = 0; round < 2000; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(64, 8, [&](int64_t begin, int64_t end) {
      int64_t local = 0;
      for (int64_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local);
    });
    total += sum.load();
  }
  EXPECT_EQ(total, 2000 * (64 * 63 / 2));
}

TEST(ThreadPoolTest, ConcurrentExternalCallersSerialize) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(2 * 512);
  for (auto& h : hits) h.store(0);
  auto caller = [&](int64_t offset) {
    for (int round = 0; round < 50; ++round) {
      pool.ParallelFor(512, 32, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          hits[static_cast<size_t>(offset + i)].fetch_add(1);
        }
      });
    }
  };
  std::thread other([&] { caller(512); });
  caller(0);
  other.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 50);
}

TEST(ThreadPoolTest, GlobalPoolResizeRoundTrip) {
  const int original = GlobalThreadCount();
  SetGlobalThreadCount(3);
  EXPECT_EQ(GlobalThreadCount(), 3);
  EXPECT_EQ(GlobalPool().thread_count(), 3);
  std::atomic<int64_t> sum{0};
  GlobalPool().ParallelFor(100, 10, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 100);
  SetGlobalThreadCount(original > 0 ? original : 1);
}

TEST(ThreadPoolTest, ParallelChunksKeepsContiguousCoverage) {
  SetGlobalThreadCount(4);
  for (int threads : {1, 2, 4, 16}) {
    for (int64_t count : {1, 3, 7, 100}) {
      std::vector<std::atomic<int>> hits(static_cast<size_t>(count));
      for (auto& h : hits) h.store(0);
      ParallelChunks(count, threads, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (int64_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "threads=" << threads << " count=" << count;
      }
    }
  }
  SetGlobalThreadCount(1);
}

}  // namespace
}  // namespace imsr::util
