// Tests for IMSR's core components: the interest store, NID (puzzlement),
// PIT (projection + trimming) and EIR (retention losses).
#include <gtest/gtest.h>

#include <cmath>

#include "core/eir.h"
#include "core/interest_store.h"
#include "core/nid.h"
#include "core/pit.h"
#include "nn/gradcheck.h"
#include "nn/ops.h"

namespace imsr::core {
namespace {

// ---- InterestStore ----

TEST(InterestStoreTest, InitializeAndQuery) {
  InterestStore store;
  util::Rng rng(1);
  EXPECT_FALSE(store.Has(5));
  EXPECT_EQ(store.NumInterests(5), 0);
  store.Initialize(5, 4, 8, /*span=*/0, rng);
  EXPECT_TRUE(store.Has(5));
  EXPECT_EQ(store.NumInterests(5), 4);
  EXPECT_EQ(store.Interests(5).size(1), 8);
  EXPECT_EQ(store.BirthSpans(5), (std::vector<int>{0, 0, 0, 0}));
}

TEST(InterestStoreTest, AppendAndKeep) {
  InterestStore store;
  util::Rng rng(2);
  store.Initialize(1, 2, 4, 0, rng);
  nn::Tensor extra({2, 4});
  extra.at(0, 0) = 9.0f;
  extra.at(1, 1) = 8.0f;
  store.Append(1, extra, /*span=*/3);
  EXPECT_EQ(store.NumInterests(1), 4);
  EXPECT_EQ(store.BirthSpans(1), (std::vector<int>{0, 0, 3, 3}));
  EXPECT_EQ(store.Interests(1).at(2, 0), 9.0f);

  store.Keep(1, {0, 2});
  EXPECT_EQ(store.NumInterests(1), 2);
  EXPECT_EQ(store.BirthSpans(1), (std::vector<int>{0, 3}));
  EXPECT_EQ(store.Interests(1).at(1, 0), 9.0f);
}

TEST(InterestStoreTest, SetInterestsPreservesShape) {
  InterestStore store;
  util::Rng rng(3);
  store.Initialize(2, 3, 4, 0, rng);
  nn::Tensor replacement = nn::Tensor::Full({3, 4}, 2.0f);
  store.SetInterests(2, replacement);
  EXPECT_EQ(store.Interests(2).at(1, 1), 2.0f);
}

TEST(InterestStoreTest, AverageInterestsAndUsers) {
  InterestStore store;
  util::Rng rng(4);
  store.Initialize(1, 4, 4, 0, rng);
  store.Initialize(2, 6, 4, 0, rng);
  EXPECT_DOUBLE_EQ(store.AverageInterests(), 5.0);
  EXPECT_EQ(store.Users(), (std::vector<data::UserId>{1, 2}));
}

TEST(InterestStoreTest, SaveLoadRoundTrip) {
  InterestStore store;
  util::Rng rng(5);
  store.Initialize(3, 2, 4, 0, rng);
  store.Append(3, nn::Tensor::Full({1, 4}, 1.5f), 2);
  util::BinaryWriter writer;
  store.Save(&writer);

  InterestStore loaded;
  util::BinaryReader reader(writer.buffer());
  std::string error;
  ASSERT_TRUE(loaded.Load(&reader, &error)) << error;
  EXPECT_EQ(loaded.NumInterests(3), 3);
  EXPECT_EQ(loaded.BirthSpans(3), (std::vector<int>{0, 0, 2}));
  EXPECT_LT(nn::MaxAbsDiff(loaded.Interests(3), store.Interests(3)),
            1e-12f);
}

// ---- NID ----

TEST(NidTest, AssignmentDistributionIsProbability) {
  util::Rng rng(6);
  const nn::Tensor item = nn::Tensor::Randn({8}, rng);
  const nn::Tensor interests = nn::Tensor::Randn({4, 8}, rng);
  const std::vector<double> p = AssignmentDistribution(item, interests);
  double total = 0.0;
  for (double v : p) {
    EXPECT_GT(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(NidTest, KlIsNonNegativeAndZeroForUniform) {
  // An item orthogonal to every interest has uniform assignment -> KL 0.
  nn::Tensor interests({2, 4});
  interests.at(0, 0) = 1.0f;
  interests.at(1, 1) = 1.0f;
  nn::Tensor orthogonal({4});
  orthogonal.at(2) = 1.0f;
  EXPECT_NEAR(AssignmentKl(orthogonal, interests), 0.0, 1e-6);
  EXPECT_NEAR(ItemPuzzlement(orthogonal, interests), 0.0, 1e-6);
}

TEST(NidTest, AlignedItemHasHigherKlThanPuzzledItem) {
  nn::Tensor interests({2, 4});
  interests.at(0, 0) = 1.0f;
  interests.at(1, 1) = 1.0f;
  nn::Tensor aligned({4});
  aligned.at(0) = 1.0f;  // matches interest 0 exactly
  nn::Tensor puzzled({4});
  puzzled.at(0) = 1.0f;
  puzzled.at(1) = 1.0f;  // equal affinity to both
  EXPECT_GT(AssignmentKl(aligned, interests),
            AssignmentKl(puzzled, interests) + 1e-3);
  // Puzzlement (Eq. 13) is <= 0 with the maximum at uniform.
  EXPECT_LT(ItemPuzzlement(aligned, interests),
            ItemPuzzlement(puzzled, interests));
}

TEST(NidTest, PuzzlementIsScaleInvariant) {
  // Cosine-normalised logits: scaling the embedding must not change KL.
  util::Rng rng(7);
  const nn::Tensor interests = nn::Tensor::Randn({3, 6}, rng);
  const nn::Tensor item = nn::Tensor::Randn({6}, rng);
  const nn::Tensor scaled = nn::Scale(item, 25.0f);
  EXPECT_NEAR(AssignmentKl(item, interests),
              AssignmentKl(scaled, interests), 1e-5);
}

TEST(NidTest, DetectorFiresOnPuzzledBatch) {
  nn::Tensor interests({2, 4});
  interests.at(0, 0) = 1.0f;
  interests.at(1, 1) = 1.0f;
  // Items orthogonal to both interests: maximally puzzled.
  nn::Tensor puzzled_items({3, 4});
  for (int64_t i = 0; i < 3; ++i) puzzled_items.at(i, 2) = 1.0f;
  // Items aligned with interest 0: classified.
  nn::Tensor aligned_items({3, 4});
  for (int64_t i = 0; i < 3; ++i) aligned_items.at(i, 0) = 1.0f;

  NidConfig config;
  config.c1 = 0.05;
  EXPECT_TRUE(DetectNewInterests(puzzled_items, interests, config));
  EXPECT_FALSE(DetectNewInterests(aligned_items, interests, config));
}

TEST(NidTest, LargerC1FiresMoreEasily) {
  util::Rng rng(8);
  const nn::Tensor interests = nn::Tensor::Randn({4, 8}, rng);
  const nn::Tensor items = nn::Tensor::Randn({5, 8}, rng);
  const double kl = MeanAssignmentKl(items, interests);
  NidConfig strict{kl * 0.5};
  NidConfig loose{kl * 2.0};
  EXPECT_FALSE(DetectNewInterests(items, interests, strict));
  EXPECT_TRUE(DetectNewInterests(items, interests, loose));
}

TEST(NidTest, CountAssignedItemsCensus) {
  nn::Tensor interests({2, 4});
  interests.at(0, 0) = 1.0f;
  interests.at(1, 1) = 1.0f;
  nn::Tensor items({5, 4});
  items.at(0, 0) = 1.0f;  // -> interest 0
  items.at(1, 0) = 2.0f;  // -> interest 0
  items.at(2, 1) = 1.0f;  // -> interest 1
  items.at(3, 1) = 0.5f;  // -> interest 1
  items.at(4, 0) = 0.1f;  // weakly -> interest 0
  const std::vector<int> counts = CountAssignedItems(items, interests);
  EXPECT_EQ(counts, (std::vector<int>{3, 2}));
}

TEST(NidTest, CountAssignedItemsSumsToItemCount) {
  util::Rng rng(19);
  const nn::Tensor interests = nn::Tensor::Randn({5, 8}, rng);
  const nn::Tensor items = nn::Tensor::Randn({17, 8}, rng);
  const std::vector<int> counts = CountAssignedItems(items, interests);
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 17);
}

// ---- PIT ----

TEST(PitTest, SolveLinearSystemIdentityAndGeneral) {
  const nn::Tensor eye = nn::Tensor::Identity(3);
  const nn::Tensor b = nn::Tensor::FromVector({1, 2, 3});
  EXPECT_LT(nn::MaxAbsDiff(SolveLinearSystem(eye, b), b), 1e-6f);

  // General SPD system, verified by substitution.
  nn::Tensor a({2, 2}, {4, 1, 1, 3});
  const nn::Tensor rhs = nn::Tensor::FromVector({1, 2});
  const nn::Tensor x = SolveLinearSystem(a, rhs);
  EXPECT_LT(nn::MaxAbsDiff(nn::MatVec(a, x), rhs), 1e-5f);
}

TEST(PitTest, ProjectionOntoSpanIsIdempotent) {
  util::Rng rng(9);
  const nn::Tensor basis = nn::Tensor::Randn({3, 8}, rng);
  const nn::Tensor h = nn::Tensor::Randn({8}, rng);
  const nn::Tensor p1 = ProjectOntoRowSpan(basis, h);
  const nn::Tensor p2 = ProjectOntoRowSpan(basis, p1);
  EXPECT_LT(nn::MaxAbsDiff(p1, p2), 1e-3f);
}

TEST(PitTest, OrthogonalComponentIsOrthogonalToBasis) {
  util::Rng rng(10);
  const nn::Tensor basis = nn::Tensor::Randn({3, 8}, rng);
  const nn::Tensor h = nn::Tensor::Randn({8}, rng);
  const nn::Tensor orth = OrthogonalComponent(basis, h);
  for (int64_t k = 0; k < basis.size(0); ++k) {
    EXPECT_NEAR(nn::DotFlat(basis.Row(k), orth), 0.0f, 1e-3f);
  }
}

TEST(PitTest, VectorInSpanHasZeroOrthogonalComponent) {
  util::Rng rng(11);
  const nn::Tensor basis = nn::Tensor::Randn({2, 6}, rng);
  // h = 2 b0 - 0.5 b1 lies in the span.
  nn::Tensor h = nn::Scale(basis.Row(0), 2.0f);
  h.AddScaledInPlace(basis.Row(1), -0.5f);
  EXPECT_LT(nn::L2NormFlat(OrthogonalComponent(basis, h)), 1e-3f);
}

TEST(PitTest, ProjectAndTrimKeepsExistingRows) {
  util::Rng rng(12);
  nn::Tensor interests = nn::Tensor::Randn({5, 8}, rng);
  PitConfig config;
  config.c2 = 0.0;  // keep all new rows
  const TrimResult result = ProjectAndTrim(interests, 3, config);
  EXPECT_EQ(result.kept.size(), 5u);
  // Existing rows unchanged.
  for (int64_t k = 0; k < 3; ++k) {
    EXPECT_LT(
        nn::MaxAbsDiff(result.interests.Row(k), interests.Row(k)),
        1e-12f);
  }
  // New rows replaced by orthogonal components.
  const nn::Tensor existing = interests.RowSlice(0, 3);
  for (int64_t k = 3; k < 5; ++k) {
    for (int64_t b = 0; b < 3; ++b) {
      EXPECT_NEAR(
          nn::DotFlat(existing.Row(b), result.interests.Row(k)), 0.0f,
          1e-3f);
    }
  }
}

TEST(PitTest, TrimDropsRedundantNewInterests) {
  util::Rng rng(13);
  nn::Tensor existing = nn::Tensor::Randn({2, 6}, rng);
  // New row 0: pure combination of existing (should be trimmed).
  nn::Tensor redundant = nn::Scale(existing.Row(0), 1.5f);
  redundant.AddScaledInPlace(existing.Row(1), -0.7f);
  // New row 1: strongly novel direction.
  nn::Tensor novel({6});
  // Build something orthogonal-ish: orthogonalise a random vector.
  novel = OrthogonalComponent(existing, nn::Tensor::Randn({6}, rng));
  novel.ScaleInPlace(2.0f / nn::L2NormFlat(novel));

  const nn::Tensor interests =
      nn::ConcatRows({existing, redundant, novel});
  PitConfig config;
  config.c2 = 0.3;
  const TrimResult result = ProjectAndTrim(interests, 2, config);
  ASSERT_EQ(result.new_norms.size(), 2u);
  EXPECT_LT(result.new_norms[0], 0.3);  // redundant -> trimmed
  EXPECT_GT(result.new_norms[1], 0.3);  // novel -> kept
  EXPECT_EQ(result.kept, (std::vector<int64_t>{0, 1, 3}));
  EXPECT_EQ(result.interests.size(0), 3);
}

TEST(PitTest, StricterC2TrimsMore) {
  util::Rng rng(14);
  const nn::Tensor interests = nn::Tensor::Randn({6, 8}, rng);
  PitConfig loose;
  loose.c2 = 0.05;
  PitConfig strict;
  strict.c2 = 100.0;  // no orthogonal component can be this large
  const size_t kept_loose = ProjectAndTrim(interests, 3, loose).kept.size();
  const size_t kept_strict =
      ProjectAndTrim(interests, 3, strict).kept.size();
  EXPECT_GE(kept_loose, kept_strict);
  EXPECT_EQ(kept_strict, 3u);
}

// ---- EIR ----

struct EirFixture {
  EirFixture() : rng(15) {
    student = nn::Var(nn::Tensor::Randn({4, 6}, rng),
                      /*requires_grad=*/true);
    teacher = nn::Tensor::Randn({3, 6}, rng);
    candidates = nn::Var(nn::Tensor::Randn({5, 6}, rng));
    teacher_candidates = nn::Tensor::Randn({5, 6}, rng);
  }
  util::Rng rng;
  nn::Var student;
  nn::Tensor teacher;
  nn::Var candidates;
  nn::Tensor teacher_candidates;
};

TEST(EirTest, NoneKindReturnsUndefined) {
  EirFixture f;
  EirConfig config;
  config.kind = RetentionKind::kNone;
  EXPECT_FALSE(RetentionLoss(config, f.student, f.teacher, f.candidates,
                             f.teacher_candidates)
                   .defined());
}

TEST(EirTest, AllKindsProduceFiniteScalars) {
  EirFixture f;
  for (RetentionKind kind :
       {RetentionKind::kSigmoidKd, RetentionKind::kEuclidean,
        RetentionKind::kSoftmaxKd1, RetentionKind::kSoftmaxKd2,
        RetentionKind::kSoftmaxKd3}) {
    EirConfig config;
    config.kind = kind;
    nn::Var loss = RetentionLoss(config, f.student, f.teacher,
                                 f.candidates, f.teacher_candidates);
    ASSERT_TRUE(loss.defined()) << RetentionKindName(kind);
    EXPECT_TRUE(std::isfinite(loss.value().item()))
        << RetentionKindName(kind);
    EXPECT_GE(loss.value().item(), 0.0f) << RetentionKindName(kind);
  }
}

TEST(EirTest, SigmoidKdZeroWhenStudentMatchesTeacherScores) {
  // Student rows equal to the teacher's and identical candidate snapshots
  // minimise the loss; a perturbed student scores strictly higher.
  EirFixture f;
  EirConfig config;
  config.kind = RetentionKind::kSigmoidKd;
  nn::Tensor matched_rows =
      nn::ConcatRows({f.teacher, f.teacher.RowSlice(0, 1)});
  nn::Var matched(matched_rows, /*requires_grad=*/true);
  const float loss_matched =
      RetentionLoss(config, matched, f.teacher, f.candidates,
                    f.candidates.value())
          .value()
          .item();

  nn::Tensor perturbed_rows = matched_rows;
  perturbed_rows.AddScaledInPlace(
      nn::Tensor::Full(perturbed_rows.shape(), 0.6f), 1.0f);
  nn::Var perturbed(perturbed_rows, /*requires_grad=*/true);
  const float loss_perturbed =
      RetentionLoss(config, perturbed, f.teacher, f.candidates,
                    f.candidates.value())
          .value()
          .item();
  EXPECT_LT(loss_matched, loss_perturbed);
}

TEST(EirTest, DirPenalisesEuclideanDrift) {
  EirFixture f;
  EirConfig config;
  config.kind = RetentionKind::kEuclidean;
  nn::Tensor matched_rows =
      nn::ConcatRows({f.teacher, f.teacher.RowSlice(0, 1)});
  nn::Var matched(matched_rows, /*requires_grad=*/true);
  const float loss = RetentionLoss(config, matched, f.teacher,
                                   f.candidates, f.teacher_candidates)
                         .value()
                         .item();
  EXPECT_NEAR(loss, 0.0f, 1e-6f);
}

TEST(EirTest, GradientsFlowToStudentOnly) {
  EirFixture f;
  for (RetentionKind kind :
       {RetentionKind::kSigmoidKd, RetentionKind::kEuclidean,
        RetentionKind::kSoftmaxKd1}) {
    EirConfig config;
    config.kind = kind;
    f.student.ZeroGrad();
    nn::Var loss = RetentionLoss(config, f.student, f.teacher,
                                 f.candidates, f.teacher_candidates);
    loss.Backward();
    EXPECT_TRUE(f.student.has_grad()) << RetentionKindName(kind);
    // Rows beyond the teacher's K receive no retention gradient.
    const nn::Tensor& grad = f.student.grad();
    for (int64_t j = 0; j < grad.size(1); ++j) {
      EXPECT_EQ(grad.at(3, j), 0.0f) << RetentionKindName(kind);
    }
  }
}

TEST(EirTest, GradCheckSigmoidKd) {
  EirFixture f;
  EirConfig config;
  config.kind = RetentionKind::kSigmoidKd;
  config.tau = 1.3f;
  auto forward = [&] {
    return RetentionLoss(config, f.student, f.teacher, f.candidates,
                         f.teacher_candidates);
  };
  EXPECT_TRUE(nn::CheckGradients(forward, {f.student}).ok);
}

TEST(EirTest, RetentionKindNamesRoundTrip) {
  for (RetentionKind kind :
       {RetentionKind::kNone, RetentionKind::kSigmoidKd,
        RetentionKind::kEuclidean, RetentionKind::kSoftmaxKd1,
        RetentionKind::kSoftmaxKd2, RetentionKind::kSoftmaxKd3}) {
    EXPECT_EQ(RetentionKindFromName(RetentionKindName(kind)), kind);
  }
}

}  // namespace
}  // namespace imsr::core
