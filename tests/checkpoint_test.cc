// Tests for full-state checkpointing: stop after span t, resume at t+1.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/checkpoint.h"
#include "core/imsr_trainer.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace imsr::core {
namespace {

data::SyntheticDataset SmallData() {
  data::SyntheticConfig config;
  config.num_users = 30;
  config.num_items = 150;
  config.num_categories = 8;
  config.num_incremental_spans = 3;
  config.pretrain_interactions_per_user = 20;
  config.span_interactions_per_user = 8;
  config.min_interactions = 5;
  config.seed = 31;
  return data::GenerateSynthetic(config);
}

models::ModelConfig SmallModel() {
  models::ModelConfig config;
  config.kind = models::ExtractorKind::kComiRecDr;
  config.embedding_dim = 16;
  return config;
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;

  models::MsrModel model(SmallModel(), dataset.num_items(), 1);
  InterestStore store;
  TrainConfig train;
  train.pretrain_epochs = 2;
  train.epochs = 1;
  ImsrTrainer trainer(&model, &store, train);
  trainer.Pretrain(dataset);
  trainer.TrainSpan(dataset, 1);

  const std::string path = "/tmp/imsr_checkpoint_test.bin";
  CheckpointMetadata metadata;
  metadata.trained_through_span = 1;
  metadata.note = "unit test";
  ASSERT_TRUE(SaveCheckpoint(path, model, store, metadata));

  models::MsrModel restored_model(SmallModel(), dataset.num_items(), 999);
  InterestStore restored_store;
  CheckpointMetadata restored_metadata;
  std::string error;
  ASSERT_TRUE(LoadCheckpoint(path, &restored_model, &restored_store,
                             &restored_metadata, &error))
      << error;
  EXPECT_EQ(restored_metadata.trained_through_span, 1);
  EXPECT_EQ(restored_metadata.note, "unit test");
  EXPECT_EQ(restored_store.num_users(), store.num_users());
  EXPECT_LT(nn::MaxAbsDiff(model.embeddings().parameter().value(),
                           restored_model.embeddings().parameter().value()),
            1e-12f);
  for (data::UserId user : store.Users()) {
    EXPECT_LT(nn::MaxAbsDiff(store.Interests(user),
                             restored_store.Interests(user)),
              1e-12f);
    EXPECT_EQ(store.BirthSpans(user), restored_store.BirthSpans(user));
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, ResumedTrainingMatchesEvaluation) {
  // Evaluation from the restored state equals evaluation from the live
  // state.
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;

  models::MsrModel model(SmallModel(), dataset.num_items(), 2);
  InterestStore store;
  TrainConfig train;
  train.pretrain_epochs = 2;
  train.epochs = 1;
  ImsrTrainer trainer(&model, &store, train);
  trainer.Pretrain(dataset);

  const std::string path = "/tmp/imsr_checkpoint_resume_test.bin";
  ASSERT_TRUE(SaveCheckpoint(path, model, store, {0, ""}));

  eval::EvalConfig eval_config;
  const eval::EvalResult live = eval::EvaluateSpan(
      model.embeddings().parameter().value(), store, dataset, 1,
      eval_config);

  models::MsrModel restored(SmallModel(), dataset.num_items(), 77);
  InterestStore restored_store;
  ASSERT_TRUE(
      LoadCheckpoint(path, &restored, &restored_store, nullptr, nullptr));
  const eval::EvalResult resumed = eval::EvaluateSpan(
      restored.embeddings().parameter().value(), restored_store, dataset,
      1, eval_config);
  EXPECT_DOUBLE_EQ(live.metrics.hit_ratio, resumed.metrics.hit_ratio);
  EXPECT_DOUBLE_EQ(live.metrics.ndcg, resumed.metrics.ndcg);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsMissingAndForeignFiles) {
  const data::SyntheticDataset synthetic = SmallData();
  models::MsrModel model(SmallModel(), synthetic.dataset->num_items(), 3);
  InterestStore store;
  std::string error;
  EXPECT_FALSE(LoadCheckpoint("/nonexistent/ckpt.bin", &model, &store,
                              nullptr, &error));
  EXPECT_FALSE(error.empty());

  const std::string path = "/tmp/imsr_checkpoint_foreign_test.bin";
  util::BinaryWriter writer;
  writer.WriteString("not-a-checkpoint");
  ASSERT_TRUE(writer.WriteToFile(path));
  error.clear();
  EXPECT_FALSE(LoadCheckpoint(path, &model, &store, nullptr, &error));
  EXPECT_NE(error.find("not an IMSR checkpoint"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace imsr::core
