// Failure-injection tests: contract violations must abort with a
// diagnostic (IMSR_CHECK), never corrupt state silently.
#include <gtest/gtest.h>

#include "core/interest_store.h"
#include "core/pit.h"
#include "data/sampler.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/flags.h"
#include "util/serialization.h"

namespace imsr {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, TensorShapeViolations) {
  EXPECT_DEATH(nn::Tensor({0, 3}), "positive");
  EXPECT_DEATH(nn::Tensor({2}, {1.0f}), "IMSR_CHECK");
  nn::Tensor t({2, 2});
  EXPECT_DEATH(t.Reshape({3, 2}), "IMSR_CHECK");
  EXPECT_DEATH(t.RowSlice(1, 1), "RowSlice");
}

TEST(DeathTest, TensorOpMismatches) {
  const nn::Tensor a({2, 3});
  const nn::Tensor b({3, 4});
  EXPECT_DEATH(nn::Add(a, b), "IMSR_CHECK");
  EXPECT_DEATH(nn::MatMul(a, a), "IMSR_CHECK");
  EXPECT_DEATH(nn::GatherRows(a, {5}), "out of range");
}

TEST(DeathTest, AutogradContractViolations) {
  nn::Var undefined;
  EXPECT_DEATH(undefined.value(), "IMSR_CHECK");
  nn::Var vector(nn::Tensor({3}), true);
  EXPECT_DEATH(vector.Backward(), "scalar");
  nn::Var scalar(nn::Tensor({1}), true);
  EXPECT_DEATH(scalar.grad(), "no gradient");
}

TEST(DeathTest, InterestStoreMisuse) {
  core::InterestStore store;
  EXPECT_DEATH(store.Interests(7), "no interests");
  util::Rng rng(1);
  store.Initialize(7, 2, 4, 0, rng);
  // SetInterests must preserve K.
  EXPECT_DEATH(store.SetInterests(7, nn::Tensor({3, 4})),
               "preserve K");
  // Keep cannot empty a user's interest set.
  EXPECT_DEATH(store.Keep(7, {}), "at least one");
}

TEST(DeathTest, FlagSetDuplicateRegistrationAborts) {
  // Silent last-wins registration would let two call sites fight over
  // one flag; the abort must name the offender.
  util::FlagSet set("tool", "duplicate registration");
  set.AddInt("shards", 4, "worker shard count");
  EXPECT_DEATH(set.AddString("shards", "x", "conflicting re-register"),
               "flag --shards registered twice");
}

TEST(DeathTest, PitRequiresValidBasis) {
  const nn::Tensor interests = nn::Tensor::Ones({3, 4});
  core::PitConfig config;
  EXPECT_DEATH(core::ProjectAndTrim(interests, 0, config), "IMSR_CHECK");
  EXPECT_DEATH(core::ProjectAndTrim(interests, 5, config), "IMSR_CHECK");
}

TEST(DeathTest, SerializationBoundsChecked) {
  util::BinaryWriter writer;
  writer.WriteInt64(1);
  util::BinaryReader reader(writer.buffer());
  reader.ReadInt64();
  EXPECT_DEATH(reader.ReadInt64(), "truncated");
}

TEST(DeathTest, SerializationGarbageLengthsChecked) {
  // The contract-checked readers must also refuse corrupt lengths (the
  // fallible TryRead* flavours return false instead; see util_test).
  util::BinaryWriter writer;
  writer.WriteInt64(-4);
  util::BinaryReader reader(writer.buffer());
  EXPECT_DEATH(reader.ReadString(), "corrupt string length");
  util::BinaryWriter huge;
  huge.WriteInt64(INT64_MAX - 7);
  util::BinaryReader huge_reader(huge.buffer());
  EXPECT_DEATH(huge_reader.ReadString(), "corrupt string length");
}

TEST(DeathTest, NegativeSamplerNeedsTwoItems) {
  EXPECT_DEATH(data::NegativeSampler(1), "IMSR_CHECK");
}

TEST(DeathTest, NegativeSamplerRejectsOverdraw) {
  // count >= num_items cannot produce `count` draws all distinct from the
  // target's rejection; the old code would spin forever at count ==
  // num_items - 1 == 0... and silently crawl near the boundary. It must
  // abort with the corpus size in the message instead.
  data::NegativeSampler sampler(4);
  util::Rng rng(1);
  EXPECT_DEATH(sampler.Sample(4, 0, rng), "corpus of 4 items");
  EXPECT_DEATH(sampler.Sample(100, 0, rng), "corpus of 4 items");
  EXPECT_DEATH(sampler.Sample(-1, 0, rng), "IMSR_CHECK");
  // The boundary case count == num_items - 1 is legal (exactly the
  // non-target items, drawn with replacement).
  EXPECT_EQ(sampler.Sample(3, 0, rng).size(), 3u);
}

}  // namespace
}  // namespace imsr
