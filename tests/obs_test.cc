// Tests for the imsr::obs subsystem: registry concurrency, histogram
// bucket edge cases, JSON/CSV export validity (exports are parsed back
// with a small in-test JSON parser), Chrome trace-event export including
// span nesting, and the no-op gate (runtime-disabled tracing records and
// allocates nothing; with IMSR_OBS_DISABLED the macros vanish entirely).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/session.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace imsr::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON parser (objects, arrays, strings, numbers, literals)
// used to assert the exports are genuinely well-formed, not just greppable.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key " << key;
    static const JsonValue kNullValue;
    return it == object.end() ? kNullValue : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the full input; returns false on any syntax error or trailing
  // garbage.
  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      const std::string word = c == 't' ? "true" : "false";
      if (text_.compare(pos_, word.size(), word) != 0) return false;
      pos_ += word.size();
      out->boolean = c == 't';
      return true;
    }
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) return false;
      pos_ += 4;
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    for (;;) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        out->push_back(text_[pos_++]);
        continue;
      }
      out->push_back(c);
    }
    return false;
  }

  bool ParseNumber(JsonValue* out) {
    SkipSpace();
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      eat_digits();
    }
    if (!digits) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

JsonValue ParseJsonOrDie(const std::string& text) {
  JsonValue value;
  JsonParser parser(text);
  EXPECT_TRUE(parser.Parse(&value)) << "invalid JSON: " << text;
  return value;
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsTest, CounterRecordsFromPoolThreadsSnapshotEqualsSum) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test/concurrent");
  Histogram& histogram =
      registry.GetHistogram("test/concurrent_hist", {0.0, 10.0, 20.0});
  constexpr int64_t kCount = 100000;
  util::ThreadPool pool(4);
  pool.ParallelFor(kCount, 1000, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      counter.Add(1);
      histogram.Record(static_cast<double>(i % 30));
    }
  });
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].name, "test/concurrent");
  EXPECT_EQ(snapshot.counters[0].value, kCount);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, kCount);
  // i % 30 uniform: [0,10) + [10,20) buckets get 2/3, overflow 1/3.
  EXPECT_EQ(snapshot.histograms[0].buckets[0] +
                snapshot.histograms[0].buckets[1] +
                snapshot.histograms[0].overflow,
            kCount);
  EXPECT_EQ(snapshot.histograms[0].underflow, 0);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("test/gauge");
  gauge.Set(1.5);
  gauge.Set(-2.25);
  EXPECT_DOUBLE_EQ(registry.Snapshot().gauges[0].value, -2.25);
}

TEST(MetricsTest, HistogramBucketEdgeCases) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("test/edges", {0.0, 1.0, 2.0});
  ASSERT_EQ(histogram.num_buckets(), 2u);
  histogram.Record(-0.5);   // negative -> underflow
  histogram.Record(-1e300); // extreme negative -> underflow
  histogram.Record(0.0);    // left edge inclusive -> bucket 0
  histogram.Record(0.999);  // -> bucket 0
  histogram.Record(1.0);    // interior edge belongs to the upper bucket
  histogram.Record(1.999);  // -> bucket 1
  histogram.Record(2.0);    // right edge exclusive -> overflow
  histogram.Record(100.0);  // -> overflow

  EXPECT_EQ(histogram.underflow(), 2);
  EXPECT_EQ(histogram.bucket(0), 2);
  EXPECT_EQ(histogram.bucket(1), 2);
  EXPECT_EQ(histogram.overflow(), 2);
  EXPECT_EQ(histogram.count(), 8);
  EXPECT_DOUBLE_EQ(histogram.min(), -1e300);
  EXPECT_DOUBLE_EQ(histogram.max(), 100.0);
}

TEST(MetricsTest, EmptyHistogramHasZeroMinMax) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("test/empty");
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0);
}

// Helper: snapshot a single-histogram registry.
HistogramSnapshot SnapshotOf(const MetricsRegistry& registry) {
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.histograms.size(), 1u);
  return snapshot.histograms[0];
}

TEST(MetricsTest, QuantileOfEmptyHistogramIsZero) {
  MetricsRegistry registry;
  registry.GetHistogram("test/q_empty", {0.0, 1.0, 2.0});
  const HistogramSnapshot h = SnapshotOf(registry);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), 0.0);
}

TEST(MetricsTest, QuantileInterpolatesWithinABucket) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("test/q_one", {0.0, 10.0});
  // 100 records spread uniformly in the single [0, 10) bucket.
  for (int i = 0; i < 100; ++i) histogram.Record(0.05 + 0.099 * i);
  const HistogramSnapshot h = SnapshotOf(registry);
  // Uniform mass over [0, 10): p50 interpolates to the middle of the
  // bucket, p90 to 9/10 of it.
  EXPECT_NEAR(HistogramQuantile(h, 0.50), 5.0, 0.01);
  EXPECT_NEAR(HistogramQuantile(h, 0.90), 9.0, 0.01);
  // q=1 lands on the top edge but is clamped to the observed max.
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), h.max);
}

TEST(MetricsTest, QuantileSpansBucketsDeterministically) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.GetHistogram("test/q_multi", {0.0, 1.0, 2.0, 4.0});
  for (int i = 0; i < 50; ++i) histogram.Record(0.5);   // bucket [0,1)
  for (int i = 0; i < 30; ++i) histogram.Record(1.5);   // bucket [1,2)
  for (int i = 0; i < 20; ++i) histogram.Record(3.0);   // bucket [2,4)
  const HistogramSnapshot h = SnapshotOf(registry);
  // Rank 50 of 100 is the full first bucket: its top edge.
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.50), 1.0);
  // Rank 90 is 10/20 into the [2,4) bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.90), 3.0);
  // Identical snapshots give identical estimates (deterministic).
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.99),
                   HistogramQuantile(h, 0.99));
}

TEST(MetricsTest, QuantileAllUnderflowStaysWithinObservedRange) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.GetHistogram("test/q_under", {0.0, 1.0});
  histogram.Record(-8.0);
  histogram.Record(-6.0);
  histogram.Record(-4.0);
  const HistogramSnapshot h = SnapshotOf(registry);
  ASSERT_EQ(h.underflow, 3);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    const double v = HistogramQuantile(h, q);
    EXPECT_GE(v, -8.0) << "q=" << q;
    EXPECT_LE(v, -4.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), -4.0);
}

TEST(MetricsTest, QuantileAllOverflowInterpolatesToMax) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.GetHistogram("test/q_over", {0.0, 1.0});
  histogram.Record(100.0);
  histogram.Record(200.0);
  const HistogramSnapshot h = SnapshotOf(registry);
  ASSERT_EQ(h.overflow, 2);
  for (double q : {0.1, 0.5, 0.9}) {
    const double v = HistogramQuantile(h, q);
    EXPECT_GE(v, 1.0) << "q=" << q;
    EXPECT_LE(v, 200.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), 200.0);
}

TEST(MetricsTest, ExportsCarryQuantiles) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("test/q_export", {0.0, 10.0});
  for (int i = 0; i < 10; ++i) histogram.Record(static_cast<double>(i));
  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::string json = MetricsToJson(snapshot);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  const std::string csv = MetricsToCsv(snapshot);
  EXPECT_NE(csv.find(",p50,p90,p99\n"), std::string::npos);
}

TEST(MetricsTest, ResetZeroesValuesButKeepsCachedReferencesValid) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test/reset");
  Histogram& histogram = registry.GetHistogram("test/reset_hist");
  counter.Add(7);
  histogram.Record(0.5);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(histogram.count(), 0);
  // The same objects keep recording after Reset.
  counter.Add(3);
  EXPECT_EQ(registry.Snapshot().counters[0].value, 3);
}

TEST(MetricsTest, FirstHistogramRegistrationWins) {
  MetricsRegistry registry;
  Histogram& first = registry.GetHistogram("test/bounds", {0.0, 1.0});
  Histogram& second = registry.GetHistogram("test/bounds", {5.0, 6.0, 7.0});
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.bounds().size(), 2u);
}

TEST(MetricsTest, JsonExportIsValidAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("test/a").Add(42);
  registry.GetGauge("test/b").Set(1.25);
  Histogram& histogram = registry.GetHistogram("test/c", {0.0, 1.0, 2.0});
  histogram.Record(0.5);
  histogram.Record(-3.0);
  histogram.Record(9.0);

  const JsonValue root = ParseJsonOrDie(MetricsToJson(registry.Snapshot()));
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue& counters = root.at("counters");
  ASSERT_EQ(counters.array.size(), 1u);
  EXPECT_EQ(counters.array[0].at("name").str, "test/a");
  EXPECT_DOUBLE_EQ(counters.array[0].at("value").number, 42.0);
  const JsonValue& gauges = root.at("gauges");
  EXPECT_DOUBLE_EQ(gauges.array[0].at("value").number, 1.25);
  const JsonValue& histograms = root.at("histograms");
  ASSERT_EQ(histograms.array.size(), 1u);
  const JsonValue& h = histograms.array[0];
  EXPECT_DOUBLE_EQ(h.at("count").number, 3.0);
  EXPECT_DOUBLE_EQ(h.at("underflow").number, 1.0);
  EXPECT_DOUBLE_EQ(h.at("overflow").number, 1.0);
  ASSERT_EQ(h.at("bounds").array.size(), 3u);
  ASSERT_EQ(h.at("buckets").array.size(), 2u);
  EXPECT_DOUBLE_EQ(h.at("buckets").array[0].number, 1.0);
}

TEST(MetricsTest, CsvExportHasOneRowPerMetric) {
  MetricsRegistry registry;
  registry.GetCounter("test/a").Add(1);
  registry.GetGauge("test/b").Set(2.0);
  registry.GetHistogram("test/c").Record(0.5);
  const std::string csv = MetricsToCsv(registry.Snapshot());
  size_t lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4u);  // header + 3 metrics
  EXPECT_NE(csv.find("counter,test/a,1"), std::string::npos);
  EXPECT_NE(csv.find("gauge,test/b,2"), std::string::npos);
  EXPECT_NE(csv.find("histogram,test/c,,1"), std::string::npos);
}

TEST(MetricsTest, WriteMetricsFileIsAtomicAndHonoursCsvSuffix) {
  MetricsRegistry registry;
  registry.GetCounter("test/a").Add(5);
  const MetricsSnapshot snapshot = registry.Snapshot();

  const std::string json_path = testing::TempDir() + "/obs_metrics.json";
  const std::string csv_path = testing::TempDir() + "/obs_metrics.csv";
  std::string error;
  ASSERT_TRUE(WriteMetricsFile(json_path, snapshot, &error)) << error;
  ASSERT_TRUE(WriteMetricsFile(csv_path, snapshot, &error)) << error;
  // No stale tmp staging files.
  EXPECT_FALSE(std::ifstream(json_path + ".tmp").good());
  EXPECT_FALSE(std::ifstream(csv_path + ".tmp").good());

  std::ifstream json_in(json_path);
  std::string json_body((std::istreambuf_iterator<char>(json_in)),
                        std::istreambuf_iterator<char>());
  ParseJsonOrDie(json_body);
  std::ifstream csv_in(csv_path);
  std::string csv_first_line;
  std::getline(csv_in, csv_first_line);
  EXPECT_EQ(csv_first_line.rfind("kind,name,value", 0), 0u);
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(MetricsTest, WriteMetricsFileFailsCleanlyOnBadPath) {
  std::string error;
  EXPECT_FALSE(WriteMetricsFile("/nonexistent_dir_zz/m.json",
                                MetricsSnapshot(), &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Trace spans. These tests touch the process-wide recorder, so each one
// re-establishes the state it needs and disables tracing on the way out.

class TraceTest : public testing::Test {
 protected:
  void SetUp() override {
    EnableTracing(false);
    ClearTrace();
  }
  void TearDown() override {
    EnableTracing(false);
    ClearTrace();
  }
};

struct FlatEvent {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  int tid = 0;
};

std::vector<FlatEvent> ParseTraceEvents(const std::string& json) {
  const JsonValue root = ParseJsonOrDie(json);
  std::vector<FlatEvent> events;
  for (const JsonValue& event : root.at("traceEvents").array) {
    EXPECT_EQ(event.at("ph").str, "X");
    EXPECT_EQ(event.at("cat").str, "imsr");
    EXPECT_DOUBLE_EQ(event.at("pid").number, 0.0);
    events.push_back({event.at("name").str, event.at("ts").number,
                      event.at("dur").number,
                      static_cast<int>(event.at("tid").number)});
  }
  return events;
}

TEST_F(TraceTest, ExportIsValidJsonWithProperNesting) {
  EnableTracing(true);
  {
    ScopedSpan outer("outer");
    {
      ScopedSpan inner("inner");
    }
    {
      ScopedSpan inner2("inner2");
    }
  }
  EXPECT_EQ(TraceEventCount(), 3u);

  const std::vector<FlatEvent> events = ParseTraceEvents(ExportChromeTrace());
  ASSERT_EQ(events.size(), 3u);
  const FlatEvent* outer = nullptr;
  const FlatEvent* inner = nullptr;
  const FlatEvent* inner2 = nullptr;
  for (const FlatEvent& event : events) {
    if (event.name == "outer") outer = &event;
    if (event.name == "inner") inner = &event;
    if (event.name == "inner2") inner2 = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(inner2, nullptr);
  // All on the recording thread.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_EQ(outer->tid, inner2->tid);
  // Children are contained in the parent interval and ordered.
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
  EXPECT_GE(inner2->ts, inner->ts + inner->dur);
  EXPECT_LE(inner2->ts + inner2->dur, outer->ts + outer->dur);
}

TEST_F(TraceTest, SpansFromMultipleThreadsGetDistinctTids) {
  EnableTracing(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([] {
      ScopedSpan span("thread_span");
    });
  }
  for (std::thread& thread : threads) thread.join();

  const std::vector<FlatEvent> events = ParseTraceEvents(ExportChromeTrace());
  std::vector<int> tids;
  for (const FlatEvent& event : events) {
    if (event.name == "thread_span") tids.push_back(event.tid);
  }
  ASSERT_EQ(tids.size(), 3u);
  std::sort(tids.begin(), tids.end());
  EXPECT_TRUE(std::unique(tids.begin(), tids.end()) == tids.end());
}

TEST_F(TraceTest, DisabledTracingRecordsNothingAndRegistersNoBuffers) {
  ASSERT_FALSE(TracingEnabled());
  const size_t threads_before = TraceThreadCount();
  // A fresh thread is the strictest probe: with tracing disabled even its
  // first span must not register a thread buffer (i.e. zero allocations).
  std::thread probe([] {
    for (int i = 0; i < 1000; ++i) {
      ScopedSpan span("disabled_span");
      IMSR_TRACE_SPAN("disabled_macro_span");
    }
  });
  probe.join();
  EXPECT_EQ(TraceEventCount(), 0u);
  EXPECT_EQ(TraceThreadCount(), threads_before);
  EXPECT_EQ(ExportChromeTrace().find("disabled_span"), std::string::npos);
}

TEST_F(TraceTest, ClearDropsEventsButKeepsRecording) {
  EnableTracing(true);
  {
    ScopedSpan span("before_clear");
  }
  ASSERT_GE(TraceEventCount(), 1u);
  ClearTrace();
  EXPECT_EQ(TraceEventCount(), 0u);
  {
    ScopedSpan span("after_clear");
  }
  EXPECT_EQ(TraceEventCount(), 1u);
}

TEST_F(TraceTest, WriteChromeTraceProducesLoadableFile) {
  EnableTracing(true);
  {
    ScopedSpan span("file_span");
  }
  const std::string path = testing::TempDir() + "/obs_trace.json";
  std::string error;
  ASSERT_TRUE(WriteChromeTrace(path, &error)) << error;
  std::ifstream in(path);
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const JsonValue root = ParseJsonOrDie(body);
  EXPECT_GE(root.at("traceEvents").array.size(), 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The compile-time gate: with IMSR_OBS_DISABLED the instrumentation macros
// must not touch the process registry or recorder at all; with obs enabled
// they must. One test body covers both build modes.

TEST(ObsGateTest, MacrosMatchBuildMode) {
  IMSR_COUNTER_ADD("obs_test/gate_probe", 1);
  IMSR_GAUGE_SET("obs_test/gate_gauge", 4.0);
  IMSR_HISTOGRAM_RECORD("obs_test/gate_hist", 0.5);
  bool counter_found = false;
  bool gauge_found = false;
  bool histogram_found = false;
  const MetricsSnapshot snapshot = Registry().Snapshot();
  for (const CounterSnapshot& c : snapshot.counters) {
    counter_found |= c.name == "obs_test/gate_probe";
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    gauge_found |= g.name == "obs_test/gate_gauge";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    histogram_found |= h.name == "obs_test/gate_hist";
  }
#if defined(IMSR_OBS_DISABLED)
  EXPECT_FALSE(counter_found);
  EXPECT_FALSE(gauge_found);
  EXPECT_FALSE(histogram_found);
#else
  EXPECT_TRUE(counter_found);
  EXPECT_TRUE(gauge_found);
  EXPECT_TRUE(histogram_found);
#endif

  EnableTracing(true);
  ClearTrace();
  {
    IMSR_TRACE_SPAN("obs_test/gate_span");
  }
#if defined(IMSR_OBS_DISABLED)
  EXPECT_EQ(TraceEventCount(), 0u);
#else
  EXPECT_EQ(TraceEventCount(), 1u);
#endif
  EnableTracing(false);
  ClearTrace();
}

TEST(ObsSessionTest, SummaryTableListsRecordedMetrics) {
  // The summary reads the process-wide registry; the gate probe above (or
  // this counter, in a disabled build via direct API) guarantees content.
  Registry().GetCounter("obs_test/summary_probe").Add(2);
  const std::string table = MetricsSummaryTable();
  EXPECT_NE(table.find("obs_test/summary_probe"), std::string::npos);
  EXPECT_NE(table.find("counter"), std::string::npos);
}

TEST(ObsSessionTest, FlushRewritesEveryConfiguredExport) {
  ObsOptions options;
  options.metrics_out = testing::TempDir() + "/session_flush.json";
  options.trace_out = testing::TempDir() + "/session_flush_trace.json";
  {
    ObsSession session(options);
    Registry().GetCounter("obs_test/session_flush_probe").Add(1);
    session.Flush();
    // Both files exist and parse mid-session, before the destructor runs.
    std::ifstream metrics_in(options.metrics_out);
    ASSERT_TRUE(metrics_in.good());
    std::string metrics_body((std::istreambuf_iterator<char>(metrics_in)),
                             std::istreambuf_iterator<char>());
    ParseJsonOrDie(metrics_body);
    EXPECT_NE(metrics_body.find("obs_test/session_flush_probe"),
              std::string::npos);
    std::ifstream trace_in(options.trace_out);
    ASSERT_TRUE(trace_in.good());
    std::string trace_body((std::istreambuf_iterator<char>(trace_in)),
                           std::istreambuf_iterator<char>());
    ParseJsonOrDie(trace_body);
  }
  std::remove(options.metrics_out.c_str());
  std::remove(options.trace_out.c_str());
}

TEST(ObsSessionTest, ShutdownFlushCapturesFinalPartialInterval) {
  ObsOptions options;
  options.metrics_out = testing::TempDir() + "/session_final.json";
  // Interval far longer than the test: no periodic tick ever fires, so
  // everything recorded below lands only via the shutdown flush.
  options.metrics_interval_seconds = 3600.0;
  {
    ObsSession session(options);
    Registry().GetCounter("obs_test/session_final_probe").Add(7);
  }
  std::ifstream in(options.metrics_out);
  ASSERT_TRUE(in.good());
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  ParseJsonOrDie(body);
  EXPECT_NE(body.find("obs_test/session_final_probe"), std::string::npos);
  std::remove(options.metrics_out.c_str());
}

TEST(ObsSessionTest, TraceOnlySessionStillRunsPeriodicFlusher) {
  ObsOptions options;
  options.trace_out = testing::TempDir() + "/session_trace_only.json";
  options.metrics_interval_seconds = 0.02;
  {
    ObsSession session(options);
    {
      IMSR_TRACE_SPAN("obs_test/session_trace_only_span");
    }
    // Give the flusher at least one tick; the trace file must appear
    // before shutdown (metrics_out is empty, which used to disable the
    // flusher entirely).
    for (int i = 0; i < 200; ++i) {
      if (std::ifstream(options.trace_out).good()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(std::ifstream(options.trace_out).good());
  }
  std::ifstream in(options.trace_out);
  ASSERT_TRUE(in.good());
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  ParseJsonOrDie(body);
  std::remove(options.trace_out.c_str());
}

}  // namespace
}  // namespace imsr::obs
