// Edge-case and cross-cutting tests: logging levels, threaded evaluation
// consistency, expansion accounting, checkpoint round-trips per extractor
// kind, dataset boundary conditions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/checkpoint.h"
#include "core/imsr_trainer.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "util/logging.h"

namespace imsr {
namespace {

TEST(LoggingTest, LevelFilteringAndFormat) {
  const util::LogLevel previous = util::GetLogLevel();
  util::SetLogLevel(util::LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  IMSR_LOG(Info) << "should be filtered";
  IMSR_LOG(Warning) << "should appear " << 42;
  const std::string output = ::testing::internal::GetCapturedStderr();
  util::SetLogLevel(previous);
  EXPECT_EQ(output.find("should be filtered"), std::string::npos);
  EXPECT_NE(output.find("should appear 42"), std::string::npos);
  EXPECT_NE(output.find("[WARN"), std::string::npos);
}

TEST(LoggingTest, DebugBelowDefaultInfo) {
  const util::LogLevel previous = util::GetLogLevel();
  util::SetLogLevel(util::LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  IMSR_LOG(Debug) << "hidden";
  IMSR_LOG(Error) << "visible";
  const std::string output = ::testing::internal::GetCapturedStderr();
  util::SetLogLevel(previous);
  EXPECT_EQ(output.find("hidden"), std::string::npos);
  EXPECT_NE(output.find("visible"), std::string::npos);
}

data::SyntheticDataset SmallData() {
  data::SyntheticConfig config;
  config.num_users = 30;
  config.num_items = 150;
  config.num_categories = 8;
  config.num_incremental_spans = 3;
  config.pretrain_interactions_per_user = 20;
  config.span_interactions_per_user = 8;
  config.min_interactions = 5;
  config.seed = 41;
  return data::GenerateSynthetic(config);
}

TEST(ThreadedEvalTest, ThreadCountDoesNotChangeMetrics) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::ModelConfig model_config;
  model_config.kind = models::ExtractorKind::kComiRecDr;
  model_config.embedding_dim = 16;
  models::MsrModel model(model_config, dataset.num_items(), 3);
  core::InterestStore store;
  core::TrainConfig train;
  train.pretrain_epochs = 2;
  core::ImsrTrainer trainer(&model, &store, train);
  trainer.Pretrain(dataset);

  eval::EvalConfig serial;
  serial.threads = 1;
  eval::EvalConfig threaded;
  threaded.threads = 4;
  const eval::EvalResult a =
      eval::EvaluateSpan(model.embeddings().parameter().value(), store,
                         dataset, 1, serial);
  const eval::EvalResult b =
      eval::EvaluateSpan(model.embeddings().parameter().value(), store,
                         dataset, 1, threaded);
  EXPECT_DOUBLE_EQ(a.metrics.hit_ratio, b.metrics.hit_ratio);
  EXPECT_DOUBLE_EQ(a.metrics.ndcg, b.metrics.ndcg);
  EXPECT_EQ(a.metrics.users, b.metrics.users);
}

TEST(ExpansionAccountingTest, AddedPlusTrimmedEqualsAllocated) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::ModelConfig model_config;
  model_config.kind = models::ExtractorKind::kComiRecDr;
  model_config.embedding_dim = 16;
  models::MsrModel model(model_config, dataset.num_items(), 4);
  core::InterestStore store;
  core::TrainConfig train;
  train.pretrain_epochs = 1;
  train.epochs = 1;
  train.expansion.nid.c1 = 10.0;  // always fire
  train.expansion.delta_k = 3;
  core::ImsrTrainer trainer(&model, &store, train);
  trainer.Pretrain(dataset);
  trainer.TrainSpan(dataset, 1);
  const core::ExpansionOutcome& totals = trainer.expansion_totals();
  EXPECT_EQ(totals.interests_added + totals.interests_trimmed,
            totals.users_expanded * train.expansion.delta_k);
  EXPECT_LE(totals.users_expanded, totals.users_considered);
}

TEST(CheckpointPerExtractorTest, RoundTripsForEveryKind) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  for (models::ExtractorKind kind :
       {models::ExtractorKind::kMind, models::ExtractorKind::kComiRecDr,
        models::ExtractorKind::kComiRecSa}) {
    models::ModelConfig model_config;
    model_config.kind = kind;
    model_config.embedding_dim = 16;
    model_config.attention_dim = 12;
    models::MsrModel model(model_config, dataset.num_items(), 5);
    core::InterestStore store;
    core::TrainConfig train;
    train.pretrain_epochs = 1;
    core::ImsrTrainer trainer(&model, &store, train);
    trainer.Pretrain(dataset);

    const std::string path = "/tmp/imsr_edge_ckpt_test.bin";
    ASSERT_TRUE(SaveCheckpoint(path, model, store, {0, "edge"}));
    models::MsrModel restored(model_config, dataset.num_items(), 77);
    core::InterestStore restored_store;
    std::string error;
    ASSERT_TRUE(LoadCheckpoint(path, &restored, &restored_store, nullptr,
                               &error))
        << models::ExtractorKindName(kind) << ": " << error;
    const data::UserId user = dataset.active_users(0)[0];
    EXPECT_LT(nn::MaxAbsDiff(store.Interests(user),
                             restored_store.Interests(user)),
              1e-12f)
        << models::ExtractorKindName(kind);
    std::remove(path.c_str());
  }
}

TEST(DatasetBoundaryTest, ExtremeAlphaValues) {
  std::vector<data::Interaction> log;
  for (int i = 0; i < 40; ++i) {
    log.push_back({0, i % 6, i * 10});
  }
  // Nearly everything in pre-training.
  data::Dataset mostly_pretrain(1, 6, log, 2, 0.95, 1);
  EXPECT_GT(mostly_pretrain.span_interactions(0), 30);
  // Nearly everything incremental.
  data::Dataset mostly_incremental(1, 6, log, 2, 0.05, 1);
  EXPECT_LT(mostly_incremental.span_interactions(0), 10);
  int64_t total = 0;
  for (int span = 0; span < mostly_incremental.num_spans(); ++span) {
    total += mostly_incremental.span_interactions(span);
  }
  EXPECT_EQ(total, 40);
}

TEST(DatasetBoundaryTest, SingleInteractionUserHandled) {
  std::vector<data::Interaction> log = {{0, 1, 10},
                                        {1, 2, 20}, {1, 3, 60},
                                        {1, 4, 80}, {1, 5, 90}};
  data::Dataset dataset(2, 6, log, 2, 0.5, 1);
  const data::UserSpanData& lonely = dataset.user_span(0, 0);
  EXPECT_EQ(lonely.all.size(), 1u);
  EXPECT_EQ(lonely.test, -1);  // no held-out item from one interaction
  EXPECT_EQ(lonely.train.size(), 1u);
}

TEST(SyntheticBoundaryTest, TinyScaleClampsToMinimumSizes) {
  const data::SyntheticConfig config =
      data::SyntheticConfig::Taobao(1e-6);
  EXPECT_GE(config.num_users, 20);
  EXPECT_GE(config.num_items, 100);
  const data::SyntheticDataset synthetic = GenerateSynthetic(config);
  EXPECT_GT(synthetic.dataset->num_kept_users(), 0);
}

TEST(SyntheticBoundaryTest, SingleCategoryDegenerateCase) {
  data::SyntheticConfig config;
  config.num_users = 10;
  config.num_items = 30;
  config.num_categories = 1;  // every item in one category
  config.initial_interests_per_user = 1;
  config.new_interest_prob = 0.9;  // cannot add: all owned already
  config.min_interactions = 3;
  config.seed = 9;
  const data::SyntheticDataset synthetic = GenerateSynthetic(config);
  for (const auto& interests : synthetic.truth.user_interests) {
    EXPECT_EQ(interests.size(), 1u);
  }
}

}  // namespace
}  // namespace imsr
