// Tests for the Tensor class and its free-function ops.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/tensor.h"
#include "util/rng.h"

namespace imsr::nn {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) EXPECT_EQ(t.at(i, j), 0.0f);
  }
}

TEST(TensorTest, FactoryFunctions) {
  EXPECT_EQ(Tensor::Ones({4}).at(3), 1.0f);
  EXPECT_EQ(Tensor::Full({2, 2}, 7.0f).at(1, 1), 7.0f);
  const Tensor eye = Tensor::Identity(3);
  EXPECT_EQ(eye.at(1, 1), 1.0f);
  EXPECT_EQ(eye.at(0, 1), 0.0f);
  const Tensor v = Tensor::FromVector({1.0f, 2.0f});
  EXPECT_EQ(v.dim(), 1);
  EXPECT_EQ(v.at(1), 2.0f);
}

TEST(TensorTest, RandnStatistics) {
  util::Rng rng(1);
  const Tensor t = Tensor::Randn({100, 100}, rng, 2.0f, 0.5f);
  double sum = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) sum += t.data()[i];
  EXPECT_NEAR(sum / t.numel(), 2.0, 0.02);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.Reshape({3, 2});
  EXPECT_EQ(r.at(0, 1), 2.0f);
  EXPECT_EQ(r.at(2, 1), 6.0f);
}

TEST(TensorTest, RowOperations) {
  Tensor t({3, 2}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.Row(1).at(0), 3.0f);
  t.SetRow(0, Tensor::FromVector({9, 8}));
  EXPECT_EQ(t.at(0, 1), 8.0f);
  const Tensor slice = t.RowSlice(1, 3);
  EXPECT_EQ(slice.size(0), 2);
  EXPECT_EQ(slice.at(1, 1), 6.0f);
}

TEST(TensorTest, InPlaceArithmetic) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 4});
  a.AddInPlace(b);
  EXPECT_EQ(a.at(0), 4.0f);
  a.AddScaledInPlace(b, -1.0f);
  EXPECT_EQ(a.at(1), 2.0f);
  a.ScaleInPlace(2.0f);
  EXPECT_EQ(a.at(0), 2.0f);
}

TEST(TensorOpsTest, ElementwiseOps) {
  const Tensor a({2}, {1, 2});
  const Tensor b({2}, {3, 5});
  EXPECT_EQ(Add(a, b).at(1), 7.0f);
  EXPECT_EQ(Sub(b, a).at(0), 2.0f);
  EXPECT_EQ(Mul(a, b).at(1), 10.0f);
  EXPECT_EQ(Scale(a, 3.0f).at(0), 3.0f);
}

TEST(TensorOpsTest, MatMulCorrectness) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorOpsTest, MatMulIdentity) {
  util::Rng rng(2);
  const Tensor a = Tensor::Randn({4, 4}, rng);
  EXPECT_LT(MaxAbsDiff(MatMul(a, Tensor::Identity(4)), a), 1e-6f);
}

TEST(TensorOpsTest, TransposeInvolution) {
  util::Rng rng(3);
  const Tensor a = Tensor::Randn({3, 5}, rng);
  EXPECT_LT(MaxAbsDiff(Transpose(Transpose(a)), a), 1e-12f);
  EXPECT_EQ(Transpose(a).size(0), 5);
}

TEST(TensorOpsTest, MatVecMatchesMatMul) {
  util::Rng rng(4);
  const Tensor a = Tensor::Randn({3, 4}, rng);
  const Tensor x = Tensor::Randn({4}, rng);
  const Tensor via_matmul = MatMul(a, x.Reshape({4, 1}));
  const Tensor direct = MatVec(a, x);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(direct.at(i), via_matmul.at(i, 0), 1e-5f);
  }
}

TEST(TensorOpsTest, DotAndNorm) {
  const Tensor a({3}, {1, 2, 2});
  EXPECT_EQ(DotFlat(a, a), 9.0f);
  EXPECT_EQ(L2NormFlat(a), 3.0f);
}

TEST(TensorOpsTest, SoftmaxRowsSumToOne) {
  const Tensor a({2, 3}, {1, 2, 3, -1, 0, 1});
  const Tensor s = Softmax(a);
  for (int64_t i = 0; i < 2; ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < 3; ++j) {
      total += s.at(i, j);
      EXPECT_GT(s.at(i, j), 0.0f);
    }
    EXPECT_NEAR(total, 1.0f, 1e-6f);
  }
  // Monotonicity within a row.
  EXPECT_LT(s.at(0, 0), s.at(0, 2));
}

TEST(TensorOpsTest, SoftmaxShiftInvariance) {
  const Tensor a({3}, {1, 2, 3});
  const Tensor b({3}, {101, 102, 103});
  EXPECT_LT(MaxAbsDiff(Softmax(a), Softmax(b)), 1e-6f);
}

TEST(TensorOpsTest, LogSumExpRows) {
  const Tensor a({1, 2}, {0.0f, 0.0f});
  EXPECT_NEAR(LogSumExpRows(a).at(0), std::log(2.0f), 1e-6f);
  const Tensor big({2}, {500.0f, 500.0f});
  EXPECT_NEAR(LogSumExpRows(big).at(0), 500.0f + std::log(2.0f), 1e-4f);
}

TEST(TensorOpsTest, SigmoidTanhExpValues) {
  const Tensor zero({1}, {0.0f});
  EXPECT_NEAR(Sigmoid(zero).at(0), 0.5f, 1e-6f);
  EXPECT_NEAR(Tanh(zero).at(0), 0.0f, 1e-6f);
  EXPECT_NEAR(Exp(zero).at(0), 1.0f, 1e-6f);
}

// Squash property (paper Eq. 4, [Sabour et al. 2017]): direction is
// preserved, magnitude maps to |v|^2/(1+|v|^2) < 1.
TEST(TensorOpsTest, SquashPreservesDirectionAndBoundsNorm) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Tensor v = Tensor::Randn({1, 8}, rng, 0.0f, 2.0f);
    const Tensor s = SquashRows(v);
    const float norm_v = L2NormFlat(v);
    const float norm_s = L2NormFlat(s);
    EXPECT_LT(norm_s, 1.0f);
    EXPECT_NEAR(norm_s, norm_v * norm_v / (1.0f + norm_v * norm_v), 1e-4f);
    // cos(v, s) == 1.
    EXPECT_NEAR(DotFlat(v, s), norm_v * norm_s, 1e-4f);
  }
}

TEST(TensorOpsTest, SquashZeroRowIsZero) {
  const Tensor zero({1, 4});
  EXPECT_EQ(L2NormFlat(SquashRows(zero)), 0.0f);
}

TEST(TensorOpsTest, SquashIsMonotoneInNorm) {
  // Larger inputs squash to larger outputs (norms strictly increasing).
  const Tensor small({1, 2}, {0.1f, 0.0f});
  const Tensor large({1, 2}, {10.0f, 0.0f});
  EXPECT_LT(L2NormFlat(SquashRows(small)), L2NormFlat(SquashRows(large)));
}

TEST(TensorOpsTest, ConcatRows) {
  const Tensor a({1, 2}, {1, 2});
  const Tensor b({2, 2}, {3, 4, 5, 6});
  const Tensor v({2}, {7, 8});  // 1-D treated as one row
  const Tensor c = ConcatRows({a, b, v});
  EXPECT_EQ(c.size(0), 4);
  EXPECT_EQ(c.at(2, 1), 6.0f);
  EXPECT_EQ(c.at(3, 0), 7.0f);
}

TEST(TensorOpsTest, GatherRows) {
  const Tensor table({3, 2}, {1, 2, 3, 4, 5, 6});
  const Tensor gathered = GatherRows(table, {2, 0, 2});
  EXPECT_EQ(gathered.size(0), 3);
  EXPECT_EQ(gathered.at(0, 0), 5.0f);
  EXPECT_EQ(gathered.at(1, 1), 2.0f);
  EXPECT_EQ(gathered.at(2, 1), 6.0f);
}

TEST(TensorOpsTest, MaxAbsDiff) {
  const Tensor a({2}, {1, 5});
  const Tensor b({2}, {1, 2});
  EXPECT_EQ(MaxAbsDiff(a, b), 3.0f);
}

}  // namespace
}  // namespace imsr::nn
