// Tests for the interest-analysis toolkit, the multi-cutoff metrics and
// the online serving-time updater.
#include <gtest/gtest.h>

#include <cmath>

#include "core/online_update.h"
#include "eval/interest_analysis.h"
#include "eval/metrics.h"

namespace imsr {
namespace {

// ---- Multi-cutoff metrics ----

TEST(MultiCutoffTest, TracksEveryCutoffAndMrr) {
  eval::MultiCutoffAccumulator accumulator({5, 10, 20});
  accumulator.AddRank(1);   // inside all cutoffs
  accumulator.AddRank(7);   // inside 10, 20
  accumulator.AddRank(50);  // outside all
  const eval::MultiCutoffMetrics metrics = accumulator.Finalize();
  ASSERT_EQ(metrics.cutoffs, (std::vector<int>{5, 10, 20}));
  EXPECT_NEAR(metrics.hit_ratio[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics.hit_ratio[1], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics.hit_ratio[2], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics.mrr, (1.0 + 1.0 / 7.0 + 1.0 / 50.0) / 3.0, 1e-12);
  EXPECT_EQ(metrics.users, 3);
  // NDCG at larger cutoffs dominates smaller ones.
  EXPECT_GE(metrics.ndcg[2], metrics.ndcg[0]);
}

TEST(MultiCutoffTest, ConsistentWithSingleCutoffAccumulator) {
  eval::MetricsAccumulator single(20);
  eval::MultiCutoffAccumulator multi({20});
  for (int64_t rank : {1, 3, 8, 25, 100, 2}) {
    single.AddRank(rank);
    multi.AddRank(rank);
  }
  const eval::TopNMetrics a = single.Finalize();
  const eval::MultiCutoffMetrics b = multi.Finalize();
  EXPECT_NEAR(a.hit_ratio, b.hit_ratio[0], 1e-12);
  EXPECT_NEAR(a.ndcg, b.ndcg[0], 1e-12);
}

TEST(MultiCutoffTest, EmptyIsZero) {
  eval::MultiCutoffAccumulator accumulator({10});
  const eval::MultiCutoffMetrics metrics = accumulator.Finalize();
  EXPECT_EQ(metrics.users, 0);
  EXPECT_EQ(metrics.mrr, 0.0);
}

// ---- Interest analysis ----

struct AnalysisFixture {
  AnalysisFixture() : items({6, 4}), interests({3, 4}) {
    // Items on two axes.
    for (int64_t i = 0; i < 3; ++i) items.at(i, 0) = 1.0f + 0.1f * i;
    for (int64_t i = 3; i < 6; ++i) items.at(i, 1) = 1.0f + 0.1f * i;
    interests.at(0, 0) = 1.0f;   // axis-0 interest
    interests.at(1, 1) = 1.0f;   // axis-1 interest
    interests.at(2, 0) = 0.9f;   // redundant copy of interest 0
  }
  nn::Tensor items;
  nn::Tensor interests;
};

TEST(InterestAnalysisTest, ProfilesHaveExpectedShape) {
  AnalysisFixture f;
  const auto profiles =
      eval::InterestItemProfiles(f.interests, f.items);
  ASSERT_EQ(profiles.size(), 3u);
  ASSERT_EQ(profiles[0].size(), 6u);
  EXPECT_GT(profiles[0][0], profiles[0][3]);  // axis-0 interest scores
}

TEST(InterestAnalysisTest, CorrelationMatrixSymmetricWithUnitDiagonal) {
  AnalysisFixture f;
  const auto matrix =
      eval::ProfileCorrelationMatrix(f.interests, f.items);
  for (size_t i = 0; i < matrix.size(); ++i) {
    EXPECT_DOUBLE_EQ(matrix[i][i], 1.0);
    for (size_t j = 0; j < matrix.size(); ++j) {
      EXPECT_DOUBLE_EQ(matrix[i][j], matrix[j][i]);
    }
  }
  // The redundant interest correlates perfectly with interest 0 and
  // negatively with interest 1.
  EXPECT_NEAR(matrix[0][2], 1.0, 1e-9);
  EXPECT_LT(matrix[1][2], 0.0);
}

TEST(InterestAnalysisTest, MaxCorrelationFlagsRedundantNewInterest) {
  AnalysisFixture f;
  const std::vector<double> corr =
      eval::MaxCorrelationAgainstExisting(f.interests, f.items, 2);
  ASSERT_EQ(corr.size(), 1u);  // one "new" interest (row 2)
  EXPECT_NEAR(corr[0], 1.0, 1e-9);
}

TEST(InterestAnalysisTest, NormsAndDrift) {
  AnalysisFixture f;
  const std::vector<double> norms = eval::InterestNorms(f.interests);
  EXPECT_NEAR(norms[0], 1.0, 1e-6);
  EXPECT_NEAR(norms[2], 0.9, 1e-6);

  nn::Tensor moved = f.interests;
  moved.at(0, 2) += 0.5f;  // move interest 0 only
  EXPECT_NEAR(eval::InheritedDrift(f.interests, moved), 0.5 / 3.0, 1e-6);
  // Snapshots of different K compare the shared prefix.
  const nn::Tensor grown =
      nn::ConcatRows({f.interests, nn::Tensor::Full({1, 4}, 2.0f)});
  EXPECT_NEAR(eval::InheritedDrift(f.interests, grown), 0.0, 1e-9);
}

TEST(InterestAnalysisTest, DistanceToNearestExisting) {
  AnalysisFixture f;
  const std::vector<double> distances =
      eval::DistanceToNearestExisting(f.interests, 2);
  ASSERT_EQ(distances.size(), 1u);
  // Row 2 = 0.9 * row 0 -> distance 0.1 to row 0.
  EXPECT_NEAR(distances[0], 0.1, 1e-6);
}

// ---- Online updating ----

TEST(OnlineUpdateTest, PullsBestMatchingInterestTowardItem) {
  util::Rng rng(1);
  models::EmbeddingTable table(10, 4, rng);
  // Item 3 along axis 0.
  nn::Tensor& embeddings = table.parameter().mutable_value();
  embeddings.Fill(0.0f);
  embeddings.at(3, 0) = 2.0f;
  embeddings.at(4, 1) = 2.0f;

  core::InterestStore store;
  store.Initialize(0, 2, 4, 0, rng);
  nn::Tensor interests({2, 4});
  interests.at(0, 0) = 0.5f;
  interests.at(0, 1) = 0.3f;  // mostly axis 0
  interests.at(1, 1) = 0.6f;  // axis 1
  store.SetInterests(0, interests);

  core::OnlineUpdateConfig config;
  config.rate = 0.5f;
  config.temperature = 0.1f;
  core::OnlineUpdater updater(&store, &table, config);
  updater.Absorb(0, 3);
  EXPECT_EQ(updater.updates_applied(), 1);

  const nn::Tensor& updated = store.Interests(0);
  // Interest 0 rotated further towards axis 0; interest 1 barely moved.
  const double cos0_before = 0.5 / std::sqrt(0.25 + 0.09);
  const double cos0_after =
      updated.at(0, 0) / nn::L2NormFlat(updated.Row(0));
  EXPECT_GT(cos0_after, cos0_before + 1e-3);
  EXPECT_NEAR(updated.at(1, 1), 0.6f, 0.05f);
}

TEST(OnlineUpdateTest, PreservesInterestNorms) {
  util::Rng rng(2);
  models::EmbeddingTable table(20, 8, rng);
  core::InterestStore store;
  store.Initialize(1, 3, 8, 0, rng);
  const std::vector<double> before =
      eval::InterestNorms(store.Interests(1));
  core::OnlineUpdater updater(&store, &table, {});
  updater.AbsorbSequence(1, {2, 5, 9, 14});
  const std::vector<double> after =
      eval::InterestNorms(store.Interests(1));
  for (size_t k = 0; k < before.size(); ++k) {
    // The pull mixes two vectors of equal length: norms shrink at most
    // modestly and never grow beyond the original.
    EXPECT_LE(after[k], before[k] * 1.01);
    EXPECT_GE(after[k], before[k] * 0.5);
  }
}

TEST(OnlineUpdateTest, NoOpForUnknownUserOrZeroRate) {
  util::Rng rng(3);
  models::EmbeddingTable table(10, 4, rng);
  core::InterestStore store;
  core::OnlineUpdater updater(&store, &table, {});
  updater.Absorb(42, 1);  // user unknown
  EXPECT_EQ(updater.updates_applied(), 0);

  store.Initialize(42, 2, 4, 0, rng);
  core::OnlineUpdateConfig disabled;
  disabled.rate = 0.0f;
  core::OnlineUpdater frozen(&store, &table, disabled);
  const nn::Tensor before = store.Interests(42);
  frozen.Absorb(42, 1);
  EXPECT_LT(nn::MaxAbsDiff(before, store.Interests(42)), 1e-12f);
}

}  // namespace
}  // namespace imsr
