#!/bin/sh
# Daemon smoke test for imsr_serve + imsr_loadgen, run as two cells:
#
#   1. cache+batching enabled — boot the server on a unix socket with
#      timed background snapshot publishes, drive a bursty Zipf-skewed
#      closed loop against it, and assert zero failed requests AND a
#      nonzero cache-hit counter (Zipf 0.9 re-asks for hot users between
#      publishes, so a working snapshot-versioned cache must hit).
#   2. --cache=off --batch_max=1 — the PR 9 pop-score-respond loop, same
#      zero-failure bar, and the stats line must report a fully idle
#      cache (no lookups happen when the budget is zero).
#
# Both cells assert SIGTERM produces a graceful drain and exit code 0.
set -e

SERVE="$1"
LOADGEN="$2"
WORKDIR="$(mktemp -d)"

fail() {
  echo "server_smoke_test: $1" >&2
  [ -n "$SERVER_LOG" ] && [ -s "$SERVER_LOG" ] && \
    sed 's/^/  server: /' "$SERVER_LOG" >&2
  exit 1
}

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

# run_cell <name> <extra imsr_serve flags...>
# Boots the server, runs the load, SIGTERMs, and leaves the server log in
# $SERVER_LOG and the loadgen JSON in $RESULT for per-cell asserts.
run_cell() {
  CELL="$1"
  shift
  SOCK="$WORKDIR/imsr_$CELL.sock"
  SERVER_LOG="$WORKDIR/server_$CELL.log"
  RESULT="$WORKDIR/load_$CELL.json"

  # A small synthetic corpus boots in well under a second; --publish_ms
  # keeps fresh snapshot versions landing while the load runs.
  "$SERVE" --items=2000 --users=10000 --socket="$SOCK" --shards=2 \
    --publish_ms=50 "$@" >"$SERVER_LOG" 2>&1 &
  SERVER_PID=$!

  # Wait for the listening line (the socket file appears with it).
  i=0
  while ! grep -q "listening on" "$SERVER_LOG" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "$CELL: server did not start"
    kill -0 "$SERVER_PID" 2>/dev/null || \
      fail "$CELL: server exited during boot"
    sleep 0.1
  done

  # Bursty, hot-user-skewed load. Depth+bursts overshoot the shard queues
  # on purpose; overloaded responses are fine (admission control working),
  # failures are not.
  "$LOADGEN" --socket="$SOCK" --connections=4 --depth=8 --requests=8000 \
    --users=10000 --zipf=0.9 --burst_every=40 --burst_size=8 --seed=7 \
    --json_out="$RESULT" || fail "$CELL: loadgen reported failures"
  test -s "$RESULT" || fail "$CELL: loadgen wrote no JSON"

  python3 - "$RESULT" "$CELL" <<'EOF'
import json, sys
result = json.load(open(sys.argv[1]))
cell = sys.argv[2]
assert result['failures'] == 0, f"{cell}: failed requests: {result}"
assert result['sent'] == 8000, f"{cell}: short send: {result}"
assert result['ok'] + result['errors'] + result['overloaded'] == 8000, \
    f"{cell}: responses lost: {result}"
assert result['errors'] == 0, f"{cell}: unexpected error responses: {result}"
assert result['qps'] > 0 and result['p99_ms'] >= result['p50_ms'] > 0, \
    f"{cell}: nonsense latency report: {result}"
print(f'{cell} load ok:', result['qps'], 'req/s, p50', result['p50_ms'],
      'ms, p99', result['p99_ms'], 'ms,', result['overloaded'],
      'overloaded')
EOF

  # Graceful shutdown: SIGTERM must drain and exit 0.
  kill -TERM "$SERVER_PID"
  SERVER_RC=0
  wait "$SERVER_PID" || SERVER_RC=$?
  SERVER_PID=""
  [ "$SERVER_RC" -eq 0 ] || fail "$CELL: server exited $SERVER_RC on SIGTERM"
  grep -q "served" "$SERVER_LOG" || \
    fail "$CELL: server final stats line missing"
  grep -q "batching:" "$SERVER_LOG" || \
    fail "$CELL: server batch/cache stats line missing"
  [ -S "$SOCK" ] && fail "$CELL: socket file not unlinked on shutdown"
  return 0
}

# --- Cell 1: batching + response cache enabled ------------------------------
run_cell cached --batch_max=32 --cache=on --cache_mb=16

# The stats line reads "... cache: <N> hits, <M> misses, ...": under a
# Zipf 0.9 user pick the hot users repeat between publishes, so a working
# cache must record hits.
CACHE_HITS="$(sed -n 's/.*cache: \([0-9]*\) hits.*/\1/p' "$SERVER_LOG")"
[ -n "$CACHE_HITS" ] || fail "cached: could not parse cache hits"
[ "$CACHE_HITS" -gt 0 ] || fail "cached: expected nonzero cache hits"
echo "cached cell: $CACHE_HITS cache hits"

# --- Cell 2: cache off, batch_max=1 (the PR 9 serving loop) -----------------
run_cell plain --batch_max=1 --cache=off --republish=full

grep -q "cache: 0 hits, 0 misses" "$SERVER_LOG" || \
  fail "plain: --cache=off still touched the cache"

echo "server_smoke_test: ok"
