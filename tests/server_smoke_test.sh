#!/bin/sh
# Daemon smoke test for imsr_serve + imsr_loadgen: boot the server on a
# unix socket with timed background snapshot publishes, drive a bursty
# Zipf-skewed load against it, and assert
#   - the load harness reports zero failed requests (every response
#     decoded, matched an in-flight request_id, and was well-formed)
#     even though snapshots publish mid-flight,
#   - SIGTERM produces a graceful drain and exit code 0 from the server.
set -e

SERVE="$1"
LOADGEN="$2"
WORKDIR="$(mktemp -d)"
SOCK="$WORKDIR/imsr.sock"
SERVER_LOG="$WORKDIR/server.log"
RESULT="$WORKDIR/load.json"

fail() {
  echo "server_smoke_test: $1" >&2
  [ -s "$SERVER_LOG" ] && sed 's/^/  server: /' "$SERVER_LOG" >&2
  exit 1
}

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

# A small synthetic corpus boots in well under a second; --publish_ms
# keeps fresh snapshot versions landing while the load runs.
"$SERVE" --items=2000 --users=10000 --socket="$SOCK" --shards=2 \
  --publish_ms=50 >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!

# Wait for the listening line (the socket file appears with it).
i=0
while ! grep -q "listening on" "$SERVER_LOG" 2>/dev/null; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && fail "server did not start"
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during boot"
  sleep 0.1
done

# Bursty, hot-user-skewed load. Depth+bursts overshoot the shard queues
# on purpose; overloaded responses are fine (admission control working),
# failures are not.
"$LOADGEN" --socket="$SOCK" --connections=4 --depth=8 --requests=8000 \
  --users=10000 --zipf=0.9 --burst_every=40 --burst_size=8 \
  --json_out="$RESULT" || fail "loadgen reported failures"
test -s "$RESULT" || fail "loadgen wrote no JSON"

python3 - "$RESULT" <<'EOF'
import json, sys
result = json.load(open(sys.argv[1]))
assert result['failures'] == 0, f"failed requests: {result}"
assert result['sent'] == 8000, f"short send: {result}"
assert result['ok'] + result['errors'] + result['overloaded'] == 8000, \
    f"responses lost: {result}"
assert result['errors'] == 0, f"unexpected error responses: {result}"
assert result['qps'] > 0 and result['p99_ms'] >= result['p50_ms'] > 0, \
    f"nonsense latency report: {result}"
print('load ok:', result['qps'], 'req/s, p50', result['p50_ms'],
      'ms, p99', result['p99_ms'], 'ms,', result['overloaded'],
      'overloaded')
EOF

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
SERVER_RC=0
wait "$SERVER_PID" || SERVER_RC=$?
SERVER_PID=""
[ "$SERVER_RC" -eq 0 ] || fail "server exited $SERVER_RC on SIGTERM"
grep -q "served" "$SERVER_LOG" || fail "server final stats line missing"
[ -S "$SOCK" ] && fail "socket file not unlinked on shutdown"

echo "server_smoke_test: ok"
