// Tests for the serving transport and concurrency core: wire-protocol
// round-trips and decode hardening (truncation, bit flips, bad tags),
// FrameAssembler reassembly from arbitrarily-chunked streams, shard
// routing determinism, ShardSet admission control and drain guarantees,
// publish-while-serving bitwise consistency, and a socket end-to-end
// pass against a live Server.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/interest_store.h"
#include "models/msr_model.h"
#include "serve/protocol.h"
#include "serve/recommend.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/rng.h"

namespace imsr::serve {
namespace {

// Runs a complete encoded frame through the assembler and returns its
// CRC-verified payload.
std::vector<uint8_t> PayloadOf(const std::vector<uint8_t>& frame) {
  FrameAssembler assembler;
  assembler.Append(frame.data(), frame.size());
  std::vector<uint8_t> payload;
  std::string error;
  EXPECT_EQ(assembler.Next(&payload, &error), FrameAssembler::Result::kFrame)
      << error;
  return payload;
}

RequestFrame MakeRequest(uint64_t id, data::UserId user, int top_n) {
  RequestFrame request;
  request.request_id = id;
  request.user = user;
  request.top_n = top_n;
  return request;
}

TEST(ProtocolTest, RequestRoundTrip) {
  const RequestFrame request = MakeRequest(0xfeedfacecafe, 123456, 20);
  const std::vector<uint8_t> payload = PayloadOf(EncodeRequest(request));
  RequestFrame decoded;
  std::string error;
  ASSERT_TRUE(TryDecodeRequest(payload, &decoded, &error)) << error;
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.user, request.user);
  EXPECT_EQ(decoded.top_n, request.top_n);
}

TEST(ProtocolTest, ResponseRoundTripAllStatuses) {
  for (const ResponseStatus status :
       {ResponseStatus::kOk, ResponseStatus::kError,
        ResponseStatus::kOverloaded, ResponseStatus::kShuttingDown}) {
    ResponseFrame response;
    response.request_id = 77;
    response.status = status;
    response.snapshot_version = 42;
    if (status == ResponseStatus::kOk) {
      response.items = {{5, 1.5f}, {9, 0.25f}, {1, -3.75f}};
    } else {
      response.error = "reason: " + std::string(ResponseStatusName(status));
    }
    const std::vector<uint8_t> payload = PayloadOf(EncodeResponse(response));
    ResponseFrame decoded;
    std::string error;
    ASSERT_TRUE(TryDecodeResponse(payload, &decoded, &error)) << error;
    EXPECT_EQ(decoded.request_id, response.request_id);
    EXPECT_EQ(decoded.status, response.status);
    EXPECT_EQ(decoded.snapshot_version, response.snapshot_version);
    EXPECT_EQ(decoded.items, response.items);
    EXPECT_EQ(decoded.error, response.error);
  }
}

// Scores round-trip bitwise, including non-finite-adjacent values.
TEST(ProtocolTest, ResponseScoresBitwiseExact) {
  ResponseFrame response;
  response.request_id = 1;
  response.status = ResponseStatus::kOk;
  response.items = {{0, 1.0000001f},
                    {1, -0.0f},
                    {2, 3.4028235e38f},
                    {3, 1.1754944e-38f}};
  const std::vector<uint8_t> payload = PayloadOf(EncodeResponse(response));
  ResponseFrame decoded;
  std::string error;
  ASSERT_TRUE(TryDecodeResponse(payload, &decoded, &error)) << error;
  ASSERT_EQ(decoded.items.size(), response.items.size());
  for (size_t i = 0; i < response.items.size(); ++i) {
    EXPECT_EQ(decoded.items[i].first, response.items[i].first);
    // Bitwise, not value, equality (distinguishes -0.0 from 0.0).
    uint32_t want = 0;
    uint32_t got = 0;
    std::memcpy(&want, &response.items[i].second, sizeof(want));
    std::memcpy(&got, &decoded.items[i].second, sizeof(got));
    EXPECT_EQ(got, want);
  }
}

// Frames survive arbitrary chunking: two coalesced frames delivered one
// byte at a time come out intact and in order.
TEST(ProtocolTest, AssemblerReassemblesBytewiseStream) {
  std::vector<uint8_t> stream = EncodeRequest(MakeRequest(1, 10, 5));
  const std::vector<uint8_t> second = EncodeRequest(MakeRequest(2, 20, 7));
  stream.insert(stream.end(), second.begin(), second.end());

  FrameAssembler assembler;
  std::vector<RequestFrame> decoded;
  std::vector<uint8_t> payload;
  std::string error;
  for (const uint8_t byte : stream) {
    assembler.Append(&byte, 1);
    for (;;) {
      const FrameAssembler::Result result = assembler.Next(&payload, &error);
      if (result == FrameAssembler::Result::kNeedMore) break;
      ASSERT_EQ(result, FrameAssembler::Result::kFrame) << error;
      RequestFrame request;
      ASSERT_TRUE(TryDecodeRequest(payload, &request, &error)) << error;
      decoded.push_back(request);
    }
  }
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].request_id, 1u);
  EXPECT_EQ(decoded[0].user, 10);
  EXPECT_EQ(decoded[1].request_id, 2u);
  EXPECT_EQ(decoded[1].top_n, 7);
  EXPECT_EQ(assembler.buffered(), 0u);
}

// A truncated stream never produces a frame — it just keeps asking for
// more bytes, at every prefix length.
TEST(ProtocolTest, TruncationNeverCompletesAFrame) {
  const std::vector<uint8_t> frame =
      EncodeRequest(MakeRequest(9, 1234, 10));
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameAssembler assembler;
    assembler.Append(frame.data(), cut);
    std::vector<uint8_t> payload;
    std::string error;
    EXPECT_EQ(assembler.Next(&payload, &error),
              FrameAssembler::Result::kNeedMore)
        << "prefix of " << cut << " bytes completed a frame";
  }
}

// CRC-32 detects every single-bit error in the data it covers: flipping
// any payload bit (or any CRC-field bit) must surface as a framing error,
// never as a silently-different frame.
TEST(ProtocolTest, EveryPayloadBitFlipIsDetected) {
  const std::vector<uint8_t> frame =
      EncodeRequest(MakeRequest(0x123456789a, 987654, 50));
  // Bytes [4, 8) are the CRC field; [8, size) the payload.
  for (size_t byte = 4; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupted = frame;
      corrupted[byte] ^= static_cast<uint8_t>(1u << bit);
      FrameAssembler assembler;
      assembler.Append(corrupted.data(), corrupted.size());
      std::vector<uint8_t> payload;
      std::string error;
      EXPECT_EQ(assembler.Next(&payload, &error),
                FrameAssembler::Result::kError)
          << "bit " << bit << " of byte " << byte << " went undetected";
    }
  }
}

TEST(ProtocolTest, OversizedLengthIsAFramingError) {
  const uint32_t length = kMaxFramePayload + 1;
  uint8_t header[kFrameHeaderBytes] = {};
  std::memcpy(header, &length, sizeof(length));
  FrameAssembler assembler;
  assembler.Append(header, sizeof(header));
  std::vector<uint8_t> payload;
  std::string error;
  EXPECT_EQ(assembler.Next(&payload, &error),
            FrameAssembler::Result::kError);
  EXPECT_NE(error.find("exceeds limit"), std::string::npos) << error;
}

TEST(ProtocolTest, DecodeRejectsMalformedPayloads) {
  const std::vector<uint8_t> request_payload =
      PayloadOf(EncodeRequest(MakeRequest(3, 42, 5)));
  RequestFrame request;
  ResponseFrame response;
  std::string error;

  // A request payload is not a response (and vice versa): tag mismatch.
  EXPECT_FALSE(TryDecodeResponse(request_payload, &response, &error));
  ResponseFrame ok_response;
  ok_response.status = ResponseStatus::kOk;
  const std::vector<uint8_t> response_payload =
      PayloadOf(EncodeResponse(ok_response));
  EXPECT_FALSE(TryDecodeRequest(response_payload, &request, &error));

  // Truncated payload bytes (CRC already verified upstream — decode must
  // still fail cleanly, not read out of bounds).
  for (size_t cut = 0; cut < request_payload.size(); ++cut) {
    const std::vector<uint8_t> truncated(request_payload.begin(),
                                         request_payload.begin() + cut);
    EXPECT_FALSE(TryDecodeRequest(truncated, &request, &error))
        << "decoded from " << cut << " of " << request_payload.size()
        << " bytes";
  }

  // Trailing garbage after a well-formed body.
  std::vector<uint8_t> padded = request_payload;
  padded.push_back(0);
  EXPECT_FALSE(TryDecodeRequest(padded, &request, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;

  // Empty payload.
  EXPECT_FALSE(TryDecodeRequest({}, &request, &error));
}

TEST(ShardRoutingTest, DeterministicInRangeAndBalanced) {
  for (const size_t shards : {1u, 2u, 4u, 7u}) {
    std::vector<int> counts(shards, 0);
    for (data::UserId user = 0; user < 10000; ++user) {
      const size_t shard = ShardOf(user, shards);
      ASSERT_LT(shard, shards);
      // Routing is a pure function of (user, num_shards).
      ASSERT_EQ(shard, ShardOf(user, shards));
      counts[shard]++;
    }
    // splitmix64 scrambles sequential ids: no shard is starved or hot
    // beyond 2x of fair share.
    for (const int count : counts) {
      EXPECT_GT(count, 10000 / static_cast<int>(shards) / 2);
      EXPECT_LT(count, 2 * 10000 / static_cast<int>(shards));
    }
  }
}

// --- ShardSet ---------------------------------------------------------------

// Thread-safe sink recording every response it receives.
class CollectSink : public ResponseSink {
 public:
  void SendResponse(const ResponseFrame& response) override {
    std::lock_guard<std::mutex> lock(mutex_);
    responses_.push_back(response);
  }
  std::vector<ResponseFrame> responses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return responses_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<ResponseFrame> responses_;
};

// A sink whose first SendResponse blocks until Release() — wedges a shard
// worker so the test can fill its queue deterministically.
class BlockingSink : public CollectSink {
 public:
  void SendResponse(const ResponseFrame& response) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      entered_ = true;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
    CollectSink::SendResponse(response);
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [this] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  bool entered_ = false;
  bool released_ = false;
};

// A small serving world: `num_users` users with varying interest counts
// (k_base + user % 3) over `num_items` items. k_base >= 8 puts every
// user on the wide-output kernel dispatch; with_index attaches an IVF
// index so the kIVF retrieval path has something to probe.
std::shared_ptr<ServingSnapshot> MakeSnapshot(int num_items, int num_users,
                                              int dim, uint64_t seed,
                                              int span, int k_base = 1,
                                              bool with_index = false) {
  models::ModelConfig model_config;
  model_config.embedding_dim = dim;
  models::MsrModel model(model_config, num_items, seed);
  core::InterestStore store;
  util::Rng rng(seed + 1);
  for (data::UserId user = 0; user < num_users; ++user) {
    store.Initialize(user, k_base + static_cast<int>(user % 3), dim, 0,
                     rng);
  }
  if (with_index) {
    return BuildSnapshot(model, store, span, IvfBuildConfig{});
  }
  return BuildSnapshot(model, store, span);
}

TEST(ShardSetTest, AnswersEveryAdmittedRequest) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot(/*num_items=*/50, /*num_users=*/40,
                                /*dim=*/8, /*seed=*/3, /*span=*/1));
  ShardSetConfig config;
  config.num_shards = 4;
  // Cap >= kRequests: admission can never fire even if a busy machine
  // keeps every worker descheduled while the main thread enqueues.
  config.queue_cap = 256;
  ShardSet shards(&registry, config);
  shards.Start();

  auto sink = std::make_shared<CollectSink>();
  const int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_TRUE(shards.Submit(
        MakeRequest(static_cast<uint64_t>(i), i % 40, 5), sink));
  }
  shards.Drain();

  const std::vector<ResponseFrame> responses = sink->responses();
  ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
  std::vector<bool> seen(kRequests, false);
  for (const ResponseFrame& response : responses) {
    ASSERT_LT(response.request_id, static_cast<uint64_t>(kRequests));
    EXPECT_FALSE(seen[response.request_id]) << "duplicate response";
    seen[response.request_id] = true;
    EXPECT_EQ(response.status, ResponseStatus::kOk);
    EXPECT_EQ(response.items.size(), 5u);
    EXPECT_EQ(response.snapshot_version, 1u);
  }
  const ShardSetStats stats = shards.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.answered, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ShardSetTest, UnknownUserGetsErrorResponseNotDrop) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot(50, 10, 8, 4, 1));
  ShardSetConfig config;
  config.num_shards = 2;
  ShardSet shards(&registry, config);
  shards.Start();
  auto sink = std::make_shared<CollectSink>();
  EXPECT_TRUE(shards.Submit(MakeRequest(7, /*user=*/9999, 5), sink));
  shards.Drain();
  const std::vector<ResponseFrame> responses = sink->responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].request_id, 7u);
  EXPECT_EQ(responses[0].status, ResponseStatus::kError);
  EXPECT_NE(responses[0].error.find("9999"), std::string::npos);
}

TEST(ShardSetTest, NoSnapshotYetIsAnErrorResponse) {
  SnapshotRegistry registry;  // nothing published
  ShardSetConfig config;
  config.num_shards = 1;
  ShardSet shards(&registry, config);
  shards.Start();
  auto sink = std::make_shared<CollectSink>();
  EXPECT_TRUE(shards.Submit(MakeRequest(1, 0, 5), sink));
  shards.Drain();
  const std::vector<ResponseFrame> responses = sink->responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ResponseStatus::kError);
  EXPECT_NE(responses[0].error.find("snapshot"), std::string::npos);
}

// Admission control: with the single shard's worker wedged and its queue
// full, the next Submit is rejected synchronously with kOverloaded — the
// queue never grows past its cap and nothing is silently dropped.
TEST(ShardSetTest, FullQueueRejectsWithOverload) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot(50, 10, 8, 5, 1));
  ShardSetConfig config;
  config.num_shards = 1;
  config.queue_cap = 2;
  ShardSet shards(&registry, config);
  shards.Start();

  auto blocking = std::make_shared<BlockingSink>();
  auto sink = std::make_shared<CollectSink>();
  // Wedge the worker on request 0's response...
  ASSERT_TRUE(shards.Submit(MakeRequest(0, 0, 3), blocking));
  blocking->AwaitEntered();
  // ...fill the queue to its cap...
  ASSERT_TRUE(shards.Submit(MakeRequest(1, 1, 3), sink));
  ASSERT_TRUE(shards.Submit(MakeRequest(2, 2, 3), sink));
  // ...and the next submit must bounce, synchronously, on this thread.
  EXPECT_FALSE(shards.Submit(MakeRequest(3, 3, 3), sink));
  std::vector<ResponseFrame> responses = sink->responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].request_id, 3u);
  EXPECT_EQ(responses[0].status, ResponseStatus::kOverloaded);

  blocking->Release();
  shards.Drain();
  // Everything admitted before the bounce still got answered.
  EXPECT_EQ(blocking->responses().size(), 1u);
  responses = sink->responses();
  ASSERT_EQ(responses.size(), 3u);
  const ShardSetStats stats = shards.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.answered, 3u);
}

// The heart of the tentpole's consistency claim: while snapshots publish
// mid-flight, every response is bitwise-identical to RecommendOne run
// directly against *some* published snapshot — the one named by the
// response's snapshot_version. No response mixes two versions.
TEST(ShardSetTest, PublishWhileServingIsBitwiseConsistent) {
  const int kUsers = 30;
  const int kTopN = 8;
  const std::shared_ptr<ServingSnapshot> v1 =
      MakeSnapshot(/*num_items=*/80, kUsers, /*dim=*/8, /*seed=*/11,
                   /*span=*/1);
  const std::shared_ptr<ServingSnapshot> v2 =
      MakeSnapshot(/*num_items=*/80, kUsers, /*dim=*/8, /*seed=*/29,
                   /*span=*/2);
  SnapshotRegistry registry;
  registry.Publish(v1);

  // Expected answers per user, per version, computed single-threaded.
  const ServeConfig serve;
  std::map<uint64_t, std::vector<std::vector<std::pair<data::ItemId, float>>>>
      expected;
  RecommendScratch scratch;
  for (const auto& [version, snapshot] :
       std::vector<std::pair<uint64_t, std::shared_ptr<ServingSnapshot>>>{
           {1, v1}, {2, v2}}) {
    auto& per_user = expected[version];
    per_user.resize(kUsers);
    for (data::UserId user = 0; user < kUsers; ++user) {
      RecommendRequest request;
      request.user = user;
      request.top_n = kTopN;
      RecommendResponse response;
      RecommendOne(*snapshot, request, serve, &scratch, &response);
      ASSERT_TRUE(response.ok) << response.error;
      per_user[static_cast<size_t>(user)] = response.items;
    }
  }

  ShardSetConfig config;
  config.num_shards = 4;
  config.queue_cap = 1024;
  config.serve = serve;
  ShardSet shards(&registry, config);
  shards.Start();
  auto sink = std::make_shared<CollectSink>();

  // Phase 1 entirely against v1, then publish v2 into the *live* shard
  // set (workers stay up throughout), then phase 2 entirely against v2.
  // The phase boundary makes the expected version per request
  // deterministic; mid-flight racing is exercised by the server smoke
  // and the loadgen CI job.
  const int kPerPhase = 300;
  for (int i = 0; i < kPerPhase; ++i) {
    ASSERT_TRUE(shards.Submit(
        MakeRequest(static_cast<uint64_t>(i), i % kUsers, kTopN), sink));
  }
  while (shards.stats().answered <
         static_cast<uint64_t>(kPerPhase)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  registry.Publish(v2);
  for (int i = kPerPhase; i < 2 * kPerPhase; ++i) {
    ASSERT_TRUE(shards.Submit(
        MakeRequest(static_cast<uint64_t>(i), i % kUsers, kTopN), sink));
  }
  shards.Drain();

  const std::vector<ResponseFrame> responses = sink->responses();
  ASSERT_EQ(responses.size(), static_cast<size_t>(2 * kPerPhase));
  for (const ResponseFrame& response : responses) {
    ASSERT_EQ(response.status, ResponseStatus::kOk) << response.error;
    const uint64_t want_version =
        response.request_id < static_cast<uint64_t>(kPerPhase) ? 1 : 2;
    ASSERT_EQ(response.snapshot_version, want_version)
        << "request " << response.request_id;
    const size_t user = response.request_id % kUsers;
    // EXPECT_EQ on vector<pair<ItemId, float>>: item ids and float scores
    // must match bitwise — no tolerance.
    EXPECT_EQ(response.items, expected[want_version][user])
        << "request " << response.request_id << " answered from v"
        << want_version << " diverged";
  }
}

// RecommendBatch is the worker's fused scoring entry point; its contract
// is bitwise identity with per-request RecommendOne. Exercised across
// the kernel-dispatch regimes (narrow K, wide K) and the IVF shortlist
// path, with duplicate (user, top_n) pairs, defaulted top_n, and an
// unknown user mixed into the batch, at batch sizes 1 and N.
TEST(RecommendBatchTest, BitwiseMatchesRecommendOne) {
  struct Case {
    const char* name;
    int k_base;
    bool with_index;
    RetrievalMode retrieval;
  };
  const std::vector<Case> cases = {
      {"exact_narrow", 1, false, RetrievalMode::kExact},
      {"exact_wide", 9, false, RetrievalMode::kExact},
      {"ivf", 1, true, RetrievalMode::kIVF},
  };
  for (const Case& test_case : cases) {
    SCOPED_TRACE(test_case.name);
    const std::shared_ptr<ServingSnapshot> snapshot = MakeSnapshot(
        /*num_items=*/120, /*num_users=*/12, /*dim=*/8, /*seed=*/41,
        /*span=*/1, test_case.k_base, test_case.with_index);
    ServeConfig config;
    config.default_top_n = 7;
    config.retrieval = test_case.retrieval;

    std::vector<RecommendRequest> requests;
    auto add = [&requests](data::UserId user, int top_n) {
      RecommendRequest request;
      request.user = user;
      request.top_n = top_n;
      requests.push_back(request);
    };
    add(0, 5);
    add(3, 9);
    add(0, 5);     // duplicate of request 0: copied, not re-scored
    add(7, 0);     // defaulted top_n
    add(9999, 5);  // unknown user: per-request error, batch survives
    add(7, 7);     // duplicate of request 3 after default resolution
    add(11, 120);  // top_n == corpus size
    add(3, 4);     // same user, different top_n: distinct answer

    RecommendScratch single_scratch;
    std::vector<RecommendResponse> expected(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      RecommendOne(*snapshot, requests[i], config, &single_scratch,
                   &expected[i]);
    }

    RecommendScratch batch_scratch;
    std::vector<RecommendResponse> got(requests.size());
    RecommendBatch(*snapshot, requests.data(), requests.size(), config,
                   &batch_scratch, got.data());
    for (size_t i = 0; i < requests.size(); ++i) {
      SCOPED_TRACE("request " + std::to_string(i));
      EXPECT_EQ(got[i].ok, expected[i].ok);
      EXPECT_EQ(got[i].error, expected[i].error);
      // EXPECT_EQ on vector<pair<ItemId, float>> is exact — identical
      // item order and float bits, no tolerance.
      EXPECT_EQ(got[i].items, expected[i].items);
    }

    // A batch of one is the degenerate case the batch_max=1 server
    // configuration runs permanently.
    for (size_t i = 0; i < requests.size(); ++i) {
      RecommendResponse one;
      RecommendBatch(*snapshot, &requests[i], 1, config, &batch_scratch,
                     &one);
      EXPECT_EQ(one.ok, expected[i].ok);
      EXPECT_EQ(one.error, expected[i].error);
      EXPECT_EQ(one.items, expected[i].items);
    }
  }
}

// Micro-batched draining must be invisible in the bytes on the wire:
// every response frame a batching worker produces is byte-identical to
// the frame a batch_max=1 worker (the PR 9 loop) would have produced.
// A wedged sink forces a deep queue so real multi-request batches form.
TEST(ShardSetTest, BatchedResponsesBitwiseEqualSingleRequestFrames) {
  const int kUsers = 10;
  const std::shared_ptr<ServingSnapshot> snapshot = MakeSnapshot(
      /*num_items=*/90, kUsers, /*dim=*/8, /*seed=*/23, /*span=*/1,
      /*k_base=*/9);
  // Oracle frames from direct RecommendOne calls — what the unbatched
  // worker would have sent.
  const ServeConfig serve;
  RecommendScratch scratch;
  auto oracle_frame = [&](const RequestFrame& request) {
    RecommendRequest single;
    single.user = request.user;
    single.top_n = request.top_n;
    RecommendResponse response;
    RecommendOne(*snapshot, single, serve, &scratch, &response);
    ResponseFrame frame;
    frame.request_id = request.request_id;
    frame.snapshot_version = 1;
    if (response.ok) {
      frame.status = ResponseStatus::kOk;
      frame.items = response.items;
    } else {
      frame.status = ResponseStatus::kError;
      frame.error = response.error;
    }
    return frame;
  };

  std::vector<RequestFrame> requests;
  for (int i = 0; i < 24; ++i) {
    // Duplicates (user repeats every kUsers), a defaulted top_n, and an
    // unknown user all ride inside the forced batches.
    const int top_n = i % 6 == 5 ? 0 : 3 + i % 4;
    const data::UserId user = i % 8 == 7 ? 9999 : i % kUsers;
    requests.push_back(MakeRequest(static_cast<uint64_t>(i), user, top_n));
  }

  for (const int num_shards : {1, 3}) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    SnapshotRegistry registry;
    registry.Publish(snapshot);
    ShardSetConfig config;
    config.num_shards = num_shards;
    config.queue_cap = 64;
    config.batch_max = 6;
    config.serve = serve;
    ShardSet shards(&registry, config);
    shards.Start();

    // Wedge one worker on a throwaway request so the queue behind it
    // deepens; its release drains the backlog in multi-request batches.
    auto blocking = std::make_shared<BlockingSink>();
    ASSERT_TRUE(shards.Submit(MakeRequest(1000, 0, 3), blocking));
    blocking->AwaitEntered();
    auto sink = std::make_shared<CollectSink>();
    for (const RequestFrame& request : requests) {
      ASSERT_TRUE(shards.Submit(request, sink));
    }
    blocking->Release();
    shards.Drain();

    const std::vector<ResponseFrame> responses = sink->responses();
    ASSERT_EQ(responses.size(), requests.size());
    for (const ResponseFrame& response : responses) {
      ASSERT_LT(response.request_id, requests.size());
      const ResponseFrame want =
          oracle_frame(requests[response.request_id]);
      // memcmp-level identity: the full encoded frame, not just fields.
      EXPECT_EQ(EncodeResponse(response), EncodeResponse(want))
          << "request " << response.request_id;
    }
    if (num_shards == 1) {
      // 24 queued requests behind the wedge with batch_max=6 cannot
      // legally drain one at a time.
      const ShardSetStats stats = shards.stats();
      EXPECT_LT(stats.batches, stats.answered);
    }
  }
}

// A cache hit must be invisible to the client: byte-identical frame to
// the cold scored response, and a defaulted top_n shares the entry of
// the equivalent explicit request (resolved top_n is in the key).
TEST(ShardSetTest, CacheHitIsBitwiseIdenticalToColdScore) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot(80, 12, 8, 31, 1));
  ShardSetConfig config;
  config.num_shards = 1;
  config.batch_max = 1;
  config.cache_bytes = 1 << 20;
  ShardSet shards(&registry, config);
  shards.Start();
  auto sink = std::make_shared<CollectSink>();

  // Same request_id on purpose: frames must be memcmp-equal end to end.
  ASSERT_TRUE(shards.Submit(MakeRequest(1, 4, 10), sink));
  while (shards.stats().answered < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(shards.Submit(MakeRequest(1, 4, 10), sink));
  while (shards.stats().answered < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // top_n=0 resolves to default_top_n=10: hits the same entry.
  ASSERT_TRUE(shards.Submit(MakeRequest(2, 4, 0), sink));
  shards.Drain();

  const std::vector<ResponseFrame> responses = sink->responses();
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].status, ResponseStatus::kOk);
  EXPECT_EQ(EncodeResponse(responses[1]), EncodeResponse(responses[0]));
  EXPECT_EQ(responses[2].items, responses[0].items);
  EXPECT_EQ(responses[2].snapshot_version, responses[0].snapshot_version);

  const ShardSetStats stats = shards.stats();
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_evictions, 0u);
  EXPECT_GT(stats.cache_bytes, 0u);
}

// Publishing a snapshot with different scoring content must invalidate
// every cached answer: the data epoch advances and is in the key, so the
// next identical request re-scores against the new snapshot and can
// never be served a stale entry.
TEST(ShardSetTest, PublishInvalidatesCacheAndForcesRescore) {
  const std::shared_ptr<ServingSnapshot> v1 =
      MakeSnapshot(80, 12, 8, 31, /*span=*/1);
  const std::shared_ptr<ServingSnapshot> v2 =
      MakeSnapshot(80, 12, 8, 57, /*span=*/2);
  const ServeConfig serve;
  RecommendScratch scratch;
  RecommendRequest probe;
  probe.user = 5;
  probe.top_n = 8;
  RecommendResponse want_v1;
  RecommendOne(*v1, probe, serve, &scratch, &want_v1);
  RecommendResponse want_v2;
  RecommendOne(*v2, probe, serve, &scratch, &want_v2);
  ASSERT_TRUE(want_v1.ok);
  ASSERT_TRUE(want_v2.ok);
  // Different seeds: the two snapshots really do rank differently, so a
  // stale cache hit would be visible below.
  ASSERT_NE(want_v1.items, want_v2.items);

  SnapshotRegistry registry;
  registry.Publish(v1);
  ShardSetConfig config;
  config.num_shards = 1;
  config.batch_max = 1;
  config.cache_bytes = 1 << 20;
  config.serve = serve;
  ShardSet shards(&registry, config);
  shards.Start();
  auto sink = std::make_shared<CollectSink>();

  ASSERT_TRUE(shards.Submit(MakeRequest(0, probe.user, probe.top_n), sink));
  while (shards.stats().answered < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(shards.Submit(MakeRequest(1, probe.user, probe.top_n), sink));
  while (shards.stats().answered < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  registry.Publish(v2);
  ASSERT_TRUE(shards.Submit(MakeRequest(2, probe.user, probe.top_n), sink));
  shards.Drain();

  const std::vector<ResponseFrame> responses = sink->responses();
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].snapshot_version, 1u);
  EXPECT_EQ(responses[0].items, want_v1.items);
  EXPECT_EQ(responses[1].snapshot_version, 1u);
  EXPECT_EQ(responses[1].items, want_v1.items);
  EXPECT_EQ(responses[2].snapshot_version, 2u);
  EXPECT_EQ(responses[2].items, want_v2.items);

  const ShardSetStats stats = shards.stats();
  EXPECT_EQ(stats.cache_hits, 1u);   // request 1, against v1
  EXPECT_EQ(stats.cache_misses, 2u);  // requests 0 and 2
}

// The flip side: a publish whose scoring content is bitwise identical to
// the live snapshot's (the timed-republish deployment — a fresh export
// of an unchanged model) carries the data epoch forward, so cached
// answers stay valid across it. The next identical request is a HIT,
// served under the NEW snapshot's version, with items equal to the cold
// score — sound because equal epoch certifies the two snapshots score
// every request bitwise identically.
TEST(ShardSetTest, RepublishUnchangedContentKeepsCacheWarm) {
  const std::shared_ptr<ServingSnapshot> v1 =
      MakeSnapshot(80, 12, 8, 31, /*span=*/1);
  const std::shared_ptr<ServingSnapshot> v2 =
      MakeSnapshot(80, 12, 8, 31, /*span=*/2);
  SnapshotRegistry registry;
  registry.Publish(v1);
  ShardSetConfig config;
  config.num_shards = 1;
  config.batch_max = 1;
  config.cache_bytes = 1 << 20;
  ShardSet shards(&registry, config);
  shards.Start();
  auto sink = std::make_shared<CollectSink>();

  ASSERT_TRUE(shards.Submit(MakeRequest(0, 5, 8), sink));
  while (shards.stats().answered < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  registry.Publish(v2);
  EXPECT_EQ(v2->version(), 2u);
  EXPECT_EQ(v2->data_epoch(), v1->data_epoch());
  ASSERT_TRUE(shards.Submit(MakeRequest(1, 5, 8), sink));
  shards.Drain();

  const std::vector<ResponseFrame> responses = sink->responses();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, ResponseStatus::kOk);
  EXPECT_EQ(responses[0].snapshot_version, 1u);
  // The warm hit answers under the new version with the same items.
  EXPECT_EQ(responses[1].status, ResponseStatus::kOk);
  EXPECT_EQ(responses[1].snapshot_version, 2u);
  EXPECT_EQ(responses[1].items, responses[0].items);

  const ShardSetStats stats = shards.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

// A tiny byte budget keeps the cache resident set bounded: distinct
// users churn through, evictions fire, and resident bytes never exceed
// the configured budget.
TEST(ShardSetTest, CacheEvictsUnderTinyByteBudget) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot(80, 64, 8, 13, 1));
  ShardSetConfig config;
  config.num_shards = 1;
  config.batch_max = 1;
  config.cache_bytes = 400;  // room for ~2 entries
  ShardSet shards(&registry, config);
  shards.Start();
  auto sink = std::make_shared<CollectSink>();
  const int kRequests = 50;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(shards.Submit(
        MakeRequest(static_cast<uint64_t>(i), i % 64, 5), sink));
  }
  shards.Drain();

  ASSERT_EQ(sink->responses().size(), static_cast<size_t>(kRequests));
  const ShardSetStats stats = shards.stats();
  EXPECT_EQ(stats.cache_misses, static_cast<uint64_t>(kRequests));
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_LE(stats.cache_bytes, config.cache_bytes);
  EXPECT_GT(stats.cache_bytes, 0u);
}

// --- Server end-to-end ------------------------------------------------------

// Minimal blocking client for the end-to-end test.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool SendBytes(const std::vector<uint8_t>& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Blocks until one full response frame arrives.
  bool ReadResponse(ResponseFrame* out, std::string* error) {
    std::vector<uint8_t> payload;
    for (;;) {
      const FrameAssembler::Result result = assembler_.Next(&payload, error);
      if (result == FrameAssembler::Result::kError) return false;
      if (result == FrameAssembler::Result::kFrame) {
        return TryDecodeResponse(payload, out, error);
      }
      uint8_t buffer[4096];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) {
        *error = "connection closed";
        return false;
      }
      assembler_.Append(buffer, static_cast<size_t>(n));
    }
  }

  // True when the server closed this connection (EOF).
  bool AwaitClose() {
    uint8_t byte;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameAssembler assembler_;
};

TEST(ServerTest, SocketEndToEnd) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot(60, 20, 8, 17, 1));
  ServerConfig config;
  config.tcp_port = 0;  // ephemeral
  config.shards.num_shards = 2;
  Server server(&registry, config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);
  std::thread io([&server] { server.Run(); });

  {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    // Two good requests and one for an unknown user, coalesced into a
    // single write to exercise stream reassembly server-side.
    std::vector<uint8_t> bytes = EncodeRequest(MakeRequest(1, 3, 4));
    const std::vector<uint8_t> second = EncodeRequest(MakeRequest(2, 9999, 4));
    const std::vector<uint8_t> third = EncodeRequest(MakeRequest(3, 7, 6));
    bytes.insert(bytes.end(), second.begin(), second.end());
    bytes.insert(bytes.end(), third.begin(), third.end());
    ASSERT_TRUE(client.SendBytes(bytes));

    std::map<uint64_t, ResponseFrame> responses;
    for (int i = 0; i < 3; ++i) {
      ResponseFrame response;
      ASSERT_TRUE(client.ReadResponse(&response, &error)) << error;
      responses[response.request_id] = response;
    }
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_EQ(responses[1].status, ResponseStatus::kOk);
    EXPECT_EQ(responses[1].items.size(), 4u);
    EXPECT_EQ(responses[2].status, ResponseStatus::kError);
    EXPECT_EQ(responses[3].status, ResponseStatus::kOk);
    EXPECT_EQ(responses[3].items.size(), 6u);
  }

  {
    // A connection that sends garbage is dropped (framing error), while
    // the server keeps serving everyone else.
    TestClient garbage(server.port());
    ASSERT_TRUE(garbage.connected());
    std::vector<uint8_t> junk(64, 0xff);
    ASSERT_TRUE(garbage.SendBytes(junk));
    EXPECT_TRUE(garbage.AwaitClose());

    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendBytes(EncodeRequest(MakeRequest(4, 5, 3))));
    ResponseFrame response;
    ASSERT_TRUE(client.ReadResponse(&response, &error)) << error;
    EXPECT_EQ(response.status, ResponseStatus::kOk);
  }

  server.Shutdown();
  io.join();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.frames, 4u);
  EXPECT_GE(stats.protocol_errors, 1u);
  const ShardSetStats shard_stats = server.shard_stats();
  EXPECT_EQ(shard_stats.answered, 4u);
  EXPECT_EQ(shard_stats.rejected, 0u);
}

}  // namespace
}  // namespace imsr::serve
