// Tests for the serving transport and concurrency core: wire-protocol
// round-trips and decode hardening (truncation, bit flips, bad tags),
// FrameAssembler reassembly from arbitrarily-chunked streams, shard
// routing determinism, ShardSet admission control and drain guarantees,
// publish-while-serving bitwise consistency, and a socket end-to-end
// pass against a live Server.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/interest_store.h"
#include "models/msr_model.h"
#include "serve/protocol.h"
#include "serve/recommend.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/rng.h"

namespace imsr::serve {
namespace {

// Runs a complete encoded frame through the assembler and returns its
// CRC-verified payload.
std::vector<uint8_t> PayloadOf(const std::vector<uint8_t>& frame) {
  FrameAssembler assembler;
  assembler.Append(frame.data(), frame.size());
  std::vector<uint8_t> payload;
  std::string error;
  EXPECT_EQ(assembler.Next(&payload, &error), FrameAssembler::Result::kFrame)
      << error;
  return payload;
}

RequestFrame MakeRequest(uint64_t id, data::UserId user, int top_n) {
  RequestFrame request;
  request.request_id = id;
  request.user = user;
  request.top_n = top_n;
  return request;
}

TEST(ProtocolTest, RequestRoundTrip) {
  const RequestFrame request = MakeRequest(0xfeedfacecafe, 123456, 20);
  const std::vector<uint8_t> payload = PayloadOf(EncodeRequest(request));
  RequestFrame decoded;
  std::string error;
  ASSERT_TRUE(TryDecodeRequest(payload, &decoded, &error)) << error;
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.user, request.user);
  EXPECT_EQ(decoded.top_n, request.top_n);
}

TEST(ProtocolTest, ResponseRoundTripAllStatuses) {
  for (const ResponseStatus status :
       {ResponseStatus::kOk, ResponseStatus::kError,
        ResponseStatus::kOverloaded, ResponseStatus::kShuttingDown}) {
    ResponseFrame response;
    response.request_id = 77;
    response.status = status;
    response.snapshot_version = 42;
    if (status == ResponseStatus::kOk) {
      response.items = {{5, 1.5f}, {9, 0.25f}, {1, -3.75f}};
    } else {
      response.error = "reason: " + std::string(ResponseStatusName(status));
    }
    const std::vector<uint8_t> payload = PayloadOf(EncodeResponse(response));
    ResponseFrame decoded;
    std::string error;
    ASSERT_TRUE(TryDecodeResponse(payload, &decoded, &error)) << error;
    EXPECT_EQ(decoded.request_id, response.request_id);
    EXPECT_EQ(decoded.status, response.status);
    EXPECT_EQ(decoded.snapshot_version, response.snapshot_version);
    EXPECT_EQ(decoded.items, response.items);
    EXPECT_EQ(decoded.error, response.error);
  }
}

// Scores round-trip bitwise, including non-finite-adjacent values.
TEST(ProtocolTest, ResponseScoresBitwiseExact) {
  ResponseFrame response;
  response.request_id = 1;
  response.status = ResponseStatus::kOk;
  response.items = {{0, 1.0000001f},
                    {1, -0.0f},
                    {2, 3.4028235e38f},
                    {3, 1.1754944e-38f}};
  const std::vector<uint8_t> payload = PayloadOf(EncodeResponse(response));
  ResponseFrame decoded;
  std::string error;
  ASSERT_TRUE(TryDecodeResponse(payload, &decoded, &error)) << error;
  ASSERT_EQ(decoded.items.size(), response.items.size());
  for (size_t i = 0; i < response.items.size(); ++i) {
    EXPECT_EQ(decoded.items[i].first, response.items[i].first);
    // Bitwise, not value, equality (distinguishes -0.0 from 0.0).
    uint32_t want = 0;
    uint32_t got = 0;
    std::memcpy(&want, &response.items[i].second, sizeof(want));
    std::memcpy(&got, &decoded.items[i].second, sizeof(got));
    EXPECT_EQ(got, want);
  }
}

// Frames survive arbitrary chunking: two coalesced frames delivered one
// byte at a time come out intact and in order.
TEST(ProtocolTest, AssemblerReassemblesBytewiseStream) {
  std::vector<uint8_t> stream = EncodeRequest(MakeRequest(1, 10, 5));
  const std::vector<uint8_t> second = EncodeRequest(MakeRequest(2, 20, 7));
  stream.insert(stream.end(), second.begin(), second.end());

  FrameAssembler assembler;
  std::vector<RequestFrame> decoded;
  std::vector<uint8_t> payload;
  std::string error;
  for (const uint8_t byte : stream) {
    assembler.Append(&byte, 1);
    for (;;) {
      const FrameAssembler::Result result = assembler.Next(&payload, &error);
      if (result == FrameAssembler::Result::kNeedMore) break;
      ASSERT_EQ(result, FrameAssembler::Result::kFrame) << error;
      RequestFrame request;
      ASSERT_TRUE(TryDecodeRequest(payload, &request, &error)) << error;
      decoded.push_back(request);
    }
  }
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].request_id, 1u);
  EXPECT_EQ(decoded[0].user, 10);
  EXPECT_EQ(decoded[1].request_id, 2u);
  EXPECT_EQ(decoded[1].top_n, 7);
  EXPECT_EQ(assembler.buffered(), 0u);
}

// A truncated stream never produces a frame — it just keeps asking for
// more bytes, at every prefix length.
TEST(ProtocolTest, TruncationNeverCompletesAFrame) {
  const std::vector<uint8_t> frame =
      EncodeRequest(MakeRequest(9, 1234, 10));
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameAssembler assembler;
    assembler.Append(frame.data(), cut);
    std::vector<uint8_t> payload;
    std::string error;
    EXPECT_EQ(assembler.Next(&payload, &error),
              FrameAssembler::Result::kNeedMore)
        << "prefix of " << cut << " bytes completed a frame";
  }
}

// CRC-32 detects every single-bit error in the data it covers: flipping
// any payload bit (or any CRC-field bit) must surface as a framing error,
// never as a silently-different frame.
TEST(ProtocolTest, EveryPayloadBitFlipIsDetected) {
  const std::vector<uint8_t> frame =
      EncodeRequest(MakeRequest(0x123456789a, 987654, 50));
  // Bytes [4, 8) are the CRC field; [8, size) the payload.
  for (size_t byte = 4; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupted = frame;
      corrupted[byte] ^= static_cast<uint8_t>(1u << bit);
      FrameAssembler assembler;
      assembler.Append(corrupted.data(), corrupted.size());
      std::vector<uint8_t> payload;
      std::string error;
      EXPECT_EQ(assembler.Next(&payload, &error),
                FrameAssembler::Result::kError)
          << "bit " << bit << " of byte " << byte << " went undetected";
    }
  }
}

TEST(ProtocolTest, OversizedLengthIsAFramingError) {
  const uint32_t length = kMaxFramePayload + 1;
  uint8_t header[kFrameHeaderBytes] = {};
  std::memcpy(header, &length, sizeof(length));
  FrameAssembler assembler;
  assembler.Append(header, sizeof(header));
  std::vector<uint8_t> payload;
  std::string error;
  EXPECT_EQ(assembler.Next(&payload, &error),
            FrameAssembler::Result::kError);
  EXPECT_NE(error.find("exceeds limit"), std::string::npos) << error;
}

TEST(ProtocolTest, DecodeRejectsMalformedPayloads) {
  const std::vector<uint8_t> request_payload =
      PayloadOf(EncodeRequest(MakeRequest(3, 42, 5)));
  RequestFrame request;
  ResponseFrame response;
  std::string error;

  // A request payload is not a response (and vice versa): tag mismatch.
  EXPECT_FALSE(TryDecodeResponse(request_payload, &response, &error));
  ResponseFrame ok_response;
  ok_response.status = ResponseStatus::kOk;
  const std::vector<uint8_t> response_payload =
      PayloadOf(EncodeResponse(ok_response));
  EXPECT_FALSE(TryDecodeRequest(response_payload, &request, &error));

  // Truncated payload bytes (CRC already verified upstream — decode must
  // still fail cleanly, not read out of bounds).
  for (size_t cut = 0; cut < request_payload.size(); ++cut) {
    const std::vector<uint8_t> truncated(request_payload.begin(),
                                         request_payload.begin() + cut);
    EXPECT_FALSE(TryDecodeRequest(truncated, &request, &error))
        << "decoded from " << cut << " of " << request_payload.size()
        << " bytes";
  }

  // Trailing garbage after a well-formed body.
  std::vector<uint8_t> padded = request_payload;
  padded.push_back(0);
  EXPECT_FALSE(TryDecodeRequest(padded, &request, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;

  // Empty payload.
  EXPECT_FALSE(TryDecodeRequest({}, &request, &error));
}

TEST(ShardRoutingTest, DeterministicInRangeAndBalanced) {
  for (const size_t shards : {1u, 2u, 4u, 7u}) {
    std::vector<int> counts(shards, 0);
    for (data::UserId user = 0; user < 10000; ++user) {
      const size_t shard = ShardOf(user, shards);
      ASSERT_LT(shard, shards);
      // Routing is a pure function of (user, num_shards).
      ASSERT_EQ(shard, ShardOf(user, shards));
      counts[shard]++;
    }
    // splitmix64 scrambles sequential ids: no shard is starved or hot
    // beyond 2x of fair share.
    for (const int count : counts) {
      EXPECT_GT(count, 10000 / static_cast<int>(shards) / 2);
      EXPECT_LT(count, 2 * 10000 / static_cast<int>(shards));
    }
  }
}

// --- ShardSet ---------------------------------------------------------------

// Thread-safe sink recording every response it receives.
class CollectSink : public ResponseSink {
 public:
  void SendResponse(const ResponseFrame& response) override {
    std::lock_guard<std::mutex> lock(mutex_);
    responses_.push_back(response);
  }
  std::vector<ResponseFrame> responses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return responses_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<ResponseFrame> responses_;
};

// A sink whose first SendResponse blocks until Release() — wedges a shard
// worker so the test can fill its queue deterministically.
class BlockingSink : public CollectSink {
 public:
  void SendResponse(const ResponseFrame& response) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      entered_ = true;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
    CollectSink::SendResponse(response);
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [this] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  bool entered_ = false;
  bool released_ = false;
};

// A small serving world: `num_users` users with varying interest counts
// over `num_items` items.
std::shared_ptr<ServingSnapshot> MakeSnapshot(int num_items, int num_users,
                                              int dim, uint64_t seed,
                                              int span) {
  models::ModelConfig model_config;
  model_config.embedding_dim = dim;
  models::MsrModel model(model_config, num_items, seed);
  core::InterestStore store;
  util::Rng rng(seed + 1);
  for (data::UserId user = 0; user < num_users; ++user) {
    store.Initialize(user, 1 + static_cast<int>(user % 3), dim, 0, rng);
  }
  return BuildSnapshot(model, store, span);
}

TEST(ShardSetTest, AnswersEveryAdmittedRequest) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot(/*num_items=*/50, /*num_users=*/40,
                                /*dim=*/8, /*seed=*/3, /*span=*/1));
  ShardSetConfig config;
  config.num_shards = 4;
  // Cap >= kRequests: admission can never fire even if a busy machine
  // keeps every worker descheduled while the main thread enqueues.
  config.queue_cap = 256;
  ShardSet shards(&registry, config);
  shards.Start();

  auto sink = std::make_shared<CollectSink>();
  const int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_TRUE(shards.Submit(
        MakeRequest(static_cast<uint64_t>(i), i % 40, 5), sink));
  }
  shards.Drain();

  const std::vector<ResponseFrame> responses = sink->responses();
  ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
  std::vector<bool> seen(kRequests, false);
  for (const ResponseFrame& response : responses) {
    ASSERT_LT(response.request_id, static_cast<uint64_t>(kRequests));
    EXPECT_FALSE(seen[response.request_id]) << "duplicate response";
    seen[response.request_id] = true;
    EXPECT_EQ(response.status, ResponseStatus::kOk);
    EXPECT_EQ(response.items.size(), 5u);
    EXPECT_EQ(response.snapshot_version, 1u);
  }
  const ShardSetStats stats = shards.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.answered, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ShardSetTest, UnknownUserGetsErrorResponseNotDrop) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot(50, 10, 8, 4, 1));
  ShardSetConfig config;
  config.num_shards = 2;
  ShardSet shards(&registry, config);
  shards.Start();
  auto sink = std::make_shared<CollectSink>();
  EXPECT_TRUE(shards.Submit(MakeRequest(7, /*user=*/9999, 5), sink));
  shards.Drain();
  const std::vector<ResponseFrame> responses = sink->responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].request_id, 7u);
  EXPECT_EQ(responses[0].status, ResponseStatus::kError);
  EXPECT_NE(responses[0].error.find("9999"), std::string::npos);
}

TEST(ShardSetTest, NoSnapshotYetIsAnErrorResponse) {
  SnapshotRegistry registry;  // nothing published
  ShardSetConfig config;
  config.num_shards = 1;
  ShardSet shards(&registry, config);
  shards.Start();
  auto sink = std::make_shared<CollectSink>();
  EXPECT_TRUE(shards.Submit(MakeRequest(1, 0, 5), sink));
  shards.Drain();
  const std::vector<ResponseFrame> responses = sink->responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ResponseStatus::kError);
  EXPECT_NE(responses[0].error.find("snapshot"), std::string::npos);
}

// Admission control: with the single shard's worker wedged and its queue
// full, the next Submit is rejected synchronously with kOverloaded — the
// queue never grows past its cap and nothing is silently dropped.
TEST(ShardSetTest, FullQueueRejectsWithOverload) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot(50, 10, 8, 5, 1));
  ShardSetConfig config;
  config.num_shards = 1;
  config.queue_cap = 2;
  ShardSet shards(&registry, config);
  shards.Start();

  auto blocking = std::make_shared<BlockingSink>();
  auto sink = std::make_shared<CollectSink>();
  // Wedge the worker on request 0's response...
  ASSERT_TRUE(shards.Submit(MakeRequest(0, 0, 3), blocking));
  blocking->AwaitEntered();
  // ...fill the queue to its cap...
  ASSERT_TRUE(shards.Submit(MakeRequest(1, 1, 3), sink));
  ASSERT_TRUE(shards.Submit(MakeRequest(2, 2, 3), sink));
  // ...and the next submit must bounce, synchronously, on this thread.
  EXPECT_FALSE(shards.Submit(MakeRequest(3, 3, 3), sink));
  std::vector<ResponseFrame> responses = sink->responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].request_id, 3u);
  EXPECT_EQ(responses[0].status, ResponseStatus::kOverloaded);

  blocking->Release();
  shards.Drain();
  // Everything admitted before the bounce still got answered.
  EXPECT_EQ(blocking->responses().size(), 1u);
  responses = sink->responses();
  ASSERT_EQ(responses.size(), 3u);
  const ShardSetStats stats = shards.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.answered, 3u);
}

// The heart of the tentpole's consistency claim: while snapshots publish
// mid-flight, every response is bitwise-identical to RecommendOne run
// directly against *some* published snapshot — the one named by the
// response's snapshot_version. No response mixes two versions.
TEST(ShardSetTest, PublishWhileServingIsBitwiseConsistent) {
  const int kUsers = 30;
  const int kTopN = 8;
  const std::shared_ptr<ServingSnapshot> v1 =
      MakeSnapshot(/*num_items=*/80, kUsers, /*dim=*/8, /*seed=*/11,
                   /*span=*/1);
  const std::shared_ptr<ServingSnapshot> v2 =
      MakeSnapshot(/*num_items=*/80, kUsers, /*dim=*/8, /*seed=*/29,
                   /*span=*/2);
  SnapshotRegistry registry;
  registry.Publish(v1);

  // Expected answers per user, per version, computed single-threaded.
  const ServeConfig serve;
  std::map<uint64_t, std::vector<std::vector<std::pair<data::ItemId, float>>>>
      expected;
  RecommendScratch scratch;
  for (const auto& [version, snapshot] :
       std::vector<std::pair<uint64_t, std::shared_ptr<ServingSnapshot>>>{
           {1, v1}, {2, v2}}) {
    auto& per_user = expected[version];
    per_user.resize(kUsers);
    for (data::UserId user = 0; user < kUsers; ++user) {
      RecommendRequest request;
      request.user = user;
      request.top_n = kTopN;
      RecommendResponse response;
      RecommendOne(*snapshot, request, serve, &scratch, &response);
      ASSERT_TRUE(response.ok) << response.error;
      per_user[static_cast<size_t>(user)] = response.items;
    }
  }

  ShardSetConfig config;
  config.num_shards = 4;
  config.queue_cap = 1024;
  config.serve = serve;
  ShardSet shards(&registry, config);
  shards.Start();
  auto sink = std::make_shared<CollectSink>();

  // Phase 1 entirely against v1, then publish v2 into the *live* shard
  // set (workers stay up throughout), then phase 2 entirely against v2.
  // The phase boundary makes the expected version per request
  // deterministic; mid-flight racing is exercised by the server smoke
  // and the loadgen CI job.
  const int kPerPhase = 300;
  for (int i = 0; i < kPerPhase; ++i) {
    ASSERT_TRUE(shards.Submit(
        MakeRequest(static_cast<uint64_t>(i), i % kUsers, kTopN), sink));
  }
  while (shards.stats().answered <
         static_cast<uint64_t>(kPerPhase)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  registry.Publish(v2);
  for (int i = kPerPhase; i < 2 * kPerPhase; ++i) {
    ASSERT_TRUE(shards.Submit(
        MakeRequest(static_cast<uint64_t>(i), i % kUsers, kTopN), sink));
  }
  shards.Drain();

  const std::vector<ResponseFrame> responses = sink->responses();
  ASSERT_EQ(responses.size(), static_cast<size_t>(2 * kPerPhase));
  for (const ResponseFrame& response : responses) {
    ASSERT_EQ(response.status, ResponseStatus::kOk) << response.error;
    const uint64_t want_version =
        response.request_id < static_cast<uint64_t>(kPerPhase) ? 1 : 2;
    ASSERT_EQ(response.snapshot_version, want_version)
        << "request " << response.request_id;
    const size_t user = response.request_id % kUsers;
    // EXPECT_EQ on vector<pair<ItemId, float>>: item ids and float scores
    // must match bitwise — no tolerance.
    EXPECT_EQ(response.items, expected[want_version][user])
        << "request " << response.request_id << " answered from v"
        << want_version << " diverged";
  }
}

// --- Server end-to-end ------------------------------------------------------

// Minimal blocking client for the end-to-end test.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool SendBytes(const std::vector<uint8_t>& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Blocks until one full response frame arrives.
  bool ReadResponse(ResponseFrame* out, std::string* error) {
    std::vector<uint8_t> payload;
    for (;;) {
      const FrameAssembler::Result result = assembler_.Next(&payload, error);
      if (result == FrameAssembler::Result::kError) return false;
      if (result == FrameAssembler::Result::kFrame) {
        return TryDecodeResponse(payload, out, error);
      }
      uint8_t buffer[4096];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) {
        *error = "connection closed";
        return false;
      }
      assembler_.Append(buffer, static_cast<size_t>(n));
    }
  }

  // True when the server closed this connection (EOF).
  bool AwaitClose() {
    uint8_t byte;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameAssembler assembler_;
};

TEST(ServerTest, SocketEndToEnd) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot(60, 20, 8, 17, 1));
  ServerConfig config;
  config.tcp_port = 0;  // ephemeral
  config.shards.num_shards = 2;
  Server server(&registry, config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);
  std::thread io([&server] { server.Run(); });

  {
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    // Two good requests and one for an unknown user, coalesced into a
    // single write to exercise stream reassembly server-side.
    std::vector<uint8_t> bytes = EncodeRequest(MakeRequest(1, 3, 4));
    const std::vector<uint8_t> second = EncodeRequest(MakeRequest(2, 9999, 4));
    const std::vector<uint8_t> third = EncodeRequest(MakeRequest(3, 7, 6));
    bytes.insert(bytes.end(), second.begin(), second.end());
    bytes.insert(bytes.end(), third.begin(), third.end());
    ASSERT_TRUE(client.SendBytes(bytes));

    std::map<uint64_t, ResponseFrame> responses;
    for (int i = 0; i < 3; ++i) {
      ResponseFrame response;
      ASSERT_TRUE(client.ReadResponse(&response, &error)) << error;
      responses[response.request_id] = response;
    }
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_EQ(responses[1].status, ResponseStatus::kOk);
    EXPECT_EQ(responses[1].items.size(), 4u);
    EXPECT_EQ(responses[2].status, ResponseStatus::kError);
    EXPECT_EQ(responses[3].status, ResponseStatus::kOk);
    EXPECT_EQ(responses[3].items.size(), 6u);
  }

  {
    // A connection that sends garbage is dropped (framing error), while
    // the server keeps serving everyone else.
    TestClient garbage(server.port());
    ASSERT_TRUE(garbage.connected());
    std::vector<uint8_t> junk(64, 0xff);
    ASSERT_TRUE(garbage.SendBytes(junk));
    EXPECT_TRUE(garbage.AwaitClose());

    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendBytes(EncodeRequest(MakeRequest(4, 5, 3))));
    ResponseFrame response;
    ASSERT_TRUE(client.ReadResponse(&response, &error)) << error;
    EXPECT_EQ(response.status, ResponseStatus::kOk);
  }

  server.Shutdown();
  io.join();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.frames, 4u);
  EXPECT_GE(stats.protocol_errors, 1u);
  const ShardSetStats shard_stats = server.shard_stats();
  EXPECT_EQ(shard_stats.answered, 4u);
  EXPECT_EQ(shard_stats.rejected, 0u);
}

}  // namespace
}  // namespace imsr::serve
