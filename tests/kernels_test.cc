// Equivalence and determinism properties of the blocked nn kernels: every
// fast path must match a naive reference within 1e-5 and produce bitwise
// identical results regardless of the pool's thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "eval/ranker.h"
#include "nn/optim.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "nn/variable.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace imsr {
namespace {

// Naive jki reference matmul, independent of the production kernel.
nn::Tensor ReferenceMatMul(const nn::Tensor& a, const nn::Tensor& b) {
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  const int64_t n = b.size(1);
  nn::Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a.at(i, kk) * b.at(kk, j);
      }
      out.at(i, j) = acc;
    }
  }
  return out;
}

const std::vector<std::vector<int64_t>> kShapes = {
    // {m, k, n} — odd sizes exercise every panel-remainder path.
    {1, 1, 1}, {1, 5, 1},  {2, 3, 4},  {3, 7, 5},   {4, 4, 4},
    {5, 2, 9}, {7, 17, 3}, {8, 32, 6}, {33, 13, 21}, {64, 32, 32},
};

TEST(KernelsTest, MatMulMatchesNaiveReference) {
  util::Rng rng(101);
  for (const auto& shape : kShapes) {
    const nn::Tensor a = nn::Tensor::Randn({shape[0], shape[1]}, rng);
    const nn::Tensor b = nn::Tensor::Randn({shape[1], shape[2]}, rng);
    EXPECT_LE(nn::MaxAbsDiff(nn::MatMul(a, b), ReferenceMatMul(a, b)),
              1e-5f)
        << shape[0] << "x" << shape[1] << "x" << shape[2];
  }
}

TEST(KernelsTest, MatMulTransBMatchesMaterialisedTranspose) {
  util::Rng rng(102);
  for (const auto& shape : kShapes) {
    const nn::Tensor a = nn::Tensor::Randn({shape[0], shape[1]}, rng);
    const nn::Tensor b = nn::Tensor::Randn({shape[2], shape[1]}, rng);
    EXPECT_LE(nn::MaxAbsDiff(nn::MatMulTransB(a, b),
                             ReferenceMatMul(a, nn::Transpose(b))),
              1e-5f)
        << shape[0] << "x" << shape[1] << "x" << shape[2];
  }
}

TEST(KernelsTest, MatMulTransAMatchesMaterialisedTranspose) {
  util::Rng rng(103);
  for (const auto& shape : kShapes) {
    const nn::Tensor a = nn::Tensor::Randn({shape[1], shape[0]}, rng);
    const nn::Tensor b = nn::Tensor::Randn({shape[1], shape[2]}, rng);
    EXPECT_LE(nn::MaxAbsDiff(nn::MatMulTransA(a, b),
                             ReferenceMatMul(nn::Transpose(a), b)),
              1e-5f)
        << shape[0] << "x" << shape[1] << "x" << shape[2];
  }
}

TEST(KernelsTest, MatMulTransBIntoReusesBuffer) {
  util::Rng rng(104);
  const nn::Tensor a1 = nn::Tensor::Randn({9, 8}, rng);
  const nn::Tensor b1 = nn::Tensor::Randn({5, 8}, rng);
  const nn::Tensor a2 = nn::Tensor::Randn({9, 8}, rng);
  nn::Tensor out;
  nn::MatMulTransBInto(a1, b1, &out);
  EXPECT_LE(nn::MaxAbsDiff(out, nn::MatMulTransB(a1, b1)), 0.0f);
  const float* storage = out.data();
  nn::MatMulTransBInto(a2, b1, &out);  // same shape: buffer reused
  EXPECT_EQ(out.data(), storage);
  EXPECT_LE(nn::MaxAbsDiff(out, nn::MatMulTransB(a2, b1)), 0.0f);
}

TEST(KernelsTest, MatMulSparseSkipsZerosWithoutChangingResults) {
  util::Rng rng(105);
  nn::Tensor a = nn::Tensor::Randn({12, 16}, rng);
  // Zero out ~2/3 of `a` to hit the skip path.
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (i % 3 != 0) a.data()[i] = 0.0f;
  }
  const nn::Tensor b = nn::Tensor::Randn({16, 10}, rng);
  EXPECT_LE(nn::MaxAbsDiff(nn::MatMulSparse(a, b), ReferenceMatMul(a, b)),
            1e-5f);
}

TEST(KernelsTest, MatVecBatchMatchesPerRowMatVec) {
  util::Rng rng(106);
  const nn::Tensor a = nn::Tensor::Randn({19, 11}, rng);
  const nn::Tensor xs = nn::Tensor::Randn({7, 11}, rng);
  const nn::Tensor batched = nn::MatVecBatch(a, xs);
  ASSERT_EQ(batched.size(0), 7);
  ASSERT_EQ(batched.size(1), 19);
  for (int64_t r = 0; r < xs.size(0); ++r) {
    const nn::Tensor single = nn::MatVec(a, xs.Row(r));
    EXPECT_LE(nn::MaxAbsDiff(batched.Row(r), single), 1e-5f) << "row " << r;
  }
}

TEST(KernelsTest, SoftmaxRowsInPlaceMatchesSoftmax) {
  util::Rng rng(107);
  for (int64_t rows : {1, 3, 64}) {
    for (int64_t cols : {1, 2, 9, 33}) {
      const nn::Tensor a = nn::Tensor::Randn({rows, cols}, rng);
      nn::Tensor in_place = a;
      nn::SoftmaxRowsInPlace(&in_place);
      EXPECT_LE(nn::MaxAbsDiff(in_place, nn::Softmax(a)), 0.0f)
          << rows << "x" << cols;
    }
  }
}

// Kernels dispatched over the pool must be bitwise identical for 1 and N
// threads (row-partitioned work, fixed per-row accumulation order).
TEST(KernelsTest, LargeKernelsBitwiseIdenticalAcrossThreadCounts) {
  util::Rng rng(108);
  // Big enough to cross the pool-dispatch threshold.
  const nn::Tensor a = nn::Tensor::Randn({257, 65}, rng);
  const nn::Tensor b = nn::Tensor::Randn({65, 63}, rng);
  const nn::Tensor bt = nn::Tensor::Randn({63, 65}, rng);
  const nn::Tensor wide = nn::Tensor::Randn({3000, 100}, rng);

  util::SetGlobalThreadCount(1);
  const nn::Tensor mm1 = nn::MatMul(a, b);
  const nn::Tensor tb1 = nn::MatMulTransB(a, bt);
  const nn::Tensor sm1 = nn::Softmax(wide);

  for (int threads : {2, 5}) {
    util::SetGlobalThreadCount(threads);
    EXPECT_EQ(mm1.storage(), nn::MatMul(a, b).storage())
        << "threads=" << threads;
    EXPECT_EQ(tb1.storage(), nn::MatMulTransB(a, bt).storage())
        << "threads=" << threads;
    EXPECT_EQ(sm1.storage(), nn::Softmax(wide).storage())
        << "threads=" << threads;
  }
  util::SetGlobalThreadCount(1);
}

TEST(KernelsTest, AdamStepBitwiseIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    util::SetGlobalThreadCount(threads);
    util::Rng rng(109);
    nn::Var parameter(nn::Tensor::Randn({1200, 32}, rng), true);
    nn::Adam adam(nn::Adam::Config{});
    adam.Register(parameter);
    for (int step = 0; step < 3; ++step) {
      parameter.ZeroGrad();
      parameter.node()->AccumulateGrad(
          nn::Tensor::Randn(parameter.value().shape(), rng));
      adam.Step();
    }
    return parameter.value().storage();
  };
  const std::vector<float> serial = run(1);
  EXPECT_EQ(serial, run(4));
  util::SetGlobalThreadCount(1);
}

// The serve scoring kernel: A supplied in the panelized k-major layout,
// SIMD lanes across output rows, every element's kk accumulation
// strictly sequential. Its bits must equal the scalar dot order (the
// SimdEnabled()==false MatMulTransBInto path) for ANY operand width,
// any SIMD setting, and any thread count — that width invariance is the
// RecommendBatch == RecommendOne contract. m values cover lane
// remainders (non-multiple-of-8), a compact partial last panel
// (m < 1024 and m = 2001 = 1024 + 977), and both the serial and
// pool-dispatched regimes; n straddles every historical dispatch
// boundary.
TEST(KernelsTest, MatMulTransBPanelMatchesScalarOrderAnyWidth) {
  util::Rng rng(111);
  const bool prev_simd = nn::SetSimdEnabled(true);
  for (int64_t m : {5, 12, 300, 2001}) {
    const nn::Tensor a = nn::Tensor::Randn({m, 24}, rng);
    nn::Tensor panels;
    nn::PanelizeKMajorInto(a, &panels);
    for (int64_t n : {1, 2, 3, 8, 12, 51}) {
      const nn::Tensor b = nn::Tensor::Randn({n, 24}, rng);
      // Scalar-order reference: the dot kernels with SIMD forced off.
      nn::SetSimdEnabled(false);
      nn::Tensor expected;
      nn::MatMulTransBInto(a, b, &expected);
      for (const bool simd : {false, true}) {
        nn::SetSimdEnabled(simd);
        for (int threads : {1, 3}) {
          util::SetGlobalThreadCount(threads);
          nn::Tensor out;
          nn::MatMulTransBPanelInto(nn::ViewOf(panels), nn::ViewOf(b), &out);
          EXPECT_EQ(out.storage(), expected.storage())
              << "m=" << m << " n=" << n << " simd=" << simd
              << " threads=" << threads;
        }
        util::SetGlobalThreadCount(1);
      }
    }
  }
  nn::SetSimdEnabled(prev_simd);
}

// Width invariance directly: one fused call over concatenated operands
// equals per-operand calls column-for-column, bit for bit; and the
// blocked row-range sweep (the serve scoring loop's shape) reproduces
// the full product wherever the block boundaries land, including blocks
// that straddle a panel boundary. This is the exact shape of the serve
// micro-batch (users' interest rows packed into one operand, per-user
// columns read back strided out of block tiles).
TEST(KernelsTest, MatMulTransBPanelFusedColumnsMatchPerOperand) {
  util::Rng rng(113);
  const int64_t m = 1500, d = 24;  // spans two panels (1024 + 476)
  const nn::Tensor a = nn::Tensor::Randn({m, d}, rng);
  nn::Tensor panels;
  nn::PanelizeKMajorInto(a, &panels);
  const std::vector<int64_t> widths = {3, 2, 4, 3};
  int64_t total = 0;
  for (int64_t w : widths) total += w;
  const nn::Tensor packed = nn::Tensor::Randn({total, d}, rng);
  nn::Tensor fused;
  nn::MatMulTransBPanelInto(nn::ViewOf(panels), nn::ViewOf(packed), &fused);
  int64_t offset = 0;
  for (size_t u = 0; u < widths.size(); ++u) {
    const int64_t w = widths[u];
    nn::Tensor solo;
    nn::MatMulTransBPanelInto(
        nn::ViewOf(panels), {packed.data() + offset * d, w, d}, &solo);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < w; ++j) {
        ASSERT_EQ(fused.at(i, offset + j), solo.at(i, j))
            << "operand=" << u << " i=" << i << " j=" << j;
      }
    }
    offset += w;
  }
  // Range sweep: odd-sized blocks that do not divide the panel size, so
  // some cross the panel seam mid-block.
  std::vector<float> tile(707 * total);
  for (int64_t b0 = 0; b0 < m; b0 += 707) {
    const int64_t b1 = std::min<int64_t>(m, b0 + 707);
    nn::MatMulTransBPanelRangeInto(nn::ViewOf(panels), nn::ViewOf(packed),
                                   b0, b1, tile.data());
    for (int64_t i = b0; i < b1; ++i) {
      for (int64_t j = 0; j < total; ++j) {
        ASSERT_EQ(tile[static_cast<size_t>((i - b0) * total + j)],
                  fused.at(i, j))
            << "block@" << b0 << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(KernelsTest, RankerPrecomputedScoresMatchFromScratchPaths) {
  util::Rng rng(110);
  const nn::Tensor items = nn::Tensor::Randn({120, 16}, rng);
  const nn::Tensor interests_a = nn::Tensor::Randn({4, 16}, rng);
  const nn::Tensor interests_b = nn::Tensor::Randn({6, 16}, rng);

  for (auto rule : {eval::ScoreRule::kAttentive,
                    eval::ScoreRule::kMaxInterest}) {
    eval::RankScratch scratch;
    // Scratch reuse across users with different K must not leak state.
    for (const nn::Tensor* interests : {&interests_a, &interests_b}) {
      eval::ScoreAllItemsInto(*interests, items, rule, &scratch);
      const std::vector<float> fresh =
          eval::ScoreAllItems(*interests, items, rule);
      ASSERT_EQ(scratch.scores.size(), fresh.size());
      EXPECT_EQ(scratch.scores, fresh);

      for (data::ItemId target : {0, 7, 119}) {
        EXPECT_EQ(eval::TargetRankFromScores(scratch.scores, target),
                  eval::TargetRank(*interests, items, target, rule));
      }
      EXPECT_EQ(eval::TopNFromScores(scratch.scores, 10),
                eval::TopNItems(*interests, items, 10, rule));
    }
  }
}

}  // namespace
}  // namespace imsr
