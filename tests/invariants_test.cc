// Cross-module behavioural invariants: loss values at known points,
// ranking tie handling, popularity skew of the generator, reappearance
// monotonicity, and single-item sequences through every extractor.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "data/stats.h"
#include "data/synthetic.h"
#include "eval/ranker.h"
#include "models/msr_model.h"
#include "models/sampled_softmax.h"
#include "nn/ops.h"

namespace imsr {
namespace {

TEST(SampledSoftmaxInvariant, UniformScoresGiveLogCandidates) {
  // v = 0 makes every candidate score 0: loss = log(1 + N).
  const int64_t n_negatives = 9;
  nn::Var v(nn::Tensor({4}));
  util::Rng rng(1);
  nn::Var candidates(nn::Tensor::Randn({1 + n_negatives, 4}, rng));
  const float loss =
      models::SampledSoftmaxLoss(v, candidates).value().item();
  EXPECT_NEAR(loss, std::log(10.0f), 1e-5f);
}

TEST(SampledSoftmaxInvariant, LossIsNonNegative) {
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    nn::Var v(nn::Tensor::Randn({8}, rng));
    nn::Var candidates(nn::Tensor::Randn({6, 8}, rng));
    EXPECT_GE(models::SampledSoftmaxLoss(v, candidates).value().item(),
              0.0f);
  }
}

TEST(RankerInvariant, TiesResolvePessimistically) {
  // All items identical: the target ranks last among equals.
  nn::Tensor items = nn::Tensor::Ones({5, 3});
  nn::Tensor interests = nn::Tensor::Ones({2, 3});
  EXPECT_EQ(eval::TargetRank(interests, items, 2,
                             eval::ScoreRule::kMaxInterest),
            5);
}

TEST(RankerInvariant, RanksCoverFullRangeOnDistinctScores) {
  nn::Tensor items({4, 2});
  for (int64_t i = 0; i < 4; ++i) {
    items.at(i, 0) = static_cast<float>(i + 1);
  }
  nn::Tensor interest({1, 2});
  interest.at(0, 0) = 1.0f;
  std::map<int64_t, int> seen;
  for (data::ItemId item = 0; item < 4; ++item) {
    ++seen[eval::TargetRank(interest, items, item,
                            eval::ScoreRule::kMaxInterest)];
  }
  ASSERT_EQ(seen.size(), 4u);  // ranks 1..4 each hit once
  for (const auto& [rank, count] : seen) {
    EXPECT_EQ(count, 1);
    EXPECT_GE(rank, 1);
    EXPECT_LE(rank, 4);
  }
}

TEST(SyntheticInvariant, PopularityIsLongTailed) {
  data::SyntheticConfig config = data::SyntheticConfig::Books(0.15);
  config.zipf_exponent = 1.2;
  const data::SyntheticDataset synthetic = GenerateSynthetic(config);
  const data::Dataset& dataset = *synthetic.dataset;
  std::vector<int64_t> counts(
      static_cast<size_t>(dataset.num_items()), 0);
  for (int span = 0; span < dataset.num_spans(); ++span) {
    for (data::UserId user : dataset.active_users(span)) {
      for (data::ItemId item : dataset.user_span(user, span).all) {
        ++counts[static_cast<size_t>(item)];
      }
    }
  }
  std::sort(counts.begin(), counts.end(), std::greater<int64_t>());
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  // Top 10% of items draw a disproportionate share of interactions.
  int64_t head = 0;
  for (size_t i = 0; i < counts.size() / 10; ++i) head += counts[i];
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(total), 0.3);
}

TEST(SyntheticInvariant, ReappearFractionMonotoneInThreshold) {
  const data::SyntheticDataset synthetic =
      GenerateSynthetic(data::SyntheticConfig::Clothing(0.15));
  const double at2 =
      InterestReappearFraction(*synthetic.dataset, synthetic.truth, 2);
  const double at3 =
      InterestReappearFraction(*synthetic.dataset, synthetic.truth, 3);
  const double at5 =
      InterestReappearFraction(*synthetic.dataset, synthetic.truth, 5);
  EXPECT_GE(at2, at3);
  EXPECT_GE(at3, at5);
  EXPECT_GT(at2, 0.5);
}

TEST(ExtractorInvariant, SingleItemSequencesWork) {
  util::Rng rng(3);
  const nn::Tensor init = nn::Tensor::Randn({3, 16}, rng);
  for (models::ExtractorKind kind :
       {models::ExtractorKind::kMind, models::ExtractorKind::kComiRecDr,
        models::ExtractorKind::kComiRecSa}) {
    models::ModelConfig config;
    config.kind = kind;
    config.embedding_dim = 16;
    config.attention_dim = 8;
    models::MsrModel model(config, 30, 4);
    model.extractor().EnsureUserCapacity(0, 3, model.rng(), nullptr);
    const nn::Tensor interests =
        model.ForwardInterestsNoGrad({5}, init, 0);
    EXPECT_EQ(interests.size(0), 3) << models::ExtractorKindName(kind);
    for (int64_t i = 0; i < interests.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(interests.data()[i]))
          << models::ExtractorKindName(kind);
    }
  }
}

TEST(ExtractorInvariant, LongerAlignedHistoryStrengthensInterest) {
  // Routing more items of one direction grows that capsule's norm
  // (squash is monotone in the input norm).
  util::Rng rng(5);
  models::ModelConfig config;
  config.kind = models::ExtractorKind::kComiRecDr;
  config.embedding_dim = 8;
  models::MsrModel model(config, 40, 6);
  // Force aligned embeddings for items 0..9.
  nn::Tensor& table = model.embeddings().parameter().mutable_value();
  table.Fill(0.0f);
  for (int64_t i = 0; i < 10; ++i) table.at(i, 0) = 1.0f;
  nn::Tensor init({1, 8});
  init.at(0, 0) = 1.0f;
  const nn::Tensor short_run =
      model.ForwardInterestsNoGrad({0, 1}, init, 0);
  const nn::Tensor long_run =
      model.ForwardInterestsNoGrad({0, 1, 2, 3, 4, 5, 6, 7}, init, 0);
  EXPECT_GT(nn::L2NormFlat(long_run.Row(0)),
            nn::L2NormFlat(short_run.Row(0)));
}

}  // namespace
}  // namespace imsr
