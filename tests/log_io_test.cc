// Tests for interaction-log CSV I/O and id compaction.
#include <gtest/gtest.h>

#include <cstdio>

#include "data/dataset.h"
#include "data/log_io.h"

namespace imsr::data {
namespace {

TEST(LogIoTest, ParsesPlainCsv) {
  const std::string csv = "3,10,100\n4,11,200\n3,12,150\n";
  InteractionLog log;
  std::string error;
  ASSERT_TRUE(ParseInteractionsCsv(csv, &log, &error)) << error;
  ASSERT_EQ(log.interactions.size(), 3u);
  EXPECT_EQ(log.num_users, 5);
  EXPECT_EQ(log.num_items, 13);
  EXPECT_EQ(log.interactions[1].user, 4);
  EXPECT_EQ(log.interactions[1].item, 11);
  EXPECT_EQ(log.interactions[1].timestamp, 200);
}

TEST(LogIoTest, SkipsHeaderAndBlankLinesAndCrlf) {
  const std::string csv =
      "user,item,timestamp\r\n1,2,3\r\n\r\n4,5,6\r\n";
  InteractionLog log;
  ASSERT_TRUE(ParseInteractionsCsv(csv, &log, nullptr));
  EXPECT_EQ(log.interactions.size(), 2u);
}

TEST(LogIoTest, ToleratesWhitespaceAroundFields) {
  InteractionLog log;
  ASSERT_TRUE(ParseInteractionsCsv(" 1 , 2 , 3 \n", &log, nullptr));
  EXPECT_EQ(log.interactions[0].item, 2);
}

TEST(LogIoTest, RejectsMalformedRows) {
  InteractionLog log;
  std::string error;
  EXPECT_FALSE(ParseInteractionsCsv("1,2\n", &log, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(ParseInteractionsCsv("1,2,3,4\n", &log, &error));
  EXPECT_FALSE(ParseInteractionsCsv("1,2,3\nx,2,3\n", &log, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_FALSE(ParseInteractionsCsv("-1,2,3\n", &log, &error));
  EXPECT_FALSE(ParseInteractionsCsv("", &log, &error));
  EXPECT_FALSE(ParseInteractionsCsv("user,item,timestamp\n", &log,
                                    &error));
}

TEST(LogIoTest, RejectsIdsAboveInt32Range) {
  InteractionLog log;
  std::string error;
  // Above INT32_MAX these used to pass the `user < 0` check and then
  // truncate (possibly to negative) in the cast to the 32-bit id type.
  EXPECT_FALSE(ParseInteractionsCsv("3000000000,2,3\n", &log, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_NE(error.find("32-bit"), std::string::npos);
  error.clear();
  EXPECT_FALSE(ParseInteractionsCsv("1,3000000000,3\n", &log, &error));
  EXPECT_NE(error.find("32-bit"), std::string::npos);
  // INT32_MAX itself is rejected too: num_users = max id + 1 must fit.
  EXPECT_FALSE(ParseInteractionsCsv("2147483647,2,3\n", &log, &error));
  // The largest representable id still parses.
  EXPECT_TRUE(ParseInteractionsCsv("2147483646,2,3\n", &log, nullptr));
  EXPECT_EQ(log.interactions[0].user, 2147483646);
}

TEST(LogIoTest, MalformedFirstDataRowIsNotSwallowedAsHeader) {
  InteractionLog log;
  std::string error;
  // Line 1 with a garbled user id but numeric item/timestamp is a broken
  // data row, not a header — it must be reported, not skipped.
  EXPECT_FALSE(ParseInteractionsCsv("12x,5,100\n1,2,3\n", &log, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_NE(error.find("bad user id"), std::string::npos);
  // A real header (no numeric fields at all) is still tolerated.
  EXPECT_TRUE(
      ParseInteractionsCsv("user,item,timestamp\n1,2,3\n", &log, nullptr));
  EXPECT_EQ(log.interactions.size(), 1u);
}

TEST(LogIoTest, RoundTripThroughString) {
  const std::vector<Interaction> interactions = {
      {0, 5, 10}, {1, 6, 20}, {0, 7, 30}};
  const std::string csv = InteractionsToCsv(interactions);
  InteractionLog log;
  ASSERT_TRUE(ParseInteractionsCsv(csv, &log, nullptr));
  ASSERT_EQ(log.interactions.size(), 3u);
  EXPECT_EQ(log.interactions[2].item, 7);
}

TEST(LogIoTest, RoundTripThroughFile) {
  const std::string path = "/tmp/imsr_log_io_test.csv";
  const std::vector<Interaction> interactions = {{2, 3, 4}, {5, 6, 7}};
  ASSERT_TRUE(WriteInteractionsCsv(path, interactions));
  InteractionLog log;
  std::string error;
  ASSERT_TRUE(ReadInteractionsCsv(path, &log, &error)) << error;
  EXPECT_EQ(log.interactions.size(), 2u);
  EXPECT_EQ(log.interactions[1].timestamp, 7);
  std::remove(path.c_str());
}

TEST(LogIoTest, ReadMissingFileFails) {
  InteractionLog log;
  std::string error;
  EXPECT_FALSE(ReadInteractionsCsv("/nonexistent/imsr.csv", &log, &error));
  EXPECT_FALSE(error.empty());
}

TEST(LogIoTest, CompactIdsRemapsDensely) {
  InteractionLog log;
  ASSERT_TRUE(ParseInteractionsCsv(
      "1000,500,1\n2000,600,2\n1000,500,3\n", &log, nullptr));
  EXPECT_EQ(log.num_users, 2001);
  const IdCompaction compaction = CompactIds(&log);
  EXPECT_EQ(log.num_users, 2);
  EXPECT_EQ(log.num_items, 2);
  EXPECT_EQ(log.interactions[0].user, 0);
  EXPECT_EQ(log.interactions[1].user, 1);
  EXPECT_EQ(log.interactions[2].user, 0);
  EXPECT_EQ(compaction.user_ids, (std::vector<int32_t>{1000, 2000}));
  EXPECT_EQ(compaction.item_ids, (std::vector<int32_t>{500, 600}));
}

TEST(LogIoTest, LoadedLogFeedsDataset) {
  // The loaded log plugs straight into the span-splitting Dataset.
  InteractionLog log;
  std::string csv;
  for (int i = 0; i < 20; ++i) {
    csv += "0," + std::to_string(i % 6) + "," + std::to_string(i * 10) +
           "\n";
  }
  ASSERT_TRUE(ParseInteractionsCsv(csv, &log, nullptr));
  Dataset dataset(log.num_users, log.num_items, log.interactions,
                  /*num_incremental_spans=*/2, /*alpha=*/0.5,
                  /*min_interactions=*/1);
  EXPECT_EQ(dataset.num_kept_users(), 1);
  EXPECT_GT(dataset.span_interactions(0), 0);
}

}  // namespace
}  // namespace imsr::data
