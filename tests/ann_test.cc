// Oracle gate for the IVF approximate-retrieval subsystem
// (serve/ivf_index.h, DESIGN.md §13). Every approximation is bounded
// against the brute-force path it replaces:
//
//  * recall@N of IVF vs full-corpus scoring at the default nprobe, across
//    snapshot sizes, build thread counts and score rules;
//  * full-probe + full-re-rank IVF is bitwise identical to brute force;
//  * exact mode on an indexed snapshot is bitwise identical to the
//    index-free serving path (the index can only ever ADD a mode);
//  * int8 quantized scores stay inside the analytic error bound;
//  * re-ranked output is stably ordered and every returned score is the
//    brute-force score of that item, bit for bit;
//  * index build edge cases: one-item corpus, centroid count > items,
//    duplicate and zero-norm embeddings, single-interest users, and
//    build determinism across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <utility>
#include <vector>

#include "core/interest_store.h"
#include "eval/evaluator.h"
#include "eval/ranker.h"
#include "nn/tensor.h"
#include "serve/ivf_index.h"
#include "serve/recommend.h"
#include "serve/registry.h"
#include "serve/snapshot.h"
#include "util/rng.h"

namespace imsr::serve {
namespace {

// A corpus with genuine cluster structure (the regime IVF is built for):
// `num_clusters` Gaussian centers, every item a center plus small noise.
struct ClusteredCorpus {
  nn::Tensor embeddings;  // (num_items x dim)
  nn::Tensor centers;     // (num_clusters x dim)
};

ClusteredCorpus MakeClusteredCorpus(int64_t num_items, int64_t dim,
                                    int64_t num_clusters, uint64_t seed) {
  util::Rng rng(seed);
  ClusteredCorpus corpus;
  corpus.centers = nn::Tensor::Randn({num_clusters, dim}, rng);
  corpus.embeddings = nn::Tensor::Uninitialized({num_items, dim});
  for (int64_t i = 0; i < num_items; ++i) {
    const int64_t c = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(num_clusters)));
    const float* center = corpus.centers.data() + c * dim;
    float* row = corpus.embeddings.data() + i * dim;
    for (int64_t k = 0; k < dim; ++k) {
      row[k] = center[k] + 0.15f * static_cast<float>(rng.NextGaussian());
    }
  }
  return corpus;
}

// One user's (K x dim) interests: K cluster centers plus noise — queries
// land where the corpus is dense, like real extracted interests.
std::vector<float> MakeInterests(const ClusteredCorpus& corpus, int64_t k,
                                 util::Rng& rng) {
  const int64_t dim = corpus.centers.size(1);
  const int64_t num_clusters = corpus.centers.size(0);
  std::vector<float> interests(static_cast<size_t>(k * dim));
  for (int64_t j = 0; j < k; ++j) {
    const int64_t c = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(num_clusters)));
    const float* center = corpus.centers.data() + c * dim;
    for (int64_t d = 0; d < dim; ++d) {
      interests[static_cast<size_t>(j * dim + d)] =
          center[d] + 0.1f * static_cast<float>(rng.NextGaussian());
    }
  }
  return interests;
}

// Packs hand-made per-user interest matrices (used as k-means seeds).
core::PackedInterests PackInterests(
    const std::vector<std::vector<float>>& users, int64_t dim) {
  core::PackedInterests packed;
  packed.dim = dim;
  int64_t row = 0;
  for (size_t u = 0; u < users.size(); ++u) {
    packed.users.push_back(static_cast<data::UserId>(u));
    packed.row_begin.push_back(row);
    const int64_t k = static_cast<int64_t>(users[u].size()) / dim;
    packed.counts.push_back(static_cast<int32_t>(k));
    packed.data.insert(packed.data.end(), users[u].begin(), users[u].end());
    row += k;
  }
  return packed;
}

std::vector<std::pair<data::ItemId, float>> BruteForceTopN(
    nn::ConstMatrixView interests, const nn::Tensor& embeddings,
    eval::ScoreRule rule, int top_n) {
  eval::RankScratch scratch;
  ScoreAllItemsInto(interests, embeddings, rule, &scratch);
  return eval::TopNFromScores(scratch.scores, top_n);
}

double RecallAgainstOracle(
    const std::vector<std::pair<data::ItemId, float>>& approx,
    const std::vector<std::pair<data::ItemId, float>>& oracle) {
  if (oracle.empty()) return 1.0;
  std::set<data::ItemId> oracle_items;
  for (const auto& entry : oracle) oracle_items.insert(entry.first);
  int hits = 0;
  for (const auto& entry : approx) {
    if (oracle_items.count(entry.first) > 0) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(oracle_items.size());
}

// The tentpole gate: mean recall@20 against the brute-force oracle stays
// >= 0.95 at the index's DEFAULT nprobe, for every combination of corpus
// size, build thread count and score rule the suite sweeps.
TEST(IvfRecallTest, RecallAtDefaultNprobeAcrossSizesAndThreads) {
  constexpr int kTopN = 20;
  constexpr int64_t kDim = 16;
  for (const int64_t num_items : {512L, 4096L}) {
    const ClusteredCorpus corpus =
        MakeClusteredCorpus(num_items, kDim, /*num_clusters=*/24,
                            /*seed=*/17 + static_cast<uint64_t>(num_items));
    util::Rng rng(99);
    std::vector<std::vector<float>> users;
    for (int u = 0; u < 40; ++u) {
      users.push_back(MakeInterests(corpus, /*k=*/1 + (u % 4), rng));
    }
    const core::PackedInterests seeds = PackInterests(users, kDim);
    for (const int threads : {1, 4}) {
      IvfBuildConfig config;
      config.threads = threads;
      const IvfIndex index(corpus.embeddings, seeds, config);
      for (const eval::ScoreRule rule :
           {eval::ScoreRule::kAttentive, eval::ScoreRule::kMaxInterest}) {
        IvfIndex::Scratch scratch;
        std::vector<std::pair<data::ItemId, float>> top;
        double recall_sum = 0.0;
        for (size_t u = 0; u < users.size(); ++u) {
          const nn::ConstMatrixView interests{
              users[u].data(),
              static_cast<int64_t>(users[u].size()) / kDim, kDim};
          index.SearchTopN(interests, corpus.embeddings, rule, kTopN,
                           /*nprobe=*/0, &scratch, &top);
          recall_sum += RecallAgainstOracle(
              top, BruteForceTopN(interests, corpus.embeddings, rule,
                                  kTopN));
        }
        const double mean_recall =
            recall_sum / static_cast<double>(users.size());
        EXPECT_GE(mean_recall, 0.95)
            << "items=" << num_items << " threads=" << threads
            << " rule=" << ScoreRuleName(rule)
            << " default_nprobe=" << index.default_nprobe();
      }
    }
  }
}

// Probing every list and re-ranking the whole shortlist removes every
// approximation, so the result must equal brute force bit for bit (the
// clustered floats make exact score ties impossible in practice).
TEST(IvfOracleTest, FullProbeFullRerankMatchesBruteForceBitwise) {
  constexpr int kTopN = 20;
  constexpr int64_t kDim = 16;
  constexpr int64_t kNumItems = 768;
  const ClusteredCorpus corpus =
      MakeClusteredCorpus(kNumItems, kDim, /*num_clusters=*/12, /*seed=*/5);
  util::Rng rng(7);
  std::vector<std::vector<float>> users;
  for (int u = 0; u < 16; ++u) {
    users.push_back(MakeInterests(corpus, /*k=*/1 + (u % 4), rng));
  }
  IvfBuildConfig config;
  config.min_rerank = static_cast<int>(kNumItems);  // re-rank everything
  const IvfIndex index(corpus.embeddings, PackInterests(users, kDim),
                       config);
  const int nprobe = static_cast<int>(index.num_centroids());
  for (const eval::ScoreRule rule :
       {eval::ScoreRule::kAttentive, eval::ScoreRule::kMaxInterest}) {
    IvfIndex::Scratch scratch;
    std::vector<std::pair<data::ItemId, float>> top;
    for (size_t u = 0; u < users.size(); ++u) {
      const nn::ConstMatrixView interests{
          users[u].data(), static_cast<int64_t>(users[u].size()) / kDim,
          kDim};
      IvfSearchStats stats;
      index.SearchTopN(interests, corpus.embeddings, rule, kTopN, nprobe,
                       &scratch, &top, &stats);
      EXPECT_EQ(stats.shortlist, kNumItems);  // every item reached
      EXPECT_EQ(stats.reranked, kNumItems);
      const auto oracle =
          BruteForceTopN(interests, corpus.embeddings, rule, kTopN);
      ASSERT_EQ(top.size(), oracle.size());
      for (size_t i = 0; i < top.size(); ++i) {
        EXPECT_EQ(top[i].first, oracle[i].first) << "user " << u;
        EXPECT_EQ(top[i].second, oracle[i].second) << "user " << u;
      }
    }
  }
}

// Attaching an index must not perturb exact mode: a kExact Recommend and
// a kExact EvaluateSpan over an indexed snapshot reproduce the index-free
// snapshot's answers bit for bit.
TEST(IvfOracleTest, ExactModeBitwiseIdenticalWithAndWithoutIndex) {
  constexpr int64_t kDim = 16;
  constexpr int64_t kNumItems = 300;
  const ClusteredCorpus corpus =
      MakeClusteredCorpus(kNumItems, kDim, /*num_clusters=*/8, /*seed=*/21);
  util::Rng rng(31);
  std::vector<std::vector<float>> users;
  std::vector<RecommendRequest> requests;
  for (int u = 0; u < 12; ++u) {
    users.push_back(MakeInterests(corpus, /*k=*/1 + (u % 3), rng));
    requests.push_back({static_cast<data::UserId>(u), 15});
  }
  const core::PackedInterests packed = PackInterests(users, kDim);

  nn::Tensor embeddings_copy =
      nn::Tensor::Uninitialized({kNumItems, kDim});
  std::copy_n(corpus.embeddings.data(), corpus.embeddings.numel(),
              embeddings_copy.data());
  ServingSnapshot plain(std::move(embeddings_copy), packed, 0);

  nn::Tensor embeddings_indexed =
      nn::Tensor::Uninitialized({kNumItems, kDim});
  std::copy_n(corpus.embeddings.data(), corpus.embeddings.numel(),
              embeddings_indexed.data());
  ServingSnapshot indexed(std::move(embeddings_indexed), packed, 0);
  indexed.AttachIndex(std::make_unique<IvfIndex>(
      corpus.embeddings, packed, IvfBuildConfig{}));
  ASSERT_NE(indexed.index(), nullptr);

  ServeConfig config;
  config.retrieval = RetrievalMode::kExact;
  const auto plain_responses = Recommend(plain, requests, config);
  const auto indexed_responses = Recommend(indexed, requests, config);
  ASSERT_EQ(plain_responses.size(), indexed_responses.size());
  for (size_t i = 0; i < plain_responses.size(); ++i) {
    ASSERT_EQ(plain_responses[i].items.size(),
              indexed_responses[i].items.size());
    for (size_t j = 0; j < plain_responses[i].items.size(); ++j) {
      EXPECT_EQ(plain_responses[i].items[j].first,
                indexed_responses[i].items[j].first);
      EXPECT_EQ(plain_responses[i].items[j].second,
                indexed_responses[i].items[j].second);
    }
  }
}

// Symmetric int8 quantization error bound: with per-row scales s_x, s_y
// and |rounding error| <= 0.5 per dimension,
//   |dot - approx| <= s_x * s_y * d * (127 + 0.25).
TEST(IvfQuantizationTest, ApproxDotWithinAnalyticBound) {
  constexpr int64_t kDim = 32;
  constexpr int64_t kNumItems = 200;
  const ClusteredCorpus corpus =
      MakeClusteredCorpus(kNumItems, kDim, /*num_clusters=*/6, /*seed=*/41);
  const IvfIndex index(corpus.embeddings, core::PackedInterests{},
                       IvfBuildConfig{});
  util::Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    const data::ItemId item = static_cast<data::ItemId>(
        rng.NextBelow(static_cast<uint64_t>(kNumItems)));
    std::vector<float> query(static_cast<size_t>(kDim));
    float query_maxabs = 0.0f;
    for (int64_t d = 0; d < kDim; ++d) {
      query[static_cast<size_t>(d)] =
          static_cast<float>(rng.NextGaussian());
      query_maxabs = std::max(
          query_maxabs, std::fabs(query[static_cast<size_t>(d)]));
    }
    const float* row = corpus.embeddings.data() + int64_t{item} * kDim;
    float item_maxabs = 0.0f;
    double exact = 0.0;
    for (int64_t d = 0; d < kDim; ++d) {
      item_maxabs = std::max(item_maxabs, std::fabs(row[d]));
      exact += static_cast<double>(row[d]) *
               static_cast<double>(query[static_cast<size_t>(d)]);
    }
    const double s_item = item_maxabs > 0.0f ? item_maxabs / 127.0 : 1.0;
    const double s_query =
        query_maxabs > 0.0f ? query_maxabs / 127.0 : 1.0;
    const double bound =
        s_item * s_query * static_cast<double>(kDim) * 127.25;
    const double approx =
        static_cast<double>(index.ApproxDot(item, query.data()));
    EXPECT_LE(std::fabs(exact - approx), bound * 1.0001 + 1e-6)
        << "item " << item;
  }
}

// IVF output is stably ordered (scores strictly descending; equal scores
// by ascending id) and every score is the item's brute-force score, bit
// for bit — the re-rank runs the exact kernels on the shortlist.
TEST(IvfOracleTest, RerankedOrderStableAndScoresExact) {
  constexpr int64_t kDim = 16;
  constexpr int64_t kNumItems = 1024;
  const ClusteredCorpus corpus = MakeClusteredCorpus(
      kNumItems, kDim, /*num_clusters=*/16, /*seed=*/61);
  util::Rng rng(67);
  std::vector<std::vector<float>> users;
  for (int u = 0; u < 10; ++u) {
    users.push_back(MakeInterests(corpus, /*k=*/2, rng));
  }
  const IvfIndex index(corpus.embeddings, PackInterests(users, kDim),
                       IvfBuildConfig{});
  IvfIndex::Scratch scratch;
  std::vector<std::pair<data::ItemId, float>> top;
  eval::RankScratch oracle_scratch;
  for (size_t u = 0; u < users.size(); ++u) {
    const nn::ConstMatrixView interests{users[u].data(), 2, kDim};
    index.SearchTopN(interests, corpus.embeddings,
                     eval::ScoreRule::kAttentive, 20, /*nprobe=*/0,
                     &scratch, &top);
    ScoreAllItemsInto(interests, corpus.embeddings,
                      eval::ScoreRule::kAttentive, &oracle_scratch);
    ASSERT_FALSE(top.empty());
    for (size_t i = 0; i < top.size(); ++i) {
      if (i > 0) {
        const bool descending = top[i - 1].second > top[i].second;
        const bool tie_by_id = top[i - 1].second == top[i].second &&
                               top[i - 1].first < top[i].first;
        EXPECT_TRUE(descending || tie_by_id) << "position " << i;
      }
      EXPECT_EQ(top[i].second,
                oracle_scratch.scores[static_cast<size_t>(top[i].first)])
          << "item " << top[i].first;
    }
  }
}

// The serving-accurate IVF eval protocol converges to exact metrics once
// nothing is approximated (full probe + full re-rank).
TEST(IvfOracleTest, EvaluatorIvfMatchesExactAtFullProbe) {
  // 3 users x 4 items, pretrain [0,50), span 1 [50,100).
  std::vector<data::Interaction> log = {
      {0, 0, 10}, {0, 1, 20}, {0, 2, 30}, {0, 0, 55}, {0, 1, 60},
      {1, 3, 15}, {1, 2, 25}, {1, 3, 35}, {1, 3, 85},
      {2, 1, 12}, {2, 2, 22}, {2, 0, 32}, {2, 2, 70},
  };
  data::Dataset dataset(3, 4, log, 1, 0.5, 1);
  util::Rng rng(71);
  core::InterestStore store;
  store.Initialize(0, 2, 8, 0, rng);
  store.Initialize(1, 1, 8, 0, rng);
  store.Initialize(2, 3, 8, 0, rng);
  const core::PackedInterests packed = store.ExportPacked();
  nn::Tensor embeddings = nn::Tensor::Randn({4, 8}, rng);

  nn::Tensor copy = nn::Tensor::Uninitialized({4, 8});
  std::copy_n(embeddings.data(), embeddings.numel(), copy.data());
  auto snapshot = std::make_shared<ServingSnapshot>(std::move(copy),
                                                    packed, 0);
  IvfBuildConfig build;
  build.min_rerank = 4;
  snapshot->AttachIndex(
      std::make_unique<IvfIndex>(embeddings, packed, build));
  SnapshotRegistry registry;
  registry.Publish(snapshot);

  eval::EvalConfig exact_config;
  exact_config.top_n = 4;
  exact_config.retrieval = RetrievalMode::kExact;
  eval::EvalConfig ivf_config = exact_config;
  ivf_config.retrieval = RetrievalMode::kIVF;
  ivf_config.nprobe = static_cast<int>(snapshot->index()->num_centroids());

  const eval::EvalResult exact =
      EvaluateSpan(*registry.Current(), dataset, 1, exact_config);
  const eval::EvalResult ivf =
      EvaluateSpan(*registry.Current(), dataset, 1, ivf_config);
  EXPECT_EQ(exact.metrics.users, ivf.metrics.users);
  EXPECT_EQ(exact.metrics.hit_ratio, ivf.metrics.hit_ratio);
  EXPECT_EQ(exact.metrics.ndcg, ivf.metrics.ndcg);
  EXPECT_EQ(ivf.ivf.searches, ivf.metrics.users);
  EXPECT_EQ(exact.ivf.searches, 0);
}

TEST(IvfEdgeTest, SingleItemCorpus) {
  util::Rng rng(81);
  const nn::Tensor embeddings = nn::Tensor::Randn({1, 8}, rng);
  const IvfIndex index(embeddings, core::PackedInterests{},
                       IvfBuildConfig{});
  EXPECT_EQ(index.num_items(), 1);
  EXPECT_EQ(index.num_centroids(), 1);
  const std::vector<float> query(8, 0.5f);
  IvfIndex::Scratch scratch;
  std::vector<std::pair<data::ItemId, float>> top;
  index.SearchTopN({query.data(), 1, 8}, embeddings,
                   eval::ScoreRule::kAttentive, 10, 0, &scratch, &top);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, 0);
}

TEST(IvfEdgeTest, CentroidCountClampedToCorpusSize) {
  util::Rng rng(83);
  const nn::Tensor embeddings = nn::Tensor::Randn({10, 8}, rng);
  IvfBuildConfig config;
  config.num_centroids = 64;  // more centroids than items
  const IvfIndex index(embeddings, core::PackedInterests{}, config);
  EXPECT_EQ(index.num_centroids(), 10);
  // Every item still lands in exactly one list.
  EXPECT_EQ(index.list_items().size(), 10u);
  EXPECT_EQ(index.list_begin().back(), 10);
}

TEST(IvfEdgeTest, DuplicateEmbeddingsRankByAscendingId) {
  // All rows identical: k-means is fully degenerate, every approximate
  // score ties, and the stable tie-break must surface ascending ids with
  // the one shared exact score.
  nn::Tensor embeddings = nn::Tensor::Uninitialized({32, 4});
  for (int64_t i = 0; i < embeddings.numel(); ++i) {
    embeddings.data()[i] = 0.25f * static_cast<float>(1 + (i % 4));
  }
  const IvfIndex index(embeddings, core::PackedInterests{},
                       IvfBuildConfig{});
  const std::vector<float> query = {1.0f, -0.5f, 0.25f, 0.75f};
  IvfIndex::Scratch scratch;
  std::vector<std::pair<data::ItemId, float>> top;
  index.SearchTopN({query.data(), 1, 4}, embeddings,
                   eval::ScoreRule::kAttentive, 5,
                   static_cast<int>(index.num_centroids()), &scratch, &top);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].first, static_cast<data::ItemId>(i));
    EXPECT_EQ(top[i].second, top[0].second);
  }
}

TEST(IvfEdgeTest, ZeroNormRowsAndZeroQuery) {
  // Zero rows exercise the quantization scale guard (scale = 1 instead
  // of 0/127); an all-zero query must still retrieve without NaNs.
  util::Rng rng(89);
  nn::Tensor embeddings = nn::Tensor::Randn({24, 6}, rng);
  for (int64_t i = 0; i < 3; ++i) {
    std::fill_n(embeddings.data() + i * 6, 6, 0.0f);
  }
  const IvfIndex index(embeddings, core::PackedInterests{},
                       IvfBuildConfig{});
  for (int64_t i = 0; i < 3; ++i) {
    const std::vector<float> probe(6, 1.0f);
    EXPECT_EQ(index.ApproxDot(static_cast<data::ItemId>(i), probe.data()),
              0.0f);
  }
  const std::vector<float> query(6, 0.0f);
  IvfIndex::Scratch scratch;
  std::vector<std::pair<data::ItemId, float>> top;
  index.SearchTopN({query.data(), 1, 6}, embeddings,
                   eval::ScoreRule::kMaxInterest, 4,
                   static_cast<int>(index.num_centroids()), &scratch, &top);
  ASSERT_EQ(top.size(), 4u);
  for (const auto& entry : top) {
    EXPECT_FALSE(std::isnan(entry.second));
    EXPECT_EQ(entry.second, 0.0f);  // zero query scores every item 0
  }
}

TEST(IvfEdgeTest, SingleInterestUserMatchesOracle) {
  constexpr int64_t kDim = 12;
  const ClusteredCorpus corpus =
      MakeClusteredCorpus(600, kDim, /*num_clusters=*/10, /*seed=*/91);
  util::Rng rng(93);
  const std::vector<float> interests = MakeInterests(corpus, 1, rng);
  const IvfIndex index(corpus.embeddings,
                       PackInterests({interests}, kDim), IvfBuildConfig{});
  const nn::ConstMatrixView view{interests.data(), 1, kDim};
  IvfIndex::Scratch scratch;
  std::vector<std::pair<data::ItemId, float>> top;
  index.SearchTopN(view, corpus.embeddings, eval::ScoreRule::kAttentive,
                   10, static_cast<int>(index.num_centroids()), &scratch,
                   &top);
  // K=1 attentive == the raw dot; with a full probe the answer is exact
  // (min_rerank=64 >= top_n covers the cutoff).
  const auto oracle = BruteForceTopN(view, corpus.embeddings,
                                     eval::ScoreRule::kAttentive, 10);
  ASSERT_EQ(top.size(), oracle.size());
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].first, oracle[i].first);
    EXPECT_EQ(top[i].second, oracle[i].second);
  }
}

TEST(IvfEdgeTest, BuildIsBitwiseDeterministicAcrossThreadCounts) {
  constexpr int64_t kDim = 16;
  const ClusteredCorpus corpus =
      MakeClusteredCorpus(2000, kDim, /*num_clusters=*/14, /*seed=*/101);
  util::Rng rng(103);
  std::vector<std::vector<float>> users;
  for (int u = 0; u < 8; ++u) {
    users.push_back(MakeInterests(corpus, 1 + (u % 4), rng));
  }
  const core::PackedInterests seeds = PackInterests(users, kDim);
  IvfBuildConfig config_a;
  config_a.threads = 1;
  IvfBuildConfig config_b;
  config_b.threads = 4;
  const IvfIndex a(corpus.embeddings, seeds, config_a);
  const IvfIndex b(corpus.embeddings, seeds, config_b);
  ASSERT_EQ(a.num_centroids(), b.num_centroids());
  EXPECT_EQ(0, std::memcmp(a.centroids().data(), b.centroids().data(),
                           static_cast<size_t>(a.centroids().numel()) *
                               sizeof(float)));
  EXPECT_EQ(a.list_begin(), b.list_begin());
  EXPECT_EQ(a.list_items(), b.list_items());
  EXPECT_EQ(a.codes(), b.codes());
  EXPECT_EQ(0, std::memcmp(a.scales().data(), b.scales().data(),
                           a.scales().size() * sizeof(float)));
  EXPECT_NE(a.build_id(), b.build_id());  // stamps stay unique
}

TEST(IvfIndexTest, RetrievalModeNamesRoundTrip) {
  RetrievalMode mode = RetrievalMode::kIVF;
  std::string error;
  EXPECT_TRUE(RetrievalModeFromName("exact", &mode, &error));
  EXPECT_EQ(mode, RetrievalMode::kExact);
  EXPECT_TRUE(RetrievalModeFromName("ivf", &mode, &error));
  EXPECT_EQ(mode, RetrievalMode::kIVF);
  EXPECT_FALSE(RetrievalModeFromName("annoy", &mode, &error));
  EXPECT_NE(error.find("annoy"), std::string::npos);
  EXPECT_STREQ(RetrievalModeName(RetrievalMode::kExact), "exact");
  EXPECT_STREQ(RetrievalModeName(RetrievalMode::kIVF), "ivf");
}

}  // namespace
}  // namespace imsr::serve
