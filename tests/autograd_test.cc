// Autograd correctness: every op's analytic gradient is validated against
// central finite differences via nn::CheckGradients, plus structural tests
// of the tape (accumulation, constants, graph reuse).
#include <gtest/gtest.h>

#include "nn/gradcheck.h"
#include "nn/ops.h"
#include "nn/variable.h"
#include "util/rng.h"

namespace imsr::nn {
namespace {

namespace ops = ::imsr::nn::ops;

Var Param(std::vector<int64_t> shape, util::Rng& rng) {
  return Var(Tensor::Randn(std::move(shape), rng, 0.0f, 0.7f),
             /*requires_grad=*/true);
}

// ---- Structural behaviour ----

TEST(VariableTest, LeafAndConstantBasics) {
  Var constant(Tensor::FromVector({1.0f}));
  EXPECT_FALSE(constant.requires_grad());
  Var parameter(Tensor::FromVector({2.0f}), /*requires_grad=*/true);
  EXPECT_TRUE(parameter.requires_grad());
  EXPECT_FALSE(parameter.has_grad());
}

TEST(VariableTest, BackwardThroughSimpleChain) {
  Var x(Tensor::FromVector({3.0f}), true);
  Var y = ops::Scale(x, 2.0f);       // y = 2x
  Var loss = ops::Mul(y, y);         // loss = 4x^2
  loss = ops::Sum(loss);
  loss.Backward();
  EXPECT_FLOAT_EQ(loss.value().item(), 36.0f);
  EXPECT_FLOAT_EQ(x.grad().at(0), 24.0f);  // d/dx 4x^2 = 8x
}

TEST(VariableTest, GradAccumulatesWhenReused) {
  Var x(Tensor::FromVector({2.0f}), true);
  // loss = x + x -> dloss/dx = 2.
  Var loss = ops::Add(x, x);
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 2.0f);
}

TEST(VariableTest, ConstantsReceiveNoGrad) {
  Var x(Tensor::FromVector({2.0f}), true);
  Var c(Tensor::FromVector({5.0f}));
  Var loss = ops::Mul(x, c);
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 5.0f);
  EXPECT_FALSE(c.has_grad());
}

TEST(VariableTest, ZeroGradClears) {
  Var x(Tensor::FromVector({1.0f}), true);
  ops::Scale(x, 3.0f).Backward();
  EXPECT_TRUE(x.has_grad());
  x.ZeroGrad();
  EXPECT_FALSE(x.has_grad());
}

TEST(VariableTest, DiamondGraphGradient) {
  // loss = (x*x) + (x*2): dL/dx = 2x + 2.
  Var x(Tensor::FromVector({3.0f}), true);
  Var left = ops::Mul(x, x);
  Var right = ops::Scale(x, 2.0f);
  ops::Add(left, right).Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 8.0f);
}

// ---- Finite-difference checks, one per op ----

TEST(GradCheckTest, AddSubMul) {
  util::Rng rng(10);
  Var a = Param({3, 2}, rng);
  Var b = Param({3, 2}, rng);
  auto forward = [&] {
    return ops::Sum(ops::Mul(ops::Add(a, b), ops::Sub(a, b)));
  };
  const GradCheckResult result = CheckGradients(forward, {a, b});
  EXPECT_TRUE(result.ok) << "max rel err " << result.max_rel_error;
}

TEST(GradCheckTest, ScaleAddScalar) {
  util::Rng rng(11);
  Var a = Param({4}, rng);
  auto forward = [&] {
    return ops::Sum(ops::AddScalar(ops::Scale(a, -1.7f), 0.5f));
  };
  EXPECT_TRUE(CheckGradients(forward, {a}).ok);
}

TEST(GradCheckTest, MatMul) {
  util::Rng rng(12);
  Var a = Param({3, 4}, rng);
  Var b = Param({4, 2}, rng);
  auto forward = [&] { return ops::SumSquares(ops::MatMul(a, b)); };
  EXPECT_TRUE(CheckGradients(forward, {a, b}).ok);
}

TEST(GradCheckTest, MatVec) {
  util::Rng rng(13);
  Var a = Param({3, 4}, rng);
  Var x = Param({4}, rng);
  auto forward = [&] { return ops::SumSquares(ops::MatVec(a, x)); };
  EXPECT_TRUE(CheckGradients(forward, {a, x}).ok);
}

TEST(GradCheckTest, TransposeReshape) {
  util::Rng rng(14);
  Var a = Param({2, 3}, rng);
  auto forward = [&] {
    return ops::SumSquares(
        ops::Reshape(ops::Transpose(a), {2, 3}));
  };
  EXPECT_TRUE(CheckGradients(forward, {a}).ok);
}

TEST(GradCheckTest, Dot) {
  util::Rng rng(15);
  Var a = Param({5}, rng);
  Var b = Param({5}, rng);
  auto forward = [&] { return ops::Dot(a, b); };
  EXPECT_TRUE(CheckGradients(forward, {a, b}).ok);
}

TEST(GradCheckTest, DivByScalar) {
  util::Rng rng(16);
  Var a = Param({4}, rng);
  Var s(Tensor::FromVector({2.5f}), true);
  auto forward = [&] { return ops::SumSquares(ops::DivByScalar(a, s)); };
  EXPECT_TRUE(CheckGradients(forward, {a, s}).ok);
}

TEST(GradCheckTest, ScaleRows) {
  util::Rng rng(17);
  Var a = Param({3, 4}, rng);
  Var s = Param({3}, rng);
  auto forward = [&] { return ops::SumSquares(ops::ScaleRows(a, s)); };
  EXPECT_TRUE(CheckGradients(forward, {a, s}).ok);
}

TEST(GradCheckTest, SigmoidTanhExpRelu) {
  util::Rng rng(18);
  Var a = Param({6}, rng);
  auto forward = [&] {
    Var h = ops::Tanh(ops::Sigmoid(a));
    return ops::Sum(ops::Exp(ops::Scale(h, 0.3f)));
  };
  EXPECT_TRUE(CheckGradients(forward, {a}).ok);
  // ReLU checked away from the kink.
  Var b(Tensor::FromVector({0.5f, -0.7f, 1.2f, -0.3f}), true);
  auto relu_forward = [&] { return ops::SumSquares(ops::Relu(b)); };
  EXPECT_TRUE(CheckGradients(relu_forward, {b}).ok);
}

TEST(GradCheckTest, SoftmaxRows) {
  util::Rng rng(19);
  Var a = Param({3, 4}, rng);
  Var weights(Tensor::Randn({3, 4}, rng));  // constant mixing weights
  auto forward = [&] {
    return ops::Sum(ops::Mul(ops::Softmax(a), weights));
  };
  EXPECT_TRUE(CheckGradients(forward, {a}).ok);
}

TEST(GradCheckTest, SquashRows) {
  util::Rng rng(20);
  Var a = Param({3, 5}, rng);
  Var weights(Tensor::Randn({3, 5}, rng));
  auto forward = [&] {
    return ops::Sum(ops::Mul(ops::SquashRows(a), weights));
  };
  const GradCheckResult result = CheckGradients(forward, {a});
  EXPECT_TRUE(result.ok) << "max rel err " << result.max_rel_error;
}

TEST(GradCheckTest, GatherRows) {
  util::Rng rng(21);
  Var table = Param({5, 3}, rng);
  auto forward = [&] {
    // Repeated index exercises scatter-add accumulation.
    return ops::SumSquares(ops::GatherRows(table, {1, 3, 1}));
  };
  EXPECT_TRUE(CheckGradients(forward, {table}).ok);
}

TEST(GradCheckTest, ConcatAndSlices) {
  util::Rng rng(22);
  Var a = Param({2, 3}, rng);
  Var b = Param({3, 3}, rng);
  auto forward = [&] {
    Var cat = ops::ConcatRows({a, b});
    Var mid = ops::RowSlice(cat, 1, 4);
    return ops::Sum(ops::SumSquares(ops::RowVector(mid, 1)));
  };
  EXPECT_TRUE(CheckGradients(forward, {a, b}).ok);
}

TEST(GradCheckTest, NegLogSoftmax) {
  util::Rng rng(23);
  Var scores = Param({7}, rng);
  auto forward = [&] { return ops::NegLogSoftmax(scores, 2); };
  EXPECT_TRUE(CheckGradients(forward, {scores}).ok);
}

TEST(GradCheckTest, KdSigmoidCrossEntropy) {
  util::Rng rng(24);
  Var logits = Param({5}, rng);
  Tensor teacher({5});
  for (int64_t i = 0; i < 5; ++i) {
    teacher.at(i) = static_cast<float>(rng.Uniform(0.05, 0.95));
  }
  for (float tau : {0.5f, 1.0f, 2.0f}) {
    auto forward = [&] {
      return ops::KdSigmoidCrossEntropy(logits, teacher, tau);
    };
    EXPECT_TRUE(CheckGradients(forward, {logits}).ok) << "tau=" << tau;
  }
}

TEST(GradCheckTest, KdSoftmaxCrossEntropy) {
  util::Rng rng(25);
  Var logits = Param({5}, rng);
  std::vector<double> teacher_raw(5);
  for (auto& v : teacher_raw) v = rng.Uniform(0.1, 1.0);
  Tensor teacher({5});
  double total = 0.0;
  for (double v : teacher_raw) total += v;
  for (int64_t i = 0; i < 5; ++i) {
    teacher.at(i) = static_cast<float>(teacher_raw[i] / total);
  }
  for (float tau : {0.5f, 1.0f, 2.0f}) {
    auto forward = [&] {
      return ops::KdSoftmaxCrossEntropy(logits, teacher, tau);
    };
    EXPECT_TRUE(CheckGradients(forward, {logits}).ok) << "tau=" << tau;
  }
}

TEST(GradCheckTest, NegLogSoftmaxGradientSignsMatchIntuition) {
  // The positive's gradient must be negative (score pushed up) and the
  // negatives' positive (pushed down).
  Var scores(Tensor::FromVector({0.1f, 0.2f, -0.1f}), true);
  ops::NegLogSoftmax(scores, 0).Backward();
  EXPECT_LT(scores.grad().at(0), 0.0f);
  EXPECT_GT(scores.grad().at(1), 0.0f);
  EXPECT_GT(scores.grad().at(2), 0.0f);
}

}  // namespace
}  // namespace imsr::nn
