// Tests for the dataset substrate: span splitting, leave-one-out rule,
// synthetic generator invariants, samplers and statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/dataset.h"
#include "data/sampler.h"
#include "data/stats.h"
#include "data/synthetic.h"

namespace imsr::data {
namespace {

// A tiny handcrafted log: 2 users, 6 items, timeline [0, 100).
std::vector<Interaction> TinyLog() {
  std::vector<Interaction> log;
  // User 0: pretrain 0..49 has items 0,1,2; span data afterwards.
  log.push_back({0, 0, 5});
  log.push_back({0, 1, 20});
  log.push_back({0, 2, 45});
  // Incremental half [50, 100) in 2 spans: [50,75), [75,100).
  log.push_back({0, 3, 55});
  log.push_back({0, 4, 60});
  log.push_back({0, 5, 70});
  log.push_back({0, 1, 80});
  log.push_back({0, 2, 95});
  // User 1: only pretrain interactions.
  log.push_back({1, 0, 10});
  log.push_back({1, 3, 30});
  log.push_back({1, 4, 40});
  return log;
}

TEST(DatasetTest, SpanAssignmentAndSplit) {
  Dataset dataset(2, 6, TinyLog(), /*num_incremental_spans=*/2,
                  /*alpha=*/0.5, /*min_interactions=*/1);
  EXPECT_EQ(dataset.num_spans(), 3);

  const UserSpanData& u0_pre = dataset.user_span(0, 0);
  EXPECT_EQ(u0_pre.all.size(), 3u);
  // Leave-one-out inside the span: train=[0], valid=1, test=2.
  EXPECT_EQ(u0_pre.train.size(), 1u);
  EXPECT_EQ(u0_pre.valid, 1);
  EXPECT_EQ(u0_pre.test, 2);

  const UserSpanData& u0_s1 = dataset.user_span(0, 1);
  EXPECT_EQ(u0_s1.all, (std::vector<ItemId>{3, 4, 5}));

  const UserSpanData& u0_s2 = dataset.user_span(0, 2);
  EXPECT_EQ(u0_s2.all, (std::vector<ItemId>{1, 2}));
  // Two-item span: no validation item, last is test.
  EXPECT_EQ(u0_s2.valid, -1);
  EXPECT_EQ(u0_s2.test, 2);
  EXPECT_EQ(u0_s2.train, (std::vector<ItemId>{1}));

  // User 1 inactive after pretraining.
  EXPECT_FALSE(dataset.user_span(1, 1).active());
  const auto& active1 = dataset.active_users(1);
  EXPECT_EQ(active1.size(), 1u);
  EXPECT_EQ(active1[0], 0);
}

TEST(DatasetTest, MinInteractionsFilter) {
  Dataset dataset(2, 6, TinyLog(), 2, 0.5, /*min_interactions=*/4);
  EXPECT_TRUE(dataset.user_kept(0));   // 8 interactions
  EXPECT_FALSE(dataset.user_kept(1));  // 3 interactions
  EXPECT_EQ(dataset.num_kept_users(), 1);
  EXPECT_FALSE(dataset.user_span(1, 0).active());
}

TEST(DatasetTest, ChronologicalOrderWithinSpan) {
  // Deliberately unsorted input must be sorted by timestamp.
  std::vector<Interaction> log = {{0, 2, 30}, {0, 0, 10}, {0, 1, 20},
                                  {0, 3, 60}, {0, 4, 55}, {0, 5, 70}};
  Dataset dataset(1, 6, log, 1, 0.5, 1);
  EXPECT_EQ(dataset.user_span(0, 0).all, (std::vector<ItemId>{0, 1, 2}));
  EXPECT_EQ(dataset.user_span(0, 1).all, (std::vector<ItemId>{4, 3, 5}));
}

TEST(DatasetTest, SpanInteractionCountsSumToKeptLog) {
  Dataset dataset(2, 6, TinyLog(), 2, 0.5, 1);
  int64_t total = 0;
  for (int span = 0; span < dataset.num_spans(); ++span) {
    total += dataset.span_interactions(span);
  }
  EXPECT_EQ(total, 11);
}

TEST(DatasetTest, UserHistoryUpTo) {
  Dataset dataset(2, 6, TinyLog(), 2, 0.5, 1);
  const std::vector<ItemId> h0 = dataset.UserHistoryUpTo(0, 0);
  EXPECT_EQ(h0, (std::vector<ItemId>{0, 1, 2}));
  const std::vector<ItemId> h1 = dataset.UserHistoryUpTo(0, 1);
  EXPECT_EQ(h1, (std::vector<ItemId>{0, 1, 2, 3, 4, 5}));
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  SyntheticConfig config = SyntheticConfig::Electronics(0.1);
  const SyntheticDataset a = GenerateSynthetic(config);
  const SyntheticDataset b = GenerateSynthetic(config);
  EXPECT_EQ(a.dataset->num_kept_users(), b.dataset->num_kept_users());
  for (int span = 0; span < a.dataset->num_spans(); ++span) {
    EXPECT_EQ(a.dataset->span_interactions(span),
              b.dataset->span_interactions(span));
  }
  EXPECT_EQ(a.truth.item_category, b.truth.item_category);
}

TEST(SyntheticTest, AllPresetsGenerate) {
  for (const char* name : {"electronics", "clothing", "books", "taobao"}) {
    const SyntheticDataset synthetic =
        GenerateSynthetic(SyntheticConfig::Preset(name, 0.05));
    EXPECT_GT(synthetic.dataset->num_kept_users(), 0) << name;
    EXPECT_EQ(synthetic.dataset->num_incremental_spans(), 6) << name;
  }
}

TEST(SyntheticTest, GroundTruthConsistency) {
  const SyntheticDataset synthetic =
      GenerateSynthetic(SyntheticConfig::Books(0.08));
  const SyntheticConfig& config = synthetic.config;
  EXPECT_EQ(synthetic.truth.item_category.size(),
            static_cast<size_t>(config.num_items));
  for (int category : synthetic.truth.item_category) {
    EXPECT_GE(category, 0);
    EXPECT_LT(category, config.num_categories);
  }
  for (int32_t u = 0; u < config.num_users; ++u) {
    const auto& interests = synthetic.truth.user_interests[u];
    const auto& births = synthetic.truth.interest_birth_span[u];
    ASSERT_EQ(interests.size(), births.size());
    EXPECT_GE(interests.size(), 1u);
    // Owned interests are distinct.
    std::set<int> unique(interests.begin(), interests.end());
    EXPECT_EQ(unique.size(), interests.size());
    for (int birth : births) {
      EXPECT_GE(birth, 0);
      EXPECT_LE(birth, config.num_incremental_spans);
    }
  }
}

TEST(SyntheticTest, InterestsReappearAcrossSpans) {
  // The paper's motivation: most interests reappear in several spans.
  const SyntheticDataset synthetic =
      GenerateSynthetic(SyntheticConfig::Taobao(0.1));
  const double fraction =
      InterestReappearFraction(*synthetic.dataset, synthetic.truth, 3);
  EXPECT_GT(fraction, 0.4);
}

TEST(SyntheticTest, NewInterestRatesOrderAcrossPresets) {
  // Taobao users develop new interests faster than Books users (drives
  // the paper's §V-C contrast).
  auto new_interest_count = [](const SyntheticDataset& synthetic) {
    int64_t count = 0;
    for (const auto& births : synthetic.truth.interest_birth_span) {
      for (int birth : births) count += birth > 0 ? 1 : 0;
    }
    return count;
  };
  SyntheticConfig books = SyntheticConfig::Books(0.2);
  SyntheticConfig taobao = SyntheticConfig::Taobao(0.2);
  // Equalise user counts for a fair comparison.
  taobao.num_users = books.num_users;
  const auto books_count = new_interest_count(GenerateSynthetic(books));
  const auto taobao_count = new_interest_count(GenerateSynthetic(taobao));
  EXPECT_GT(taobao_count, books_count * 2);
}

TEST(SyntheticTest, ItemsMostlyFromOwnedInterests) {
  const SyntheticDataset synthetic =
      GenerateSynthetic(SyntheticConfig::Electronics(0.1));
  const Dataset& dataset = *synthetic.dataset;
  int64_t matched = 0;
  int64_t total = 0;
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    if (!dataset.user_kept(u)) continue;
    const auto& interests = synthetic.truth.user_interests[u];
    for (int span = 0; span < dataset.num_spans(); ++span) {
      for (ItemId item : dataset.user_span(u, span).all) {
        ++total;
        const int category = synthetic.truth.item_category[item];
        if (std::find(interests.begin(), interests.end(), category) !=
            interests.end()) {
          ++matched;
        }
      }
    }
  }
  ASSERT_GT(total, 0);
  // Every interaction is drawn from an owned interest by construction.
  EXPECT_EQ(matched, total);
}

TEST(SamplerTest, SpanSamplesAreNextItemPrediction) {
  Dataset dataset(2, 6, TinyLog(), 2, 0.5, 1);
  const std::vector<TrainingSample> samples =
      BuildSpanSamples(dataset, 1, /*max_history=*/10);
  // User 0's span-1 train sequence is {3}; a single item yields no sample.
  EXPECT_TRUE(samples.empty());

  const std::vector<TrainingSample> pretrain_samples =
      BuildSpanSamples(dataset, 0, 10);
  // User 0 train={0} (no sample); user 1 train={0} (n=3: train has 1 item).
  EXPECT_TRUE(pretrain_samples.empty());
}

TEST(SamplerTest, HistoryTruncation) {
  std::vector<Interaction> log;
  for (int i = 0; i < 20; ++i) {
    log.push_back({0, i % 8, i});  // all pretrain if alpha big enough
  }
  log.push_back({0, 0, 100});  // force timeline end
  Dataset dataset(1, 8, log, 1, 0.9, 1);
  const std::vector<TrainingSample> samples =
      BuildSpanSamples(dataset, 0, /*max_history=*/4);
  ASSERT_FALSE(samples.empty());
  for (const TrainingSample& sample : samples) {
    EXPECT_LE(sample.history.size(), 4u);
    EXPECT_GE(sample.history.size(), 1u);
  }
}

TEST(SamplerTest, CumulativeSamplesSpanBoundary) {
  Dataset dataset(2, 6, TinyLog(), 2, 0.5, 1);
  const std::vector<TrainingSample> samples =
      BuildCumulativeSamples(dataset, 2, 10);
  // User 0 cumulative train = {0} + {3} + {1} = 3 items -> 2 samples.
  int user0_samples = 0;
  for (const TrainingSample& sample : samples) {
    if (sample.user == 0) ++user0_samples;
  }
  EXPECT_EQ(user0_samples, 2);
}

TEST(SamplerTest, NegativeSamplerExcludesTarget) {
  NegativeSampler sampler(10);
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<ItemId> negatives = sampler.Sample(5, 3, rng);
    EXPECT_EQ(negatives.size(), 5u);
    for (ItemId item : negatives) {
      EXPECT_NE(item, 3);
      EXPECT_GE(item, 0);
      EXPECT_LT(item, 10);
    }
  }
}

TEST(StatsTest, ComputeStatsBasics) {
  Dataset dataset(2, 6, TinyLog(), 2, 0.5, 1);
  const DatasetStats stats = ComputeStats(dataset);
  EXPECT_EQ(stats.num_users, 2);
  EXPECT_EQ(stats.span_interactions.size(), 3u);
  EXPECT_EQ(stats.span_interactions[0], 6);
  EXPECT_EQ(stats.span_interactions[1], 3);
  EXPECT_EQ(stats.span_interactions[2], 2);
  EXPECT_EQ(stats.num_items_seen, 6);
  EXPECT_NEAR(stats.mean_sequence_length, 5.5, 1e-9);
}

}  // namespace
}  // namespace imsr::data
