// Tests for the streaming subsystem: bounded-queue backpressure
// semantics, replay-source ordering and sequence assignment, prequential
// window math, and — the load-bearing invariant — that every event is
// scored against a snapshot trained strictly before it, including while
// publishes race a full queue and concurrent snapshot readers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/imsr_trainer.h"
#include "core/interest_store.h"
#include "data/synthetic.h"
#include "models/msr_model.h"
#include "obs/metrics.h"
#include "serve/ivf_index.h"
#include "serve/registry.h"
#include "serve/snapshot.h"
#include "stream/event_source.h"
#include "stream/prequential.h"
#include "stream/queue.h"
#include "stream/service.h"
#include "stream/stream_trainer.h"

namespace imsr::stream {
namespace {

StreamEvent MakeEvent(data::UserId user, data::ItemId item,
                      uint64_t sequence) {
  StreamEvent event;
  event.user = user;
  event.item = item;
  event.timestamp = static_cast<int64_t>(sequence);
  event.sequence = sequence;
  return event;
}

// ---------------------------------------------------------------------------
// BoundedEventQueue

TEST(QueueTest, FifoOrderAndDrainAfterClose) {
  BoundedEventQueue queue(8);
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(queue.Push(MakeEvent(0, static_cast<data::ItemId>(i), i)));
  }
  queue.Close();
  EXPECT_FALSE(queue.Push(MakeEvent(0, 9, 9)));  // closed
  StreamEvent event;
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(queue.Pop(&event));
    EXPECT_EQ(event.sequence, i);  // pending events drain in order
  }
  EXPECT_FALSE(queue.Pop(&event));  // closed and empty
}

TEST(QueueTest, TryPushRejectsWhenFull) {
  BoundedEventQueue queue(2);
  EXPECT_TRUE(queue.TryPush(MakeEvent(0, 0, 1)));
  EXPECT_TRUE(queue.TryPush(MakeEvent(0, 0, 2)));
  EXPECT_FALSE(queue.TryPush(MakeEvent(0, 0, 3)));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.max_depth(), 2u);
}

TEST(QueueTest, PushBlocksOnFullQueueUntilConsumerPops) {
  BoundedEventQueue queue(2);
  ASSERT_TRUE(queue.Push(MakeEvent(0, 0, 1)));
  ASSERT_TRUE(queue.Push(MakeEvent(0, 0, 2)));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    queue.Push(MakeEvent(0, 0, 3));  // must block until a Pop frees a slot
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still waiting — backpressure
  StreamEvent event;
  ASSERT_TRUE(queue.Pop(&event));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_GE(queue.blocked_pushes(), 1u);
  queue.Close();
}

TEST(QueueTest, CloseWakesBlockedProducerAndConsumer) {
  BoundedEventQueue queue(1);
  ASSERT_TRUE(queue.Push(MakeEvent(0, 0, 1)));
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    push_result.store(queue.Push(MakeEvent(0, 0, 2)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  producer.join();
  EXPECT_FALSE(push_result.load());  // woken by Close, event rejected
  StreamEvent event;
  EXPECT_TRUE(queue.Pop(&event));   // pending event still drains
  EXPECT_FALSE(queue.Pop(&event));  // then end-of-stream
}

// ---------------------------------------------------------------------------
// ReplayEventSource

TEST(ReplaySourceTest, EmitsTimestampOrderWithSequentialSequences) {
  std::vector<data::Interaction> log = {
      {0, 3, 30}, {1, 1, 10}, {0, 2, 20}, {1, 4, 40}};
  ReplayEventSource source(log);
  StreamEvent event;
  std::vector<int64_t> timestamps;
  std::vector<uint64_t> sequences;
  while (source.Next(&event)) {
    timestamps.push_back(event.timestamp);
    sequences.push_back(event.sequence);
  }
  EXPECT_EQ(timestamps, (std::vector<int64_t>{10, 20, 30, 40}));
  EXPECT_EQ(sequences, (std::vector<uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(source.remaining(), 0u);
}

TEST(ReplaySourceTest, StartAfterSkipsEarlierEvents) {
  std::vector<data::Interaction> log = {
      {0, 1, 10}, {0, 2, 20}, {0, 3, 30}, {0, 4, 40}};
  ReplayEventSource source(log, /*start_after=*/20);
  EXPECT_EQ(source.total(), 2u);
  StreamEvent event;
  ASSERT_TRUE(source.Next(&event));
  EXPECT_EQ(event.timestamp, 30);
  EXPECT_EQ(event.sequence, 1u);  // sequences restart on the filtered set
}

TEST(ReplaySourceTest, PretrainBoundaryMatchesDatasetSplit) {
  // Timeline [0, 99], alpha 0.5 -> boundary at 50 (dataset.cc's span_of:
  // ts < z_min + alpha*(z_max - z_min + 1) is pre-training).
  std::vector<data::Interaction> log;
  for (int64_t ts = 0; ts < 100; ts += 7) log.push_back({0, 0, ts});
  const int64_t boundary = PretrainBoundaryTimestamp(log, 0.5);
  EXPECT_EQ(boundary, 50);
  ReplayEventSource source(log, boundary - 1);
  StreamEvent event;
  while (source.Next(&event)) {
    EXPECT_GE(event.timestamp, boundary);
  }
}

// ---------------------------------------------------------------------------
// PrequentialEvaluator

// Hand-built snapshot: `dim`-dimensional identity-ish embeddings so item
// ranks under kMaxInterest are fully predictable from the interest rows.
std::shared_ptr<serve::ServingSnapshot> MakeSnapshot(
    int64_t num_items, int64_t dim,
    const std::vector<std::pair<data::UserId, nn::Tensor>>& users) {
  nn::Tensor embeddings({num_items, dim});
  for (int64_t i = 0; i < std::min(num_items, dim); ++i) {
    embeddings.at(i, i) = 1.0f;
  }
  core::InterestStore store;
  util::Rng rng(3);
  for (const auto& [user, interests] : users) {
    store.Initialize(user, interests.size(0), dim, 0, rng);
    store.SetInterests(user, interests);
  }
  return std::make_shared<serve::ServingSnapshot>(
      std::move(embeddings), store.ExportPacked(), 0);
}

TEST(PrequentialTest, WindowRecallMatchesHandComputedRanks) {
  // User 0's single interest points at item 0: item 0 ranks 1st, every
  // other item ties at 0 and ranks pessimistically behind.
  nn::Tensor interests({1, 4});
  interests.at(0, 0) = 1.0f;
  const auto snapshot = MakeSnapshot(4, 4, {{0, interests}});

  PrequentialConfig config;
  config.top_n = 1;
  config.window = 8;
  config.rule = eval::ScoreRule::kMaxInterest;
  PrequentialEvaluator evaluator(config);

  EXPECT_TRUE(evaluator.ScoreEvent(*snapshot, MakeEvent(0, 0, 1), 0));
  EXPECT_TRUE(evaluator.ScoreEvent(*snapshot, MakeEvent(0, 2, 2), 0));
  const eval::WindowMetrics window = evaluator.Window();
  EXPECT_EQ(window.count, 2);
  EXPECT_NEAR(window.hit_ratio, 0.5, 1e-12);  // hit on item 0, miss on 2
  EXPECT_EQ(evaluator.scored(), 2);
}

TEST(PrequentialTest, UnknownUserIsSkippedNotScored) {
  nn::Tensor interests({1, 4});
  interests.at(0, 0) = 1.0f;
  const auto snapshot = MakeSnapshot(4, 4, {{0, interests}});
  PrequentialEvaluator evaluator(PrequentialConfig{});
  EXPECT_FALSE(evaluator.ScoreEvent(*snapshot, MakeEvent(7, 1, 1), 0));
  EXPECT_EQ(evaluator.scored(), 0);
  EXPECT_EQ(evaluator.skipped(), 1);
  EXPECT_EQ(evaluator.Window().count, 0);
}

TEST(PrequentialTest, AuditRecordsSnapshotProvenancePerEvent) {
  nn::Tensor interests({1, 4});
  interests.at(0, 0) = 1.0f;
  const auto snapshot = MakeSnapshot(4, 4, {{0, interests}});
  PrequentialConfig config;
  config.record_audit = true;
  PrequentialEvaluator evaluator(config);
  evaluator.ScoreEvent(*snapshot, MakeEvent(0, 1, 5), 2);
  ASSERT_EQ(evaluator.audits().size(), 1u);
  EXPECT_EQ(evaluator.audits()[0].sequence, 5u);
  EXPECT_EQ(evaluator.audits()[0].trained_through_sequence, 2u);
}

// ---------------------------------------------------------------------------
// End-to-end prequential ordering invariant

struct StreamFixture {
  data::SyntheticDataset synthetic;
  std::unique_ptr<models::MsrModel> model;
  core::InterestStore store;
  std::vector<data::Interaction> replay;

  explicit StreamFixture(uint64_t seed) {
    data::SyntheticConfig config;
    config.num_users = 24;
    config.num_items = 120;
    config.num_categories = 6;
    config.num_incremental_spans = 3;
    config.pretrain_interactions_per_user = 16;
    config.span_interactions_per_user = 8;
    config.min_interactions = 6;
    config.seed = seed;
    synthetic = GenerateSynthetic(config);

    models::ModelConfig model_config;
    model_config.embedding_dim = 8;
    model_config.attention_dim = 8;
    model.reset(new models::MsrModel(
        model_config, synthetic.dataset->num_items(), seed));

    core::TrainConfig train;
    train.pretrain_epochs = 1;
    train.epochs = 1;
    train.initial_interests = 2;
    train.seed = seed;
    core::ImsrTrainer pretrainer(model.get(), &store, train);
    pretrainer.Pretrain(*synthetic.dataset);

    const std::vector<data::Interaction> flat =
        FlattenDatasetToLog(*synthetic.dataset);
    const int64_t boundary = PretrainBoundaryTimestamp(flat, 0.5);
    for (const data::Interaction& record : flat) {
      if (record.timestamp >= boundary) replay.push_back(record);
    }
  }

  StreamTrainerConfig TrainerConfig(int64_t publish_every) const {
    StreamTrainerConfig config;
    config.publish_every = publish_every;
    config.expand_every = 2;
    config.micro_epochs = 1;
    config.initial_span = 0;
    config.train.epochs = 1;
    config.train.initial_interests = 2;
    config.train.seed = 17;
    return config;
  }
};

// The core guarantee, proven per event: each scored event's snapshot
// trained through a sequence strictly below the event's own, and
// snapshot versions only move forward as the stream flows.
void CheckAudits(const std::vector<ScoreAudit>& audits) {
  ASSERT_FALSE(audits.empty());
  uint64_t last_version = 0;
  uint64_t last_sequence = 0;
  for (const ScoreAudit& audit : audits) {
    EXPECT_LT(audit.trained_through_sequence, audit.sequence)
        << "event " << audit.sequence << " scored by snapshot v"
        << audit.snapshot_version << " that had already trained on it";
    EXPECT_GE(audit.snapshot_version, last_version);
    EXPECT_GT(audit.sequence, last_sequence);
    last_version = audit.snapshot_version;
    last_sequence = audit.sequence;
  }
}

TEST(StreamServiceTest, SynchronousRunScoresEveryEventBeforeLearning) {
  StreamFixture fixture(29);
  serve::SnapshotRegistry registry;
  StreamTrainer trainer(fixture.model.get(), &fixture.store, &registry,
                        fixture.TrainerConfig(/*publish_every=*/40));
  PrequentialConfig eval_config;
  eval_config.top_n = 10;
  eval_config.window = 100;
  eval_config.record_audit = true;
  PrequentialEvaluator evaluator(eval_config);
  StreamServiceConfig service_config;
  service_config.threaded = false;
  StreamService service(&trainer, &evaluator, &registry, service_config);

  ReplayEventSource source(fixture.replay);
  const StreamResult result = service.Run(&source);

  EXPECT_EQ(result.events, fixture.replay.size());
  EXPECT_EQ(result.scored + result.skipped,
            static_cast<int64_t>(result.events));
  EXPECT_GT(result.scored, 0);
  EXPECT_GT(result.publishes, 0u);
  // publish_every=40 plus one flush for the partial tail.
  const uint64_t expected_publishes =
      (result.events + 39) / 40;
  EXPECT_EQ(result.publishes, expected_publishes);
  EXPECT_EQ(result.final_version, result.publishes + 1);  // + initial
  EXPECT_GT(result.final_window.count, 0);
  CheckAudits(evaluator.audits());
}

// Cooperative shutdown: a raised stop flag halts ingestion but the run
// still flushes, publishes, and returns normally — in both loop shapes.
TEST(StreamServiceTest, StopFlagDrainsAndReturnsNormally) {
  StreamFixture fixture(37);
  std::atomic<bool> stop{true};  // raised before the run even starts
  for (const bool threaded : {false, true}) {
    serve::SnapshotRegistry registry;
    StreamTrainer trainer(fixture.model.get(), &fixture.store, &registry,
                          fixture.TrainerConfig(/*publish_every=*/40));
    PrequentialEvaluator evaluator(PrequentialConfig{});
    StreamServiceConfig service_config;
    service_config.threaded = threaded;
    service_config.queue_cap = 4;
    service_config.stop = &stop;
    StreamService service(&trainer, &evaluator, &registry, service_config);
    ReplayEventSource source(fixture.replay);
    const StreamResult result = service.Run(&source);
    EXPECT_EQ(result.events, 0u) << "threaded=" << threaded;
    EXPECT_NE(registry.Current(), nullptr);  // initial publish happened
  }
}

TEST(StreamServiceTest, ThreadedRunWithTinyQueueKeepsOrderingInvariant) {
  StreamFixture fixture(31);
  serve::SnapshotRegistry registry;
  StreamTrainer trainer(fixture.model.get(), &fixture.store, &registry,
                        fixture.TrainerConfig(/*publish_every=*/25));
  PrequentialConfig eval_config;
  eval_config.top_n = 10;
  eval_config.window = 100;
  eval_config.record_audit = true;
  PrequentialEvaluator evaluator(eval_config);
  StreamServiceConfig service_config;
  service_config.threaded = true;
  // A queue far smaller than the stream forces the producer to block on
  // a full queue while the consumer is mid-publish — the race the
  // backpressure contract must survive.
  service_config.queue_cap = 4;
  StreamService service(&trainer, &evaluator, &registry, service_config);

  ReplayEventSource source(fixture.replay);
  const StreamResult result = service.Run(&source);

  EXPECT_EQ(result.events, fixture.replay.size());
  EXPECT_GT(result.blocked_pushes, 0u);  // backpressure actually engaged
  EXPECT_LE(result.queue_max_depth, service_config.queue_cap);
  CheckAudits(evaluator.audits());
}

// Publishes racing a full queue AND concurrent snapshot readers: while
// the stream trains and republishes, reader threads continuously load
// Current() — every reader must observe monotonically non-decreasing
// versions and internally consistent snapshots (companion to the
// publish-while-reading stress in serve_test).
TEST(StreamServiceTest, ConcurrentReadersSeeMonotoneVersionsDuringRun) {
  StreamFixture fixture(37);
  serve::SnapshotRegistry registry;
  StreamTrainer trainer(fixture.model.get(), &fixture.store, &registry,
                        fixture.TrainerConfig(/*publish_every=*/20));
  PrequentialConfig eval_config;
  eval_config.top_n = 10;
  eval_config.window = 100;
  eval_config.record_audit = true;
  PrequentialEvaluator evaluator(eval_config);
  StreamServiceConfig service_config;
  service_config.threaded = true;
  service_config.queue_cap = 4;
  StreamService service(&trainer, &evaluator, &registry, service_config);

  std::atomic<bool> stop{false};
  std::atomic<bool> monotone{true};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::shared_ptr<const serve::ServingSnapshot> snapshot =
            registry.Current();
        if (snapshot == nullptr) continue;
        const uint64_t version = snapshot->version();
        if (version < last) monotone.store(false);
        last = version;
        // Touch the frozen state: a torn publish would die here.
        if (snapshot->num_users() > 0) {
          (void)snapshot->Interests(snapshot->Users().front());
        }
      }
    });
  }

  ReplayEventSource source(fixture.replay);
  const StreamResult result = service.Run(&source);
  stop.store(true);
  for (std::thread& reader : readers) reader.join();

  EXPECT_TRUE(monotone.load());
  EXPECT_GT(result.publishes, 2u);
  CheckAudits(evaluator.audits());
}

// FT-mode (no persistence/expansion/retention) shares the pipeline; the
// knob only changes training semantics, not the ordering contract.
TEST(StreamServiceTest, FineTuningModeKeepsContract) {
  StreamFixture fixture(41);
  StreamTrainerConfig config = fixture.TrainerConfig(30);
  config.train.eir.kind = core::RetentionKind::kNone;
  config.train.enable_expansion = false;
  config.train.persist_interests = false;
  serve::SnapshotRegistry registry;
  StreamTrainer trainer(fixture.model.get(), &fixture.store, &registry,
                        config);
  PrequentialConfig eval_config;
  eval_config.record_audit = true;
  PrequentialEvaluator evaluator(eval_config);
  StreamServiceConfig service_config;
  service_config.threaded = false;
  StreamService service(&trainer, &evaluator, &registry, service_config);
  ReplayEventSource source(fixture.replay);
  const StreamResult result = service.Run(&source);
  EXPECT_GT(result.scored, 0);
  EXPECT_EQ(trainer.expansion_totals().users_expanded, 0);
  CheckAudits(evaluator.audits());
}

#if !defined(IMSR_OBS_DISABLED)
int64_t CounterValue(const obs::MetricsSnapshot& snapshot,
                     const std::string& name) {
  for (const obs::CounterSnapshot& counter : snapshot.counters) {
    if (counter.name == name) return counter.value;
  }
  return 0;
}

int64_t HistogramCount(const obs::MetricsSnapshot& snapshot,
                       const std::string& name) {
  for (const obs::HistogramSnapshot& histogram : snapshot.histograms) {
    if (histogram.name == name) return histogram.count;
  }
  return 0;
}
#endif  // !IMSR_OBS_DISABLED

// IVF retrieval through the threaded service: every published snapshot
// (initial + each micro-span) carries a FRESH index — proven by the
// monotone build stamps a concurrent reader observes and by the
// index-build accounting — while the prequential ordering contract and
// the searches-equals-scored bookkeeping hold.
TEST(StreamServiceTest, IvfRetrievalPublishesFreshIndexEveryPublish) {
  StreamFixture fixture(47);
  StreamTrainerConfig config = fixture.TrainerConfig(/*publish_every=*/25);
  config.build_index = true;
  serve::SnapshotRegistry registry;
  StreamTrainer trainer(fixture.model.get(), &fixture.store, &registry,
                        config);
  PrequentialConfig eval_config;
  eval_config.top_n = 10;
  eval_config.window = 100;
  eval_config.record_audit = true;
  eval_config.retrieval = serve::RetrievalMode::kIVF;
  PrequentialEvaluator evaluator(eval_config);
  StreamServiceConfig service_config;
  service_config.threaded = true;
  service_config.queue_cap = 8;
  StreamService service(&trainer, &evaluator, &registry, service_config);

#if !defined(IMSR_OBS_DISABLED)
  const obs::MetricsSnapshot before = obs::Registry().Snapshot();
#endif

  // A concurrent reader checks every snapshot it can observe: an index
  // is always attached, and build stamps never move backwards as
  // versions advance (a reused index would repeat its stamp).
  std::atomic<bool> stop{false};
  std::atomic<bool> always_indexed{true};
  std::atomic<bool> stamps_monotone{true};
  std::thread reader([&] {
    uint64_t last_version = 0;
    uint64_t last_build = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::shared_ptr<const serve::ServingSnapshot> snapshot =
          registry.Current();
      if (snapshot == nullptr) continue;
      if (snapshot->index() == nullptr) {
        always_indexed.store(false);
        continue;
      }
      const uint64_t version = snapshot->version();
      const uint64_t build = snapshot->index()->build_id();
      if (version > last_version && build <= last_build &&
          last_build != 0) {
        stamps_monotone.store(false);
      }
      if (version >= last_version) {
        last_version = version;
        last_build = build;
      }
    }
  });

  ReplayEventSource source(fixture.replay);
  const StreamResult result = service.Run(&source);
  stop.store(true);
  reader.join();

  EXPECT_TRUE(always_indexed.load());
  EXPECT_TRUE(stamps_monotone.load());
  // Initial publish + every micro-span publish built an index.
  EXPECT_EQ(result.index_builds, result.publishes + 1);
  // Every scored event went through the index; nothing fell back.
  EXPECT_EQ(result.ivf.searches, result.scored);
  EXPECT_GT(result.ivf.probes, 0);
  EXPECT_GT(result.ivf.reranked, 0);
  const std::shared_ptr<const serve::ServingSnapshot> final_snapshot =
      registry.Current();
  ASSERT_NE(final_snapshot, nullptr);
  ASSERT_NE(final_snapshot->index(), nullptr);
  EXPECT_GT(final_snapshot->index()->build_id(), 0u);
  CheckAudits(evaluator.audits());

#if !defined(IMSR_OBS_DISABLED)
  // Per-publish index build latency landed in the obs histogram, once
  // per build.
  const obs::MetricsSnapshot after = obs::Registry().Snapshot();
  EXPECT_EQ(CounterValue(after, "serve/index_builds") -
                CounterValue(before, "serve/index_builds"),
            static_cast<int64_t>(result.index_builds));
  EXPECT_EQ(HistogramCount(after, "serve/index_build_ms") -
                HistogramCount(before, "serve/index_build_ms"),
            static_cast<int64_t>(result.index_builds));
#endif
}

}  // namespace
}  // namespace imsr::stream
