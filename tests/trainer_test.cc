// Integration tests for the training engine: interests expansion
// (Algorithm 1), the IMSR trainer (Algorithm 2), pretraining convergence
// and interest refreshing.
#include <gtest/gtest.h>
#include <cmath>
#include <cstring>
#include <numeric>


#include "core/imsr_trainer.h"
#include "core/interests_expansion.h"
#include "data/synthetic.h"
#include "models/comirec_sa.h"
#include "models/msr_model.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/buffer_pool.h"

namespace imsr::core {
namespace {

data::SyntheticDataset SmallData() {
  data::SyntheticConfig config;
  config.name = "tiny";
  config.num_users = 40;
  config.num_items = 200;
  config.num_categories = 10;
  config.pretrain_interactions_per_user = 30;
  config.span_interactions_per_user = 10;
  config.min_interactions = 5;
  config.seed = 77;
  return data::GenerateSynthetic(config);
}

TrainConfig SmallTrainConfig() {
  TrainConfig config;
  config.pretrain_epochs = 2;
  config.epochs = 1;
  config.batch_size = 32;
  config.negatives = 5;
  config.initial_interests = 3;
  config.seed = 5;
  return config;
}

models::ModelConfig SmallModelConfig(models::ExtractorKind kind) {
  models::ModelConfig config;
  config.kind = kind;
  config.embedding_dim = 16;
  config.attention_dim = 12;
  return config;
}

TEST(TrainerTest, PretrainInitialisesInterestsForActiveUsers) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(
      SmallModelConfig(models::ExtractorKind::kComiRecDr),
      dataset.num_items(), 1);
  InterestStore store;
  ImsrTrainer trainer(&model, &store, SmallTrainConfig());
  trainer.Pretrain(dataset);
  for (data::UserId user : dataset.active_users(0)) {
    EXPECT_TRUE(store.Has(user));
    EXPECT_EQ(store.NumInterests(user), 3);
  }
}

TEST(TrainerTest, PretrainingReducesLoss) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(
      SmallModelConfig(models::ExtractorKind::kComiRecDr),
      dataset.num_items(), 2);
  InterestStore store;
  TrainConfig config = SmallTrainConfig();
  ImsrTrainer trainer(&model, &store, config);
  trainer.EnsureUserState(dataset, 0);

  const std::vector<data::TrainingSample> samples =
      data::BuildSpanSamples(dataset, 0, config.max_history);
  ASSERT_FALSE(samples.empty());
  auto total_loss = [&] {
    double total = 0.0;
    for (size_t i = 0; i < std::min<size_t>(samples.size(), 50); ++i) {
      total += trainer.SampleLoss(samples[i], nullptr).value().item();
    }
    return total;
  };
  const double before = total_loss();
  for (int epoch = 0; epoch < 3; ++epoch) {
    trainer.TrainEpoch(samples, nullptr);
  }
  const double after = total_loss();
  EXPECT_LT(after, before * 0.9);
}

TEST(TrainerTest, TrainSpanRunsForAllExtractors) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  for (models::ExtractorKind kind :
       {models::ExtractorKind::kMind, models::ExtractorKind::kComiRecDr,
        models::ExtractorKind::kComiRecSa}) {
    models::MsrModel model(SmallModelConfig(kind), dataset.num_items(), 3);
    InterestStore store;
    ImsrTrainer trainer(&model, &store, SmallTrainConfig());
    trainer.Pretrain(dataset);
    trainer.TrainSpan(dataset, 1);
    trainer.TrainSpan(dataset, 2);
    // Every span-2-active user has interests.
    for (data::UserId user : dataset.active_users(2)) {
      EXPECT_TRUE(store.Has(user));
      EXPECT_GE(store.NumInterests(user), 3);
    }
  }
}

TEST(TrainerTest, ExpansionGrowsInterestsAndRespectsCap) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(
      SmallModelConfig(models::ExtractorKind::kComiRecDr),
      dataset.num_items(), 4);
  InterestStore store;
  TrainConfig config = SmallTrainConfig();
  config.expansion.nid.c1 = 10.0;  // detector always fires
  config.expansion.pit.c2 = 0.0;   // nothing trimmed
  config.expansion.delta_k = 2;
  config.expansion.max_interests = 6;
  ImsrTrainer trainer(&model, &store, config);
  trainer.Pretrain(dataset);
  trainer.TrainSpan(dataset, 1);
  trainer.TrainSpan(dataset, 2);  // second expansion would exceed 6? no: 3+2=5, 5+2=7>6 -> skipped
  for (data::UserId user : dataset.active_users(1)) {
    EXPECT_LE(store.NumInterests(user), 6);
  }
  EXPECT_GT(trainer.expansion_totals().users_expanded, 0);
  EXPECT_GT(trainer.expansion_totals().interests_added, 0);
}

TEST(TrainerTest, StrictDetectorNeverExpands) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(
      SmallModelConfig(models::ExtractorKind::kComiRecDr),
      dataset.num_items(), 5);
  InterestStore store;
  TrainConfig config = SmallTrainConfig();
  config.expansion.nid.c1 = 0.0;  // mean KL < 0 impossible
  ImsrTrainer trainer(&model, &store, config);
  trainer.Pretrain(dataset);
  trainer.TrainSpan(dataset, 1);
  EXPECT_EQ(trainer.expansion_totals().users_expanded, 0);
  for (data::UserId user : dataset.active_users(1)) {
    EXPECT_EQ(store.NumInterests(user), 3);
  }
}

TEST(TrainerTest, ExpansionKeepsExistingBirthSpansAndAddsNew) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(
      SmallModelConfig(models::ExtractorKind::kComiRecDr),
      dataset.num_items(), 6);
  InterestStore store;
  TrainConfig config = SmallTrainConfig();
  config.expansion.nid.c1 = 10.0;
  config.expansion.pit.c2 = 0.0;
  ImsrTrainer trainer(&model, &store, config);
  trainer.Pretrain(dataset);
  trainer.TrainSpan(dataset, 1);
  bool saw_expanded_user = false;
  for (data::UserId user : dataset.active_users(1)) {
    const std::vector<int>& births = store.BirthSpans(user);
    for (size_t k = 0; k < 3 && k < births.size(); ++k) {
      EXPECT_EQ(births[k], 0);
    }
    if (births.size() > 3) {
      saw_expanded_user = true;
      for (size_t k = 3; k < births.size(); ++k) EXPECT_EQ(births[k], 1);
    }
  }
  EXPECT_TRUE(saw_expanded_user);
}

TEST(TrainerTest, SelfAttentionCapacityTracksStore) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(
      SmallModelConfig(models::ExtractorKind::kComiRecSa),
      dataset.num_items(), 7);
  InterestStore store;
  TrainConfig config = SmallTrainConfig();
  config.expansion.nid.c1 = 10.0;
  config.expansion.pit.c2 = 0.2;
  ImsrTrainer trainer(&model, &store, config);
  trainer.Pretrain(dataset);
  trainer.TrainSpan(dataset, 1);
  auto& extractor =
      dynamic_cast<models::SelfAttentionExtractor&>(model.extractor());
  for (data::UserId user : dataset.active_users(1)) {
    EXPECT_EQ(extractor.UserCapacity(user), store.NumInterests(user));
  }
}

TEST(TrainerTest, PersistInterestsKeepsDormantInterestVectors) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(
      SmallModelConfig(models::ExtractorKind::kComiRecDr),
      dataset.num_items(), 8);
  InterestStore store;
  TrainConfig config = SmallTrainConfig();
  config.enable_expansion = false;
  config.eir.kind = RetentionKind::kNone;
  config.persist_interests = true;
  config.min_evidence_items = 1000000;  // nothing ever overwritten
  ImsrTrainer trainer(&model, &store, config);
  trainer.Pretrain(dataset);
  data::UserId user = dataset.active_users(1)[0];
  const nn::Tensor before = store.Interests(user);
  trainer.TrainSpan(dataset, 1);
  // With an impossible evidence threshold all rows must stay identical.
  EXPECT_LT(nn::MaxAbsDiff(before, store.Interests(user)), 1e-12f);
}

TEST(TrainerTest, NonPersistentRefreshOverwritesInterests) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(
      SmallModelConfig(models::ExtractorKind::kComiRecDr),
      dataset.num_items(), 9);
  InterestStore store;
  TrainConfig config = SmallTrainConfig();
  config.enable_expansion = false;
  config.eir.kind = RetentionKind::kNone;
  config.persist_interests = false;
  ImsrTrainer trainer(&model, &store, config);
  trainer.Pretrain(dataset);
  data::UserId user = dataset.active_users(1)[0];
  const nn::Tensor before = store.Interests(user);
  trainer.TrainSpan(dataset, 1);
  EXPECT_GT(nn::MaxAbsDiff(before, store.Interests(user)), 1e-6f);
}

TEST(TrainerTest, RefreshUserInterestsUsesGivenItems) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(
      SmallModelConfig(models::ExtractorKind::kComiRecDr),
      dataset.num_items(), 10);
  InterestStore store;
  ImsrTrainer trainer(&model, &store, SmallTrainConfig());
  trainer.Pretrain(dataset);
  data::UserId user = dataset.active_users(0)[0];
  const nn::Tensor before = store.Interests(user);
  trainer.RefreshUserInterests(user, {1, 2, 3, 4, 5});
  EXPECT_EQ(store.NumInterests(user), before.size(0));
}

TEST(TrainerTest, ValidationLossIsFiniteAndImprovesWithTraining) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(
      SmallModelConfig(models::ExtractorKind::kComiRecDr),
      dataset.num_items(), 12);
  InterestStore store;
  TrainConfig config = SmallTrainConfig();
  ImsrTrainer trainer(&model, &store, config);
  trainer.EnsureUserState(dataset, 0);
  const double before = trainer.ValidationLoss(dataset, 0);
  EXPECT_TRUE(std::isfinite(before));
  const std::vector<data::TrainingSample> samples =
      data::BuildSpanSamples(dataset, 0, config.max_history);
  for (int epoch = 0; epoch < 4; ++epoch) {
    trainer.TrainEpoch(samples, nullptr);
  }
  EXPECT_LT(trainer.ValidationLoss(dataset, 0), before);
}

TEST(TrainerTest, EarlyStoppingDoesNotBreakPipeline) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(
      SmallModelConfig(models::ExtractorKind::kComiRecDr),
      dataset.num_items(), 13);
  InterestStore store;
  TrainConfig config = SmallTrainConfig();
  config.pretrain_epochs = 10;
  config.epochs = 6;
  config.early_stopping = true;
  config.early_stopping_patience = 1;
  ImsrTrainer trainer(&model, &store, config);
  trainer.Pretrain(dataset);
  trainer.TrainSpan(dataset, 1);
  for (data::UserId user : dataset.active_users(1)) {
    EXPECT_TRUE(store.Has(user));
  }
}

TEST(TrainerTest, TrainEpochReturnsMeanLoss) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(
      SmallModelConfig(models::ExtractorKind::kComiRecDr),
      dataset.num_items(), 14);
  InterestStore store;
  TrainConfig config = SmallTrainConfig();
  ImsrTrainer trainer(&model, &store, config);
  trainer.EnsureUserState(dataset, 0);
  const std::vector<data::TrainingSample> samples =
      data::BuildSpanSamples(dataset, 0, config.max_history);
  ASSERT_FALSE(samples.empty());
  const double first = trainer.TrainEpoch(samples, nullptr);
  EXPECT_TRUE(std::isfinite(first));
  EXPECT_GT(first, 0.0);  // -log softmax over 6 candidates starts near ln 6
  double last = first;
  for (int epoch = 0; epoch < 3; ++epoch) {
    last = trainer.TrainEpoch(samples, nullptr);
  }
  EXPECT_LT(last, first);
  EXPECT_EQ(trainer.TrainEpoch({}, nullptr), 0.0);
}

#if !defined(IMSR_OBS_DISABLED)
// Integration: a 2-span run must leave the paper's diagnostic series in
// the obs registry — per-span loss, puzzlement distribution, PIT
// trim/add counts, and step counters consistent with expansion_totals().
TEST(TrainerTest, ObsMetricsRecordedAcrossTrainingAndExpansion) {
  obs::Registry().Reset();
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(
      SmallModelConfig(models::ExtractorKind::kComiRecDr),
      dataset.num_items(), 15);
  InterestStore store;
  TrainConfig config = SmallTrainConfig();
  config.expansion.nid.c1 = 10.0;  // detector always fires
  config.eir.kind = RetentionKind::kSigmoidKd;
  ImsrTrainer trainer(&model, &store, config);
  trainer.Pretrain(dataset);
  trainer.TrainSpan(dataset, 1);
  trainer.TrainSpan(dataset, 2);

  const obs::MetricsSnapshot snapshot = obs::Registry().Snapshot();
  auto counter = [&](const std::string& name) -> int64_t {
    for (const obs::CounterSnapshot& c : snapshot.counters) {
      if (c.name == name) return c.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return -1;
  };
  auto has_gauge = [&](const std::string& name) {
    for (const obs::GaugeSnapshot& g : snapshot.gauges) {
      if (g.name == name) return true;
    }
    return false;
  };
  const obs::HistogramSnapshot* puzzlement = nullptr;
  const obs::HistogramSnapshot* step_latency = nullptr;
  for (const obs::HistogramSnapshot& h : snapshot.histograms) {
    if (h.name == "nid/puzzlement") puzzlement = &h;
    if (h.name == "trainer/step_latency_ms") step_latency = &h;
  }

  EXPECT_GT(counter("trainer/steps"), 0);
  EXPECT_GT(counter("trainer/kd_samples"), 0);
  EXPECT_TRUE(has_gauge("trainer/span_loss"));
  EXPECT_TRUE(has_gauge("trainer/pretrain_loss"));
  ASSERT_NE(puzzlement, nullptr);
  EXPECT_GT(puzzlement->count, 0);
  ASSERT_NE(step_latency, nullptr);
  EXPECT_EQ(step_latency->count, counter("trainer/steps"));
  // PIT counters agree with the trainer's own expansion bookkeeping.
  EXPECT_EQ(counter("pit/interests_added"),
            trainer.expansion_totals().interests_added);
  EXPECT_EQ(counter("pit/interests_trimmed"),
            trainer.expansion_totals().interests_trimmed);
  EXPECT_EQ(counter("nid/users_expanded"),
            trainer.expansion_totals().users_expanded);
}
#endif  // !IMSR_OBS_DISABLED

// Exact float-for-float equality (memcmp, so even -0.0 vs +0.0 or NaN
// payload differences would fail): the pool must be invisible to the
// numerics, not merely close.
bool BitwiseEqual(const nn::Tensor& a, const nn::Tensor& b) {
  if (a.numel() != b.numel()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

TEST(TrainerTest, PoolOnAndOffTrajectoriesAreBitwiseIdentical) {
  if (!util::PoolCompiledIn()) GTEST_SKIP() << "pool compiled out";
  const bool was_enabled = util::PoolEnabled();
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  struct RunResult {
    nn::Tensor interests;
    nn::Tensor embeddings;
    nn::Tensor transform;
  };
  auto run = [&](bool pooled) {
    util::SetPoolEnabled(pooled);
    models::MsrModel model(
        SmallModelConfig(models::ExtractorKind::kComiRecDr),
        dataset.num_items(), 16);
    InterestStore store;
    ImsrTrainer trainer(&model, &store, SmallTrainConfig());
    trainer.Pretrain(dataset);
    trainer.TrainSpan(dataset, 1);
    RunResult result;
    result.interests = store.Interests(dataset.active_users(1)[0]);
    result.embeddings = model.embeddings().parameter().value();
    result.transform = model.extractor().SharedParameters()[0].value();
    return result;
  };
  const RunResult pooled = run(true);
  const RunResult heap = run(false);
  util::SetPoolEnabled(was_enabled);
  EXPECT_TRUE(BitwiseEqual(pooled.interests, heap.interests));
  EXPECT_TRUE(BitwiseEqual(pooled.embeddings, heap.embeddings));
  EXPECT_TRUE(BitwiseEqual(pooled.transform, heap.transform));
}

// ---- Minibatched path vs per-sample reference path ----

// At batch_size == 1 the batched path must reproduce the per-sample path
// bit for bit: same RNG sequence, same graph arithmetic, same gradient
// accumulation order (see SampledSoftmaxBatchLoss).
TEST(TrainerTest, BatchedPathBitwiseIdenticalAtBatchSizeOne) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  auto run = [&](bool batched) {
    models::MsrModel model(
        SmallModelConfig(models::ExtractorKind::kComiRecDr),
        dataset.num_items(), 9);
    InterestStore store;
    TrainConfig config = SmallTrainConfig();
    config.batch_size = 1;
    config.batched = batched;
    ImsrTrainer trainer(&model, &store, config);
    trainer.EnsureUserState(dataset, 0);
    const std::vector<data::TrainingSample> samples =
        data::BuildSpanSamples(dataset, 0, config.max_history);
    std::vector<double> losses;
    for (int epoch = 0; epoch < 2; ++epoch) {
      losses.push_back(trainer.TrainEpoch(samples, nullptr));
    }
    std::vector<nn::Tensor> parameters;
    for (const nn::Var& p : model.SharedParameters()) {
      parameters.push_back(p.value());
    }
    return std::make_pair(losses, parameters);
  };
  const auto batched = run(true);
  const auto reference = run(false);
  ASSERT_EQ(batched.first.size(), reference.first.size());
  for (size_t i = 0; i < batched.first.size(); ++i) {
    EXPECT_EQ(batched.first[i], reference.first[i]) << "epoch " << i;
  }
  ASSERT_EQ(batched.second.size(), reference.second.size());
  for (size_t i = 0; i < batched.second.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(batched.second[i], reference.second[i]))
        << "parameter " << i;
  }
}

// Same property with the retention loss active: the batched path routes
// each sample's distillation term through a row slice of the shared
// candidate gather, which must merge gradients in the per-sample order.
TEST(TrainerTest, BatchedPathBitwiseIdenticalAtBatchSizeOneWithTeacher) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  auto run = [&](bool batched) {
    models::MsrModel model(
        SmallModelConfig(models::ExtractorKind::kComiRecDr),
        dataset.num_items(), 9);
    InterestStore store;
    TrainConfig config = SmallTrainConfig();
    config.batch_size = 1;
    config.batched = batched;
    ImsrTrainer trainer(&model, &store, config);
    trainer.EnsureUserState(dataset, 0);
    const TeacherSnapshot teacher = trainer.SnapshotTeacher(dataset, 0);
    const std::vector<data::TrainingSample> samples =
        data::BuildSpanSamples(dataset, 0, config.max_history);
    const double loss = trainer.TrainEpoch(samples, &teacher);
    return std::make_pair(
        loss, nn::Tensor(model.embeddings().parameter().value()));
  };
  const auto batched = run(true);
  const auto reference = run(false);
  EXPECT_EQ(batched.first, reference.first);
  EXPECT_TRUE(BitwiseEqual(batched.second, reference.second));
}

// For larger batches the fused node's ascending-sample sum reproduces the
// per-sample path's left-fold Add chain over identical per-sample values.
TEST(TrainerTest, BatchLossSumsPerSampleLosses) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  constexpr size_t kBatch = 16;
  auto make = [&](auto&& body) {
    models::MsrModel model(
        SmallModelConfig(models::ExtractorKind::kComiRecDr),
        dataset.num_items(), 9);
    InterestStore store;
    ImsrTrainer trainer(&model, &store, SmallTrainConfig());
    trainer.EnsureUserState(dataset, 0);
    const std::vector<data::TrainingSample> samples =
        data::BuildSpanSamples(dataset, 0,
                               trainer.config().max_history);
    return body(trainer, samples);
  };
  const float fused = make([&](ImsrTrainer& trainer,
                               const std::vector<data::TrainingSample>&
                                   samples) {
    std::vector<size_t> indices(kBatch);
    std::iota(indices.begin(), indices.end(), 0);
    return trainer.BatchLoss(samples, indices.data(), kBatch, nullptr)
        .value()
        .item();
  });
  const float summed = make([&](ImsrTrainer& trainer,
                                const std::vector<data::TrainingSample>&
                                    samples) {
    float total = 0.0f;
    for (size_t i = 0; i < kBatch; ++i) {
      total += trainer.SampleLoss(samples[i], nullptr).value().item();
    }
    return total;
  });
  EXPECT_FLOAT_EQ(fused, summed);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  auto run = [&] {
    models::MsrModel model(
        SmallModelConfig(models::ExtractorKind::kComiRecDr),
        dataset.num_items(), 11);
    InterestStore store;
    ImsrTrainer trainer(&model, &store, SmallTrainConfig());
    trainer.Pretrain(dataset);
    trainer.TrainSpan(dataset, 1);
    return store.Interests(dataset.active_users(1)[0]);
  };
  EXPECT_LT(nn::MaxAbsDiff(run(), run()), 1e-12f);
}

}  // namespace
}  // namespace imsr::core
