#!/bin/sh
# End-to-end test of the imsr_cli workflow: generate -> stats -> pretrain
# -> train-span (with observability exports) -> evaluate -> recommend,
# plus failure-path assertions (bad flag values, bad spans, unknown
# subcommands must exit non-zero with a message on stderr).
#
# Note on exit codes: every happy-path invocation is captured into a
# variable first and grepped afterwards — `cli | grep` would report grep's
# status and mask a CLI failure.
set -e

CLI="$1"
# "obs" (default) or "noobs": whether the binary carries obs
# instrumentation (-DIMSR_OBS). Export assertions only apply with obs.
OBS_MODE="${2:-obs}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

LOG="$WORKDIR/log.csv"
CKPT="$WORKDIR/ckpt.bin"
METRICS="$WORKDIR/metrics.json"
METRICS_CSV="$WORKDIR/metrics.csv"
TRACE="$WORKDIR/trace.json"

fail() {
  echo "cli_test: $1" >&2
  exit 1
}

# --- happy path ------------------------------------------------------------

"$CLI" generate --preset=electronics --scale=0.12 --out="$LOG" >/dev/null
test -s "$LOG"

OUT=$("$CLI" stats --log="$LOG" --min_interactions=5)
echo "$OUT" | grep -q "users (kept)" || fail "stats output missing table"

"$CLI" pretrain --log="$LOG" --min_interactions=5 --checkpoint="$CKPT" \
    --pretrain_epochs=2 >/dev/null
test -s "$CKPT"

# train-span with the obs flags: metrics JSON + CSV + chrome trace.
OUT=$("$CLI" train-span --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --span=1 --epochs=1 \
    --metrics_out="$METRICS" --trace_out="$TRACE")
echo "$OUT" | grep -q "trained span 1" || fail "train-span output missing"

if [ "$OBS_MODE" = "obs" ]; then
  # The exit summary table lists the recorded metrics.
  echo "$OUT" | grep -q "trainer/span_loss" || fail "summary missing span loss"

  test -s "$METRICS" || fail "metrics_out not written"
  test -s "$TRACE" || fail "trace_out not written"
  test ! -e "$METRICS.tmp" || fail "stale metrics tmp file"
  test ! -e "$TRACE.tmp" || fail "stale trace tmp file"
  # Exported metrics contain the expected series with non-zero counts.
  grep -Eq '\{"name":"trainer/steps","value":[1-9][0-9]*\}' "$METRICS" \
      || fail "metrics missing non-zero trainer/steps"
  grep -q '"name":"trainer/span_loss"' "$METRICS" \
      || fail "metrics missing trainer/span_loss"
  grep -q '"name":"nid/puzzlement"' "$METRICS" \
      || fail "metrics missing nid/puzzlement"
  grep -q '"name":"pit/interests_trimmed"' "$METRICS" \
      || fail "metrics missing pit/interests_trimmed"
  # Chrome trace-event format with recorded spans.
  grep -q '"traceEvents"' "$TRACE" || fail "trace missing traceEvents"
  grep -q '"ph":"X"' "$TRACE" || fail "trace missing complete events"
  grep -q '"name":"trainer/span"' "$TRACE" \
      || fail "trace missing trainer span"
fi

# CSV metrics variant on evaluate.
OUT=$("$CLI" evaluate --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --test_span=2 --metrics_out="$METRICS_CSV")
echo "$OUT" | grep -q "HR@20" || fail "evaluate output missing metrics"
if [ "$OBS_MODE" = "obs" ]; then
  head -1 "$METRICS_CSV" | grep -q "^kind,name,value" \
      || fail "metrics CSV missing header"
  grep -q "^counter,eval/users_ranked," "$METRICS_CSV" \
      || fail "metrics CSV missing eval counters"
fi

OUT=$("$CLI" recommend --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --user=0 --top_n=5)
echo "$OUT" | grep -q "item" || fail "recommend output missing items"

# Batch serving mode: requests file -> published snapshot -> top-N CSV.
REQS="$WORKDIR/requests.txt"
TOPN="$WORKDIR/topn.csv"
SERVE_METRICS="$WORKDIR/serve_metrics.csv"
{
  echo "# user[,top_n] - one request per line"
  echo "0,3"
  echo ""
  echo "1"
  echo "2,5"
} > "$REQS"
OUT=$("$CLI" recommend --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --recommend_requests="$REQS" \
    --recommend_out="$TOPN" --top_n=4 --metrics_out="$SERVE_METRICS")
echo "$OUT" | grep -q "served 3 requests" || fail "batch recommend summary missing"
echo "$OUT" | grep -q "from snapshot v1" || fail "batch recommend snapshot version missing"
head -1 "$TOPN" | grep -q "^user,rank,item,score" \
    || fail "batch recommend CSV missing header"
grep -q "^0,1," "$TOPN" || fail "batch recommend CSV missing user 0 rank 1"
# User 1 gave no top_n: the --top_n=4 default applies.
test "$(grep -c '^1,' "$TOPN")" -eq 4 || fail "default top_n not applied"
if [ "$OBS_MODE" = "obs" ]; then
  grep -q "^counter,serve/requests," "$SERVE_METRICS" \
      || fail "metrics missing serve/requests"
  grep -q "^counter,serve/publishes," "$SERVE_METRICS" \
      || fail "metrics missing serve/publishes"
fi

# Streaming: replay the post-pretrain events through the prequential
# loop from the span-1 checkpoint; the curve and summary must land.
CURVE="$WORKDIR/curve.csv"
SUMMARY="$WORKDIR/summary.json"
STREAM_METRICS="$WORKDIR/stream_metrics.csv"
OUT=$("$CLI" stream --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --publish_every=50 --window=100 \
    --max_events=300 --curve_out="$CURVE" --summary_out="$SUMMARY" \
    --metrics_out="$STREAM_METRICS")
echo "$OUT" | grep -q "streamed 300 events" || fail "stream summary missing"
echo "$OUT" | grep -Eq "snapshot v[1-9]" || fail "stream published nothing"
head -1 "$CURVE" | grep -q "^last_sequence,scored,window_recall" \
    || fail "stream curve CSV missing header"
test "$(wc -l < "$CURVE")" -gt 1 || fail "stream curve has no points"
grep -q '"publishes":' "$SUMMARY" || fail "stream summary missing publishes"
grep -q '"events_per_sec":' "$SUMMARY" \
    || fail "stream summary missing events_per_sec"
if [ "$OBS_MODE" = "obs" ]; then
  grep -q "^counter,stream/events_scored," "$STREAM_METRICS" \
      || fail "metrics missing stream/events_scored"
  grep -q "^counter,stream/publishes," "$STREAM_METRICS" \
      || fail "metrics missing stream/publishes"
  grep -q "^histogram,stream/publish_latency_ms," "$STREAM_METRICS" \
      || fail "metrics missing stream/publish_latency_ms"
fi

# FT mode shares the pipeline; a bad mode is a usage error.
OUT=$("$CLI" stream --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --mode=ft --publish_every=50 --max_events=120)
echo "$OUT" | grep -q "streamed 120 events" || fail "ft stream missing"

# --- IVF retrieval ---------------------------------------------------------

# evaluate under IVF: same protocol, ranks from the index's top-N, and
# per-search accounting on stdout.
IVF_METRICS="$WORKDIR/ivf_metrics.csv"
OUT=$("$CLI" evaluate --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --test_span=2 --retrieval=ivf \
    --metrics_out="$IVF_METRICS")
echo "$OUT" | grep -q "HR@20" || fail "ivf evaluate output missing metrics"
echo "$OUT" | grep -q "ivf: " || fail "ivf evaluate missing search stats"
echo "$OUT" | grep -q "mean shortlist" \
    || fail "ivf evaluate missing shortlist stat"
if [ "$OBS_MODE" = "obs" ]; then
  grep -q "^counter,serve/index_builds," "$IVF_METRICS" \
      || fail "metrics missing serve/index_builds"
  grep -q "^histogram,serve/index_build_ms," "$IVF_METRICS" \
      || fail "metrics missing serve/index_build_ms"
  grep -q "^histogram,serve/ivf_shortlist," "$IVF_METRICS" \
      || fail "metrics missing serve/ivf_shortlist"
fi

# Explicit --nprobe widens the probe; still a clean run.
OUT=$("$CLI" evaluate --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --test_span=2 --retrieval=ivf --nprobe=4)
echo "$OUT" | grep -q "ivf: " || fail "ivf evaluate with nprobe missing stats"

# recommend (single-user and batch) under IVF.
OUT=$("$CLI" recommend --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --user=0 --top_n=5 --retrieval=ivf)
echo "$OUT" | grep -q "item" || fail "ivf recommend output missing items"
IVF_TOPN="$WORKDIR/ivf_topn.csv"
OUT=$("$CLI" recommend --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --recommend_requests="$REQS" \
    --recommend_out="$IVF_TOPN" --top_n=4 --retrieval=ivf)
echo "$OUT" | grep -q "served 3 requests" || fail "ivf batch summary missing"
head -1 "$IVF_TOPN" | grep -q "^user,rank,item,score" \
    || fail "ivf batch CSV missing header"

# stream under IVF: the summary JSON carries the retrieval mode, the
# per-publish index builds and the probe/shortlist totals.
IVF_SUMMARY="$WORKDIR/ivf_summary.json"
OUT=$("$CLI" stream --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --publish_every=50 --window=100 \
    --max_events=200 --retrieval=ivf --summary_out="$IVF_SUMMARY")
echo "$OUT" | grep -q "streamed 200 events" || fail "ivf stream missing"
grep -q '"retrieval": "ivf"' "$IVF_SUMMARY" \
    || fail "ivf stream summary missing retrieval mode"
grep -Eq '"index_builds": [1-9][0-9]*' "$IVF_SUMMARY" \
    || fail "ivf stream summary missing index_builds"
grep -Eq '"ivf_searches": [1-9][0-9]*' "$IVF_SUMMARY" \
    || fail "ivf stream summary missing ivf_searches"
grep -Eq '"ivf_probes": [1-9][0-9]*' "$IVF_SUMMARY" \
    || fail "ivf stream summary missing ivf_probes"
grep -Eq '"ivf_shortlist": [1-9][0-9]*' "$IVF_SUMMARY" \
    || fail "ivf stream summary missing ivf_shortlist"

# Exact mode still reports zero IVF work in the summary.
EXACT_SUMMARY="$WORKDIR/exact_summary.json"
OUT=$("$CLI" stream --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --publish_every=50 --max_events=120 \
    --retrieval=exact --summary_out="$EXACT_SUMMARY")
echo "$OUT" | grep -q "streamed 120 events" || fail "exact stream missing"
grep -q '"retrieval": "exact"' "$EXACT_SUMMARY" \
    || fail "exact stream summary missing retrieval mode"
grep -q '"ivf_searches": 0' "$EXACT_SUMMARY" \
    || fail "exact stream summary should report zero searches"

# --- failure paths ---------------------------------------------------------

# Missing inputs exit non-zero.
if "$CLI" evaluate --log=/nonexistent.csv --checkpoint="$CKPT" \
    2>/dev/null; then
  fail "expected failure on missing log"
fi
if "$CLI" bogus-subcommand 2>/dev/null; then
  fail "expected failure on unknown subcommand"
fi

# Strict flag parsing: a non-numeric value must exit non-zero AND say why.
ERR="$WORKDIR/stderr.txt"
if "$CLI" train-span --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --span=1 --epochs=abc >/dev/null 2>"$ERR"; then
  fail "expected failure on --epochs=abc"
fi
grep -q "expects an integer" "$ERR" || fail "bad int flag missing message"

if "$CLI" evaluate --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --alpha=half >/dev/null 2>"$ERR"; then
  fail "expected failure on --alpha=half"
fi
grep -q "expects a number" "$ERR" || fail "bad double flag missing message"

# Positional (non --name=value) arguments are rejected.
if "$CLI" stats "$LOG" >/dev/null 2>"$ERR"; then
  fail "expected failure on positional argument"
fi
grep -q "expected --name=value" "$ERR" || fail "positional arg missing message"

# A malformed request line is a usage error naming the file and line.
BADREQS="$WORKDIR/bad_requests.txt"
printf '0,3\nnot-a-user\n' > "$BADREQS"
if "$CLI" recommend --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --recommend_requests="$BADREQS" \
    --recommend_out="$TOPN" >/dev/null 2>"$ERR"; then
  fail "expected failure on malformed request line"
fi
grep -q "malformed request 'not-a-user'" "$ERR" \
    || fail "malformed request missing message"
grep -q ":2:" "$ERR" || fail "malformed request missing line number"

# A --model typo lists the valid names instead of aborting.
if "$CLI" pretrain --log="$LOG" --min_interactions=5 \
    --checkpoint="$WORKDIR/typo.bin" --model=cosmic \
    >/dev/null 2>"$ERR"; then
  fail "expected failure on --model typo"
fi
grep -q "unknown extractor kind 'cosmic'" "$ERR" \
    || fail "model typo missing message"
grep -q "MIND" "$ERR" || fail "model typo missing valid names"

# An unknown stream mode is a usage error.
if "$CLI" stream --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --mode=bogus >/dev/null 2>"$ERR"; then
  fail "expected failure on bad stream mode"
fi
grep -q -- "--mode must be" "$ERR" || fail "bad stream mode missing message"

# An unknown retrieval mode is a usage error naming the valid modes.
if "$CLI" evaluate --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --test_span=2 \
    --retrieval=bogus >/dev/null 2>"$ERR"; then
  fail "expected failure on bad retrieval mode"
fi
grep -q "unknown retrieval mode 'bogus'" "$ERR" \
    || fail "bad retrieval missing message"
grep -q "exact, ivf" "$ERR" || fail "bad retrieval missing valid names"

# --nprobe must be a positive probe count.
if "$CLI" evaluate --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --test_span=2 --retrieval=ivf \
    --nprobe=0 >/dev/null 2>"$ERR"; then
  fail "expected failure on nprobe=0"
fi
grep -q -- "--nprobe must be >= 1" "$ERR" || fail "bad nprobe missing message"

# The guard applies on stream too, before any work starts.
if "$CLI" stream --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --retrieval=cosine >/dev/null 2>"$ERR"; then
  fail "expected failure on bad stream retrieval"
fi
grep -q "unknown retrieval mode 'cosine'" "$ERR" \
    || fail "bad stream retrieval missing message"

# Out-of-range span exits non-zero with a range message.
if "$CLI" train-span --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --span=99 >/dev/null 2>"$ERR"; then
  fail "expected failure on out-of-range span"
fi
grep -q -- "--span must be in" "$ERR" || fail "bad span missing message"

# A failing subcommand must not have clobbered the checkpoint.
test -s "$CKPT" || fail "checkpoint lost after failed invocations"

echo "cli_test OK"
