#!/bin/sh
# End-to-end test of the imsr_cli workflow: generate -> stats -> pretrain
# -> train-span -> evaluate -> recommend. First argument: path to the
# imsr_cli binary.
set -e

CLI="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

LOG="$WORKDIR/log.csv"
CKPT="$WORKDIR/ckpt.bin"

"$CLI" generate --preset=electronics --scale=0.12 --out="$LOG" >/dev/null
test -s "$LOG"

"$CLI" stats --log="$LOG" --min_interactions=5 | grep -q "users (kept)"

"$CLI" pretrain --log="$LOG" --min_interactions=5 --checkpoint="$CKPT" \
    --pretrain_epochs=2 >/dev/null
test -s "$CKPT"

"$CLI" train-span --log="$LOG" --min_interactions=5 \
    --checkpoint="$CKPT" --span=1 --epochs=1 | grep -q "trained span 1"

"$CLI" evaluate --log="$LOG" --min_interactions=5 --checkpoint="$CKPT" \
    --test_span=2 | grep -q "HR@20"

"$CLI" recommend --log="$LOG" --min_interactions=5 --checkpoint="$CKPT" \
    --user=0 --top_n=5 | grep -q "item"

# Error paths exit non-zero.
if "$CLI" evaluate --log=/nonexistent.csv --checkpoint="$CKPT" \
    2>/dev/null; then
  echo "expected failure on missing log" >&2
  exit 1
fi
if "$CLI" bogus-subcommand 2>/dev/null; then
  echo "expected failure on unknown subcommand" >&2
  exit 1
fi

echo "cli_test OK"
