// Tests for the evaluation harness: metrics, ranker and per-span driver.
#include <gtest/gtest.h>

#include <cmath>
#include "core/interest_store.h"
#include "data/dataset.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/ranker.h"

namespace imsr::eval {
namespace {

TEST(MetricsTest, NdcgAtRankValues) {
  EXPECT_DOUBLE_EQ(NdcgAtRank(1, 20), 1.0);
  EXPECT_NEAR(NdcgAtRank(2, 20), 1.0 / std::log2(3.0), 1e-12);
  EXPECT_EQ(NdcgAtRank(21, 20), 0.0);
}

TEST(MetricsTest, AccumulatorAggregates) {
  MetricsAccumulator accumulator(2);
  accumulator.AddRank(1);   // hit, ndcg 1
  accumulator.AddRank(2);   // hit, ndcg 1/log2(3)
  accumulator.AddRank(10);  // miss
  const TopNMetrics metrics = accumulator.Finalize();
  EXPECT_EQ(metrics.users, 3);
  EXPECT_NEAR(metrics.hit_ratio, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics.ndcg, (1.0 + 1.0 / std::log2(3.0)) / 3.0, 1e-12);
}

TEST(MetricsTest, EmptyAccumulator) {
  MetricsAccumulator accumulator(20);
  const TopNMetrics metrics = accumulator.Finalize();
  EXPECT_EQ(metrics.users, 0);
  EXPECT_EQ(metrics.hit_ratio, 0.0);
}

// A fixture with items on coordinate axes and interests aligned to them.
struct RankerFixture {
  RankerFixture() : items({4, 4}), interests({2, 4}) {
    // Item i has embedding e_i = unit vector along axis i (scaled).
    for (int64_t i = 0; i < 4; ++i) items.at(i, i) = 1.0f + 0.1f * i;
    interests.at(0, 0) = 1.0f;  // interest 0 -> item 0
    interests.at(1, 2) = 1.0f;  // interest 1 -> item 2
  }
  nn::Tensor items;
  nn::Tensor interests;
};

TEST(RankerTest, ScoresFavourAlignedItems) {
  RankerFixture f;
  const std::vector<float> scores =
      ScoreAllItems(f.interests, f.items, ScoreRule::kMaxInterest);
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_GT(scores[2], scores[3]);
  EXPECT_GT(scores[2], scores[1]);
}

TEST(RankerTest, AttentiveAndMaxAgreeOnClearWinner) {
  RankerFixture f;
  const std::vector<float> attentive =
      ScoreAllItems(f.interests, f.items, ScoreRule::kAttentive);
  const std::vector<float> maxed =
      ScoreAllItems(f.interests, f.items, ScoreRule::kMaxInterest);
  // Item 2 (aligned, higher norm) wins under both rules.
  for (int64_t i = 0; i < 4; ++i) {
    if (i == 2) continue;
    EXPECT_GT(attentive[2], attentive[i]);
    EXPECT_GT(maxed[2], maxed[i]);
  }
}

TEST(RankerTest, TargetRankConsistentWithScores) {
  RankerFixture f;
  EXPECT_EQ(TargetRank(f.interests, f.items, 2, ScoreRule::kMaxInterest),
            1);
  // Item 1 is orthogonal to both interests: ranks behind 0 and 2.
  const int64_t rank1 =
      TargetRank(f.interests, f.items, 1, ScoreRule::kMaxInterest);
  EXPECT_GE(rank1, 3);
}

TEST(RankerTest, TopNItemsOrderedAndSized) {
  RankerFixture f;
  const auto top = TopNItems(f.interests, f.items, 3,
                             ScoreRule::kMaxInterest);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 2);
  EXPECT_GE(top[0].second, top[1].second);
  EXPECT_GE(top[1].second, top[2].second);
}

TEST(RankerTest, TopNClampsToCorpus) {
  RankerFixture f;
  EXPECT_EQ(TopNItems(f.interests, f.items, 100,
                      ScoreRule::kAttentive).size(),
            4u);
}

// ---- EvaluateSpan over a handcrafted dataset ----

data::Dataset MakeEvalDataset() {
  // 2 users, 4 items; pretrain [0,50), span1 [50,75), span2 [75,100).
  std::vector<data::Interaction> log = {
      {0, 0, 10}, {0, 1, 20}, {0, 2, 30},  // user 0 pretrain
      {0, 0, 55}, {0, 1, 60},              // user 0 span 1
      {0, 2, 80}, {0, 0, 95},              // user 0 span 2, test item 0
      {1, 3, 15}, {1, 2, 25}, {1, 3, 35},  // user 1 pretrain
      {1, 3, 85}, {1, 3, 90},              // user 1 span 2, test item 3
  };
  return data::Dataset(2, 4, log, 2, 0.5, 1);
}

TEST(EvaluatorTest, EvaluatesUsersWithInterestsAndTestItems) {
  const data::Dataset dataset = MakeEvalDataset();
  core::InterestStore store;
  util::Rng rng(1);
  // User 0's interest points at item 0's axis; user 1 absent from store.
  store.Initialize(0, 1, 4, 0, rng);
  nn::Tensor interest({1, 4});
  interest.at(0, 0) = 1.0f;
  store.SetInterests(0, interest);

  nn::Tensor items({4, 4});
  for (int64_t i = 0; i < 4; ++i) items.at(i, i) = 1.0f;

  EvalConfig config;
  config.top_n = 1;
  config.rule = ScoreRule::kMaxInterest;
  const EvalResult result =
      EvaluateSpan(items, store, dataset, /*test_span=*/2, config);
  // Only user 0 evaluable (store has no user 1); target item 0 ranks 1st.
  EXPECT_EQ(result.metrics.users, 1);
  EXPECT_DOUBLE_EQ(result.metrics.hit_ratio, 1.0);
  EXPECT_DOUBLE_EQ(result.metrics.ndcg, 1.0);
}

TEST(EvaluatorTest, ItemFilterSplitsExistingAndNew) {
  const data::Dataset dataset = MakeEvalDataset();
  core::InterestStore store;
  util::Rng rng(2);
  store.Initialize(0, 1, 4, 0, rng);
  store.Initialize(1, 1, 4, 0, rng);

  nn::Tensor items({4, 4});
  for (int64_t i = 0; i < 4; ++i) items.at(i, i) = 1.0f;

  EvalConfig config;
  config.top_n = 4;
  // User 0's span-2 test item 0 appeared before span 2 -> "existing".
  // User 1's span-2 test item 3 also appeared in pretrain -> "existing".
  const EvalResult existing =
      EvaluateSpan(items, store, dataset, 2, config,
                   ItemFilter::kExistingOnly, /*history_span=*/1);
  const EvalResult fresh =
      EvaluateSpan(items, store, dataset, 2, config, ItemFilter::kNewOnly,
                   /*history_span=*/1);
  EXPECT_EQ(existing.metrics.users + fresh.metrics.users, 2);
  EXPECT_EQ(existing.metrics.users, 2);
}

TEST(EvaluatorTest, PerfectInterestsBeatRandomOnes) {
  const data::Dataset dataset = MakeEvalDataset();
  nn::Tensor items({4, 4});
  for (int64_t i = 0; i < 4; ++i) items.at(i, i) = 1.0f;

  util::Rng rng(3);
  core::InterestStore oracle;
  oracle.Initialize(0, 1, 4, 0, rng);
  oracle.Initialize(1, 1, 4, 0, rng);
  nn::Tensor i0({1, 4});
  i0.at(0, 0) = 1.0f;
  oracle.SetInterests(0, i0);
  nn::Tensor i1({1, 4});
  i1.at(0, 3) = 1.0f;
  oracle.SetInterests(1, i1);

  core::InterestStore adversary;
  adversary.Initialize(0, 1, 4, 0, rng);
  adversary.Initialize(1, 1, 4, 0, rng);
  nn::Tensor wrong({1, 4});
  wrong.at(0, 1) = 1.0f;  // neither user's test item
  adversary.SetInterests(0, wrong);
  adversary.SetInterests(1, wrong);

  EvalConfig config;
  config.top_n = 1;
  const double hr_oracle =
      EvaluateSpan(items, oracle, dataset, 2, config).metrics.hit_ratio;
  const double hr_adversary =
      EvaluateSpan(items, adversary, dataset, 2, config)
          .metrics.hit_ratio;
  EXPECT_EQ(hr_oracle, 1.0);
  EXPECT_EQ(hr_adversary, 0.0);
}

TEST(SlidingWindowTest, EmptyWindowReportsZerosWithCountZero) {
  SlidingWindowAccumulator window(/*top_n=*/10, /*window=*/4);
  const WindowMetrics metrics = window.Current();
  EXPECT_EQ(metrics.count, 0);
  EXPECT_EQ(metrics.hit_ratio, 0.0);
  EXPECT_EQ(metrics.ndcg, 0.0);
  EXPECT_EQ(window.total(), 0);
}

TEST(SlidingWindowTest, FillPhaseAveragesOverCountNotCapacity) {
  SlidingWindowAccumulator window(/*top_n=*/2, /*window=*/8);
  window.AddRank(1);  // hit, ndcg 1
  window.AddRank(5);  // miss
  const WindowMetrics metrics = window.Current();
  EXPECT_EQ(metrics.count, 2);
  EXPECT_NEAR(metrics.hit_ratio, 0.5, 1e-12);
  EXPECT_NEAR(metrics.ndcg, NdcgAtRank(1, 2) / 2.0, 1e-12);
}

TEST(SlidingWindowTest, EvictionDropsOldestContribution) {
  SlidingWindowAccumulator window(/*top_n=*/1, /*window=*/2);
  window.AddRank(1);  // hit — will be evicted
  window.AddRank(9);  // miss
  window.AddRank(9);  // miss; evicts the hit
  const WindowMetrics metrics = window.Current();
  EXPECT_EQ(metrics.count, 2);
  EXPECT_EQ(metrics.hit_ratio, 0.0);
  EXPECT_EQ(metrics.ndcg, 0.0);
  EXPECT_EQ(window.total(), 3);

  window.AddRank(1);  // evicts a miss
  EXPECT_NEAR(window.Current().hit_ratio, 0.5, 1e-12);
}

TEST(SlidingWindowTest, MatchesBatchAccumulatorOverLastWindowEvents) {
  const int64_t kWindow = 5;
  SlidingWindowAccumulator window(/*top_n=*/3, kWindow);
  const std::vector<int64_t> ranks = {7, 1, 3, 2, 9, 4, 1, 8, 2, 6, 3};
  for (int64_t rank : ranks) window.AddRank(rank);
  MetricsAccumulator batch(/*top_n=*/3);
  for (size_t i = ranks.size() - kWindow; i < ranks.size(); ++i) {
    batch.AddRank(ranks[i]);
  }
  const WindowMetrics windowed = window.Current();
  const TopNMetrics reference = batch.Finalize();
  EXPECT_EQ(windowed.count, kWindow);
  EXPECT_NEAR(windowed.hit_ratio, reference.hit_ratio, 1e-12);
  EXPECT_NEAR(windowed.ndcg, reference.ndcg, 1e-12);
}

TEST(SlidingWindowTest, TopNBoundaryRankCountsAsHit) {
  SlidingWindowAccumulator window(/*top_n=*/4, /*window=*/4);
  window.AddRank(4);  // exactly at the cut-off
  window.AddRank(5);  // just outside
  const WindowMetrics metrics = window.Current();
  EXPECT_NEAR(metrics.hit_ratio, 0.5, 1e-12);
  EXPECT_NEAR(metrics.ndcg, NdcgAtRank(4, 4) / 2.0, 1e-12);
}

}  // namespace
}  // namespace imsr::eval
