// Tests for the serving subsystem: ServingSnapshot packing/lookup,
// snapshot-vs-live-model bitwise evaluation equivalence (every ScoreRule
// x ItemFilter combination, across thread counts), the SnapshotRegistry's
// atomic publish (including publish-while-reading stress), the batch
// Recommend API, and the trainer's publish points.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/imsr_trainer.h"
#include "core/interest_store.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/msr_model.h"
#include "serve/recommend.h"
#include "serve/registry.h"
#include "serve/snapshot.h"

namespace imsr::serve {
namespace {

// 2 users, 4 items; pretrain [0,50), span1 [50,75), span2 [75,100).
data::Dataset MakeEvalDataset() {
  std::vector<data::Interaction> log = {
      {0, 0, 10}, {0, 1, 20}, {0, 2, 30},  // user 0 pretrain
      {0, 0, 55}, {0, 1, 60},              // user 0 span 1
      {0, 2, 80}, {0, 0, 95},              // user 0 span 2, test item 0
      {1, 3, 15}, {1, 2, 25}, {1, 3, 35},  // user 1 pretrain
      {1, 3, 85}, {1, 3, 90},              // user 1 span 2, test item 3
  };
  return data::Dataset(2, 4, log, 2, 0.5, 1);
}

// A store whose users have different interest counts (user 0: K=2,
// user 2: K=3, user 5: K=1) so the packed layout is non-trivial.
core::InterestStore MakeStore(int64_t dim, uint64_t seed) {
  core::InterestStore store;
  util::Rng rng(seed);
  store.Initialize(0, 2, dim, 0, rng);
  store.Initialize(2, 3, dim, 0, rng);
  store.Initialize(5, 1, dim, 0, rng);
  return store;
}

TEST(PackedInterestsTest, LayoutMatchesStore) {
  core::InterestStore store = MakeStore(/*dim=*/4, /*seed=*/11);
  const core::PackedInterests packed = store.ExportPacked();
  ASSERT_EQ(packed.users.size(), 3u);
  EXPECT_EQ(packed.users, (std::vector<data::UserId>{0, 2, 5}));
  EXPECT_EQ(packed.counts, (std::vector<int32_t>{2, 3, 1}));
  EXPECT_EQ(packed.row_begin, (std::vector<int64_t>{0, 2, 5}));
  EXPECT_EQ(packed.dim, 4);
  ASSERT_EQ(packed.data.size(), 6u * 4u);
  // Every user's rows are a verbatim copy of the store tensor.
  for (size_t u = 0; u < packed.users.size(); ++u) {
    const nn::Tensor& interests = store.Interests(packed.users[u]);
    const float* rows =
        packed.data.data() + packed.row_begin[u] * packed.dim;
    for (int64_t i = 0; i < interests.numel(); ++i) {
      EXPECT_EQ(rows[i], interests.data()[i]);
    }
  }
}

TEST(ServingSnapshotTest, LookupsMatchStore) {
  core::InterestStore store = MakeStore(/*dim=*/4, /*seed=*/12);
  util::Rng rng(3);
  ServingSnapshot snapshot(nn::Tensor::Randn({8, 4}, rng),
                           store.ExportPacked(),
                           /*trained_through_span=*/3);
  EXPECT_EQ(snapshot.num_items(), 8);
  EXPECT_EQ(snapshot.dim(), 4);
  EXPECT_EQ(snapshot.num_users(), 3);
  EXPECT_EQ(snapshot.trained_through_span(), 3);
  EXPECT_EQ(snapshot.version(), 0u);  // unpublished
  EXPECT_GT(snapshot.bytes(), 0);

  EXPECT_TRUE(snapshot.HasUser(0));
  EXPECT_FALSE(snapshot.HasUser(1));
  EXPECT_TRUE(snapshot.HasUser(2));
  EXPECT_FALSE(snapshot.HasUser(4));
  EXPECT_TRUE(snapshot.HasUser(5));
  EXPECT_FALSE(snapshot.HasUser(6));    // past the dense index
  EXPECT_FALSE(snapshot.HasUser(-1));
  EXPECT_EQ(snapshot.NumInterests(2), 3);
  EXPECT_EQ(snapshot.NumInterests(1), 0);

  for (data::UserId user : snapshot.Users()) {
    const nn::ConstMatrixView view = snapshot.Interests(user);
    const nn::Tensor& expected = store.Interests(user);
    ASSERT_EQ(view.rows, expected.size(0));
    ASSERT_EQ(view.cols, expected.size(1));
    for (int64_t i = 0; i < expected.numel(); ++i) {
      EXPECT_EQ(view.data[i], expected.data()[i]);
    }
  }
}

// The acceptance bar of the refactor: for every ScoreRule x ItemFilter
// combination and several thread counts, evaluating over a published
// snapshot reproduces the live-model metrics *bitwise* (EXPECT_EQ on the
// doubles, no tolerance).
TEST(ServingSnapshotTest, EvaluationBitwiseMatchesLiveModel) {
  const data::Dataset dataset = MakeEvalDataset();
  models::ModelConfig model_config;
  model_config.embedding_dim = 8;
  models::MsrModel model(model_config, dataset.num_items(), /*seed=*/21);
  core::InterestStore store;
  util::Rng rng(9);
  store.Initialize(0, 2, 8, 0, rng);
  store.Initialize(1, 3, 8, 0, rng);

  SnapshotRegistry registry;
  registry.Publish(BuildSnapshot(model, store, /*span=*/1));
  const std::shared_ptr<const ServingSnapshot> snapshot =
      registry.Current();
  ASSERT_NE(snapshot, nullptr);

  const nn::Tensor& live_embeddings =
      model.embeddings().parameter().value();
  for (eval::ScoreRule rule :
       {eval::ScoreRule::kAttentive, eval::ScoreRule::kMaxInterest}) {
    for (eval::ItemFilter filter :
         {eval::ItemFilter::kAll, eval::ItemFilter::kExistingOnly,
          eval::ItemFilter::kNewOnly}) {
      for (int threads : {1, 2, 4}) {
        eval::EvalConfig config;
        config.top_n = 2;
        config.rule = rule;
        config.threads = threads;
        const int history_span =
            filter == eval::ItemFilter::kAll ? -1 : 1;
        const eval::EvalResult live =
            eval::EvaluateSpan(live_embeddings, store, dataset, /*test_span=*/2,
                         config, filter, history_span);
        const eval::EvalResult served =
            eval::EvaluateSpan(*snapshot, dataset, /*test_span=*/2, config,
                         filter, history_span);
        EXPECT_EQ(live.metrics.users, served.metrics.users);
        EXPECT_EQ(live.metrics.hit_ratio, served.metrics.hit_ratio);
        EXPECT_EQ(live.metrics.ndcg, served.metrics.ndcg);
      }
    }
  }
}

// A snapshot is a deep copy: training mutations after the publish must
// not leak into already-published state.
TEST(ServingSnapshotTest, PublishedStateIsFrozen) {
  core::InterestStore store = MakeStore(/*dim=*/4, /*seed=*/13);
  models::ModelConfig model_config;
  model_config.embedding_dim = 4;
  models::MsrModel model(model_config, /*num_items=*/6, /*seed=*/1);

  SnapshotRegistry registry;
  registry.Publish(BuildSnapshot(model, store, /*span=*/0));
  const std::shared_ptr<const ServingSnapshot> snapshot =
      registry.Current();
  const float frozen_embedding = snapshot->item_embeddings().at(0, 0);
  const float frozen_interest = snapshot->Interests(0).data[0];

  // Mutate the live objects the way training would.
  model.embeddings().parameter().mutable_value().at(0, 0) =
      frozen_embedding + 42.0f;
  nn::Tensor mutated = store.Interests(0).Clone();
  mutated.at(0, 0) = frozen_interest + 42.0f;
  store.SetInterests(0, std::move(mutated));

  EXPECT_EQ(snapshot->item_embeddings().at(0, 0), frozen_embedding);
  EXPECT_EQ(snapshot->Interests(0).data[0], frozen_interest);
}

TEST(SnapshotRegistryTest, PublishStampsMonotonicVersions) {
  core::InterestStore store = MakeStore(/*dim=*/4, /*seed=*/14);
  models::ModelConfig model_config;
  model_config.embedding_dim = 4;
  models::MsrModel model(model_config, /*num_items=*/6, /*seed=*/1);

  SnapshotRegistry registry;
  EXPECT_EQ(registry.Current(), nullptr);
  EXPECT_EQ(registry.versions_published(), 0u);
  registry.Publish(BuildSnapshot(model, store, 0));
  EXPECT_EQ(registry.Current()->version(), 1u);
  registry.Publish(BuildSnapshot(model, store, 1));
  EXPECT_EQ(registry.Current()->version(), 2u);
  EXPECT_EQ(registry.Current()->trained_through_span(), 1);
  EXPECT_EQ(registry.versions_published(), 2u);
}

// The timed-republish fast path: an unchanged model + store republishes
// by sharing the previous snapshot's frozen content — same table
// pointers, fresh version, carried data epoch — and any mutation of
// either side disqualifies the shortcut.
TEST(SnapshotRegistryTest, SharedRepublishSharesContentAndCarriesEpoch) {
  core::InterestStore store = MakeStore(/*dim=*/4, /*seed=*/18);
  models::ModelConfig model_config;
  model_config.embedding_dim = 4;
  models::MsrModel model(model_config, /*num_items=*/6, /*seed=*/1);

  SnapshotRegistry registry;
  EXPECT_EQ(BuildSnapshotShared(model, store, 0, registry.Current()),
            nullptr);  // nothing published yet
  registry.Publish(BuildSnapshot(model, store, 0));
  const std::shared_ptr<const ServingSnapshot> first = registry.Current();
  EXPECT_GT(first->store_revision(), 0u);

  std::shared_ptr<ServingSnapshot> shared =
      BuildSnapshotShared(model, store, 1, first);
  ASSERT_NE(shared, nullptr);
  // Shared tables, not copies.
  EXPECT_EQ(shared->item_embeddings().data(),
            first->item_embeddings().data());
  EXPECT_EQ(shared->item_embeddings_kmajor().data(),
            first->item_embeddings_kmajor().data());
  EXPECT_EQ(shared->Interests(0).data, first->Interests(0).data);
  EXPECT_EQ(shared->trained_through_span(), 1);
  registry.Publish(std::move(shared));
  EXPECT_EQ(registry.Current()->version(), 2u);
  EXPECT_EQ(registry.Current()->data_epoch(), first->data_epoch());

  // Store mutation re-stamps the revision and disqualifies sharing.
  nn::Tensor mutated = store.Interests(0).Clone();
  mutated.at(0, 0) += 1.0f;
  store.SetInterests(0, std::move(mutated));
  EXPECT_EQ(BuildSnapshotShared(model, store, 2, registry.Current()),
            nullptr);
  registry.Publish(BuildSnapshot(model, store, 2));
  EXPECT_EQ(registry.Current()->data_epoch(), 3u);  // fresh epoch

  // Model mutation is caught by the embedding byte compare even though
  // the store revision matches.
  model.embeddings().parameter().mutable_value().at(0, 0) += 1.0f;
  EXPECT_EQ(BuildSnapshotShared(model, store, 3, registry.Current()),
            nullptr);

  // A hand-assembled snapshot (revision 0) never qualifies as prev.
  auto hand = std::make_shared<ServingSnapshot>(
      model.ExportItemEmbeddings(), store.ExportPacked(), /*span=*/3);
  EXPECT_EQ(hand->store_revision(), 0u);
  EXPECT_EQ(BuildSnapshotShared(model, store, 4, hand), nullptr);
}

// A retired snapshot stays valid for readers that still hold it.
TEST(SnapshotRegistryTest, RetiredSnapshotOutlivesPublish) {
  core::InterestStore store = MakeStore(/*dim=*/4, /*seed=*/15);
  models::ModelConfig model_config;
  model_config.embedding_dim = 4;
  models::MsrModel model(model_config, /*num_items=*/6, /*seed=*/1);

  SnapshotRegistry registry;
  registry.Publish(BuildSnapshot(model, store, 0));
  const std::shared_ptr<const ServingSnapshot> held = registry.Current();
  registry.Publish(BuildSnapshot(model, store, 1));
  EXPECT_EQ(held->version(), 1u);
  EXPECT_EQ(held->trained_through_span(), 0);
  // The held snapshot still answers queries.
  EXPECT_TRUE(held->HasUser(0));
  EXPECT_EQ(held->Interests(0).rows, 2);
}

// Publish-while-reading stress: a writer publishes pattern-stamped
// snapshots (every embedding and interest value == the snapshot's span
// id) while reader threads continuously load and validate. A reader must
// never observe a torn snapshot — every value it samples must equal the
// span stamp of the snapshot it holds. ASan-friendly: also exercises
// that retirement never frees under a reader.
TEST(SnapshotRegistryTest, ConcurrentPublishNeverExposesPartialState) {
  constexpr int kPublishes = 200;
  constexpr int kReaders = 4;
  constexpr int64_t kItems = 32;
  constexpr int64_t kDim = 8;

  auto make_stamped = [&](int stamp) {
    core::PackedInterests packed;
    packed.dim = kDim;
    packed.users = {0, 1};
    packed.row_begin = {0, 2};
    packed.counts = {2, 3};
    packed.data.assign(static_cast<size_t>(5 * kDim),
                       static_cast<float>(stamp));
    return std::make_shared<ServingSnapshot>(
        nn::Tensor::Full({kItems, kDim}, static_cast<float>(stamp)),
        std::move(packed), stamp);
  };

  SnapshotRegistry registry;
  registry.Publish(make_stamped(0));

  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::shared_ptr<const ServingSnapshot> snapshot =
            registry.Current();
        ASSERT_NE(snapshot, nullptr);
        const float stamp =
            static_cast<float>(snapshot->trained_through_span());
        // Sample the frozen state; any torn publish shows up as a
        // mismatched value.
        const nn::Tensor& embeddings = snapshot->item_embeddings();
        ASSERT_EQ(embeddings.at(0, 0), stamp);
        ASSERT_EQ(embeddings.at(kItems - 1, kDim - 1), stamp);
        const nn::ConstMatrixView interests = snapshot->Interests(1);
        ASSERT_EQ(interests.rows, 3);
        ASSERT_EQ(interests.data[0], stamp);
        ASSERT_EQ(interests.data[interests.rows * interests.cols - 1],
                  stamp);
        // And the full read path: a Recommend batch against the held
        // snapshot while the writer keeps publishing.
        const std::vector<RecommendResponse> responses = Recommend(
            *snapshot, {{0, 3}, {1, 2}, {9, 1}}, ServeConfig{3, eval::ScoreRule::kMaxInterest, 1});
        ASSERT_EQ(responses.size(), 3u);
        ASSERT_TRUE(responses[0].ok);
        ASSERT_TRUE(responses[1].ok);
        ASSERT_FALSE(responses[2].ok);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Keep publishing until the readers have validated a few snapshots —
  // on a single core the writer could otherwise finish before any reader
  // is scheduled. The hard cap keeps a starved run finite (and failing).
  int publish = 0;
  while (publish < kPublishes ||
         (reads.load(std::memory_order_relaxed) < kReaders &&
          publish < 200 * kPublishes)) {
    registry.Publish(make_stamped(++publish));
    if (publish % 16 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(registry.Current()->trained_through_span(), publish);
  EXPECT_GE(reads.load(), kReaders);
}

TEST(RecommendTest, AnswersBatchAgainstSnapshot) {
  core::InterestStore store = MakeStore(/*dim=*/4, /*seed=*/16);
  util::Rng rng(4);
  ServingSnapshot snapshot(nn::Tensor::Randn({10, 4}, rng),
                           store.ExportPacked(), /*span=*/1);

  ServeConfig config;
  config.default_top_n = 4;
  const std::vector<RecommendRequest> requests = {
      {0, 0},    // default top_n
      {2, 3},    // explicit top_n
      {7, 5},    // unknown user
      {5, 100},  // top_n larger than the corpus: clamped
  };
  const std::vector<RecommendResponse> responses =
      Recommend(snapshot, requests, config);
  ASSERT_EQ(responses.size(), 4u);

  EXPECT_TRUE(responses[0].ok);
  EXPECT_EQ(responses[0].user, 0);
  EXPECT_EQ(responses[0].items.size(), 4u);
  // Scores come back highest first.
  for (size_t i = 1; i < responses[0].items.size(); ++i) {
    EXPECT_GE(responses[0].items[i - 1].second,
              responses[0].items[i].second);
  }

  EXPECT_TRUE(responses[1].ok);
  EXPECT_EQ(responses[1].items.size(), 3u);

  EXPECT_FALSE(responses[2].ok);
  EXPECT_NE(responses[2].error.find("user 7"), std::string::npos);
  EXPECT_TRUE(responses[2].items.empty());

  EXPECT_TRUE(responses[3].ok);
  EXPECT_EQ(responses[3].items.size(), 10u);  // whole corpus
}

TEST(RecommendTest, IdenticalAcrossThreadCounts) {
  core::InterestStore store = MakeStore(/*dim=*/8, /*seed=*/17);
  util::Rng rng(5);
  ServingSnapshot snapshot(nn::Tensor::Randn({64, 8}, rng),
                           store.ExportPacked(), /*span=*/1);
  std::vector<RecommendRequest> requests;
  for (int i = 0; i < 24; ++i) {
    requests.push_back({i % 2 == 0 ? 0 : 2, 5});
  }
  ServeConfig config;
  config.rule = eval::ScoreRule::kAttentive;
  config.threads = 1;
  const std::vector<RecommendResponse> sequential =
      Recommend(snapshot, requests, config);
  for (int threads : {2, 4, 8}) {
    config.threads = threads;
    const std::vector<RecommendResponse> parallel =
        Recommend(snapshot, requests, config);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(parallel[i].ok, sequential[i].ok);
      ASSERT_EQ(parallel[i].items.size(), sequential[i].items.size());
      for (size_t j = 0; j < sequential[i].items.size(); ++j) {
        EXPECT_EQ(parallel[i].items[j].first,
                  sequential[i].items[j].first);
        EXPECT_EQ(parallel[i].items[j].second,
                  sequential[i].items[j].second);
      }
    }
  }
}

// End-to-end: the trainer publishes after pretraining and after each
// span (Algorithm 2's publish points), and the published snapshot
// reproduces the live evaluation bitwise.
TEST(TrainerPublishTest, PretrainAndSpansPublishServableSnapshots) {
  data::SyntheticConfig data_config;
  data_config.name = "tiny";
  data_config.num_users = 30;
  data_config.num_items = 120;
  data_config.num_categories = 8;
  data_config.pretrain_interactions_per_user = 24;
  data_config.span_interactions_per_user = 8;
  data_config.min_interactions = 5;
  data_config.seed = 19;
  const data::SyntheticDataset synthetic =
      data::GenerateSynthetic(data_config);
  const data::Dataset& dataset = *synthetic.dataset;

  models::ModelConfig model_config;
  model_config.embedding_dim = 8;
  models::MsrModel model(model_config, dataset.num_items(), /*seed=*/1);
  core::InterestStore store;
  core::TrainConfig train_config;
  train_config.pretrain_epochs = 1;
  train_config.epochs = 1;
  train_config.batch_size = 32;
  train_config.negatives = 3;
  train_config.initial_interests = 2;
  core::ImsrTrainer trainer(&model, &store, train_config);

  SnapshotRegistry registry;
  trainer.set_snapshot_registry(&registry);

  trainer.Pretrain(dataset);
  std::shared_ptr<const ServingSnapshot> snapshot = registry.Current();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->version(), 1u);
  EXPECT_EQ(snapshot->trained_through_span(), 0);
  EXPECT_EQ(static_cast<size_t>(snapshot->num_users()),
            store.num_users());

  trainer.TrainSpan(dataset, 1);
  snapshot = registry.Current();
  EXPECT_EQ(snapshot->version(), 2u);
  EXPECT_EQ(snapshot->trained_through_span(), 1);

  eval::EvalConfig eval_config;
  eval_config.top_n = 10;
  const eval::EvalResult live = eval::EvaluateSpan(
      model.embeddings().parameter().value(), store, dataset,
      /*test_span=*/2, eval_config);
  const eval::EvalResult served =
      eval::EvaluateSpan(*snapshot, dataset, /*test_span=*/2, eval_config);
  EXPECT_EQ(live.metrics.users, served.metrics.users);
  EXPECT_EQ(live.metrics.hit_ratio, served.metrics.hit_ratio);
  EXPECT_EQ(live.metrics.ndcg, served.metrics.ndcg);
}

}  // namespace
}  // namespace imsr::serve
