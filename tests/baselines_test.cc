// Tests for the baselines: strategy creation (FR/FT/SML/ADER), the
// life-long models (MIMN, LimaRec) and their incremental behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/limarec.h"
#include "baselines/mimn.h"
#include "core/strategies.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace imsr {
namespace {

data::SyntheticDataset SmallData(uint64_t seed = 55) {
  data::SyntheticConfig config;
  config.name = "tiny";
  config.num_users = 40;
  config.num_items = 200;
  config.num_categories = 10;
  config.pretrain_interactions_per_user = 30;
  config.span_interactions_per_user = 10;
  config.min_interactions = 5;
  config.seed = seed;
  return data::GenerateSynthetic(config);
}

core::StrategyConfig SmallStrategyConfig(core::StrategyKind kind) {
  core::StrategyConfig config;
  config.kind = kind;
  config.train.pretrain_epochs = 2;
  config.train.epochs = 1;
  config.train.batch_size = 32;
  config.train.negatives = 5;
  config.train.initial_interests = 3;
  config.train.seed = 3;
  config.fr_initial_interests = 4;
  return config;
}

models::ModelConfig SmallModelConfig() {
  models::ModelConfig config;
  config.kind = models::ExtractorKind::kComiRecDr;
  config.embedding_dim = 16;
  return config;
}

TEST(StrategiesTest, KindNamesRoundTrip) {
  for (core::StrategyKind kind :
       {core::StrategyKind::kFullRetrain, core::StrategyKind::kFineTune,
        core::StrategyKind::kImsr, core::StrategyKind::kSml,
        core::StrategyKind::kAder}) {
    EXPECT_EQ(core::StrategyKindFromName(core::StrategyKindName(kind)),
              kind);
  }
}

TEST(StrategiesTest, EveryStrategyRunsTwoSpans) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  for (core::StrategyKind kind :
       {core::StrategyKind::kFullRetrain, core::StrategyKind::kFineTune,
        core::StrategyKind::kImsr, core::StrategyKind::kImsrNoExpansion,
        core::StrategyKind::kImsrNoEir, core::StrategyKind::kSml,
        core::StrategyKind::kAder}) {
    models::MsrModel model(SmallModelConfig(), dataset.num_items(), 1);
    core::InterestStore store;
    auto strategy = core::LearningStrategy::Create(
        SmallStrategyConfig(kind), &model, &store);
    strategy->Pretrain(dataset);
    strategy->TrainIncrementalSpan(dataset, 1);
    strategy->TrainIncrementalSpan(dataset, 2);
    EXPECT_GT(store.num_users(), 0u)
        << core::StrategyKindName(kind);
    // Sanity: all stored interests are finite.
    for (data::UserId user : store.Users()) {
      const nn::Tensor& interests = store.Interests(user);
      for (int64_t i = 0; i < interests.numel(); ++i) {
        ASSERT_TRUE(std::isfinite(interests.data()[i]))
            << core::StrategyKindName(kind);
      }
    }
  }
}

TEST(StrategiesTest, FullRetrainUsesConfiguredInterestCount) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(SmallModelConfig(), dataset.num_items(), 2);
  core::InterestStore store;
  core::StrategyConfig config =
      SmallStrategyConfig(core::StrategyKind::kFullRetrain);
  config.fr_initial_interests = 5;
  auto strategy = core::LearningStrategy::Create(config, &model, &store);
  strategy->Pretrain(dataset);
  for (data::UserId user : store.Users()) {
    EXPECT_EQ(store.NumInterests(user), 5);
  }
}

TEST(StrategiesTest, FullRetrainReinitialisesParameters) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(SmallModelConfig(), dataset.num_items(), 3);
  core::InterestStore store;
  auto strategy = core::LearningStrategy::Create(
      SmallStrategyConfig(core::StrategyKind::kFullRetrain), &model,
      &store);
  strategy->Pretrain(dataset);
  const nn::Tensor table_after_pretrain =
      model.embeddings().parameter().value();
  strategy->TrainIncrementalSpan(dataset, 1);
  // A fresh reinitialisation + retraining cannot reproduce the identical
  // table.
  EXPECT_GT(nn::MaxAbsDiff(table_after_pretrain,
                           model.embeddings().parameter().value()),
            1e-4f);
}

TEST(StrategiesTest, FineTunePreservesParameterIdentity) {
  // FT must keep updating the same parameter objects (inheriting values),
  // unlike FR.
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  models::MsrModel model(SmallModelConfig(), dataset.num_items(), 4);
  core::InterestStore store;
  auto strategy = core::LearningStrategy::Create(
      SmallStrategyConfig(core::StrategyKind::kFineTune), &model, &store);
  strategy->Pretrain(dataset);
  nn::VarNode* table_node = model.embeddings().parameter().node().get();
  strategy->TrainIncrementalSpan(dataset, 1);
  EXPECT_EQ(model.embeddings().parameter().node().get(), table_node);
}

TEST(MimnTest, PretrainSeedsMemoryAndObserveWrites) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  baselines::MimnConfig config;
  config.base = SmallModelConfig();
  config.pretrain.pretrain_epochs = 2;
  config.pretrain.initial_interests = 3;
  config.memory_slots = 6;
  baselines::MimnModel model(config, dataset.num_items(), 9);
  model.Pretrain(dataset);
  for (data::UserId user : dataset.active_users(0)) {
    EXPECT_TRUE(model.memory().Has(user));
    EXPECT_EQ(model.memory().NumInterests(user), 6);
  }
  // Memory changes as new interactions are written.
  data::UserId user = dataset.active_users(1)[0];
  const nn::Tensor before = model.memory().Interests(user);
  model.ObserveSpan(dataset, 1);
  EXPECT_GT(nn::MaxAbsDiff(before, model.memory().Interests(user)),
            1e-6f);
}

TEST(MimnTest, WriteMovesNearestSlotTowardItem) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  baselines::MimnConfig config;
  config.base = SmallModelConfig();
  config.pretrain.pretrain_epochs = 1;
  config.pretrain.initial_interests = 3;
  config.memory_slots = 4;
  config.write_rate = 0.5f;
  baselines::MimnModel model(config, dataset.num_items(), 10);
  model.Pretrain(dataset);

  data::UserId user = dataset.active_users(1)[0];
  const data::ItemId item = dataset.user_span(user, 1).all[0];
  const nn::Tensor item_embedding = model.item_embeddings().Row(item);
  auto distance_to_item = [&](const nn::Tensor& slots) {
    float best = 1e30f;
    for (int64_t k = 0; k < slots.size(0); ++k) {
      best = std::min(best,
                      nn::L2NormFlat(nn::Sub(slots.Row(k),
                                             item_embedding)));
    }
    return best;
  };
  const float before = distance_to_item(model.memory().Interests(user));
  model.ObserveSpan(dataset, 1);
  const float after = distance_to_item(model.memory().Interests(user));
  EXPECT_LT(after, before + 1e-5f);
}

TEST(LimaRecTest, PretrainBuildsStateAndInterests) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  baselines::LimaRecConfig config;
  config.embedding_dim = 16;
  config.num_heads = 3;
  config.pretrain_epochs = 2;
  baselines::LimaRecModel model(config, dataset.num_items());
  model.Pretrain(dataset);
  for (data::UserId user : dataset.active_users(0)) {
    EXPECT_TRUE(model.interests().Has(user));
    EXPECT_EQ(model.interests().NumInterests(user), 3);
    const nn::Tensor& interests = model.interests().Interests(user);
    for (int64_t i = 0; i < interests.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(interests.data()[i]));
    }
  }
}

TEST(LimaRecTest, ObserveSpanUpdatesUserState) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  baselines::LimaRecConfig config;
  config.embedding_dim = 16;
  config.pretrain_epochs = 1;
  baselines::LimaRecModel model(config, dataset.num_items());
  model.Pretrain(dataset);
  data::UserId user = dataset.active_users(1)[0];
  const nn::Tensor before = model.interests().Interests(user);
  model.ObserveSpan(dataset, 1);
  EXPECT_GT(nn::MaxAbsDiff(before, model.interests().Interests(user)),
            1e-7f);
}

TEST(LimaRecTest, LearnsAboveRandomRanking) {
  // After pretraining, LimaRec interests must rank span-1 targets better
  // than chance (mean rank ~ half the corpus).
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  baselines::LimaRecConfig config;
  config.embedding_dim = 16;
  config.pretrain_epochs = 4;
  baselines::LimaRecModel model(config, dataset.num_items());
  model.Pretrain(dataset);
  eval::EvalConfig eval_config;
  eval_config.top_n = 20;
  const eval::EvalResult result =
      eval::EvaluateSpan(model.item_embeddings(), model.interests(),
                         dataset, 1, eval_config);
  ASSERT_GT(result.metrics.users, 0);
  // Random HR@20 over 200 items = 0.1; require clear learning signal.
  EXPECT_GT(result.metrics.hit_ratio, 0.15);
}

}  // namespace
}  // namespace imsr
