// Property-based tests: invariants checked across parameter sweeps with
// TEST_P / INSTANTIATE_TEST_SUITE_P — shapes, seeds, interest counts and
// routing depths.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/nid.h"
#include "core/pit.h"
#include "eval/ranker.h"
#include "models/capsule_routing.h"
#include "nn/gradcheck.h"
#include "nn/ops.h"
#include "util/math_util.h"

namespace imsr {
namespace {

// ---- Softmax / squash invariants over (rows, cols, seed) ----

class TensorShapeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  nn::Tensor RandomMatrix() {
    auto [rows, cols, seed] = GetParam();
    util::Rng rng(static_cast<uint64_t>(seed));
    return nn::Tensor::Randn({rows, cols}, rng, 0.0f, 2.0f);
  }
};

TEST_P(TensorShapeProperty, SoftmaxRowsAreDistributions) {
  const nn::Tensor m = RandomMatrix();
  const nn::Tensor s = nn::Softmax(m);
  for (int64_t i = 0; i < m.size(0); ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < m.size(1); ++j) {
      EXPECT_GE(s.at(i, j), 0.0f);
      total += s.at(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST_P(TensorShapeProperty, SoftmaxPreservesRowOrdering) {
  const nn::Tensor m = RandomMatrix();
  const nn::Tensor s = nn::Softmax(m);
  for (int64_t i = 0; i < m.size(0); ++i) {
    for (int64_t j = 1; j < m.size(1); ++j) {
      if (m.at(i, j) > m.at(i, j - 1)) {
        EXPECT_GE(s.at(i, j), s.at(i, j - 1));
      }
    }
  }
}

TEST_P(TensorShapeProperty, SquashRowsBoundedAndDirectional) {
  const nn::Tensor m = RandomMatrix();
  const nn::Tensor s = nn::SquashRows(m);
  for (int64_t i = 0; i < m.size(0); ++i) {
    const nn::Tensor row_in = m.Row(i);
    const nn::Tensor row_out = s.Row(i);
    const float n_in = nn::L2NormFlat(row_in);
    const float n_out = nn::L2NormFlat(row_out);
    EXPECT_LT(n_out, 1.0f);
    // Direction preserved: cosine similarity 1 (for non-tiny rows).
    if (n_in > 1e-3f) {
      EXPECT_NEAR(nn::DotFlat(row_in, row_out), n_in * n_out, 1e-3f);
    }
  }
}

TEST_P(TensorShapeProperty, LogSumExpDominatesMax) {
  const nn::Tensor m = RandomMatrix();
  const nn::Tensor lse = nn::LogSumExpRows(m);
  for (int64_t i = 0; i < m.size(0); ++i) {
    float row_max = m.at(i, 0);
    for (int64_t j = 1; j < m.size(1); ++j) {
      row_max = std::max(row_max, m.at(i, j));
    }
    EXPECT_GE(lse.at(i), row_max - 1e-5f);
    EXPECT_LE(lse.at(i),
              row_max + std::log(static_cast<float>(m.size(1))) + 1e-4f);
  }
}

TEST_P(TensorShapeProperty, MatMulTransposeIdentity) {
  // (A B)^T == B^T A^T.
  auto [rows, cols, seed] = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed) + 1000);
  const nn::Tensor a = nn::Tensor::Randn({rows, cols}, rng);
  const nn::Tensor b = nn::Tensor::Randn({cols, rows}, rng);
  EXPECT_LT(nn::MaxAbsDiff(nn::Transpose(nn::MatMul(a, b)),
                           nn::MatMul(nn::Transpose(b),
                                      nn::Transpose(a))),
            1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TensorShapeProperty,
    ::testing::Combine(::testing::Values(1, 3, 17),
                       ::testing::Values(2, 8, 33),
                       ::testing::Values(1, 42)));

// ---- Routing invariants over (items, interests, iterations) ----

class RoutingProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RoutingProperty, CouplingIsRowStochasticAtAnyDepth) {
  auto [n, k, iterations] = GetParam();
  util::Rng rng(7);
  const nn::Tensor e_hat = nn::Tensor::Randn({n, 16}, rng);
  const nn::Tensor init = nn::Tensor::Randn({k, 16}, rng);
  const nn::Tensor coupling = models::B2IRouting(
      e_hat, init, models::RoutingConfig{iterations, 0.0f}, nullptr);
  ASSERT_EQ(coupling.size(0), n);
  ASSERT_EQ(coupling.size(1), k);
  for (int64_t i = 0; i < n; ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < k; ++j) {
      EXPECT_GE(coupling.at(i, j), 0.0f);
      total += coupling.at(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-4f);
  }
}

TEST_P(RoutingProperty, CapsulesStayInsideUnitBall) {
  auto [n, k, iterations] = GetParam();
  util::Rng rng(8);
  const nn::Tensor e_hat = nn::Tensor::Randn({n, 16}, rng);
  const nn::Tensor init = nn::Tensor::Randn({k, 16}, rng);
  const nn::Tensor coupling = models::B2IRouting(
      e_hat, init, models::RoutingConfig{iterations, 0.0f}, nullptr);
  const nn::Tensor capsules =
      nn::SquashRows(nn::MatMul(nn::Transpose(coupling), e_hat));
  for (int64_t j = 0; j < k; ++j) {
    EXPECT_LT(nn::L2NormFlat(capsules.Row(j)), 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Depths, RoutingProperty,
    ::testing::Combine(::testing::Values(2, 10, 40),
                       ::testing::Values(1, 4, 9),
                       ::testing::Values(1, 3, 6)));

// ---- PIT invariants over (existing K, dim, seed) ----

class PitProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PitProperty, OrthogonalDecompositionIsExact) {
  auto [k, dim, seed] = GetParam();
  if (k >= dim) GTEST_SKIP() << "basis must not span the space";
  util::Rng rng(static_cast<uint64_t>(seed));
  const nn::Tensor basis = nn::Tensor::Randn({k, dim}, rng);
  const nn::Tensor h = nn::Tensor::Randn({dim}, rng);
  const nn::Tensor proj = core::ProjectOntoRowSpan(basis, h);
  const nn::Tensor orth = core::OrthogonalComponent(basis, h);
  // h = proj + orth.
  EXPECT_LT(nn::MaxAbsDiff(nn::Add(proj, orth), h), 1e-4f);
  // proj _|_ orth.
  EXPECT_NEAR(nn::DotFlat(proj, orth), 0.0f,
              1e-2f * nn::L2NormFlat(h) * nn::L2NormFlat(h));
  // Pythagoras within tolerance.
  const float h2 = nn::DotFlat(h, h);
  const float p2 = nn::DotFlat(proj, proj);
  const float o2 = nn::DotFlat(orth, orth);
  EXPECT_NEAR(h2, p2 + o2, 1e-2f * h2);
}

TEST_P(PitProperty, ProjectionShrinksNorm) {
  auto [k, dim, seed] = GetParam();
  if (k >= dim) GTEST_SKIP();
  util::Rng rng(static_cast<uint64_t>(seed) + 99);
  const nn::Tensor basis = nn::Tensor::Randn({k, dim}, rng);
  const nn::Tensor h = nn::Tensor::Randn({dim}, rng);
  EXPECT_LE(nn::L2NormFlat(core::ProjectOntoRowSpan(basis, h)),
            nn::L2NormFlat(h) * (1.0f + 1e-4f));
  EXPECT_LE(nn::L2NormFlat(core::OrthogonalComponent(basis, h)),
            nn::L2NormFlat(h) * (1.0f + 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Bases, PitProperty,
    ::testing::Combine(::testing::Values(1, 3, 6),
                       ::testing::Values(8, 16, 32),
                       ::testing::Values(5, 6)));

// ---- NID invariants over (K, dim) ----

class NidProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NidProperty, KlNonNegativeAndBoundedByLogK) {
  auto [k, dim] = GetParam();
  util::Rng rng(11);
  const nn::Tensor interests = nn::Tensor::Randn({k, dim}, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const nn::Tensor item = nn::Tensor::Randn({dim}, rng);
    const double kl = core::AssignmentKl(item, interests);
    EXPECT_GE(kl, 0.0);
    // KL(uniform || p) <= log K ... not in general, but with cosine
    // logits in [-1, 1] the value is bounded by 2 (max logit spread).
    EXPECT_LE(kl, 2.0);
    EXPECT_DOUBLE_EQ(core::ItemPuzzlement(item, interests), -kl);
  }
}

TEST_P(NidProperty, AssignmentInvariantToItemScale) {
  auto [k, dim] = GetParam();
  util::Rng rng(12);
  const nn::Tensor interests = nn::Tensor::Randn({k, dim}, rng);
  const nn::Tensor item = nn::Tensor::Randn({dim}, rng);
  const std::vector<double> p1 =
      core::AssignmentDistribution(item, interests);
  const std::vector<double> p2 =
      core::AssignmentDistribution(nn::Scale(item, 13.0f), interests);
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_NEAR(p1[i], p2[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Spaces, NidProperty,
                         ::testing::Combine(::testing::Values(2, 4, 9),
                                            ::testing::Values(8, 32)));

// ---- Ranking invariants over (items, K, rule) ----

class RankerProperty : public ::testing::TestWithParam<
                           std::tuple<int, int, eval::ScoreRule>> {};

TEST_P(RankerProperty, RanksArePermutationConsistent) {
  auto [num_items, k, rule] = GetParam();
  util::Rng rng(13);
  const nn::Tensor table = nn::Tensor::Randn({num_items, 16}, rng);
  const nn::Tensor interests = nn::Tensor::Randn({k, 16}, rng);
  // The top-1 item must have rank 1, and the rank of any item equals
  // 1 + number of strictly-better-or-equal competitors.
  const auto top = eval::TopNItems(interests, table, 1, rule);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(eval::TargetRank(interests, table, top[0].first, rule), 1);
  const std::vector<float> scores =
      eval::ScoreAllItems(interests, table, rule);
  for (data::ItemId item : {data::ItemId{0}, data::ItemId{1}}) {
    int64_t expected = 1;
    for (size_t i = 0; i < scores.size(); ++i) {
      if (static_cast<data::ItemId>(i) != item &&
          scores[i] >= scores[static_cast<size_t>(item)]) {
        ++expected;
      }
    }
    EXPECT_EQ(eval::TargetRank(interests, table, item, rule), expected);
  }
}

TEST_P(RankerProperty, MaxRuleDominatesAttentiveScores) {
  // max_k logit >= softmax-weighted combination of logits, per item.
  auto [num_items, k, rule] = GetParam();
  (void)rule;
  util::Rng rng(14);
  const nn::Tensor table = nn::Tensor::Randn({num_items, 16}, rng);
  const nn::Tensor interests = nn::Tensor::Randn({k, 16}, rng);
  const std::vector<float> maxed = eval::ScoreAllItems(
      interests, table, eval::ScoreRule::kMaxInterest);
  const std::vector<float> attentive = eval::ScoreAllItems(
      interests, table, eval::ScoreRule::kAttentive);
  for (size_t i = 0; i < maxed.size(); ++i) {
    EXPECT_GE(maxed[i] + 1e-4f, attentive[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpora, RankerProperty,
    ::testing::Combine(::testing::Values(10, 200),
                       ::testing::Values(1, 4, 8),
                       ::testing::Values(eval::ScoreRule::kAttentive,
                                         eval::ScoreRule::kMaxInterest)));

// ---- Autograd gradcheck across seeds (composite graph) ----

class GradProperty : public ::testing::TestWithParam<int> {};

TEST_P(GradProperty, CompositeGraphGradcheck) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  nn::Var items(nn::Tensor::Randn({6, 8}, rng, 0.0f, 0.6f), true);
  nn::Var transform(nn::Tensor::Randn({8, 8}, rng, 0.0f, 0.4f), true);
  nn::Var query(nn::Tensor::Randn({8}, rng, 0.0f, 0.6f), true);
  auto forward = [&] {
    nn::Var hidden = nn::ops::Tanh(nn::ops::MatMul(items, transform));
    nn::Var capsules = nn::ops::SquashRows(hidden);
    nn::Var beta = nn::ops::Softmax(nn::ops::MatVec(capsules, query));
    nn::Var v = nn::ops::MatVec(nn::ops::Transpose(capsules), beta);
    return nn::ops::NegLogSoftmax(nn::ops::MatVec(items, v), 1);
  };
  const nn::GradCheckResult result =
      nn::CheckGradients(forward, {items, transform, query});
  EXPECT_TRUE(result.ok) << "seed " << GetParam() << " max rel "
                         << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradProperty,
                         ::testing::Values(3, 17, 99, 123, 2024));

}  // namespace
}  // namespace imsr
