// Tests for the GRU4Rec-style single-interest baseline and the 2-D PCA
// projection utility.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gru4rec.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/projection.h"
#include "nn/gradcheck.h"
#include "nn/ops.h"

namespace imsr {
namespace {

data::SyntheticDataset SmallData() {
  data::SyntheticConfig config;
  config.num_users = 30;
  config.num_items = 150;
  config.num_categories = 8;
  config.pretrain_interactions_per_user = 24;
  config.span_interactions_per_user = 8;
  config.min_interactions = 5;
  config.seed = 61;
  return data::GenerateSynthetic(config);
}

baselines::Gru4RecConfig SmallGruConfig() {
  baselines::Gru4RecConfig config;
  config.embedding_dim = 12;
  config.hidden_dim = 12;
  config.epochs = 2;
  config.negatives = 5;
  return config;
}

TEST(Gru4RecTest, HiddenStateShapeAndDeterminism) {
  baselines::Gru4RecModel model(SmallGruConfig(), 50);
  const std::vector<data::ItemId> history = {1, 5, 9, 3};
  const nn::Tensor a = model.ForwardHidden(history).value();
  const nn::Tensor b = model.ForwardHidden(history).value();
  EXPECT_EQ(a.numel(), 12);
  EXPECT_LT(nn::MaxAbsDiff(a, b), 1e-12f);
  // Hidden state is bounded by the tanh candidate dynamics.
  for (int64_t j = 0; j < a.numel(); ++j) {
    EXPECT_LE(std::fabs(a.at(j)), 1.0f);
  }
}

TEST(Gru4RecTest, OrderSensitivity) {
  // A recurrent model must distinguish item order (unlike bag-of-items).
  baselines::Gru4RecModel model(SmallGruConfig(), 50);
  const nn::Tensor forward =
      model.ForwardHidden({1, 2, 3, 4, 5}).value();
  const nn::Tensor reversed =
      model.ForwardHidden({5, 4, 3, 2, 1}).value();
  EXPECT_GT(nn::MaxAbsDiff(forward, reversed), 1e-5f);
}

TEST(Gru4RecTest, GradientsFlowToAllParameters) {
  baselines::Gru4RecModel model(SmallGruConfig(), 50);
  nn::Var hidden = model.ForwardHidden({2, 7, 11});
  nn::ops::SumSquares(hidden).Backward();
  int with_grad = 0;
  for (nn::Var& parameter : model.Parameters()) {
    with_grad += parameter.has_grad() ? 1 : 0;
  }
  // Embeddings + 9 GRU weights all receive gradient.
  EXPECT_EQ(with_grad, 10);
}

TEST(Gru4RecTest, GradCheckThroughShortSequence) {
  baselines::Gru4RecModel model(SmallGruConfig(), 20);
  auto parameters = model.Parameters();
  auto forward = [&] {
    return nn::ops::SumSquares(model.ForwardHidden({3, 8}));
  };
  // Check gradients on the recurrent weights only (embeddings covered by
  // other tests; the full check would be slow).
  const nn::GradCheckResult result = nn::CheckGradients(
      forward, {parameters[1], parameters[4], parameters[7],
                parameters[3], parameters[6], parameters[9]});
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

TEST(Gru4RecTest, TrainsAboveChanceAndRefreshesStore) {
  const data::SyntheticDataset synthetic = SmallData();
  const data::Dataset& dataset = *synthetic.dataset;
  baselines::Gru4RecConfig config = SmallGruConfig();
  config.epochs = 4;
  baselines::Gru4RecModel model(config, dataset.num_items());
  model.TrainSpan(dataset, 0);
  model.RefreshRepresentations(dataset, 0);
  for (data::UserId user : dataset.active_users(0)) {
    EXPECT_TRUE(model.representations().Has(user));
    EXPECT_EQ(model.representations().NumInterests(user), 1);
  }
  eval::EvalConfig eval_config;
  const eval::EvalResult result =
      eval::EvaluateSpan(model.item_embeddings(), model.representations(),
                         dataset, 1, eval_config);
  ASSERT_GT(result.metrics.users, 0);
  // Chance HR@20 over 150 items ~ 0.13.
  EXPECT_GT(result.metrics.hit_ratio, 0.15);
}

// ---- PCA projection ----

TEST(PcaTest, RecoversDominantAxis) {
  // Points spread along axis 0 with small noise on axis 1.
  nn::Tensor points({6, 3});
  for (int64_t i = 0; i < 6; ++i) {
    points.at(i, 0) = static_cast<float>(i) * 2.0f;
    points.at(i, 1) = (i % 2 == 0) ? 0.1f : -0.1f;
  }
  const auto projected = eval::PcaProject2d(points);
  ASSERT_EQ(projected.size(), 6u);
  // x coordinates must be strictly ordered (up to sign) along the axis.
  const double direction = projected[5].first - projected[0].first;
  for (size_t i = 1; i < projected.size(); ++i) {
    if (direction > 0) {
      EXPECT_GT(projected[i].first, projected[i - 1].first);
    } else {
      EXPECT_LT(projected[i].first, projected[i - 1].first);
    }
  }
  // Nearly all variance lives in the first component.
  EXPECT_GT(eval::PcaExplainedVariance(points, 1), 0.98);
}

TEST(PcaTest, PreservesPairwiseStructureInPlaneData) {
  // Points already in a 2-D subspace project with distances intact.
  util::Rng rng(5);
  nn::Tensor basis = nn::Tensor::Randn({2, 8}, rng);
  nn::Tensor points({5, 8});
  std::vector<std::pair<double, double>> coords = {
      {0, 0}, {1, 0}, {0, 1}, {2, 2}, {-1, 1}};
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      points.at(i, j) = static_cast<float>(
          coords[static_cast<size_t>(i)].first * basis.at(0, j) +
          coords[static_cast<size_t>(i)].second * basis.at(1, j));
    }
  }
  EXPECT_GT(eval::PcaExplainedVariance(points, 2), 0.999);
  const auto projected = eval::PcaProject2d(points);
  // Pairwise distances in the projection match the original distances.
  auto original_distance = [&](int64_t a, int64_t b) {
    return nn::L2NormFlat(nn::Sub(points.Row(a), points.Row(b)));
  };
  auto projected_distance = [&](size_t a, size_t b) {
    const double dx = projected[a].first - projected[b].first;
    const double dy = projected[a].second - projected[b].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  for (int64_t a = 0; a < 5; ++a) {
    for (int64_t b = a + 1; b < 5; ++b) {
      EXPECT_NEAR(projected_distance(static_cast<size_t>(a),
                                     static_cast<size_t>(b)),
                  original_distance(a, b), 1e-2);
    }
  }
}

TEST(PcaTest, DegenerateInputs) {
  // Identical points: zero variance, projection at the origin.
  nn::Tensor constant = nn::Tensor::Full({3, 4}, 2.0f);
  const auto projected = eval::PcaProject2d(constant);
  for (const auto& [x, y] : projected) {
    EXPECT_NEAR(x, 0.0, 1e-6);
    EXPECT_NEAR(y, 0.0, 1e-6);
  }
  EXPECT_DOUBLE_EQ(eval::PcaExplainedVariance(constant, 2), 1.0);
}

}  // namespace
}  // namespace imsr
