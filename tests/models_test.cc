// Tests for the base MSR models: embedding table, B2I routing, the three
// extractors, the attentive aggregator and the sampled-softmax loss.
#include <gtest/gtest.h>

#include <cmath>

#include "models/aggregator.h"
#include "models/capsule_routing.h"
#include "models/comirec_dr.h"
#include "models/comirec_sa.h"
#include "models/mind.h"
#include "models/msr_model.h"
#include "models/sampled_softmax.h"
#include "nn/gradcheck.h"
#include "nn/ops.h"

namespace imsr::models {
namespace {

TEST(EmbeddingTest, LookupMatchesTable) {
  util::Rng rng(1);
  EmbeddingTable table(10, 4, rng);
  const nn::Tensor rows = table.LookupNoGrad({3, 7});
  EXPECT_EQ(rows.size(0), 2);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(rows.at(0, j), table.parameter().value().at(3, j));
    EXPECT_EQ(rows.at(1, j), table.RowNoGrad(7).at(j));
  }
}

TEST(EmbeddingTest, GradientFlowsThroughLookup) {
  util::Rng rng(2);
  EmbeddingTable table(6, 3, rng);
  nn::Var gathered = table.Lookup({1, 1, 4});
  nn::ops::SumSquares(gathered).Backward();
  const nn::Tensor& grad = table.parameter().grad();
  // Row 1 used twice, row 4 once, others untouched.
  EXPECT_NE(grad.at(1, 0), 0.0f);
  EXPECT_NE(grad.at(4, 0), 0.0f);
  EXPECT_EQ(grad.at(0, 0), 0.0f);
  EXPECT_NEAR(grad.at(1, 0),
              4.0f * table.parameter().value().at(1, 0), 1e-5f);
}

TEST(EmbeddingTest, SaveLoadRoundTrip) {
  util::Rng rng(3);
  EmbeddingTable table(5, 4, rng);
  util::BinaryWriter writer;
  table.Save(&writer);
  EmbeddingTable other(5, 4, rng);
  util::BinaryReader reader(writer.buffer());
  std::string error;
  ASSERT_TRUE(other.Load(&reader, &error)) << error;
  EXPECT_LT(nn::MaxAbsDiff(table.parameter().value(),
                           other.parameter().value()),
            1e-12f);
}

TEST(RoutingTest, CouplingRowsAreDistributions) {
  util::Rng rng(4);
  const nn::Tensor e_hat = nn::Tensor::Randn({6, 8}, rng);
  const nn::Tensor init = nn::Tensor::Randn({3, 8}, rng);
  const nn::Tensor coupling =
      B2IRouting(e_hat, init, RoutingConfig{3, 0.0f}, nullptr);
  EXPECT_EQ(coupling.size(0), 6);
  EXPECT_EQ(coupling.size(1), 3);
  for (int64_t i = 0; i < 6; ++i) {
    float total = 0.0f;
    for (int64_t k = 0; k < 3; ++k) {
      EXPECT_GE(coupling.at(i, k), 0.0f);
      total += coupling.at(i, k);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(RoutingTest, ItemsRouteTowardAlignedInterest) {
  // Two well-separated interest directions; items clustered on each must
  // route to their own capsule.
  const int64_t d = 8;
  nn::Tensor init({2, d});
  init.at(0, 0) = 1.0f;
  init.at(1, 1) = 1.0f;
  nn::Tensor e_hat({4, d});
  e_hat.at(0, 0) = 2.0f;  // aligned with interest 0
  e_hat.at(1, 0) = 1.5f;
  e_hat.at(2, 1) = 2.0f;  // aligned with interest 1
  e_hat.at(3, 1) = 1.5f;
  const nn::Tensor coupling =
      B2IRouting(e_hat, init, RoutingConfig{3, 0.0f}, nullptr);
  EXPECT_GT(coupling.at(0, 0), coupling.at(0, 1));
  EXPECT_GT(coupling.at(1, 0), coupling.at(1, 1));
  EXPECT_LT(coupling.at(2, 0), coupling.at(2, 1));
  EXPECT_LT(coupling.at(3, 0), coupling.at(3, 1));
}

TEST(RoutingTest, MoreIterationsSharpenCoupling) {
  util::Rng rng(5);
  const nn::Tensor e_hat = nn::Tensor::Randn({10, 8}, rng);
  const nn::Tensor init = nn::Tensor::Randn({4, 8}, rng);
  auto entropy = [](const nn::Tensor& c) {
    double total = 0.0;
    for (int64_t i = 0; i < c.size(0); ++i) {
      for (int64_t k = 0; k < c.size(1); ++k) {
        const double p = c.at(i, k);
        if (p > 1e-12) total -= p * std::log(p);
      }
    }
    return total;
  };
  const double h1 =
      entropy(B2IRouting(e_hat, init, RoutingConfig{1, 0.0f}, nullptr));
  const double h5 =
      entropy(B2IRouting(e_hat, init, RoutingConfig{5, 0.0f}, nullptr));
  EXPECT_LT(h5, h1);
}

TEST(DynamicRoutingExtractorTest, ShapesAndGradients) {
  util::Rng rng(6);
  DynamicRoutingExtractor extractor(8, RoutingConfig{2, 0.0f}, rng);
  nn::Var items(nn::Tensor::Randn({5, 8}, rng), /*requires_grad=*/true);
  const nn::Tensor init = nn::Tensor::Randn({3, 8}, rng);
  nn::Var interests = extractor.Forward(items, init, 0);
  EXPECT_EQ(interests.value().size(0), 3);
  EXPECT_EQ(interests.value().size(1), 8);
  // Squash keeps every interest norm below 1.
  for (int64_t k = 0; k < 3; ++k) {
    EXPECT_LT(nn::L2NormFlat(interests.value().Row(k)), 1.0f);
  }
  nn::ops::SumSquares(interests).Backward();
  EXPECT_TRUE(items.has_grad());
  EXPECT_TRUE(extractor.transform().has_grad());
}

TEST(DynamicRoutingExtractorTest, NoGradMatchesForwardValue) {
  util::Rng rng(7);
  DynamicRoutingExtractor extractor(8, RoutingConfig{3, 0.0f}, rng);
  const nn::Tensor items = nn::Tensor::Randn({6, 8}, rng);
  const nn::Tensor init = nn::Tensor::Randn({2, 8}, rng);
  const nn::Tensor no_grad = extractor.ForwardNoGrad(items, init, 0);
  nn::Var graph = extractor.Forward(nn::Var(items), init, 0);
  EXPECT_LT(nn::MaxAbsDiff(no_grad, graph.value()), 1e-5f);
}

TEST(DynamicRoutingExtractorTest, SaveLoadResetBehaviour) {
  util::Rng rng(8);
  DynamicRoutingExtractor extractor(6, RoutingConfig{2, 0.0f}, rng);
  util::BinaryWriter writer;
  extractor.Save(&writer);
  const nn::Tensor before = extractor.transform().value();
  extractor.Reset(rng);
  EXPECT_GT(nn::MaxAbsDiff(before, extractor.transform().value()), 1e-4f);
  util::BinaryReader reader(writer.buffer());
  std::string error;
  ASSERT_TRUE(extractor.Load(&reader, &error)) << error;
  EXPECT_LT(nn::MaxAbsDiff(before, extractor.transform().value()), 1e-12f);
}

TEST(MindExtractorTest, KindAndNoise) {
  util::Rng rng(9);
  MindExtractor extractor(8, 3, 0.5f, rng);
  EXPECT_EQ(extractor.kind(), ExtractorKind::kMind);
  // With logit noise, two no-grad passes differ (random routing init).
  const nn::Tensor items = nn::Tensor::Randn({6, 8}, rng);
  const nn::Tensor init = nn::Tensor::Randn({3, 8}, rng);
  const nn::Tensor a = extractor.ForwardNoGrad(items, init, 0);
  const nn::Tensor b = extractor.ForwardNoGrad(items, init, 0);
  EXPECT_GT(nn::MaxAbsDiff(a, b), 1e-6f);
}

TEST(SelfAttentionExtractorTest, CapacityLifecycle) {
  util::Rng rng(10);
  SelfAttentionExtractor extractor(8, 6, rng);
  EXPECT_EQ(extractor.UserCapacity(42), 0);
  nn::Adam optimizer(0.01f);
  extractor.EnsureUserCapacity(42, 4, rng, &optimizer);
  EXPECT_EQ(extractor.UserCapacity(42), 4);
  EXPECT_EQ(optimizer.num_parameters(), 1u);

  // Growth preserves existing columns.
  const nn::Tensor before = extractor.UserQuery(42).value();
  extractor.EnsureUserCapacity(42, 6, rng, &optimizer);
  EXPECT_EQ(extractor.UserCapacity(42), 6);
  const nn::Tensor after = extractor.UserQuery(42).value();
  for (int64_t r = 0; r < 6; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_EQ(after.at(r, c), before.at(r, c));
    }
  }
  EXPECT_EQ(optimizer.num_parameters(), 1u);  // old replaced, not leaked

  // Shrink keeps selected columns.
  extractor.KeepUserInterests(42, {0, 2, 5}, &optimizer);
  EXPECT_EQ(extractor.UserCapacity(42), 3);
  const nn::Tensor kept = extractor.UserQuery(42).value();
  for (int64_t r = 0; r < 6; ++r) {
    EXPECT_EQ(kept.at(r, 1), after.at(r, 2));
  }
}

TEST(SelfAttentionExtractorTest, ForwardShapesAndGradients) {
  util::Rng rng(11);
  SelfAttentionExtractor extractor(8, 6, rng);
  extractor.EnsureUserCapacity(1, 3, rng, nullptr);
  nn::Var items(nn::Tensor::Randn({5, 8}, rng), /*requires_grad=*/true);
  const nn::Tensor init = nn::Tensor::Randn({3, 8}, rng);
  nn::Var interests = extractor.Forward(items, init, 1);
  EXPECT_EQ(interests.value().size(0), 3);
  EXPECT_EQ(interests.value().size(1), 8);
  nn::ops::SumSquares(interests).Backward();
  EXPECT_TRUE(items.has_grad());
  EXPECT_TRUE(extractor.UserQuery(1).has_grad());
  EXPECT_TRUE(extractor.SharedParameters()[0].has_grad());
}

TEST(SelfAttentionExtractorTest, InterestsAreConvexCombinations) {
  // Each SA interest is an attention-weighted average of item embeddings,
  // so it lies inside the items' convex hull: max |h| <= max |e|.
  util::Rng rng(12);
  SelfAttentionExtractor extractor(8, 6, rng);
  extractor.EnsureUserCapacity(2, 4, rng, nullptr);
  const nn::Tensor items = nn::Tensor::Randn({7, 8}, rng);
  const nn::Tensor init = nn::Tensor::Randn({4, 8}, rng);
  const nn::Tensor interests = extractor.ForwardNoGrad(items, init, 2);
  float max_item_norm = 0.0f;
  for (int64_t i = 0; i < items.size(0); ++i) {
    max_item_norm = std::max(max_item_norm, nn::L2NormFlat(items.Row(i)));
  }
  for (int64_t k = 0; k < interests.size(0); ++k) {
    EXPECT_LE(nn::L2NormFlat(interests.Row(k)), max_item_norm + 1e-4f);
  }
}

TEST(SelfAttentionExtractorTest, SaveLoadRoundTrip) {
  util::Rng rng(13);
  SelfAttentionExtractor extractor(4, 3, rng);
  extractor.EnsureUserCapacity(7, 2, rng, nullptr);
  util::BinaryWriter writer;
  extractor.Save(&writer);
  SelfAttentionExtractor other(4, 3, rng);
  util::BinaryReader reader(writer.buffer());
  std::string error;
  ASSERT_TRUE(other.Load(&reader, &error)) << error;
  EXPECT_EQ(other.UserCapacity(7), 2);
  EXPECT_LT(nn::MaxAbsDiff(other.UserQuery(7).value(),
                           extractor.UserQuery(7).value()),
            1e-12f);
}

TEST(AggregatorTest, AttentiveAggregateIsConvex) {
  // v_u = H^T softmax(H e): a convex combination of interest rows.
  util::Rng rng(14);
  const nn::Tensor interests = nn::Tensor::Randn({3, 6}, rng);
  const nn::Tensor target = nn::Tensor::Randn({6}, rng);
  const nn::Tensor v = AttentiveAggregateNoGrad(interests, target);
  EXPECT_EQ(v.numel(), 6);
  // With one interest, v equals that interest exactly.
  const nn::Tensor single = interests.RowSlice(0, 1);
  const nn::Tensor v1 = AttentiveAggregateNoGrad(single, target);
  EXPECT_LT(nn::MaxAbsDiff(v1, single.Reshape({6})), 1e-6f);
}

TEST(AggregatorTest, AggregateWeightsFollowAlignment) {
  // Target aligned with interest 0 makes v close to interest 0.
  nn::Tensor interests({2, 4});
  interests.at(0, 0) = 1.0f;
  interests.at(1, 1) = 1.0f;
  nn::Tensor target({4});
  target.at(0) = 10.0f;  // strongly aligned with h_0
  const nn::Tensor v = AttentiveAggregateNoGrad(interests, target);
  EXPECT_GT(v.at(0), 0.95f);
  EXPECT_LT(v.at(1), 0.05f);
}

TEST(AggregatorTest, GradVersionMatchesNoGrad) {
  util::Rng rng(15);
  const nn::Tensor interests = nn::Tensor::Randn({4, 5}, rng);
  const nn::Tensor target = nn::Tensor::Randn({5}, rng);
  nn::Var v = AttentiveAggregate(nn::Var(interests), nn::Var(target));
  EXPECT_LT(nn::MaxAbsDiff(v.value(),
                           AttentiveAggregateNoGrad(interests, target)),
            1e-5f);
}

TEST(AggregatorTest, ScoreRules) {
  nn::Tensor interests({2, 3});
  interests.at(0, 0) = 1.0f;
  interests.at(1, 1) = 1.0f;
  nn::Tensor item({3});
  item.at(0) = 2.0f;
  item.at(1) = 1.0f;
  EXPECT_FLOAT_EQ(MaxInterestScore(interests, item), 2.0f);
  // Attentive score blends toward the best-matching interest.
  const float attentive = AttentiveScore(interests, item);
  EXPECT_GT(attentive, 1.0f);
  EXPECT_LE(attentive, 2.0f);
}

TEST(SampledSoftmaxTest, LossDecreasesWithBetterAlignment) {
  util::Rng rng(16);
  nn::Tensor candidates_t = nn::Tensor::Randn({5, 4}, rng);
  nn::Tensor v_good = candidates_t.Row(0);  // aligned with the positive
  nn::Tensor v_bad = candidates_t.Row(3);   // aligned with a negative
  const float loss_good =
      SampledSoftmaxLoss(nn::Var(v_good), nn::Var(candidates_t))
          .value()
          .item();
  const float loss_bad =
      SampledSoftmaxLoss(nn::Var(v_bad), nn::Var(candidates_t))
          .value()
          .item();
  EXPECT_LT(loss_good, loss_bad);
}

TEST(SampledSoftmaxTest, GradientCheck) {
  util::Rng rng(17);
  nn::Var v(nn::Tensor::Randn({4}, rng), /*requires_grad=*/true);
  nn::Var candidates(nn::Tensor::Randn({6, 4}, rng),
                     /*requires_grad=*/true);
  auto forward = [&] { return SampledSoftmaxLoss(v, candidates); };
  EXPECT_TRUE(nn::CheckGradients(forward, {v, candidates}).ok);
}

TEST(MsrModelTest, ConstructionPerKind) {
  for (ExtractorKind kind :
       {ExtractorKind::kMind, ExtractorKind::kComiRecDr,
        ExtractorKind::kComiRecSa}) {
    ModelConfig config;
    config.kind = kind;
    config.embedding_dim = 8;
    MsrModel model(config, 20, 1);
    EXPECT_EQ(model.extractor().kind(), kind);
    EXPECT_GE(model.SharedParameters().size(), 2u);
  }
}

TEST(MsrModelTest, ForwardInterestsShape) {
  ModelConfig config;
  config.kind = ExtractorKind::kComiRecDr;
  config.embedding_dim = 8;
  MsrModel model(config, 20, 2);
  util::Rng rng(3);
  const nn::Tensor init = nn::Tensor::Randn({4, 8}, rng);
  const nn::Tensor interests =
      model.ForwardInterestsNoGrad({1, 2, 3, 4, 5}, init, 0);
  EXPECT_EQ(interests.size(0), 4);
  EXPECT_EQ(interests.size(1), 8);
}

TEST(MsrModelTest, SaveLoadRoundTrip) {
  ModelConfig config;
  config.kind = ExtractorKind::kComiRecSa;
  config.embedding_dim = 8;
  config.attention_dim = 6;
  MsrModel model(config, 15, 4);
  util::Rng rng(5);
  model.extractor().EnsureUserCapacity(3, 4, rng, nullptr);
  util::BinaryWriter writer;
  model.Save(&writer);

  MsrModel other(config, 15, 99);
  util::BinaryReader reader(writer.buffer());
  std::string error;
  ASSERT_TRUE(other.Load(&reader, &error)) << error;
  EXPECT_LT(nn::MaxAbsDiff(model.embeddings().parameter().value(),
                           other.embeddings().parameter().value()),
            1e-12f);
  // Forward passes agree after load.
  const nn::Tensor init = nn::Tensor::Randn({4, 8}, rng);
  EXPECT_LT(nn::MaxAbsDiff(
                model.ForwardInterestsNoGrad({1, 2, 3}, init, 3),
                other.ForwardInterestsNoGrad({1, 2, 3}, init, 3)),
            1e-5f);
}

TEST(MsrModelTest, ExtractorKindNames) {
  EXPECT_STREQ(ExtractorKindName(ExtractorKind::kMind), "MIND");
  ExtractorKind kind;
  std::string error;
  EXPECT_TRUE(ExtractorKindFromName("dr", &kind, &error));
  EXPECT_EQ(kind, ExtractorKind::kComiRecDr);
  EXPECT_TRUE(ExtractorKindFromName("ComiRec-SA", &kind, &error));
  EXPECT_EQ(kind, ExtractorKind::kComiRecSa);
}

TEST(MsrModelTest, ExtractorKindFromNameRejectsTypos) {
  ExtractorKind kind = ExtractorKind::kMind;
  std::string error;
  EXPECT_FALSE(ExtractorKindFromName("cosmic-ray", &kind, &error));
  // The error lists every valid spelling so a CLI typo is self-correcting.
  EXPECT_NE(error.find("cosmic-ray"), std::string::npos);
  EXPECT_NE(error.find("MIND"), std::string::npos);
  EXPECT_NE(error.find("dr"), std::string::npos);
  EXPECT_NE(error.find("sa"), std::string::npos);
  EXPECT_EQ(kind, ExtractorKind::kMind);  // untouched on failure
  // A null error sink is allowed.
  EXPECT_FALSE(ExtractorKindFromName("nope", &kind, nullptr));
}

}  // namespace
}  // namespace imsr::models
