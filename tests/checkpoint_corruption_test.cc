// Corruption-injection tests for the crash-safe checkpoint subsystem: no
// corrupt input — truncation at any byte, bit-flips anywhere, mismatched
// model shapes — may abort the process or mutate the destination state;
// every failure must surface as LoadCheckpoint() == false with a
// descriptive error. Also covers v1 compatibility, atomic-save semantics
// and --keep_checkpoints rotation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "nn/tensor.h"
#include "util/rng.h"
#include "util/serialization.h"

namespace imsr::core {
namespace {

models::ModelConfig TinyConfig(
    models::ExtractorKind kind = models::ExtractorKind::kComiRecDr) {
  models::ModelConfig config;
  config.kind = kind;
  config.embedding_dim = 8;
  config.attention_dim = 6;
  return config;
}

constexpr int64_t kNumItems = 40;

// A small trained-looking state: deterministic model parameters plus a
// store with heterogeneous interest counts and birth spans.
void FillState(models::MsrModel* model, InterestStore* store) {
  util::Rng rng(9);
  for (data::UserId user = 0; user < 5; ++user) {
    const int64_t k = 2 + user % 3;
    store->Initialize(user, k, model->config().embedding_dim, 0, rng);
    store->Append(user,
                  nn::Tensor::Randn({1, model->config().embedding_dim}, rng),
                  /*span=*/user % 2 + 1);
    model->extractor().EnsureUserCapacity(user, k + 1, rng, nullptr);
  }
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in));
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out));
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return static_cast<bool>(in);
}

// The destination state a failed load must never touch.
struct Fingerprint {
  nn::Tensor embeddings;
  size_t store_users;

  static Fingerprint Of(const models::MsrModel& model,
                        const InterestStore& store) {
    return {model.embeddings().parameter().value().Clone(),
            store.num_users()};
  }

  void ExpectUnchanged(const models::MsrModel& model,
                       const InterestStore& store,
                       const std::string& context) const {
    EXPECT_EQ(nn::MaxAbsDiff(embeddings,
                             model.embeddings().parameter().value()),
              0.0f)
        << context;
    EXPECT_EQ(store.num_users(), store_users) << context;
  }
};

class CheckpointCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/imsr_ckpt_corruption_test.bin";
    source_ = std::make_unique<models::MsrModel>(TinyConfig(), kNumItems, 1);
    source_store_ = std::make_unique<InterestStore>();
    FillState(source_.get(), source_store_.get());
    std::string error;
    ASSERT_TRUE(SaveCheckpoint(path_, *source_, *source_store_,
                               {3, "corruption test"}, &error))
        << error;
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 100u);
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
    for (int i = 1; i <= 3; ++i) {
      std::remove((path_ + "." + std::to_string(i)).c_str());
    }
  }

  std::string path_;
  std::unique_ptr<models::MsrModel> source_;
  std::unique_ptr<InterestStore> source_store_;
  std::vector<uint8_t> bytes_;
};

TEST_F(CheckpointCorruptionTest, TruncationAtEveryByteFailsCleanly) {
  models::MsrModel destination(TinyConfig(), kNumItems, 7);
  InterestStore destination_store;
  const Fingerprint fingerprint =
      Fingerprint::Of(destination, destination_store);
  for (size_t length = 0; length < bytes_.size(); ++length) {
    WriteFileBytes(path_, std::vector<uint8_t>(bytes_.begin(),
                                               bytes_.begin() + length));
    std::string error;
    CheckpointMetadata metadata;
    ASSERT_FALSE(LoadCheckpoint(path_, &destination, &destination_store,
                                &metadata, &error))
        << "truncation at byte " << length << " was accepted";
    ASSERT_FALSE(error.empty()) << "no error for truncation at " << length;
    fingerprint.ExpectUnchanged(destination, destination_store,
                                "truncation at byte " +
                                    std::to_string(length));
  }
}

TEST_F(CheckpointCorruptionTest, BitFlipsAnywhereAreDetected) {
  models::MsrModel destination(TinyConfig(), kNumItems, 7);
  InterestStore destination_store;
  const Fingerprint fingerprint =
      Fingerprint::Of(destination, destination_store);
  for (size_t offset = 0; offset < bytes_.size(); offset += 3) {
    std::vector<uint8_t> corrupted = bytes_;
    corrupted[offset] ^= static_cast<uint8_t>(1u << (offset % 8));
    WriteFileBytes(path_, corrupted);
    std::string error;
    ASSERT_FALSE(LoadCheckpoint(path_, &destination, &destination_store,
                                nullptr, &error))
        << "bit flip at byte " << offset << " was accepted";
    ASSERT_FALSE(error.empty());
    fingerprint.ExpectUnchanged(destination, destination_store,
                                "bit flip at byte " +
                                    std::to_string(offset));
  }
}

TEST_F(CheckpointCorruptionTest, MismatchedShapesAreRejectedDescriptively) {
  {
    models::ModelConfig wide = TinyConfig();
    wide.embedding_dim = 16;
    models::MsrModel destination(wide, kNumItems, 7);
    InterestStore destination_store;
    const Fingerprint fingerprint =
        Fingerprint::Of(destination, destination_store);
    std::string error;
    EXPECT_FALSE(LoadCheckpoint(path_, &destination, &destination_store,
                                nullptr, &error));
    EXPECT_NE(error.find("mismatch"), std::string::npos) << error;
    fingerprint.ExpectUnchanged(destination, destination_store,
                                "wrong embedding dim");
  }
  {
    models::MsrModel destination(TinyConfig(), kNumItems + 5, 7);
    InterestStore destination_store;
    std::string error;
    EXPECT_FALSE(LoadCheckpoint(path_, &destination, &destination_store,
                                nullptr, &error));
    EXPECT_NE(error.find("item count mismatch"), std::string::npos)
        << error;
  }
  {
    models::MsrModel destination(
        TinyConfig(models::ExtractorKind::kComiRecSa), kNumItems, 7);
    InterestStore destination_store;
    std::string error;
    EXPECT_FALSE(LoadCheckpoint(path_, &destination, &destination_store,
                                nullptr, &error));
    EXPECT_NE(error.find("extractor kind mismatch"), std::string::npos)
        << error;
  }
}

TEST_F(CheckpointCorruptionTest, GarbageAndEmptyFilesAreRejected) {
  models::MsrModel destination(TinyConfig(), kNumItems, 7);
  InterestStore destination_store;
  std::string error;

  WriteFileBytes(path_, {});
  EXPECT_FALSE(LoadCheckpoint(path_, &destination, &destination_store,
                              nullptr, &error));
  EXPECT_FALSE(error.empty());

  util::Rng rng(4);
  std::vector<uint8_t> garbage(4096);
  for (auto& byte : garbage) {
    byte = static_cast<uint8_t>(rng.NextUint64());
  }
  WriteFileBytes(path_, garbage);
  error.clear();
  EXPECT_FALSE(LoadCheckpoint(path_, &destination, &destination_store,
                              nullptr, &error));
  EXPECT_NE(error.find("not an IMSR checkpoint"), std::string::npos)
      << error;
}

// Writes the legacy v1 layout byte-for-byte (magic | span | note | model |
// store — no framing, no checksum) and checks it still loads.
TEST_F(CheckpointCorruptionTest, V1CheckpointsRemainLoadable) {
  util::BinaryWriter writer;
  writer.WriteString("imsr-checkpoint-v1");
  writer.WriteInt64(2);
  writer.WriteString("legacy");
  source_->Save(&writer);
  source_store_->Save(&writer);
  ASSERT_TRUE(writer.WriteToFile(path_));

  models::MsrModel destination(TinyConfig(), kNumItems, 7);
  InterestStore destination_store;
  CheckpointMetadata metadata;
  std::string error;
  ASSERT_TRUE(LoadCheckpoint(path_, &destination, &destination_store,
                             &metadata, &error))
      << error;
  EXPECT_EQ(metadata.trained_through_span, 2);
  EXPECT_EQ(metadata.note, "legacy");
  EXPECT_EQ(nn::MaxAbsDiff(source_->embeddings().parameter().value(),
                           destination.embeddings().parameter().value()),
            0.0f);
  EXPECT_EQ(destination_store.num_users(), source_store_->num_users());

  // ...and a v1 -> v2 round trip: re-saving writes v2, which loads back.
  ASSERT_TRUE(SaveCheckpoint(path_, destination, destination_store,
                             metadata, &error))
      << error;
  util::BinaryReader reader({});
  ASSERT_TRUE(util::BinaryReader::ReadFromFile(path_, &reader));
  EXPECT_EQ(reader.ReadString(), "imsr-checkpoint-v2");
  models::MsrModel again(TinyConfig(), kNumItems, 8);
  InterestStore again_store;
  ASSERT_TRUE(
      LoadCheckpoint(path_, &again, &again_store, &metadata, &error))
      << error;
  EXPECT_EQ(metadata.note, "legacy");
}

TEST_F(CheckpointCorruptionTest, V1TruncationFailsCleanlyToo) {
  util::BinaryWriter writer;
  writer.WriteString("imsr-checkpoint-v1");
  writer.WriteInt64(2);
  writer.WriteString("legacy");
  source_->Save(&writer);
  source_store_->Save(&writer);
  const std::vector<uint8_t>& v1 = writer.buffer();

  models::MsrModel destination(TinyConfig(), kNumItems, 7);
  InterestStore destination_store;
  const Fingerprint fingerprint =
      Fingerprint::Of(destination, destination_store);
  for (size_t length = 0; length < v1.size(); length += 5) {
    WriteFileBytes(path_,
                   std::vector<uint8_t>(v1.begin(), v1.begin() + length));
    std::string error;
    ASSERT_FALSE(LoadCheckpoint(path_, &destination, &destination_store,
                                nullptr, &error))
        << "v1 truncation at byte " << length << " was accepted";
    ASSERT_FALSE(error.empty());
    fingerprint.ExpectUnchanged(destination, destination_store,
                                "v1 truncation at byte " +
                                    std::to_string(length));
  }
}

TEST_F(CheckpointCorruptionTest, SaveIsAtomicAndSurvivesStaleTmp) {
  // A successful save leaves no tmp file behind.
  EXPECT_FALSE(FileExists(path_ + ".tmp"));

  // A crash between writing the tmp file and the rename (kill -9) leaves a
  // stale/partial tmp next to an intact previous checkpoint.
  WriteFileBytes(path_ + ".tmp", {0xde, 0xad, 0xbe, 0xef});
  models::MsrModel destination(TinyConfig(), kNumItems, 7);
  InterestStore destination_store;
  std::string error;
  ASSERT_TRUE(LoadCheckpoint(path_, &destination, &destination_store,
                             nullptr, &error))
      << error;

  // The next save replaces the stale tmp and still lands atomically.
  ASSERT_TRUE(SaveCheckpoint(path_, *source_, *source_store_, {4, "next"},
                             &error))
      << error;
  EXPECT_FALSE(FileExists(path_ + ".tmp"));
  CheckpointMetadata metadata;
  ASSERT_TRUE(LoadCheckpoint(path_, &destination, &destination_store,
                             &metadata, &error))
      << error;
  EXPECT_EQ(metadata.trained_through_span, 4);
}

TEST_F(CheckpointCorruptionTest, SaveToUnwritablePathReportsError) {
  std::string error;
  EXPECT_FALSE(SaveCheckpoint("/nonexistent-dir/ckpt.bin", *source_,
                              *source_store_, {0, ""}, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(CheckpointCorruptionTest, RotationKeepsPreviousGenerations) {
  // Generation 1 is on disk from SetUp; write generations 2 and 3 with
  // rotation, then corrupt the live file — generation 2 must still load.
  RotateCheckpoints(path_, 2);
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path_, *source_, *source_store_, {2, "gen2"},
                             &error))
      << error;
  RotateCheckpoints(path_, 2);
  ASSERT_TRUE(SaveCheckpoint(path_, *source_, *source_store_, {3, "gen3"},
                             &error))
      << error;
  EXPECT_TRUE(FileExists(path_));
  EXPECT_TRUE(FileExists(path_ + ".1"));
  EXPECT_TRUE(FileExists(path_ + ".2"));
  EXPECT_FALSE(FileExists(path_ + ".3"));

  WriteFileBytes(path_, {1, 2, 3});
  models::MsrModel destination(TinyConfig(), kNumItems, 7);
  InterestStore destination_store;
  CheckpointMetadata metadata;
  EXPECT_FALSE(LoadCheckpoint(path_, &destination, &destination_store,
                              &metadata, &error));
  ASSERT_TRUE(LoadCheckpoint(path_ + ".1", &destination,
                             &destination_store, &metadata, &error))
      << error;
  EXPECT_EQ(metadata.note, "gen2");
  ASSERT_TRUE(LoadCheckpoint(path_ + ".2", &destination,
                             &destination_store, &metadata, &error))
      << error;
  EXPECT_EQ(metadata.note, "corruption test");
}

// Bit-flip and truncation robustness for the self-attention model, whose
// checkpoint carries per-user query matrices (the trickiest section).
TEST(CheckpointCorruptionSaTest, SelfAttentionCorruptionFailsCleanly) {
  const std::string path = "/tmp/imsr_ckpt_corruption_sa_test.bin";
  models::MsrModel model(TinyConfig(models::ExtractorKind::kComiRecSa),
                         kNumItems, 1);
  InterestStore store;
  FillState(&model, &store);
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(path, model, store, {1, "sa"}, &error))
      << error;
  const std::vector<uint8_t> bytes = ReadFileBytes(path);

  models::MsrModel destination(
      TinyConfig(models::ExtractorKind::kComiRecSa), kNumItems, 7);
  InterestStore destination_store;
  for (size_t offset = 0; offset < bytes.size(); offset += 11) {
    std::vector<uint8_t> corrupted = bytes;
    corrupted[offset] ^= 0x40;
    WriteFileBytes(path, corrupted);
    ASSERT_FALSE(LoadCheckpoint(path, &destination, &destination_store,
                                nullptr, &error))
        << "bit flip at byte " << offset << " was accepted";
  }
  for (size_t length = 0; length < bytes.size(); length += 7) {
    WriteFileBytes(path, std::vector<uint8_t>(bytes.begin(),
                                              bytes.begin() + length));
    ASSERT_FALSE(LoadCheckpoint(path, &destination, &destination_store,
                                nullptr, &error))
        << "truncation at byte " << length << " was accepted";
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace imsr::core
