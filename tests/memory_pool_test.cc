// Tests for the zero-allocation training memory subsystem: the
// size-class buffer pool (util/buffer_pool.h), the graph arena
// (nn/arena.h), and the end-to-end allocation-regression guarantee that
// a steady-state ImsrTrainer::TrainEpoch step touches neither the pool's
// miss path nor the heap.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "core/imsr_trainer.h"
#include "data/synthetic.h"
#include "models/msr_model.h"
#include "nn/arena.h"
#include "nn/tensor.h"
#include "util/buffer_pool.h"
#include "util/thread_pool.h"

// ---------------------------------------------------------------------------
// Counting global operator new/delete. Every heap allocation made by this
// binary passes through here; the steady-state test asserts the counter
// stays flat across a TrainEpoch call. Under ASan/TSan the sanitizer
// runtime owns the allocator and the strict zero-allocation assertions
// are skipped (the pool-miss assertions still run).
// ---------------------------------------------------------------------------

namespace {

std::atomic<uint64_t> g_heap_allocations{0};

uint64_t HeapAllocations() {
  return g_heap_allocations.load(std::memory_order_relaxed);
}

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define IMSR_HEAP_COUNTING_UNRELIABLE 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define IMSR_HEAP_COUNTING_UNRELIABLE 1
#endif
#endif

bool HeapCountingReliable() {
#if defined(IMSR_HEAP_COUNTING_UNRELIABLE)
  return false;
#else
  return true;
#endif
}

#if !defined(IMSR_HEAP_COUNTING_UNRELIABLE)
void* CountedAlloc(size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* CountedAlignedAlloc(size_t size, size_t alignment) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  void* ptr = nullptr;
  if (posix_memalign(&ptr, alignment, size == 0 ? alignment : size) != 0) {
    throw std::bad_alloc();
  }
  return ptr;
}
#endif  // !IMSR_HEAP_COUNTING_UNRELIABLE

}  // namespace

#if !defined(IMSR_HEAP_COUNTING_UNRELIABLE)
void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<size_t>(align));
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
#endif  // !IMSR_HEAP_COUNTING_UNRELIABLE

namespace imsr {
namespace {

// --------------------------- buffer pool ----------------------------------

TEST(BufferPoolTest, RoundTripWithinClassIsAHit) {
  if (!util::PoolCompiledIn()) GTEST_SKIP() << "pool compiled out";
  util::SetPoolEnabled(true);
  util::DrainLocalPool();

  const util::BufferPoolStats before = util::LocalPoolStats();
  std::vector<float> buffer = util::AcquireBuffer(100);
  EXPECT_EQ(buffer.size(), 100u);
  EXPECT_GE(buffer.capacity(), 128u);  // rounded up to the 128-float class
  const float* data = buffer.data();
  util::ReleaseBuffer(std::move(buffer));

  // Any size in the same class reuses the cached buffer without
  // reallocating: same storage, hit counted, nothing dropped.
  std::vector<float> again = util::AcquireBuffer(128);
  const util::BufferPoolStats after = util::LocalPoolStats();
  EXPECT_EQ(again.data(), data);
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses + 1);  // only the first acquire
  EXPECT_EQ(after.releases, before.releases + 1);
  util::ReleaseBuffer(std::move(again));
}

TEST(BufferPoolTest, SmallerRequestInSameClassDoesNotReallocate) {
  if (!util::PoolCompiledIn()) GTEST_SKIP() << "pool compiled out";
  util::SetPoolEnabled(true);
  util::DrainLocalPool();

  std::vector<float> buffer = util::AcquireBuffer(1000);  // 1024 class
  const float* data = buffer.data();
  util::ReleaseBuffer(std::move(buffer));
  // 600 rounds up to the 1024-float class, so the cached buffer serves it.
  std::vector<float> again = util::AcquireBuffer(600);
  EXPECT_EQ(again.data(), data);
  EXPECT_EQ(again.size(), 600u);
  util::ReleaseBuffer(std::move(again));
}

TEST(BufferPoolTest, DistinctClassesDoNotShareBuffers) {
  if (!util::PoolCompiledIn()) GTEST_SKIP() << "pool compiled out";
  util::SetPoolEnabled(true);
  util::DrainLocalPool();

  std::vector<float> small = util::AcquireBuffer(64);
  util::ReleaseBuffer(std::move(small));
  const util::BufferPoolStats before = util::LocalPoolStats();
  // A request two classes up cannot be served by the cached 64-float
  // buffer; it must miss.
  std::vector<float> large = util::AcquireBuffer(4096);
  const util::BufferPoolStats after = util::LocalPoolStats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits);
  util::ReleaseBuffer(std::move(large));
}

TEST(BufferPoolTest, ZeroedAcquireClearsRecycledContents) {
  if (!util::PoolCompiledIn()) GTEST_SKIP() << "pool compiled out";
  util::SetPoolEnabled(true);
  util::DrainLocalPool();

  std::vector<float> dirty = util::AcquireBuffer(256);
  for (float& v : dirty) v = 3.5f;
  util::ReleaseBuffer(std::move(dirty));
  const std::vector<float> clean = util::AcquireZeroedBuffer(256);
  for (float v : clean) EXPECT_EQ(v, 0.0f);
}

TEST(BufferPoolTest, FreeListsAreThreadLocal) {
  if (!util::PoolCompiledIn()) GTEST_SKIP() << "pool compiled out";
  util::SetPoolEnabled(true);
  util::DrainLocalPool();

  // Seed this thread's pool with one cached buffer.
  util::ReleaseBuffer(util::AcquireBuffer(512));
  const uint64_t main_hits = util::LocalPoolStats().hits;

  // A fresh thread starts with an empty pool: same-class acquire misses,
  // and its release caches the buffer locally (invisible here).
  util::BufferPoolStats worker_stats;
  std::thread worker([&] {
    util::ReleaseBuffer(util::AcquireBuffer(512));
    worker_stats = util::LocalPoolStats();
  });
  worker.join();
  EXPECT_EQ(worker_stats.hits, 0u);
  EXPECT_EQ(worker_stats.misses, 1u);
  EXPECT_EQ(worker_stats.releases, 1u);

  // This thread's cached buffer is still here and its stats unaffected.
  EXPECT_EQ(util::LocalPoolStats().hits, main_hits);
  std::vector<float> reused = util::AcquireBuffer(512);
  EXPECT_EQ(util::LocalPoolStats().hits, main_hits + 1);
  util::ReleaseBuffer(std::move(reused));
}

TEST(BufferPoolTest, DisabledPoolFallsBackToPlainVectors) {
  if (!util::PoolCompiledIn()) GTEST_SKIP() << "pool compiled out";
  util::SetPoolEnabled(true);
  util::DrainLocalPool();
  util::ReleaseBuffer(util::AcquireBuffer(256));  // cache one buffer

  util::SetPoolEnabled(false);
  const util::BufferPoolStats before = util::LocalPoolStats();
  std::vector<float> buffer = util::AcquireBuffer(256);
  // Fresh vector semantics: exact size, zero-filled, no pool traffic.
  EXPECT_EQ(buffer.size(), 256u);
  for (float v : buffer) EXPECT_EQ(v, 0.0f);
  util::ReleaseBuffer(std::move(buffer));
  const util::BufferPoolStats after = util::LocalPoolStats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.releases, before.releases);
  util::SetPoolEnabled(true);
}

TEST(BufferPoolTest, DrainEmptiesTheCache) {
  if (!util::PoolCompiledIn()) GTEST_SKIP() << "pool compiled out";
  util::SetPoolEnabled(true);
  util::ReleaseBuffer(util::AcquireBuffer(256));
  EXPECT_GT(util::LocalPoolStats().bytes_cached, 0u);
  util::DrainLocalPool();
  EXPECT_EQ(util::LocalPoolStats().bytes_cached, 0u);
  const util::BufferPoolStats before = util::LocalPoolStats();
  util::ReleaseBuffer(util::AcquireBuffer(256));
  EXPECT_EQ(util::LocalPoolStats().misses, before.misses + 1);
}

TEST(BufferPoolTest, TensorStorageRoundTripsThroughThePool) {
  if (!util::PoolCompiledIn()) GTEST_SKIP() << "pool compiled out";
  util::SetPoolEnabled(true);
  util::DrainLocalPool();

  { nn::Tensor warm({32, 32}); }  // populate the class
  const util::BufferPoolStats before = util::LocalPoolStats();
  for (int i = 0; i < 10; ++i) {
    nn::Tensor tensor({32, 32});
    tensor.Fill(1.0f);
  }
  const util::BufferPoolStats after = util::LocalPoolStats();
  EXPECT_EQ(after.hits, before.hits + 10);
  EXPECT_EQ(after.misses, before.misses);
}

// ------------------------------ arena -------------------------------------

TEST(GraphArenaTest, ResetRecyclesBlocks) {
  nn::GraphArena arena(/*block_bytes=*/1024);
  void* first = arena.Allocate(128, 16);
  ASSERT_NE(first, nullptr);
  arena.Deallocate(first, 128);
  arena.Reset();
  // Same block is reused: the next allocation lands where the first did.
  void* second = arena.Allocate(128, 16);
  EXPECT_EQ(second, first);
  arena.Deallocate(second, 128);
}

TEST(GraphArenaTest, ResetDefersWhileAllocationsLive) {
  nn::GraphArena arena(/*block_bytes=*/1024);
  void* live = arena.Allocate(64, 16);
  void* dead = arena.Allocate(64, 16);
  arena.Deallocate(dead, 64);
  arena.Reset();  // deferred: `live` still out
  EXPECT_EQ(arena.live_allocations(), 1u);
  // The deferred reset must not have recycled the live slot.
  void* next = arena.Allocate(64, 16);
  EXPECT_NE(next, live);
  arena.Deallocate(next, 64);
  arena.Deallocate(live, 64);  // completes the pending reset
  EXPECT_EQ(arena.live_allocations(), 0u);
  void* fresh = arena.Allocate(64, 16);
  EXPECT_EQ(fresh, live);  // rewound to the block start
  arena.Deallocate(fresh, 64);
}

TEST(GraphArenaTest, HighWaterTracksPeakUsage) {
  nn::GraphArena arena(/*block_bytes=*/4096);
  EXPECT_EQ(arena.high_water_bytes(), 0u);
  void* a = arena.Allocate(256, 16);
  void* b = arena.Allocate(256, 16);
  const size_t peak = arena.high_water_bytes();
  EXPECT_GE(peak, 512u);
  arena.Deallocate(a, 256);
  arena.Deallocate(b, 256);
  arena.Reset();
  void* c = arena.Allocate(64, 16);
  EXPECT_EQ(arena.high_water_bytes(), peak);  // peak survives the reset
  arena.Deallocate(c, 64);
}

TEST(GraphArenaTest, SteadyStateStopsGrowingCapacity) {
  nn::GraphArena arena;
  for (int step = 0; step < 4; ++step) {
    std::vector<std::pair<void*, size_t>> slots;
    for (int i = 0; i < 100; ++i) {
      slots.emplace_back(arena.Allocate(192, 16), 192);
    }
    for (auto [ptr, bytes] : slots) arena.Deallocate(ptr, bytes);
    arena.Reset();
  }
  const size_t warmed = arena.capacity_bytes();
  for (int step = 0; step < 4; ++step) {
    std::vector<std::pair<void*, size_t>> slots;
    for (int i = 0; i < 100; ++i) {
      slots.emplace_back(arena.Allocate(192, 16), 192);
    }
    for (auto [ptr, bytes] : slots) arena.Deallocate(ptr, bytes);
    arena.Reset();
  }
  EXPECT_EQ(arena.capacity_bytes(), warmed);
}

// --------------------- steady-state training step --------------------------

core::TrainConfig RegressionTrainConfig() {
  core::TrainConfig config;
  config.pretrain_epochs = 1;
  config.epochs = 1;
  config.batch_size = 16;
  config.negatives = 5;
  config.initial_interests = 3;
  config.enable_expansion = false;
  config.seed = 11;
  return config;
}

// The tentpole guarantee: once warm, a TrainEpoch neither misses the
// buffer pool nor (in non-sanitizer builds) touches the heap. Run
// single-threaded so the kernels take ParallelFor's inline path — the
// dispatched path shares one heap-allocated control block per region,
// which is not steady-state tensor churn.
TEST(AllocationRegressionTest, SteadyStateTrainEpochIsAllocationFree) {
  if (!util::PoolCompiledIn() || !util::PoolEnabled()) {
    GTEST_SKIP() << "pool disabled";
  }
  const int previous_threads = util::GlobalThreadCount();
  util::SetGlobalThreadCount(1);

  data::SyntheticConfig data_config;
  data_config.name = "alloc";
  data_config.num_users = 12;
  data_config.num_items = 120;
  data_config.num_categories = 6;
  data_config.pretrain_interactions_per_user = 24;
  data_config.span_interactions_per_user = 8;
  data_config.min_interactions = 5;
  data_config.seed = 31;
  const data::SyntheticDataset synthetic =
      data::GenerateSynthetic(data_config);
  const data::Dataset& dataset = *synthetic.dataset;

  models::ModelConfig model_config;
  model_config.kind = models::ExtractorKind::kComiRecDr;
  model_config.embedding_dim = 16;
  model_config.attention_dim = 12;
  models::MsrModel model(model_config, dataset.num_items(), 1);
  core::InterestStore store;
  core::ImsrTrainer trainer(&model, &store, RegressionTrainConfig());
  trainer.EnsureUserState(dataset, 0);
  const std::vector<data::TrainingSample> samples =
      data::BuildSpanSamples(dataset, 0, trainer.config().max_history);
  ASSERT_FALSE(samples.empty());

  // Warm-up: grows the pool, the arena, Adam state, scratch buffers and
  // the obs metric registrations to their steady-state footprint.
  trainer.TrainEpoch(samples, nullptr);
  trainer.TrainEpoch(samples, nullptr);

  const util::BufferPoolStats before = util::LocalPoolStats();
  const uint64_t heap_before = HeapAllocations();
  trainer.TrainEpoch(samples, nullptr);
  const uint64_t heap_delta = HeapAllocations() - heap_before;
  const util::BufferPoolStats after = util::LocalPoolStats();

  EXPECT_EQ(after.misses, before.misses) << "steady-state pool misses";
  EXPECT_EQ(after.dropped, before.dropped) << "steady-state pool drops";
  EXPECT_GT(after.hits, before.hits);  // the step really used the pool
  if (HeapCountingReliable()) {
    EXPECT_EQ(heap_delta, 0u) << "heap allocations in a steady-state epoch";
  }

  util::SetGlobalThreadCount(previous_threads);
}

}  // namespace
}  // namespace imsr
