// Tests for the controllable diversity re-ranking module and the
// parallel evaluation helper.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "models/diversity.h"
#include "util/parallel.h"

namespace imsr {
namespace {

using Candidates = std::vector<std::pair<data::ItemId, float>>;

TEST(DiversityTest, LambdaZeroKeepsScoreOrder) {
  const Candidates candidates = {{0, 5.0f}, {1, 4.0f}, {2, 3.0f},
                                 {3, 2.0f}};
  const std::vector<int> categories = {0, 0, 0, 0};
  models::DiversityConfig config;
  config.lambda = 0.0;
  config.top_n = 3;
  const Candidates picked =
      models::ControllableRerank(candidates, categories, config);
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked[0].first, 0);
  EXPECT_EQ(picked[1].first, 1);
  EXPECT_EQ(picked[2].first, 2);
}

TEST(DiversityTest, LambdaPromotesNewCategories) {
  // Items 0,1 share category 0; item 2 is category 1 with a lower score.
  const Candidates candidates = {{0, 5.0f}, {1, 4.9f}, {2, 4.5f}};
  const std::vector<int> categories = {0, 0, 1};
  models::DiversityConfig config;
  config.lambda = 1.0;  // category bonus outweighs the 0.4 score gap
  config.top_n = 2;
  const Candidates picked =
      models::ControllableRerank(candidates, categories, config);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0].first, 0);
  EXPECT_EQ(picked[1].first, 2);  // jumps ahead of item 1
}

TEST(DiversityTest, DiversityIncreasesWithLambda) {
  // Many near-tied items across 4 categories.
  Candidates candidates;
  std::vector<int> categories;
  for (int i = 0; i < 20; ++i) {
    candidates.push_back(
        {i, 5.0f - 0.01f * static_cast<float>(i % 5)});
    categories.push_back(i < 12 ? 0 : i % 4);
  }
  models::DiversityConfig plain;
  plain.lambda = 0.0;
  plain.top_n = 8;
  models::DiversityConfig diverse;
  diverse.lambda = 0.5;
  diverse.top_n = 8;
  const double d0 = models::ListDiversity(
      models::ControllableRerank(candidates, categories, plain),
      categories);
  const double d1 = models::ListDiversity(
      models::ControllableRerank(candidates, categories, diverse),
      categories);
  EXPECT_GE(d1, d0);
}

TEST(DiversityTest, HandlesShortCandidateLists) {
  const Candidates candidates = {{0, 1.0f}};
  const std::vector<int> categories = {0};
  models::DiversityConfig config;
  config.top_n = 10;
  const Candidates picked =
      models::ControllableRerank(candidates, categories, config);
  EXPECT_EQ(picked.size(), 1u);
  EXPECT_EQ(models::ListDiversity(picked, categories), 0.0);
}

TEST(DiversityTest, ListDiversityValues) {
  const std::vector<int> categories = {0, 0, 1, 2};
  const Candidates all_same = {{0, 1.0f}, {1, 1.0f}};
  EXPECT_EQ(models::ListDiversity(all_same, categories), 0.0);
  const Candidates all_diff = {{1, 1.0f}, {2, 1.0f}, {3, 1.0f}};
  EXPECT_EQ(models::ListDiversity(all_diff, categories), 1.0);
}

TEST(ParallelTest, CoversRangeExactlyOnce) {
  for (int threads : {1, 2, 7}) {
    std::vector<std::atomic<int>> hits(100);
    util::ParallelChunks(100, threads, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
      }
    });
    for (const auto& hit : hits) {
      EXPECT_EQ(hit.load(), 1) << "threads=" << threads;
    }
  }
}

TEST(ParallelTest, EmptyRangeIsNoop) {
  bool called = false;
  util::ParallelChunks(0, 4, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelTest, MoreThreadsThanWork) {
  std::atomic<int> total{0};
  util::ParallelChunks(3, 16, [&](int64_t begin, int64_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ParallelTest, DefaultThreadCountPositive) {
  EXPECT_GE(util::DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace imsr
