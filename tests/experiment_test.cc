// End-to-end integration tests for the experiment runner.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "data/synthetic.h"

namespace imsr::core {
namespace {

data::SyntheticDataset SmallData() {
  data::SyntheticConfig config;
  config.name = "tiny";
  config.num_users = 35;
  config.num_items = 180;
  config.num_categories = 9;
  config.num_incremental_spans = 4;
  config.pretrain_interactions_per_user = 24;
  config.span_interactions_per_user = 9;
  config.min_interactions = 5;
  config.seed = 99;
  return data::GenerateSynthetic(config);
}

ExperimentConfig SmallExperiment(StrategyKind kind) {
  ExperimentConfig config;
  config.model.kind = models::ExtractorKind::kComiRecDr;
  config.model.embedding_dim = 16;
  config.strategy.kind = kind;
  config.strategy.train.pretrain_epochs = 3;
  config.strategy.train.epochs = 1;
  config.strategy.train.batch_size = 32;
  config.strategy.train.negatives = 5;
  config.strategy.train.initial_interests = 3;
  config.seed = 4;
  return config;
}

TEST(ExperimentTest, SpanStructureAndAverages) {
  const data::SyntheticDataset synthetic = SmallData();
  const ExperimentResult result = RunExperiment(
      *synthetic.dataset, SmallExperiment(StrategyKind::kFineTune));
  // Entry 0 = pretraining eval; entries 1..T-1 = incremental spans.
  ASSERT_EQ(result.spans.size(), 4u);  // pretrain + spans 1..3
  EXPECT_EQ(result.spans[0].trained_through_span, 0);
  EXPECT_EQ(result.spans[0].test_span, 1);
  EXPECT_EQ(result.spans.back().trained_through_span, 3);
  EXPECT_EQ(result.spans.back().test_span, 4);

  // The reported averages exclude the pretraining entry.
  double hr = 0.0;
  for (size_t i = 1; i < result.spans.size(); ++i) {
    hr += result.spans[i].hit_ratio;
  }
  EXPECT_NEAR(result.avg_hit_ratio, hr / 3.0, 1e-12);
}

TEST(ExperimentTest, LearnsBeyondChance) {
  const data::SyntheticDataset synthetic = SmallData();
  const ExperimentResult result = RunExperiment(
      *synthetic.dataset, SmallExperiment(StrategyKind::kImsr));
  // Chance HR@20 over 180 items is ~0.11; learned interests must beat it.
  EXPECT_GT(result.avg_hit_ratio, 0.15);
  for (const SpanMetrics& span : result.spans) {
    EXPECT_GT(span.evaluated_users, 0);
    EXPECT_GT(span.avg_interests, 0.0);
  }
}

TEST(ExperimentTest, DeterministicGivenSeed) {
  const data::SyntheticDataset synthetic = SmallData();
  const ExperimentConfig config = SmallExperiment(StrategyKind::kImsr);
  const ExperimentResult a = RunExperiment(*synthetic.dataset, config);
  const ExperimentResult b = RunExperiment(*synthetic.dataset, config);
  ASSERT_EQ(a.spans.size(), b.spans.size());
  for (size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.spans[i].hit_ratio, b.spans[i].hit_ratio);
    EXPECT_DOUBLE_EQ(a.spans[i].ndcg, b.spans[i].ndcg);
  }
  EXPECT_EQ(a.expansion.interests_added, b.expansion.interests_added);
}

TEST(ExperimentTest, SeedChangesRun) {
  const data::SyntheticDataset synthetic = SmallData();
  ExperimentConfig config = SmallExperiment(StrategyKind::kFineTune);
  const ExperimentResult a = RunExperiment(*synthetic.dataset, config);
  config.seed += 1;
  const ExperimentResult b = RunExperiment(*synthetic.dataset, config);
  bool any_difference = false;
  for (size_t i = 0; i < a.spans.size(); ++i) {
    any_difference |= a.spans[i].hit_ratio != b.spans[i].hit_ratio;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ExperimentTest, RepeatedRunAveragesSpanMetrics) {
  const data::SyntheticDataset synthetic = SmallData();
  const ExperimentConfig config = SmallExperiment(StrategyKind::kFineTune);
  const ExperimentResult single = RunExperiment(*synthetic.dataset, config);
  const ExperimentResult repeated =
      RunRepeatedExperiment(*synthetic.dataset, config, 2);
  ASSERT_EQ(repeated.spans.size(), single.spans.size());
  // The first repeat uses the same seed, so the average differs from the
  // single run only through the second repeat.
  ExperimentConfig second = config;
  second.seed = config.seed + 104729ULL;
  const ExperimentResult other = RunExperiment(*synthetic.dataset, second);
  EXPECT_NEAR(repeated.avg_hit_ratio,
              (single.avg_hit_ratio + other.avg_hit_ratio) / 2.0, 1e-9);
}

TEST(ExperimentTest, CollectRepeatedScoresShape) {
  const data::SyntheticDataset synthetic = SmallData();
  const RepeatedScores scores = CollectRepeatedScores(
      *synthetic.dataset, SmallExperiment(StrategyKind::kFineTune), 3);
  EXPECT_EQ(scores.hit_ratios.size(), 3u);
  EXPECT_EQ(scores.ndcgs.size(), 3u);
}

TEST(ExperimentTest, ImsrReportsExpansionWhileFtDoesNot) {
  const data::SyntheticDataset synthetic = SmallData();
  ExperimentConfig imsr = SmallExperiment(StrategyKind::kImsr);
  imsr.strategy.train.expansion.nid.c1 = 1e9;  // force expansion
  const ExperimentResult imsr_result =
      RunExperiment(*synthetic.dataset, imsr);
  EXPECT_GT(imsr_result.expansion.users_expanded, 0);

  const ExperimentResult ft_result = RunExperiment(
      *synthetic.dataset, SmallExperiment(StrategyKind::kFineTune));
  EXPECT_EQ(ft_result.expansion.users_expanded, 0);
}

TEST(ExperimentTest, TrainSecondsPopulated) {
  const data::SyntheticDataset synthetic = SmallData();
  const ExperimentResult result = RunExperiment(
      *synthetic.dataset, SmallExperiment(StrategyKind::kFineTune));
  for (const SpanMetrics& span : result.spans) {
    EXPECT_GT(span.train_seconds, 0.0);
  }
}

}  // namespace
}  // namespace imsr::core
