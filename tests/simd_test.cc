// SIMD/scalar equivalence suite for the vectorized nn kernels (see
// nn/simd.h for the two-class determinism contract):
//
//  * Order-preserving kernels (saxpy accumulation, elementwise maps,
//    optimizer updates) carry an unconditional `omp simd` annotation —
//    vectorization must not change a single bit, so they are compared
//    BITWISE against naive references written here with the identical
//    accumulation order.
//  * Reduction kernels (dots, sums of squares, softmax/logsumexp sums)
//    reorder additions when vectorized and therefore dispatch on
//    SimdEnabled(); the two paths are compared within a bounded
//    tolerance, and the scalar path is compared bitwise against a naive
//    reference (it must reproduce historical results exactly).
//
// Sizes sweep the SSE/AVX/AVX-512 lane boundaries (4/8/16) and odd
// tails; unaligned variants shift the spans off the allocation base.
// In an -DIMSR_SIMD=OFF build SetSimdEnabled(true) is clamped to off,
// so every comparison degenerates to scalar-vs-scalar and the suite
// still passes — the bitwise reference checks are the ones doing work
// there.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "nn/optim.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "nn/variable.h"
#include "util/rng.h"

namespace imsr {
namespace {

// Lane-boundary sweep: 1..65 crossing 4, 8, 16, 32 and 64 exactly and
// by one on either side.
const std::vector<int64_t> kSizes = {1,  3,  4,  7,  8,  15, 16,
                                     17, 31, 32, 33, 63, 64, 65};

// Restores the runtime SIMD flag on scope exit so test order never
// leaks state.
class SimdFlagGuard {
 public:
  SimdFlagGuard() : saved_(nn::SetSimdEnabled(nn::SimdEnabled())) {}
  ~SimdFlagGuard() { nn::SetSimdEnabled(saved_); }

 private:
  bool saved_;
};

float ReferenceDot(const float* a, const float* b, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// Tolerance for a reordered n-term float sum: proportional to the sum of
// term magnitudes (the classic reassociation error bound).
float DotTolerance(const float* a, const float* b, int64_t n) {
  float mass = 0.0f;
  for (int64_t i = 0; i < n; ++i) mass += std::fabs(a[i] * b[i]);
  return 2e-7f * static_cast<float>(n) * mass + 1e-30f;
}

std::vector<float> RandomVector(int64_t n, util::Rng& rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.NextGaussian();
  return v;
}

TEST(SimdTest, RuntimeFlagClampsToCompiledMode) {
  SimdFlagGuard guard;
  const bool was = nn::SetSimdEnabled(true);
  EXPECT_EQ(nn::SimdEnabled(), nn::SimdCompiledIn());
  nn::SetSimdEnabled(false);
  EXPECT_FALSE(nn::SimdEnabled());
  // SetSimdEnabled reports the previous state.
  EXPECT_FALSE(nn::SetSimdEnabled(was));
}

TEST(SimdTest, DotSpanScalarPathMatchesReferenceBitwise) {
  SimdFlagGuard guard;
  util::Rng rng(11);
  nn::SetSimdEnabled(false);
  for (int64_t n : kSizes) {
    const std::vector<float> a = RandomVector(n, rng);
    const std::vector<float> b = RandomVector(n, rng);
    EXPECT_EQ(nn::DotSpan(a.data(), b.data(), n),
              ReferenceDot(a.data(), b.data(), n))
        << "n=" << n;
  }
}

TEST(SimdTest, DotSpanOnOffWithinTolerance) {
  SimdFlagGuard guard;
  util::Rng rng(12);
  for (int64_t n : kSizes) {
    const std::vector<float> a = RandomVector(n, rng);
    const std::vector<float> b = RandomVector(n, rng);
    nn::SetSimdEnabled(true);
    const float simd = nn::DotSpan(a.data(), b.data(), n);
    nn::SetSimdEnabled(false);
    const float scalar = nn::DotSpan(a.data(), b.data(), n);
    EXPECT_NEAR(simd, scalar, DotTolerance(a.data(), b.data(), n))
        << "n=" << n;
  }
}

TEST(SimdTest, DotSpanUnalignedTails) {
  SimdFlagGuard guard;
  util::Rng rng(13);
  // Shift both spans 1..3 floats off the allocation base so the
  // vectorized loop sees misaligned loads in every lane configuration.
  for (int64_t offset = 1; offset <= 3; ++offset) {
    for (int64_t n : kSizes) {
      const std::vector<float> a = RandomVector(n + offset, rng);
      const std::vector<float> b = RandomVector(n + offset, rng);
      const float* pa = a.data() + offset;
      const float* pb = b.data() + offset;
      nn::SetSimdEnabled(true);
      const float simd = nn::DotSpan(pa, pb, n);
      nn::SetSimdEnabled(false);
      const float scalar = nn::DotSpan(pa, pb, n);
      EXPECT_NEAR(simd, scalar, DotTolerance(pa, pb, n))
          << "n=" << n << " offset=" << offset;
    }
  }
}

TEST(SimdTest, MatVecOnOffWithinTolerance) {
  SimdFlagGuard guard;
  util::Rng rng(14);
  for (int64_t k : kSizes) {
    const int64_t m = 5;
    const nn::Tensor a = nn::Tensor::Randn({m, k}, rng);
    const nn::Tensor x = nn::Tensor::Randn({k}, rng);
    nn::SetSimdEnabled(true);
    const nn::Tensor simd = nn::MatVec(a, x);
    nn::SetSimdEnabled(false);
    const nn::Tensor scalar = nn::MatVec(a, x);
    for (int64_t i = 0; i < m; ++i) {
      EXPECT_NEAR(simd.at(i), scalar.at(i),
                  DotTolerance(a.data() + i * k, x.data(), k))
          << "k=" << k << " row=" << i;
    }
  }
}

TEST(SimdTest, MatVecBatchMatchesPerRowMatVec) {
  SimdFlagGuard guard;
  util::Rng rng(15);
  nn::SetSimdEnabled(true);
  const nn::Tensor a = nn::Tensor::Randn({9, 33}, rng);
  const nn::Tensor xs = nn::Tensor::Randn({6, 33}, rng);
  const nn::Tensor batched = nn::MatVecBatch(a, xs);
  // Same inner kernels per row — agreement is within the reduction
  // tolerance (the 2x4 tile of MatMulTransB splits accumulators
  // differently from the single-row dot).
  for (int64_t r = 0; r < xs.size(0); ++r) {
    const nn::Tensor row = nn::MatVec(a, xs.Row(r));
    for (int64_t i = 0; i < a.size(0); ++i) {
      EXPECT_NEAR(batched.at(r, i), row.at(i),
                  DotTolerance(a.data() + i * 33, xs.data() + r * 33, 33));
    }
  }
}

TEST(SimdTest, MatMulTransBOnOffWithinTolerance) {
  SimdFlagGuard guard;
  util::Rng rng(16);
  for (int64_t k : kSizes) {
    // 5 x 7 output exercises the 2x4 tile plus both remainder edges.
    const nn::Tensor a = nn::Tensor::Randn({5, k}, rng);
    const nn::Tensor b = nn::Tensor::Randn({7, k}, rng);
    nn::SetSimdEnabled(true);
    const nn::Tensor simd = nn::MatMulTransB(a, b);
    nn::SetSimdEnabled(false);
    const nn::Tensor scalar = nn::MatMulTransB(a, b);
    for (int64_t i = 0; i < 5; ++i) {
      for (int64_t j = 0; j < 7; ++j) {
        EXPECT_NEAR(simd.at(i, j), scalar.at(i, j),
                    DotTolerance(a.data() + i * k, b.data() + j * k, k))
            << "k=" << k;
      }
    }
  }
}

TEST(SimdTest, L2NormOnOffWithinTolerance) {
  SimdFlagGuard guard;
  util::Rng rng(17);
  for (int64_t n : kSizes) {
    const nn::Tensor a = nn::Tensor::Randn({n}, rng);
    nn::SetSimdEnabled(true);
    const float simd = nn::L2NormFlat(a);
    nn::SetSimdEnabled(false);
    const float scalar = nn::L2NormFlat(a);
    EXPECT_NEAR(simd, scalar,
                2e-7f * static_cast<float>(n) * scalar + 1e-30f)
        << "n=" << n;
  }
}

TEST(SimdTest, SoftmaxOnOffWithinToleranceAndNormalised) {
  SimdFlagGuard guard;
  util::Rng rng(18);
  for (int64_t n : kSizes) {
    const nn::Tensor a = nn::Tensor::Randn({n}, rng);
    nn::SetSimdEnabled(true);
    const nn::Tensor simd = nn::Softmax(a);
    nn::SetSimdEnabled(false);
    const nn::Tensor scalar = nn::Softmax(a);
    float total = 0.0f;
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(simd.at(i), scalar.at(i), 1e-6f) << "n=" << n;
      total += simd.at(i);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f) << "n=" << n;
  }
}

TEST(SimdTest, LogSumExpRowsOnOffWithinTolerance) {
  SimdFlagGuard guard;
  util::Rng rng(19);
  for (int64_t n : kSizes) {
    const nn::Tensor a = nn::Tensor::Randn({3, n}, rng);
    nn::SetSimdEnabled(true);
    const nn::Tensor simd = nn::LogSumExpRows(a);
    nn::SetSimdEnabled(false);
    const nn::Tensor scalar = nn::LogSumExpRows(a);
    for (int64_t r = 0; r < 3; ++r) {
      EXPECT_NEAR(simd.at(r), scalar.at(r),
                  2e-7f * static_cast<float>(n) *
                          std::fabs(scalar.at(r)) +
                      1e-5f)
          << "n=" << n;
    }
  }
}

TEST(SimdTest, SquashRowsOnOffWithinTolerance) {
  SimdFlagGuard guard;
  util::Rng rng(20);
  for (int64_t n : kSizes) {
    const nn::Tensor a = nn::Tensor::Randn({4, n}, rng);
    nn::SetSimdEnabled(true);
    const nn::Tensor simd = nn::SquashRows(a);
    nn::SetSimdEnabled(false);
    const nn::Tensor scalar = nn::SquashRows(a);
    EXPECT_LE(nn::MaxAbsDiff(simd, scalar), 1e-5f) << "n=" << n;
  }
}

// ---- Order-preserving kernels: bitwise against same-order references ----

TEST(SimdTest, MatMulBitwiseMatchesSaxpyOrderReference) {
  util::Rng rng(21);
  for (int64_t k : kSizes) {
    const nn::Tensor a = nn::Tensor::Randn({9, k}, rng);
    const nn::Tensor b = nn::Tensor::Randn({k, 5}, rng);
    const nn::Tensor fast = nn::MatMul(a, b);
    // The panel kernel accumulates out(i, j) over ascending kk; so does
    // this reference — vectorizing across j must not change a bit.
    nn::Tensor reference({9, 5});
    for (int64_t i = 0; i < 9; ++i) {
      for (int64_t j = 0; j < 5; ++j) {
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) {
          acc += a.at(i, kk) * b.at(kk, j);
        }
        reference.at(i, j) = acc;
      }
    }
    EXPECT_EQ(nn::MaxAbsDiff(fast, reference), 0.0f) << "k=" << k;
  }
}

TEST(SimdTest, MatVecTransABitwiseMatchesSaxpyOrderReference) {
  util::Rng rng(22);
  for (int64_t k : kSizes) {
    const int64_t m = 7;
    const nn::Tensor a = nn::Tensor::Randn({m, k}, rng);
    const nn::Tensor x = nn::Tensor::Randn({m}, rng);
    const nn::Tensor fast = nn::MatVecTransA(a, x);
    nn::Tensor reference({k});
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < k; ++j) {
        reference.at(j) += x.at(i) * a.at(i, j);
      }
    }
    EXPECT_EQ(nn::MaxAbsDiff(fast, reference), 0.0f) << "k=" << k;
  }
}

TEST(SimdTest, MatMulTransABitwiseMatchesRankOneOrderReference) {
  util::Rng rng(23);
  for (int64_t n : kSizes) {
    const nn::Tensor a = nn::Tensor::Randn({6, 5}, rng);
    const nn::Tensor b = nn::Tensor::Randn({6, n}, rng);
    const nn::Tensor fast = nn::MatMulTransA(a, b);
    // Rank-1 updates over ascending r, vectorized across columns only.
    nn::Tensor reference({5, n});
    for (int64_t r = 0; r < 6; ++r) {
      for (int64_t i = 0; i < 5; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          reference.at(i, j) += a.at(r, i) * b.at(r, j);
        }
      }
    }
    EXPECT_EQ(nn::MaxAbsDiff(fast, reference), 0.0f) << "n=" << n;
  }
}

TEST(SimdTest, ElementwiseMutatorsBitwise) {
  util::Rng rng(24);
  for (int64_t n : kSizes) {
    const nn::Tensor a = nn::Tensor::Randn({n}, rng);
    const nn::Tensor b = nn::Tensor::Randn({n}, rng);
    nn::Tensor add = a;
    add.AddInPlace(b);
    nn::Tensor add_scaled = a;
    add_scaled.AddScaledInPlace(b, 0.37f);
    nn::Tensor scaled = a;
    scaled.ScaleInPlace(1.7f);
    const nn::Tensor mul = nn::Mul(a, b);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(add.at(i), a.at(i) + b.at(i));
      EXPECT_EQ(add_scaled.at(i), a.at(i) + 0.37f * b.at(i));
      EXPECT_EQ(scaled.at(i), a.at(i) * 1.7f);
      EXPECT_EQ(mul.at(i), a.at(i) * b.at(i));
    }
  }
}

TEST(SimdTest, TranscendentalMapsBitwise) {
  util::Rng rng(25);
  for (int64_t n : kSizes) {
    const nn::Tensor a = nn::Tensor::Randn({n}, rng);
    const nn::Tensor sig = nn::Sigmoid(a);
    const nn::Tensor tanh = nn::Tanh(a);
    const nn::Tensor exp = nn::Exp(a);
    // libm calls stay scalar inside the annotated loops (no vector-math
    // substitution without -fopenmp), so each element is the exact
    // scalar result.
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(sig.at(i), 1.0f / (1.0f + std::exp(-a.at(i))));
      EXPECT_EQ(tanh.at(i), std::tanh(a.at(i)));
      EXPECT_EQ(exp.at(i), std::exp(a.at(i)));
    }
  }
}

TEST(SimdTest, SgdStepBitwiseMatchesReference) {
  util::Rng rng(26);
  for (int64_t n : kSizes) {
    const nn::Tensor initial = nn::Tensor::Randn({n}, rng);
    const nn::Tensor grad = nn::Tensor::Randn({n}, rng);
    nn::Var parameter(initial, /*requires_grad=*/true);
    parameter.node()->AccumulateGrad(grad);
    nn::Sgd sgd(0.05f);
    sgd.Register(parameter);
    sgd.Step();
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(parameter.value().at(i),
                initial.at(i) - 0.05f * grad.at(i))
          << "n=" << n;
    }
  }
}

TEST(SimdTest, AdamStepBitwiseMatchesReference) {
  util::Rng rng(27);
  nn::Adam::Config config;
  for (int64_t n : kSizes) {
    const nn::Tensor initial = nn::Tensor::Randn({n}, rng);
    const nn::Tensor grad = nn::Tensor::Randn({n}, rng);
    nn::Var parameter(initial, /*requires_grad=*/true);
    parameter.node()->AccumulateGrad(grad);
    nn::Adam adam(config.learning_rate);
    adam.Register(parameter);
    adam.Step();
    const float bias1 = 1.0f - config.beta1;
    const float bias2 = 1.0f - config.beta2;
    for (int64_t i = 0; i < n; ++i) {
      // First step from zero state, same expression order as Adam::Step.
      const float m = (1.0f - config.beta1) * grad.at(i);
      const float v =
          (1.0f - config.beta2) * grad.at(i) * grad.at(i);
      const float m_hat = m / bias1;
      const float v_hat = v / bias2;
      const float expected =
          initial.at(i) -
          config.learning_rate * m_hat / (std::sqrt(v_hat) + config.epsilon);
      EXPECT_EQ(parameter.value().at(i), expected) << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace imsr
