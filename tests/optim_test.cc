// Tests for the optimisers (SGD, Adam) and initialisers.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace imsr::nn {
namespace {

TEST(SgdTest, SingleStepMatchesFormula) {
  Var w(Tensor::FromVector({2.0f, -1.0f}), true);
  // loss = w0^2 + w1^2 -> grad = 2w.
  ops::SumSquares(w).Backward();
  Sgd sgd(0.1f);
  sgd.Register(w);
  sgd.Step();
  EXPECT_FLOAT_EQ(w.value().at(0), 2.0f - 0.1f * 4.0f);
  EXPECT_FLOAT_EQ(w.value().at(1), -1.0f - 0.1f * -2.0f);
}

TEST(SgdTest, SkipsParametersWithoutGradients) {
  Var w(Tensor::FromVector({1.0f}), true);
  Sgd sgd(0.5f);
  sgd.Register(w);
  sgd.Step();  // no gradient accumulated
  EXPECT_FLOAT_EQ(w.value().at(0), 1.0f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Var w(Tensor::FromVector({5.0f, -3.0f}), true);
  Sgd sgd(0.2f);
  sgd.Register(w);
  for (int step = 0; step < 100; ++step) {
    sgd.ZeroGradAll();
    ops::SumSquares(w).Backward();
    sgd.Step();
  }
  EXPECT_NEAR(w.value().at(0), 0.0f, 1e-4f);
  EXPECT_NEAR(w.value().at(1), 0.0f, 1e-4f);
}

TEST(AdamTest, FirstStepHasLearningRateMagnitude) {
  // Adam's bias-corrected first step is ~lr * sign(grad).
  Var w(Tensor::FromVector({1.0f, -1.0f}), true);
  ops::SumSquares(w).Backward();
  Adam adam(0.01f);
  adam.Register(w);
  adam.Step();
  EXPECT_NEAR(w.value().at(0), 1.0f - 0.01f, 1e-4f);
  EXPECT_NEAR(w.value().at(1), -1.0f + 0.01f, 1e-4f);
}

TEST(AdamTest, ConvergesOnQuadraticWithShiftedMinimum) {
  // loss = sum (w - target)^2.
  const Tensor target = Tensor::FromVector({1.5f, -0.5f, 3.0f});
  Var w(Tensor::FromVector({0.0f, 0.0f, 0.0f}), true);
  Adam adam(0.1f);
  adam.Register(w);
  const Var target_const(target);
  for (int step = 0; step < 300; ++step) {
    adam.ZeroGradAll();
    ops::SumSquares(ops::Sub(w, target_const)).Backward();
    adam.Step();
  }
  EXPECT_LT(MaxAbsDiff(w.value(), target), 1e-2f);
}

TEST(AdamTest, RegisterIsIdempotent) {
  Var w(Tensor::FromVector({1.0f}), true);
  Adam adam(0.1f);
  adam.Register(w);
  adam.Register(w);
  EXPECT_EQ(adam.num_parameters(), 1u);
}

TEST(AdamTest, UnregisterStopsUpdatesAndDropsState) {
  Var w(Tensor::FromVector({1.0f}), true);
  Var v(Tensor::FromVector({2.0f}), true);
  Adam adam(0.1f);
  adam.Register(w);
  adam.Register(v);
  EXPECT_EQ(adam.num_parameters(), 2u);
  adam.Unregister(w);
  EXPECT_EQ(adam.num_parameters(), 1u);

  ops::Add(ops::SumSquares(w), ops::SumSquares(v)).Backward();
  adam.Step();
  EXPECT_FLOAT_EQ(w.value().at(0), 1.0f);  // untouched
  EXPECT_NE(v.value().at(0), 2.0f);
}

TEST(AdamTest, ZeroGradAllClearsEveryParameter) {
  Var w(Tensor::FromVector({1.0f}), true);
  Var v(Tensor::FromVector({2.0f}), true);
  Adam adam(0.1f);
  adam.Register(w);
  adam.Register(v);
  ops::Add(ops::SumSquares(w), ops::SumSquares(v)).Backward();
  EXPECT_TRUE(w.has_grad());
  adam.ZeroGradAll();
  EXPECT_FALSE(w.has_grad());
  EXPECT_FALSE(v.has_grad());
}

TEST(AdamTest, MomentumCarriesAcrossSteps) {
  // With a constant gradient direction, Adam's effective step stays
  // ~lr (per-coordinate normalisation), so after n steps the parameter
  // moved ~n*lr.
  Var w(Tensor::FromVector({10.0f}), true);
  Adam adam(0.05f);
  adam.Register(w);
  const Var direction(Tensor::FromVector({1.0f}));
  for (int step = 0; step < 20; ++step) {
    adam.ZeroGradAll();
    ops::Dot(w, direction).Backward();
    adam.Step();
  }
  EXPECT_NEAR(w.value().at(0), 10.0f - 20 * 0.05f, 0.05f);
}

TEST(InitTest, XavierUniformBounds) {
  util::Rng rng(1);
  const Tensor w = XavierUniform(30, 50, rng);
  const float bound = std::sqrt(6.0f / 80.0f);
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::fabs(w.data()[i]), bound);
  }
  // Not degenerate: spread over the interval.
  float min_value = 1.0f;
  float max_value = -1.0f;
  for (int64_t i = 0; i < w.numel(); ++i) {
    min_value = std::min(min_value, w.data()[i]);
    max_value = std::max(max_value, w.data()[i]);
  }
  EXPECT_LT(min_value, -0.5f * bound);
  EXPECT_GT(max_value, 0.5f * bound);
}

TEST(InitTest, EmbeddingInitVariance) {
  util::Rng rng(2);
  const int64_t dim = 64;
  const Tensor w = EmbeddingInit(500, dim, rng);
  double ss = 0.0;
  for (int64_t i = 0; i < w.numel(); ++i) {
    ss += static_cast<double>(w.data()[i]) * w.data()[i];
  }
  const double variance = ss / static_cast<double>(w.numel());
  EXPECT_NEAR(variance, 1.0 / static_cast<double>(dim), 0.002);
}

}  // namespace
}  // namespace imsr::nn
