// Tests for src/util: rng, math helpers, csv/table, flags, serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "util/csv.h"
#include "util/env.h"
#include "util/flags.h"
#include "util/lru_cache.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/serialization.h"
#include "util/shutdown.h"

namespace imsr::util {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(99);
  const int n = 20000;
  double sum = 0.0;
  double ss = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    ss += v * v;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NextBelowIsUnbiasedAcrossRange) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.NextBelow(10)];
  }
  for (int count : counts) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

TEST(RngTest, IntInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.IntInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(1);
  Rng forked = a.Fork();
  EXPECT_NE(a.NextUint64(), forked.NextUint64());
}

TEST(MathTest, LogSumExpMatchesNaive) {
  const std::vector<double> values = {0.5, -1.0, 2.0, 0.0};
  double naive = 0.0;
  for (double v : values) naive += std::exp(v);
  EXPECT_NEAR(LogSumExp(values), std::log(naive), 1e-12);
}

TEST(MathTest, LogSumExpStableForLargeInputs) {
  const std::vector<double> values = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(values), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, SoftmaxSumsToOne) {
  std::vector<double> values = {1.0, 2.0, 3.0};
  SoftmaxInPlace(values);
  EXPECT_NEAR(values[0] + values[1] + values[2], 1.0, 1e-12);
  EXPECT_LT(values[0], values[1]);
  EXPECT_LT(values[1], values[2]);
}

TEST(MathTest, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> z = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(MathTest, PearsonZeroVarianceReturnsZero) {
  const std::vector<double> x = {1, 1, 1};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(MathTest, CosineSimilarityBasics) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {-1, 0}), -1.0, 1e-12);
  EXPECT_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);
}

TEST(MathTest, MeanAndStdDev) {
  const std::vector<double> values = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(Mean(values), 5.0, 1e-12);
  EXPECT_NEAR(StdDev(values), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(MathTest, PairedTTestDetectsDifference) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 10; ++i) {
    a.push_back(1.0 + 0.01 * i);
    b.push_back(2.0 + 0.01 * i);
  }
  EXPECT_LT(PairedTTestPValue(a, b), 0.05);
  EXPECT_NEAR(PairedTTestPValue(a, a), 1.0, 1e-12);
}

TEST(TableTest, PrettyAndCsvRendering) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b,eta", "2"});
  const std::string pretty = table.ToPrettyString();
  EXPECT_NE(pretty.find("| alpha"), std::string::npos);
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"b,eta\",2"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, WriteCsvRoundTrip) {
  Table table({"x"});
  table.AddRow({"42"});
  const std::string path = "/tmp/imsr_util_test_table.csv";
  ASSERT_TRUE(table.WriteCsv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[64] = {};
  ASSERT_NE(std::fgets(buffer, sizeof(buffer), f), nullptr);
  EXPECT_EQ(std::string(buffer), "x\n");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(FormatTest, Doubles) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.1234, 2), "12.34");
}

TEST(FlagsTest, ParsesTypes) {
  const char* argv[] = {"prog", "--name=abc", "--count=42",
                        "--rate=0.5", "--verbose"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_TRUE(flags.Has("name"));
  EXPECT_EQ(flags.GetString("name", ""), "abc");
  EXPECT_EQ(flags.GetInt("count", 0), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 0.5);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
}

TEST(FlagsTest, RejectsNonNumericValues) {
  const char* argv[] = {"prog", "--threads=abc", "--rate=0.5x",
                        "--big=99999999999999999999"};
  Flags flags(4, const_cast<char**>(argv));
  EXPECT_DEATH(flags.GetInt("threads", 0), "expects an integer");
  EXPECT_DEATH(flags.GetDouble("rate", 0.0), "expects a number");
  EXPECT_DEATH(flags.GetInt("big", 0), "expects an integer");
}

TEST(FlagsTest, AcceptsNegativeAndBoundaryValues) {
  const char* argv[] = {"prog", "--delta=-12", "--zero=0",
                        "--exp=-1.5e3"};
  Flags flags(4, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("delta", 0), -12);
  EXPECT_EQ(flags.GetInt("zero", 7), 0);
  EXPECT_DOUBLE_EQ(flags.GetDouble("exp", 0.0), -1500.0);
}

TEST(FlagsTest, TryParseReportsPositionalTokens) {
  const char* argv[] = {"--ok=1", "stray"};
  Flags flags;
  std::string error;
  EXPECT_FALSE(Flags::TryParse(2, const_cast<char**>(argv), &flags, &error));
  EXPECT_EQ(error, "expected --name=value argument, got 'stray'");

  const char* good[] = {"--ok=1"};
  ASSERT_TRUE(Flags::TryParse(1, const_cast<char**>(good), &flags, &error));
  EXPECT_EQ(flags.GetInt("ok", 0), 1);
}

FlagSet MakeTestFlagSet() {
  FlagSet set("tool", "unit-test flag set");
  set.AddString("out", "results.json", "output path");
  set.AddInt("shards", 4, "worker shard count");
  set.AddDouble("rate", 0.5, "target rate");
  set.AddBool("verbose", false, "chatty logging");
  return set;
}

TEST(FlagSetTest, DefaultsAndParsedValues) {
  FlagSet set = MakeTestFlagSet();
  const char* argv[] = {"--shards=8", "--verbose"};
  std::string error;
  ASSERT_TRUE(set.Parse(2, const_cast<char**>(argv), &error)) << error;
  EXPECT_EQ(set.GetInt("shards"), 8);
  EXPECT_TRUE(set.GetBool("verbose"));
  EXPECT_EQ(set.GetString("out"), "results.json");
  EXPECT_DOUBLE_EQ(set.GetDouble("rate"), 0.5);
  EXPECT_TRUE(set.Has("shards"));
  EXPECT_FALSE(set.Has("out"));
  EXPECT_FALSE(set.help_requested());
}

TEST(FlagSetTest, FullTokenValueValidation) {
  std::string error;
  {
    FlagSet set = MakeTestFlagSet();
    const char* argv[] = {"--shards=8x"};
    EXPECT_FALSE(set.Parse(1, const_cast<char**>(argv), &error));
    EXPECT_EQ(error, "flag --shards expects an integer, got '8x'");
  }
  {
    FlagSet set = MakeTestFlagSet();
    const char* argv[] = {"--rate=fast"};
    EXPECT_FALSE(set.Parse(1, const_cast<char**>(argv), &error));
    EXPECT_EQ(error, "flag --rate expects a number, got 'fast'");
  }
  {
    FlagSet set = MakeTestFlagSet();
    const char* argv[] = {"--verbose=maybe"};
    EXPECT_FALSE(set.Parse(1, const_cast<char**>(argv), &error));
    EXPECT_EQ(error,
              "flag --verbose expects a boolean (true/false), got 'maybe'");
  }
  {
    FlagSet set = MakeTestFlagSet();
    const char* argv[] = {"positional"};
    EXPECT_FALSE(set.Parse(1, const_cast<char**>(argv), &error));
    EXPECT_EQ(error, "expected --name=value argument, got 'positional'");
  }
}

TEST(FlagSetTest, UnknownFlagSuggestsNearestName) {
  FlagSet set = MakeTestFlagSet();
  const char* argv[] = {"--shrads=8"};
  std::string error;
  EXPECT_FALSE(set.Parse(1, const_cast<char**>(argv), &error));
  EXPECT_EQ(error, "unknown flag --shrads (did you mean --shards?)");

  FlagSet other = MakeTestFlagSet();
  const char* far[] = {"--zzzzzzzz=1"};
  EXPECT_FALSE(other.Parse(1, const_cast<char**>(far), &error));
  EXPECT_EQ(error, "unknown flag --zzzzzzzz");
}

TEST(FlagSetTest, HelpRequestSkipsValidation) {
  FlagSet set = MakeTestFlagSet();
  const char* argv[] = {"--help", "--shards=16"};
  std::string error;
  ASSERT_TRUE(set.Parse(2, const_cast<char**>(argv), &error)) << error;
  EXPECT_TRUE(set.help_requested());
  EXPECT_EQ(set.GetInt("shards"), 16);

  const std::string help = set.HelpText();
  EXPECT_NE(help.find("usage: tool"), std::string::npos);
  EXPECT_NE(help.find("unit-test flag set"), std::string::npos);
  EXPECT_NE(help.find("--shards"), std::string::npos);
  EXPECT_NE(help.find("worker shard count (default: 4)"), std::string::npos);
  EXPECT_NE(help.find("(default: results.json)"), std::string::npos);
}

TEST(FlagSetTest, FlagsViewBridgesLegacyHelpers) {
  FlagSet set = MakeTestFlagSet();
  const char* argv[] = {"--shards=2", "--out=x.csv"};
  std::string error;
  ASSERT_TRUE(set.Parse(2, const_cast<char**>(argv), &error)) << error;
  const Flags& view = set.flags();
  EXPECT_EQ(view.GetInt("shards", 0), 2);
  EXPECT_EQ(view.GetString("out", ""), "x.csv");
  EXPECT_FALSE(view.Has("rate"));
}

TEST(FlagSetTest, RejectsDuplicateCommandLineOccurrence) {
  // Last-wins would silently mask the first value; the parse must fail
  // and name the flag.
  FlagSet set = MakeTestFlagSet();
  const char* argv[] = {"--shards=2", "--out=x.csv", "--shards=8"};
  std::string error;
  EXPECT_FALSE(set.Parse(3, const_cast<char**>(argv), &error));
  EXPECT_EQ(error, "flag --shards given more than once");
}

TEST(LruCacheTest, GetMissThenHitAfterPut) {
  LruCache<int, std::string> cache(1024);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(1, "one", 100);
  const std::string* hit = cache.Get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "one");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.bytes(), 100u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(LruCacheTest, EvictsColdestWhenOverByteBudget) {
  LruCache<int, int> cache(300);
  cache.Put(1, 10, 100);
  cache.Put(2, 20, 100);
  cache.Put(3, 30, 100);  // exactly at budget: nothing evicted
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.evictions(), 0u);
  ASSERT_NE(cache.Get(1), nullptr);  // warm 1; coldest is now 2
  cache.Put(4, 40, 100);
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Get(2), nullptr);  // the cold entry went
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_NE(cache.Get(4), nullptr);
  EXPECT_LE(cache.bytes(), cache.budget());
}

TEST(LruCacheTest, ReplacingAKeyUpdatesValueAndBytes) {
  LruCache<int, std::string> cache(1000);
  cache.Put(7, "old", 200);
  cache.Put(7, "new", 300);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 300u);
  const std::string* hit = cache.Get(7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "new");
}

TEST(LruCacheTest, SingleOverBudgetEntryStaysResidentUntilNextInsert) {
  // The cache never rejects an insert: an entry bigger than the whole
  // budget becomes the sole resident, then goes first when anything
  // else arrives.
  LruCache<int, int> cache(100);
  cache.Put(1, 10, 500);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_NE(cache.Get(1), nullptr);
  cache.Put(2, 20, 50);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(2), nullptr);
  EXPECT_LE(cache.bytes(), cache.budget());
}

TEST(LruCacheTest, ManyInsertsStayWithinBudget) {
  LruCache<int, int> cache(1000);
  for (int i = 0; i < 200; ++i) cache.Put(i, i, 90);
  EXPECT_LE(cache.bytes(), 1000u);
  EXPECT_EQ(cache.entries(), 11u);  // floor(1000 / 90)
  EXPECT_EQ(cache.evictions(), 189u);
  // The warm tail survived, the cold head did not.
  EXPECT_NE(cache.Get(199), nullptr);
  EXPECT_EQ(cache.Get(0), nullptr);
}

TEST(FlagSetTest, SuggestFlagNameRespectsDistanceBudget) {
  const std::vector<std::string> known = {"publish_every", "top_n", "seed"};
  EXPECT_EQ(SuggestFlagName("publish_evry", known), "publish_every");
  EXPECT_EQ(SuggestFlagName("topn", known), "top_n");
  EXPECT_EQ(SuggestFlagName("q", known), "");
}

TEST(ShutdownTest, FlagRoundTrip) {
  ResetShutdownForTest();
  EXPECT_FALSE(ShutdownRequested());
  EXPECT_FALSE(ShutdownFlag()->load());
  RequestShutdown();
  EXPECT_TRUE(ShutdownRequested());
  EXPECT_TRUE(ShutdownFlag()->load());
  ResetShutdownForTest();
  EXPECT_FALSE(ShutdownRequested());
  // Installing the handlers is idempotent and must not flip the flag.
  InstallShutdownHandlers();
  InstallShutdownHandlers();
  EXPECT_FALSE(ShutdownRequested());
}

TEST(SerializationTest, RoundTrip) {
  BinaryWriter writer;
  writer.WriteInt64(-5);
  writer.WriteDouble(2.5);
  writer.WriteFloat(1.5f);
  writer.WriteString("hello");
  const float values[3] = {1.0f, 2.0f, 3.0f};
  writer.WriteFloatArray(values, 3);

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadInt64(), -5);
  EXPECT_DOUBLE_EQ(reader.ReadDouble(), 2.5);
  EXPECT_FLOAT_EQ(reader.ReadFloat(), 1.5f);
  EXPECT_EQ(reader.ReadString(), "hello");
  float out[3] = {};
  reader.ReadFloatArray(out, 3);
  EXPECT_FLOAT_EQ(out[2], 3.0f);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializationTest, FileRoundTrip) {
  BinaryWriter writer;
  writer.WriteString("payload");
  const std::string path = "/tmp/imsr_util_test_blob.bin";
  ASSERT_TRUE(writer.WriteToFile(path));
  BinaryReader reader({});
  ASSERT_TRUE(BinaryReader::ReadFromFile(path, &reader));
  EXPECT_EQ(reader.ReadString(), "payload");
  std::remove(path.c_str());
}

TEST(SerializationTest, TryReadsFailOnTruncationAndStickError) {
  BinaryWriter writer;
  writer.WriteInt64(42);
  BinaryReader reader(writer.buffer());
  int64_t value = 0;
  ASSERT_TRUE(reader.TryReadInt64(&value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(reader.ok());
  EXPECT_FALSE(reader.TryReadInt64(&value));
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("truncated"), std::string::npos);
  // Sticky: even a read that would fit keeps failing.
  float f = 0.0f;
  EXPECT_FALSE(reader.TryReadFloat(&f));
}

TEST(SerializationTest, TryReadStringRejectsGarbageLengths) {
  {
    BinaryWriter writer;
    writer.WriteInt64(-1);
    BinaryReader reader(writer.buffer());
    std::string out;
    EXPECT_FALSE(reader.TryReadString(&out));
    EXPECT_NE(reader.error().find("corrupt string length"),
              std::string::npos);
  }
  {
    // A length near SIZE_MAX used to wrap the `position_ + size` bounds
    // check and memcpy out of bounds; it must fail before allocating.
    BinaryWriter writer;
    writer.WriteInt64(INT64_MAX - 7);
    writer.WriteInt64(0);
    BinaryReader reader(writer.buffer());
    std::string out;
    EXPECT_FALSE(reader.TryReadString(&out));
    EXPECT_TRUE(out.empty());
  }
}

TEST(SerializationTest, TryReadFloatArrayRejectsCountMismatch) {
  BinaryWriter writer;
  const float values[2] = {1.0f, 2.0f};
  writer.WriteFloatArray(values, 2);
  BinaryReader reader(writer.buffer());
  float out[3] = {};
  EXPECT_FALSE(reader.TryReadFloatArray(out, 3));
  EXPECT_NE(reader.error().find("size mismatch"), std::string::npos);
}

TEST(SerializationTest, TryReadFloatArrayRejectsTruncatedPayload) {
  BinaryWriter writer;
  writer.WriteInt64(1'000'000);  // claims a million floats, provides none
  BinaryReader reader(writer.buffer());
  std::vector<float> out(1'000'000);
  EXPECT_FALSE(reader.TryReadFloatArray(out.data(), out.size()));
  EXPECT_NE(reader.error().find("truncated"), std::string::npos);
}

TEST(SerializationTest, ReadFromFileRejectsDirectories) {
  // tellg() returns -1 for a directory; this used to become a
  // near-SIZE_MAX allocation.
  BinaryReader reader({});
  EXPECT_FALSE(BinaryReader::ReadFromFile("/tmp", &reader));
  EXPECT_FALSE(BinaryReader::ReadFromFile("/nonexistent/blob", &reader));
}

TEST(SerializationTest, AtomicWriteRoundTripAndFailure) {
  BinaryWriter writer;
  writer.WriteString("durable");
  const std::string path = "/tmp/imsr_util_test_atomic.bin";
  std::string error;
  ASSERT_TRUE(writer.WriteToFileAtomic(path, &error)) << error;
  // No tmp file survives a successful save.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "r");
  EXPECT_EQ(tmp, nullptr);
  BinaryReader reader({});
  ASSERT_TRUE(BinaryReader::ReadFromFile(path, &reader));
  EXPECT_EQ(reader.ReadString(), "durable");
  std::remove(path.c_str());

  EXPECT_FALSE(writer.WriteToFileAtomic("/nonexistent-dir/blob", &error));
  EXPECT_FALSE(error.empty());
}

TEST(EnvTest, ParseEnvBoolAcceptsSharedSpellings) {
  bool value = false;
  for (const char* on : {"1", "true", "on", "yes", "TRUE", "On", "YES"}) {
    EXPECT_EQ(ParseEnvBool(on, &value), EnvParse::kParsed) << on;
    EXPECT_TRUE(value) << on;
  }
  for (const char* off : {"0", "false", "off", "no", "OFF", "False", "NO"}) {
    EXPECT_EQ(ParseEnvBool(off, &value), EnvParse::kParsed)
        << off;
    EXPECT_FALSE(value) << off;
  }
}

TEST(EnvTest, ParseEnvBoolRejectsGarbage) {
  bool value = true;
  for (const char* bad : {"", "2", "yep", "disable", "0x1", " 1"}) {
    EXPECT_EQ(ParseEnvBool(bad, &value), EnvParse::kMalformed)
        << "'" << bad << "'";
  }
}

TEST(EnvTest, ParseEnvIntIsFullToken) {
  int64_t value = 0;
  EXPECT_EQ(ParseEnvInt("8", 1, &value), EnvParse::kParsed);
  EXPECT_EQ(value, 8);
  EXPECT_EQ(ParseEnvInt("-3", INT64_MIN, &value),
            EnvParse::kParsed);
  EXPECT_EQ(value, -3);
  // The std::atoi failure modes the strict parse must reject: trailing
  // junk ("4x" silently became 4) and non-numeric text (0).
  for (const char* bad : {"4x", "abc", "", " 4", "4 ", "1.5", "0x10"}) {
    EXPECT_EQ(ParseEnvInt(bad, INT64_MIN, &value),
              EnvParse::kMalformed)
        << "'" << bad << "'";
  }
}

TEST(EnvTest, ParseEnvIntEnforcesMinimum) {
  int64_t value = 0;
  EXPECT_EQ(ParseEnvInt("0", 1, &value), EnvParse::kMalformed);
  EXPECT_EQ(ParseEnvInt("1", 1, &value), EnvParse::kParsed);
}

TEST(EnvTest, EnvLookupsFallBackOnUnsetAndMalformed) {
  EnvParse outcome;
  ASSERT_EQ(unsetenv("IMSR_ENV_TEST_VAR"), 0);
  EXPECT_TRUE(EnvEnabled("IMSR_ENV_TEST_VAR", true, &outcome));
  EXPECT_EQ(outcome, EnvParse::kUnset);
  EXPECT_EQ(EnvInt("IMSR_ENV_TEST_VAR", 7, 1, &outcome), 7);
  EXPECT_EQ(outcome, EnvParse::kUnset);

  ASSERT_EQ(setenv("IMSR_ENV_TEST_VAR", "off", 1), 0);
  EXPECT_FALSE(EnvEnabled("IMSR_ENV_TEST_VAR", true, &outcome));
  EXPECT_EQ(outcome, EnvParse::kParsed);

  ASSERT_EQ(setenv("IMSR_ENV_TEST_VAR", "4x", 1), 0);
  EXPECT_EQ(EnvInt("IMSR_ENV_TEST_VAR", 7, 1, &outcome), 7);
  EXPECT_EQ(outcome, EnvParse::kMalformed);
  EXPECT_TRUE(EnvEnabled("IMSR_ENV_TEST_VAR", true, &outcome));
  EXPECT_EQ(outcome, EnvParse::kMalformed);
  ASSERT_EQ(unsetenv("IMSR_ENV_TEST_VAR"), 0);
}

}  // namespace
}  // namespace imsr::util
