// Figure 4 reproduction: HR@20 trend over time spans for FR, FT, SML,
// ADER and IMSR (ComiRec-DR) on every dataset. The reproduced shape: FT
// decays fastest over spans; SML/ADER also decay; IMSR tracks FR far more
// closely (slightly below), and the gap between IMSR and the other
// incremental methods is widest on Taobao (fast-moving interests).
#include "bench/bench_common.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchSetup setup = bench::ParseBenchFlags(flags);
  const std::string only_data = flags.GetString("data", "");
  const models::ExtractorKind model_kind =
      bench::ExtractorKindFromNameOrExit(flags.GetString("model", "dr"));

  bench::PrintHeader(
      "Figure 4 — HR@20 trend over time spans (ComiRec-DR)",
      "Fig. 4 (per-span HR of FR/FT/SML/ADER/IMSR, 4 datasets)");

  const std::vector<core::StrategyKind> strategies = {
      core::StrategyKind::kFullRetrain, core::StrategyKind::kFineTune,
      core::StrategyKind::kSml, core::StrategyKind::kAder,
      core::StrategyKind::kImsr};

  for (const data::SyntheticConfig& data_config :
       bench::AllDatasetConfigs(setup.scale)) {
    std::string lower = data_config.name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (!only_data.empty() && lower != only_data) continue;

    const data::SyntheticDataset synthetic = GenerateSynthetic(data_config);
    const data::Dataset& dataset = *synthetic.dataset;
    std::printf("--- %s ---\n", data_config.name.c_str());

    std::vector<std::string> header = {"Strategy"};
    for (int span = 0; span <= dataset.num_incremental_spans() - 1;
         ++span) {
      header.push_back("span " + std::to_string(span));
    }
    util::Table table(header);

    std::vector<double> ft_series;
    std::vector<double> imsr_series;
    for (core::StrategyKind kind : strategies) {
      const core::ExperimentResult result =
          bench::RunStrategy(dataset, setup, kind, model_kind);
      std::vector<std::string> row = {core::StrategyKindName(kind)};
      for (const core::SpanMetrics& span : result.spans) {
        row.push_back(util::FormatPercent(span.hit_ratio));
      }
      table.AddRow(row);
      if (kind == core::StrategyKind::kFineTune) {
        for (const auto& span : result.spans) {
          ft_series.push_back(span.hit_ratio);
        }
      }
      if (kind == core::StrategyKind::kImsr) {
        for (const auto& span : result.spans) {
          imsr_series.push_back(span.hit_ratio);
        }
      }
    }
    bench::PrintTable(table);

    // Decay diagnostics: change from the first to the last span.
    if (!ft_series.empty() && !imsr_series.empty()) {
      std::printf(
          "decay span0 -> last: FT %+0.2f pp, IMSR %+0.2f pp\n\n",
          (ft_series.back() - ft_series.front()) * 100.0,
          (imsr_series.back() - imsr_series.front()) * 100.0);
    }
  }

  std::printf(
      "Paper's shape (Fig. 4): FT's HR drops significantly over spans;\n"
      "SML and ADER also drop fast; IMSR's decline is the smallest among\n"
      "the incremental methods, staying close to FR — most visibly on\n"
      "Taobao where interests change rapidly.\n");
  return 0;
}
