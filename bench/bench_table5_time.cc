// Table V reproduction: training time per incremental span and average
// inference time per user, on the Taobao preset. The reproduced shape:
// FR's training time grows with the span index (it retrains on all
// accumulated data), ADER's grows with its exemplar pool, FT/SML/IMSR
// stay flat, IMSR costs only a few percent more than FT, and inference
// time is slightly higher for IMSR (more interests).
#include "bench/bench_common.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchSetup setup = bench::ParseBenchFlags(flags);
  const std::string model_name = flags.GetString("model", "dr");

  bench::PrintHeader(
      "Table V — training / inference time on Taobao",
      "Table V (per-span training seconds + avg inference ms/user)");

  const data::SyntheticDataset synthetic =
      GenerateSynthetic(data::SyntheticConfig::Taobao(setup.scale));
  const data::Dataset& dataset = *synthetic.dataset;
  const models::ExtractorKind model_kind =
      bench::ExtractorKindFromNameOrExit(model_name);

  const std::vector<core::StrategyKind> strategies = {
      core::StrategyKind::kFullRetrain, core::StrategyKind::kFineTune,
      core::StrategyKind::kSml, core::StrategyKind::kAder,
      core::StrategyKind::kImsr};

  std::vector<std::string> header = {"Strategy"};
  for (int span = 1; span <= dataset.num_incremental_spans() - 1; ++span) {
    header.push_back("t=" + std::to_string(span) + " (s)");
  }
  header.push_back("infer (ms/user)");
  util::Table table(header);

  for (core::StrategyKind kind : strategies) {
    const core::ExperimentResult result =
        bench::RunStrategy(dataset, setup, kind, model_kind);
    std::vector<std::string> row = {core::StrategyKindName(kind)};
    double infer_total = 0.0;
    for (size_t i = 1; i < result.spans.size(); ++i) {
      row.push_back(util::FormatDouble(result.spans[i].train_seconds, 2));
      infer_total += result.spans[i].infer_ms_per_user;
    }
    row.push_back(util::FormatDouble(
        infer_total / static_cast<double>(result.spans.size() - 1), 3));
    table.AddRow(row);
  }
  bench::PrintTable(table);

  std::printf(
      "Paper's shape (Taobao, Table V): FR ~6x slower than FT and growing\n"
      "linearly per span; ADER growing with its exemplar pool; SML a\n"
      "constant factor over FT; IMSR within a few percent of FT and flat;\n"
      "IMSR inference slightly slower (adaptive interest count).\n");
  return 0;
}
