// Training-step micro benchmarks: the per-sample loss graph
// (build + value) and the full TrainEpoch inner loop (graph + backward +
// Adam step) over a fixed synthetic workload. These are the numbers the
// memory-subsystem work (DESIGN.md §10) is judged against — BENCH_PR5.json
// at the repo root records before/after runs via tools/bench_pr5.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/imsr_trainer.h"
#include "data/sampler.h"
#include "data/synthetic.h"
#include "models/msr_model.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

// One self-contained training fixture: synthetic span-0 data, a ComiRec-DR
// model at paper-scale dimensions (d=32, K=4) and the IMSR trainer.
struct TrainFixture {
  explicit TrainFixture(int64_t dim = 32) {
    data::SyntheticConfig data_config;
    data_config.name = "bench";
    data_config.num_users = 64;
    data_config.num_items = 1000;
    data_config.num_categories = 12;
    data_config.pretrain_interactions_per_user = 30;
    data_config.span_interactions_per_user = 10;
    data_config.min_interactions = 5;
    data_config.seed = 17;
    synthetic = data::GenerateSynthetic(data_config);

    models::ModelConfig model_config;
    model_config.kind = models::ExtractorKind::kComiRecDr;
    model_config.embedding_dim = dim;
    model = std::make_unique<models::MsrModel>(
        model_config, synthetic.dataset->num_items(), /*seed=*/1);

    core::TrainConfig train_config;
    train_config.batch_size = 32;
    train_config.negatives = 10;
    train_config.initial_interests = 4;
    train_config.enable_expansion = false;
    train_config.seed = 5;
    trainer = std::make_unique<core::ImsrTrainer>(model.get(), &store,
                                                  train_config);
    trainer->EnsureUserState(*synthetic.dataset, /*span=*/0);
    samples = data::BuildSpanSamples(*synthetic.dataset, /*span=*/0,
                                     train_config.max_history);
  }

  data::SyntheticDataset synthetic;
  std::unique_ptr<models::MsrModel> model;
  core::InterestStore store;
  std::unique_ptr<core::ImsrTrainer> trainer;
  std::vector<data::TrainingSample> samples;
};

void BM_SampleLoss(benchmark::State& state) {
  // Forward graph construction + loss value for one sample — the unit the
  // buffer pool and autograd arena are sized around.
  TrainFixture fixture(state.range(0));
  const data::TrainingSample& sample = fixture.samples.front();
  for (auto _ : state) {
    nn::Var loss = fixture.trainer->SampleLoss(sample, nullptr);
    benchmark::DoNotOptimize(loss.value().item());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleLoss)->Arg(32)->Arg(64);

void BM_TrainEpochStep(benchmark::State& state) {
  // The steady-state optimizer loop: per iteration one TrainEpoch over a
  // fixed sample set (batch 32 -> samples/32 optimizer steps). Items
  // processed = training samples, so items/s is sample throughput.
  TrainFixture fixture(state.range(0));
  // Warm up once so lazily created state (Adam moments, scratch, pooled
  // buffers) exists before the timed region.
  fixture.trainer->TrainEpoch(fixture.samples, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.trainer->TrainEpoch(fixture.samples, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fixture.samples.size()));
}
BENCHMARK(BM_TrainEpochStep)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_ValidationLoss(benchmark::State& state) {
  // Eval-only forward over the span's validation items — the no-grad
  // guard's target (no tape should be built here).
  TrainFixture fixture(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.trainer->ValidationLoss(*fixture.synthetic.dataset, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValidationLoss)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
