// Ablations of this reproduction's own design choices (DESIGN.md §1) —
// not a paper table, but evidence that the engineering decisions carry
// their weight:
//   (1) evidence-gated interest persistence (vs always overwriting),
//   (2) distilling over the whole candidate set with an embedding
//       snapshot teacher (vs target-only / live-embedding teacher is
//       approximated by a very low KD coefficient),
//   (3) relative PIT trimming (vs the absolute threshold),
//   (4) expansion every epoch vs once per span (Algorithm 2 fidelity
//       vs cost).
#include "bench/bench_common.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

core::ExperimentResult RunVariant(const data::Dataset& dataset,
                                  const bench::BenchSetup& setup,
                                  core::TrainConfig train) {
  core::ExperimentConfig config = setup.experiment;
  config.model.kind = models::ExtractorKind::kComiRecDr;
  config.strategy.kind = core::StrategyKind::kImsr;
  config.strategy.train = train;
  return core::RunRepeatedExperiment(dataset, config, setup.repeats);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchSetup setup = bench::ParseBenchFlags(flags);

  bench::PrintHeader(
      "Design-choice ablations (this reproduction's own decisions)",
      "DESIGN.md §1 — not a paper experiment");

  const data::SyntheticDataset synthetic = GenerateSynthetic(
      data::SyntheticConfig::Taobao(setup.scale));
  const data::Dataset& dataset = *synthetic.dataset;
  const core::TrainConfig base = setup.experiment.strategy.train;

  util::Table table({"Variant", "HR@20", "NDCG@20", "avg K"});
  auto add = [&](const std::string& name, const core::TrainConfig& train) {
    const core::ExperimentResult result =
        RunVariant(dataset, setup, train);
    table.AddRow({name, util::FormatPercent(result.avg_hit_ratio),
                  util::FormatPercent(result.avg_ndcg),
                  util::FormatDouble(result.spans.back().avg_interests,
                                     1)});
  };

  add("IMSR (all design choices on)", base);

  {
    core::TrainConfig train = base;
    train.min_evidence_items = 0;  // always overwrite
    add("w/o evidence-gated persistence", train);
  }
  {
    core::TrainConfig train = base;
    train.eir.coefficient = base.eir.coefficient * 0.01f;
    add("near-zero KD (weak retention anchor)", train);
  }
  {
    core::TrainConfig train = base;
    train.expansion.pit.relative = false;  // absolute c2
    add("absolute PIT threshold", train);
  }
  {
    core::TrainConfig train = base;
    train.expansion_every_epoch = true;  // Algorithm 2 verbatim
    add("IntsEx every epoch (Alg. 2 verbatim)", train);
  }

  bench::PrintTable(table);

  std::printf(
      "Expected: disabling evidence gating reverts to the fine-tuning\n"
      "forgetting mode (biggest drop); a near-zero KD coefficient removes\n"
      "the retention anchor; absolute trimming mis-scales for capsule\n"
      "norms; IntsEx-every-epoch should closely match the once-per-span\n"
      "default (later runs are near no-ops) at slightly higher cost.\n");
  return 0;
}
