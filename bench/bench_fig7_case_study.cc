// Figure 7 reproduction — three case studies on Taobao (ComiRec-DR):
// (a) HR of FR / FT / IMSR on the last evaluated span, split into
//     existing-item targets, new-item targets and all targets;
// (b) interest-evolution geometry for one user: inherited interests stay
//     near their previous-span positions (EIR) while new interests appear
//     in new places (the t-SNE plot's quantitative content);
// (c) the share of final-span test targets whose best-matching interest
//     was created in each earlier span — early interests still serve
//     late targets, so retaining all of them pays.
#include <algorithm>

#include "bench/bench_common.h"
#include "core/imsr_trainer.h"
#include "eval/projection.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchSetup setup = bench::ParseBenchFlags(flags);
  const models::ExtractorKind model_kind =
      bench::ExtractorKindFromNameOrExit(flags.GetString("model", "dr"));

  bench::PrintHeader(
      "Figure 7 — case studies (Taobao, ComiRec-DR)",
      "Fig. 7 (a: HR by item type; b: interest drift; c: interest-age "
      "attention heatmap)");

  const data::SyntheticDataset synthetic =
      GenerateSynthetic(data::SyntheticConfig::Taobao(setup.scale));
  const data::Dataset& dataset = *synthetic.dataset;
  const int last_trained = dataset.num_incremental_spans() - 1;
  const int test_span = last_trained + 1;

  // ---- (a) item-type split for FR, FT, IMSR ----
  std::printf("(a) HR@%d on span %d targets, by item type\n",
              setup.experiment.eval.top_n, test_span);
  util::Table table_a(
      {"Strategy", "existing items", "new items", "all items"});
  // IMSR run is kept for parts (b) and (c).
  models::MsrModel imsr_model(setup.experiment.model, dataset.num_items(),
                              setup.seed);
  core::InterestStore imsr_store;
  {
    for (core::StrategyKind kind :
         {core::StrategyKind::kFullRetrain, core::StrategyKind::kFineTune,
          core::StrategyKind::kImsr}) {
      core::ExperimentConfig config = setup.experiment;
      config.model.kind = model_kind;
      config.strategy.kind = kind;
      config.strategy.train.seed = config.seed;

      models::MsrModel model(config.model, dataset.num_items(),
                             config.seed);
      core::InterestStore store;
      auto strategy =
          core::LearningStrategy::Create(config.strategy, &model, &store);
      strategy->Pretrain(dataset);
      for (int span = 1; span <= last_trained; ++span) {
        strategy->TrainIncrementalSpan(dataset, span);
      }
      auto evaluate = [&](eval::ItemFilter filter) {
        return eval::EvaluateSpan(
                   model.embeddings().parameter().value(), store, dataset,
                   test_span, config.eval, filter, last_trained)
            .metrics;
      };
      const eval::TopNMetrics existing =
          evaluate(eval::ItemFilter::kExistingOnly);
      const eval::TopNMetrics fresh = evaluate(eval::ItemFilter::kNewOnly);
      const eval::TopNMetrics all = evaluate(eval::ItemFilter::kAll);
      table_a.AddRow({core::StrategyKindName(kind),
                      util::FormatPercent(existing.hit_ratio) + " (" +
                          std::to_string(existing.users) + "u)",
                      util::FormatPercent(fresh.hit_ratio) + " (" +
                          std::to_string(fresh.users) + "u)",
                      util::FormatPercent(all.hit_ratio)});
      if (kind == core::StrategyKind::kImsr) {
        // Keep the IMSR state for (b) and (c).
        util::BinaryWriter writer;
        model.Save(&writer);
        util::BinaryReader reader(writer.buffer());
        std::string copy_error;
        IMSR_CHECK(imsr_model.Load(&reader, &copy_error)) << copy_error;
        util::BinaryWriter store_writer;
        store.Save(&store_writer);
        util::BinaryReader store_reader(store_writer.buffer());
        IMSR_CHECK(imsr_store.Load(&store_reader, &copy_error))
            << copy_error;
      }
    }
  }
  bench::PrintTable(table_a);
  std::printf(
      "Paper's shape: FR best on existing items (retrains on them), FT\n"
      "best on new items but heavily forgets existing ones, IMSR\n"
      "balances both groups.\n\n");

  // ---- (b) interest drift for one user ----
  // Re-run IMSR capturing the per-span interest snapshots of one user.
  {
    core::ExperimentConfig config = setup.experiment;
    config.model.kind = model_kind;
    config.strategy.kind = core::StrategyKind::kImsr;
    models::MsrModel model(config.model, dataset.num_items(), config.seed);
    core::InterestStore store;
    core::ImsrTrainer trainer(&model, &store, config.strategy.train);
    trainer.Pretrain(dataset);

    // A user active in most spans with expansion potential.
    data::UserId chosen = dataset.active_users(1)[0];
    for (data::UserId user : dataset.active_users(1)) {
      int active_spans = 0;
      for (int span = 1; span <= last_trained; ++span) {
        active_spans += dataset.user_span(user, span).active() ? 1 : 0;
      }
      if (active_spans == last_trained && store.Has(user)) {
        chosen = user;
        break;
      }
    }

    std::vector<nn::Tensor> snapshots = {store.Interests(chosen)};
    for (int span = 1; span <= last_trained; ++span) {
      trainer.TrainSpan(dataset, span);
      snapshots.push_back(store.Interests(chosen));
    }

    std::printf("(b) interest evolution of user %d\n", chosen);
    for (size_t t = 1; t < snapshots.size(); ++t) {
      const nn::Tensor& prev = snapshots[t - 1];
      const nn::Tensor& curr = snapshots[t];
      double drift = 0.0;
      const int64_t inherited = std::min(prev.size(0), curr.size(0));
      for (int64_t k = 0; k < inherited; ++k) {
        drift += nn::L2NormFlat(nn::Sub(curr.Row(k), prev.Row(k)));
      }
      drift /= static_cast<double>(inherited);
      // Distance of new interests (if any) to their nearest inherited one.
      double new_distance = 0.0;
      int64_t new_count = curr.size(0) - inherited;
      for (int64_t j = inherited; j < curr.size(0); ++j) {
        double nearest = 1e30;
        for (int64_t k = 0; k < inherited; ++k) {
          nearest = std::min(nearest,
                             static_cast<double>(nn::L2NormFlat(
                                 nn::Sub(curr.Row(j), curr.Row(k)))));
        }
        new_distance += nearest;
      }
      if (new_count > 0) {
        new_distance /= static_cast<double>(new_count);
      }
      std::printf(
          "  span %zu: K=%lld, inherited drift %.3f%s\n", t,
          static_cast<long long>(curr.size(0)), drift,
          new_count > 0
              ? ("; " + std::to_string(new_count) +
                 " new interests, avg distance to nearest inherited " +
                 util::FormatDouble(new_distance, 3))
                    .c_str()
              : "");
    }
    std::printf(
        "Paper's shape: inherited interests move little between spans\n"
        "(EIR anchors them) while new interests appear away from the\n"
        "existing ones (PIT keeps only orthogonal components).\n");

    // 2-D PCA layout of every (span, interest) snapshot — the plottable
    // analogue of the paper's t-SNE panel.
    std::vector<nn::Tensor> rows;
    std::vector<std::pair<size_t, int64_t>> labels;  // (span, interest)
    for (size_t t = 0; t < snapshots.size(); ++t) {
      for (int64_t k = 0; k < snapshots[t].size(0); ++k) {
        rows.push_back(snapshots[t].Row(k).Reshape(
            {1, snapshots[t].size(1)}));
        labels.emplace_back(t, k);
      }
    }
    const nn::Tensor stacked = nn::ConcatRows(rows);
    const auto projected = eval::PcaProject2d(stacked);
    std::printf("2-D PCA layout (span, interest, x, y; %.0f%% variance "
                "explained):\n",
                eval::PcaExplainedVariance(stacked, 2) * 100.0);
    for (size_t i = 0; i < projected.size(); ++i) {
      std::printf("  t=%zu k=%lld  (%+.3f, %+.3f)\n", labels[i].first,
                  static_cast<long long>(labels[i].second),
                  projected[i].first, projected[i].second);
    }
    std::printf("\n");
  }

  // ---- (c) interest-age heatmap ----
  {
    std::vector<int64_t> served_by_span(
        static_cast<size_t>(last_trained + 1), 0);
    int64_t users_counted = 0;
    for (data::UserId user : dataset.active_users(test_span)) {
      if (!imsr_store.Has(user)) continue;
      const data::UserSpanData& span_data =
          dataset.user_span(user, test_span);
      if (span_data.test < 0) continue;
      const nn::Tensor target =
          imsr_model.embeddings().RowNoGrad(span_data.test);
      const nn::Tensor& interests = imsr_store.Interests(user);
      const nn::Tensor scores = nn::MatVec(interests, target);
      int64_t best = 0;
      for (int64_t k = 1; k < scores.numel(); ++k) {
        if (scores.at(k) > scores.at(best)) best = k;
      }
      const int birth =
          imsr_store.BirthSpans(user)[static_cast<size_t>(best)];
      served_by_span[static_cast<size_t>(
          std::min(birth, last_trained))] += 1;
      ++users_counted;
    }
    std::printf("(c) final-span test targets best served by interests "
                "created in span s (%lld users):\n",
                static_cast<long long>(users_counted));
    for (size_t s = 0; s < served_by_span.size(); ++s) {
      const double share =
          users_counted > 0 ? static_cast<double>(served_by_span[s]) /
                                  static_cast<double>(users_counted)
                            : 0.0;
      std::printf("  span %zu interests: %5.1f%%  %s\n", s, share * 100.0,
                  std::string(static_cast<size_t>(share * 50), '#')
                      .c_str());
    }
    std::printf(
        "\nPaper's shape: a majority of final-span purchases are best\n"
        "served by interests created in the pre-training or first spans\n"
        "(paper: >50%%/60%% of users' buys match span-1/2 interests) — \n"
        "early interests must be retained.\n");
  }
  return 0;
}
