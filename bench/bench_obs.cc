// google-benchmark suite for the obs layer itself: cost of a counter
// add, a histogram record, and a trace span on the hot path, in three
// regimes — macros compiled in with tracing off (the default production
// shape), tracing on, and (when built with -DIMSR_OBS=OFF) everything
// compiled out. Compare BM_MatMulTransB here against bench_micro_ops to
// confirm instrumentation does not perturb the numeric kernels.
#include <benchmark/benchmark.h>

#include "nn/ops.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

void BM_CounterAdd(benchmark::State& state) {
  for (auto _ : state) {
    IMSR_COUNTER_ADD("bench/counter", 1);
  }
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeSet(benchmark::State& state) {
  double v = 0.0;
  for (auto _ : state) {
    IMSR_GAUGE_SET("bench/gauge", v);
    v += 1.0;
  }
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  double v = 0.0;
  for (auto _ : state) {
    IMSR_HISTOGRAM_RECORD("bench/histogram", v);
    v += 0.125;
    if (v > 4000.0) v = 0.0;
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_TraceSpanDisabled(benchmark::State& state) {
  // Tracing not enabled: the span should collapse to one atomic load.
  obs::EnableTracing(false);
  for (auto _ : state) {
    IMSR_TRACE_SPAN("bench/span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  obs::EnableTracing(true);
  for (auto _ : state) {
    IMSR_TRACE_SPAN("bench/span");
    benchmark::ClobberMemory();
  }
  obs::EnableTracing(false);
  obs::ClearTrace();
}
BENCHMARK(BM_TraceSpanEnabled);

// Same shape as bench_micro_ops BM_MatMulTransB(256): the acceptance
// reference for "instrumentation must not perturb the kernels".
void BM_MatMulTransB(benchmark::State& state) {
  util::Rng rng(1);
  const auto n = static_cast<int64_t>(state.range(0));
  const nn::Tensor a = nn::Tensor::Randn({n, 32}, rng);
  const nn::Tensor b = nn::Tensor::Randn({32, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMulTransB(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MatMulTransB)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
