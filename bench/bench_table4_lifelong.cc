// Table IV reproduction: IMSR (on ComiRec-DR) versus the life-long MSR
// baselines MIMN and LimaRec, which update user representations online
// but never update model parameters after pretraining. Average HR@20 over
// the incremental spans.
#include "baselines/limarec.h"
#include "baselines/mimn.h"
#include "bench/bench_common.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

const core::InterestStore& Interests(const baselines::MimnModel& model) {
  return model.memory();
}
const core::InterestStore& Interests(const baselines::LimaRecModel& model) {
  return model.interests();
}

// Runs a life-long model: pretrain once, then only observe spans; after
// each span the stored interests rank the next span's test items.
template <typename Model>
double RunLifelong(Model& model, const data::Dataset& dataset,
                   const eval::EvalConfig& eval_config) {
  model.Pretrain(dataset);
  double total = 0.0;
  int spans = 0;
  for (int span = 1; span <= dataset.num_incremental_spans() - 1; ++span) {
    model.ObserveSpan(dataset, span);
    const eval::EvalResult result =
        EvaluateSpan(model.item_embeddings(), Interests(model), dataset,
                     span + 1, eval_config);
    total += result.metrics.hit_ratio;
    ++spans;
  }
  return spans > 0 ? total / spans : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchSetup setup = bench::ParseBenchFlags(flags);

  bench::PrintHeader(
      "Table IV — IMSR vs life-long MSR models (MIMN, LimaRec)",
      "Table IV (average HR over 5 time spans, 4 datasets)");

  util::Table table({"Dataset", "MIMN", "LimaRec", "IMSR (ComiRec-DR)"});
  for (const data::SyntheticConfig& data_config :
       bench::AllDatasetConfigs(setup.scale)) {
    const data::SyntheticDataset synthetic = GenerateSynthetic(data_config);
    const data::Dataset& dataset = *synthetic.dataset;

    baselines::MimnConfig mimn_config;
    mimn_config.base.kind = models::ExtractorKind::kComiRecDr;
    mimn_config.base.embedding_dim = setup.experiment.model.embedding_dim;
    mimn_config.pretrain = setup.experiment.strategy.train;
    mimn_config.pretrain.seed = setup.seed;
    baselines::MimnModel mimn(mimn_config, dataset.num_items(),
                              setup.seed);
    const double mimn_hr = RunLifelong(mimn, dataset, setup.experiment.eval);

    baselines::LimaRecConfig lima_config;
    lima_config.embedding_dim = setup.experiment.model.embedding_dim;
    lima_config.pretrain_epochs =
        setup.experiment.strategy.train.pretrain_epochs;
    lima_config.learning_rate =
        setup.experiment.strategy.train.learning_rate;
    lima_config.seed = setup.seed;
    baselines::LimaRecModel lima(lima_config, dataset.num_items());
    const double lima_hr = RunLifelong(lima, dataset, setup.experiment.eval);

    const core::ExperimentResult imsr = bench::RunStrategy(
        dataset, setup, core::StrategyKind::kImsr,
        models::ExtractorKind::kComiRecDr);

    table.AddRow({data_config.name, util::FormatPercent(mimn_hr),
                  util::FormatPercent(lima_hr),
                  util::FormatPercent(imsr.avg_hit_ratio)});
  }
  bench::PrintTable(table);

  std::printf(
      "Paper's shape: IMSR > LimaRec > MIMN on every dataset (paper:\n"
      "IMSR +2.9-5.1%% HR over LimaRec) — life-long models update only\n"
      "user representations with a fixed interest count, so they trail a\n"
      "method that also updates model parameters and expands capacity.\n");
  return 0;
}
