// Table II reproduction: statistics of the four (synthetic) datasets —
// #users, #items, per-span interaction counts — plus the interest
//-reappearance fraction that motivates retaining all existing interests
// (§I cites >80% of interests reappearing more than three times).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace imsr;  // NOLINT(build/namespaces)
  util::Flags flags(argc, argv);
  const bench::BenchSetup setup = bench::ParseBenchFlags(flags);

  bench::PrintHeader("Table II — dataset statistics",
                     "Table II (4 datasets, pre-training + 6 spans)");

  util::Table table({"Dataset", "#users", "#items", "pre-train", "1", "2",
                     "3", "4", "5", "6", "reappear>=3"});
  for (const data::SyntheticConfig& config :
       bench::AllDatasetConfigs(setup.scale)) {
    const data::SyntheticDataset synthetic = GenerateSynthetic(config);
    const data::DatasetStats stats =
        data::ComputeStats(*synthetic.dataset);
    std::vector<std::string> row = {
        config.name, std::to_string(stats.num_users),
        std::to_string(stats.num_items_seen)};
    for (int64_t count : stats.span_interactions) {
      row.push_back(std::to_string(count));
    }
    row.push_back(util::FormatPercent(
        data::InterestReappearFraction(*synthetic.dataset, synthetic.truth,
                                       3)));
    table.AddRow(row);
  }
  bench::PrintTable(table);

  std::printf(
      "Paper's Table II (full scale)     : Electronics 88k users/1.7M "
      "pre-train ... Taobao 977k users/85M pre-train.\n"
      "Shape reproduced                  : Taobao largest, Electronics "
      "smallest; per-span counts a fraction of pre-training;\n"
      "                                    most interests reappear in >=3 "
      "spans (paper: >80%% reappear >3 times).\n");
  return 0;
}
