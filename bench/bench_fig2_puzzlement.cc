// Figure 2 reproduction: the "skirt vs LEGO" case. A user has been
// interested in several categories (incl. toys) but never in clothing.
// In the new span the user interacts with both a clothing item ("skirt" —
// a never-seen category) and a toy item ("LEGO" — an existing interest).
// The figure shows the item's dot-products against the interests: the
// unseen-category item is *puzzled* (flat profile over all interests)
// while the toy item peaks at its own interest; after expansion and
// training, the unseen-category item peaks at the newly created interest.
#include <algorithm>

#include "bench/bench_common.h"
#include "core/imsr_trainer.h"
#include "core/nid.h"
#include "core/pit.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

std::string ProfileRow(const std::string& label,
                       const std::vector<double>& probs) {
  std::string row = label;
  for (double p : probs) {
    row += " " + util::FormatDouble(p, 3);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::BenchSetup setup = bench::ParseBenchFlags(flags);

  bench::PrintHeader(
      "Figure 2 — assignment profiles of a puzzled vs a classified item",
      "Fig. 2 (dot-products of skirt/LEGO to interests, before/after "
      "training)");

  // Build a compact dataset whose ground truth we control.
  data::SyntheticConfig config = data::SyntheticConfig::Electronics(
      std::max(setup.scale, 0.15));
  config.seed = setup.seed;
  const data::SyntheticDataset synthetic = GenerateSynthetic(config);
  const data::Dataset& dataset = *synthetic.dataset;

  // Pretrain an IMSR (ComiRec-DR) model on span 0.
  models::MsrModel model(setup.experiment.model, dataset.num_items(),
                         setup.seed);
  core::InterestStore store;
  core::TrainConfig train = setup.experiment.strategy.train;
  core::ImsrTrainer trainer(&model, &store, train);
  trainer.Pretrain(dataset);

  // Pick the user/item pair with the clearest contrast: "LEGO" is the
  // user's pre-training item whose assignment profile is most peaked
  // (largest KL from uniform) and "skirt" the unseen-category item whose
  // profile is flattest (smallest KL).
  data::UserId chosen_user = -1;
  data::ItemId lego = -1;
  data::ItemId skirt = -1;
  double best_spread = -1.0;
  int users_probed = 0;
  for (data::UserId user : dataset.active_users(1)) {
    if (!store.Has(user)) continue;
    if (++users_probed > 25) break;
    const auto& owned =
        synthetic.truth.user_interests[static_cast<size_t>(user)];
    const data::UserSpanData& pretrain = dataset.user_span(user, 0);
    if (pretrain.all.empty()) continue;
    const nn::Tensor& interests = store.Interests(user);

    data::ItemId best_lego = -1;
    double best_lego_kl = -1.0;
    for (data::ItemId item : pretrain.all) {
      const double item_kl = core::AssignmentKl(
          model.embeddings().RowNoGrad(item), interests);
      if (item_kl > best_lego_kl) {
        best_lego_kl = item_kl;
        best_lego = item;
      }
    }

    data::ItemId best_skirt = -1;
    double best_skirt_kl = 1e30;
    for (data::ItemId item = 0; item < dataset.num_items(); item += 3) {
      const int category =
          synthetic.truth.item_category[static_cast<size_t>(item)];
      if (std::find(owned.begin(), owned.end(), category) != owned.end()) {
        continue;
      }
      const double item_kl = core::AssignmentKl(
          model.embeddings().RowNoGrad(item), interests);
      if (item_kl < best_skirt_kl) {
        best_skirt_kl = item_kl;
        best_skirt = item;
      }
    }
    if (best_lego < 0 || best_skirt < 0) continue;
    const double spread = best_lego_kl - best_skirt_kl;
    if (spread > best_spread) {
      best_spread = spread;
      chosen_user = user;
      lego = best_lego;
      skirt = best_skirt;
    }
  }
  IMSR_CHECK(chosen_user >= 0) << "no suitable case-study user";

  auto profile = [&](data::ItemId item) {
    return core::AssignmentDistribution(
        model.embeddings().RowNoGrad(item), store.Interests(chosen_user));
  };
  auto kl = [&](data::ItemId item) {
    return core::AssignmentKl(model.embeddings().RowNoGrad(item),
                              store.Interests(chosen_user));
  };

  std::printf("user %d, K=%lld existing interests\n", chosen_user,
              static_cast<long long>(store.NumInterests(chosen_user)));
  std::printf("BEFORE expansion/training (red bars in the paper):\n");
  std::printf("  %s\n",
              ProfileRow("skirt p(h_k|e):", profile(skirt)).c_str());
  std::printf("    KL from uniform = %.4f  (puzzled: flat profile)\n",
              kl(skirt));
  std::printf("  %s\n", ProfileRow("LEGO  p(h_k|e):", profile(lego)).c_str());
  std::printf("    KL from uniform = %.4f  (classified: peaked profile)\n\n",
              kl(lego));

  const double skirt_kl_before = kl(skirt);
  const double lego_kl_before = kl(lego);

  // The figure's "after" state: give the user one new interest vector and
  // let it absorb the unseen-category interactions (the paper retrains
  // with fine-tuning; the equivalent here is PIT's orthogonal
  // initialisation followed by re-extraction over a stream containing the
  // new category).
  const int64_t k_before = store.NumInterests(chosen_user);
  util::Rng rng(setup.seed ^ 0xF16);
  const nn::Tensor seed_vector = core::OrthogonalComponent(
      store.Interests(chosen_user), model.embeddings().RowNoGrad(skirt));
  store.Append(chosen_user,
               seed_vector.Reshape({1, model.config().embedding_dim}),
               /*span=*/1);
  model.extractor().EnsureUserCapacity(
      chosen_user, store.NumInterests(chosen_user), rng, nullptr);
  // The user now interacts with several items of the unseen category.
  std::vector<data::ItemId> items = dataset.user_span(chosen_user, 1).all;
  const int skirt_category =
      synthetic.truth.item_category[static_cast<size_t>(skirt)];
  int added = 0;
  for (data::ItemId item = 0; item < dataset.num_items() && added < 4;
       ++item) {
    if (synthetic.truth.item_category[static_cast<size_t>(item)] ==
        skirt_category) {
      items.push_back(item);
      ++added;
    }
  }
  items.push_back(skirt);
  trainer.RefreshUserInterests(chosen_user, items);

  std::printf("AFTER creating interest %lld and re-extraction (purple):\n",
              static_cast<long long>(k_before));
  std::printf("  %s\n",
              ProfileRow("skirt p(h_k|e):", profile(skirt)).c_str());
  const std::vector<double> skirt_after = profile(skirt);
  const size_t argmax = static_cast<size_t>(
      std::max_element(skirt_after.begin(), skirt_after.end()) -
      skirt_after.begin());
  std::printf("    now peaks at interest %zu (the new one: %s), KL = %.4f\n",
              argmax,
              argmax == static_cast<size_t>(k_before) ? "yes" : "no",
              kl(skirt));
  std::printf("  %s\n", ProfileRow("LEGO  p(h_k|e):", profile(lego)).c_str());
  std::printf("    KL = %.4f (still classified to its old interest)\n\n",
              kl(lego));

  std::printf(
      "Paper's shape: the unseen-category item has a flat profile over\n"
      "the existing interests (low KL, 'puzzled'; here %.4f vs the\n"
      "classified item's %.4f) and, once a new interest vector is\n"
      "provided, peaks at the new interest while the classified item's\n"
      "profile is unchanged.\n",
      skirt_kl_before, lego_kl_before);
  return 0;
}
