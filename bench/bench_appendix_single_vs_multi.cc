// Appendix (motivating) experiment — not a paper table: single-interest
// sequential recommendation (GRU4Rec-style) vs multi-interest extraction
// (ComiRec-DR) on the same pre-training data, reported at several
// cut-offs plus MRR. The paper's premise (§I) is that users hold several
// concurrent interests that one preference vector cannot cover; this
// bench quantifies that on the synthetic corpora, where the ground-truth
// interest count per user is known.
#include "baselines/gru4rec.h"
#include "bench/bench_common.h"
#include "core/imsr_trainer.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

eval::MultiCutoffMetrics EvaluateMultiCutoff(
    const nn::Tensor& item_embeddings, const core::InterestStore& store,
    const data::Dataset& dataset, int test_span, eval::ScoreRule rule) {
  eval::MultiCutoffAccumulator accumulator({10, 20, 50});
  for (data::UserId user : dataset.active_users(test_span)) {
    const data::UserSpanData& span_data =
        dataset.user_span(user, test_span);
    if (span_data.test < 0 || !store.Has(user)) continue;
    accumulator.AddRank(eval::TargetRank(
        store.Interests(user), item_embeddings, span_data.test, rule));
  }
  return accumulator.Finalize();
}

void PrintRow(util::Table& table, const std::string& name,
              const eval::MultiCutoffMetrics& metrics) {
  table.AddRow({name, util::FormatPercent(metrics.hit_ratio[0]),
                util::FormatPercent(metrics.hit_ratio[1]),
                util::FormatPercent(metrics.hit_ratio[2]),
                util::FormatPercent(metrics.mrr),
                std::to_string(metrics.users)});
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchSetup setup = bench::ParseBenchFlags(flags);

  bench::PrintHeader(
      "Appendix — single-interest (GRU4Rec) vs multi-interest "
      "(ComiRec-DR)",
      "motivating premise of §I, not a paper table");

  for (const data::SyntheticConfig& data_config :
       bench::AllDatasetConfigs(setup.scale)) {
    const data::SyntheticDataset synthetic = GenerateSynthetic(data_config);
    const data::Dataset& dataset = *synthetic.dataset;

    // Single-interest recurrent model, pretraining span only.
    baselines::Gru4RecConfig gru_config;
    gru_config.embedding_dim = setup.experiment.model.embedding_dim;
    gru_config.hidden_dim = setup.experiment.model.embedding_dim;
    gru_config.epochs = 3;
    gru_config.max_history = 20;
    gru_config.seed = setup.seed;
    baselines::Gru4RecModel gru(gru_config, dataset.num_items());
    gru.TrainSpan(dataset, 0);
    gru.RefreshRepresentations(dataset, 0);

    // Multi-interest model, identical training budget.
    core::ExperimentConfig multi_config = setup.experiment;
    multi_config.model.kind = models::ExtractorKind::kComiRecDr;
    models::MsrModel model(multi_config.model, dataset.num_items(),
                           setup.seed);
    core::InterestStore store;
    core::ImsrTrainer trainer(&model, &store,
                              multi_config.strategy.train);
    trainer.Pretrain(dataset);

    util::Table table({"Model (" + data_config.name + ")", "HR@10",
                       "HR@20", "HR@50", "MRR", "users"});
    PrintRow(table, "GRU4Rec (K=1)",
             EvaluateMultiCutoff(gru.item_embeddings(),
                                 gru.representations(), dataset, 1,
                                 eval::ScoreRule::kAttentive));
    PrintRow(table, "ComiRec-DR (K=4)",
             EvaluateMultiCutoff(
                 model.embeddings().parameter().value(), store, dataset,
                 1, setup.experiment.eval.rule));
    bench::PrintTable(table);
  }

  std::printf(
      "Expected: the multi-interest extractor wins at every cut-off —\n"
      "synthetic users own 3-5 concurrent interest categories, which a\n"
      "single preference vector must average over (§I's motivation for\n"
      "MSR models, and transitively for incremental MSR).\n");
  return 0;
}
