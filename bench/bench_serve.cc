// Serving-path benchmark for the src/serve/ subsystem (DESIGN.md §9):
//
//   1. Publish cost vs model size — BuildSnapshot (deep copy of the
//      embedding table + packed interest export) and Registry::Publish
//      (version stamp + atomic swap) at several corpus/user scales. The
//      copy is the price of an always-lock-free read path; the swap
//      itself should be effectively free.
//   2. Recommend throughput vs --threads — batch top-N over the full
//      corpus, one RankScratch per worker chunk.
//
// Flags: --scale=1.0 multiplies the size grid; --repeats=3 averages the
// publish timings; --requests=2048 sets the throughput batch size;
// --threads=1,2,4,0 picks the fan-out widths (0 = process pool size);
// --rule=attentive|max, --top_n=20, --dim=32, --seed=7.
#include <algorithm>
#include <cstdint>
#include <sstream>

#include "bench/bench_common.h"
#include "core/interest_store.h"
#include "eval/ranker.h"
#include "models/msr_model.h"
#include "serve/recommend.h"
#include "serve/registry.h"
#include "serve/snapshot.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

struct SizePoint {
  const char* label;
  int64_t num_items;
  int64_t num_users;
};

// Every user gets 2..5 interest rows, like a trained store after a few
// expansion rounds.
core::InterestStore MakeStore(int64_t num_users, int64_t dim,
                              uint64_t seed) {
  core::InterestStore store;
  util::Rng rng(seed);
  for (int64_t user = 0; user < num_users; ++user) {
    store.Initialize(static_cast<data::UserId>(user), 2 + user % 4, dim,
                     0, rng);
  }
  return store;
}

std::vector<int> ParseThreadList(const std::string& value) {
  std::vector<int> threads;
  std::stringstream stream(value);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) threads.push_back(std::stoi(token));
  }
  if (threads.empty()) threads = {1, 2, 4, 0};
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const int64_t dim = flags.GetInt("dim", 32);
  const int top_n = static_cast<int>(flags.GetInt("top_n", 20));
  const int64_t batch = flags.GetInt("requests", 2048);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const std::vector<int> thread_list =
      ParseThreadList(flags.GetString("threads", "1,2,4,0"));
  eval::ScoreRule rule = eval::ScoreRule::kAttentive;
  std::string rule_error;
  if (!eval::ScoreRuleFromName(flags.GetString("rule", "attentive"),
                               &rule, &rule_error)) {
    std::fprintf(stderr, "error: %s\n", rule_error.c_str());
    return 2;
  }

  bench::PrintHeader(
      "Serving path — publish cost and Recommend throughput",
      "DESIGN.md §9 (ServingSnapshot / SnapshotRegistry / Recommend)");

  // --- 1. Publish cost vs model size -------------------------------
  const std::vector<SizePoint> sizes = {
      {"small", 2'000, 500},
      {"medium", 20'000, 5'000},
      {"large", 100'000, 20'000},
  };
  util::Table publish_table({"size", "items", "users", "snapshot MB",
                             "build ms", "swap+retire us"});
  for (const SizePoint& size : sizes) {
    const int64_t num_items =
        std::max<int64_t>(1, static_cast<int64_t>(size.num_items * scale));
    const int64_t num_users =
        std::max<int64_t>(1, static_cast<int64_t>(size.num_users * scale));
    models::ModelConfig model_config;
    model_config.embedding_dim = dim;
    const models::MsrModel model(model_config, num_items, seed);
    const core::InterestStore store = MakeStore(num_users, dim, seed);

    serve::SnapshotRegistry registry;
    double build_ms = 0.0;
    double swap_us = 0.0;
    int64_t bytes = 0;
    for (int repeat = 0; repeat < repeats; ++repeat) {
      util::Stopwatch build_timer;
      std::shared_ptr<serve::ServingSnapshot> snapshot =
          serve::BuildSnapshot(model, store, repeat);
      build_ms += build_timer.ElapsedMillis();
      bytes = snapshot->bytes();
      util::Stopwatch swap_timer;
      registry.Publish(std::move(snapshot));
      swap_us += swap_timer.ElapsedSeconds() * 1e6;
    }
    publish_table.AddRow(
        {size.label, std::to_string(num_items), std::to_string(num_users),
         util::FormatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0),
                            2),
         util::FormatDouble(build_ms / repeats, 3),
         util::FormatDouble(swap_us / repeats, 1)});
  }
  bench::PrintTable(publish_table);
  std::printf(
      "Publish cost is the deep copy (build), linear in items*d +\n"
      "interest rows. The swap itself is one atomic exchange; the\n"
      "swap+retire column also includes freeing the previous snapshot\n"
      "(no reader held it here), which is what scales with size.\n\n");

  // --- 2. Recommend throughput vs threads --------------------------
  const int64_t num_items =
      std::max<int64_t>(1, static_cast<int64_t>(100'000 * scale));
  const int64_t num_users =
      std::max<int64_t>(1, static_cast<int64_t>(20'000 * scale));
  models::ModelConfig model_config;
  model_config.embedding_dim = dim;
  const models::MsrModel model(model_config, num_items, seed);
  const core::InterestStore store = MakeStore(num_users, dim, seed);
  serve::SnapshotRegistry registry;
  registry.Publish(serve::BuildSnapshot(model, store, 0));
  const std::shared_ptr<const serve::ServingSnapshot> snapshot =
      registry.Current();

  std::vector<serve::RecommendRequest> requests;
  requests.reserve(static_cast<size_t>(batch));
  for (int64_t i = 0; i < batch; ++i) {
    requests.push_back(
        {static_cast<data::UserId>(i % num_users), top_n});
  }

  std::printf("Recommend: %lld items, %lld users, d=%lld, batch of %lld "
              "(top %d, rule %s)\n",
              static_cast<long long>(num_items),
              static_cast<long long>(num_users),
              static_cast<long long>(dim), static_cast<long long>(batch),
              top_n, eval::ScoreRuleName(rule));
  util::Table serve_table(
      {"threads", "batch ms", "users/sec", "speedup"});
  double base_seconds = 0.0;
  for (int threads : thread_list) {
    serve::ServeConfig config;
    config.default_top_n = top_n;
    config.rule = rule;
    config.threads = threads;
    // Warm-up pass populates per-worker scratch, then timed pass.
    serve::Recommend(*snapshot, requests, config);
    util::Stopwatch timer;
    const std::vector<serve::RecommendResponse> responses =
        serve::Recommend(*snapshot, requests, config);
    const double seconds = timer.ElapsedSeconds();
    if (base_seconds == 0.0) base_seconds = seconds;
    int64_t ok = 0;
    for (const serve::RecommendResponse& response : responses) {
      if (response.ok) ++ok;
    }
    if (ok != batch) {
      std::fprintf(stderr, "error: %lld/%lld requests failed\n",
                   static_cast<long long>(batch - ok),
                   static_cast<long long>(batch));
      return 1;
    }
    serve_table.AddRow(
        {threads == 0 ? "pool" : std::to_string(threads),
         util::FormatDouble(seconds * 1e3, 2),
         util::FormatDouble(static_cast<double>(batch) / seconds, 0),
         util::FormatDouble(base_seconds / seconds, 2)});
  }
  bench::PrintTable(serve_table);
  std::printf(
      "Requests are independent; throughput should scale near-linearly\n"
      "until the memory bandwidth of the (num_items x d) score sweep\n"
      "saturates.\n");
  return 0;
}
