// Serving-path benchmark for the src/serve/ subsystem (DESIGN.md §9):
//
//   1. Publish cost vs model size — BuildSnapshot (deep copy of the
//      embedding table + packed interest export) and Registry::Publish
//      (version stamp + atomic swap) at several corpus/user scales. The
//      copy is the price of an always-lock-free read path; the swap
//      itself should be effectively free.
//   2. Recommend throughput vs --threads — batch top-N over the full
//      corpus, one RankScratch per worker chunk.
//
//   3. Exact vs IVF retrieval — on a clustered corpus (the regime the
//      index is built for), index build cost, Recommend throughput in
//      both modes, recall@top_n of IVF against the exact oracle, and the
//      probe/shortlist/re-rank accounting. --json_out dumps this section
//      as JSON for tools/bench_pr8.sh.
//
// Flags: --scale=1.0 multiplies the size grid; --repeats=3 averages the
// publish timings; --requests=2048 sets the throughput batch size;
// --threads=1,2,4,0 picks the fan-out widths (0 = process pool size);
// --rule=attentive|max, --top_n=20, --dim=32, --seed=7.
// IVF section: --ivf_sizes=10000,100000 item counts (empty disables),
// --ivf_requests=512 timed batch, --ivf_recall_queries=200 oracle sample,
// --nprobe=0 (default probe width), --json_out=<file>.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "bench/bench_common.h"
#include "core/interest_store.h"
#include "eval/ranker.h"
#include "models/msr_model.h"
#include "serve/ivf_index.h"
#include "serve/recommend.h"
#include "serve/registry.h"
#include "serve/snapshot.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

struct SizePoint {
  const char* label;
  int64_t num_items;
  int64_t num_users;
};

// Every user gets 2..5 interest rows, like a trained store after a few
// expansion rounds.
core::InterestStore MakeStore(int64_t num_users, int64_t dim,
                              uint64_t seed) {
  core::InterestStore store;
  util::Rng rng(seed);
  for (int64_t user = 0; user < num_users; ++user) {
    store.Initialize(static_cast<data::UserId>(user), 2 + user % 4, dim,
                     0, rng);
  }
  return store;
}

std::vector<int> ParseThreadList(const std::string& value) {
  std::vector<int> threads;
  std::stringstream stream(value);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) threads.push_back(std::stoi(token));
  }
  if (threads.empty()) threads = {1, 2, 4, 0};
  return threads;
}

std::vector<int64_t> ParseSizeList(const std::string& value) {
  std::vector<int64_t> sizes;
  std::stringstream stream(value);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) sizes.push_back(std::stoll(token));
  }
  return sizes;
}

// Clustered corpus + matching interests — the regime IVF targets. The
// model's embedding table is overwritten with center+noise rows and every
// user's interests are placed near cluster centers, like a trained store.
void MakeClusteredServing(int64_t num_items, int64_t num_users, int64_t dim,
                          uint64_t seed, models::MsrModel* model,
                          core::InterestStore* store) {
  util::Rng rng(seed);
  const int64_t num_clusters = std::max<int64_t>(
      16, static_cast<int64_t>(std::sqrt(static_cast<double>(num_items))));
  const nn::Tensor centers = nn::Tensor::Randn({num_clusters, dim}, rng);
  nn::Tensor& table = model->embeddings().parameter().mutable_value();
  for (int64_t i = 0; i < num_items; ++i) {
    const int64_t c = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(num_clusters)));
    const float* center = centers.data() + c * dim;
    float* row = table.data() + i * dim;
    for (int64_t k = 0; k < dim; ++k) {
      row[k] = center[k] + 0.15f * static_cast<float>(rng.NextGaussian());
    }
  }
  for (int64_t user = 0; user < num_users; ++user) {
    const int64_t k = 2 + user % 3;
    store->Initialize(static_cast<data::UserId>(user), k, dim, 0, rng);
    nn::Tensor interests = nn::Tensor::Uninitialized({k, dim});
    for (int64_t j = 0; j < k; ++j) {
      const int64_t c = static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(num_clusters)));
      const float* center = centers.data() + c * dim;
      float* row = interests.data() + j * dim;
      for (int64_t d = 0; d < dim; ++d) {
        row[d] = center[d] + 0.1f * static_cast<float>(rng.NextGaussian());
      }
    }
    store->SetInterests(static_cast<data::UserId>(user),
                        std::move(interests));
  }
}

// Timed serve::Recommend passes (one warm-up, best of three measured —
// best-of because scheduler noise only ever slows a pass down); returns
// requests/sec.
double MeasureQps(const serve::ServingSnapshot& snapshot,
                  const std::vector<serve::RecommendRequest>& requests,
                  const serve::ServeConfig& config) {
  serve::Recommend(snapshot, requests, config);
  double best_seconds = 0.0;
  for (int pass = 0; pass < 3; ++pass) {
    util::Stopwatch timer;
    serve::Recommend(snapshot, requests, config);
    const double seconds = timer.ElapsedSeconds();
    if (pass == 0 || seconds < best_seconds) best_seconds = seconds;
  }
  return static_cast<double>(requests.size()) / best_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const int64_t dim = flags.GetInt("dim", 32);
  const int top_n = static_cast<int>(flags.GetInt("top_n", 20));
  const int64_t batch = flags.GetInt("requests", 2048);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const std::vector<int> thread_list =
      ParseThreadList(flags.GetString("threads", "1,2,4,0"));
  eval::ScoreRule rule = eval::ScoreRule::kAttentive;
  std::string rule_error;
  if (!eval::ScoreRuleFromName(flags.GetString("rule", "attentive"),
                               &rule, &rule_error)) {
    std::fprintf(stderr, "error: %s\n", rule_error.c_str());
    return 2;
  }

  bench::PrintHeader(
      "Serving path — publish cost and Recommend throughput",
      "DESIGN.md §9 (ServingSnapshot / SnapshotRegistry / Recommend)");

  // --- 1. Publish cost vs model size -------------------------------
  const std::vector<SizePoint> sizes = {
      {"small", 2'000, 500},
      {"medium", 20'000, 5'000},
      {"large", 100'000, 20'000},
  };
  util::Table publish_table({"size", "items", "users", "snapshot MB",
                             "build ms", "swap+retire us"});
  for (const SizePoint& size : sizes) {
    const int64_t num_items =
        std::max<int64_t>(1, static_cast<int64_t>(size.num_items * scale));
    const int64_t num_users =
        std::max<int64_t>(1, static_cast<int64_t>(size.num_users * scale));
    models::ModelConfig model_config;
    model_config.embedding_dim = dim;
    const models::MsrModel model(model_config, num_items, seed);
    const core::InterestStore store = MakeStore(num_users, dim, seed);

    serve::SnapshotRegistry registry;
    double build_ms = 0.0;
    double swap_us = 0.0;
    int64_t bytes = 0;
    for (int repeat = 0; repeat < repeats; ++repeat) {
      util::Stopwatch build_timer;
      std::shared_ptr<serve::ServingSnapshot> snapshot =
          serve::BuildSnapshot(model, store, repeat);
      build_ms += build_timer.ElapsedMillis();
      bytes = snapshot->bytes();
      util::Stopwatch swap_timer;
      registry.Publish(std::move(snapshot));
      swap_us += swap_timer.ElapsedSeconds() * 1e6;
    }
    publish_table.AddRow(
        {size.label, std::to_string(num_items), std::to_string(num_users),
         util::FormatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0),
                            2),
         util::FormatDouble(build_ms / repeats, 3),
         util::FormatDouble(swap_us / repeats, 1)});
  }
  bench::PrintTable(publish_table);
  std::printf(
      "Publish cost is the deep copy (build), linear in items*d +\n"
      "interest rows. The swap itself is one atomic exchange; the\n"
      "swap+retire column also includes freeing the previous snapshot\n"
      "(no reader held it here), which is what scales with size.\n\n");

  // --- 2. Recommend throughput vs threads --------------------------
  const int64_t num_items =
      std::max<int64_t>(1, static_cast<int64_t>(100'000 * scale));
  const int64_t num_users =
      std::max<int64_t>(1, static_cast<int64_t>(20'000 * scale));
  models::ModelConfig model_config;
  model_config.embedding_dim = dim;
  const models::MsrModel model(model_config, num_items, seed);
  const core::InterestStore store = MakeStore(num_users, dim, seed);
  serve::SnapshotRegistry registry;
  registry.Publish(serve::BuildSnapshot(model, store, 0));
  const std::shared_ptr<const serve::ServingSnapshot> snapshot =
      registry.Current();

  std::vector<serve::RecommendRequest> requests;
  requests.reserve(static_cast<size_t>(batch));
  for (int64_t i = 0; i < batch; ++i) {
    requests.push_back(
        {static_cast<data::UserId>(i % num_users), top_n});
  }

  std::printf("Recommend: %lld items, %lld users, d=%lld, batch of %lld "
              "(top %d, rule %s)\n",
              static_cast<long long>(num_items),
              static_cast<long long>(num_users),
              static_cast<long long>(dim), static_cast<long long>(batch),
              top_n, eval::ScoreRuleName(rule));
  util::Table serve_table(
      {"threads", "batch ms", "users/sec", "speedup"});
  double base_seconds = 0.0;
  for (int threads : thread_list) {
    serve::ServeConfig config;
    config.default_top_n = top_n;
    config.rule = rule;
    config.threads = threads;
    // Warm-up pass populates per-worker scratch, then timed pass.
    serve::Recommend(*snapshot, requests, config);
    util::Stopwatch timer;
    const std::vector<serve::RecommendResponse> responses =
        serve::Recommend(*snapshot, requests, config);
    const double seconds = timer.ElapsedSeconds();
    if (base_seconds == 0.0) base_seconds = seconds;
    int64_t ok = 0;
    for (const serve::RecommendResponse& response : responses) {
      if (response.ok) ++ok;
    }
    if (ok != batch) {
      std::fprintf(stderr, "error: %lld/%lld requests failed\n",
                   static_cast<long long>(batch - ok),
                   static_cast<long long>(batch));
      return 1;
    }
    serve_table.AddRow(
        {threads == 0 ? "pool" : std::to_string(threads),
         util::FormatDouble(seconds * 1e3, 2),
         util::FormatDouble(static_cast<double>(batch) / seconds, 0),
         util::FormatDouble(base_seconds / seconds, 2)});
  }
  bench::PrintTable(serve_table);
  std::printf(
      "Requests are independent; throughput should scale near-linearly\n"
      "until the memory bandwidth of the (num_items x d) score sweep\n"
      "saturates.\n\n");

  // --- 3. Exact vs IVF retrieval -----------------------------------
  const std::vector<int64_t> ivf_sizes =
      ParseSizeList(flags.GetString("ivf_sizes", "10000,100000"));
  const int64_t ivf_requests = flags.GetInt("ivf_requests", 512);
  const int64_t recall_queries = flags.GetInt("ivf_recall_queries", 200);
  const int nprobe = static_cast<int>(flags.GetInt("nprobe", 0));
  const std::string json_out = flags.GetString("json_out", "");
  if (ivf_sizes.empty()) return 0;

  std::printf("Exact vs IVF Recommend on a clustered corpus (d=%lld, "
              "top %d, rule %s, batch of %lld, pool threads)\n",
              static_cast<long long>(dim), top_n,
              eval::ScoreRuleName(rule),
              static_cast<long long>(ivf_requests));
  util::Table ivf_table({"items", "centroids", "nprobe", "index ms",
                         "exact qps", "ivf qps", "speedup", "recall@N"});
  std::ostringstream json;
  json << "[\n";
  for (size_t s = 0; s < ivf_sizes.size(); ++s) {
    const int64_t items = std::max<int64_t>(1, ivf_sizes[s]);
    const int64_t users =
        std::min<int64_t>(20'000, std::max<int64_t>(64, items / 5));
    models::ModelConfig ivf_model_config;
    ivf_model_config.embedding_dim = dim;
    models::MsrModel ivf_model(ivf_model_config, items, seed);
    core::InterestStore ivf_store;
    MakeClusteredServing(items, users, dim, seed + s, &ivf_model,
                         &ivf_store);

    // Index build cost = indexed publish minus the plain snapshot copy.
    util::Stopwatch plain_timer;
    std::shared_ptr<serve::ServingSnapshot> plain =
        serve::BuildSnapshot(ivf_model, ivf_store, 0);
    const double snapshot_ms = plain_timer.ElapsedMillis();
    plain.reset();
    serve::SnapshotRegistry ivf_registry;
    util::Stopwatch indexed_timer;
    ivf_registry.Publish(serve::BuildSnapshot(ivf_model, ivf_store, 0,
                                              serve::IvfBuildConfig{}));
    const double indexed_ms = indexed_timer.ElapsedMillis();
    const std::shared_ptr<const serve::ServingSnapshot> indexed =
        ivf_registry.Current();
    const serve::IvfIndex& index = *indexed->index();
    const int effective_nprobe =
        nprobe > 0 ? nprobe : index.default_nprobe();

    std::vector<serve::RecommendRequest> ivf_batch;
    ivf_batch.reserve(static_cast<size_t>(ivf_requests));
    for (int64_t i = 0; i < ivf_requests; ++i) {
      ivf_batch.push_back({static_cast<data::UserId>(i % users), top_n});
    }
    serve::ServeConfig exact_config;
    exact_config.default_top_n = top_n;
    exact_config.rule = rule;
    exact_config.threads = 0;
    exact_config.retrieval = serve::RetrievalMode::kExact;
    const double exact_qps = MeasureQps(*indexed, ivf_batch, exact_config);
    serve::ServeConfig ivf_config = exact_config;
    ivf_config.retrieval = serve::RetrievalMode::kIVF;
    ivf_config.nprobe = nprobe;
    const double ivf_qps = MeasureQps(*indexed, ivf_batch, ivf_config);

    // Recall + probe accounting against the brute-force oracle on a
    // query sample (serial; the timed passes above stay undisturbed).
    serve::IvfIndex::Scratch scratch;
    eval::RankScratch oracle_scratch;
    std::vector<std::pair<data::ItemId, float>> approx;
    serve::IvfSearchTotals totals;
    double recall_sum = 0.0;
    const int64_t sample = std::min<int64_t>(recall_queries, users);
    for (int64_t q = 0; q < sample; ++q) {
      const auto user = static_cast<data::UserId>(q);
      serve::IvfSearchStats stats;
      index.SearchTopN(indexed->Interests(user),
                       indexed->item_embeddings(), rule, top_n, nprobe,
                       &scratch, &approx, &stats);
      totals.Add(stats);
      eval::ScoreAllItemsInto(indexed->Interests(user),
                              indexed->item_embeddings(), rule,
                              &oracle_scratch);
      const std::vector<std::pair<data::ItemId, float>> oracle =
          eval::TopNFromScores(oracle_scratch.scores, top_n);
      std::set<data::ItemId> oracle_items;
      for (const auto& entry : oracle) oracle_items.insert(entry.first);
      int hits = 0;
      for (const auto& entry : approx) {
        if (oracle_items.count(entry.first) > 0) ++hits;
      }
      recall_sum += oracle_items.empty()
                        ? 1.0
                        : static_cast<double>(hits) /
                              static_cast<double>(oracle_items.size());
    }
    const double denom = sample > 0 ? static_cast<double>(sample) : 1.0;
    const double recall = recall_sum / denom;
    const double searches =
        totals.searches > 0 ? static_cast<double>(totals.searches) : 1.0;

    ivf_table.AddRow(
        {std::to_string(items), std::to_string(index.num_centroids()),
         std::to_string(effective_nprobe),
         util::FormatDouble(indexed_ms - snapshot_ms, 2),
         util::FormatDouble(exact_qps, 0), util::FormatDouble(ivf_qps, 0),
         util::FormatDouble(ivf_qps / exact_qps, 2),
         util::FormatDouble(recall, 4)});

    json << "  {\"items\": " << items << ", \"users\": " << users
         << ", \"dim\": " << dim << ", \"top_n\": " << top_n
         << ", \"rule\": \"" << eval::ScoreRuleName(rule) << "\""
         << ", \"centroids\": " << index.num_centroids()
         << ", \"nprobe\": " << effective_nprobe
         << ", \"requests\": " << ivf_requests
         << ",\n   \"snapshot_build_ms\": "
         << util::FormatDouble(snapshot_ms, 3)
         << ", \"indexed_build_ms\": " << util::FormatDouble(indexed_ms, 3)
         << ", \"index_build_ms\": "
         << util::FormatDouble(indexed_ms - snapshot_ms, 3)
         << ",\n   \"exact_qps\": " << util::FormatDouble(exact_qps, 1)
         << ", \"ivf_qps\": " << util::FormatDouble(ivf_qps, 1)
         << ", \"speedup\": " << util::FormatDouble(ivf_qps / exact_qps, 3)
         << ",\n   \"recall_at_top_n\": " << util::FormatDouble(recall, 4)
         << ", \"recall_queries\": " << sample
         << ", \"mean_probes\": "
         << util::FormatDouble(static_cast<double>(totals.probes) / searches,
                               1)
         << ", \"mean_shortlist\": "
         << util::FormatDouble(
                static_cast<double>(totals.shortlist) / searches, 1)
         << ", \"mean_reranked\": "
         << util::FormatDouble(
                static_cast<double>(totals.reranked) / searches, 1)
         << "}" << (s + 1 < ivf_sizes.size() ? "," : "") << "\n";
  }
  json << "]\n";
  bench::PrintTable(ivf_table);
  std::printf(
      "IVF probes nprobe lists per interest, scores candidates with int8\n"
      "dots and re-ranks the shortlist with the exact float kernels, so\n"
      "returned scores match brute force bit for bit; recall@N counts\n"
      "how often the exact top-N items survive the probe.\n");
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 1;
    }
    out << json.str();
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}
