// Figure 3 reproduction: what fixed (untrimmed) interest expansion learns.
// Expanding every user by a fixed delta-K *without* PIT produces new
// interest vectors that are either (a) redundant — highly correlated with
// an existing interest in how they score the user's items (high Pearson
// coefficient) — or (b) vacuous — tiny L2 norm ("learned nothing"). The
// bench reports both statistics with trimming disabled, exactly the two
// pathologies PIT removes.
#include <algorithm>

#include "bench/bench_common.h"
#include "core/imsr_trainer.h"
#include "util/math_util.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::BenchSetup setup = bench::ParseBenchFlags(flags);

  bench::PrintHeader(
      "Figure 3 — redundancy/vacuousness of untrimmed new interests",
      "Fig. 3 (Pearson correlations vs existing interests; L2 norms)");

  const data::SyntheticDataset synthetic = GenerateSynthetic(
      data::SyntheticConfig::Taobao(std::max(setup.scale, 0.15)));
  const data::Dataset& dataset = *synthetic.dataset;

  // IMSR with NID always firing and trimming disabled = fixed expansion.
  models::MsrModel model(setup.experiment.model, dataset.num_items(),
                         setup.seed);
  core::InterestStore store;
  core::TrainConfig train = setup.experiment.strategy.train;
  train.expansion.nid.c1 = 1e9;  // always expand
  train.expansion.pit.c2 = 0.0;  // never trim
  core::ImsrTrainer trainer(&model, &store, train);
  trainer.Pretrain(dataset);
  trainer.TrainSpan(dataset, 1);

  // For each expanded user: per-interest similarity profiles over the
  // user's items, Pearson correlation of each new interest against its
  // most-correlated existing interest, and the new interests' L2 norms.
  std::vector<double> max_correlations;
  std::vector<double> new_norms;
  int shown = 0;
  for (data::UserId user : dataset.active_users(1)) {
    if (!store.Has(user)) continue;
    const std::vector<int>& births = store.BirthSpans(user);
    const int64_t k_total = store.NumInterests(user);
    int64_t k_existing = 0;
    for (int birth : births) k_existing += birth == 0 ? 1 : 0;
    if (k_existing == k_total || k_existing == 0) continue;

    const data::UserSpanData& span_data = dataset.user_span(user, 1);
    std::vector<data::ItemId> items = span_data.all;
    const data::UserSpanData& pre = dataset.user_span(user, 0);
    items.insert(items.end(), pre.all.begin(), pre.all.end());
    if (items.size() < 4) continue;
    const nn::Tensor item_embeddings =
        model.embeddings().LookupNoGrad(items);
    const nn::Tensor& interests = store.Interests(user);

    // p_k = similarity profile of interest k over the user's items.
    std::vector<std::vector<double>> profiles(
        static_cast<size_t>(k_total));
    for (int64_t k = 0; k < k_total; ++k) {
      const nn::Tensor scores =
          nn::MatVec(item_embeddings, interests.Row(k));
      profiles[static_cast<size_t>(k)].assign(
          scores.data(), scores.data() + scores.numel());
    }

    for (int64_t j = k_existing; j < k_total; ++j) {
      double best = -1.0;
      for (int64_t k = 0; k < k_existing; ++k) {
        best = std::max(best, util::PearsonCorrelation(
                                  profiles[static_cast<size_t>(j)],
                                  profiles[static_cast<size_t>(k)]));
      }
      max_correlations.push_back(best);
      new_norms.push_back(nn::L2NormFlat(interests.Row(j)));
    }

    if (shown < 2) {
      ++shown;
      std::printf("example user %d (%lld existing, %lld new):\n", user,
                  static_cast<long long>(k_existing),
                  static_cast<long long>(k_total - k_existing));
      for (int64_t j = k_existing; j < k_total; ++j) {
        double best = -1.0;
        int64_t best_k = 0;
        for (int64_t k = 0; k < k_existing; ++k) {
          const double corr = util::PearsonCorrelation(
              profiles[static_cast<size_t>(j)],
              profiles[static_cast<size_t>(k)]);
          if (corr > best) {
            best = corr;
            best_k = k;
          }
        }
        std::printf(
            "  new interest %lld: max Pearson %.3f (vs existing %lld), "
            "L2 norm %.3f\n",
            static_cast<long long>(j - k_existing), best,
            static_cast<long long>(best_k),
            nn::L2NormFlat(store.Interests(user).Row(j)));
      }
    }
  }

  IMSR_CHECK(!max_correlations.empty())
      << "no expanded users — increase --scale";

  std::sort(max_correlations.begin(), max_correlations.end());
  std::sort(new_norms.begin(), new_norms.end());
  auto quantile = [](const std::vector<double>& values, double q) {
    return values[static_cast<size_t>(q *
                                      static_cast<double>(values.size() -
                                                          1))];
  };
  const double redundant_fraction =
      static_cast<double>(std::count_if(max_correlations.begin(),
                                        max_correlations.end(),
                                        [](double c) { return c > 0.8; })) /
      static_cast<double>(max_correlations.size());
  const double vacuous_fraction =
      static_cast<double>(std::count_if(new_norms.begin(), new_norms.end(),
                                        [](double n) { return n < 0.3; })) /
      static_cast<double>(new_norms.size());

  std::printf("\n%zu new interests created without trimming:\n",
              max_correlations.size());
  std::printf(
      "  max Pearson vs existing: q25 %.3f  median %.3f  q75 %.3f\n",
      quantile(max_correlations, 0.25), quantile(max_correlations, 0.5),
      quantile(max_correlations, 0.75));
  std::printf("  L2 norm:                 q25 %.3f  median %.3f  q75 %.3f\n",
              quantile(new_norms, 0.25), quantile(new_norms, 0.5),
              quantile(new_norms, 0.75));
  std::printf("  redundant (corr > 0.8): %.1f%%   vacuous (norm < 0.3): "
              "%.1f%%\n\n",
              redundant_fraction * 100.0, vacuous_fraction * 100.0);

  std::printf(
      "Paper's shape (Fig. 3): without trimming, some new interests are\n"
      "highly correlated with an existing interest (redundant) and some\n"
      "have near-zero L2 norm (learned nothing) — the two pathologies the\n"
      "projection-based trimmer removes.\n");
  return 0;
}
