// Shared helpers for the paper-reproduction bench binaries: flag-driven
// experiment configuration and consistent result formatting. Every bench
// prints the paper's rows/series next to ours, at a laptop scale that is
// overridable from the command line (--scale=, --repeats=, ...).
#ifndef IMSR_BENCH_BENCH_COMMON_H_
#define IMSR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "util/csv.h"
#include "util/flags.h"

namespace imsr::bench {

// Parses an extractor name from a flag value; a typo prints the valid
// names on stderr and exits with a usage error instead of aborting.
inline models::ExtractorKind ExtractorKindFromNameOrExit(
    const std::string& name) {
  models::ExtractorKind kind;
  std::string error;
  if (!models::ExtractorKindFromName(name, &kind, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    std::exit(2);
  }
  return kind;
}

// Scale applied to dataset presets when --scale is not given. Chosen so
// the full bench suite finishes in tens of minutes on a laptop.
inline constexpr double kDefaultScale = 0.16;

struct BenchSetup {
  double scale = kDefaultScale;
  int repeats = 1;
  uint64_t seed = 7;
  core::ExperimentConfig experiment;  // model/strategy/eval defaults
};

// Parses the common bench flags:
//   --scale=0.25 --repeats=1 --seed=7 --dim=32 --epochs=3
//   --pretrain_epochs=5 --kd=0.1 --c1=0.04 --c2=0.3 --delta_k=3 --k0=4
inline BenchSetup ParseBenchFlags(const util::Flags& flags) {
  BenchSetup setup;
  setup.scale = flags.GetDouble("scale", kDefaultScale);
  setup.repeats = static_cast<int>(flags.GetInt("repeats", 1));
  setup.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  setup.experiment.seed = setup.seed;

  auto& model = setup.experiment.model;
  model.embedding_dim = flags.GetInt("dim", 32);
  model.attention_dim = flags.GetInt("dim", 32);

  auto& train = setup.experiment.strategy.train;
  train.pretrain_epochs =
      static_cast<int>(flags.GetInt("pretrain_epochs", 5));
  train.epochs = static_cast<int>(flags.GetInt("epochs", 3));
  train.learning_rate =
      static_cast<float>(flags.GetDouble("lr", 0.005));
  train.initial_interests = static_cast<int>(flags.GetInt("k0", 4));
  train.eir.coefficient =
      static_cast<float>(flags.GetDouble("kd", 0.1));
  train.expansion.nid.c1 = flags.GetDouble("c1", 0.06);
  train.expansion.pit.c2 = flags.GetDouble("c2", 0.3);
  train.expansion.delta_k =
      static_cast<int>(flags.GetInt("delta_k", 3));
  setup.experiment.eval.top_n =
      static_cast<int>(flags.GetInt("top_n", 20));
  return setup;
}

// The four dataset presets of Table II, at the bench scale.
inline std::vector<data::SyntheticConfig> AllDatasetConfigs(double scale) {
  return {data::SyntheticConfig::Electronics(scale),
          data::SyntheticConfig::Clothing(scale),
          data::SyntheticConfig::Books(scale),
          data::SyntheticConfig::Taobao(scale)};
}

// Runs one strategy on a dataset, averaging over `repeats` seeds.
inline core::ExperimentResult RunStrategy(
    const data::Dataset& dataset, const BenchSetup& setup,
    core::StrategyKind kind, models::ExtractorKind model_kind) {
  core::ExperimentConfig config = setup.experiment;
  config.model.kind = model_kind;
  config.strategy.kind = kind;
  return core::RunRepeatedExperiment(dataset, config, setup.repeats);
}

inline void PrintHeader(const std::string& title,
                        const std::string& paper_reference) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper reference: %s\n", paper_reference.c_str());
  std::printf("Absolute numbers differ from the paper (synthetic corpus at\n"
              "laptop scale); the reproduced quantity is the *shape*:\n"
              "orderings, trends and rough factors.\n");
  std::printf("==============================================================\n\n");
}

inline void PrintTable(const util::Table& table) {
  std::printf("%s\n", table.ToPrettyString().c_str());
}

}  // namespace imsr::bench

#endif  // IMSR_BENCH_BENCH_COMMON_H_
