// google-benchmark micro suite for the substrate: the hot operations of
// the MSR stack (matmul, softmax, squash, B2I routing, SA attention,
// PIT projection, full-corpus ranking, puzzlement) — useful for spotting
// regressions in the numeric kernels.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/nid.h"
#include "core/pit.h"
#include "eval/ranker.h"
#include "models/capsule_routing.h"
#include "models/comirec_sa.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

void BM_MatMul(benchmark::State& state) {
  util::Rng rng(1);
  const auto n = static_cast<int64_t>(state.range(0));
  const nn::Tensor a = nn::Tensor::Randn({n, 32}, rng);
  const nn::Tensor b = nn::Tensor::Randn({32, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(256);

void BM_MatMulTransB(benchmark::State& state) {
  util::Rng rng(1);
  const auto n = static_cast<int64_t>(state.range(0));
  const nn::Tensor a = nn::Tensor::Randn({n, 32}, rng);
  const nn::Tensor b = nn::Tensor::Randn({32, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMulTransB(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MatMulTransB)->Arg(16)->Arg(64)->Arg(256);

void BM_ParallelFor_overhead(benchmark::State& state) {
  // Dispatch cost of the persistent pool: a near-empty body over `count`
  // elements, chunked with the default grain.
  const auto count = static_cast<int64_t>(state.range(0));
  std::vector<float> sink(static_cast<size_t>(count), 0.0f);
  util::ThreadPool& pool = util::GlobalPool();
  for (auto _ : state) {
    pool.ParallelFor(count, 0, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        sink[static_cast<size_t>(i)] += 1.0f;
      }
    });
    benchmark::DoNotOptimize(sink.data());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_ParallelFor_overhead)->Arg(1)->Arg(1024)->Arg(65536);

void BM_SoftmaxRows(benchmark::State& state) {
  util::Rng rng(2);
  const nn::Tensor a = nn::Tensor::Randn({state.range(0), 8}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::Softmax(a));
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(64)->Arg(1024);

void BM_SquashRows(benchmark::State& state) {
  util::Rng rng(3);
  const nn::Tensor a = nn::Tensor::Randn({state.range(0), 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::SquashRows(a));
  }
}
BENCHMARK(BM_SquashRows)->Arg(8)->Arg(64);

void BM_B2IRouting(benchmark::State& state) {
  util::Rng rng(4);
  const auto n = static_cast<int64_t>(state.range(0));
  const nn::Tensor e_hat = nn::Tensor::Randn({n, 32}, rng);
  const nn::Tensor init = nn::Tensor::Randn({6, 32}, rng);
  const models::RoutingConfig config{3, 0.0f};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        models::B2IRouting(e_hat, init, config, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_B2IRouting)->Arg(20)->Arg(50)->Arg(200);

void BM_SelfAttentionForward(benchmark::State& state) {
  util::Rng rng(5);
  models::SelfAttentionExtractor extractor(32, 32, rng);
  extractor.EnsureUserCapacity(0, 6, rng, nullptr);
  const nn::Tensor items =
      nn::Tensor::Randn({state.range(0), 32}, rng);
  const nn::Tensor init = nn::Tensor::Randn({6, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.ForwardNoGrad(items, init, 0));
  }
}
BENCHMARK(BM_SelfAttentionForward)->Arg(20)->Arg(50);

void BM_PitProjectAndTrim(benchmark::State& state) {
  util::Rng rng(6);
  const nn::Tensor interests =
      nn::Tensor::Randn({state.range(0), 32}, rng);
  const core::PitConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ProjectAndTrim(interests, state.range(0) - 3, config));
  }
}
BENCHMARK(BM_PitProjectAndTrim)->Arg(7)->Arg(12);

void BM_Puzzlement(benchmark::State& state) {
  util::Rng rng(7);
  const nn::Tensor items = nn::Tensor::Randn({state.range(0), 32}, rng);
  const nn::Tensor interests = nn::Tensor::Randn({6, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MeanAssignmentKl(items, interests));
  }
}
BENCHMARK(BM_Puzzlement)->Arg(12)->Arg(50);

void BM_FullCorpusRanking(benchmark::State& state) {
  util::Rng rng(8);
  const auto items = static_cast<int64_t>(state.range(0));
  const nn::Tensor table = nn::Tensor::Randn({items, 32}, rng);
  const nn::Tensor interests = nn::Tensor::Randn({6, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::TargetRank(
        interests, table, 7, eval::ScoreRule::kAttentive));
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_FullCorpusRanking)->Arg(1000)->Arg(4000);

void BM_RankAllUsers(benchmark::State& state) {
  // Full-corpus evaluation sweep: every user's interests score the whole
  // item table (the Table-3/-4 inner loop), batched over the persistent
  // pool with per-chunk scratch reuse.
  util::Rng rng(10);
  constexpr int64_t kUsers = 64;
  constexpr int64_t kInterests = 6;
  const auto items = static_cast<int64_t>(state.range(0));
  const nn::Tensor table = nn::Tensor::Randn({items, 32}, rng);
  std::vector<nn::Tensor> interests;
  interests.reserve(kUsers);
  for (int64_t u = 0; u < kUsers; ++u) {
    interests.push_back(nn::Tensor::Randn({kInterests, 32}, rng));
  }
  std::vector<int64_t> ranks(kUsers, 0);
  for (auto _ : state) {
    util::ParallelChunks(kUsers, 0, [&](int64_t begin, int64_t end) {
      eval::RankScratch scratch;
      for (int64_t u = begin; u < end; ++u) {
        eval::ScoreAllItemsInto(interests[static_cast<size_t>(u)], table,
                                eval::ScoreRule::kAttentive, &scratch);
        ranks[static_cast<size_t>(u)] =
            eval::TargetRankFromScores(scratch.scores, u % items);
      }
    });
    benchmark::DoNotOptimize(ranks.data());
  }
  state.SetItemsProcessed(state.iterations() * kUsers * items);
}
BENCHMARK(BM_RankAllUsers)->Arg(1000)->Arg(4000);

void BM_AutogradTrainingStep(benchmark::State& state) {
  // One representative sample graph: gather -> routing extract -> Eq.5
  // aggregate -> sampled softmax -> backward.
  util::Rng rng(9);
  nn::Var table(nn::Tensor::Randn({1000, 32}, rng), true);
  nn::Var transform(nn::Tensor::Randn({32, 32}, rng), true);
  const nn::Tensor init = nn::Tensor::Randn({4, 32}, rng);
  std::vector<int64_t> history(20);
  for (auto& h : history) h = static_cast<int64_t>(rng.NextBelow(1000));
  std::vector<int64_t> candidates(11);
  for (auto& c : candidates) c = static_cast<int64_t>(rng.NextBelow(1000));
  const models::RoutingConfig config{3, 0.0f};
  for (auto _ : state) {
    nn::Var items = nn::ops::GatherRows(table, history);
    nn::Var e_hat = nn::ops::MatMul(items, transform);
    const nn::Tensor coupling =
        models::B2IRouting(e_hat.value(), init, config, nullptr);
    nn::Var interests = nn::ops::SquashRows(
        nn::ops::MatMul(nn::Var(nn::Transpose(coupling)), e_hat));
    nn::Var cands = nn::ops::GatherRows(table, candidates);
    nn::Var target = nn::ops::RowVector(cands, 0);
    nn::Var beta = nn::ops::Softmax(nn::ops::MatVec(interests, target));
    nn::Var v = nn::ops::MatVec(nn::ops::Transpose(interests), beta);
    nn::Var loss =
        nn::ops::NegLogSoftmax(nn::ops::MatVec(cands, v), 0);
    loss.Backward();
    table.ZeroGrad();
    transform.ZeroGrad();
    benchmark::DoNotOptimize(loss.value().item());
  }
}
BENCHMARK(BM_AutogradTrainingStep);

}  // namespace

BENCHMARK_MAIN();
