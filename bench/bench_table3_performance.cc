// Table III reproduction: HR@20 / NDCG@20 / RI of the five learning
// strategies (FR, FT, SML, ADER, IMSR) on three base models (MIND,
// ComiRec-DR, ComiRec-SA) across the four datasets, averaged over the
// incremental spans 1..T-1.
//
// Flags: --data=taobao limits to one dataset, --model=dr to one base
// model, --scale/--repeats control cost (paper uses 10 repeats at full
// scale; the default here is 1 repeat at laptop scale).
#include <optional>

#include "bench/bench_common.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

struct StrategyRow {
  core::StrategyKind kind;
  core::ExperimentResult result;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchSetup setup = bench::ParseBenchFlags(flags);
  const std::string only_data = flags.GetString("data", "");
  const std::string only_model = flags.GetString("model", "");
  // Validate the filter up front so a typo is a usage error, not a
  // silently empty report.
  const bool filter_model = !only_model.empty();
  const models::ExtractorKind only_model_kind =
      filter_model ? bench::ExtractorKindFromNameOrExit(only_model)
                   : models::ExtractorKind::kMind;

  bench::PrintHeader(
      "Table III — performance comparison of learning strategies",
      "Table III (3 base models x 5 strategies x 4 datasets)");

  const std::vector<models::ExtractorKind> base_models = {
      models::ExtractorKind::kMind, models::ExtractorKind::kComiRecDr,
      models::ExtractorKind::kComiRecSa};
  const std::vector<core::StrategyKind> strategies = {
      core::StrategyKind::kFullRetrain, core::StrategyKind::kFineTune,
      core::StrategyKind::kSml, core::StrategyKind::kAder,
      core::StrategyKind::kImsr};

  for (const data::SyntheticConfig& data_config :
       bench::AllDatasetConfigs(setup.scale)) {
    std::string lower = data_config.name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (!only_data.empty() && lower != only_data) continue;

    const data::SyntheticDataset synthetic = GenerateSynthetic(data_config);
    const data::Dataset& dataset = *synthetic.dataset;
    std::printf("--- %s (%lld users, %d items) ---\n",
                data_config.name.c_str(),
                static_cast<long long>(dataset.num_kept_users()),
                dataset.num_items());

    for (models::ExtractorKind model_kind : base_models) {
      if (filter_model && only_model_kind != model_kind) {
        continue;
      }
      std::vector<StrategyRow> rows;
      std::optional<double> ft_score;
      for (core::StrategyKind kind : strategies) {
        StrategyRow row{kind, bench::RunStrategy(dataset, setup, kind,
                                                 model_kind)};
        if (kind == core::StrategyKind::kFineTune) {
          ft_score =
              (row.result.avg_hit_ratio + row.result.avg_ndcg) / 2.0;
        }
        rows.push_back(std::move(row));
      }

      // Best / second-best among the incremental strategies (not FR).
      double best = -1.0;
      double second = -1.0;
      for (const StrategyRow& row : rows) {
        if (row.kind == core::StrategyKind::kFullRetrain) continue;
        const double score =
            (row.result.avg_hit_ratio + row.result.avg_ndcg) / 2.0;
        if (score > best) {
          second = best;
          best = score;
        } else if (score > second) {
          second = score;
        }
      }

      util::Table table({"Base model", "Strategy", "HR@20", "NDCG@20",
                         "RI vs FT", "avg K", "mark"});
      for (const StrategyRow& row : rows) {
        const double score =
            (row.result.avg_hit_ratio + row.result.avg_ndcg) / 2.0;
        std::string ri = "-";
        if (ft_score.has_value() &&
            row.kind != core::StrategyKind::kFineTune &&
            *ft_score > 0.0) {
          ri = util::FormatDouble((score / *ft_score - 1.0) * 100.0, 2);
        }
        std::string mark;
        if (row.kind != core::StrategyKind::kFullRetrain) {
          if (score == best) mark = "best";
          else if (score == second) mark = "2nd";
        }
        table.AddRow({models::ExtractorKindName(model_kind),
                      core::StrategyKindName(row.kind),
                      util::FormatPercent(row.result.avg_hit_ratio),
                      util::FormatPercent(row.result.avg_ndcg), ri,
                      util::FormatDouble(
                          row.result.spans.back().avg_interests, 1),
                      mark});
      }
      bench::PrintTable(table);
    }
  }

  std::printf(
      "Paper's shape: FR highest (trains on all data); FT lowest of the\n"
      "strategies; SML/ADER between FT and IMSR; IMSR best incremental\n"
      "method (paper: +3.8-4.8%% NDCG over the 2nd-best incremental,\n"
      "~8%% RI over FT), consistent across base models; IMSR's average\n"
      "interest count grows most on Taobao.\n");
  return 0;
}
