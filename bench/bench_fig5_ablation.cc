// Figure 5 reproduction: ablation study on Books and Taobao with
// ComiRec-DR and ComiRec-SA. Variants: FT, IMSR w/o NID&PIT, IMSR w/o
// EIR, IMSR(DIR) (Euclidean retention), IMSR(KD1/KD2/KD3) (softmax
// distillation variants) and full IMSR.
#include "bench/bench_common.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

struct Variant {
  std::string name;
  core::StrategyKind kind;
  core::RetentionKind retention;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchSetup setup = bench::ParseBenchFlags(flags);

  bench::PrintHeader(
      "Figure 5 — ablation study (Books & Taobao, ComiRec-DR/SA)",
      "Fig. 5 (per-span HR of FT, IMSR w/o NID&PIT, w/o EIR, DIR, "
      "KD1-3, IMSR)");

  const std::vector<Variant> variants = {
      {"FT", core::StrategyKind::kFineTune,
       core::RetentionKind::kSigmoidKd},
      {"IMSR w/o NID&PIT", core::StrategyKind::kImsrNoExpansion,
       core::RetentionKind::kSigmoidKd},
      {"IMSR w/o EIR", core::StrategyKind::kImsrNoEir,
       core::RetentionKind::kSigmoidKd},
      {"IMSR(DIR)", core::StrategyKind::kImsr,
       core::RetentionKind::kEuclidean},
      {"IMSR(KD1)", core::StrategyKind::kImsr,
       core::RetentionKind::kSoftmaxKd1},
      {"IMSR(KD2)", core::StrategyKind::kImsr,
       core::RetentionKind::kSoftmaxKd2},
      {"IMSR(KD3)", core::StrategyKind::kImsr,
       core::RetentionKind::kSoftmaxKd3},
      {"IMSR", core::StrategyKind::kImsr,
       core::RetentionKind::kSigmoidKd},
  };

  for (const char* dataset_name : {"books", "taobao"}) {
    const data::SyntheticDataset synthetic = GenerateSynthetic(
        data::SyntheticConfig::Preset(dataset_name, setup.scale));
    const data::Dataset& dataset = *synthetic.dataset;

    for (models::ExtractorKind model_kind :
         {models::ExtractorKind::kComiRecDr,
          models::ExtractorKind::kComiRecSa}) {
      std::printf("--- %s / %s ---\n", dataset_name,
                  models::ExtractorKindName(model_kind));
      std::vector<std::string> header = {"Variant"};
      for (int span = 0; span <= dataset.num_incremental_spans() - 1;
           ++span) {
        header.push_back("span " + std::to_string(span));
      }
      header.push_back("avg");
      util::Table table(header);

      for (const Variant& variant : variants) {
        bench::BenchSetup variant_setup = setup;
        variant_setup.experiment.strategy.train.eir.kind =
            variant.retention;
        const core::ExperimentResult result = bench::RunStrategy(
            dataset, variant_setup, variant.kind, model_kind);
        std::vector<std::string> row = {variant.name};
        for (const core::SpanMetrics& span : result.spans) {
          row.push_back(util::FormatPercent(span.hit_ratio));
        }
        row.push_back(util::FormatPercent(result.avg_hit_ratio));
        table.AddRow(row);
      }
      bench::PrintTable(table);
    }
  }

  std::printf(
      "Paper's shape (Fig. 5): full IMSR best on both datasets and both\n"
      "base models; removing any component hurts; on Taobao the NID&PIT\n"
      "removal hurts most (fast-moving interests; avg K grows 4.0->9.2);\n"
      "on Books the EIR removal hurts most (stable interests; K only\n"
      "4.0->5.6); DIR (Euclidean) retention is worse than any KD variant;\n"
      "the KD variants (EIR/KD1/KD2/KD3) are close to each other.\n");
  return 0;
}
