// Figure 6 reproduction: hyperparameter sensitivity of IMSR on Books and
// Taobao (ComiRec-DR by default): the puzzlement threshold c1, the
// trimming threshold c2, and the (K, delta-K) interest-budget settings
// including the "create everything in advance" controls (19,0)/(21,0).
#include "bench/bench_common.h"

namespace {

using namespace imsr;  // NOLINT(build/namespaces)

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bench::BenchSetup setup = bench::ParseBenchFlags(flags);
  const models::ExtractorKind model_kind =
      bench::ExtractorKindFromNameOrExit(flags.GetString("model", "dr"));

  bench::PrintHeader(
      "Figure 6 — hyperparameter sensitivity (c1, c2, K & delta-K)",
      "Fig. 6 (HR with varying c1, c2, initial K and delta-K)");

  for (const char* dataset_name : {"books", "taobao"}) {
    const data::SyntheticDataset synthetic = GenerateSynthetic(
        data::SyntheticConfig::Preset(dataset_name, setup.scale));
    const data::Dataset& dataset = *synthetic.dataset;
    std::printf("--- %s ---\n", dataset_name);

    // (a) c1 sweep (paper: {0.02..0.12}, c2 fixed at 0.3).
    {
      util::Table table({"c1", "HR@20", "NDCG@20", "avg K"});
      for (double c1 : {0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.18, 0.30}) {
        bench::BenchSetup sweep = setup;
        sweep.experiment.strategy.train.expansion.nid.c1 = c1;
        const core::ExperimentResult result = bench::RunStrategy(
            dataset, sweep, core::StrategyKind::kImsr, model_kind);
        table.AddRow({util::FormatDouble(c1, 2),
                      util::FormatPercent(result.avg_hit_ratio),
                      util::FormatPercent(result.avg_ndcg),
                      util::FormatDouble(
                          result.spans.back().avg_interests, 1)});
      }
      std::printf("(a) puzzlement threshold c1 (c2 = 0.3)\n");
      bench::PrintTable(table);
    }

    // (b) c2 sweep (paper: {0.1..0.6}).
    {
      util::Table table({"c2", "HR@20", "NDCG@20", "avg K"});
      for (double c2 : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
        bench::BenchSetup sweep = setup;
        sweep.experiment.strategy.train.expansion.pit.c2 = c2;
        const core::ExperimentResult result = bench::RunStrategy(
            dataset, sweep, core::StrategyKind::kImsr, model_kind);
        table.AddRow({util::FormatDouble(c2, 1),
                      util::FormatPercent(result.avg_hit_ratio),
                      util::FormatPercent(result.avg_ndcg),
                      util::FormatDouble(
                          result.spans.back().avg_interests, 1)});
      }
      std::printf("(b) trimming threshold c2 (c1 = default)\n");
      bench::PrintTable(table);
    }

    // (c) (K, delta-K) sweep including the preallocated controls.
    {
      util::Table table({"K", "delta K", "HR@20", "NDCG@20", "avg K"});
      const std::vector<std::pair<int, int>> budgets = {
          {4, 1}, {4, 3}, {6, 1}, {6, 3}, {19, 0}, {21, 0}};
      for (const auto& [k0, delta_k] : budgets) {
        bench::BenchSetup sweep = setup;
        sweep.experiment.strategy.train.initial_interests = k0;
        sweep.experiment.strategy.train.expansion.delta_k =
            std::max(delta_k, 1);
        sweep.experiment.strategy.train.enable_expansion = delta_k > 0;
        sweep.experiment.strategy.train.expansion.max_interests =
            k0 + 5 * std::max(delta_k, 1);
        const core::ExperimentResult result = bench::RunStrategy(
            dataset, sweep, core::StrategyKind::kImsr, model_kind);
        table.AddRow({std::to_string(k0), std::to_string(delta_k),
                      util::FormatPercent(result.avg_hit_ratio),
                      util::FormatPercent(result.avg_ndcg),
                      util::FormatDouble(
                          result.spans.back().avg_interests, 1)});
      }
      std::printf("(c) interest budget (K, delta-K); (19,0)/(21,0) create "
                  "all vectors in advance\n");
      bench::PrintTable(table);
    }
  }

  std::printf(
      "Paper's shape (Fig. 6): moderate c1 and c2 are best (too large c1\n"
      "prevents creating new interests; too small c2 keeps trivial ones);\n"
      "delta-K=3 beats delta-K=1; K=6 helps on Taobao; preallocating all\n"
      "interests up-front — (19,0) and (21,0) — is far worse than\n"
      "adaptive expansion.\n");
  return 0;
}
