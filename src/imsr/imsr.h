// Umbrella header for the IMSR library: everything a downstream user
// needs to run incremental multi-interest sequential recommendation.
//
//   #include "imsr/imsr.h"
//
//   auto data  = imsr::data::GenerateSynthetic(
//       imsr::data::SyntheticConfig::Taobao(0.4));
//   imsr::core::ExperimentConfig config;
//   auto result = imsr::core::RunExperiment(*data.dataset, config);
//
// Individual headers remain includable for finer-grained dependencies.
#ifndef IMSR_IMSR_H_
#define IMSR_IMSR_H_

// Numeric substrate.
#include "nn/gradcheck.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "nn/tensor.h"
#include "nn/variable.h"

// Data.
#include "data/dataset.h"
#include "data/interaction.h"
#include "data/log_io.h"
#include "data/sampler.h"
#include "data/stats.h"
#include "data/synthetic.h"

// Base multi-interest models.
#include "models/aggregator.h"
#include "models/comirec_dr.h"
#include "models/comirec_sa.h"
#include "models/diversity.h"
#include "models/embedding.h"
#include "models/mind.h"
#include "models/msr_model.h"
#include "models/sampled_softmax.h"

// IMSR framework.
#include "core/checkpoint.h"
#include "core/eir.h"
#include "core/experiment.h"
#include "core/imsr_trainer.h"
#include "core/interest_store.h"
#include "core/interests_expansion.h"
#include "core/nid.h"
#include "core/online_update.h"
#include "core/pit.h"
#include "core/strategies.h"

// Evaluation.
#include "eval/evaluator.h"
#include "eval/interest_analysis.h"
#include "eval/metrics.h"
#include "eval/projection.h"
#include "eval/ranker.h"

#endif  // IMSR_IMSR_H_
