// StreamTrainer — micro-span adaptation of the batch IMSR trainer
// (Algorithm 2) for online ingestion. Events accumulate into a pending
// micro-span; every `publish_every` events the trainer runs the span
// recipe in miniature — optional teacher snapshot for the retention loss,
// `micro_epochs` supervised epochs over the pending samples, NID/PIT
// interests expansion on its own cadence, an interest refresh for every
// touched user — and publishes a fresh ServingSnapshot through the
// SnapshotRegistry. Between publishes the serving state is untouched, so
// the prequential evaluator always scores against a state that has
// provably not seen the event being scored.
#ifndef IMSR_STREAM_STREAM_TRAINER_H_
#define IMSR_STREAM_STREAM_TRAINER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/imsr_trainer.h"
#include "serve/registry.h"
#include "stream/event.h"
#include "util/rng.h"

namespace imsr::stream {

struct StreamTrainerConfig {
  // Events per micro-span: train + publish once this many have been
  // consumed since the last publish.
  int64_t publish_every = 200;
  // Run interests expansion (NID/PIT) every this many publishes; 0
  // disables expansion regardless of train.enable_expansion.
  int expand_every = 5;
  // Supervised epochs per micro-span (the batch trainer's r, scaled down).
  int micro_epochs = 1;
  // Span the pre-stream state was trained through (checkpoint metadata or
  // 0 after an in-process pretrain); snapshots and new interests are
  // tagged from initial_span + 1 upward.
  int initial_span = 0;
  // Inner hyper-parameters. `train.persist_interests`, `train.eir` and
  // `train.enable_expansion` select IMSR vs the fine-tuning baseline
  // exactly as in core/strategies.
  core::TrainConfig train;
  // Build an IvfIndex into every published snapshot (initial and per
  // micro-span). Index build time lands inside the publish latency stats
  // and the serve/index_build_ms histogram.
  bool build_index = false;
  serve::IvfBuildConfig ivf;
};

// Latency accounting for the publish path (kept outside obs so the bench
// works in IMSR_OBS=OFF builds).
struct PublishStats {
  uint64_t publishes = 0;
  double total_ms = 0.0;  // train + expansion + refresh + snapshot build
  double max_ms = 0.0;
  double mean_ms() const {
    return publishes == 0 ? 0.0 : total_ms / static_cast<double>(publishes);
  }
};

class StreamTrainer {
 public:
  // `model`/`store` may already hold pretrained state (checkpoint or an
  // in-process Pretrain); the trainer continues from it. `registry` is
  // the publication point (not owned).
  StreamTrainer(models::MsrModel* model, core::InterestStore* store,
                serve::SnapshotRegistry* registry,
                const StreamTrainerConfig& config);

  StreamTrainer(const StreamTrainer&) = delete;
  StreamTrainer& operator=(const StreamTrainer&) = delete;

  // Publishes the current (pre-stream) state as the serving baseline.
  // Call once before the stream starts so early events score against the
  // pretrained snapshot.
  void PublishInitial();

  // Ingests one event into the pending micro-span. Returns true when the
  // event completed a micro-span and a new snapshot was published.
  bool Consume(const StreamEvent& event);

  // Trains and publishes whatever partial micro-span is pending (end of
  // stream). Returns true if a publish happened.
  bool Flush();

  // Highest event sequence covered by the latest *published* snapshot —
  // events after it have been consumed at most into the pending buffer,
  // never into serving state.
  uint64_t trained_through_sequence() const {
    return published_through_sequence_;
  }

  // Number of events consumed but not yet trained/published.
  int64_t pending_events() const {
    return static_cast<int64_t>(pending_samples_.size()) + pending_cold_;
  }

  const PublishStats& publish_stats() const { return publish_stats_; }
  // Snapshots published with a freshly built IvfIndex attached.
  uint64_t index_builds() const { return index_builds_; }
  const core::ExpansionOutcome& expansion_totals() const {
    return expansion_totals_;
  }
  core::ImsrTrainer& trainer() { return trainer_; }
  const StreamTrainerConfig& config() const { return config_; }

 private:
  // Creates store/extractor state for a user on first contact.
  void EnsureUser(data::UserId user);
  // Builds a snapshot for `span` (with an IvfIndex when configured) and
  // publishes it through the registry.
  void BuildAndPublish(int span);
  // Trains on the pending micro-span and publishes a snapshot.
  void TrainAndPublish();

  models::MsrModel* model_;
  core::InterestStore* store_;
  serve::SnapshotRegistry* registry_;
  StreamTrainerConfig config_;
  core::ImsrTrainer trainer_;
  util::Rng rng_;

  // Rolling per-user history across the whole stream (capped at
  // train.max_history) — the sample context. Pending micro-span state:
  // the samples to train on and each touched user's in-span items.
  std::unordered_map<data::UserId, std::vector<data::ItemId>> histories_;
  std::vector<data::TrainingSample> pending_samples_;
  std::unordered_map<data::UserId, std::vector<data::ItemId>> span_items_;
  std::vector<data::UserId> span_users_;  // insertion order, deduped
  int64_t pending_cold_ = 0;  // events with no history yet (first contact)

  int micro_span_ = 0;            // span tag of the next publish
  uint64_t last_sequence_ = 0;    // highest sequence consumed
  uint64_t published_through_sequence_ = 0;
  uint64_t index_builds_ = 0;
  PublishStats publish_stats_;
  core::ExpansionOutcome expansion_totals_;
};

}  // namespace imsr::stream

#endif  // IMSR_STREAM_STREAM_TRAINER_H_
