#include "stream/event_source.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace imsr::stream {

ReplayEventSource::ReplayEventSource(
    std::vector<data::Interaction> interactions, int64_t start_after)
    : interactions_(std::move(interactions)) {
  std::stable_sort(interactions_.begin(), interactions_.end(),
                   [](const data::Interaction& a,
                      const data::Interaction& b) {
                     return a.timestamp < b.timestamp;
                   });
  interactions_.erase(
      std::remove_if(interactions_.begin(), interactions_.end(),
                     [start_after](const data::Interaction& record) {
                       return record.timestamp <= start_after;
                     }),
      interactions_.end());
}

bool ReplayEventSource::Next(StreamEvent* event) {
  IMSR_CHECK(event != nullptr);
  if (position_ >= interactions_.size()) return false;
  const data::Interaction& record = interactions_[position_++];
  event->user = record.user;
  event->item = record.item;
  event->timestamp = record.timestamp;
  event->sequence = next_sequence_++;
  return true;
}

int64_t PretrainBoundaryTimestamp(
    const std::vector<data::Interaction>& interactions, double alpha) {
  IMSR_CHECK(!interactions.empty());
  int64_t z_min = interactions.front().timestamp;
  int64_t z_max = z_min;
  for (const data::Interaction& record : interactions) {
    z_min = std::min(z_min, record.timestamp);
    z_max = std::max(z_max, record.timestamp);
  }
  // Mirrors data/dataset.cc's span_of: timestamps strictly below the
  // boundary are pre-training.
  const double z_span = static_cast<double>(z_max - z_min) + 1.0;
  return static_cast<int64_t>(
      std::ceil(static_cast<double>(z_min) + alpha * z_span));
}

}  // namespace imsr::stream
