// StreamService — the online loop: an ingestion thread reads the
// EventSource into a BoundedEventQueue (backpressure: a full queue blocks
// the producer, never drops events), and the consumer loop runs the
// prequential protocol per event — grab the current ServingSnapshot,
// score the event against it, only then hand the event to the
// StreamTrainer. Because scoring strictly precedes learning inside one
// consumer iteration, and publishes happen inside Consume() on that same
// thread, every event is provably evaluated by a state that has not seen
// it.
#ifndef IMSR_STREAM_SERVICE_H_
#define IMSR_STREAM_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "eval/metrics.h"
#include "serve/registry.h"
#include "stream/event_source.h"
#include "stream/prequential.h"
#include "stream/stream_trainer.h"

namespace imsr::stream {

struct StreamServiceConfig {
  size_t queue_cap = 1024;
  // Stop after this many events (0 = run the source dry).
  uint64_t max_events = 0;
  // false runs source -> score -> learn synchronously on the caller's
  // thread (deterministic; tests); true reads the source on a producer
  // thread through the bounded queue (the deployment shape).
  bool threaded = true;
  // Optional cooperative-shutdown flag (util::ShutdownFlag()): when it
  // flips true the producer stops ingesting, already-queued events are
  // drained through the prequential loop, the trainer flushes, and Run
  // returns normally — so a SIGINT'd stream run still writes its curve,
  // summary and final metrics, and exits 0.
  const std::atomic<bool>* stop = nullptr;
};

struct StreamResult {
  uint64_t events = 0;          // events consumed by the trainer
  int64_t scored = 0;
  int64_t skipped = 0;          // cold-start events (user not served yet)
  uint64_t publishes = 0;       // micro-span publishes (incl. final flush)
  double seconds = 0.0;
  double events_per_sec = 0.0;
  eval::WindowMetrics final_window;
  uint64_t final_version = 0;   // registry version after the run
  // Backpressure + freshness accounting.
  size_t queue_max_depth = 0;
  uint64_t blocked_pushes = 0;
  double publish_mean_ms = 0.0;
  double publish_max_ms = 0.0;
  // IVF accounting (zeros when the run served exact).
  uint64_t index_builds = 0;       // snapshots published with an index
  serve::IvfSearchTotals ivf;      // prequential searches this run
};

class StreamService {
 public:
  // All pointers are borrowed; the evaluator accumulates across Run()
  // calls (its curve spans the whole stream).
  StreamService(StreamTrainer* trainer, PrequentialEvaluator* evaluator,
                serve::SnapshotRegistry* registry,
                const StreamServiceConfig& config);

  StreamService(const StreamService&) = delete;
  StreamService& operator=(const StreamService&) = delete;

  // Drains `source` through the prequential loop. Publishes the initial
  // snapshot first if the registry is empty, and flushes the trainer's
  // partial micro-span at end of stream.
  StreamResult Run(EventSource* source);

 private:
  // One prequential iteration: score, then learn.
  void Step(const StreamEvent& event);

  StreamTrainer* trainer_;
  PrequentialEvaluator* evaluator_;
  serve::SnapshotRegistry* registry_;
  StreamServiceConfig config_;
};

}  // namespace imsr::stream

#endif  // IMSR_STREAM_SERVICE_H_
