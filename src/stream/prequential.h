// Prequential (test-then-learn) evaluation: every event is scored against
// the currently *served* snapshot before the trainer is allowed to learn
// from it, so the sliding-window metrics measure genuine next-item
// prediction on data the model has never seen — the online analogue of
// the paper's per-span test split, with zero train/test leakage by
// construction.
//
// Ordering contract: callers pass `trained_through_sequence`, the highest
// event sequence the scoring snapshot's training consumed; it must be
// strictly less than the event's own sequence. The optional audit trail
// records (event sequence, snapshot version, trained-through) triples so
// tests can prove the contract held for every scored event.
#ifndef IMSR_STREAM_PREQUENTIAL_H_
#define IMSR_STREAM_PREQUENTIAL_H_

#include <cstdint>
#include <vector>

#include "eval/metrics.h"
#include "eval/ranker.h"
#include "serve/snapshot.h"
#include "stream/event.h"

namespace imsr::stream {

struct PrequentialConfig {
  int top_n = 20;
  int64_t window = 500;      // sliding-window size, in scored events
  int64_t curve_every = 0;   // emit a curve point every N scored events
                             // (0 disables curve recording)
  eval::ScoreRule rule = eval::ScoreRule::kAttentive;
  bool record_audit = false;  // keep the per-event ordering audit (tests)
  // kIVF ranks each event within the snapshot index's retrieved top-N
  // (miss ranks top_n + 1); snapshots without an index fall back to
  // exact. Default follows IMSR_RETRIEVAL (kExact unless overridden).
  serve::RetrievalMode retrieval = serve::DefaultRetrievalMode();
  int nprobe = 0;  // <= 0 uses the index default under kIVF
};

// One sample of the sliding-window metrics as the stream flowed.
struct CurvePoint {
  uint64_t last_sequence = 0;  // sequence of the event that closed it
  int64_t scored = 0;          // events scored so far
  double window_recall = 0.0;
  double window_ndcg = 0.0;
  int64_t window_count = 0;
  uint64_t snapshot_version = 0;    // version serving at that moment
  uint64_t staleness_events = 0;    // events the snapshot had not seen
};

// Per-event proof record for the ordering invariant.
struct ScoreAudit {
  uint64_t sequence = 0;
  uint64_t snapshot_version = 0;
  uint64_t trained_through_sequence = 0;
};

class PrequentialEvaluator {
 public:
  explicit PrequentialEvaluator(const PrequentialConfig& config);

  PrequentialEvaluator(const PrequentialEvaluator&) = delete;
  PrequentialEvaluator& operator=(const PrequentialEvaluator&) = delete;

  // Ranks the event's true item over the full corpus using the snapshot's
  // frozen interests/embeddings. Returns true when the event was scored;
  // false when the snapshot has no interests for the user yet (counted as
  // skipped — a cold-start user contributes once the trainer has
  // published state for them). Aborts if the snapshot claims to have
  // trained through the event itself (ordering violation).
  bool ScoreEvent(const serve::ServingSnapshot& snapshot,
                  const StreamEvent& event,
                  uint64_t trained_through_sequence);

  // Current sliding-window metrics (zeros with count 0 before any score).
  eval::WindowMetrics Window() const { return window_.Current(); }

  int64_t scored() const { return scored_; }
  int64_t skipped() const { return skipped_; }
  const std::vector<CurvePoint>& curve() const { return curve_; }
  const std::vector<ScoreAudit>& audits() const { return audits_; }
  const PrequentialConfig& config() const { return config_; }
  // Accumulated IVF accounting (zero searches when scoring ran exact).
  const serve::IvfSearchTotals& ivf_totals() const { return ivf_totals_; }

 private:
  PrequentialConfig config_;
  eval::SlidingWindowAccumulator window_;
  eval::RankScratch scratch_;
  serve::IvfIndex::Scratch ivf_scratch_;
  std::vector<std::pair<data::ItemId, float>> ivf_top_;
  serve::IvfSearchTotals ivf_totals_;
  int64_t scored_ = 0;
  int64_t skipped_ = 0;
  std::vector<CurvePoint> curve_;
  std::vector<ScoreAudit> audits_;
};

}  // namespace imsr::stream

#endif  // IMSR_STREAM_PREQUENTIAL_H_
