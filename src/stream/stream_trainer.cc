#include "stream/stream_trainer.h"

#include <utility>

#include "obs/obs.h"
#include "serve/snapshot.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace imsr::stream {

StreamTrainer::StreamTrainer(models::MsrModel* model,
                             core::InterestStore* store,
                             serve::SnapshotRegistry* registry,
                             const StreamTrainerConfig& config)
    : model_(model),
      store_(store),
      registry_(registry),
      config_(config),
      trainer_(model, store, config.train),
      // Decorrelated from the inner trainer's stream (which is seeded
      // with train.seed directly) so stream-side draws — cold-start
      // interests, expansion vectors — do not replay training noise.
      rng_(config.train.seed * 0x9E3779B97F4A7C15ull + 1) {
  IMSR_CHECK(model != nullptr);
  IMSR_CHECK(store != nullptr);
  IMSR_CHECK(registry != nullptr);
  IMSR_CHECK_GE(config.publish_every, 1);
  IMSR_CHECK_GE(config.micro_epochs, 1);
  micro_span_ = config.initial_span + 1;
}

void StreamTrainer::PublishInitial() {
  BuildAndPublish(config_.initial_span);
}

void StreamTrainer::BuildAndPublish(int span) {
  if (config_.build_index) {
    registry_->Publish(
        serve::BuildSnapshot(*model_, *store_, span, config_.ivf));
    ++index_builds_;
  } else {
    registry_->Publish(serve::BuildSnapshot(*model_, *store_, span));
  }
}

void StreamTrainer::EnsureUser(data::UserId user) {
  if (store_->Has(user)) return;
  store_->Initialize(user, config_.train.initial_interests,
                     model_->config().embedding_dim, micro_span_, rng_);
  model_->extractor().EnsureUserCapacity(user, store_->NumInterests(user),
                                         rng_, &trainer_.optimizer());
}

bool StreamTrainer::Consume(const StreamEvent& event) {
  IMSR_CHECK_GT(event.sequence, last_sequence_)
      << "events must arrive in sequence order";
  last_sequence_ = event.sequence;
  EnsureUser(event.user);

  std::vector<data::ItemId>& history = histories_[event.user];
  if (history.empty()) {
    // First contact: nothing to predict from yet; the event still joins
    // the user's history and span items below.
    ++pending_cold_;
  } else {
    pending_samples_.push_back({event.user, history, event.item});
  }
  history.push_back(event.item);
  if (static_cast<int>(history.size()) > config_.train.max_history) {
    history.erase(history.begin(),
                  history.end() - config_.train.max_history);
  }

  std::vector<data::ItemId>& items = span_items_[event.user];
  if (items.empty()) span_users_.push_back(event.user);
  items.push_back(event.item);

  if (pending_events() < config_.publish_every) return false;
  TrainAndPublish();
  return true;
}

bool StreamTrainer::Flush() {
  if (pending_events() == 0) return false;
  TrainAndPublish();
  return true;
}

void StreamTrainer::TrainAndPublish() {
  IMSR_TRACE_SPAN("stream/train_and_publish");
  const util::Stopwatch watch;

  // Teacher state for the retention loss (Eq. 10): interests and
  // embeddings as of the micro-span start, per the batch TrainSpan.
  core::TeacherSnapshot teacher;
  const bool use_teacher =
      config_.train.eir.kind != core::RetentionKind::kNone;
  if (use_teacher) {
    teacher.embeddings = model_->embeddings().parameter().value();
    for (data::UserId user : span_users_) {
      teacher.interests.emplace(user, store_->Interests(user));
    }
  }

  // Interests expansion on its own cadence (NID is only meaningful once
  // a few micro-spans of drift have accumulated; running it every
  // publish would re-test mostly-unchanged users).
  if (config_.train.enable_expansion && config_.expand_every > 0 &&
      (publish_stats_.publishes + 1) %
              static_cast<uint64_t>(config_.expand_every) ==
          0) {
    IMSR_TRACE_SPAN("stream/expansion");
    for (data::UserId user : span_users_) {
      ExpandUserInterests(model_, store_, user, span_items_[user],
                          micro_span_, config_.train.expansion, rng_,
                          &trainer_.optimizer(), &expansion_totals_);
    }
  }

  if (!pending_samples_.empty()) {
    IMSR_TRACE_SPAN("stream/train");
    for (int epoch = 0; epoch < config_.micro_epochs; ++epoch) {
      [[maybe_unused]] const double loss = trainer_.TrainEpoch(
          pending_samples_, use_teacher ? &teacher : nullptr);
      IMSR_GAUGE_SET("stream/micro_span_loss", loss);
    }
  }

  // Re-extract every touched user's interests from their in-span items
  // (persistence semantics follow train.persist_interests, exactly as in
  // the batch per-span refresh).
  for (data::UserId user : span_users_) {
    trainer_.RefreshUserInterests(user, span_items_[user]);
  }

  BuildAndPublish(micro_span_);
  published_through_sequence_ = last_sequence_;

  const double elapsed_ms = watch.ElapsedMillis();
  ++publish_stats_.publishes;
  publish_stats_.total_ms += elapsed_ms;
  if (elapsed_ms > publish_stats_.max_ms) {
    publish_stats_.max_ms = elapsed_ms;
  }
  IMSR_HISTOGRAM_RECORD("stream/publish_latency_ms", elapsed_ms);
  IMSR_COUNTER_ADD("stream/publishes", 1);
  IMSR_GAUGE_SET("stream/trained_through_sequence",
                 static_cast<double>(published_through_sequence_));

  ++micro_span_;
  pending_samples_.clear();
  span_items_.clear();
  span_users_.clear();
  pending_cold_ = 0;
}

}  // namespace imsr::stream
