// BoundedEventQueue — the backpressure point between ingestion and the
// micro-span trainer: util::BoundedQueue of StreamEvents with the
// stream/* metric names bound. See util/bounded_queue.h for the blocking
// and close semantics (shared verbatim with the server's shard queues).
#ifndef IMSR_STREAM_QUEUE_H_
#define IMSR_STREAM_QUEUE_H_

#include "stream/event.h"
#include "util/bounded_queue.h"

namespace imsr::stream {

class BoundedEventQueue : public util::BoundedQueue<StreamEvent> {
 public:
  explicit BoundedEventQueue(size_t capacity)
      : util::BoundedQueue<StreamEvent>(
            capacity, {/*depth_histogram=*/"stream/queue_depth",
                       /*blocked_counter=*/"stream/queue_blocked_pushes"}) {}
};

}  // namespace imsr::stream

#endif  // IMSR_STREAM_QUEUE_H_
