// BoundedEventQueue — the backpressure point between ingestion and the
// micro-span trainer.
//
// Contract: Push() blocks while the queue is full (the producer slows to
// the consumer's pace instead of growing an unbounded backlog), Pop()
// blocks while it is empty, and Close() wakes everyone — pushes after
// Close are rejected and pops drain whatever is still buffered before
// reporting end-of-stream. Depth statistics (high-water mark, number of
// pushes that had to wait) feed the staleness accounting: a queue pinned
// at capacity means the served snapshot is falling behind arrivals.
#ifndef IMSR_STREAM_QUEUE_H_
#define IMSR_STREAM_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "obs/obs.h"
#include "stream/event.h"
#include "util/check.h"

namespace imsr::stream {

class BoundedEventQueue {
 public:
  explicit BoundedEventQueue(size_t capacity) : capacity_(capacity) {
    IMSR_CHECK_GT(capacity, 0u);
  }

  BoundedEventQueue(const BoundedEventQueue&) = delete;
  BoundedEventQueue& operator=(const BoundedEventQueue&) = delete;

  // Blocks until space is available; returns false (dropping the event)
  // iff the queue was closed.
  bool Push(const StreamEvent& event) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (events_.size() >= capacity_ && !closed_) {
      ++blocked_pushes_;
      IMSR_COUNTER_ADD("stream/queue_blocked_pushes", 1);
      not_full_.wait(lock, [this] {
        return events_.size() < capacity_ || closed_;
      });
    }
    if (closed_) return false;
    events_.push_back(event);
    RecordDepthLocked();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking variant; false when full or closed.
  bool TryPush(const StreamEvent& event) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || events_.size() >= capacity_) return false;
      events_.push_back(event);
      RecordDepthLocked();
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an event is available or the queue is closed and fully
  // drained (then returns false).
  bool Pop(StreamEvent* event) {
    IMSR_CHECK(event != nullptr);
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !events_.empty() || closed_; });
    if (events_.empty()) return false;
    *event = events_.front();
    events_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Rejects further pushes; pending events remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t capacity() const { return capacity_; }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
  }

  // Deepest the queue ever got (backpressure diagnostics).
  size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_depth_;
  }

  // Pushes that found the queue full and had to wait.
  uint64_t blocked_pushes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return blocked_pushes_;
  }

 private:
  void RecordDepthLocked() {
    if (events_.size() > max_depth_) max_depth_ = events_.size();
    IMSR_HISTOGRAM_RECORD("stream/queue_depth",
                          static_cast<double>(events_.size()));
  }

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<StreamEvent> events_;
  bool closed_ = false;
  size_t max_depth_ = 0;
  uint64_t blocked_pushes_ = 0;
};

}  // namespace imsr::stream

#endif  // IMSR_STREAM_QUEUE_H_
