// Event sources for the online pipeline: where the stream's interactions
// come from. A ReplayEventSource turns a recorded log (data/log_io CSV or
// a flattened SyntheticDataset) into an ordered stream; the source is the
// single authority for `StreamEvent::sequence`, so every downstream
// component agrees on arrival order.
#ifndef IMSR_STREAM_EVENT_SOURCE_H_
#define IMSR_STREAM_EVENT_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "data/interaction.h"
#include "stream/event.h"

namespace imsr::stream {

class EventSource {
 public:
  virtual ~EventSource() = default;

  // Fills `event` (including its sequence number) with the next record;
  // false at end of stream.
  virtual bool Next(StreamEvent* event) = 0;
};

// Replays recorded interactions in timestamp order (stable for ties, so
// a user's in-window order survives), optionally skipping everything at
// or before `start_after` — the knob that replays only the post-pretrain
// portion of a log against a pretrained checkpoint.
class ReplayEventSource : public EventSource {
 public:
  explicit ReplayEventSource(
      std::vector<data::Interaction> interactions,
      int64_t start_after = std::numeric_limits<int64_t>::min());

  bool Next(StreamEvent* event) override;

  // Events not yet emitted.
  size_t remaining() const { return interactions_.size() - position_; }
  size_t total() const { return interactions_.size(); }

 private:
  std::vector<data::Interaction> interactions_;  // sorted, filtered
  size_t position_ = 0;
  uint64_t next_sequence_ = 1;
};

// The timestamp at which a log's pre-training window ends under the
// Dataset split (z_min + alpha * (z_max - z_min + 1), see data/dataset.cc);
// interactions with timestamp >= the boundary belong to the incremental
// spans. Use as ReplayEventSource's `start_after` = boundary - 1 to
// stream exactly the post-pretrain events.
int64_t PretrainBoundaryTimestamp(
    const std::vector<data::Interaction>& interactions, double alpha);

}  // namespace imsr::stream

#endif  // IMSR_STREAM_EVENT_SOURCE_H_
