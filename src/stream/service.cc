#include "stream/service.h"

#include <memory>
#include <thread>

#include "obs/obs.h"
#include "stream/queue.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace imsr::stream {

StreamService::StreamService(StreamTrainer* trainer,
                             PrequentialEvaluator* evaluator,
                             serve::SnapshotRegistry* registry,
                             const StreamServiceConfig& config)
    : trainer_(trainer),
      evaluator_(evaluator),
      registry_(registry),
      config_(config) {
  IMSR_CHECK(trainer != nullptr);
  IMSR_CHECK(evaluator != nullptr);
  IMSR_CHECK(registry != nullptr);
  IMSR_CHECK_GT(config.queue_cap, 0u);
}

void StreamService::Step(const StreamEvent& event) {
  // Prequential order: the snapshot is loaded and the event scored
  // BEFORE the trainer may learn from it. Consume() can publish, but
  // that publish covers sequences <= event.sequence, which the *next*
  // event is scored against — never this one.
  const std::shared_ptr<const serve::ServingSnapshot> snapshot =
      registry_->Current();
  IMSR_CHECK(snapshot != nullptr);
  evaluator_->ScoreEvent(*snapshot, event,
                         trainer_->trained_through_sequence());
  trainer_->Consume(event);
}

StreamResult StreamService::Run(EventSource* source) {
  IMSR_CHECK(source != nullptr);
  IMSR_TRACE_SPAN("stream/run");
  if (registry_->Current() == nullptr) trainer_->PublishInitial();

  const int64_t scored_before = evaluator_->scored();
  const int64_t skipped_before = evaluator_->skipped();
  const uint64_t publishes_before = trainer_->publish_stats().publishes;
  const util::Stopwatch watch;

  const auto stop_requested = [this] {
    return config_.stop != nullptr &&
           config_.stop->load(std::memory_order_relaxed);
  };
  StreamResult result;
  if (config_.threaded) {
    BoundedEventQueue queue(config_.queue_cap);
    std::thread producer([this, source, &queue, &stop_requested] {
      StreamEvent event;
      uint64_t produced = 0;
      while ((config_.max_events == 0 ||
              produced < config_.max_events) &&
             !stop_requested() && source->Next(&event)) {
        if (!queue.Push(event)) break;  // closed under us
        ++produced;
      }
      // Closing (not abandoning) the queue is what makes shutdown a
      // drain: the consumer's Pop() keeps returning queued events until
      // the queue is empty, then sees the close.
      queue.Close();
    });
    StreamEvent event;
    while (queue.Pop(&event)) {
      Step(event);
      ++result.events;
    }
    producer.join();
    result.queue_max_depth = queue.max_depth();
    result.blocked_pushes = queue.blocked_pushes();
  } else {
    StreamEvent event;
    while ((config_.max_events == 0 ||
            result.events < config_.max_events) &&
           !stop_requested() && source->Next(&event)) {
      Step(event);
      ++result.events;
    }
  }
  trainer_->Flush();

  result.seconds = watch.ElapsedSeconds();
  result.events_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(result.events) / result.seconds
          : 0.0;
  result.scored = evaluator_->scored() - scored_before;
  result.skipped = evaluator_->skipped() - skipped_before;
  result.publishes =
      trainer_->publish_stats().publishes - publishes_before;
  result.final_window = evaluator_->Window();
  const std::shared_ptr<const serve::ServingSnapshot> final_snapshot =
      registry_->Current();
  result.final_version =
      final_snapshot == nullptr ? 0 : final_snapshot->version();
  result.publish_mean_ms = trainer_->publish_stats().mean_ms();
  result.publish_max_ms = trainer_->publish_stats().max_ms;
  result.index_builds = trainer_->index_builds();
  result.ivf = evaluator_->ivf_totals();

  IMSR_GAUGE_SET("stream/events_per_sec", result.events_per_sec);
  IMSR_GAUGE_SET("stream/final_window_recall",
                 result.final_window.hit_ratio);
  return result;
}

}  // namespace imsr::stream
