#include "stream/prequential.h"

#include "obs/obs.h"
#include "util/check.h"

namespace imsr::stream {

PrequentialEvaluator::PrequentialEvaluator(const PrequentialConfig& config)
    : config_(config), window_(config.top_n, config.window) {}

bool PrequentialEvaluator::ScoreEvent(
    const serve::ServingSnapshot& snapshot, const StreamEvent& event,
    uint64_t trained_through_sequence) {
  IMSR_CHECK_GE(event.sequence, 1u);
  // The prequential contract: the serving state must predate the event.
  IMSR_CHECK_LT(trained_through_sequence, event.sequence)
      << "prequential ordering violated: snapshot v" << snapshot.version()
      << " already trained through event " << event.sequence;

  if (!snapshot.HasUser(event.user)) {
    ++skipped_;
    IMSR_COUNTER_ADD("stream/events_skipped", 1);
    return false;
  }
  IMSR_CHECK_LT(event.item, snapshot.num_items());

  int64_t rank;
  if (config_.retrieval == serve::RetrievalMode::kIVF &&
      snapshot.index() != nullptr) {
    // Serving-accurate protocol: rank is the event item's position in
    // the retrieved top-N; a miss ranks top_n + 1 (contributes 0).
    serve::IvfSearchStats stats;
    snapshot.index()->SearchTopN(
        snapshot.Interests(event.user), snapshot.item_embeddings(),
        config_.rule, config_.top_n, config_.nprobe, &ivf_scratch_,
        &ivf_top_, &stats);
    ivf_totals_.Add(stats);
    rank = static_cast<int64_t>(config_.top_n) + 1;
    for (size_t r = 0; r < ivf_top_.size(); ++r) {
      if (ivf_top_[r].first == event.item) {
        rank = static_cast<int64_t>(r) + 1;
        break;
      }
    }
  } else {
    IMSR_OBS_ONLY({
      if (config_.retrieval == serve::RetrievalMode::kIVF) {
        IMSR_COUNTER_ADD("stream/ivf_fallback_exact", 1);
      }
    })
    ScoreAllItemsInto(snapshot.Interests(event.user),
                      snapshot.item_embeddings(), config_.rule, &scratch_);
    rank = eval::TargetRankFromScores(scratch_.scores, event.item);
  }
  window_.AddRank(rank);
  ++scored_;
  IMSR_COUNTER_ADD("stream/events_scored", 1);

  const uint64_t staleness = event.sequence - 1 - trained_through_sequence;
  IMSR_HISTOGRAM_RECORD("stream/staleness_events",
                        static_cast<double>(staleness));

  if (config_.record_audit) {
    audits_.push_back(
        {event.sequence, snapshot.version(), trained_through_sequence});
  }
  if (config_.curve_every > 0 && scored_ % config_.curve_every == 0) {
    const eval::WindowMetrics window = window_.Current();
    curve_.push_back({event.sequence, scored_, window.hit_ratio,
                      window.ndcg, window.count, snapshot.version(),
                      staleness});
    IMSR_GAUGE_SET("stream/window_recall", window.hit_ratio);
    IMSR_GAUGE_SET("stream/window_ndcg", window.ndcg);
  }
  return true;
}

}  // namespace imsr::stream
