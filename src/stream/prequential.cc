#include "stream/prequential.h"

#include "obs/obs.h"
#include "util/check.h"

namespace imsr::stream {

PrequentialEvaluator::PrequentialEvaluator(const PrequentialConfig& config)
    : config_(config), window_(config.top_n, config.window) {}

bool PrequentialEvaluator::ScoreEvent(
    const serve::ServingSnapshot& snapshot, const StreamEvent& event,
    uint64_t trained_through_sequence) {
  IMSR_CHECK_GE(event.sequence, 1u);
  // The prequential contract: the serving state must predate the event.
  IMSR_CHECK_LT(trained_through_sequence, event.sequence)
      << "prequential ordering violated: snapshot v" << snapshot.version()
      << " already trained through event " << event.sequence;

  if (!snapshot.HasUser(event.user)) {
    ++skipped_;
    IMSR_COUNTER_ADD("stream/events_skipped", 1);
    return false;
  }
  IMSR_CHECK_LT(event.item, snapshot.num_items());

  ScoreAllItemsInto(snapshot.Interests(event.user),
                    snapshot.item_embeddings(), config_.rule, &scratch_);
  const int64_t rank = eval::TargetRankFromScores(scratch_.scores,
                                                  event.item);
  window_.AddRank(rank);
  ++scored_;
  IMSR_COUNTER_ADD("stream/events_scored", 1);

  const uint64_t staleness = event.sequence - 1 - trained_through_sequence;
  IMSR_HISTOGRAM_RECORD("stream/staleness_events",
                        static_cast<double>(staleness));

  if (config_.record_audit) {
    audits_.push_back(
        {event.sequence, snapshot.version(), trained_through_sequence});
  }
  if (config_.curve_every > 0 && scored_ % config_.curve_every == 0) {
    const eval::WindowMetrics window = window_.Current();
    curve_.push_back({event.sequence, scored_, window.hit_ratio,
                      window.ndcg, window.count, snapshot.version(),
                      staleness});
    IMSR_GAUGE_SET("stream/window_recall", window.hit_ratio);
    IMSR_GAUGE_SET("stream/window_ndcg", window.ndcg);
  }
  return true;
}

}  // namespace imsr::stream
