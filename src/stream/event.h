// The unit of the online pipeline: one interaction stamped with its
// arrival order. `sequence` is assigned by the EventSource (1-based, in
// the order events leave the source) and is the currency of the
// prequential-ordering contract: a ServingSnapshot that was trained
// through sequence S must only score events with sequence > S.
#ifndef IMSR_STREAM_EVENT_H_
#define IMSR_STREAM_EVENT_H_

#include <cstdint>

#include "data/interaction.h"

namespace imsr::stream {

struct StreamEvent {
  data::UserId user = -1;
  data::ItemId item = -1;
  int64_t timestamp = 0;
  // 1-based arrival index assigned by the source; 0 means "unassigned".
  uint64_t sequence = 0;
};

}  // namespace imsr::stream

#endif  // IMSR_STREAM_EVENT_H_
