// Dataset statistics reporting (the Table II analogue).
#ifndef IMSR_DATA_STATS_H_
#define IMSR_DATA_STATS_H_

#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"

namespace imsr::data {

struct DatasetStats {
  int64_t num_users = 0;
  int64_t num_items_seen = 0;  // items occurring in the log
  std::vector<int64_t> span_interactions;  // index 0 = pre-training
  double mean_sequence_length = 0.0;       // per kept user, whole log
};

DatasetStats ComputeStats(const Dataset& dataset);

// Fraction of (user, interest) pairs that are active in >= `times` spans —
// the paper's "over eighty percent of interests reappear more than three
// times" motivation, measured against generator ground truth. An interest
// counts as appearing in a span when the user interacted with an item of
// that category there.
double InterestReappearFraction(const Dataset& dataset,
                                const SyntheticGroundTruth& truth,
                                int times);

}  // namespace imsr::data

#endif  // IMSR_DATA_STATS_H_
