// Interaction-log I/O: load real interaction logs (e.g. preprocessed
// Amazon review or Taobao click exports) from CSV, and write logs back
// out — the adoption path for running the library on non-synthetic data.
//
// Format: one interaction per line, `user_id,item_id,timestamp` with an
// optional header line. User and item ids must be non-negative integers;
// ids are used directly as indices (the loader reports the id space), or
// can be compacted with CompactIds().
#ifndef IMSR_DATA_LOG_IO_H_
#define IMSR_DATA_LOG_IO_H_

#include <string>
#include <vector>

#include "data/interaction.h"

namespace imsr::data {

struct InteractionLog {
  std::vector<Interaction> interactions;
  int32_t num_users = 0;  // max user id + 1
  int32_t num_items = 0;  // max item id + 1
};

// Parses a CSV log. Returns false on I/O failure or malformed rows;
// `error` (optional) receives a description with the line number.
bool ReadInteractionsCsv(const std::string& path, InteractionLog* log,
                         std::string* error = nullptr);

// Parses CSV content from a string (exposed for tests and embedding).
bool ParseInteractionsCsv(const std::string& content, InteractionLog* log,
                          std::string* error = nullptr);

// Writes a log as CSV with a header line. Returns false on I/O failure.
bool WriteInteractionsCsv(const std::string& path,
                          const std::vector<Interaction>& interactions);

// Serialises a log to the CSV string written by WriteInteractionsCsv.
std::string InteractionsToCsv(const std::vector<Interaction>& interactions);

// Remaps user and item ids to dense 0..n-1 ranges (sparse production ids
// make direct indexing wasteful). Mappings are returned so predictions
// can be translated back: new_user = user_map[old], etc.
struct IdCompaction {
  std::vector<int32_t> user_ids;  // dense index -> original user id
  std::vector<int32_t> item_ids;  // dense index -> original item id
};
IdCompaction CompactIds(InteractionLog* log);

}  // namespace imsr::data

#endif  // IMSR_DATA_LOG_IO_H_
