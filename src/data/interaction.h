// Core data types for interaction logs.
#ifndef IMSR_DATA_INTERACTION_H_
#define IMSR_DATA_INTERACTION_H_

#include <cstdint>
#include <vector>

namespace imsr::data {

using UserId = int32_t;
using ItemId = int32_t;

// One (user, item, timestamp) record, the unit of every log (§II).
struct Interaction {
  UserId user = -1;
  ItemId item = -1;
  int64_t timestamp = 0;
};

}  // namespace imsr::data

#endif  // IMSR_DATA_INTERACTION_H_
