// Training-sample construction (next-item prediction) and negative
// sampling for the sampled-softmax objective (Eq. 6).
#ifndef IMSR_DATA_SAMPLER_H_
#define IMSR_DATA_SAMPLER_H_

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace imsr::data {

// One next-item training instance: `history` (chronological) predicts
// `target`.
struct TrainingSample {
  UserId user = -1;
  std::vector<ItemId> history;
  ItemId target = -1;
};

// Builds next-item samples from a single span's training sequences: every
// position j >= 1 of the span-train sequence yields (prefix, seq[j]).
// Histories are truncated to the most recent `max_history` items.
std::vector<TrainingSample> BuildSpanSamples(const Dataset& dataset,
                                             int span, int max_history);

// Samples for the full-retraining strategy: per user the concatenation of
// the train sequences of spans [0, up_to_span] is treated as one long
// sequence.
std::vector<TrainingSample> BuildCumulativeSamples(const Dataset& dataset,
                                                   int up_to_span,
                                                   int max_history);

// Uniform negative sampler over the item catalogue.
class NegativeSampler {
 public:
  explicit NegativeSampler(int32_t num_items);

  // Draws `count` item ids uniformly, excluding `target` (with
  // replacement across draws, as in sampled softmax practice).
  // IMSR_CHECK-fails unless 0 <= count < num_items — a larger request on
  // a tiny corpus would otherwise spin the rejection loop unboundedly.
  std::vector<ItemId> Sample(int count, ItemId target, util::Rng& rng) const;

  // Same draw sequence, appended to `out` (caller-owned buffer, reused
  // across calls on the hot training path).
  void SampleInto(int count, ItemId target, util::Rng& rng,
                  std::vector<ItemId>* out) const;

 private:
  int32_t num_items_;
};

}  // namespace imsr::data

#endif  // IMSR_DATA_SAMPLER_H_
