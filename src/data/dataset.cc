#include "data/dataset.h"

#include <algorithm>

#include "util/check.h"

namespace imsr::data {

Dataset::Dataset(int32_t num_users, int32_t num_items,
                 std::vector<Interaction> log, int num_incremental_spans,
                 double alpha, int min_interactions)
    : num_users_(num_users),
      num_items_(num_items),
      num_incremental_spans_(num_incremental_spans) {
  IMSR_CHECK_GT(num_users, 0);
  IMSR_CHECK_GT(num_items, 0);
  IMSR_CHECK_GT(num_incremental_spans, 0);
  IMSR_CHECK(alpha > 0.0 && alpha < 1.0);
  IMSR_CHECK(!log.empty()) << "empty interaction log";

  std::stable_sort(log.begin(), log.end(),
                   [](const Interaction& a, const Interaction& b) {
                     return a.timestamp < b.timestamp;
                   });

  // Discard sparse users (paper: fewer than 30 interactions).
  std::vector<int64_t> counts(static_cast<size_t>(num_users), 0);
  for (const Interaction& record : log) {
    IMSR_CHECK(record.user >= 0 && record.user < num_users);
    IMSR_CHECK(record.item >= 0 && record.item < num_items);
    ++counts[static_cast<size_t>(record.user)];
  }
  kept_.assign(static_cast<size_t>(num_users), false);
  for (int32_t u = 0; u < num_users; ++u) {
    kept_[static_cast<size_t>(u)] = counts[static_cast<size_t>(u)] >=
                                    min_interactions;
    if (kept_[static_cast<size_t>(u)]) ++num_kept_users_;
  }
  IMSR_CHECK_GT(num_kept_users_, 0)
      << "min_interactions filter removed every user";

  // Span boundaries: [0, alpha*Z] then T equal slices of [alpha*Z, Z].
  const int64_t z_min = log.front().timestamp;
  const int64_t z_max = log.back().timestamp;
  const double z_span = static_cast<double>(z_max - z_min) + 1.0;
  const double pretrain_end = static_cast<double>(z_min) + alpha * z_span;
  const double slice =
      (1.0 - alpha) * z_span / static_cast<double>(num_incremental_spans);
  auto span_of = [&](int64_t ts) {
    if (static_cast<double>(ts) < pretrain_end) return 0;
    int span = 1 + static_cast<int>(
                       (static_cast<double>(ts) - pretrain_end) / slice);
    return std::min(span, num_incremental_spans_);
  };

  const int total_spans = num_spans();
  spans_.assign(static_cast<size_t>(total_spans),
                std::vector<UserSpanData>(static_cast<size_t>(num_users)));
  active_users_.assign(static_cast<size_t>(total_spans), {});
  span_counts_.assign(static_cast<size_t>(total_spans), 0);

  for (const Interaction& record : log) {
    if (!kept_[static_cast<size_t>(record.user)]) continue;
    const int span = span_of(record.timestamp);
    UserSpanData& data =
        spans_[static_cast<size_t>(span)][static_cast<size_t>(record.user)];
    data.all.push_back(record.item);
    ++span_counts_[static_cast<size_t>(span)];
  }

  // Leave-one-out split within each span.
  for (int span = 0; span < total_spans; ++span) {
    for (int32_t u = 0; u < num_users; ++u) {
      UserSpanData& data =
          spans_[static_cast<size_t>(span)][static_cast<size_t>(u)];
      if (data.all.empty()) continue;
      active_users_[static_cast<size_t>(span)].push_back(u);
      const size_t n = data.all.size();
      if (n >= 3) {
        data.train.assign(data.all.begin(), data.all.end() - 2);
        data.valid = data.all[n - 2];
        data.test = data.all[n - 1];
      } else if (n == 2) {
        data.train.assign(data.all.begin(), data.all.end() - 1);
        data.test = data.all[n - 1];
      } else {
        data.train = data.all;
      }
    }
  }
}

const UserSpanData& Dataset::user_span(UserId user, int span) const {
  IMSR_CHECK(span >= 0 && span < num_spans());
  IMSR_CHECK(user >= 0 && user < num_users_);
  return spans_[static_cast<size_t>(span)][static_cast<size_t>(user)];
}

const std::vector<UserId>& Dataset::active_users(int span) const {
  IMSR_CHECK(span >= 0 && span < num_spans());
  return active_users_[static_cast<size_t>(span)];
}

int64_t Dataset::span_interactions(int span) const {
  IMSR_CHECK(span >= 0 && span < num_spans());
  return span_counts_[static_cast<size_t>(span)];
}

std::vector<ItemId> Dataset::UserHistoryUpTo(UserId user,
                                             int up_to_span) const {
  IMSR_CHECK(up_to_span >= 0 && up_to_span < num_spans());
  std::vector<ItemId> items;
  for (int span = 0; span <= up_to_span; ++span) {
    const UserSpanData& data = user_span(user, span);
    items.insert(items.end(), data.all.begin(), data.all.end());
  }
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  return items;
}

}  // namespace imsr::data
