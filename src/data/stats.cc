#include "data/stats.h"

#include <set>

namespace imsr::data {

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.num_users = dataset.num_kept_users();
  stats.span_interactions.resize(static_cast<size_t>(dataset.num_spans()));
  std::set<ItemId> items;
  int64_t total = 0;
  for (int span = 0; span < dataset.num_spans(); ++span) {
    stats.span_interactions[static_cast<size_t>(span)] =
        dataset.span_interactions(span);
    total += dataset.span_interactions(span);
    for (UserId user : dataset.active_users(span)) {
      const UserSpanData& data = dataset.user_span(user, span);
      items.insert(data.all.begin(), data.all.end());
    }
  }
  stats.num_items_seen = static_cast<int64_t>(items.size());
  stats.mean_sequence_length =
      stats.num_users > 0
          ? static_cast<double>(total) / static_cast<double>(stats.num_users)
          : 0.0;
  return stats;
}

double InterestReappearFraction(const Dataset& dataset,
                                const SyntheticGroundTruth& truth,
                                int times) {
  int64_t total_interests = 0;
  int64_t reappearing = 0;
  for (UserId user = 0; user < dataset.num_users(); ++user) {
    if (!dataset.user_kept(user)) continue;
    const auto& interests = truth.user_interests[static_cast<size_t>(user)];
    for (int category : interests) {
      int spans_active = 0;
      for (int span = 0; span < dataset.num_spans(); ++span) {
        const UserSpanData& data = dataset.user_span(user, span);
        for (ItemId item : data.all) {
          if (truth.item_category[static_cast<size_t>(item)] == category) {
            ++spans_active;
            break;
          }
        }
      }
      ++total_interests;
      if (spans_active >= times) ++reappearing;
    }
  }
  if (total_interests == 0) return 0.0;
  return static_cast<double>(reappearing) /
         static_cast<double>(total_interests);
}

}  // namespace imsr::data
