// Span-structured interaction dataset. Implements the paper's data
// preparation (§V-A1): the timeline [0, Z] is split into a pre-training
// span [0, alpha*Z] plus T equal incremental spans; within each span each
// user's latest interaction is the test item, the second latest is the
// validation item, and the rest are training items.
#ifndef IMSR_DATA_DATASET_H_
#define IMSR_DATA_DATASET_H_

#include <string>
#include <vector>

#include "data/interaction.h"

namespace imsr::data {

// Per-user data inside one time span.
struct UserSpanData {
  std::vector<ItemId> train;  // chronological, all but the last two items
  ItemId valid = -1;          // second-to-last item (-1 when absent)
  ItemId test = -1;           // last item (-1 when absent)
  std::vector<ItemId> all;    // every span item in chronological order

  bool active() const { return !all.empty(); }
};

class Dataset {
 public:
  // Builds span structure from a raw log. `num_incremental_spans` is the
  // paper's T; `alpha` the pre-training fraction. Users with fewer than
  // `min_interactions` records are discarded (paper uses 30).
  Dataset(int32_t num_users, int32_t num_items,
          std::vector<Interaction> log, int num_incremental_spans,
          double alpha, int min_interactions);

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }

  // T; spans are indexed 0 (pre-training) .. T.
  int num_incremental_spans() const { return num_incremental_spans_; }
  int num_spans() const { return num_incremental_spans_ + 1; }

  // Per-user data of one span; inactive users return an empty record.
  const UserSpanData& user_span(UserId user, int span) const;

  // Users with at least one interaction in `span`.
  const std::vector<UserId>& active_users(int span) const;

  // Total number of interactions in `span`.
  int64_t span_interactions(int span) const;

  // True if `user` survived the min-interactions filter.
  bool user_kept(UserId user) const { return kept_[user]; }
  int64_t num_kept_users() const { return num_kept_users_; }

  // All items `user` interacted with in spans [0, up_to_span], sorted.
  // Used by the case-study split into "existing" vs "new" items (Fig. 7a).
  std::vector<ItemId> UserHistoryUpTo(UserId user, int up_to_span) const;

 private:
  int32_t num_users_;
  int32_t num_items_;
  int num_incremental_spans_;
  int64_t num_kept_users_ = 0;
  std::vector<bool> kept_;
  // spans_[span][user]
  std::vector<std::vector<UserSpanData>> spans_;
  std::vector<std::vector<UserId>> active_users_;
  std::vector<int64_t> span_counts_;
};

}  // namespace imsr::data

#endif  // IMSR_DATA_DATASET_H_
