// Synthetic multi-interest interaction stream generator — the stand-in for
// the Amazon review and Taobao click logs (see DESIGN.md §1). The
// generator reproduces the phenomena the paper's evaluation depends on:
//
//  * items are organised into latent interest categories with a long-tailed
//    within-category popularity (Zipf);
//  * each user owns several interests; per span only a (recency-biased)
//    subset is active, so old interests *reappear* later — the paper's
//    motivation for retaining every existing interest;
//  * users develop brand-new interests over time at a dataset-specific
//    rate (Taobao fastest, Books slowest), driving NID/PIT;
//  * within-category popularity drifts slowly across spans.
#ifndef IMSR_DATA_SYNTHETIC_H_
#define IMSR_DATA_SYNTHETIC_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace imsr::data {

struct SyntheticConfig {
  std::string name = "custom";
  int32_t num_users = 300;
  int32_t num_items = 1500;
  int num_categories = 24;

  int num_incremental_spans = 6;  // T
  double alpha = 0.5;             // pre-training fraction of the timeline

  // Interaction volume. The pre-training window holds roughly
  // `pretrain_interactions_per_user` records per user and every incremental
  // span roughly `span_interactions_per_user` (both jittered +-30%).
  int pretrain_interactions_per_user = 40;
  int span_interactions_per_user = 12;

  // Interest dynamics.
  int initial_interests_per_user = 3;   // owned categories at time 0
  double new_interest_prob = 0.35;      // P[user gains a new interest]/span
  int new_interests_per_event = 1;      // categories added per event
  double interest_active_prob = 0.65;   // P[an owned interest is active]/span
  double new_interest_boost = 2.5;      // weight multiplier in birth span
  double recency_bias = 0.3;            // extra weight for newest interests

  // Popularity model.
  double zipf_exponent = 1.1;
  double popularity_drift = 0.05;  // fraction of in-category rank swaps/span

  int min_interactions = 12;  // scaled-down analogue of the paper's 30

  uint64_t seed = 42;

  // Presets mirroring Table II's four datasets (scaled ~1000x down).
  // `scale` multiplies user/item counts for the speed-up experiments.
  static SyntheticConfig Electronics(double scale = 1.0);
  static SyntheticConfig Clothing(double scale = 1.0);
  static SyntheticConfig Books(double scale = 1.0);
  static SyntheticConfig Taobao(double scale = 1.0);
  // Preset lookup by lowercase name; aborts on unknown names.
  static SyntheticConfig Preset(const std::string& name, double scale = 1.0);
};

// Generation-time ground truth, exposed for the diagnostic benches
// (Fig. 2 needs to plant an unseen category; Fig. 7a needs item origins).
struct SyntheticGroundTruth {
  std::vector<int> item_category;                 // item -> category
  std::vector<std::vector<int>> user_interests;   // user -> owned categories
  // user -> span at which each owned interest was acquired (parallel to
  // user_interests).
  std::vector<std::vector<int>> interest_birth_span;
};

struct SyntheticDataset {
  std::unique_ptr<Dataset> dataset;
  SyntheticGroundTruth truth;
  SyntheticConfig config;
};

// Generates a dataset from `config`. Deterministic given config.seed.
SyntheticDataset GenerateSynthetic(const SyntheticConfig& config);

// Flattens a span-structured dataset back into a timestamped interaction
// log. Timestamps are laid out so that re-splitting with alpha = 0.5 and
// the same span count reproduces the span structure: the pre-training
// window occupies the first half of the timeline ([0, T*slice)) and each
// incremental span an equal slice of the second half. In-span order per
// user is preserved; users are de-synchronised within a window by a small
// per-user offset. Shared by `imsr_cli generate` and the streaming replay
// path, which must agree on the timeline convention.
std::vector<Interaction> FlattenDatasetToLog(const Dataset& dataset);

}  // namespace imsr::data

#endif  // IMSR_DATA_SYNTHETIC_H_
