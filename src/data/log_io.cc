#include "data/log_io.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>

namespace imsr::data {
namespace {

bool ParseField(const std::string& field, int64_t* value) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  while (begin != end && std::isspace(static_cast<unsigned char>(*begin))) {
    ++begin;
  }
  auto [ptr, ec] = std::from_chars(begin, end, *value);
  if (ec != std::errc()) return false;
  while (ptr != end && std::isspace(static_cast<unsigned char>(*ptr))) {
    ++ptr;
  }
  return ptr == end;
}

void SetError(std::string* error, int line, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + message;
  }
}

}  // namespace

bool ParseInteractionsCsv(const std::string& content, InteractionLog* log,
                          std::string* error) {
  log->interactions.clear();
  log->num_users = 0;
  log->num_items = 0;

  std::istringstream stream(content);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;

    std::array<std::string, 3> fields;
    size_t field = 0;
    size_t start = 0;
    bool malformed = false;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ',') {
        if (field >= fields.size()) {
          malformed = true;
          break;
        }
        fields[field++] = line.substr(start, i - start);
        start = i + 1;
      }
    }
    if (malformed || field != 3) {
      SetError(error, line_number, "expected user,item,timestamp");
      return false;
    }

    int64_t user = 0;
    int64_t item = 0;
    int64_t timestamp = 0;
    if (!ParseField(fields[0], &user)) {
      // Permit a single header line — but only when the whole row is
      // non-numeric; a data row with just a garbled user id must be
      // reported, not silently swallowed.
      int64_t probe = 0;
      if (line_number == 1 && !ParseField(fields[1], &probe) &&
          !ParseField(fields[2], &probe)) {
        continue;
      }
      SetError(error, line_number, "bad user id '" + fields[0] + "'");
      return false;
    }
    if (!ParseField(fields[1], &item) ||
        !ParseField(fields[2], &timestamp)) {
      SetError(error, line_number, "bad item id or timestamp");
      return false;
    }
    if (user < 0 || item < 0) {
      SetError(error, line_number, "negative ids are not allowed");
      return false;
    }
    // Ids are stored as int32 and num_users/num_items as max id + 1, so
    // anything >= INT32_MAX would truncate (possibly to negative) in the
    // casts below.
    constexpr int64_t kMaxId =
        static_cast<int64_t>(std::numeric_limits<int32_t>::max()) - 1;
    if (user > kMaxId || item > kMaxId) {
      SetError(error, line_number,
               "id exceeds the 32-bit range: " +
                   std::to_string(user > kMaxId ? user : item));
      return false;
    }
    Interaction record;
    record.user = static_cast<UserId>(user);
    record.item = static_cast<ItemId>(item);
    record.timestamp = timestamp;
    log->interactions.push_back(record);
    log->num_users = std::max(log->num_users, record.user + 1);
    log->num_items = std::max(log->num_items, record.item + 1);
  }
  if (log->interactions.empty()) {
    SetError(error, line_number, "no interactions parsed");
    return false;
  }
  return true;
}

bool ReadInteractionsCsv(const std::string& path, InteractionLog* log,
                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream content;
  content << in.rdbuf();
  return ParseInteractionsCsv(content.str(), log, error);
}

std::string InteractionsToCsv(
    const std::vector<Interaction>& interactions) {
  std::ostringstream out;
  out << "user,item,timestamp\n";
  for (const Interaction& record : interactions) {
    out << record.user << "," << record.item << "," << record.timestamp
        << "\n";
  }
  return out.str();
}

bool WriteInteractionsCsv(const std::string& path,
                          const std::vector<Interaction>& interactions) {
  std::ofstream out(path);
  if (!out) return false;
  out << InteractionsToCsv(interactions);
  return static_cast<bool>(out);
}

IdCompaction CompactIds(InteractionLog* log) {
  IdCompaction compaction;
  std::unordered_map<int32_t, int32_t> user_map;
  std::unordered_map<int32_t, int32_t> item_map;
  for (Interaction& record : log->interactions) {
    auto [user_it, user_new] =
        user_map.try_emplace(record.user,
                             static_cast<int32_t>(user_map.size()));
    if (user_new) compaction.user_ids.push_back(record.user);
    record.user = user_it->second;
    auto [item_it, item_new] =
        item_map.try_emplace(record.item,
                             static_cast<int32_t>(item_map.size()));
    if (item_new) compaction.item_ids.push_back(record.item);
    record.item = item_it->second;
  }
  log->num_users = static_cast<int32_t>(user_map.size());
  log->num_items = static_cast<int32_t>(item_map.size());
  return compaction;
}

}  // namespace imsr::data
