#include "data/sampler.h"

#include <algorithm>

#include "util/check.h"

namespace imsr::data {
namespace {

void AppendSamplesFromSequence(UserId user,
                               const std::vector<ItemId>& sequence,
                               int max_history,
                               std::vector<TrainingSample>* out) {
  for (size_t j = 1; j < sequence.size(); ++j) {
    TrainingSample sample;
    sample.user = user;
    sample.target = sequence[j];
    const size_t begin =
        j > static_cast<size_t>(max_history) ? j - max_history : 0;
    sample.history.assign(sequence.begin() + static_cast<int64_t>(begin),
                          sequence.begin() + static_cast<int64_t>(j));
    out->push_back(std::move(sample));
  }
}

}  // namespace

std::vector<TrainingSample> BuildSpanSamples(const Dataset& dataset,
                                             int span, int max_history) {
  IMSR_CHECK_GT(max_history, 0);
  std::vector<TrainingSample> samples;
  for (UserId user : dataset.active_users(span)) {
    const UserSpanData& data = dataset.user_span(user, span);
    AppendSamplesFromSequence(user, data.train, max_history, &samples);
  }
  return samples;
}

std::vector<TrainingSample> BuildCumulativeSamples(const Dataset& dataset,
                                                   int up_to_span,
                                                   int max_history) {
  IMSR_CHECK_GT(max_history, 0);
  std::vector<TrainingSample> samples;
  for (UserId user = 0; user < dataset.num_users(); ++user) {
    if (!dataset.user_kept(user)) continue;
    std::vector<ItemId> sequence;
    for (int span = 0; span <= up_to_span; ++span) {
      const UserSpanData& data = dataset.user_span(user, span);
      sequence.insert(sequence.end(), data.train.begin(), data.train.end());
    }
    AppendSamplesFromSequence(user, sequence, max_history, &samples);
  }
  return samples;
}

NegativeSampler::NegativeSampler(int32_t num_items)
    : num_items_(num_items) {
  IMSR_CHECK_GT(num_items, 1);
}

std::vector<ItemId> NegativeSampler::Sample(int count, ItemId target,
                                            util::Rng& rng) const {
  std::vector<ItemId> negatives;
  // Let SampleInto's contract checks fire on a bogus count instead of
  // handing reserve() a wrapped-around size.
  negatives.reserve(static_cast<size_t>(std::max(count, 0)));
  SampleInto(count, target, rng, &negatives);
  return negatives;
}

void NegativeSampler::SampleInto(int count, ItemId target, util::Rng& rng,
                                 std::vector<ItemId>* out) const {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK_GE(count, 0);
  // Draws are with replacement, but each must land off-target: on a tiny
  // synthetic corpus a request for >= num_items negatives per draw batch
  // almost surely signals a misconfigured experiment, and count ==
  // num_items - 1 == 0 usable items would spin the rejection loop
  // forever. Fail loudly instead.
  IMSR_CHECK_LT(count, static_cast<int>(num_items_))
      << "cannot draw " << count << " negatives distinct from the target "
      << "from a corpus of " << num_items_
      << " items; shrink --negatives or grow the item catalogue";
  const size_t goal = out->size() + static_cast<size_t>(count);
  while (out->size() < goal) {
    const auto candidate =
        static_cast<ItemId>(rng.NextBelow(static_cast<uint64_t>(num_items_)));
    if (candidate == target) continue;
    out->push_back(candidate);
  }
}

}  // namespace imsr::data
