#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace imsr::data {
namespace {

// Timeline length; only relative positions matter.
constexpr int64_t kTimelineLength = 1'000'000;

int JitteredCount(int mean, util::Rng& rng) {
  const double jitter = rng.Uniform(0.7, 1.3);
  return std::max(1, static_cast<int>(std::lround(mean * jitter)));
}

}  // namespace

SyntheticConfig SyntheticConfig::Electronics(double scale) {
  SyntheticConfig c;
  c.name = "Electronics";
  c.num_users = std::max(20, static_cast<int>(250 * scale));
  c.num_items = std::max(100, static_cast<int>(900 * scale));
  c.num_categories = 20;
  c.pretrain_interactions_per_user = 36;
  c.span_interactions_per_user = 10;
  c.initial_interests_per_user = 3;
  c.new_interest_prob = 0.30;
  c.interest_active_prob = 0.65;
  c.seed = 101;
  return c;
}

SyntheticConfig SyntheticConfig::Clothing(double scale) {
  SyntheticConfig c;
  c.name = "Clothing";
  c.num_users = std::max(20, static_cast<int>(400 * scale));
  c.num_items = std::max(100, static_cast<int>(1100 * scale));
  c.num_categories = 24;
  c.pretrain_interactions_per_user = 40;
  c.span_interactions_per_user = 11;
  c.initial_interests_per_user = 3;
  c.new_interest_prob = 0.35;
  c.interest_active_prob = 0.65;
  c.seed = 102;
  return c;
}

SyntheticConfig SyntheticConfig::Books(double scale) {
  SyntheticConfig c;
  c.name = "Books";
  c.num_users = std::max(20, static_cast<int>(500 * scale));
  c.num_items = std::max(100, static_cast<int>(1000 * scale));
  c.num_categories = 18;
  c.pretrain_interactions_per_user = 44;
  c.span_interactions_per_user = 12;
  c.initial_interests_per_user = 3;
  // Book tastes are stable: few new interests, existing interests stay
  // active — retention (EIR) dominates (paper §V-C).
  c.new_interest_prob = 0.15;
  c.interest_active_prob = 0.78;
  c.seed = 103;
  return c;
}

SyntheticConfig SyntheticConfig::Taobao(double scale) {
  SyntheticConfig c;
  c.name = "Taobao";
  c.num_users = std::max(20, static_cast<int>(600 * scale));
  c.num_items = std::max(100, static_cast<int>(2000 * scale));
  c.num_categories = 36;
  c.pretrain_interactions_per_user = 50;
  c.span_interactions_per_user = 14;
  c.initial_interests_per_user = 4;
  // Rich catalogue, fast-moving interests — expansion (NID/PIT) dominates.
  c.new_interest_prob = 0.55;
  c.interest_active_prob = 0.55;
  c.new_interest_boost = 3.0;
  c.seed = 104;
  return c;
}

SyntheticConfig SyntheticConfig::Preset(const std::string& name,
                                        double scale) {
  if (name == "electronics") return Electronics(scale);
  if (name == "clothing") return Clothing(scale);
  if (name == "books") return Books(scale);
  if (name == "taobao") return Taobao(scale);
  IMSR_CHECK(false) << "unknown dataset preset '" << name << "'";
}

SyntheticDataset GenerateSynthetic(const SyntheticConfig& config) {
  IMSR_CHECK_GT(config.num_users, 0);
  IMSR_CHECK_GT(config.num_items, 0);
  IMSR_CHECK_GT(config.num_categories, 0);
  IMSR_CHECK_LE(config.num_categories, config.num_items);
  IMSR_CHECK_GE(config.initial_interests_per_user, 1);
  IMSR_CHECK_LE(config.initial_interests_per_user, config.num_categories);

  util::Rng rng(config.seed);

  // --- Item catalogue: category membership + Zipf popularity order ---
  SyntheticGroundTruth truth;
  truth.item_category.resize(static_cast<size_t>(config.num_items));
  std::vector<std::vector<ItemId>> category_items(
      static_cast<size_t>(config.num_categories));
  for (ItemId item = 0; item < config.num_items; ++item) {
    const int category =
        static_cast<int>(rng.NextBelow(config.num_categories));
    truth.item_category[static_cast<size_t>(item)] = category;
    category_items[static_cast<size_t>(category)].push_back(item);
  }
  // Guarantee non-empty categories by reassigning from the largest.
  for (int c = 0; c < config.num_categories; ++c) {
    auto& items = category_items[static_cast<size_t>(c)];
    if (!items.empty()) continue;
    auto largest = std::max_element(
        category_items.begin(), category_items.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    const ItemId moved = largest->back();
    largest->pop_back();
    items.push_back(moved);
    truth.item_category[static_cast<size_t>(moved)] = c;
  }
  for (auto& items : category_items) rng.Shuffle(items);

  auto zipf_weights = [&](size_t n) {
    std::vector<double> weights(n);
    for (size_t r = 0; r < n; ++r) {
      weights[r] = 1.0 / std::pow(static_cast<double>(r + 1),
                                  config.zipf_exponent);
    }
    return weights;
  };
  std::vector<std::vector<double>> category_weights(
      static_cast<size_t>(config.num_categories));
  for (int c = 0; c < config.num_categories; ++c) {
    category_weights[static_cast<size_t>(c)] =
        zipf_weights(category_items[static_cast<size_t>(c)].size());
  }

  // --- Users: owned interests with birth spans ---
  truth.user_interests.resize(static_cast<size_t>(config.num_users));
  truth.interest_birth_span.resize(static_cast<size_t>(config.num_users));
  for (UserId u = 0; u < config.num_users; ++u) {
    std::vector<int> all_categories(
        static_cast<size_t>(config.num_categories));
    for (int c = 0; c < config.num_categories; ++c) {
      all_categories[static_cast<size_t>(c)] = c;
    }
    rng.Shuffle(all_categories);
    const int base = config.initial_interests_per_user;
    const int count = std::max(
        1, std::min(config.num_categories,
                    static_cast<int>(rng.IntInRange(base - 1, base + 1))));
    for (int k = 0; k < count; ++k) {
      truth.user_interests[static_cast<size_t>(u)].push_back(
          all_categories[static_cast<size_t>(k)]);
      truth.interest_birth_span[static_cast<size_t>(u)].push_back(0);
    }
  }

  // --- Span time windows ---
  const int num_spans = config.num_incremental_spans + 1;
  const auto pretrain_end =
      static_cast<int64_t>(config.alpha * kTimelineLength);
  const double slice =
      (1.0 - config.alpha) * kTimelineLength / config.num_incremental_spans;
  auto span_window = [&](int span) -> std::pair<int64_t, int64_t> {
    if (span == 0) return {0, pretrain_end};
    const auto begin =
        pretrain_end + static_cast<int64_t>((span - 1) * slice);
    const auto end = pretrain_end + static_cast<int64_t>(span * slice);
    return {begin, end};
  };

  // --- Interaction generation ---
  std::vector<Interaction> log;
  log.reserve(static_cast<size_t>(config.num_users) *
              static_cast<size_t>(config.pretrain_interactions_per_user +
                                  config.num_incremental_spans *
                                      config.span_interactions_per_user));

  for (int span = 0; span < num_spans; ++span) {
    // Popularity drift: swap a fraction of adjacent in-category ranks.
    if (span > 0 && config.popularity_drift > 0.0) {
      for (auto& items : category_items) {
        if (items.size() < 2) continue;
        const auto swaps = static_cast<size_t>(
            config.popularity_drift * static_cast<double>(items.size()));
        for (size_t s = 0; s < swaps; ++s) {
          const size_t i = static_cast<size_t>(
              rng.NextBelow(items.size() - 1));
          std::swap(items[i], items[i + 1]);
        }
      }
    }

    const auto [window_begin, window_end] = span_window(span);
    for (UserId u = 0; u < config.num_users; ++u) {
      auto& interests = truth.user_interests[static_cast<size_t>(u)];
      auto& births = truth.interest_birth_span[static_cast<size_t>(u)];

      // New-interest arrival (incremental spans only).
      if (span > 0 && rng.Bernoulli(config.new_interest_prob)) {
        for (int add = 0; add < config.new_interests_per_event; ++add) {
          if (static_cast<int>(interests.size()) >= config.num_categories) {
            break;
          }
          int category;
          do {
            category = static_cast<int>(rng.NextBelow(config.num_categories));
          } while (std::find(interests.begin(), interests.end(), category) !=
                   interests.end());
          interests.push_back(category);
          births.push_back(span);
        }
      }

      // Active subset for this span: each owned interest flips a coin;
      // interests born this span are always active.
      std::vector<size_t> active;
      for (size_t k = 0; k < interests.size(); ++k) {
        if (births[k] == span || rng.Bernoulli(config.interest_active_prob)) {
          active.push_back(k);
        }
      }
      if (active.empty()) {
        active.push_back(static_cast<size_t>(rng.NextBelow(
            interests.size())));
      }
      std::vector<double> interest_weights(active.size());
      for (size_t a = 0; a < active.size(); ++a) {
        const int birth = births[active[a]];
        double weight = 1.0 + config.recency_bias *
                                  static_cast<double>(birth) /
                                  static_cast<double>(num_spans);
        if (birth == span && span > 0) weight *= config.new_interest_boost;
        interest_weights[a] = weight;
      }

      const int count = JitteredCount(
          span == 0 ? config.pretrain_interactions_per_user
                    : config.span_interactions_per_user,
          rng);
      for (int i = 0; i < count; ++i) {
        const size_t pick = rng.Categorical(interest_weights);
        const int category = interests[active[pick]];
        const auto& items = category_items[static_cast<size_t>(category)];
        const auto& weights = category_weights[static_cast<size_t>(category)];
        const ItemId item = items[rng.Categorical(weights)];
        const int64_t timestamp =
            rng.IntInRange(window_begin, std::max(window_begin,
                                                  window_end - 1));
        log.push_back({u, item, timestamp});
      }
    }
  }

  SyntheticDataset result;
  result.truth = std::move(truth);
  result.config = config;
  result.dataset = std::make_unique<Dataset>(
      config.num_users, config.num_items, std::move(log),
      config.num_incremental_spans, config.alpha, config.min_interactions);
  return result;
}

std::vector<Interaction> FlattenDatasetToLog(const Dataset& dataset) {
  std::vector<Interaction> interactions;
  const int num_spans = dataset.num_incremental_spans();
  const int64_t slice = 1'000'000;
  for (int span = 0; span < dataset.num_spans(); ++span) {
    const int64_t window_begin =
        span == 0 ? 0
                  : static_cast<int64_t>(num_spans + span - 1) * slice;
    const int64_t window_size =
        span == 0 ? static_cast<int64_t>(num_spans) * slice : slice;
    for (UserId user : dataset.active_users(span)) {
      const auto& items = dataset.user_span(user, span).all;
      for (size_t i = 0; i < items.size(); ++i) {
        // Spread the user's in-span items evenly so order is preserved.
        const int64_t timestamp =
            window_begin +
            static_cast<int64_t>(i) * window_size /
                static_cast<int64_t>(items.size() + 1) +
            user % 97;  // de-synchronise users within the window
        interactions.push_back({user, items[i], timestamp});
      }
    }
  }
  return interactions;
}

}  // namespace imsr::data
