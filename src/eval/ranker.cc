#include "eval/ranker.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace imsr::eval {

std::vector<float> ScoreAllItems(const nn::Tensor& interests,
                                 const nn::Tensor& item_embeddings,
                                 ScoreRule rule) {
  IMSR_CHECK_EQ(interests.dim(), 2);
  IMSR_CHECK_EQ(item_embeddings.dim(), 2);
  IMSR_CHECK_EQ(interests.size(1), item_embeddings.size(1));
  const int64_t num_items = item_embeddings.size(0);
  const int64_t k = interests.size(0);

  // logits = E H^T, one row of K interest scores per item.
  const nn::Tensor logits =
      nn::MatMul(item_embeddings, nn::Transpose(interests));
  std::vector<float> scores(static_cast<size_t>(num_items));
  for (int64_t i = 0; i < num_items; ++i) {
    const float* row = logits.data() + i * k;
    if (rule == ScoreRule::kMaxInterest) {
      float best = row[0];
      for (int64_t j = 1; j < k; ++j) best = std::max(best, row[j]);
      scores[static_cast<size_t>(i)] = best;
    } else {
      // Attentive: v_u(e_i) . e_i = sum_k softmax(row)_k row_k.
      float max_logit = row[0];
      for (int64_t j = 1; j < k; ++j) max_logit = std::max(max_logit, row[j]);
      float total = 0.0f;
      float weighted = 0.0f;
      for (int64_t j = 0; j < k; ++j) {
        const float w = std::exp(row[j] - max_logit);
        total += w;
        weighted += w * row[j];
      }
      scores[static_cast<size_t>(i)] = weighted / total;
    }
  }
  return scores;
}

int64_t TargetRank(const nn::Tensor& interests,
                   const nn::Tensor& item_embeddings, data::ItemId target,
                   ScoreRule rule) {
  IMSR_CHECK(target >= 0 && target < item_embeddings.size(0));
  const std::vector<float> scores =
      ScoreAllItems(interests, item_embeddings, rule);
  const float target_score = scores[static_cast<size_t>(target)];
  int64_t rank = 1;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (static_cast<data::ItemId>(i) == target) continue;
    if (scores[i] >= target_score) ++rank;
  }
  return rank;
}

std::vector<std::pair<data::ItemId, float>> TopNItems(
    const nn::Tensor& interests, const nn::Tensor& item_embeddings, int n,
    ScoreRule rule) {
  IMSR_CHECK_GT(n, 0);
  const std::vector<float> scores =
      ScoreAllItems(interests, item_embeddings, rule);
  std::vector<data::ItemId> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<data::ItemId>(i);
  }
  const size_t keep = std::min(static_cast<size_t>(n), order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<int64_t>(keep), order.end(),
                    [&scores](data::ItemId a, data::ItemId b) {
                      return scores[static_cast<size_t>(a)] >
                             scores[static_cast<size_t>(b)];
                    });
  std::vector<std::pair<data::ItemId, float>> top;
  top.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    top.emplace_back(order[i], scores[static_cast<size_t>(order[i])]);
  }
  return top;
}

}  // namespace imsr::eval
