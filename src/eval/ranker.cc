#include "eval/ranker.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace imsr::eval {

float ScoreFromLogits(const float* row, int64_t k, ScoreRule rule) {
  if (rule == ScoreRule::kMaxInterest) {
    float best = row[0];
    for (int64_t j = 1; j < k; ++j) best = std::max(best, row[j]);
    return best;
  }
  // Attentive: v_u(e_i) . e_i = sum_k softmax(row)_k row_k.
  float max_logit = row[0];
  for (int64_t j = 1; j < k; ++j) max_logit = std::max(max_logit, row[j]);
  float total = 0.0f;
  float weighted = 0.0f;
  for (int64_t j = 0; j < k; ++j) {
    const float w = std::exp(row[j] - max_logit);
    total += w;
    weighted += w * row[j];
  }
  return weighted / total;
}

// Fused per-item reduction over the K interest logits: one pass computes
// either max_k or the softmax-weighted combination (Eq. 5 with the
// candidate as query), without temporaries.
void ScoresFromLogits(const float* logits, int64_t num_items, int64_t k,
                      ScoreRule rule, float* scores) {
  for (int64_t i = 0; i < num_items; ++i) {
    scores[i] = ScoreFromLogits(logits + i * k, k, rule);
  }
}

void ScoresFromLogitsStrided(const float* logits, int64_t num_items,
                             int64_t k, int64_t stride, int64_t offset,
                             ScoreRule rule, float* scores) {
  for (int64_t i = 0; i < num_items; ++i) {
    scores[i] = ScoreFromLogits(logits + i * stride + offset, k, rule);
  }
}

const char* ScoreRuleName(ScoreRule rule) {
  switch (rule) {
    case ScoreRule::kAttentive:
      return "attentive";
    case ScoreRule::kMaxInterest:
      return "max";
  }
  return "?";
}

bool ScoreRuleFromName(const std::string& name, ScoreRule* rule,
                       std::string* error) {
  IMSR_CHECK(rule != nullptr);
  if (name == "attentive") {
    *rule = ScoreRule::kAttentive;
    return true;
  }
  if (name == "max" || name == "max-interest") {
    *rule = ScoreRule::kMaxInterest;
    return true;
  }
  if (error != nullptr) {
    *error = "unknown score rule '" + name +
             "' (valid: attentive, max)";
  }
  return false;
}

void ScoreAllItemsInto(const nn::Tensor& interests,
                       const nn::Tensor& item_embeddings, ScoreRule rule,
                       RankScratch* scratch) {
  IMSR_CHECK_EQ(interests.dim(), 2);
  ScoreAllItemsInto(nn::ViewOf(interests), item_embeddings, rule, scratch);
}

void ScoreAllItemsInto(nn::ConstMatrixView interests,
                       const nn::Tensor& item_embeddings, ScoreRule rule,
                       RankScratch* scratch) {
  IMSR_CHECK(scratch != nullptr);
  IMSR_CHECK(interests.data != nullptr);
  IMSR_CHECK_EQ(item_embeddings.dim(), 2);
  IMSR_CHECK_EQ(interests.cols, item_embeddings.size(1));
  const int64_t num_items = item_embeddings.size(0);
  const int64_t k = interests.rows;

  // logits = E H^T, one row of K interest scores per item.
  nn::MatMulTransBInto(item_embeddings, interests, &scratch->logits);
  scratch->scores.resize(static_cast<size_t>(num_items));
  ScoresFromLogits(scratch->logits.data(), num_items, k, rule,
                   scratch->scores.data());
}

std::vector<float> ScoreAllItems(const nn::Tensor& interests,
                                 const nn::Tensor& item_embeddings,
                                 ScoreRule rule) {
  RankScratch scratch;
  ScoreAllItemsInto(interests, item_embeddings, rule, &scratch);
  return std::move(scratch.scores);
}

int64_t TargetRankFromScores(const std::vector<float>& scores,
                             data::ItemId target) {
  IMSR_CHECK(target >= 0 &&
             target < static_cast<data::ItemId>(scores.size()));
  const float target_score = scores[static_cast<size_t>(target)];
  int64_t rank = 1;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (static_cast<data::ItemId>(i) == target) continue;
    if (scores[i] >= target_score) ++rank;
  }
  return rank;
}

std::vector<std::pair<data::ItemId, float>> TopNFromScores(
    const std::vector<float>& scores, int n) {
  IMSR_CHECK_GT(n, 0);
  std::vector<data::ItemId> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<data::ItemId>(i);
  }
  const size_t keep = std::min(static_cast<size_t>(n), order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<int64_t>(keep), order.end(),
                    [&scores](data::ItemId a, data::ItemId b) {
                      return scores[static_cast<size_t>(a)] >
                             scores[static_cast<size_t>(b)];
                    });
  std::vector<std::pair<data::ItemId, float>> top;
  top.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    top.emplace_back(order[i], scores[static_cast<size_t>(order[i])]);
  }
  return top;
}

int64_t TargetRank(const nn::Tensor& interests,
                   const nn::Tensor& item_embeddings, data::ItemId target,
                   ScoreRule rule) {
  IMSR_CHECK(target >= 0 && target < item_embeddings.size(0));
  return TargetRankFromScores(
      ScoreAllItems(interests, item_embeddings, rule), target);
}

std::vector<std::pair<data::ItemId, float>> TopNItems(
    const nn::Tensor& interests, const nn::Tensor& item_embeddings, int n,
    ScoreRule rule) {
  return TopNFromScores(ScoreAllItems(interests, item_embeddings, rule), n);
}

}  // namespace imsr::eval
