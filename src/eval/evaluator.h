// Per-span evaluation driver: after training through span t, the stored
// interests rank the held-out test item of span t+1 (§IV-E's inference
// procedure and §V-A1's protocol).
//
// The primary entry point consumes an immutable serve::ServingSnapshot —
// the same frozen state the online read path serves from — so offline
// metrics measure exactly what production would serve. The live-model
// overload (embedding tensor + InterestStore) is a thin adapter over the
// same scoring core; for equal values the two are bitwise identical.
#ifndef IMSR_EVAL_EVALUATOR_H_
#define IMSR_EVAL_EVALUATOR_H_

#include "core/interest_store.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "eval/ranker.h"
#include "serve/snapshot.h"

namespace imsr::eval {

struct EvalConfig {
  int top_n = 20;
  ScoreRule rule = ScoreRule::kAttentive;
  // Worker threads for full-corpus ranking (users are independent).
  // <= 0 uses the process-wide pool's configured size (see
  // util/thread_pool.h); metrics are bitwise identical either way.
  int threads = 1;
  // kIVF ranks each test item within the index's retrieved top-N instead
  // of the full corpus (a miss ranks top_n + 1, contributing 0 to HR and
  // NDCG — the serving-accurate protocol). Snapshots without an index,
  // and the live-model overload, fall back to exact. The default follows
  // IMSR_RETRIEVAL, which is kExact unless overridden.
  serve::RetrievalMode retrieval = serve::DefaultRetrievalMode();
  // Lists probed per interest under kIVF; <= 0 uses the index default.
  int nprobe = 0;
};

// Which test targets to keep — the Fig. 7a case study splits them by
// whether the user has interacted with the item before.
enum class ItemFilter { kAll, kExistingOnly, kNewOnly };

struct EvalResult {
  TopNMetrics metrics;
  double total_seconds = 0.0;  // wall time spent scoring
  // Accumulated IVF accounting; zero searches when exact scoring ran.
  serve::IvfSearchTotals ivf;
};

// Evaluates every user that (a) has interests in the snapshot and (b) has
// a test item in `test_span`. With a filter other than kAll,
// `history_span` bounds the history that defines "existing" items
// (usually test_span - 1).
EvalResult EvaluateSpan(const serve::ServingSnapshot& snapshot,
                        const data::Dataset& dataset, int test_span,
                        const EvalConfig& config,
                        ItemFilter filter = ItemFilter::kAll,
                        int history_span = -1);

// Live-model adapter: scores straight from the training-side objects
// (`item_embeddings` is the model's (num_items x d) table). Same scoring
// core as the snapshot overload, bitwise identical for equal values.
EvalResult EvaluateSpan(const nn::Tensor& item_embeddings,
                        const core::InterestStore& store,
                        const data::Dataset& dataset, int test_span,
                        const EvalConfig& config,
                        ItemFilter filter = ItemFilter::kAll,
                        int history_span = -1);

}  // namespace imsr::eval

#endif  // IMSR_EVAL_EVALUATOR_H_
