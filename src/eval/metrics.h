// Ranking metrics (HR@N, NDCG@N) used throughout the evaluation (§V-A2).
#ifndef IMSR_EVAL_METRICS_H_
#define IMSR_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace imsr::eval {

// Aggregated top-N metrics over a set of evaluated users.
struct TopNMetrics {
  double hit_ratio = 0.0;
  double ndcg = 0.0;
  int64_t users = 0;
};

// Accumulates per-user ranks into running metric sums.
class MetricsAccumulator {
 public:
  explicit MetricsAccumulator(int top_n);

  // Records one user's 1-based rank of the ground-truth item.
  void AddRank(int64_t rank);

  TopNMetrics Finalize() const;

  int top_n() const { return top_n_; }

 private:
  int top_n_;
  int64_t users_ = 0;
  int64_t hits_ = 0;
  double ndcg_sum_ = 0.0;
};

// NDCG contribution of a single relevant item at 1-based `rank`
// (1/log2(rank+1) within the cut-off, else 0).
double NdcgAtRank(int64_t rank, int top_n);

// Point-in-time state of a sliding window over an event stream. All
// averages are over the `count` events currently in the window; an empty
// window reports zeros with count 0 — consumers must branch on `count`,
// never divide by it.
struct WindowMetrics {
  double hit_ratio = 0.0;  // windowed recall@N (single relevant item)
  double ndcg = 0.0;
  int64_t count = 0;  // events currently in the window
};

// Sliding-window top-N metrics over an event stream — the prequential
// (test-then-learn) protocol's accumulator: each scored event contributes
// its hit/NDCG to a ring buffer of the last `window` events, and
// Current() reports the running window averages in O(1). Unlike the
// run-to-completion accumulators above there is no Finalize(); the
// window is meant to be sampled repeatedly as the stream flows.
class SlidingWindowAccumulator {
 public:
  SlidingWindowAccumulator(int top_n, int64_t window);

  // Records one event's 1-based full-corpus rank of the true next item.
  void AddRank(int64_t rank);

  // Averages over the events currently in the window (zeros, count 0,
  // when nothing has been recorded yet).
  WindowMetrics Current() const;

  int top_n() const { return top_n_; }
  int64_t window() const { return static_cast<int64_t>(hits_.size()); }
  // Total events ever recorded (>= Current().count).
  int64_t total() const { return total_; }

 private:
  int top_n_;
  std::vector<uint8_t> hits_;   // ring buffer, parallel to ndcgs_
  std::vector<double> ndcgs_;
  int64_t next_ = 0;   // ring write position
  int64_t total_ = 0;  // lifetime event count
  // Running sums over the window, maintained incrementally on eviction so
  // Current() never rescans the ring.
  int64_t hit_sum_ = 0;
  double ndcg_sum_ = 0.0;
};

// Metrics at several cut-offs from one ranking pass, plus MRR — the
// extended report some MSR papers use (HR/NDCG@10/20/50).
struct MultiCutoffMetrics {
  std::vector<int> cutoffs;
  std::vector<double> hit_ratio;  // parallel to cutoffs
  std::vector<double> ndcg;       // parallel to cutoffs
  double mrr = 0.0;
  int64_t users = 0;
};

class MultiCutoffAccumulator {
 public:
  explicit MultiCutoffAccumulator(std::vector<int> cutoffs);

  void AddRank(int64_t rank);
  MultiCutoffMetrics Finalize() const;

 private:
  std::vector<int> cutoffs_;
  std::vector<int64_t> hits_;
  std::vector<double> ndcg_sums_;
  double reciprocal_rank_sum_ = 0.0;
  int64_t users_ = 0;
};

}  // namespace imsr::eval

#endif  // IMSR_EVAL_METRICS_H_
