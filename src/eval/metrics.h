// Ranking metrics (HR@N, NDCG@N) used throughout the evaluation (§V-A2).
#ifndef IMSR_EVAL_METRICS_H_
#define IMSR_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace imsr::eval {

// Aggregated top-N metrics over a set of evaluated users.
struct TopNMetrics {
  double hit_ratio = 0.0;
  double ndcg = 0.0;
  int64_t users = 0;
};

// Accumulates per-user ranks into running metric sums.
class MetricsAccumulator {
 public:
  explicit MetricsAccumulator(int top_n);

  // Records one user's 1-based rank of the ground-truth item.
  void AddRank(int64_t rank);

  TopNMetrics Finalize() const;

  int top_n() const { return top_n_; }

 private:
  int top_n_;
  int64_t users_ = 0;
  int64_t hits_ = 0;
  double ndcg_sum_ = 0.0;
};

// NDCG contribution of a single relevant item at 1-based `rank`
// (1/log2(rank+1) within the cut-off, else 0).
double NdcgAtRank(int64_t rank, int top_n);

// Metrics at several cut-offs from one ranking pass, plus MRR — the
// extended report some MSR papers use (HR/NDCG@10/20/50).
struct MultiCutoffMetrics {
  std::vector<int> cutoffs;
  std::vector<double> hit_ratio;  // parallel to cutoffs
  std::vector<double> ndcg;       // parallel to cutoffs
  double mrr = 0.0;
  int64_t users = 0;
};

class MultiCutoffAccumulator {
 public:
  explicit MultiCutoffAccumulator(std::vector<int> cutoffs);

  void AddRank(int64_t rank);
  MultiCutoffMetrics Finalize() const;

 private:
  std::vector<int> cutoffs_;
  std::vector<int64_t> hits_;
  std::vector<double> ndcg_sums_;
  double reciprocal_rank_sum_ = 0.0;
  int64_t users_ = 0;
};

}  // namespace imsr::eval

#endif  // IMSR_EVAL_METRICS_H_
