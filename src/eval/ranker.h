// Full-corpus ranking from a user's interest vectors. Implements both the
// paper's attentive inference rule (Algorithm 2: v_u built per candidate
// via Eq. 5, scored by inner product) and ComiRec's max-interest serving
// rule.
//
// The scoring path is allocation-free per user when driven through
// RankScratch: logits = E H^T come from the blocked MatMulTransB kernel
// (no materialised Transpose) into a reused buffer, and the per-item
// attentive/max reduction is fused into a single pass.
#ifndef IMSR_EVAL_RANKER_H_
#define IMSR_EVAL_RANKER_H_

#include <string>
#include <utility>
#include <vector>

#include "data/interaction.h"
#include "nn/tensor.h"

namespace imsr::eval {

enum class ScoreRule { kAttentive, kMaxInterest };

const char* ScoreRuleName(ScoreRule rule);
// Fallible parse ("attentive" | "max"); on an unknown name returns false
// and fills `error` with the valid spellings.
bool ScoreRuleFromName(const std::string& name, ScoreRule* rule,
                       std::string* error);

// Per-item reduction over one row of K interest logits: max_k for
// kMaxInterest, the softmax-weighted combination (Eq. 5 with the
// candidate as query) for kAttentive. ScoreAllItemsInto applies this to
// every row of the logits matrix; the IVF re-rank applies it to shortlist
// rows — sharing one definition keeps the two paths bitwise identical.
float ScoreFromLogits(const float* row, int64_t k, ScoreRule rule);

// The full-corpus form: applies ScoreFromLogits to each of `num_items`
// contiguous rows of K logits. ScoreAllItemsInto uses it on its own
// E H^T product; serve::RecommendBatch applies it to fused per-user
// logits — one definition keeps every path bitwise identical.
void ScoresFromLogits(const float* logits, int64_t num_items, int64_t k,
                      ScoreRule rule, float* scores);

// Strided form for fused multi-user logit matrices: item i's K logits
// start at logits + i * stride + offset (contiguous within the row).
// ScoresFromLogits is the stride == k, offset == 0 case; both run the
// same per-row reduction, so a user's scores read out of a fused
// (num_items x total_k) product are bitwise identical to scores from a
// dedicated (num_items x k) one — the serve micro-batch relies on this
// (DESIGN.md §15).
void ScoresFromLogitsStrided(const float* logits, int64_t num_items,
                             int64_t k, int64_t stride, int64_t offset,
                             ScoreRule rule, float* scores);

// Reusable buffers for repeated full-corpus scoring (one per worker
// thread in the evaluator; never shared across threads concurrently).
struct RankScratch {
  nn::Tensor logits;          // (num_items x K), reused across users
  std::vector<float> scores;  // num_items
};

// Scores every item into scratch->scores (resized to num_items), reusing
// scratch->logits for the E H^T product.
void ScoreAllItemsInto(const nn::Tensor& interests,
                       const nn::Tensor& item_embeddings, ScoreRule rule,
                       RankScratch* scratch);
// Same, with the (K x d) interests given as a view over packed storage
// (the ServingSnapshot read path). Shares every kernel with the Tensor
// overload, so equal values score bitwise identically.
void ScoreAllItemsInto(nn::ConstMatrixView interests,
                       const nn::Tensor& item_embeddings, ScoreRule rule,
                       RankScratch* scratch);

// Allocating convenience wrapper around ScoreAllItemsInto.
std::vector<float> ScoreAllItems(const nn::Tensor& interests,
                                 const nn::Tensor& item_embeddings,
                                 ScoreRule rule);

// 1-based rank of `target` among precomputed full-corpus scores (ties
// resolved pessimistically: equal scores ahead of the target count
// against it).
int64_t TargetRankFromScores(const std::vector<float>& scores,
                             data::ItemId target);

// Top-N (item, score) pairs from precomputed scores, highest first.
std::vector<std::pair<data::ItemId, float>> TopNFromScores(
    const std::vector<float>& scores, int n);

// 1-based rank of `target` among all items under `rule`; scores the
// corpus from scratch. Prefer ScoreAllItemsInto + TargetRankFromScores
// when several metrics share one user's scores.
int64_t TargetRank(const nn::Tensor& interests,
                   const nn::Tensor& item_embeddings, data::ItemId target,
                   ScoreRule rule);

// Top-N (item, score) pairs, highest first; scores the corpus from
// scratch (see TargetRank's note about reusing scores).
std::vector<std::pair<data::ItemId, float>> TopNItems(
    const nn::Tensor& interests, const nn::Tensor& item_embeddings, int n,
    ScoreRule rule);

}  // namespace imsr::eval

#endif  // IMSR_EVAL_RANKER_H_
