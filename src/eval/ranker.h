// Full-corpus ranking from a user's interest vectors. Implements both the
// paper's attentive inference rule (Algorithm 2: v_u built per candidate
// via Eq. 5, scored by inner product) and ComiRec's max-interest serving
// rule.
#ifndef IMSR_EVAL_RANKER_H_
#define IMSR_EVAL_RANKER_H_

#include <utility>
#include <vector>

#include "data/interaction.h"
#include "nn/tensor.h"

namespace imsr::eval {

enum class ScoreRule { kAttentive, kMaxInterest };

// Scores of every item: logits = E H^T (num_items x K), then per item
// either the softmax-weighted combination (attentive) or the max over K.
std::vector<float> ScoreAllItems(const nn::Tensor& interests,
                                 const nn::Tensor& item_embeddings,
                                 ScoreRule rule);

// 1-based rank of `target` among all items under `rule` (ties resolved
// pessimistically: equal scores ahead of the target count against it).
int64_t TargetRank(const nn::Tensor& interests,
                   const nn::Tensor& item_embeddings, data::ItemId target,
                   ScoreRule rule);

// Top-N (item, score) pairs, highest first.
std::vector<std::pair<data::ItemId, float>> TopNItems(
    const nn::Tensor& interests, const nn::Tensor& item_embeddings, int n,
    ScoreRule rule);

}  // namespace imsr::eval

#endif  // IMSR_EVAL_RANKER_H_
