#include "eval/projection.h"

#include <cmath>

#include "util/check.h"

namespace imsr::eval {
namespace {

// Covariance-vector product without materialising the d x d covariance:
// C v = X^T (X v) / n for centred X.
nn::Tensor CovarianceTimes(const nn::Tensor& centred,
                           const nn::Tensor& v) {
  const nn::Tensor xv = nn::MatVec(centred, v);            // (n)
  nn::Tensor result = nn::MatVec(nn::Transpose(centred), xv);  // (d)
  result.ScaleInPlace(1.0f / static_cast<float>(centred.size(0)));
  return result;
}

// Leading eigenvector of the covariance of `centred`, orthogonal to
// `deflate` (nullable), via power iteration. Returns a unit vector and
// its eigenvalue through `eigenvalue`.
nn::Tensor PowerIteration(const nn::Tensor& centred,
                          const nn::Tensor* deflate, double* eigenvalue) {
  const int64_t d = centred.size(1);
  // Deterministic start vector.
  nn::Tensor v({d});
  for (int64_t j = 0; j < d; ++j) {
    v.at(j) = 1.0f / std::sqrt(static_cast<float>(d)) *
              (j % 2 == 0 ? 1.0f : -0.5f);
  }
  double lambda = 0.0;
  for (int iteration = 0; iteration < 200; ++iteration) {
    if (deflate != nullptr) {
      const float along = nn::DotFlat(v, *deflate);
      v.AddScaledInPlace(*deflate, -along);
    }
    nn::Tensor next = CovarianceTimes(centred, v);
    const float norm = nn::L2NormFlat(next);
    if (norm < 1e-12f) {
      // Degenerate direction (zero variance); return the current vector.
      lambda = 0.0;
      break;
    }
    next.ScaleInPlace(1.0f / norm);
    const float delta = nn::MaxAbsDiff(next, v);
    v = std::move(next);
    lambda = static_cast<double>(norm);
    if (delta < 1e-9f && iteration > 3) break;
  }
  if (eigenvalue != nullptr) *eigenvalue = lambda;
  return v;
}

nn::Tensor CentreRows(const nn::Tensor& points) {
  const int64_t n = points.size(0);
  const int64_t d = points.size(1);
  nn::Tensor mean({d});
  for (int64_t i = 0; i < n; ++i) {
    mean.AddInPlace(points.Row(i));
  }
  mean.ScaleInPlace(1.0f / static_cast<float>(n));
  nn::Tensor centred = points;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      centred.at(i, j) -= mean.at(j);
    }
  }
  return centred;
}

double TotalVariance(const nn::Tensor& centred) {
  double total = 0.0;
  for (int64_t i = 0; i < centred.numel(); ++i) {
    total += static_cast<double>(centred.data()[i]) * centred.data()[i];
  }
  return total / static_cast<double>(centred.size(0));
}

}  // namespace

std::vector<std::pair<double, double>> PcaProject2d(
    const nn::Tensor& points) {
  IMSR_CHECK_EQ(points.dim(), 2);
  IMSR_CHECK_GE(points.size(0), 2);
  const nn::Tensor centred = CentreRows(points);
  double lambda1 = 0.0;
  const nn::Tensor pc1 = PowerIteration(centred, nullptr, &lambda1);
  double lambda2 = 0.0;
  const nn::Tensor pc2 = PowerIteration(centred, &pc1, &lambda2);

  std::vector<std::pair<double, double>> projected;
  projected.reserve(static_cast<size_t>(points.size(0)));
  for (int64_t i = 0; i < points.size(0); ++i) {
    const nn::Tensor row = centred.Row(i);
    projected.emplace_back(nn::DotFlat(row, pc1), nn::DotFlat(row, pc2));
  }
  return projected;
}

double PcaExplainedVariance(const nn::Tensor& points, int k) {
  IMSR_CHECK(k == 1 || k == 2);
  const nn::Tensor centred = CentreRows(points);
  const double total = TotalVariance(centred);
  if (total < 1e-12) return 1.0;
  double lambda1 = 0.0;
  const nn::Tensor pc1 = PowerIteration(centred, nullptr, &lambda1);
  double explained = lambda1;
  if (k == 2) {
    double lambda2 = 0.0;
    PowerIteration(centred, &pc1, &lambda2);
    explained += lambda2;
  }
  return explained / total;
}

}  // namespace imsr::eval
