#include "eval/interest_analysis.h"

#include <algorithm>

#include "util/check.h"
#include "util/math_util.h"

namespace imsr::eval {

std::vector<std::vector<double>> InterestItemProfiles(
    const nn::Tensor& interests, const nn::Tensor& item_embeddings) {
  IMSR_CHECK_EQ(interests.dim(), 2);
  IMSR_CHECK_EQ(item_embeddings.dim(), 2);
  IMSR_CHECK_EQ(interests.size(1), item_embeddings.size(1));
  std::vector<std::vector<double>> profiles(
      static_cast<size_t>(interests.size(0)));
  // One batched matvec: row k holds every item's score under interest k.
  const nn::Tensor scores = nn::MatVecBatch(item_embeddings, interests);
  const int64_t num_items = item_embeddings.size(0);
  for (int64_t k = 0; k < interests.size(0); ++k) {
    const float* row = scores.data() + k * num_items;
    profiles[static_cast<size_t>(k)].assign(row, row + num_items);
  }
  return profiles;
}

std::vector<std::vector<double>> ProfileCorrelationMatrix(
    const nn::Tensor& interests, const nn::Tensor& item_embeddings) {
  const auto profiles = InterestItemProfiles(interests, item_embeddings);
  const size_t k = profiles.size();
  std::vector<std::vector<double>> matrix(k, std::vector<double>(k, 1.0));
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      const double corr =
          util::PearsonCorrelation(profiles[i], profiles[j]);
      matrix[i][j] = corr;
      matrix[j][i] = corr;
    }
  }
  return matrix;
}

std::vector<double> MaxCorrelationAgainstExisting(
    const nn::Tensor& interests, const nn::Tensor& item_embeddings,
    int64_t first_new) {
  IMSR_CHECK(first_new >= 1 && first_new <= interests.size(0));
  const auto profiles = InterestItemProfiles(interests, item_embeddings);
  std::vector<double> result;
  for (int64_t j = first_new; j < interests.size(0); ++j) {
    double best = -1.0;
    for (int64_t k = 0; k < first_new; ++k) {
      best = std::max(best, util::PearsonCorrelation(
                                profiles[static_cast<size_t>(j)],
                                profiles[static_cast<size_t>(k)]));
    }
    result.push_back(best);
  }
  return result;
}

std::vector<double> InterestNorms(const nn::Tensor& interests) {
  std::vector<double> norms;
  norms.reserve(static_cast<size_t>(interests.size(0)));
  for (int64_t k = 0; k < interests.size(0); ++k) {
    norms.push_back(nn::L2NormFlat(interests.Row(k)));
  }
  return norms;
}

double InheritedDrift(const nn::Tensor& before, const nn::Tensor& after) {
  IMSR_CHECK_EQ(before.size(1), after.size(1));
  const int64_t inherited = std::min(before.size(0), after.size(0));
  IMSR_CHECK_GT(inherited, 0);
  double total = 0.0;
  for (int64_t k = 0; k < inherited; ++k) {
    total += nn::L2NormFlat(nn::Sub(after.Row(k), before.Row(k)));
  }
  return total / static_cast<double>(inherited);
}

std::vector<double> DistanceToNearestExisting(const nn::Tensor& interests,
                                              int64_t first_new) {
  IMSR_CHECK(first_new >= 1 && first_new <= interests.size(0));
  std::vector<double> distances;
  for (int64_t j = first_new; j < interests.size(0); ++j) {
    double nearest = 1e300;
    for (int64_t k = 0; k < first_new; ++k) {
      nearest = std::min(
          nearest, static_cast<double>(nn::L2NormFlat(
                       nn::Sub(interests.Row(j), interests.Row(k)))));
    }
    distances.push_back(nearest);
  }
  return distances;
}

std::vector<double> InterestAgeServingShare(
    const nn::Tensor& item_embeddings, const core::InterestStore& store,
    const data::Dataset& dataset, int test_span, int max_span) {
  IMSR_CHECK_GE(max_span, 0);
  std::vector<int64_t> served(static_cast<size_t>(max_span + 1), 0);
  int64_t users = 0;
  for (data::UserId user : dataset.active_users(test_span)) {
    if (!store.Has(user)) continue;
    const data::UserSpanData& span_data =
        dataset.user_span(user, test_span);
    if (span_data.test < 0) continue;
    const nn::Tensor target = item_embeddings.Row(span_data.test);
    const nn::Tensor scores = nn::MatVec(store.Interests(user), target);
    int64_t best = 0;
    for (int64_t k = 1; k < scores.numel(); ++k) {
      if (scores.at(k) > scores.at(best)) best = k;
    }
    const int birth = store.BirthSpans(user)[static_cast<size_t>(best)];
    served[static_cast<size_t>(std::min(birth, max_span))] += 1;
    ++users;
  }
  std::vector<double> shares(served.size(), 0.0);
  if (users == 0) return shares;
  for (size_t s = 0; s < served.size(); ++s) {
    shares[s] =
        static_cast<double>(served[s]) / static_cast<double>(users);
  }
  return shares;
}

}  // namespace imsr::eval
