// 2-D PCA projection of interest vectors — the quantitative stand-in for
// the paper's t-SNE visualisation (Fig. 7b): project a set of
// d-dimensional interest snapshots into the plane spanned by the top two
// principal components so their evolution can be plotted or exported.
#ifndef IMSR_EVAL_PROJECTION_H_
#define IMSR_EVAL_PROJECTION_H_

#include <utility>
#include <vector>

#include "nn/tensor.h"

namespace imsr::eval {

// Centre the rows of `points` (n x d) and project onto the top two
// principal components (power iteration with deflation). Returns n (x, y)
// pairs. Requires n >= 2; with d == 1 the y coordinate is 0.
std::vector<std::pair<double, double>> PcaProject2d(
    const nn::Tensor& points);

// Variance explained by the top `k` principal components (k in {1, 2}),
// as a fraction of total variance. Diagnostic for how faithful the 2-D
// picture is.
double PcaExplainedVariance(const nn::Tensor& points, int k);

}  // namespace imsr::eval

#endif  // IMSR_EVAL_PROJECTION_H_
