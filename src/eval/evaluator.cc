#include "eval/evaluator.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace imsr::eval {
namespace {

// Shared scoring core. `has(user)` and `interests(user)` abstract over
// the two storage backends (ServingSnapshot vs live InterestStore); both
// feed the identical ScoreAllItemsInto kernel, so the backends produce
// bitwise-identical metrics for equal values.
// `index` (nullable) enables the IVF ranking path; the live-model
// overload passes nullptr.
template <typename HasFn, typename InterestsFn>
EvalResult EvaluateSpanImpl(const nn::Tensor& item_embeddings,
                            const HasFn& has, const InterestsFn& interests,
                            const serve::IvfIndex* index,
                            const data::Dataset& dataset, int test_span,
                            const EvalConfig& config, ItemFilter filter,
                            int history_span) {
  IMSR_TRACE_SPAN("eval/span");
  IMSR_CHECK(test_span >= 0 && test_span < dataset.num_spans());
  if (filter != ItemFilter::kAll) {
    IMSR_CHECK_GE(history_span, 0)
        << "item filters need a history horizon";
  }

  // Collect the evaluable (user, target) pairs first; ranking then runs
  // data-parallel over them.
  struct Instance {
    data::UserId user;
    data::ItemId target;
  };
  std::vector<Instance> instances;
  for (data::UserId user : dataset.active_users(test_span)) {
    const data::UserSpanData& span_data =
        dataset.user_span(user, test_span);
    if (span_data.test < 0) continue;
    if (!has(user)) continue;

    if (filter != ItemFilter::kAll) {
      const std::vector<data::ItemId> history =
          dataset.UserHistoryUpTo(user, history_span);
      const bool existing = std::binary_search(
          history.begin(), history.end(), span_data.test);
      if (filter == ItemFilter::kExistingOnly && !existing) continue;
      if (filter == ItemFilter::kNewOnly && existing) continue;
    }
    instances.push_back({user, span_data.test});
  }

  const bool use_ivf =
      config.retrieval == serve::RetrievalMode::kIVF && index != nullptr;
  IMSR_OBS_ONLY({
    if (config.retrieval == serve::RetrievalMode::kIVF &&
        index == nullptr) {
      IMSR_COUNTER_ADD("eval/ivf_fallback_exact",
                       static_cast<int64_t>(instances.size()));
    }
  })

  util::Stopwatch stopwatch;
  std::vector<int64_t> ranks(instances.size(), 0);
  std::vector<serve::IvfSearchStats> search_stats(
      use_ivf ? instances.size() : 0);
  // Users are independent; chunks run on the persistent pool. Each chunk
  // (at most one per worker) reuses one RankScratch so the corpus-sized
  // logits/score buffers are allocated once, not per user. Ranks land in
  // disjoint slots, so metrics are bitwise identical for any thread count.
  util::ParallelChunks(
      static_cast<int64_t>(instances.size()), config.threads,
      [&](int64_t begin, int64_t end) {
        IMSR_TRACE_SPAN("eval/rank_chunk");
        IMSR_OBS_ONLY(util::Stopwatch chunk_timer;)
        RankScratch scratch;
        serve::IvfIndex::Scratch ivf_scratch;
        std::vector<std::pair<data::ItemId, float>> top;
        for (int64_t i = begin; i < end; ++i) {
          const Instance& instance =
              instances[static_cast<size_t>(i)];
          if (use_ivf) {
            // Serving-accurate protocol: the rank is the target's
            // position in the retrieved top-N; a miss ranks top_n + 1
            // (contributes 0 to HR@N and NDCG@N, like any rank beyond
            // the cutoff).
            index->SearchTopN(interests(instance.user), item_embeddings,
                              config.rule, config.top_n, config.nprobe,
                              &ivf_scratch, &top,
                              &search_stats[static_cast<size_t>(i)]);
            int64_t rank = static_cast<int64_t>(config.top_n) + 1;
            for (size_t r = 0; r < top.size(); ++r) {
              if (top[r].first == instance.target) {
                rank = static_cast<int64_t>(r) + 1;
                break;
              }
            }
            ranks[static_cast<size_t>(i)] = rank;
          } else {
            ScoreAllItemsInto(interests(instance.user), item_embeddings,
                              config.rule, &scratch);
            ranks[static_cast<size_t>(i)] =
                TargetRankFromScores(scratch.scores, instance.target);
          }
        }
        IMSR_HISTOGRAM_RECORD("eval/rank_latency_ms",
                              chunk_timer.ElapsedMillis());
        IMSR_COUNTER_ADD("eval/users_ranked", end - begin);
      });
  const double scoring_seconds = stopwatch.ElapsedSeconds();

  MetricsAccumulator accumulator(config.top_n);
  for (int64_t rank : ranks) accumulator.AddRank(rank);

  EvalResult result;
  result.metrics = accumulator.Finalize();
  result.total_seconds = scoring_seconds;
  for (const serve::IvfSearchStats& stats : search_stats) {
    result.ivf.Add(stats);
  }
  return result;
}

}  // namespace

EvalResult EvaluateSpan(const serve::ServingSnapshot& snapshot,
                        const data::Dataset& dataset, int test_span,
                        const EvalConfig& config, ItemFilter filter,
                        int history_span) {
  return EvaluateSpanImpl(
      snapshot.item_embeddings(),
      [&snapshot](data::UserId user) { return snapshot.HasUser(user); },
      [&snapshot](data::UserId user) { return snapshot.Interests(user); },
      snapshot.index(), dataset, test_span, config, filter, history_span);
}

EvalResult EvaluateSpan(const nn::Tensor& item_embeddings,
                        const core::InterestStore& store,
                        const data::Dataset& dataset, int test_span,
                        const EvalConfig& config, ItemFilter filter,
                        int history_span) {
  return EvaluateSpanImpl(
      item_embeddings,
      [&store](data::UserId user) { return store.Has(user); },
      [&store](data::UserId user) {
        return nn::ViewOf(store.Interests(user));
      },
      nullptr, dataset, test_span, config, filter, history_span);
}

}  // namespace imsr::eval
