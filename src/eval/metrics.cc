#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace imsr::eval {

MetricsAccumulator::MetricsAccumulator(int top_n) : top_n_(top_n) {
  IMSR_CHECK_GT(top_n, 0);
}

void MetricsAccumulator::AddRank(int64_t rank) {
  IMSR_CHECK_GE(rank, 1);
  ++users_;
  if (rank <= top_n_) ++hits_;
  ndcg_sum_ += NdcgAtRank(rank, top_n_);
}

TopNMetrics MetricsAccumulator::Finalize() const {
  TopNMetrics metrics;
  metrics.users = users_;
  if (users_ > 0) {
    metrics.hit_ratio = static_cast<double>(hits_) /
                        static_cast<double>(users_);
    metrics.ndcg = ndcg_sum_ / static_cast<double>(users_);
  }
  return metrics;
}

double NdcgAtRank(int64_t rank, int top_n) {
  if (rank > top_n) return 0.0;
  return 1.0 / std::log2(static_cast<double>(rank) + 1.0);
}

SlidingWindowAccumulator::SlidingWindowAccumulator(int top_n,
                                                   int64_t window)
    : top_n_(top_n),
      hits_(static_cast<size_t>(window), 0),
      ndcgs_(static_cast<size_t>(window), 0.0) {
  IMSR_CHECK_GT(top_n, 0);
  IMSR_CHECK_GT(window, 0);
}

void SlidingWindowAccumulator::AddRank(int64_t rank) {
  IMSR_CHECK_GE(rank, 1);
  const auto slot = static_cast<size_t>(next_);
  if (total_ >= window()) {
    // Evict the oldest event's contribution before overwriting its slot.
    hit_sum_ -= hits_[slot];
    ndcg_sum_ -= ndcgs_[slot];
  }
  const uint8_t hit = rank <= top_n_ ? 1 : 0;
  const double ndcg = NdcgAtRank(rank, top_n_);
  hits_[slot] = hit;
  ndcgs_[slot] = ndcg;
  hit_sum_ += hit;
  ndcg_sum_ += ndcg;
  next_ = (next_ + 1) % window();
  ++total_;
}

WindowMetrics SlidingWindowAccumulator::Current() const {
  WindowMetrics metrics;
  metrics.count = std::min(total_, window());
  // Empty window: zeros with count 0, never a division by zero.
  if (metrics.count == 0) return metrics;
  metrics.hit_ratio =
      static_cast<double>(hit_sum_) / static_cast<double>(metrics.count);
  metrics.ndcg = ndcg_sum_ / static_cast<double>(metrics.count);
  return metrics;
}

MultiCutoffAccumulator::MultiCutoffAccumulator(std::vector<int> cutoffs)
    : cutoffs_(std::move(cutoffs)),
      hits_(cutoffs_.size(), 0),
      ndcg_sums_(cutoffs_.size(), 0.0) {
  IMSR_CHECK(!cutoffs_.empty());
  for (int cutoff : cutoffs_) IMSR_CHECK_GT(cutoff, 0);
}

void MultiCutoffAccumulator::AddRank(int64_t rank) {
  IMSR_CHECK_GE(rank, 1);
  ++users_;
  reciprocal_rank_sum_ += 1.0 / static_cast<double>(rank);
  for (size_t i = 0; i < cutoffs_.size(); ++i) {
    if (rank <= cutoffs_[i]) {
      ++hits_[i];
      ndcg_sums_[i] += NdcgAtRank(rank, cutoffs_[i]);
    }
  }
}

MultiCutoffMetrics MultiCutoffAccumulator::Finalize() const {
  MultiCutoffMetrics metrics;
  metrics.cutoffs = cutoffs_;
  metrics.users = users_;
  metrics.hit_ratio.resize(cutoffs_.size(), 0.0);
  metrics.ndcg.resize(cutoffs_.size(), 0.0);
  if (users_ == 0) return metrics;
  for (size_t i = 0; i < cutoffs_.size(); ++i) {
    metrics.hit_ratio[i] =
        static_cast<double>(hits_[i]) / static_cast<double>(users_);
    metrics.ndcg[i] = ndcg_sums_[i] / static_cast<double>(users_);
  }
  metrics.mrr = reciprocal_rank_sum_ / static_cast<double>(users_);
  return metrics;
}

}  // namespace imsr::eval
