// Interest-set analytics backing the paper's diagnostic figures:
// similarity-profile correlations (Fig. 3), inter-span drift (Fig. 7b)
// and the interest-age census of which interests serve which targets
// (Fig. 7c). Library functions so benches, examples and downstream users
// share one implementation.
#ifndef IMSR_EVAL_INTEREST_ANALYSIS_H_
#define IMSR_EVAL_INTEREST_ANALYSIS_H_

#include <vector>

#include "core/interest_store.h"
#include "data/dataset.h"
#include "nn/tensor.h"

namespace imsr::eval {

// Similarity profile of each interest over a set of items: row k holds
// the dot products of interest k with every item embedding (the p_k
// vectors of §IV-D).
std::vector<std::vector<double>> InterestItemProfiles(
    const nn::Tensor& interests, const nn::Tensor& item_embeddings);

// Pearson correlation matrix between interest profiles; entry (j, k) is
// the correlation of interests j and k over the given items.
std::vector<std::vector<double>> ProfileCorrelationMatrix(
    const nn::Tensor& interests, const nn::Tensor& item_embeddings);

// For each row in [first_new, K): the maximum Pearson correlation of its
// profile against any row in [0, first_new) — Fig. 3's redundancy
// measure.
std::vector<double> MaxCorrelationAgainstExisting(
    const nn::Tensor& interests, const nn::Tensor& item_embeddings,
    int64_t first_new);

// Per-row L2 norms (Fig. 3's existence measure).
std::vector<double> InterestNorms(const nn::Tensor& interests);

// Mean L2 distance between the first min(K_a, K_b) rows of two interest
// snapshots — Fig. 7b's inherited-interest drift.
double InheritedDrift(const nn::Tensor& before, const nn::Tensor& after);

// For each new row (>= first_new) of `interests`: distance to the nearest
// row below first_new — Fig. 7b's "new interests appear in new places".
std::vector<double> DistanceToNearestExisting(const nn::Tensor& interests,
                                              int64_t first_new);

// Fig. 7c: fraction of `test_span` test targets whose best-matching
// stored interest (by dot product) was created in each span. Entry s of
// the result is the share for creation span s (0..max_span).
std::vector<double> InterestAgeServingShare(
    const nn::Tensor& item_embeddings, const core::InterestStore& store,
    const data::Dataset& dataset, int test_span, int max_span);

}  // namespace imsr::eval

#endif  // IMSR_EVAL_INTEREST_ANALYSIS_H_
