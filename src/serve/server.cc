#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/obs.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace imsr::serve {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

size_t ShardOf(data::UserId user, size_t num_shards) {
  IMSR_CHECK_GT(num_shards, 0u);
  return static_cast<size_t>(
      SplitMix64(static_cast<uint64_t>(static_cast<uint32_t>(user))) %
      num_shards);
}

// --- ShardSet --------------------------------------------------------------

ShardSet::Shard::Shard(size_t queue_cap)
    : queue(queue_cap, {/*depth_histogram=*/"serve/shard_queue_depth",
                        /*blocked_counter=*/"serve/shard_queue_blocked"}) {}

ShardSet::ShardSet(const SnapshotRegistry* registry,
                   const ShardSetConfig& config)
    : registry_(registry), config_(config) {
  IMSR_CHECK(registry != nullptr);
  IMSR_CHECK_GT(config.num_shards, 0);
  IMSR_CHECK_GT(config.queue_cap, 0u);
  shards_.reserve(static_cast<size_t>(config.num_shards));
  for (int i = 0; i < config.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(config.queue_cap));
  }
}

ShardSet::~ShardSet() { Drain(); }

void ShardSet::Start() {
  if (started_) return;
  started_ = true;
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    shard->worker = std::thread([this, raw] { WorkerLoop(raw); });
  }
}

void ShardSet::WorkerLoop(Shard* shard) {
  RecommendScratch scratch;
  const int batch_max = std::max(1, config_.batch_max);
  std::unique_ptr<ResponseCache> cache;
  if (config_.cache_bytes > 0) {
    // The total budget splits evenly; a per-shard cache needs no lock
    // because only this worker thread touches it, and the user-hash
    // routing already partitions the key space across shards.
    const size_t per_shard =
        std::max<size_t>(1, config_.cache_bytes / shards_.size());
    cache = std::make_unique<ResponseCache>(per_shard);
  }
  uint64_t seen_hits = 0;
  uint64_t seen_misses = 0;
  uint64_t seen_evictions = 0;
  std::vector<Task> tasks;
  std::vector<ResponseFrame> frames;
  std::vector<RecommendRequest> misses;
  std::vector<size_t> miss_frame;
  std::vector<RecommendResponse> miss_responses;
  Task task;
  while (shard->queue.Pop(&task)) {
    // Micro-batch drain: one blocking pop, then whatever is already
    // waiting up to batch_max. A shallow queue yields a small batch
    // immediately — batching never trades latency for throughput.
    tasks.clear();
    tasks.push_back(std::move(task));
    while (static_cast<int>(tasks.size()) < batch_max &&
           shard->queue.TryPop(&task)) {
      tasks.push_back(std::move(task));
    }
    IMSR_OBS_ONLY(util::Stopwatch drain_timer;)
    // The snapshot is loaded once per batch, AFTER collecting it: every
    // batched request was admitted before this load, so no response is
    // built from a snapshot older than the registry's current at that
    // request's admission (the freshness contract in DESIGN.md §15).
    const std::shared_ptr<const ServingSnapshot> snapshot =
        registry_->Current();
    frames.clear();
    frames.resize(tasks.size());
    misses.clear();
    miss_frame.clear();
    for (size_t i = 0; i < tasks.size(); ++i) {
      ResponseFrame& frame = frames[i];
      frame.request_id = tasks[i].request.request_id;
      if (snapshot == nullptr) {
        frame.status = ResponseStatus::kError;
        frame.error = "no snapshot published yet";
        continue;
      }
      frame.snapshot_version = snapshot->version();
      RecommendRequest request;
      request.user = tasks[i].request.user;
      request.top_n = tasks[i].request.top_n;
      if (cache != nullptr) {
        const ResponseCacheKey key =
            MakeResponseCacheKey(*snapshot, request, config_.serve);
        // Unresolvable top_n (<= 0 after defaults) is an error response;
        // those never enter the cache, so skip the lookup too.
        if (key.top_n > 0) {
          if (const auto* hit = cache->Get(key)) {
            frame.status = ResponseStatus::kOk;
            frame.items = *hit;
            continue;
          }
        }
      }
      miss_frame.push_back(i);
      misses.push_back(request);
    }
    if (!misses.empty()) {
      miss_responses.resize(misses.size());
      RecommendBatch(*snapshot, misses.data(), misses.size(), config_.serve,
                     &scratch, miss_responses.data());
      for (size_t r = 0; r < misses.size(); ++r) {
        ResponseFrame& frame = frames[miss_frame[r]];
        RecommendResponse& response = miss_responses[r];
        if (response.ok) {
          frame.status = ResponseStatus::kOk;
          if (cache != nullptr) {
            // Only ok responses are cached: errors are cheap to redo and
            // must not mask a user appearing in a later snapshot.
            cache->Put(MakeResponseCacheKey(*snapshot, misses[r],
                                            config_.serve),
                       response.items, ResponseCacheEntryBytes(response.items));
          }
          frame.items = std::move(response.items);
        } else {
          frame.status = ResponseStatus::kError;
          frame.error = std::move(response.error);
        }
      }
    }
    // Responses go out in arrival order within the batch (ordering across
    // shards is still not promised — frames carry request_ids).
    for (size_t i = 0; i < tasks.size(); ++i) {
      tasks[i].sink->SendResponse(frames[i]);
      tasks[i].sink.reset();  // release the connection before blocking in Pop
    }
    answered_.fetch_add(tasks.size(), std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    if (cache != nullptr) {
      cache_hits_.fetch_add(cache->hits() - seen_hits,
                            std::memory_order_relaxed);
      cache_misses_.fetch_add(cache->misses() - seen_misses,
                              std::memory_order_relaxed);
      cache_evictions_.fetch_add(cache->evictions() - seen_evictions,
                                 std::memory_order_relaxed);
      IMSR_COUNTER_ADD("serve/cache_hits",
                       static_cast<int64_t>(cache->hits() - seen_hits));
      IMSR_COUNTER_ADD("serve/cache_misses",
                       static_cast<int64_t>(cache->misses() - seen_misses));
      IMSR_COUNTER_ADD(
          "serve/cache_evictions",
          static_cast<int64_t>(cache->evictions() - seen_evictions));
      seen_hits = cache->hits();
      seen_misses = cache->misses();
      seen_evictions = cache->evictions();
      shard->cache_bytes.store(cache->bytes(), std::memory_order_relaxed);
      IMSR_OBS_ONLY({
        uint64_t total_bytes = 0;
        for (const auto& s : shards_) {
          total_bytes += s->cache_bytes.load(std::memory_order_relaxed);
        }
        IMSR_GAUGE_SET("serve/cache_bytes",
                       static_cast<double>(total_bytes));
      })
    }
    IMSR_COUNTER_ADD("serve/shard_answered",
                     static_cast<int64_t>(tasks.size()));
    IMSR_OBS_ONLY({
      IMSR_HISTOGRAM_RECORD("serve/shard_batch_size",
                            static_cast<double>(tasks.size()));
      IMSR_HISTOGRAM_RECORD("serve/shard_drain_ms",
                            drain_timer.ElapsedSeconds() * 1e3);
    })
  }
}

bool ShardSet::Submit(const RequestFrame& request,
                      std::shared_ptr<ResponseSink> sink) {
  IMSR_CHECK(started_);
  IMSR_CHECK(sink != nullptr);
  const size_t shard = ShardOf(request.user, shards_.size());
  Task task;
  task.request = request;
  task.sink = sink;
  if (!shards_[shard]->queue.TryPush(std::move(task))) {
    // Admission control: reject *now*, on the submitting thread, so the
    // client learns about overload instead of the queue growing or the
    // request vanishing.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    IMSR_COUNTER_ADD("serve/overload_rejected", 1);
    ResponseFrame frame;
    frame.request_id = request.request_id;
    frame.status = ResponseStatus::kOverloaded;
    frame.error = "shard " + std::to_string(shard) + " queue full";
    sink->SendResponse(frame);
    return false;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ShardSet::Drain() {
  if (!started_ || drained_) return;
  drained_ = true;
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

ShardSetStats ShardSet::stats() const {
  ShardSetStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.answered = answered_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  stats.cache_evictions = cache_evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    stats.cache_bytes += shard->cache_bytes.load(std::memory_order_relaxed);
  }
  return stats;
}

// --- Server ----------------------------------------------------------------

// One accepted socket. Reads happen only on the I/O thread; writes happen
// from shard workers (and the admission path) under `write_mutex_`, so
// response frames never interleave. The destructor closes the fd — and
// runs only once every queued response holding the shared_ptr has been
// written, so a write can never hit a recycled descriptor.
class Server::Connection : public ResponseSink {
 public:
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection() override { ::close(fd_); }

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void SendResponse(const ResponseFrame& response) override {
    const std::vector<uint8_t> frame = EncodeResponse(response);
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (dead_.load(std::memory_order_relaxed)) return;
    size_t sent = 0;
    while (sent < frame.size()) {
      // MSG_NOSIGNAL: a vanished peer yields EPIPE, not a process kill.
      const ssize_t n = ::send(fd_, frame.data() + sent,
                               frame.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // The socket send buffer is full: block until it drains — the
          // response path is allowed to apply backpressure to workers.
          struct pollfd pfd = {fd_, POLLOUT, 0};
          if (::poll(&pfd, 1, 5000) > 0) continue;
        }
        dead_.store(true, std::memory_order_relaxed);
        return;
      }
      sent += static_cast<size_t>(n);
    }
  }

  int fd() const { return fd_; }
  bool dead() const { return dead_.load(std::memory_order_relaxed); }
  void MarkDead() { dead_.store(true, std::memory_order_relaxed); }
  FrameAssembler& assembler() { return assembler_; }

 private:
  const int fd_;
  std::mutex write_mutex_;
  std::atomic<bool> dead_{false};
  FrameAssembler assembler_;
};

Server::Server(const SnapshotRegistry* registry, const ServerConfig& config)
    : config_(config), shards_(registry, config.shards) {}

Server::~Server() {
  Shutdown();
  shards_.Drain();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
}

bool Server::Start(std::string* error) {
  IMSR_CHECK(listen_fd_ < 0);
  if (!config_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) *error = "unix socket path too long";
      return false;
    }
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    ::unlink(config_.unix_path.c_str());  // replace a stale socket file
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      if (error != nullptr) {
        *error = "bind " + config_.unix_path + ": " + std::strerror(errno);
      }
      return false;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(config_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      if (error != nullptr) {
        *error = "bind port " + std::to_string(config_.tcp_port) + ": " +
                 std::strerror(errno);
      }
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 128) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  SetNonBlocking(listen_fd_);
  shards_.Start();
  return true;
}

bool Server::ShouldStop() const {
  if (stop_.load(std::memory_order_relaxed)) return true;
  return config_.stop != nullptr &&
         config_.stop->load(std::memory_order_relaxed);
}

bool Server::DrainReadable(const std::shared_ptr<Connection>& connection) {
  uint8_t buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(connection->fd(), buffer, sizeof(buffer), 0);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    connection->assembler().Append(buffer, static_cast<size_t>(n));
    std::vector<uint8_t> payload;
    std::string error;
    for (;;) {
      const FrameAssembler::Result result =
          connection->assembler().Next(&payload, &error);
      if (result == FrameAssembler::Result::kNeedMore) break;
      if (result == FrameAssembler::Result::kError) {
        // The byte stream lost sync; nothing after this point can be
        // trusted, so the connection is dropped (counted, not silent).
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        IMSR_COUNTER_ADD("serve/protocol_errors", 1);
        return false;
      }
      RequestFrame request;
      if (!TryDecodeRequest(payload, &request, &error)) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        IMSR_COUNTER_ADD("serve/protocol_errors", 1);
        return false;
      }
      frames_.fetch_add(1, std::memory_order_relaxed);
      shards_.Submit(request, connection);
    }
    if (static_cast<size_t>(n) < sizeof(buffer)) return true;
  }
}

void Server::Run() {
  IMSR_CHECK(listen_fd_ >= 0) << "Start() must succeed before Run()";
  std::vector<pollfd> poll_fds;
  std::vector<std::shared_ptr<Connection>> poll_connections;
  while (!ShouldStop()) {
    poll_fds.clear();
    poll_connections.clear();
    poll_fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, connection] : connections_) {
      poll_fds.push_back({fd, POLLIN, 0});
      poll_connections.push_back(connection);
    }
    // 100ms cap so a stop request (signal or Shutdown()) is noticed
    // promptly even on an idle socket.
    const int ready = ::poll(poll_fds.data(), poll_fds.size(), 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (poll_fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;  // EAGAIN: accepted everything pending
        SetNonBlocking(fd);
        connections_[fd] = std::make_shared<Connection>(fd);
        accepted_.fetch_add(1, std::memory_order_relaxed);
        IMSR_COUNTER_ADD("serve/connections_accepted", 1);
      }
    }
    for (size_t i = 1; i < poll_fds.size(); ++i) {
      const std::shared_ptr<Connection>& connection =
          poll_connections[i - 1];
      bool alive = !connection->dead();
      if (alive && (poll_fds[i].revents & (POLLIN | POLLHUP | POLLERR))) {
        alive = DrainReadable(connection) && !connection->dead();
      }
      if (!alive) {
        connections_.erase(poll_fds[i].fd);
        disconnected_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Graceful wind-down: stop accepting first, then let the shards finish
  // every admitted request (their responses still flow through live
  // connections), then drop the connections.
  ::close(listen_fd_);
  listen_fd_ = -1;
  shards_.Drain();
  const size_t open = connections_.size();
  connections_.clear();
  disconnected_.fetch_add(open, std::memory_order_relaxed);
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
}

void Server::Shutdown() { stop_.store(true, std::memory_order_relaxed); }

ServerStats Server::stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.disconnected = disconnected_.load(std::memory_order_relaxed);
  stats.frames = frames_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace imsr::serve
