// IvfIndex — approximate corpus-scale retrieval for the serving path
// (DESIGN.md §13). Brute-force serving scores every item against every
// interest (O(|items| * d) per request); GemiRec's observation is that
// multi-interest retrieval stays tractable at production scale once the
// item space is coarsely quantized. Interests in this codebase *are*
// cluster centroids, so an inverted-file (IVF) index is the natural fit:
//
//  * Build (once per ServingSnapshot): k-means coarse centroids over the
//    item embeddings, seeded from the packed interest vectors (the best
//    available sketch of where queries will land), inverted lists in two
//    flat arrays (CSV-style begin offsets + item ids, ascending per
//    list), plus an int8 symmetric-quantized copy of every item row
//    (per-row scale) stored in list order for scan locality.
//  * Search: probe the `nprobe` nearest lists per interest (inner
//    product against the centroids), score every unique member of the
//    probed lists with integer int8 dots (exactly associative, hence
//    bitwise deterministic even vectorized), then re-rank the
//    best-looking shortlist with the EXACT float kernels — gathered
//    rows through nn::MatMulTransBGatherInto + eval::ScoreFromLogits,
//    the same code path as the brute-force oracle, so every returned
//    score is bit-identical to what exact scoring would assign.
//
// Retrieval stays approximate only in WHICH items reach the shortlist;
// tests/ann_test.cc gates recall against the brute-force oracle and the
// quantization error against an analytic bound. Everything here is
// deterministic for any thread count: k-means assignment is per-item
// independent, centroid updates accumulate serially in item order, and a
// search is fully serial per query.
#ifndef IMSR_SERVE_IVF_INDEX_H_
#define IMSR_SERVE_IVF_INDEX_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/interest_store.h"
#include "data/interaction.h"
#include "eval/ranker.h"
#include "nn/tensor.h"

namespace imsr::serve {

// How the serving/eval paths retrieve candidates. kExact is the default
// everywhere so existing results stay bitwise unchanged; kIVF routes
// through IvfIndex when the snapshot carries one (and falls back to
// exact, with a counter, when it does not).
enum class RetrievalMode { kExact, kIVF };

const char* RetrievalModeName(RetrievalMode mode);
// Fallible parse ("exact" | "ivf"); on an unknown name returns false and
// fills `error` with the valid spellings.
bool RetrievalModeFromName(const std::string& name, RetrievalMode* mode,
                           std::string* error);
// Process-wide default: the IMSR_RETRIEVAL env var when set and
// well-formed (read once; a malformed value warns on stderr), kExact
// otherwise. Lets CI run the whole suite with retrieval defaulted to IVF
// without touching every call site.
RetrievalMode DefaultRetrievalMode();

struct IvfBuildConfig {
  // Coarse centroid count; <= 0 picks ceil(sqrt(num_items)), clamped to
  // [1, num_items].
  int64_t num_centroids = 0;
  // Lloyd iterations over the training sample.
  int kmeans_iters = 4;
  // Items used to fit the centroids (strided sample; every item is still
  // assigned to a list afterwards). <= 0 picks min(num_items, 65536).
  int64_t train_sample = 0;
  // Default lists probed per interest at query time; <= 0 picks
  // min(num_centroids, 6).
  int default_nprobe = 0;
  // Exact re-rank depth: max(top_n * rerank_factor, min_rerank)
  // shortlist entries get float re-scored.
  int rerank_factor = 4;
  int min_rerank = 64;
  // Worker threads for the build fan-outs; <= 0 uses the process pool
  // size. The built index is bitwise identical for any value.
  int threads = 0;
};

// Per-search accounting (probe counts, shortlist size, re-rank depth).
struct IvfSearchStats {
  int64_t probes = 0;     // lists scanned (summed over interests)
  int64_t shortlist = 0;  // unique candidates scored with int8
  int64_t reranked = 0;   // candidates re-scored with exact floats
};

// Accumulated accounting across many searches (evaluator / stream runs).
struct IvfSearchTotals {
  int64_t searches = 0;
  int64_t probes = 0;
  int64_t shortlist = 0;
  int64_t reranked = 0;

  void Add(const IvfSearchStats& stats) {
    ++searches;
    probes += stats.probes;
    shortlist += stats.shortlist;
    reranked += stats.reranked;
  }
  void Merge(const IvfSearchTotals& other) {
    searches += other.searches;
    probes += other.probes;
    shortlist += other.shortlist;
    reranked += other.reranked;
  }
};

class IvfIndex {
 public:
  // Builds the index over `embeddings` (num_items x d). `seeds` supplies
  // the k-means seed vectors (packed interest rows; item rows top up when
  // there are fewer interest rows than centroids — an empty export is
  // fine). Records build latency/size in the serve/ metrics when obs is
  // enabled.
  IvfIndex(const nn::Tensor& embeddings, const core::PackedInterests& seeds,
           const IvfBuildConfig& config);

  IvfIndex(const IvfIndex&) = delete;
  IvfIndex& operator=(const IvfIndex&) = delete;

  int64_t num_items() const { return num_items_; }
  int64_t num_centroids() const { return centroids_.size(0); }
  int64_t dim() const { return dim_; }
  int default_nprobe() const { return default_nprobe_; }
  // Re-rank knobs as resolved at build time. Construction is fully
  // deterministic in (embeddings, seeds, config), so two indexes built
  // over bitwise-equal inputs with equal resolved knobs answer every
  // query identically — what SnapshotRegistry's data-epoch comparison
  // relies on (snapshot.h).
  int rerank_factor() const { return rerank_factor_; }
  int min_rerank() const { return min_rerank_; }
  // Process-monotonic construction stamp (> 0); lets tests prove every
  // published snapshot carries a FRESH index, not a reused one.
  uint64_t build_id() const { return build_id_; }
  // Approximate resident size of the index.
  int64_t bytes() const;

  // Per-worker search state (centroid scores, probe order, epoch-stamped
  // visited set, shortlist buffers, re-rank tensors). Reused across
  // searches; never shared across threads concurrently.
  struct Scratch {
    std::vector<float> centroid_scores;
    std::vector<int32_t> probe_order;
    std::vector<uint32_t> visited;  // per-item epoch stamps
    uint32_t epoch = 0;
    std::vector<int8_t> query_codes;   // K x d quantized interests
    std::vector<float> query_scales;   // K
    std::vector<float> approx_row;     // K approx logits per candidate
    std::vector<int64_t> candidates;   // unique probed item ids
    std::vector<float> approx_scores;  // parallel to candidates
    std::vector<int32_t> selected;     // shortlist selection order
    std::vector<int64_t> rerank_rows;  // shortlist ids in re-rank order
    nn::Tensor gathered;               // re-rank row gather scratch
    nn::Tensor logits;                 // re-rank (R x K) exact logits
    std::vector<float> exact_scores;
  };

  // Top-N (item, exact score) pairs for one user's (K x d) interests,
  // highest score first (ties broken by ascending item id). `embeddings`
  // must be the table the index was built over (the snapshot's frozen
  // copy) — returned scores are bitwise identical to brute-force scores
  // for the same items. `nprobe` <= 0 uses default_nprobe(). `stats` is
  // optional.
  void SearchTopN(nn::ConstMatrixView interests,
                  const nn::Tensor& embeddings, eval::ScoreRule rule,
                  int top_n, int nprobe, Scratch* scratch,
                  std::vector<std::pair<data::ItemId, float>>* top,
                  IvfSearchStats* stats = nullptr) const;

  // Test/introspection: the approximate (dequantized int8) inner product
  // of `item` against a raw float query row of dim() elements. Linear
  // scan for the item's position — test-only.
  float ApproxDot(data::ItemId item, const float* query) const;

  // Read-only layout introspection for tests and benches.
  const nn::Tensor& centroids() const { return centroids_; }
  const std::vector<int64_t>& list_begin() const { return list_begin_; }
  const std::vector<data::ItemId>& list_items() const { return list_items_; }
  const std::vector<int8_t>& codes() const { return codes_; }      // list order
  const std::vector<float>& scales() const { return scales_; }     // list order

 private:
  int64_t num_items_ = 0;
  int64_t dim_ = 0;
  int default_nprobe_ = 1;
  int rerank_factor_ = 4;
  int min_rerank_ = 64;
  uint64_t build_id_ = 0;

  nn::Tensor centroids_;                 // (C x d)
  std::vector<int64_t> list_begin_;      // C + 1 offsets into list_items_
  std::vector<data::ItemId> list_items_; // ascending ids within each list
  std::vector<int8_t> codes_;            // num_items x d, list order
  std::vector<float> scales_;            // per-row scale, list order
};

}  // namespace imsr::serve

#endif  // IMSR_SERVE_IVF_INDEX_H_
