#include "serve/registry.h"

#include <utility>

#include "obs/obs.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace imsr::serve {

void SnapshotRegistry::Publish(std::shared_ptr<ServingSnapshot> snapshot) {
  IMSR_CHECK(snapshot != nullptr);
  IMSR_OBS_ONLY(util::Stopwatch timer;)
  snapshot->version_ =
      next_version_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Data-epoch stamp: when the incoming snapshot would score every
  // request bitwise identically to the current one (a timed republish of
  // an unchanged model), carry the current epoch forward so epoch-keyed
  // state — the per-shard response cache — stays warm across the publish.
  // Any real content change starts a fresh epoch (= this version), which
  // invalidates every cached response by key. The comparison costs one
  // memcmp sweep over the frozen tables, on the publisher's thread, never
  // a reader's.
  std::shared_ptr<const ServingSnapshot> prev =
      current_.load(std::memory_order_acquire);
  if (prev != nullptr && snapshot->SameScoringContent(*prev)) {
    snapshot->data_epoch_ = prev->data_epoch_;
  } else {
    snapshot->data_epoch_ = snapshot->version_;
  }
  IMSR_GAUGE_SET("serve/snapshot_version",
                 static_cast<double>(snapshot->version_));
  IMSR_GAUGE_SET("serve/snapshot_span",
                 static_cast<double>(snapshot->trained_through_span()));
  std::shared_ptr<const ServingSnapshot> frozen = std::move(snapshot);
  // Readers taking Current() concurrently keep the snapshot they loaded;
  // the retired one is freed when its last reader lets go.
  std::shared_ptr<const ServingSnapshot> retired =
      current_.exchange(std::move(frozen), std::memory_order_acq_rel);
  IMSR_OBS_ONLY(if (retired != nullptr) {
    IMSR_GAUGE_SET("serve/retired_snapshot_refs",
                   static_cast<double>(retired.use_count() - 1));
  })
  IMSR_COUNTER_ADD("serve/publishes", 1);
  IMSR_HISTOGRAM_RECORD("serve/publish_latency_ms", timer.ElapsedMillis());
}

std::shared_ptr<const ServingSnapshot> SnapshotRegistry::Current() const {
  return current_.load(std::memory_order_acquire);
}

}  // namespace imsr::serve
