// ServingSnapshot — the immutable read-side view of a trained span.
//
// The paper's deployment story (§IV, Algorithm 2) is train-then-serve:
// after pretraining and after each incremental span, the stored interests
// {H_u^t} and the item-embedding table answer top-N queries until the
// next span's model is ready. A snapshot freezes exactly that state —
// a deep copy of the embedding table plus every user's interest rows in
// flat packed storage — with no Var/autograd machinery, no mutable
// containers and no locks on the read path. Training keeps mutating
// MsrModel/InterestStore while readers score against the snapshot they
// hold; the SnapshotRegistry (registry.h) swaps in the next one
// atomically.
#ifndef IMSR_SERVE_SNAPSHOT_H_
#define IMSR_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/interest_store.h"
#include "data/interaction.h"
#include "nn/tensor.h"
#include "serve/ivf_index.h"

namespace imsr::models {
class MsrModel;
}  // namespace imsr::models

namespace imsr::serve {

class ServingSnapshot {
 public:
  // Freezes `embeddings` (num_items x d) and the packed interests. The
  // packed export must use the same `dim` as the embedding table (or be
  // empty). Snapshots are usually built via BuildSnapshot below and
  // published through a SnapshotRegistry, after which they are immutable.
  ServingSnapshot(nn::Tensor embeddings, core::PackedInterests interests,
                  int trained_through_span);

  ServingSnapshot(const ServingSnapshot&) = delete;
  ServingSnapshot& operator=(const ServingSnapshot&) = delete;

  int64_t num_items() const { return embeddings_.size(0); }
  int64_t dim() const { return embeddings_.size(1); }
  int64_t num_users() const {
    return static_cast<int64_t>(interests_.users.size());
  }
  int trained_through_span() const { return trained_through_span_; }
  // Approximate resident size of the frozen state.
  int64_t bytes() const;

  // Monotonic publish id; 0 until a SnapshotRegistry stamps it.
  uint64_t version() const { return version_; }

  const nn::Tensor& item_embeddings() const { return embeddings_; }

  // The snapshot's approximate-retrieval index, or nullptr when none was
  // built (exact-only snapshot). Built once at snapshot-build time and
  // immutable afterwards, like everything else here.
  const IvfIndex* index() const { return index_.get(); }
  // Attaches the index before publication (aborts on a published
  // snapshot — a reader could already hold it).
  void AttachIndex(std::unique_ptr<const IvfIndex> index);

  bool HasUser(data::UserId user) const;
  int64_t NumInterests(data::UserId user) const;
  // The user's (K x d) interest rows as a view into the packed storage;
  // aborts when absent (check HasUser first).
  nn::ConstMatrixView Interests(data::UserId user) const;
  // All users with interests, ascending.
  const std::vector<data::UserId>& Users() const { return interests_.users; }

 private:
  friend class SnapshotRegistry;  // stamps version_ at publish time

  // Dense slot index of `user`, or -1 when absent.
  int64_t SlotOf(data::UserId user) const;

  nn::Tensor embeddings_;             // frozen (num_items x d)
  core::PackedInterests interests_;   // flat per-user rows, users ascending
  std::unique_ptr<const IvfIndex> index_;  // optional, set pre-publish
  // Dense user -> slot map (index into interests_.users); -1 when absent.
  // User ids are compacted upstream (data::CompactIds), so this stays
  // proportional to the user count.
  std::vector<int32_t> slot_of_user_;
  int trained_through_span_ = -1;
  uint64_t version_ = 0;
};

// Exports the model's embedding table and the store's interests into a
// fresh snapshot (the publish points in Algorithm 2: after pretraining
// and after each span's Training procedure). Records the export cost in
// the serve/ metrics when obs is enabled.
std::shared_ptr<ServingSnapshot> BuildSnapshot(
    const models::MsrModel& model, const core::InterestStore& store,
    int trained_through_span);

// Same, but additionally builds an IvfIndex over the exported embeddings
// (seeded from the exported interests) and attaches it, so RetrievalMode
// kIVF readers get approximate retrieval from this snapshot.
std::shared_ptr<ServingSnapshot> BuildSnapshot(
    const models::MsrModel& model, const core::InterestStore& store,
    int trained_through_span, const IvfBuildConfig& ivf);

}  // namespace imsr::serve

#endif  // IMSR_SERVE_SNAPSHOT_H_
