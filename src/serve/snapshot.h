// ServingSnapshot — the immutable read-side view of a trained span.
//
// The paper's deployment story (§IV, Algorithm 2) is train-then-serve:
// after pretraining and after each incremental span, the stored interests
// {H_u^t} and the item-embedding table answer top-N queries until the
// next span's model is ready. A snapshot freezes exactly that state —
// a deep copy of the embedding table plus every user's interest rows in
// flat packed storage — with no Var/autograd machinery, no mutable
// containers and no locks on the read path. Training keeps mutating
// MsrModel/InterestStore while readers score against the snapshot they
// hold; the SnapshotRegistry (registry.h) swaps in the next one
// atomically.
#ifndef IMSR_SERVE_SNAPSHOT_H_
#define IMSR_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/interest_store.h"
#include "data/interaction.h"
#include "nn/tensor.h"
#include "serve/ivf_index.h"

namespace imsr::models {
class MsrModel;
}  // namespace imsr::models

namespace imsr::serve {

class ServingSnapshot {
 public:
  // Freezes `embeddings` (num_items x d) and the packed interests. The
  // packed export must use the same `dim` as the embedding table (or be
  // empty). Snapshots are usually built via BuildSnapshot below and
  // published through a SnapshotRegistry, after which they are immutable.
  ServingSnapshot(nn::Tensor embeddings, core::PackedInterests interests,
                  int trained_through_span);

  // Content-sharing republish: the new snapshot shares every frozen
  // table with `prev` — embedding table, k-major repack, packed
  // interests, slot map, and the IVF index — and only carries its own
  // span and (at publish) version/epoch stamps. This is the timed-
  // republish fast path (BuildSnapshotShared below): when the model and
  // store are provably unchanged, a republish costs an allocation
  // instead of a corpus-sized re-export, and SameScoringContent against
  // `prev` is an O(1) pointer check, so the registry carries the data
  // epoch forward without the memcmp sweep.
  ServingSnapshot(const std::shared_ptr<const ServingSnapshot>& prev,
                  int trained_through_span);

  ServingSnapshot(const ServingSnapshot&) = delete;
  ServingSnapshot& operator=(const ServingSnapshot&) = delete;

  int64_t num_items() const { return content_->embeddings.size(0); }
  int64_t dim() const { return content_->embeddings.size(1); }
  int64_t num_users() const {
    return static_cast<int64_t>(content_->interests.users.size());
  }
  int trained_through_span() const { return trained_through_span_; }
  // Approximate resident size of the frozen state.
  int64_t bytes() const;

  // Monotonic publish id; 0 until a SnapshotRegistry stamps it.
  uint64_t version() const { return version_; }

  // Version at which this snapshot's scoring content last changed; 0
  // until publish. Publish compares the incoming snapshot's scoring
  // content (embedding table, packed interests, index knobs) against the
  // current one and carries the epoch forward when they are bitwise
  // equal, so a timed republish of an unchanged model does not bump it.
  // Responses keyed by data epoch (the serve response cache) therefore
  // survive content-identical publishes while any real retrain still
  // invalidates them — and a cached answer is always bitwise equal to
  // what the current snapshot would score, keeping the freshness
  // contract intact.
  uint64_t data_epoch() const { return data_epoch_; }

  // True when `other` would score every request bitwise identically:
  // equal embedding bytes, equal packed interests, and equal resolved
  // index knobs (index construction is deterministic in those inputs).
  bool SameScoringContent(const ServingSnapshot& other) const;

  // Revision of the InterestStore this snapshot was exported from
  // (core::InterestStore::revision()), stamped by BuildSnapshot; 0 when
  // the snapshot was assembled by hand. An equal nonzero revision means
  // the same store with no intervening mutation — the precondition
  // BuildSnapshotShared checks before sharing content.
  uint64_t store_revision() const { return store_revision_; }

  const nn::Tensor& item_embeddings() const { return content_->embeddings; }

  // The embedding table repacked into the panelized k-major layout
  // (nn::PanelizeKMajorInto) the serve exact path scores through
  // (nn::MatMulTransBPanelRangeInto), built once at construction. The
  // width-invariant kernel bits are what make micro-batched scoring
  // memcmp-equal to per-request scoring (DESIGN.md §15).
  const nn::Tensor& item_embeddings_kmajor() const {
    return content_->embeddings_kmajor;
  }

  // The snapshot's approximate-retrieval index, or nullptr when none was
  // built (exact-only snapshot). Built once at snapshot-build time and
  // immutable afterwards, like everything else here.
  const IvfIndex* index() const { return content_->index.get(); }
  // Attaches the index before publication (aborts on a published
  // snapshot — a reader could already hold it).
  void AttachIndex(std::unique_ptr<const IvfIndex> index);

  bool HasUser(data::UserId user) const;
  int64_t NumInterests(data::UserId user) const;
  // The user's (K x d) interest rows as a view into the packed storage;
  // aborts when absent (check HasUser first).
  nn::ConstMatrixView Interests(data::UserId user) const;
  // All users with interests, ascending.
  const std::vector<data::UserId>& Users() const {
    return content_->interests.users;
  }

 private:
  friend class SnapshotRegistry;  // stamps version_ at publish time
  // The builders stamp store_revision_.
  friend std::shared_ptr<ServingSnapshot> BuildSnapshot(
      const models::MsrModel&, const core::InterestStore&, int);
  friend std::shared_ptr<ServingSnapshot> BuildSnapshot(
      const models::MsrModel&, const core::InterestStore&, int,
      const IvfBuildConfig&);
  friend std::shared_ptr<ServingSnapshot> BuildSnapshotShared(
      const models::MsrModel&, const core::InterestStore&, int,
      std::shared_ptr<const ServingSnapshot>);

  // Every frozen table, bundled so a content-identical republish can
  // share it wholesale (one shared_ptr copy) instead of re-exporting:
  //   embeddings        frozen (num_items x d)
  //   embeddings_kmajor frozen panelized k-major repack
  //   interests         flat per-user rows, users ascending
  //   index             optional, attached pre-publish
  //   slot_of_user      dense user -> slot map (index into
  //                     interests.users); -1 when absent. User ids are
  //                     compacted upstream (data::CompactIds), so this
  //                     stays proportional to the user count.
  struct Content {
    nn::Tensor embeddings;
    nn::Tensor embeddings_kmajor;
    core::PackedInterests interests;
    std::unique_ptr<const IvfIndex> index;
    std::vector<int32_t> slot_of_user;
  };

  // Dense slot index of `user`, or -1 when absent.
  int64_t SlotOf(data::UserId user) const;

  // Sole owner until published or shared; AttachIndex refuses to mutate
  // shared content.
  std::shared_ptr<Content> content_;
  int trained_through_span_ = -1;
  uint64_t version_ = 0;
  uint64_t data_epoch_ = 0;       // stamped at publish, see data_epoch()
  uint64_t store_revision_ = 0;   // see store_revision()
};

// Exports the model's embedding table and the store's interests into a
// fresh snapshot (the publish points in Algorithm 2: after pretraining
// and after each span's Training procedure). Records the export cost in
// the serve/ metrics when obs is enabled.
std::shared_ptr<ServingSnapshot> BuildSnapshot(
    const models::MsrModel& model, const core::InterestStore& store,
    int trained_through_span);

// Same, but additionally builds an IvfIndex over the exported embeddings
// (seeded from the exported interests) and attaches it, so RetrievalMode
// kIVF readers get approximate retrieval from this snapshot.
std::shared_ptr<ServingSnapshot> BuildSnapshot(
    const models::MsrModel& model, const core::InterestStore& store,
    int trained_through_span, const IvfBuildConfig& ivf);

// Timed-republish fast path. When `store`'s revision is unchanged since
// `prev` was built (see InterestStore::revision()) and the model's
// exported embedding bytes are bitwise-equal to prev's, returns a
// snapshot sharing prev's frozen content — no corpus-sized re-export,
// no k-major repack, no index rebuild; the publish then carries the
// data epoch forward via an O(1) pointer compare, keeping every shard's
// response cache warm. Returns nullptr when anything changed (or prev
// is null / hand-assembled): the caller falls back to a full
// BuildSnapshot. The embedding check still exports and memcmps the
// (num_items x d) table — cheap next to the per-user export — so a
// trainer mutating the model between publishes is caught even though
// the model has no revision counter.
std::shared_ptr<ServingSnapshot> BuildSnapshotShared(
    const models::MsrModel& model, const core::InterestStore& store,
    int trained_through_span, std::shared_ptr<const ServingSnapshot> prev);

}  // namespace imsr::serve

#endif  // IMSR_SERVE_SNAPSHOT_H_
