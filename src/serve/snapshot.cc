#include "serve/snapshot.h"

#include <cstring>
#include <utility>

#include "models/msr_model.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace imsr::serve {

ServingSnapshot::ServingSnapshot(nn::Tensor embeddings,
                                 core::PackedInterests interests,
                                 int trained_through_span)
    : content_(std::make_shared<Content>()),
      trained_through_span_(trained_through_span) {
  content_->embeddings = std::move(embeddings);
  content_->interests = std::move(interests);
  IMSR_CHECK_EQ(content_->embeddings.dim(), 2);
  core::PackedInterests& packed = content_->interests;
  IMSR_CHECK(packed.users.empty() || packed.dim == dim())
      << "packed interests dim " << packed.dim
      << " != embedding dim " << dim();
  data::UserId max_user = -1;
  for (size_t i = 0; i < packed.users.size(); ++i) {
    IMSR_CHECK_GE(packed.users[i], 0);
    IMSR_CHECK(i == 0 || packed.users[i - 1] < packed.users[i])
        << "packed users must be strictly ascending";
    max_user = packed.users[i];
  }
  content_->slot_of_user.assign(static_cast<size_t>(max_user + 1), -1);
  for (size_t i = 0; i < packed.users.size(); ++i) {
    content_->slot_of_user[static_cast<size_t>(packed.users[i])] =
        static_cast<int32_t>(i);
  }
  // The serve exact path scores through the panelized k-major layout
  // (see item_embeddings_kmajor()); build it once here so every
  // construction path — BuildSnapshot and the tests that assemble
  // snapshots by hand — gets it. One repack per publish, amortized over
  // every request the snapshot serves.
  nn::PanelizeKMajorInto(content_->embeddings, &content_->embeddings_kmajor);
}

ServingSnapshot::ServingSnapshot(
    const std::shared_ptr<const ServingSnapshot>& prev,
    int trained_through_span)
    : trained_through_span_(trained_through_span) {
  IMSR_CHECK(prev != nullptr);
  // Sharing the Content of a published (const) snapshot is sound because
  // published content is never mutated again: AttachIndex refuses shared
  // content, and nothing else writes through content_.
  content_ = prev->content_;
  store_revision_ = prev->store_revision_;
}

bool ServingSnapshot::SameScoringContent(const ServingSnapshot& other) const {
  // Shared-content republish: same tables by construction, no sweep.
  if (content_.get() == other.content_.get()) return true;
  if (num_items() != other.num_items() || dim() != other.dim()) return false;
  const core::PackedInterests& a = content_->interests;
  const core::PackedInterests& b = other.content_->interests;
  if (a.dim != b.dim || a.users != b.users || a.counts != b.counts ||
      a.row_begin != b.row_begin) {
    return false;
  }
  // Index equivalence: both absent, or both built with the same resolved
  // knobs (construction is deterministic in the embeddings + seeds the
  // float comparisons below cover).
  const IvfIndex* ai = content_->index.get();
  const IvfIndex* bi = other.content_->index.get();
  if ((ai == nullptr) != (bi == nullptr)) return false;
  if (ai != nullptr &&
      (ai->num_centroids() != bi->num_centroids() ||
       ai->default_nprobe() != bi->default_nprobe() ||
       ai->rerank_factor() != bi->rerank_factor() ||
       ai->min_rerank() != bi->min_rerank())) {
    return false;
  }
  // Bitwise float compares (memcmp, not ==): NaN payloads and signed
  // zeros must count as differences because the cache contract is
  // "bitwise identical response", nothing weaker.
  if (std::memcmp(content_->embeddings.data(),
                  other.content_->embeddings.data(),
                  static_cast<size_t>(content_->embeddings.numel()) *
                      sizeof(float)) != 0) {
    return false;
  }
  return a.data.size() == b.data.size() &&
         std::memcmp(a.data.data(), b.data.data(),
                     a.data.size() * sizeof(float)) == 0;
}

void ServingSnapshot::AttachIndex(std::unique_ptr<const IvfIndex> index) {
  IMSR_CHECK_EQ(version_, 0u)
      << "AttachIndex after publish: a reader could already hold this "
         "snapshot";
  IMSR_CHECK_EQ(content_.use_count(), 1)
      << "AttachIndex on shared content: another snapshot already serves "
         "these tables";
  IMSR_CHECK(index != nullptr);
  IMSR_CHECK_EQ(index->num_items(), num_items());
  content_->index = std::move(index);
}

int64_t ServingSnapshot::bytes() const {
  // Counts the shared content in full: per-snapshot cost of a shared
  // republish is one allocation, but the resident state it keeps alive
  // is what capacity planning cares about.
  const Content& c = *content_;
  return static_cast<int64_t>(
             c.embeddings.numel() * sizeof(float) +
             c.embeddings_kmajor.numel() * sizeof(float) +
             c.interests.data.size() * sizeof(float) +
             c.interests.users.size() *
                 (sizeof(data::UserId) + sizeof(int64_t) +
                  sizeof(int32_t)) +
             c.slot_of_user.size() * sizeof(int32_t)) +
         (c.index == nullptr ? 0 : c.index->bytes());
}

int64_t ServingSnapshot::SlotOf(data::UserId user) const {
  if (user < 0 ||
      static_cast<size_t>(user) >= content_->slot_of_user.size()) {
    return -1;
  }
  return content_->slot_of_user[static_cast<size_t>(user)];
}

bool ServingSnapshot::HasUser(data::UserId user) const {
  return SlotOf(user) >= 0;
}

int64_t ServingSnapshot::NumInterests(data::UserId user) const {
  const int64_t slot = SlotOf(user);
  return slot < 0
             ? 0
             : content_->interests.counts[static_cast<size_t>(slot)];
}

nn::ConstMatrixView ServingSnapshot::Interests(data::UserId user) const {
  const int64_t slot = SlotOf(user);
  IMSR_CHECK_GE(slot, 0) << "no interests for user " << user;
  const size_t s = static_cast<size_t>(slot);
  const core::PackedInterests& packed = content_->interests;
  return {packed.data.data() + packed.row_begin[s] * packed.dim,
          packed.counts[s], packed.dim};
}

namespace {

std::shared_ptr<ServingSnapshot> BuildSnapshotImpl(
    const models::MsrModel& model, const core::InterestStore& store,
    int trained_through_span, const IvfBuildConfig* ivf) {
  IMSR_TRACE_SPAN("serve/build_snapshot");
  IMSR_OBS_ONLY(util::Stopwatch timer;)
  nn::Tensor embeddings = model.ExportItemEmbeddings();
  core::PackedInterests packed = store.ExportPacked();
  std::unique_ptr<const IvfIndex> index;
  if (ivf != nullptr) {
    index = std::make_unique<IvfIndex>(embeddings, packed, *ivf);
  }
  auto snapshot = std::make_shared<ServingSnapshot>(
      std::move(embeddings), std::move(packed), trained_through_span);
  if (index != nullptr) snapshot->AttachIndex(std::move(index));
  IMSR_HISTOGRAM_RECORD("serve/build_latency_ms", timer.ElapsedMillis());
  IMSR_GAUGE_SET("serve/snapshot_users",
                 static_cast<double>(snapshot->num_users()));
  IMSR_GAUGE_SET("serve/snapshot_bytes",
                 static_cast<double>(snapshot->bytes()));
  return snapshot;
}

}  // namespace

std::shared_ptr<ServingSnapshot> BuildSnapshot(
    const models::MsrModel& model, const core::InterestStore& store,
    int trained_through_span) {
  auto snapshot = BuildSnapshotImpl(model, store, trained_through_span,
                                    nullptr);
  snapshot->store_revision_ = store.revision();
  return snapshot;
}

std::shared_ptr<ServingSnapshot> BuildSnapshot(
    const models::MsrModel& model, const core::InterestStore& store,
    int trained_through_span, const IvfBuildConfig& ivf) {
  auto snapshot = BuildSnapshotImpl(model, store, trained_through_span,
                                    &ivf);
  snapshot->store_revision_ = store.revision();
  return snapshot;
}

std::shared_ptr<ServingSnapshot> BuildSnapshotShared(
    const models::MsrModel& model, const core::InterestStore& store,
    int trained_through_span, std::shared_ptr<const ServingSnapshot> prev) {
  if (prev == nullptr || prev->store_revision() == 0 ||
      prev->store_revision() != store.revision()) {
    return nullptr;
  }
  // The store is provably untouched; the model has no revision counter,
  // so export the (num_items x d) table and compare bytes — a few MB,
  // cheap next to the per-user interest export this path avoids.
  nn::Tensor embeddings = model.ExportItemEmbeddings();
  const nn::Tensor& frozen = prev->item_embeddings();
  if (embeddings.numel() != frozen.numel() ||
      embeddings.size(0) != frozen.size(0) ||
      std::memcmp(embeddings.data(), frozen.data(),
                  static_cast<size_t>(frozen.numel()) * sizeof(float)) !=
          0) {
    return nullptr;
  }
  IMSR_COUNTER_ADD("serve/shared_republishes", 1);
  return std::make_shared<ServingSnapshot>(std::move(prev),
                                           trained_through_span);
}

}  // namespace imsr::serve
