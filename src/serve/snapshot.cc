#include "serve/snapshot.h"

#include <utility>

#include "models/msr_model.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace imsr::serve {

ServingSnapshot::ServingSnapshot(nn::Tensor embeddings,
                                 core::PackedInterests interests,
                                 int trained_through_span)
    : embeddings_(std::move(embeddings)),
      interests_(std::move(interests)),
      trained_through_span_(trained_through_span) {
  IMSR_CHECK_EQ(embeddings_.dim(), 2);
  IMSR_CHECK(interests_.users.empty() || interests_.dim == dim())
      << "packed interests dim " << interests_.dim
      << " != embedding dim " << dim();
  data::UserId max_user = -1;
  for (size_t i = 0; i < interests_.users.size(); ++i) {
    IMSR_CHECK_GE(interests_.users[i], 0);
    IMSR_CHECK(i == 0 || interests_.users[i - 1] < interests_.users[i])
        << "packed users must be strictly ascending";
    max_user = interests_.users[i];
  }
  slot_of_user_.assign(static_cast<size_t>(max_user + 1), -1);
  for (size_t i = 0; i < interests_.users.size(); ++i) {
    slot_of_user_[static_cast<size_t>(interests_.users[i])] =
        static_cast<int32_t>(i);
  }
}

void ServingSnapshot::AttachIndex(std::unique_ptr<const IvfIndex> index) {
  IMSR_CHECK_EQ(version_, 0u)
      << "AttachIndex after publish: a reader could already hold this "
         "snapshot";
  IMSR_CHECK(index != nullptr);
  IMSR_CHECK_EQ(index->num_items(), num_items());
  index_ = std::move(index);
}

int64_t ServingSnapshot::bytes() const {
  return static_cast<int64_t>(
             embeddings_.numel() * sizeof(float) +
             interests_.data.size() * sizeof(float) +
             interests_.users.size() *
                 (sizeof(data::UserId) + sizeof(int64_t) +
                  sizeof(int32_t)) +
             slot_of_user_.size() * sizeof(int32_t)) +
         (index_ == nullptr ? 0 : index_->bytes());
}

int64_t ServingSnapshot::SlotOf(data::UserId user) const {
  if (user < 0 ||
      static_cast<size_t>(user) >= slot_of_user_.size()) {
    return -1;
  }
  return slot_of_user_[static_cast<size_t>(user)];
}

bool ServingSnapshot::HasUser(data::UserId user) const {
  return SlotOf(user) >= 0;
}

int64_t ServingSnapshot::NumInterests(data::UserId user) const {
  const int64_t slot = SlotOf(user);
  return slot < 0 ? 0 : interests_.counts[static_cast<size_t>(slot)];
}

nn::ConstMatrixView ServingSnapshot::Interests(data::UserId user) const {
  const int64_t slot = SlotOf(user);
  IMSR_CHECK_GE(slot, 0) << "no interests for user " << user;
  const size_t s = static_cast<size_t>(slot);
  return {interests_.data.data() + interests_.row_begin[s] * interests_.dim,
          interests_.counts[s], interests_.dim};
}

namespace {

std::shared_ptr<ServingSnapshot> BuildSnapshotImpl(
    const models::MsrModel& model, const core::InterestStore& store,
    int trained_through_span, const IvfBuildConfig* ivf) {
  IMSR_TRACE_SPAN("serve/build_snapshot");
  IMSR_OBS_ONLY(util::Stopwatch timer;)
  nn::Tensor embeddings = model.ExportItemEmbeddings();
  core::PackedInterests packed = store.ExportPacked();
  std::unique_ptr<const IvfIndex> index;
  if (ivf != nullptr) {
    index = std::make_unique<IvfIndex>(embeddings, packed, *ivf);
  }
  auto snapshot = std::make_shared<ServingSnapshot>(
      std::move(embeddings), std::move(packed), trained_through_span);
  if (index != nullptr) snapshot->AttachIndex(std::move(index));
  IMSR_HISTOGRAM_RECORD("serve/build_latency_ms", timer.ElapsedMillis());
  IMSR_GAUGE_SET("serve/snapshot_users",
                 static_cast<double>(snapshot->num_users()));
  IMSR_GAUGE_SET("serve/snapshot_bytes",
                 static_cast<double>(snapshot->bytes()));
  return snapshot;
}

}  // namespace

std::shared_ptr<ServingSnapshot> BuildSnapshot(
    const models::MsrModel& model, const core::InterestStore& store,
    int trained_through_span) {
  return BuildSnapshotImpl(model, store, trained_through_span, nullptr);
}

std::shared_ptr<ServingSnapshot> BuildSnapshot(
    const models::MsrModel& model, const core::InterestStore& store,
    int trained_through_span, const IvfBuildConfig& ivf) {
  return BuildSnapshotImpl(model, store, trained_through_span, &ivf);
}

}  // namespace imsr::serve
