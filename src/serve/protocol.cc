#include "serve/protocol.h"

#include <cstring>

#include "util/crc32.h"
#include "util/serialization.h"

namespace imsr::serve {
namespace {

// Payload type tags — the first byte of every payload, so a response
// accidentally fed to the request decoder fails loudly instead of
// misparsing.
constexpr uint8_t kRequestTag = 0x51;   // 'Q'
constexpr uint8_t kResponseTag = 0x52;  // 'R'

std::vector<uint8_t> Frame(const util::BinaryWriter& payload) {
  const std::vector<uint8_t>& body = payload.buffer();
  const uint32_t length = static_cast<uint32_t>(body.size());
  const uint32_t crc = util::Crc32(body.data(), body.size());
  std::vector<uint8_t> frame(kFrameHeaderBytes + body.size());
  std::memcpy(frame.data(), &length, sizeof(length));
  std::memcpy(frame.data() + sizeof(length), &crc, sizeof(crc));
  std::memcpy(frame.data() + kFrameHeaderBytes, body.data(), body.size());
  return frame;
}

bool CheckTag(util::BinaryReader* reader, uint8_t want,
              const char* what, std::string* error) {
  uint8_t tag = 0;
  if (!reader->TryReadBytes(&tag, 1)) {
    *error = "truncated " + std::string(what) + ": " + reader->error();
    return false;
  }
  if (tag != want) {
    *error = std::string("payload is not a ") + what + " (tag " +
             std::to_string(static_cast<int>(tag)) + ")";
    return false;
  }
  return true;
}

}  // namespace

const char* ResponseStatusName(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kError:
      return "error";
    case ResponseStatus::kOverloaded:
      return "overloaded";
    case ResponseStatus::kShuttingDown:
      return "shutting_down";
  }
  return "?";
}

std::vector<uint8_t> EncodeRequest(const RequestFrame& request) {
  util::BinaryWriter payload;
  payload.WriteBytes(&kRequestTag, 1);
  payload.WriteInt64(static_cast<int64_t>(request.request_id));
  payload.WriteInt64(request.user);
  payload.WriteInt64(request.top_n);
  return Frame(payload);
}

std::vector<uint8_t> EncodeResponse(const ResponseFrame& response) {
  util::BinaryWriter payload;
  payload.WriteBytes(&kResponseTag, 1);
  payload.WriteInt64(static_cast<int64_t>(response.request_id));
  const uint8_t status = static_cast<uint8_t>(response.status);
  payload.WriteBytes(&status, 1);
  payload.WriteInt64(static_cast<int64_t>(response.snapshot_version));
  payload.WriteString(response.error);
  payload.WriteInt64(static_cast<int64_t>(response.items.size()));
  for (const auto& [item, score] : response.items) {
    payload.WriteInt64(item);
    payload.WriteFloat(score);
  }
  return Frame(payload);
}

bool TryDecodeRequest(const std::vector<uint8_t>& payload,
                      RequestFrame* out, std::string* error) {
  util::BinaryReader reader(payload);
  if (!CheckTag(&reader, kRequestTag, "request", error)) return false;
  int64_t request_id = 0;
  int64_t user = 0;
  int64_t top_n = 0;
  if (!reader.TryReadInt64(&request_id) || !reader.TryReadInt64(&user) ||
      !reader.TryReadInt64(&top_n)) {
    *error = "truncated request: " + reader.error();
    return false;
  }
  if (!reader.AtEnd()) {
    *error = "trailing bytes after request";
    return false;
  }
  if (user < 0 || user > INT32_MAX) {
    *error = "request user id " + std::to_string(user) + " out of range";
    return false;
  }
  if (top_n < 0 || top_n > static_cast<int64_t>(kMaxFramePayload) / 12) {
    *error = "request top_n " + std::to_string(top_n) + " out of range";
    return false;
  }
  out->request_id = static_cast<uint64_t>(request_id);
  out->user = static_cast<data::UserId>(user);
  out->top_n = static_cast<int>(top_n);
  return true;
}

bool TryDecodeResponse(const std::vector<uint8_t>& payload,
                       ResponseFrame* out, std::string* error) {
  util::BinaryReader reader(payload);
  if (!CheckTag(&reader, kResponseTag, "response", error)) return false;
  int64_t request_id = 0;
  uint8_t status = 0;
  int64_t version = 0;
  std::string reason;
  int64_t count = 0;
  if (!reader.TryReadInt64(&request_id) ||
      !reader.TryReadBytes(&status, 1) ||
      !reader.TryReadInt64(&version) || !reader.TryReadString(&reason) ||
      !reader.TryReadInt64(&count)) {
    *error = "truncated response: " + reader.error();
    return false;
  }
  if (status > static_cast<uint8_t>(ResponseStatus::kShuttingDown)) {
    *error = "unknown response status " + std::to_string(status);
    return false;
  }
  // Each item is 12 payload bytes; an absurd count is caught before any
  // allocation is attempted.
  if (count < 0 || static_cast<uint64_t>(count) * 12 > payload.size()) {
    *error = "response item count " + std::to_string(count) +
             " exceeds payload";
    return false;
  }
  out->request_id = static_cast<uint64_t>(request_id);
  out->status = static_cast<ResponseStatus>(status);
  out->snapshot_version = static_cast<uint64_t>(version);
  out->error = std::move(reason);
  out->items.clear();
  out->items.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    int64_t item = 0;
    float score = 0.0f;
    if (!reader.TryReadInt64(&item) || !reader.TryReadFloat(&score)) {
      *error = "truncated response items: " + reader.error();
      return false;
    }
    out->items.emplace_back(static_cast<data::ItemId>(item), score);
  }
  if (!reader.AtEnd()) {
    *error = "trailing bytes after response";
    return false;
  }
  return true;
}

void FrameAssembler::Append(const void* data, size_t size) {
  // Compact lazily: once the consumed prefix dominates, shift the live
  // tail down so the buffer does not grow without bound on a long-lived
  // connection.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

FrameAssembler::Result FrameAssembler::Next(std::vector<uint8_t>* payload,
                                            std::string* error) {
  if (buffered() < kFrameHeaderBytes) return Result::kNeedMore;
  uint32_t length = 0;
  uint32_t expected_crc = 0;
  std::memcpy(&length, buffer_.data() + consumed_, sizeof(length));
  std::memcpy(&expected_crc, buffer_.data() + consumed_ + sizeof(length),
              sizeof(expected_crc));
  if (length > kMaxFramePayload) {
    *error = "frame length " + std::to_string(length) +
             " exceeds limit " + std::to_string(kMaxFramePayload);
    return Result::kError;
  }
  if (buffered() < kFrameHeaderBytes + length) return Result::kNeedMore;
  const uint8_t* body = buffer_.data() + consumed_ + kFrameHeaderBytes;
  const uint32_t actual_crc = util::Crc32(body, length);
  if (actual_crc != expected_crc) {
    *error = "frame checksum mismatch (corrupt or desynced stream)";
    return Result::kError;
  }
  payload->assign(body, body + length);
  consumed_ += kFrameHeaderBytes + length;
  return Result::kFrame;
}

}  // namespace imsr::serve
