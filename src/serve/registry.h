// SnapshotRegistry — atomic publication point between the training stack
// and the read path.
//
// Training publishes a freshly built ServingSnapshot after pretraining
// and after each incremental span; readers grab the current snapshot with
// one lock-free shared_ptr load and keep scoring against it for as long
// as they hold the reference, even while the next span trains and
// publishes. Memory model: Publish() is a release store of the shared_ptr
// and Current() an acquire load (std::atomic<std::shared_ptr>), so a
// reader that observes snapshot N also observes every write that built
// it — readers can never see a half-constructed or half-trained span.
// The previous snapshot stays alive until its last reader drops the
// reference; nothing is freed under a reader.
#ifndef IMSR_SERVE_REGISTRY_H_
#define IMSR_SERVE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "serve/snapshot.h"

namespace imsr::serve {

class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  // Stamps `snapshot` with the next monotonic version and makes it the
  // current snapshot (release store). The snapshot must not be shared
  // with writers after this call — publication freezes it.
  void Publish(std::shared_ptr<ServingSnapshot> snapshot);

  // The most recently published snapshot (acquire load), or nullptr when
  // nothing has been published yet. Never blocks.
  std::shared_ptr<const ServingSnapshot> Current() const;

  // Number of snapshots published so far.
  uint64_t versions_published() const {
    return next_version_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::shared_ptr<const ServingSnapshot>> current_;
  std::atomic<uint64_t> next_version_{0};
};

}  // namespace imsr::serve

#endif  // IMSR_SERVE_REGISTRY_H_
