// imsr_serve core: a sharded, concurrent recommendation server.
//
// Two layers, split so the concurrency core is testable without sockets:
//
//  * ShardSet — N worker shards, each owning a bounded task queue, a
//    RecommendScratch, and (optionally) a snapshot-versioned response
//    cache. Requests are hash-routed by user id (splitmix64, so
//    consecutive ids spread evenly), answered against the lock-free
//    SnapshotRegistry's current snapshot, and delivered through a
//    ResponseSink. Admission control is explicit: a full shard queue
//    rejects the request with a kOverloaded response on the submitting
//    thread — queues never grow without bound and nothing is dropped
//    silently.
//
//    Workers drain their queue in micro-batches: one blocking pop, then
//    whatever is immediately available up to batch_max (no added latency
//    when the queue is shallow — an empty queue yields a batch of one).
//    Each batch is scored through serve::RecommendBatch, which fuses the
//    unique users' corpus scans into one pass over the embedding table;
//    responses are bitwise identical to the per-request RecommendOne
//    path. The worker loads the registry's current snapshot once per
//    batch, AFTER collecting it, so publishes land between batches and
//    every response reflects a snapshot at least as new as the
//    registry's current at that request's admission: every response is
//    bitwise-consistent with exactly one snapshot version, never a
//    stale one. Cache entries are keyed by (snapshot version, user,
//    top_n, rule, retrieval, nprobe) — a publish invalidates by
//    construction (DESIGN.md §15).
//
//  * Server — the transport: one I/O thread runs accept + a poll()
//    readiness loop over all connections (Unix-domain or TCP), reassembles
//    protocol frames, and submits decoded requests to the ShardSet.
//    Responses are written directly from shard workers under a
//    per-connection write mutex (frames are atomic units; interleaving is
//    prevented, ordering across shards is not promised — responses carry
//    request_ids). A connection is a shared_ptr whose destructor closes
//    the fd, so a worker's late response write can never race a close.
#ifndef IMSR_SERVE_SERVER_H_
#define IMSR_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/recommend.h"
#include "serve/registry.h"
#include "util/bounded_queue.h"

namespace imsr::serve {

// Where a shard worker (or the admission path) delivers a finished
// response. Implementations must be safe to call from any thread.
class ResponseSink {
 public:
  virtual ~ResponseSink() = default;
  virtual void SendResponse(const ResponseFrame& response) = 0;
};

// splitmix64 of the user id modulo num_shards — deterministic, and
// scrambles the low bits so sequential user ids spread across shards.
size_t ShardOf(data::UserId user, size_t num_shards);

struct ShardSetConfig {
  int num_shards = 4;
  // Per-shard queue bound; a full queue rejects (kOverloaded).
  size_t queue_cap = 256;
  // Most requests a worker scores per queue drain. 1 restores the PR 9
  // pop-score-respond loop; larger values amortise the corpus scan
  // across whatever is already waiting (never adds latency — a shallow
  // queue just yields a small batch).
  int batch_max = 32;
  // Total response-cache budget in bytes, split evenly across shards.
  // 0 disables caching entirely.
  size_t cache_bytes = 0;
  // Scoring configuration (threads is ignored — parallelism comes from
  // the shards themselves).
  ServeConfig serve;
};

struct ShardSetStats {
  uint64_t submitted = 0;  // accepted into a shard queue
  uint64_t rejected = 0;   // admission-control rejections
  uint64_t answered = 0;   // responses produced by workers
  uint64_t batches = 0;    // micro-batches drained (answered/batches =
                           // mean batch size)
  uint64_t cache_hits = 0;       // responses served from the cache
  uint64_t cache_misses = 0;     // lookups that fell through to scoring
  uint64_t cache_evictions = 0;  // entries evicted by the byte budget
  uint64_t cache_bytes = 0;      // resident cache bytes, summed over shards
};

class ShardSet {
 public:
  // `registry` is borrowed and must outlive the ShardSet; snapshots may
  // be published to it concurrently with serving.
  ShardSet(const SnapshotRegistry* registry, const ShardSetConfig& config);
  ~ShardSet();  // implies Drain()

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  void Start();

  // Routes `request` to its shard. Returns true when enqueued; false
  // when the shard queue was full — in that case a kOverloaded response
  // has already been delivered to `sink` on this thread. The sink is
  // held (shared) until its response is written.
  bool Submit(const RequestFrame& request,
              std::shared_ptr<ResponseSink> sink);

  // Closes every shard queue, lets workers drain what was admitted, and
  // joins them. Every submitted request gets a response before Drain
  // returns. Idempotent.
  void Drain();

  ShardSetStats stats() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Task {
    RequestFrame request;
    std::shared_ptr<ResponseSink> sink;
  };
  struct Shard {
    explicit Shard(size_t queue_cap);
    util::BoundedQueue<Task> queue;
    std::thread worker;
    // Resident bytes of this shard's response cache (worker-written,
    // stats()-read).
    std::atomic<uint64_t> cache_bytes{0};
  };

  void WorkerLoop(Shard* shard);

  const SnapshotRegistry* registry_;
  ShardSetConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool started_ = false;
  bool drained_ = false;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> answered_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> cache_evictions_{0};
};

struct ServerConfig {
  // Non-empty selects a Unix-domain socket at this path (an existing
  // stale socket file is replaced).
  std::string unix_path;
  // Used when unix_path is empty; 0 binds an ephemeral port (read it
  // back from port()). Listens on 127.0.0.1.
  int tcp_port = 0;
  ShardSetConfig shards;
  // Optional cooperative stop (util::ShutdownFlag()); polled by Run().
  const std::atomic<bool>* stop = nullptr;
};

struct ServerStats {
  uint64_t accepted = 0;       // connections accepted
  uint64_t disconnected = 0;   // connections closed (peer or error)
  uint64_t frames = 0;         // request frames decoded
  uint64_t protocol_errors = 0;  // framing/decode failures (fatal per conn)
};

class Server {
 public:
  Server(const SnapshotRegistry* registry, const ServerConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds + listens and starts the shard workers. False + error on bind
  // failure (path in use, privileged port, ...).
  bool Start(std::string* error);

  // Runs the accept/read poll loop on the calling thread until Shutdown()
  // or the configured stop flag. On exit: stops accepting, drains the
  // shards (every admitted request is answered), then closes connections.
  void Run();

  // Signals Run() to wind down; safe from any thread / signal context
  // via the stop flag. Idempotent.
  void Shutdown();

  // The bound TCP port (resolved when tcp_port was 0); 0 for unix.
  int port() const { return port_; }
  const std::string& unix_path() const { return config_.unix_path; }

  ServerStats stats() const;
  ShardSetStats shard_stats() const { return shards_.stats(); }

 private:
  class Connection;

  bool ShouldStop() const;
  // Reads whatever is available on `connection`; false when the
  // connection is finished (EOF, error, protocol violation).
  bool DrainReadable(const std::shared_ptr<Connection>& connection);

  ServerConfig config_;
  ShardSet shards_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::map<int, std::shared_ptr<Connection>> connections_;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> disconnected_{0};
  std::atomic<uint64_t> frames_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace imsr::serve

#endif  // IMSR_SERVE_SERVER_H_
