// Batch top-N serving over an immutable ServingSnapshot (Algorithm 2's
// inference procedure, lifted out of the evaluator so it can run against
// a published snapshot while training mutates the live model).
//
// Requests in a batch are independent; the batch fans out over the
// process-wide thread pool with one RankScratch per worker chunk, so the
// corpus-sized logits/score buffers are allocated once per worker, not
// per request. Per-request failures (unknown user, bad top_n) come back
// as error responses — one bad request never fails the batch.
#ifndef IMSR_SERVE_RECOMMEND_H_
#define IMSR_SERVE_RECOMMEND_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "data/interaction.h"
#include "eval/ranker.h"
#include "serve/snapshot.h"
#include "util/lru_cache.h"

namespace imsr::serve {

struct RecommendRequest {
  data::UserId user = -1;
  // <= 0 falls back to ServeConfig::default_top_n.
  int top_n = 0;
};

struct RecommendResponse {
  data::UserId user = -1;
  // Top-N (item, score), highest first; empty when !ok.
  std::vector<std::pair<data::ItemId, float>> items;
  bool ok = false;
  std::string error;  // set when !ok
};

struct ServeConfig {
  int default_top_n = 10;
  eval::ScoreRule rule = eval::ScoreRule::kAttentive;
  // Worker threads for the batch fan-out; <= 0 uses the process-wide
  // pool's configured size. Responses are identical for any thread count.
  int threads = 0;
  // kIVF routes through the snapshot's IvfIndex (exact float scores on
  // the approximate shortlist); a snapshot without an index falls back
  // to exact scoring (counted in serve/ivf_fallback_exact). The default
  // follows IMSR_RETRIEVAL, which is kExact unless overridden.
  RetrievalMode retrieval = DefaultRetrievalMode();
  // Lists probed per interest under kIVF; <= 0 uses the index default.
  int nprobe = 0;
};

// Scratch buffers for RecommendOne / RecommendBatch — one per worker
// thread/shard, so the corpus-sized score arrays are allocated once, not
// per request.
struct RecommendScratch {
  eval::RankScratch rank;
  IvfIndex::Scratch ivf;
  // RecommendBatch working state: the unique users' interest rows packed
  // into one fused operand, the cache-resident logits tile the blocked
  // item sweep reuses, each unique user's full-corpus scores, and the
  // bookkeeping vectors — kept here so steady-state batches reuse their
  // buffers.
  nn::Tensor batch_interests;
  nn::Tensor batch_logits;  // (block_rows x total_interests) tile
  std::vector<std::vector<float>> batch_scores;  // per unique user
  std::vector<data::UserId> batch_users;
  std::vector<int64_t> batch_col_offset;  // per unique user, into logits
  std::vector<int64_t> batch_user_k;      // per unique user interest count
  std::vector<int> batch_top_n;
  std::vector<int64_t> batch_user_slot;
};

// Answers one request against `snapshot` into `response`, reusing
// `scratch`. This is the single-request body the batch fan-out and the
// server's shard workers share — bitwise-identical results on both
// paths. Per-request failures (unknown user, bad top_n) land in the
// response (ok=false + error), never abort.
void RecommendOne(const ServingSnapshot& snapshot,
                  const RecommendRequest& request, const ServeConfig& config,
                  RecommendScratch* scratch, RecommendResponse* response);

// Answers `count` requests against one snapshot on the calling thread,
// sharing a single pass over the embedding table: unique users' interest
// rows are concatenated into one operand and scored in one blocked item
// sweep over the snapshot's k-major table — each block's logits tile
// stays cache-resident between the MatMulTransBPanelRangeInto call
// and the per-user reductions (exact path) — or one shortlist loop over
// the shared IVF scratch, and duplicate (user, top_n) requests within
// the batch copy the first answer.
// Responses are bitwise identical to calling RecommendOne per request —
// same kernel bodies, same per-user dispatch shapes, same error strings
// (memcmp-tested at batch size 1 and N in server_test). This is the
// shard worker's micro-batch entry point; unlike Recommend() it never
// fans out, because parallelism already comes from the shards.
void RecommendBatch(const ServingSnapshot& snapshot,
                    const RecommendRequest* requests, size_t count,
                    const ServeConfig& config, RecommendScratch* scratch,
                    RecommendResponse* responses);

// Answers every request against `snapshot`; responses are parallel to
// `requests`.
std::vector<RecommendResponse> Recommend(
    const ServingSnapshot& snapshot,
    const std::vector<RecommendRequest>& requests,
    const ServeConfig& config);

// --- Response cache ---------------------------------------------------------
//
// Key for the per-shard serve response cache. The snapshot's data epoch
// (snapshot.h) is in the key, so a publish that changes scoring content
// invalidates every older entry for free — stale entries age out of the
// LRU tail instead of needing an explicit flush — while a
// content-identical republish (the timed-republish deployment) keeps the
// epoch and the cache warm. The freshness contract still holds exactly:
// equal epoch means the snapshots score every request bitwise
// identically, so a hit always returns what the *current* snapshot would
// compute (the CPMR-motivated rule: recommendations are only valid for
// the model state that scored them). top_n is the *resolved* value
// (defaults applied), so explicit and defaulted requests for the same N
// share an entry.
struct ResponseCacheKey {
  uint64_t epoch = 0;
  data::UserId user = -1;
  int32_t top_n = 0;
  uint8_t rule = 0;
  uint8_t retrieval = 0;
  int32_t nprobe = 0;

  bool operator==(const ResponseCacheKey& other) const {
    return epoch == other.epoch && user == other.user &&
           top_n == other.top_n && rule == other.rule &&
           retrieval == other.retrieval && nprobe == other.nprobe;
  }
};

struct ResponseCacheKeyHash {
  size_t operator()(const ResponseCacheKey& key) const;
};

// Cached value: the ok response's (item, score) list. Error responses
// are never cached — they are cheap to recompute and must not mask a
// user appearing in a later snapshot.
using ResponseCache =
    util::LruCache<ResponseCacheKey,
                   std::vector<std::pair<data::ItemId, float>>,
                   ResponseCacheKeyHash>;

// Key for `request` against `snapshot` under `config`, with top_n
// resolved the same way RecommendOne resolves it.
ResponseCacheKey MakeResponseCacheKey(const ServingSnapshot& snapshot,
                                      const RecommendRequest& request,
                                      const ServeConfig& config);

// Byte estimate charged against the cache budget for one entry: key +
// items payload + map/list node overhead.
size_t ResponseCacheEntryBytes(
    const std::vector<std::pair<data::ItemId, float>>& items);

}  // namespace imsr::serve

#endif  // IMSR_SERVE_RECOMMEND_H_
