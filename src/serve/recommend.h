// Batch top-N serving over an immutable ServingSnapshot (Algorithm 2's
// inference procedure, lifted out of the evaluator so it can run against
// a published snapshot while training mutates the live model).
//
// Requests in a batch are independent; the batch fans out over the
// process-wide thread pool with one RankScratch per worker chunk, so the
// corpus-sized logits/score buffers are allocated once per worker, not
// per request. Per-request failures (unknown user, bad top_n) come back
// as error responses — one bad request never fails the batch.
#ifndef IMSR_SERVE_RECOMMEND_H_
#define IMSR_SERVE_RECOMMEND_H_

#include <string>
#include <utility>
#include <vector>

#include "data/interaction.h"
#include "eval/ranker.h"
#include "serve/snapshot.h"

namespace imsr::serve {

struct RecommendRequest {
  data::UserId user = -1;
  // <= 0 falls back to ServeConfig::default_top_n.
  int top_n = 0;
};

struct RecommendResponse {
  data::UserId user = -1;
  // Top-N (item, score), highest first; empty when !ok.
  std::vector<std::pair<data::ItemId, float>> items;
  bool ok = false;
  std::string error;  // set when !ok
};

struct ServeConfig {
  int default_top_n = 10;
  eval::ScoreRule rule = eval::ScoreRule::kAttentive;
  // Worker threads for the batch fan-out; <= 0 uses the process-wide
  // pool's configured size. Responses are identical for any thread count.
  int threads = 0;
  // kIVF routes through the snapshot's IvfIndex (exact float scores on
  // the approximate shortlist); a snapshot without an index falls back
  // to exact scoring (counted in serve/ivf_fallback_exact). The default
  // follows IMSR_RETRIEVAL, which is kExact unless overridden.
  RetrievalMode retrieval = DefaultRetrievalMode();
  // Lists probed per interest under kIVF; <= 0 uses the index default.
  int nprobe = 0;
};

// Scratch buffers for RecommendOne — one per worker thread/shard, so the
// corpus-sized score arrays are allocated once, not per request.
struct RecommendScratch {
  eval::RankScratch rank;
  IvfIndex::Scratch ivf;
};

// Answers one request against `snapshot` into `response`, reusing
// `scratch`. This is the single-request body the batch fan-out and the
// server's shard workers share — bitwise-identical results on both
// paths. Per-request failures (unknown user, bad top_n) land in the
// response (ok=false + error), never abort.
void RecommendOne(const ServingSnapshot& snapshot,
                  const RecommendRequest& request, const ServeConfig& config,
                  RecommendScratch* scratch, RecommendResponse* response);

// Answers every request against `snapshot`; responses are parallel to
// `requests`.
std::vector<RecommendResponse> Recommend(
    const ServingSnapshot& snapshot,
    const std::vector<RecommendRequest>& requests,
    const ServeConfig& config);

}  // namespace imsr::serve

#endif  // IMSR_SERVE_RECOMMEND_H_
