#include "serve/recommend.h"

#include "obs/obs.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace imsr::serve {

void RecommendOne(const ServingSnapshot& snapshot,
                  const RecommendRequest& request, const ServeConfig& config,
                  RecommendScratch* scratch, RecommendResponse* response) {
  response->user = request.user;
  response->ok = false;
  response->items.clear();
  const int top_n =
      request.top_n > 0 ? request.top_n : config.default_top_n;
  if (top_n <= 0) {
    response->error = "top_n must be positive";
    return;
  }
  if (!snapshot.HasUser(request.user)) {
    response->error =
        "no interests for user " + std::to_string(request.user);
    return;
  }
  const IvfIndex* index =
      config.retrieval == RetrievalMode::kIVF ? snapshot.index() : nullptr;
  if (index != nullptr) {
    index->SearchTopN(snapshot.Interests(request.user),
                      snapshot.item_embeddings(), config.rule, top_n,
                      config.nprobe, &scratch->ivf, &response->items);
  } else {
    eval::ScoreAllItemsInto(snapshot.Interests(request.user),
                            snapshot.item_embeddings(), config.rule,
                            &scratch->rank);
    response->items = eval::TopNFromScores(scratch->rank.scores, top_n);
  }
  response->ok = true;
}

std::vector<RecommendResponse> Recommend(
    const ServingSnapshot& snapshot,
    const std::vector<RecommendRequest>& requests,
    const ServeConfig& config) {
  IMSR_TRACE_SPAN("serve/recommend_batch");
  IMSR_OBS_ONLY(util::Stopwatch timer;)
  std::vector<RecommendResponse> responses(requests.size());
  // IVF requires an index on the snapshot; without one the batch falls
  // back to exact scoring (counted, so a misconfigured deployment shows
  // up in the metrics instead of silently serving slow).
  const IvfIndex* index =
      config.retrieval == RetrievalMode::kIVF ? snapshot.index() : nullptr;
  const bool use_ivf = index != nullptr;
  IMSR_OBS_ONLY({
    if (config.retrieval == RetrievalMode::kIVF && index == nullptr) {
      IMSR_COUNTER_ADD("serve/ivf_fallback_exact",
                       static_cast<int64_t>(requests.size()));
    }
  })
  // Responses land in disjoint slots, so the fan-out needs no locking and
  // the batch result is identical for any thread count.
  util::ParallelChunks(
      static_cast<int64_t>(requests.size()), config.threads,
      [&](int64_t begin, int64_t end) {
        RecommendScratch scratch;
        for (int64_t i = begin; i < end; ++i) {
          RecommendOne(snapshot, requests[static_cast<size_t>(i)], config,
                       &scratch, &responses[static_cast<size_t>(i)]);
        }
      });
  IMSR_COUNTER_ADD("serve/requests",
                   static_cast<int64_t>(requests.size()));
  IMSR_OBS_ONLY({
    if (use_ivf) {
      IMSR_COUNTER_ADD("serve/ivf_requests",
                       static_cast<int64_t>(requests.size()));
    }
  })
  IMSR_OBS_ONLY({
    const double seconds = timer.ElapsedSeconds();
    IMSR_HISTOGRAM_RECORD("serve/batch_latency_ms", seconds * 1e3);
    if (seconds > 0.0 && !requests.empty()) {
      IMSR_GAUGE_SET("serve/users_per_sec",
                     static_cast<double>(requests.size()) / seconds);
    }
  })
  return responses;
}

}  // namespace imsr::serve
