#include "serve/recommend.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace imsr::serve {

namespace {

// Item rows scored per block of the exact-path sweep. The block's logits
// tile (block x total_k floats) must stay cache-resident between the
// matmul that fills it and the reduction that drains it — that locality
// is the whole point of blocking; a corpus-sized logits matrix thrashes
// every level once total_k grows past a few interests. Equal to the
// k-major panel size so every block reads exactly one contiguous panel
// of the snapshot's table (sequential traffic, one prefetch stream),
// and the tile stays within ~half of a typical L2 even at a full
// micro-batch's width (1024 rows x 96 interests x 4 B = 384 KiB worst
// case, ~12 KiB for a single user).
constexpr int64_t kScoreBlockRows = nn::kKMajorPanelRows;

// The one exact-scoring body every serve path reduces to: logits from
// the k-major table through the width-invariant kernel, then the fused
// per-item reduction, swept in item blocks so the tile never leaves
// cache. `interests` may be one user's snapshot view or several users'
// rows packed into one operand — the kernel's bits do not depend on the
// width and the reduction is independent per item, which is exactly why
// RecommendBatch can fuse and block and still memcmp-match RecommendOne.
// (The evaluator keeps its own ScoreAllItemsInto on the row-major table;
// serve owns this layout.)
void ScoreExactInto(const ServingSnapshot& snapshot,
                    nn::ConstMatrixView interests, eval::ScoreRule rule,
                    eval::RankScratch* scratch) {
  const int64_t num_items = snapshot.num_items();
  const int64_t k = interests.rows;
  const nn::ConstMatrixView table =
      nn::ViewOf(snapshot.item_embeddings_kmajor());
  scratch->logits.ResizeUninitialized({kScoreBlockRows, k});
  scratch->scores.resize(static_cast<size_t>(num_items));
  for (int64_t b0 = 0; b0 < num_items; b0 += kScoreBlockRows) {
    const int64_t b1 = std::min<int64_t>(num_items, b0 + kScoreBlockRows);
    nn::MatMulTransBPanelRangeInto(table, interests, b0, b1,
                                   scratch->logits.data());
    eval::ScoresFromLogits(scratch->logits.data(), b1 - b0, k, rule,
                           scratch->scores.data() + b0);
  }
}

}  // namespace

void RecommendOne(const ServingSnapshot& snapshot,
                  const RecommendRequest& request, const ServeConfig& config,
                  RecommendScratch* scratch, RecommendResponse* response) {
  response->user = request.user;
  response->ok = false;
  response->items.clear();
  const int top_n =
      request.top_n > 0 ? request.top_n : config.default_top_n;
  if (top_n <= 0) {
    response->error = "top_n must be positive";
    return;
  }
  if (!snapshot.HasUser(request.user)) {
    response->error =
        "no interests for user " + std::to_string(request.user);
    return;
  }
  const IvfIndex* index =
      config.retrieval == RetrievalMode::kIVF ? snapshot.index() : nullptr;
  if (index != nullptr) {
    index->SearchTopN(snapshot.Interests(request.user),
                      snapshot.item_embeddings(), config.rule, top_n,
                      config.nprobe, &scratch->ivf, &response->items);
  } else {
    ScoreExactInto(snapshot, snapshot.Interests(request.user), config.rule,
                   &scratch->rank);
    response->items = eval::TopNFromScores(scratch->rank.scores, top_n);
  }
  response->ok = true;
}

void RecommendBatch(const ServingSnapshot& snapshot,
                    const RecommendRequest* requests, size_t count,
                    const ServeConfig& config, RecommendScratch* scratch,
                    RecommendResponse* responses) {
  IMSR_CHECK(scratch != nullptr);
  if (count == 0) return;
  IMSR_CHECK(requests != nullptr);
  IMSR_CHECK(responses != nullptr);
  const IvfIndex* index =
      config.retrieval == RetrievalMode::kIVF ? snapshot.index() : nullptr;
  IMSR_OBS_ONLY({
    if (config.retrieval == RetrievalMode::kIVF && index == nullptr) {
      IMSR_COUNTER_ADD("serve/ivf_fallback_exact",
                       static_cast<int64_t>(count));
    }
  })
  // Validation mirrors RecommendOne exactly — same checks, same order,
  // same error strings — so a batched error response is bitwise identical
  // to the single-request one. resolved[i] > 0 marks a scoreable request.
  std::vector<int>& resolved = scratch->batch_top_n;
  resolved.assign(count, -1);
  for (size_t i = 0; i < count; ++i) {
    RecommendResponse& response = responses[i];
    response.user = requests[i].user;
    response.ok = false;
    response.items.clear();
    const int top_n =
        requests[i].top_n > 0 ? requests[i].top_n : config.default_top_n;
    if (top_n <= 0) {
      response.error = "top_n must be positive";
      continue;
    }
    if (!snapshot.HasUser(requests[i].user)) {
      response.error =
          "no interests for user " + std::to_string(requests[i].user);
      continue;
    }
    resolved[i] = top_n;
  }
  // Duplicate detector: an earlier request with the same (user, top_n)
  // against the same snapshot/config produced the identical answer, so
  // the later one copies it. Linear scan — batches are batch_max-sized.
  auto duplicate_of = [&](size_t i) -> int64_t {
    for (size_t j = 0; j < i; ++j) {
      if (resolved[j] == resolved[i] && requests[j].user == requests[i].user) {
        return static_cast<int64_t>(j);
      }
    }
    return -1;
  };
  if (index != nullptr) {
    // IVF path: one shortlist pass per unique (user, top_n), all sharing
    // the shard's IvfIndex scratch.
    for (size_t i = 0; i < count; ++i) {
      if (resolved[i] <= 0) continue;
      const int64_t dup = duplicate_of(i);
      if (dup >= 0) {
        responses[i].items = responses[static_cast<size_t>(dup)].items;
        responses[i].ok = true;
        continue;
      }
      index->SearchTopN(snapshot.Interests(requests[i].user),
                        snapshot.item_embeddings(), config.rule, resolved[i],
                        config.nprobe, &scratch->ivf, &responses[i].items);
      responses[i].ok = true;
    }
    return;
  }
  // Exact path: concatenate each unique user's interest rows into one
  // packed operand and sweep the snapshot's k-major table once in item
  // blocks — the embedding table streams through cache once per batch
  // instead of once per user, and each block's fused logits tile is
  // reduced into every user's scores while still cache-hot. The kernel's
  // bits are invariant to the operand width and the block split, and the
  // strided per-user reduction shares ScoreFromLogits with the
  // single-request path, so every response is bitwise identical to
  // RecommendOne's.
  std::vector<data::UserId>& users = scratch->batch_users;
  std::vector<int64_t>& user_slot = scratch->batch_user_slot;
  users.clear();
  user_slot.assign(count, -1);
  for (size_t i = 0; i < count; ++i) {
    if (resolved[i] <= 0) continue;
    int64_t slot = -1;
    for (size_t u = 0; u < users.size(); ++u) {
      if (users[u] == requests[i].user) {
        slot = static_cast<int64_t>(u);
        break;
      }
    }
    if (slot < 0) {
      slot = static_cast<int64_t>(users.size());
      users.push_back(requests[i].user);
    }
    user_slot[i] = slot;
  }
  if (users.empty()) return;
  const int64_t dim = snapshot.dim();
  std::vector<int64_t>& col_offset = scratch->batch_col_offset;
  col_offset.clear();
  int64_t total_k = 0;
  for (size_t u = 0; u < users.size(); ++u) {
    col_offset.push_back(total_k);
    total_k += snapshot.NumInterests(users[u]);
  }
  scratch->batch_interests.ResizeUninitialized({total_k, dim});
  for (size_t u = 0; u < users.size(); ++u) {
    const nn::ConstMatrixView rows = snapshot.Interests(users[u]);
    std::copy_n(rows.data, rows.rows * rows.cols,
                scratch->batch_interests.data() + col_offset[u] * dim);
  }
  const int64_t num_items = snapshot.num_items();
  const nn::ConstMatrixView table =
      nn::ViewOf(snapshot.item_embeddings_kmajor());
  const nn::ConstMatrixView packed = {scratch->batch_interests.data(),
                                      total_k, dim};
  // Blocked sweep: each item block's fused logits tile is produced and
  // reduced into every unique user's scores before the next block evicts
  // it. Every unique user has at least one non-duplicate request, so no
  // scored row is wasted.
  std::vector<std::vector<float>>& scores = scratch->batch_scores;
  if (scores.size() < users.size()) scores.resize(users.size());
  for (size_t u = 0; u < users.size(); ++u) {
    scores[u].resize(static_cast<size_t>(num_items));
  }
  scratch->batch_logits.ResizeUninitialized({kScoreBlockRows, total_k});
  // Per-user interest counts hoisted out of the reduce loop.
  std::vector<int64_t>& user_k = scratch->batch_user_k;
  user_k.clear();
  for (size_t u = 0; u < users.size(); ++u) {
    user_k.push_back(snapshot.NumInterests(users[u]));
  }
  for (int64_t b0 = 0; b0 < num_items; b0 += kScoreBlockRows) {
    const int64_t b1 = std::min<int64_t>(num_items, b0 + kScoreBlockRows);
    nn::MatMulTransBPanelRangeInto(table, packed, b0, b1,
                                   scratch->batch_logits.data());
    // One strided tile pass per user: the tile fits L2 at serving
    // widths, so this beats a row-major interchange (which pays one
    // ScoreFromLogits call per (item, user) for no bandwidth win).
    for (size_t u = 0; u < users.size(); ++u) {
      eval::ScoresFromLogitsStrided(scratch->batch_logits.data(), b1 - b0,
                                    user_k[u], total_k, col_offset[u],
                                    config.rule, scores[u].data() + b0);
    }
  }
  // Responses come out in request order; duplicates copy the first
  // answer, everyone else selects from their user's scores.
  for (size_t i = 0; i < count; ++i) {
    if (resolved[i] <= 0) continue;
    const int64_t dup = duplicate_of(i);
    if (dup >= 0) {
      responses[i].items = responses[static_cast<size_t>(dup)].items;
      responses[i].ok = true;
      continue;
    }
    responses[i].items = eval::TopNFromScores(
        scores[static_cast<size_t>(user_slot[i])], resolved[i]);
    responses[i].ok = true;
  }
}

// Mixes the key fields through splitmix64-style avalanche rounds; the
// epoch is in the mix, so each content change redistributes the table.
size_t ResponseCacheKeyHash::operator()(const ResponseCacheKey& key) const {
  auto mix = [](uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  uint64_t h = mix(key.epoch);
  h = mix(h ^ static_cast<uint64_t>(key.user));
  h = mix(h ^ (static_cast<uint64_t>(static_cast<uint32_t>(key.top_n)) |
               (static_cast<uint64_t>(key.rule) << 32) |
               (static_cast<uint64_t>(key.retrieval) << 40)));
  h = mix(h ^ static_cast<uint64_t>(static_cast<uint32_t>(key.nprobe)));
  return static_cast<size_t>(h);
}

ResponseCacheKey MakeResponseCacheKey(const ServingSnapshot& snapshot,
                                      const RecommendRequest& request,
                                      const ServeConfig& config) {
  ResponseCacheKey key;
  key.epoch = snapshot.data_epoch();
  key.user = request.user;
  key.top_n = request.top_n > 0 ? request.top_n : config.default_top_n;
  key.rule = static_cast<uint8_t>(config.rule);
  key.retrieval = static_cast<uint8_t>(config.retrieval);
  key.nprobe = config.nprobe;
  return key;
}

size_t ResponseCacheEntryBytes(
    const std::vector<std::pair<data::ItemId, float>>& items) {
  // Key + vector payload + an allowance for the LRU list node and index
  // slot. An estimate, not an accounting — the budget bounds memory to
  // within a small constant factor.
  return sizeof(ResponseCacheKey) +
         items.size() * sizeof(std::pair<data::ItemId, float>) + 96;
}

std::vector<RecommendResponse> Recommend(
    const ServingSnapshot& snapshot,
    const std::vector<RecommendRequest>& requests,
    const ServeConfig& config) {
  IMSR_TRACE_SPAN("serve/recommend_batch");
  IMSR_OBS_ONLY(util::Stopwatch timer;)
  std::vector<RecommendResponse> responses(requests.size());
  // IVF requires an index on the snapshot; without one the batch falls
  // back to exact scoring (counted, so a misconfigured deployment shows
  // up in the metrics instead of silently serving slow).
  const IvfIndex* index =
      config.retrieval == RetrievalMode::kIVF ? snapshot.index() : nullptr;
  const bool use_ivf = index != nullptr;
  IMSR_OBS_ONLY({
    if (config.retrieval == RetrievalMode::kIVF && index == nullptr) {
      IMSR_COUNTER_ADD("serve/ivf_fallback_exact",
                       static_cast<int64_t>(requests.size()));
    }
  })
  // Responses land in disjoint slots, so the fan-out needs no locking and
  // the batch result is identical for any thread count.
  util::ParallelChunks(
      static_cast<int64_t>(requests.size()), config.threads,
      [&](int64_t begin, int64_t end) {
        RecommendScratch scratch;
        for (int64_t i = begin; i < end; ++i) {
          RecommendOne(snapshot, requests[static_cast<size_t>(i)], config,
                       &scratch, &responses[static_cast<size_t>(i)]);
        }
      });
  IMSR_COUNTER_ADD("serve/requests",
                   static_cast<int64_t>(requests.size()));
  IMSR_OBS_ONLY({
    if (use_ivf) {
      IMSR_COUNTER_ADD("serve/ivf_requests",
                       static_cast<int64_t>(requests.size()));
    }
  })
  IMSR_OBS_ONLY({
    const double seconds = timer.ElapsedSeconds();
    IMSR_HISTOGRAM_RECORD("serve/batch_latency_ms", seconds * 1e3);
    if (seconds > 0.0 && !requests.empty()) {
      IMSR_GAUGE_SET("serve/users_per_sec",
                     static_cast<double>(requests.size()) / seconds);
    }
  })
  return responses;
}

}  // namespace imsr::serve
