// Wire protocol for imsr_serve: length-prefixed, CRC-framed binary
// request/response messages over a byte stream (Unix-domain or TCP
// socket).
//
// Frame layout (little-endian, matching the checkpoint serializer):
//
//   [u32 payload_len][u32 crc32(payload)][payload_len bytes]
//
// The CRC covers the payload only, so a bit flip anywhere in the payload
// is caught before parsing (CRC-32 detects all single-bit errors) and a
// truncated stream simply never completes the frame. payload_len is
// bounded by kMaxFrameBytes — a corrupted length cannot make a reader
// buffer gigabytes. Payloads are parsed exclusively through the fallible
// TryRead* serialization layer: malformed bytes produce a decode error,
// never an abort, because the bytes come from the network.
//
// A framing violation (oversized length, CRC mismatch, trailing garbage)
// is not recoverable — the stream has lost sync and the connection must
// be dropped. Per-request problems (unknown user, overload) are NOT
// framing errors; they come back as ResponseFrames with a non-kOk
// status on a healthy connection.
#ifndef IMSR_SERVE_PROTOCOL_H_
#define IMSR_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "data/interaction.h"

namespace imsr::serve {

// Upper bound on a frame payload; chosen generously above the largest
// legitimate response (top_n is clamped far below this).
inline constexpr uint32_t kMaxFramePayload = 1u << 20;
inline constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc

enum class ResponseStatus : uint8_t {
  kOk = 0,
  // Request was understood but could not be answered (unknown user,
  // invalid top_n); error holds the reason.
  kError = 1,
  // Admission control rejected the request: the target shard's queue was
  // full. The client may retry; nothing was dropped silently.
  kOverloaded = 2,
  // Server is draining after a shutdown request.
  kShuttingDown = 3,
};

const char* ResponseStatusName(ResponseStatus status);

struct RequestFrame {
  uint64_t request_id = 0;  // echoed verbatim in the response
  data::UserId user = -1;
  int top_n = 0;  // <= 0 falls back to the server's default
};

struct ResponseFrame {
  uint64_t request_id = 0;
  ResponseStatus status = ResponseStatus::kError;
  uint64_t snapshot_version = 0;  // snapshot that answered (0 if none)
  // Top-N (item, score), highest first; empty unless status == kOk.
  std::vector<std::pair<data::ItemId, float>> items;
  std::string error;  // reason when status != kOk
};

// Complete frames, header included — write the returned bytes verbatim.
std::vector<uint8_t> EncodeRequest(const RequestFrame& request);
std::vector<uint8_t> EncodeResponse(const ResponseFrame& response);

// Parse one CRC-verified frame *payload* (as produced by FrameAssembler).
// On failure: returns false, fills `error`, leaves `out` unspecified.
bool TryDecodeRequest(const std::vector<uint8_t>& payload,
                      RequestFrame* out, std::string* error);
bool TryDecodeResponse(const std::vector<uint8_t>& payload,
                       ResponseFrame* out, std::string* error);

// Incremental frame extraction from an arbitrarily-chunked byte stream
// (sockets deliver partial frames and coalesced frames alike). Feed
// bytes with Append, then call Next until it stops returning kFrame.
class FrameAssembler {
 public:
  enum class Result {
    kFrame,     // *payload holds the next complete, CRC-verified payload
    kNeedMore,  // header or payload still incomplete — Append more bytes
    kError,     // framing violation; drop the connection (fills *error)
  };

  void Append(const void* data, size_t size);
  Result Next(std::vector<uint8_t>* payload, std::string* error);

  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // bytes of buffer_ already handed out
};

}  // namespace imsr::serve

#endif  // IMSR_SERVE_PROTOCOL_H_
