#include "serve/ivf_index.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "nn/simd.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/hot.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace imsr::serve {
namespace {

// Items per blocked assignment pass. Fixed, so block boundaries cannot
// depend on thread count and the built index is bitwise deterministic.
constexpr int64_t kAssignBlock = 4096;

// Integer dot of two int8 code rows. Integer addition is exactly
// associative, so the vectorized reduction is bitwise identical to the
// scalar chain — no scalar twin or SimdEnabled() dispatch needed.
IMSR_HOT_BEGIN
IMSR_SIMD_CLONES
int32_t DotI8(const int8_t* __restrict__ a, const int8_t* __restrict__ b,
              int64_t n) {
  int32_t acc = 0;
  IMSR_SIMD_PRAGMA(reduction(+ : acc))
  for (int64_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}
IMSR_HOT_END

// Symmetric per-row int8 quantization: scale = maxabs / 127 (1.0 guards
// an all-zero row), code = round(x / scale) clamped to [-127, 127].
float QuantizeRow(const float* row, int64_t n, int8_t* codes) {
  float maxabs = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    maxabs = std::max(maxabs, std::fabs(row[i]));
  }
  const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
  for (int64_t i = 0; i < n; ++i) {
    const long q = std::lroundf(row[i] / scale);
    codes[i] = static_cast<int8_t>(std::clamp<long>(q, -127, 127));
  }
  return scale;
}

// argmin_c ||e - c||^2 = argmin_c (|c|^2 - 2 e.c) for every row named by
// `ids`, ties to the lowest centroid id. The e.c products run through the
// blocked MatMulTransBInto kernels (pool-parallel inside, bitwise
// invariant to thread count); the argmin sweep fans out over disjoint
// row ranges.
void AssignNearest(const nn::Tensor& embeddings,
                   const std::vector<int64_t>& ids,
                   const nn::Tensor& centroids,
                   const std::vector<float>& centroid_norms, int threads,
                   std::vector<int32_t>* assignment) {
  const int64_t count = static_cast<int64_t>(ids.size());
  const int64_t num_centroids = centroids.size(0);
  assignment->resize(static_cast<size_t>(count));
  nn::Tensor gathered;
  nn::Tensor products;
  for (int64_t block = 0; block < count; block += kAssignBlock) {
    const int64_t rows = std::min(kAssignBlock, count - block);
    nn::GatherRowsInto(embeddings, ids.data() + block, rows, &gathered);
    nn::MatMulTransBInto(gathered, nn::ViewOf(centroids), &products);
    const float* dots = products.data();
    util::ParallelChunks(rows, threads, [&](int64_t begin, int64_t end) {
      for (int64_t r = begin; r < end; ++r) {
        const float* row = dots + r * num_centroids;
        int32_t best = 0;
        float best_cost = centroid_norms[0] - 2.0f * row[0];
        for (int64_t c = 1; c < num_centroids; ++c) {
          const float cost =
              centroid_norms[static_cast<size_t>(c)] - 2.0f * row[c];
          if (cost < best_cost) {
            best_cost = cost;
            best = static_cast<int32_t>(c);
          }
        }
        (*assignment)[static_cast<size_t>(block + r)] = best;
      }
    });
  }
}

std::vector<float> RowSquaredNorms(const nn::Tensor& t) {
  const int64_t rows = t.size(0);
  const int64_t cols = t.size(1);
  std::vector<float> norms(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = t.data() + r * cols;
    norms[static_cast<size_t>(r)] = nn::DotSpan(row, row, cols);
  }
  return norms;
}

}  // namespace

const char* RetrievalModeName(RetrievalMode mode) {
  switch (mode) {
    case RetrievalMode::kExact:
      return "exact";
    case RetrievalMode::kIVF:
      return "ivf";
  }
  return "?";
}

bool RetrievalModeFromName(const std::string& name, RetrievalMode* mode,
                           std::string* error) {
  IMSR_CHECK(mode != nullptr);
  if (name == "exact") {
    *mode = RetrievalMode::kExact;
    return true;
  }
  if (name == "ivf") {
    *mode = RetrievalMode::kIVF;
    return true;
  }
  if (error != nullptr) {
    *error = "unknown retrieval mode '" + name + "' (valid: exact, ivf)";
  }
  return false;
}

RetrievalMode DefaultRetrievalMode() {
  // Read once; a malformed value degrades loudly to exact, matching the
  // util/env.h toggle semantics.
  static const RetrievalMode mode = [] {
    const char* raw = std::getenv("IMSR_RETRIEVAL");
    if (raw == nullptr) return RetrievalMode::kExact;
    RetrievalMode parsed = RetrievalMode::kExact;
    std::string error;
    if (RetrievalModeFromName(raw, &parsed, &error)) return parsed;
    std::fprintf(stderr,
                 "imsr: IMSR_RETRIEVAL=%s is malformed (%s); using the "
                 "default 'exact'\n",
                 raw, error.c_str());
    return RetrievalMode::kExact;
  }();
  return mode;
}

IvfIndex::IvfIndex(const nn::Tensor& embeddings,
                   const core::PackedInterests& seeds,
                   const IvfBuildConfig& config) {
  IMSR_TRACE_SPAN("serve/build_index");
  IMSR_OBS_ONLY(util::Stopwatch timer;)
  IMSR_CHECK_EQ(embeddings.dim(), 2);
  num_items_ = embeddings.size(0);
  dim_ = embeddings.size(1);
  rerank_factor_ = std::max(1, config.rerank_factor);
  min_rerank_ = std::max(1, config.min_rerank);

  const int64_t num_centroids =
      config.num_centroids > 0
          ? std::min(config.num_centroids, num_items_)
          : std::clamp<int64_t>(
                static_cast<int64_t>(
                    std::ceil(std::sqrt(static_cast<double>(num_items_)))),
                1, num_items_);

  // Seed centroids from the packed interest rows — the best available
  // sketch of where queries land — topped up with strided item rows when
  // there are fewer interest rows than centroids.
  const int64_t seed_rows =
      seeds.dim == dim_ ? static_cast<int64_t>(seeds.data.size()) / dim_
                        : 0;
  centroids_ = nn::Tensor::Uninitialized({num_centroids, dim_});
  const int64_t from_interests = std::min(seed_rows, num_centroids);
  for (int64_t c = 0; c < from_interests; ++c) {
    // Strided pick spreads the seeds over every user, not just the first.
    const int64_t row = from_interests == seed_rows
                            ? c
                            : (c * seed_rows) / num_centroids;
    std::copy_n(seeds.data.data() + row * dim_, dim_,
                centroids_.data() + c * dim_);
  }
  const int64_t from_items = num_centroids - from_interests;
  for (int64_t c = 0; c < from_items; ++c) {
    const int64_t row = (c * num_items_) / from_items;
    std::copy_n(embeddings.data() + row * dim_, dim_,
                centroids_.data() + (from_interests + c) * dim_);
  }

  // Lloyd iterations over a strided training sample (every item still
  // gets a list assignment below). Assignment is per-item independent and
  // the centroid update accumulates serially in sample order, so the
  // result is bitwise identical for any thread count.
  const int64_t train_count =
      std::min(num_items_, config.train_sample > 0 ? config.train_sample
                                                   : int64_t{65536});
  std::vector<int64_t> train_ids(static_cast<size_t>(train_count));
  for (int64_t i = 0; i < train_count; ++i) {
    train_ids[static_cast<size_t>(i)] = (i * num_items_) / train_count;
  }
  std::vector<int32_t> assignment;
  std::vector<float> centroid_norms = RowSquaredNorms(centroids_);
  std::vector<float> sums;
  std::vector<int64_t> counts;
  for (int iter = 0; iter < config.kmeans_iters; ++iter) {
    AssignNearest(embeddings, train_ids, centroids_, centroid_norms,
                  config.threads, &assignment);
    sums.assign(static_cast<size_t>(num_centroids * dim_), 0.0f);
    counts.assign(static_cast<size_t>(num_centroids), 0);
    for (int64_t i = 0; i < train_count; ++i) {
      const int32_t c = assignment[static_cast<size_t>(i)];
      const float* row =
          embeddings.data() + train_ids[static_cast<size_t>(i)] * dim_;
      float* sum = sums.data() + c * dim_;
      for (int64_t k = 0; k < dim_; ++k) sum[k] += row[k];
      ++counts[static_cast<size_t>(c)];
    }
    for (int64_t c = 0; c < num_centroids; ++c) {
      const int64_t count = counts[static_cast<size_t>(c)];
      if (count == 0) continue;  // empty cluster keeps its old centroid
      const float inv = 1.0f / static_cast<float>(count);
      const float* sum = sums.data() + c * dim_;
      float* centroid = centroids_.data() + c * dim_;
      for (int64_t k = 0; k < dim_; ++k) centroid[k] = sum[k] * inv;
    }
    centroid_norms = RowSquaredNorms(centroids_);
  }

  // Final assignment of every item, then a counting sort into the flat
  // inverted lists. Iterating items in id order keeps each list's ids
  // ascending.
  std::vector<int64_t> all_ids(static_cast<size_t>(num_items_));
  std::iota(all_ids.begin(), all_ids.end(), int64_t{0});
  AssignNearest(embeddings, all_ids, centroids_, centroid_norms,
                config.threads, &assignment);
  list_begin_.assign(static_cast<size_t>(num_centroids + 1), 0);
  for (int64_t i = 0; i < num_items_; ++i) {
    ++list_begin_[static_cast<size_t>(assignment[i]) + 1];
  }
  for (int64_t c = 0; c < num_centroids; ++c) {
    list_begin_[static_cast<size_t>(c + 1)] +=
        list_begin_[static_cast<size_t>(c)];
  }
  list_items_.resize(static_cast<size_t>(num_items_));
  std::vector<int64_t> cursor(list_begin_.begin(), list_begin_.end() - 1);
  for (int64_t i = 0; i < num_items_; ++i) {
    list_items_[static_cast<size_t>(
        cursor[static_cast<size_t>(assignment[i])]++)] =
        static_cast<data::ItemId>(i);
  }

  // int8 codes in list order (scan locality): codes_[p] quantizes the
  // embedding row of list_items_[p].
  codes_.resize(static_cast<size_t>(num_items_ * dim_));
  scales_.resize(static_cast<size_t>(num_items_));
  util::ParallelChunks(
      num_items_, config.threads, [&](int64_t begin, int64_t end) {
        for (int64_t p = begin; p < end; ++p) {
          const data::ItemId item = list_items_[static_cast<size_t>(p)];
          scales_[static_cast<size_t>(p)] =
              QuantizeRow(embeddings.data() + int64_t{item} * dim_, dim_,
                          codes_.data() + p * dim_);
        }
      });

  // Default probe width is a constant, not a fraction of C: how many
  // lists a query's neighborhood straddles depends on the local cluster
  // geometry, not on how many lists exist. 6 holds recall@20 >= 0.95 on
  // clustered corpora (tests/ann_test.cc) while scanning only
  // ~nprobe*K/C of the corpus.
  default_nprobe_ = static_cast<int>(
      config.default_nprobe > 0
          ? std::min<int64_t>(config.default_nprobe, num_centroids)
          : std::min<int64_t>(num_centroids, 6));

  static std::atomic<uint64_t> next_build_id{0};
  build_id_ = ++next_build_id;

  IMSR_HISTOGRAM_RECORD("serve/index_build_ms", timer.ElapsedMillis());
  IMSR_COUNTER_ADD("serve/index_builds", 1);
  IMSR_GAUGE_SET("serve/index_centroids",
                 static_cast<double>(num_centroids));
  IMSR_GAUGE_SET("serve/index_bytes", static_cast<double>(bytes()));
}

int64_t IvfIndex::bytes() const {
  return static_cast<int64_t>(
      centroids_.numel() * sizeof(float) +
      list_begin_.size() * sizeof(int64_t) +
      list_items_.size() * sizeof(data::ItemId) +
      codes_.size() * sizeof(int8_t) + scales_.size() * sizeof(float));
}

void IvfIndex::SearchTopN(
    nn::ConstMatrixView interests, const nn::Tensor& embeddings,
    eval::ScoreRule rule, int top_n, int nprobe, Scratch* scratch,
    std::vector<std::pair<data::ItemId, float>>* top,
    IvfSearchStats* stats) const {
  IMSR_CHECK(scratch != nullptr);
  IMSR_CHECK(top != nullptr);
  IMSR_CHECK(interests.data != nullptr);
  IMSR_CHECK_GE(interests.rows, 1);
  IMSR_CHECK_EQ(interests.cols, dim_);
  IMSR_CHECK_GT(top_n, 0);
  IMSR_CHECK_EQ(embeddings.size(0), num_items_);
  const int64_t num_interests = interests.rows;
  const int64_t num_centroids = this->num_centroids();
  const int64_t probes_per_interest =
      nprobe > 0 ? std::min<int64_t>(nprobe, num_centroids)
                 : default_nprobe_;

  // Epoch-stamped visited set: one O(num_items) clear per 2^32 searches
  // instead of one per search.
  if (static_cast<int64_t>(scratch->visited.size()) != num_items_) {
    scratch->visited.assign(static_cast<size_t>(num_items_), 0);
    scratch->epoch = 0;
  }
  if (++scratch->epoch == 0) {
    std::fill(scratch->visited.begin(), scratch->visited.end(), 0u);
    scratch->epoch = 1;
  }
  const uint32_t epoch = scratch->epoch;

  scratch->query_codes.resize(
      static_cast<size_t>(num_interests * dim_));
  scratch->query_scales.resize(static_cast<size_t>(num_interests));
  scratch->approx_row.resize(static_cast<size_t>(num_interests));
  for (int64_t j = 0; j < num_interests; ++j) {
    scratch->query_scales[static_cast<size_t>(j)] =
        QuantizeRow(interests.data + j * dim_, dim_,
                    scratch->query_codes.data() + j * dim_);
  }

  scratch->candidates.clear();
  scratch->approx_scores.clear();
  scratch->centroid_scores.resize(static_cast<size_t>(num_centroids));
  scratch->probe_order.resize(static_cast<size_t>(num_centroids));
  IvfSearchStats local;
  const float* centroid_data = centroids_.data();
  for (int64_t j = 0; j < num_interests; ++j) {
    const float* query = interests.data + j * dim_;
    float* centroid_scores = scratch->centroid_scores.data();
    for (int64_t c = 0; c < num_centroids; ++c) {
      centroid_scores[c] =
          nn::DotSpan(query, centroid_data + c * dim_, dim_);
    }
    std::iota(scratch->probe_order.begin(), scratch->probe_order.end(),
              0);
    std::partial_sort(
        scratch->probe_order.begin(),
        scratch->probe_order.begin() + probes_per_interest,
        scratch->probe_order.end(), [&](int32_t a, int32_t b) {
          if (centroid_scores[a] != centroid_scores[b]) {
            return centroid_scores[a] > centroid_scores[b];
          }
          return a < b;
        });
    for (int64_t t = 0; t < probes_per_interest; ++t) {
      const int32_t list = scratch->probe_order[static_cast<size_t>(t)];
      ++local.probes;
      const int64_t begin = list_begin_[static_cast<size_t>(list)];
      const int64_t end = list_begin_[static_cast<size_t>(list) + 1];
      for (int64_t p = begin; p < end; ++p) {
        const data::ItemId item = list_items_[static_cast<size_t>(p)];
        uint32_t& stamp = scratch->visited[static_cast<size_t>(item)];
        if (stamp == epoch) continue;
        stamp = epoch;
        const int8_t* code = codes_.data() + p * dim_;
        const float scale = scales_[static_cast<size_t>(p)];
        for (int64_t jj = 0; jj < num_interests; ++jj) {
          scratch->approx_row[static_cast<size_t>(jj)] =
              scale * scratch->query_scales[static_cast<size_t>(jj)] *
              static_cast<float>(DotI8(
                  code, scratch->query_codes.data() + jj * dim_, dim_));
        }
        scratch->candidates.push_back(item);
        scratch->approx_scores.push_back(eval::ScoreFromLogits(
            scratch->approx_row.data(), num_interests, rule));
      }
    }
  }
  local.shortlist = static_cast<int64_t>(scratch->candidates.size());

  top->clear();
  if (!scratch->candidates.empty()) {
    const int64_t rerank = std::min<int64_t>(
        local.shortlist,
        std::max<int64_t>(static_cast<int64_t>(top_n) * rerank_factor_,
                          min_rerank_));
    scratch->selected.resize(scratch->candidates.size());
    std::iota(scratch->selected.begin(), scratch->selected.end(), 0);
    const std::vector<float>& approx = scratch->approx_scores;
    const std::vector<int64_t>& ids = scratch->candidates;
    std::partial_sort(scratch->selected.begin(),
                      scratch->selected.begin() + rerank,
                      scratch->selected.end(), [&](int32_t a, int32_t b) {
                        if (approx[static_cast<size_t>(a)] !=
                            approx[static_cast<size_t>(b)]) {
                          return approx[static_cast<size_t>(a)] >
                                 approx[static_cast<size_t>(b)];
                        }
                        return ids[static_cast<size_t>(a)] <
                               ids[static_cast<size_t>(b)];
                      });
    scratch->rerank_rows.resize(static_cast<size_t>(rerank));
    for (int64_t r = 0; r < rerank; ++r) {
      scratch->rerank_rows[static_cast<size_t>(r)] =
          ids[static_cast<size_t>(
              scratch->selected[static_cast<size_t>(r)])];
    }
    // Exact float re-rank: the gathered-row kernel + the shared per-row
    // reduction reproduce the brute-force oracle's bits for every
    // shortlisted item.
    nn::MatMulTransBGatherInto(embeddings, interests,
                               scratch->rerank_rows.data(), rerank,
                               &scratch->gathered, &scratch->logits);
    scratch->exact_scores.resize(static_cast<size_t>(rerank));
    for (int64_t r = 0; r < rerank; ++r) {
      scratch->exact_scores[static_cast<size_t>(r)] =
          eval::ScoreFromLogits(scratch->logits.data() + r * num_interests,
                                num_interests, rule);
    }
    const int64_t keep = std::min<int64_t>(top_n, rerank);
    const std::vector<float>& exact = scratch->exact_scores;
    const std::vector<int64_t>& rows = scratch->rerank_rows;
    for (int64_t r = 0; r < rerank; ++r) {
      scratch->selected[static_cast<size_t>(r)] = static_cast<int32_t>(r);
    }
    std::partial_sort(scratch->selected.begin(),
                      scratch->selected.begin() + keep,
                      scratch->selected.begin() + rerank,
                      [&](int32_t a, int32_t b) {
                        if (exact[static_cast<size_t>(a)] !=
                            exact[static_cast<size_t>(b)]) {
                          return exact[static_cast<size_t>(a)] >
                                 exact[static_cast<size_t>(b)];
                        }
                        return rows[static_cast<size_t>(a)] <
                               rows[static_cast<size_t>(b)];
                      });
    top->reserve(static_cast<size_t>(keep));
    for (int64_t r = 0; r < keep; ++r) {
      const int32_t sel = scratch->selected[static_cast<size_t>(r)];
      top->emplace_back(
          static_cast<data::ItemId>(rows[static_cast<size_t>(sel)]),
          exact[static_cast<size_t>(sel)]);
    }
    local.reranked = rerank;
  }

  IMSR_HISTOGRAM_RECORD("serve/ivf_probes",
                        static_cast<double>(local.probes));
  IMSR_HISTOGRAM_RECORD("serve/ivf_shortlist",
                        static_cast<double>(local.shortlist));
  IMSR_HISTOGRAM_RECORD("serve/ivf_rerank",
                        static_cast<double>(local.reranked));
  if (stats != nullptr) *stats = local;
}

float IvfIndex::ApproxDot(data::ItemId item, const float* query) const {
  IMSR_CHECK(item >= 0 && item < num_items_);
  int64_t position = -1;
  for (size_t p = 0; p < list_items_.size(); ++p) {
    if (list_items_[p] == item) {
      position = static_cast<int64_t>(p);
      break;
    }
  }
  IMSR_CHECK_GE(position, 0);
  std::vector<int8_t> query_codes(static_cast<size_t>(dim_));
  const float query_scale = QuantizeRow(query, dim_, query_codes.data());
  return scales_[static_cast<size_t>(position)] * query_scale *
         static_cast<float>(DotI8(codes_.data() + position * dim_,
                                  query_codes.data(), dim_));
}

}  // namespace imsr::serve
