// ADER baseline [Mi et al. 2020]: adaptively distilled exemplar replay.
// A pool of truncated historical interaction sequences is maintained per
// user; each span the exemplars most similar (cosine, in embedding space)
// to the user's new interactions are replayed alongside the new data, with
// a distillation term preserving the previous model's outputs. The pool
// grows every span, so training time grows linearly (Table V).
#ifndef IMSR_BASELINES_ADER_H_
#define IMSR_BASELINES_ADER_H_

#include <memory>

#include "core/strategies.h"

namespace imsr::baselines {

std::unique_ptr<core::LearningStrategy> CreateAderStrategy(
    const core::StrategyConfig& config, models::MsrModel* model,
    core::InterestStore* store);

}  // namespace imsr::baselines

#endif  // IMSR_BASELINES_ADER_H_
