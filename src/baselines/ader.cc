#include "baselines/ader.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "util/math_util.h"

namespace imsr::baselines {
namespace {

class AderStrategy : public core::LearningStrategy {
 public:
  AderStrategy(const core::StrategyConfig& config, models::MsrModel* model,
               core::InterestStore* store)
      : LearningStrategy(model, store),
        config_(config),
        trainer_(model, store, AderTrainConfig(config)),
        rng_(config.train.seed ^ 0xADE2ULL) {}

  void Pretrain(const data::Dataset& dataset) override {
    trainer_.Pretrain(dataset);
    UpdatePool(dataset, /*span=*/0);
  }

  void TrainIncrementalSpan(const data::Dataset& dataset,
                            int span) override {
    const std::vector<data::TrainingSample> exemplars =
        SelectExemplars(dataset, span);
    trainer_.TrainSpan(dataset, span, &exemplars);
    // Replayed interactions count as span data: fold them into the
    // interest extraction so replayed (old) interests survive the span.
    std::unordered_map<data::UserId, std::vector<data::ItemId>> replay;
    for (const data::TrainingSample& exemplar : exemplars) {
      auto& items = replay[exemplar.user];
      items.insert(items.end(), exemplar.history.begin(),
                   exemplar.history.end());
      items.push_back(exemplar.target);
    }
    for (auto& [user, items] : replay) {
      const data::UserSpanData& span_data = dataset.user_span(user, span);
      items.insert(items.end(), span_data.all.begin(), span_data.all.end());
      trainer_.RefreshUserInterests(user, std::move(items));
    }
    UpdatePool(dataset, span);
  }

  size_t pool_size() const {
    size_t total = 0;
    for (const auto& [user, entries] : pool_) total += entries.size();
    return total;
  }

 private:
  static core::TrainConfig AderTrainConfig(
      const core::StrategyConfig& config) {
    core::TrainConfig train = config.train;
    // ADER's "adaptive distillation": the same sigmoid-KD machinery as
    // EIR, at ADER's own coefficient, but no capacity expansion.
    train.eir.kind = core::RetentionKind::kSigmoidKd;
    train.eir.coefficient = config.ader_kd_coefficient;
    train.enable_expansion = false;
    train.persist_interests = false;
    return train;
  }

  // Mean embedding of an item list.
  std::vector<double> MeanEmbedding(
      const std::vector<data::ItemId>& items) const {
    const int64_t dim = model_->config().embedding_dim;
    std::vector<double> mean(static_cast<size_t>(dim), 0.0);
    if (items.empty()) return mean;
    const nn::Tensor rows = model_->embeddings().LookupNoGrad(items);
    for (int64_t i = 0; i < rows.size(0); ++i) {
      for (int64_t j = 0; j < dim; ++j) {
        mean[static_cast<size_t>(j)] += rows.at(i, j);
      }
    }
    for (double& v : mean) v /= static_cast<double>(items.size());
    return mean;
  }

  std::vector<data::TrainingSample> SelectExemplars(
      const data::Dataset& dataset, int span) {
    std::vector<data::TrainingSample> selected;
    for (data::UserId user : dataset.active_users(span)) {
      auto it = pool_.find(user);
      if (it == pool_.end() || it->second.empty()) continue;
      const data::UserSpanData& span_data = dataset.user_span(user, span);
      const std::vector<double> span_mean = MeanEmbedding(span_data.all);

      // Rank pool entries by cosine similarity to the new interactions.
      std::vector<std::pair<double, size_t>> ranked;
      ranked.reserve(it->second.size());
      for (size_t i = 0; i < it->second.size(); ++i) {
        const std::vector<double> exemplar_mean =
            MeanEmbedding(it->second[i].history);
        ranked.emplace_back(
            util::CosineSimilarity(span_mean, exemplar_mean), i);
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      const size_t keep = std::min(
          static_cast<size_t>(std::ceil(
              config_.ader_select_fraction *
              static_cast<double>(ranked.size()))),
          static_cast<size_t>(config_.ader_max_selected));
      for (size_t i = 0; i < keep; ++i) {
        selected.push_back(it->second[ranked[i].second]);
      }
    }
    return selected;
  }

  void UpdatePool(const data::Dataset& dataset, int span) {
    for (data::UserId user : dataset.active_users(span)) {
      const data::UserSpanData& span_data = dataset.user_span(user, span);
      if (span_data.all.size() < 2) continue;
      auto& entries = pool_[user];
      for (int added = 0; added < config_.ader_exemplars_per_span;
           ++added) {
        // Random truncation: a contiguous chunk ending at a random target.
        const auto end = static_cast<size_t>(rng_.IntInRange(
            1, static_cast<int64_t>(span_data.all.size()) - 1));
        const size_t begin =
            end > static_cast<size_t>(config_.ader_max_exemplar_length)
                ? end - config_.ader_max_exemplar_length
                : 0;
        data::TrainingSample exemplar;
        exemplar.user = user;
        exemplar.target = span_data.all[end];
        exemplar.history.assign(
            span_data.all.begin() + static_cast<int64_t>(begin),
            span_data.all.begin() + static_cast<int64_t>(end));
        entries.push_back(std::move(exemplar));
      }
    }
  }

  core::StrategyConfig config_;
  core::ImsrTrainer trainer_;
  util::Rng rng_;
  std::unordered_map<data::UserId, std::vector<data::TrainingSample>> pool_;
};

}  // namespace

std::unique_ptr<core::LearningStrategy> CreateAderStrategy(
    const core::StrategyConfig& config, models::MsrModel* model,
    core::InterestStore* store) {
  return std::make_unique<AderStrategy>(config, model, store);
}

}  // namespace imsr::baselines
