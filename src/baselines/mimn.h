// MIMN-style life-long baseline [Pi et al. 2019]: a fixed-size per-user
// memory (NTM-like) that is *written* online as interactions arrive, while
// model parameters stay frozen after pretraining — the distinguishing
// property the paper compares against (Table IV): user representations
// update, the model does not, and the interest capacity is fixed.
#ifndef IMSR_BASELINES_MIMN_H_
#define IMSR_BASELINES_MIMN_H_

#include "core/imsr_trainer.h"
#include "core/interest_store.h"
#include "models/msr_model.h"

namespace imsr::baselines {

struct MimnConfig {
  models::ModelConfig base;     // pretraining model (embeddings)
  core::TrainConfig pretrain;   // span-0 training
  int memory_slots = 8;         // fixed interest capacity
  float write_rate = 0.3f;      // slot update step size
};

class MimnModel {
 public:
  MimnModel(const MimnConfig& config, int64_t num_items, uint64_t seed);

  // Trains embeddings + extractor on span 0, then seeds each user's memory
  // from their learned interests (padded with random slots).
  void Pretrain(const data::Dataset& dataset);

  // Online memory writes for one incremental span; no parameter updates.
  void ObserveSpan(const data::Dataset& dataset, int span);

  // Memory slots double as interest vectors for evaluation.
  const core::InterestStore& memory() const { return memory_; }
  const nn::Tensor& item_embeddings() const {
    return model_.embeddings().parameter().value();
  }

 private:
  void InitMemory(data::UserId user);
  void WriteMemory(data::UserId user, const nn::Tensor& item_embedding);

  MimnConfig config_;
  models::MsrModel model_;
  core::InterestStore pretrain_interests_;
  core::InterestStore memory_;
  util::Rng rng_;
};

}  // namespace imsr::baselines

#endif  // IMSR_BASELINES_MIMN_H_
