#include "baselines/limarec.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "models/aggregator.h"
#include "nn/optim.h"
#include "models/sampled_softmax.h"
#include "nn/init.h"
#include "nn/ops.h"

namespace imsr::baselines {
namespace {

constexpr float kEps = 1e-4f;

}  // namespace

LimaRecModel::LimaRecModel(const LimaRecConfig& config, int64_t num_items)
    : config_(config),
      rng_(config.seed),
      embeddings_(num_items, config.embedding_dim, rng_),
      w_key_(nn::XavierUniform(config.embedding_dim, config.embedding_dim,
                               rng_),
             /*requires_grad=*/true),
      w_value_(nn::XavierUniform(config.embedding_dim,
                                 config.embedding_dim, rng_),
               /*requires_grad=*/true),
      queries_(nn::Tensor::Randn({config.num_heads, config.embedding_dim},
                                 rng_),
               /*requires_grad=*/true) {}

nn::Var LimaRecModel::ForwardInterests(
    const std::vector<data::ItemId>& history) {
  nn::Var items = embeddings_.Lookup(history);  // (n x d)
  nn::Var keys = nn::ops::Sigmoid(nn::ops::MatMul(items, w_key_));
  nn::Var values = nn::ops::MatMul(items, w_value_);
  nn::Var s = nn::ops::MatMul(nn::ops::Transpose(keys), values);  // (d x d)
  // z = column sums of keys.
  const nn::Var ones(
      nn::Tensor::Ones({static_cast<int64_t>(history.size())}));
  nn::Var z = nn::ops::MatVec(nn::ops::Transpose(keys), ones);  // (d)

  std::vector<nn::Var> heads;
  heads.reserve(static_cast<size_t>(config_.num_heads));
  for (int k = 0; k < config_.num_heads; ++k) {
    nn::Var phi_q =
        nn::ops::Sigmoid(nn::ops::RowVector(queries_, k));       // (d)
    nn::Var numerator = nn::ops::MatVec(nn::ops::Transpose(s), phi_q);
    nn::Var denominator =
        nn::ops::AddScalar(nn::ops::Dot(phi_q, z), kEps);
    heads.push_back(nn::ops::DivByScalar(numerator, denominator));
  }
  return nn::ops::ConcatRows(heads);  // (K x d)
}

void LimaRecModel::Pretrain(const data::Dataset& dataset) {
  nn::Adam optimizer(config_.learning_rate);
  optimizer.Register(embeddings_.parameter());
  optimizer.Register(w_key_);
  optimizer.Register(w_value_);
  optimizer.Register(queries_);

  const std::vector<data::TrainingSample> samples =
      data::BuildSpanSamples(dataset, /*span=*/0, config_.max_history);
  data::NegativeSampler negatives(
      static_cast<int32_t>(embeddings_.num_items()));

  for (int epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
    std::vector<size_t> order(samples.size());
    std::iota(order.begin(), order.end(), 0);
    rng_.Shuffle(order);
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(config_.batch_size)) {
      const size_t end = std::min(
          order.size(), begin + static_cast<size_t>(config_.batch_size));
      nn::Var batch_loss;
      for (size_t i = begin; i < end; ++i) {
        const data::TrainingSample& sample = samples[order[i]];
        nn::Var interests = ForwardInterests(sample.history);
        nn::Var target = nn::ops::Reshape(
            embeddings_.Lookup({sample.target}), {config_.embedding_dim});
        nn::Var user_repr = models::AttentiveAggregate(interests, target);
        std::vector<data::ItemId> candidates = {sample.target};
        const std::vector<data::ItemId> negs =
            negatives.Sample(config_.negatives, sample.target, rng_);
        candidates.insert(candidates.end(), negs.begin(), negs.end());
        nn::Var loss = models::SampledSoftmaxLoss(
            user_repr, embeddings_.Lookup(candidates));
        batch_loss =
            batch_loss.defined() ? nn::ops::Add(batch_loss, loss) : loss;
      }
      if (!batch_loss.defined()) continue;
      batch_loss = nn::ops::Scale(
          batch_loss, 1.0f / static_cast<float>(end - begin));
      batch_loss.Backward();
      optimizer.Step();
      optimizer.ZeroGradAll();
    }
  }

  // Seed every span-0 user's associative state.
  ObserveSpan(dataset, /*span=*/0);
}

void LimaRecModel::EnsureState(data::UserId user) {
  if (state_.count(user) > 0) return;
  UserState fresh;
  fresh.s = nn::Tensor({config_.embedding_dim, config_.embedding_dim});
  fresh.z = nn::Tensor({config_.embedding_dim});
  state_[user] = std::move(fresh);
  if (!interests_.Has(user)) {
    interests_.Initialize(user, config_.num_heads, config_.embedding_dim,
                          /*span=*/0, rng_);
  }
}

void LimaRecModel::AbsorbItem(data::UserId user, data::ItemId item) {
  UserState& user_state = state_.at(user);
  const nn::Tensor e = embeddings_.RowNoGrad(item);
  const nn::Tensor key =
      nn::Sigmoid(nn::MatVec(nn::Transpose(w_key_.value()), e));
  const nn::Tensor value =
      nn::MatVec(nn::Transpose(w_value_.value()), e);
  // S += phi(k) v^T ; z += phi(k).
  const int64_t d = config_.embedding_dim;
  for (int64_t i = 0; i < d; ++i) {
    const float ki = key.at(i);
    user_state.z.at(i) += ki;
    for (int64_t j = 0; j < d; ++j) {
      user_state.s.at(i, j) += ki * value.at(j);
    }
  }
}

nn::Tensor LimaRecModel::ReadInterests(data::UserId user) const {
  const UserState& user_state = state_.at(user);
  const int64_t d = config_.embedding_dim;
  nn::Tensor interests({config_.num_heads, d});
  for (int k = 0; k < config_.num_heads; ++k) {
    nn::Tensor phi_q({d});
    for (int64_t j = 0; j < d; ++j) {
      phi_q.at(j) =
          1.0f / (1.0f + std::exp(-queries_.value().at(k, j)));
    }
    const nn::Tensor numerator =
        nn::MatVec(nn::Transpose(user_state.s), phi_q);
    const float denominator =
        nn::DotFlat(phi_q, user_state.z) + kEps;
    for (int64_t j = 0; j < d; ++j) {
      interests.at(k, j) = numerator.at(j) / denominator;
    }
  }
  return interests;
}

void LimaRecModel::ObserveSpan(const data::Dataset& dataset, int span) {
  for (data::UserId user : dataset.active_users(span)) {
    EnsureState(user);
    const data::UserSpanData& span_data = dataset.user_span(user, span);
    for (data::ItemId item : span_data.all) AbsorbItem(user, item);
    interests_.SetInterests(user, ReadInterests(user));
  }
}

}  // namespace imsr::baselines
