#include "baselines/mimn.h"

#include <algorithm>
#include <vector>

namespace imsr::baselines {

MimnModel::MimnModel(const MimnConfig& config, int64_t num_items,
                     uint64_t seed)
    : config_(config),
      model_(config.base, num_items, seed),
      rng_(seed ^ 0x313A17ULL) {
  IMSR_CHECK_GE(config.memory_slots, 1);
}

void MimnModel::Pretrain(const data::Dataset& dataset) {
  core::ImsrTrainer trainer(&model_, &pretrain_interests_,
                            config_.pretrain);
  trainer.Pretrain(dataset);
  for (data::UserId user : dataset.active_users(0)) {
    InitMemory(user);
  }
}

void MimnModel::InitMemory(data::UserId user) {
  if (memory_.Has(user)) return;
  const int64_t dim = config_.base.embedding_dim;
  memory_.Initialize(user, config_.memory_slots, dim, /*span=*/0, rng_);
  if (!pretrain_interests_.Has(user)) return;
  // Seed the first slots from the pretrained interests.
  const nn::Tensor& learned = pretrain_interests_.Interests(user);
  nn::Tensor slots = memory_.Interests(user);
  const int64_t copy = std::min(learned.size(0), slots.size(0));
  for (int64_t k = 0; k < copy; ++k) slots.SetRow(k, learned.Row(k));
  memory_.SetInterests(user, std::move(slots));
}

void MimnModel::WriteMemory(data::UserId user,
                            const nn::Tensor& item_embedding) {
  nn::Tensor slots = memory_.Interests(user);
  // Addressing: softmax attention of the item over slots.
  const nn::Tensor weights =
      nn::Softmax(nn::MatVec(slots, item_embedding));
  // NTM-style blended write: M_k += rate * w_k * (e - M_k).
  const int64_t dim = slots.size(1);
  for (int64_t k = 0; k < slots.size(0); ++k) {
    const float step = config_.write_rate * weights.at(k);
    for (int64_t j = 0; j < dim; ++j) {
      slots.at(k, j) += step * (item_embedding.at(j) - slots.at(k, j));
    }
  }
  memory_.SetInterests(user, std::move(slots));
}

void MimnModel::ObserveSpan(const data::Dataset& dataset, int span) {
  for (data::UserId user : dataset.active_users(span)) {
    InitMemory(user);
    const data::UserSpanData& span_data = dataset.user_span(user, span);
    for (data::ItemId item : span_data.all) {
      WriteMemory(user, model_.embeddings().RowNoGrad(item));
    }
  }
}

}  // namespace imsr::baselines
