// LimaRec-style life-long baseline [Wu et al. 2021]: linear self-attention
// whose associative state (S_u, z_u) is updated incrementally per
// interaction, so user representations evolve online while the model
// parameters (embeddings, key/value maps, interest queries) stay frozen
// after pretraining. Interest k is read as
//   h_k = S_u^T phi(q_k) / (phi(q_k) . z_u + eps),
// with S_u = sum_i phi(W_k e_i) (W_v e_i)^T and z_u = sum_i phi(W_k e_i);
// phi is a positive feature map (sigmoid here).
#ifndef IMSR_BASELINES_LIMAREC_H_
#define IMSR_BASELINES_LIMAREC_H_

#include <unordered_map>

#include "core/interest_store.h"
#include "data/sampler.h"
#include "models/embedding.h"

namespace imsr::baselines {

struct LimaRecConfig {
  int64_t embedding_dim = 32;
  int num_heads = 4;  // fixed interest count (no expansion, by design)
  int pretrain_epochs = 5;
  int batch_size = 64;
  float learning_rate = 0.005f;
  int negatives = 10;
  int max_history = 50;
  uint64_t seed = 11;
};

class LimaRecModel {
 public:
  LimaRecModel(const LimaRecConfig& config, int64_t num_items);

  // Trains embeddings, W_k, W_v and the interest queries on span 0, then
  // builds each user's associative state from their span-0 items.
  void Pretrain(const data::Dataset& dataset);

  // Incremental state updates for one span (no parameter updates).
  void ObserveSpan(const data::Dataset& dataset, int span);

  // Reads interests out of the associative state for every tracked user.
  const core::InterestStore& interests() const { return interests_; }
  const nn::Tensor& item_embeddings() const {
    return embeddings_.parameter().value();
  }

 private:
  // One (K x d) interest matrix from the user's current state.
  nn::Tensor ReadInterests(data::UserId user) const;
  void AbsorbItem(data::UserId user, data::ItemId item);
  void EnsureState(data::UserId user);
  // Training-graph interest extraction over a history (pretraining only).
  nn::Var ForwardInterests(const std::vector<data::ItemId>& history);

  LimaRecConfig config_;
  util::Rng rng_;
  models::EmbeddingTable embeddings_;
  nn::Var w_key_;    // (d x d)
  nn::Var w_value_;  // (d x d)
  nn::Var queries_;  // (K x d)

  struct UserState {
    nn::Tensor s;  // (d x d)
    nn::Tensor z;  // (d)
  };
  std::unordered_map<data::UserId, UserState> state_;
  core::InterestStore interests_;
};

}  // namespace imsr::baselines

#endif  // IMSR_BASELINES_LIMAREC_H_
