#include "baselines/gru4rec.h"

#include <algorithm>
#include <numeric>

#include "models/sampled_softmax.h"
#include "nn/init.h"
#include "nn/ops.h"

namespace imsr::baselines {
namespace ops = ::imsr::nn::ops;

Gru4RecModel::Gru4RecModel(const Gru4RecConfig& config, int64_t num_items)
    : config_(config),
      rng_(config.seed),
      embeddings_(num_items, config.embedding_dim, rng_),
      w_update_x_(nn::XavierUniform(config.embedding_dim,
                                    config.hidden_dim, rng_),
                  true),
      w_update_h_(nn::XavierUniform(config.hidden_dim, config.hidden_dim,
                                    rng_),
                  true),
      b_update_(nn::Tensor({config.hidden_dim}), true),
      w_reset_x_(nn::XavierUniform(config.embedding_dim,
                                   config.hidden_dim, rng_),
                 true),
      w_reset_h_(nn::XavierUniform(config.hidden_dim, config.hidden_dim,
                                   rng_),
                 true),
      b_reset_(nn::Tensor({config.hidden_dim}), true),
      w_cand_x_(nn::XavierUniform(config.embedding_dim, config.hidden_dim,
                                  rng_),
                true),
      w_cand_h_(nn::XavierUniform(config.hidden_dim, config.hidden_dim,
                                  rng_),
                true),
      b_cand_(nn::Tensor({config.hidden_dim}), true),
      negative_sampler_(static_cast<int32_t>(num_items)) {
  IMSR_CHECK_EQ(config.embedding_dim, config.hidden_dim)
      << "hidden state doubles as the user representation, so it must "
         "match the item embedding dimension";
}

std::vector<nn::Var> Gru4RecModel::Parameters() {
  return {embeddings_.parameter(),
          w_update_x_, w_update_h_, b_update_,
          w_reset_x_,  w_reset_h_,  b_reset_,
          w_cand_x_,   w_cand_h_,   b_cand_};
}

nn::Var Gru4RecModel::ForwardHidden(
    const std::vector<data::ItemId>& history) {
  IMSR_CHECK(!history.empty());
  nn::Var items = embeddings_.Lookup(history);  // (n x d)
  nn::Var hidden(nn::Tensor({config_.hidden_dim}));  // h_0 = 0, constant

  // One (1 x d_h)-shaped helper for row-vector matmuls.
  const int64_t n = static_cast<int64_t>(history.size());
  for (int64_t t = 0; t < n; ++t) {
    nn::Var x = ops::RowVector(items, t);  // (d)
    // z = sigma(Wzx x + Wzh h + bz); r likewise; h~ = tanh(Wcx x +
    // Wch (r * h) + bc); h = (1-z) * h + z * h~.
    auto affine = [&](const nn::Var& wx, const nn::Var& wh,
                      const nn::Var& bias, const nn::Var& h_input) {
      nn::Var xw = ops::MatVec(ops::Transpose(wx), x);
      nn::Var hw = ops::MatVec(ops::Transpose(wh), h_input);
      return ops::Add(ops::Add(xw, hw), bias);
    };
    nn::Var z = ops::Sigmoid(affine(w_update_x_, w_update_h_, b_update_,
                                    hidden));
    nn::Var r = ops::Sigmoid(affine(w_reset_x_, w_reset_h_, b_reset_,
                                    hidden));
    nn::Var candidate = ops::Tanh(affine(
        w_cand_x_, w_cand_h_, b_cand_, ops::Mul(r, hidden)));
    nn::Var keep = ops::Mul(ops::Scale(ops::AddScalar(z, -1.0f), -1.0f),
                            hidden);  // (1 - z) * h
    hidden = ops::Add(keep, ops::Mul(z, candidate));
  }
  return hidden;
}

void Gru4RecModel::TrainSpan(const data::Dataset& dataset, int span) {
  nn::Adam optimizer(config_.learning_rate);
  for (const nn::Var& parameter : Parameters()) {
    optimizer.Register(parameter);
  }
  const std::vector<data::TrainingSample> samples =
      data::BuildSpanSamples(dataset, span, config_.max_history);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::vector<size_t> order(samples.size());
    std::iota(order.begin(), order.end(), 0);
    rng_.Shuffle(order);
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(config_.batch_size)) {
      const size_t end = std::min(
          order.size(), begin + static_cast<size_t>(config_.batch_size));
      nn::Var batch_loss;
      for (size_t i = begin; i < end; ++i) {
        const data::TrainingSample& sample = samples[order[i]];
        nn::Var hidden = ForwardHidden(sample.history);
        std::vector<data::ItemId> candidates = {sample.target};
        const std::vector<data::ItemId> negatives =
            negative_sampler_.Sample(config_.negatives, sample.target,
                                     rng_);
        candidates.insert(candidates.end(), negatives.begin(),
                          negatives.end());
        nn::Var loss = models::SampledSoftmaxLoss(
            hidden, embeddings_.Lookup(candidates));
        batch_loss =
            batch_loss.defined() ? ops::Add(batch_loss, loss) : loss;
      }
      if (!batch_loss.defined()) continue;
      batch_loss =
          ops::Scale(batch_loss, 1.0f / static_cast<float>(end - begin));
      batch_loss.Backward();
      optimizer.Step();
      optimizer.ZeroGradAll();
    }
  }
}

void Gru4RecModel::RefreshRepresentations(const data::Dataset& dataset,
                                          int span) {
  for (data::UserId user : dataset.active_users(span)) {
    std::vector<data::ItemId> items = dataset.user_span(user, span).all;
    if (items.empty()) continue;
    if (static_cast<int>(items.size()) > config_.max_history) {
      items.erase(items.begin(), items.end() - config_.max_history);
    }
    if (!store_.Has(user)) {
      store_.Initialize(user, 1, config_.hidden_dim, span, rng_);
    }
    const nn::Tensor hidden = ForwardHidden(items).value();
    store_.SetInterests(user, hidden.Reshape({1, config_.hidden_dim}));
  }
}

}  // namespace imsr::baselines
