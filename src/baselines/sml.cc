#include "baselines/sml.h"

#include <cmath>
#include <vector>

#include "models/aggregator.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "util/math_util.h"

namespace imsr::baselines {
namespace {

// Gate-MLP input features per embedding row.
constexpr int64_t kGateFeatures = 4;

class SmlStrategy : public core::LearningStrategy {
 public:
  SmlStrategy(const core::StrategyConfig& config, models::MsrModel* model,
              core::InterestStore* store)
      : LearningStrategy(model, store),
        config_(config),
        trainer_(model, store, FineTuneTrainConfig(config)),
        rng_(config.train.seed ^ 0x5351ULL) {}

  void Pretrain(const data::Dataset& dataset) override {
    trainer_.Pretrain(dataset);
  }

  void TrainIncrementalSpan(const data::Dataset& dataset,
                            int span) override {
    // Snapshot theta_{t-1}, fine-tune to theta_t, then blend.
    const nn::Tensor old_table = model_->embeddings().parameter().value();
    std::vector<nn::Tensor> old_shared;
    for (const nn::Var& p : model_->extractor().SharedParameters()) {
      old_shared.push_back(p.value());
    }

    trainer_.TrainSpan(dataset, span);

    const double mean_gate = TrainAndApplyGates(dataset, span, old_table);

    // Blend the shared extractor weights with the mean gate. The blend is
    // kept gentle (>= 0.5 toward the new weights) so the extractor stays
    // consistent with the freshly trained embeddings.
    const auto extractor_gate =
        static_cast<float>(std::max(mean_gate, 0.5));
    auto shared = model_->extractor().SharedParameters();
    for (size_t i = 0; i < shared.size(); ++i) {
      nn::Tensor blended = nn::Scale(shared[i].value(), extractor_gate);
      blended.AddScaledInPlace(old_shared[i], 1.0f - extractor_gate);
      shared[i].mutable_value() = blended;
    }

    trainer_.RefreshInterests(dataset, span);
  }

 private:
  static core::TrainConfig FineTuneTrainConfig(
      const core::StrategyConfig& config) {
    core::TrainConfig train = config.train;
    train.eir.kind = core::RetentionKind::kNone;
    train.enable_expansion = false;
    train.persist_interests = false;
    return train;
  }

  // Per-row features from the old/new embedding tables.
  nn::Tensor GateFeatures(const nn::Tensor& old_table,
                          const nn::Tensor& new_table) const {
    const int64_t rows = old_table.size(0);
    const int64_t dim = old_table.size(1);
    nn::Tensor features({rows, kGateFeatures});
    for (int64_t i = 0; i < rows; ++i) {
      double old_ss = 0.0;
      double new_ss = 0.0;
      double dot = 0.0;
      for (int64_t j = 0; j < dim; ++j) {
        const double o = old_table.at(i, j);
        const double n = new_table.at(i, j);
        old_ss += o * o;
        new_ss += n * n;
        dot += o * n;
      }
      const double denom = std::sqrt(old_ss * new_ss);
      features.at(i, 0) = static_cast<float>(std::sqrt(old_ss));
      features.at(i, 1) = static_cast<float>(std::sqrt(new_ss));
      features.at(i, 2) =
          static_cast<float>(denom > 1e-12 ? dot / denom : 0.0);
      features.at(i, 3) = 1.0f;  // bias
    }
    return features;
  }

  // Trains the gate MLP on the span's validation items and writes the
  // blended table into the model. Returns the mean gate value.
  double TrainAndApplyGates(const data::Dataset& dataset, int span,
                            const nn::Tensor& old_table) {
    const nn::Tensor new_table = model_->embeddings().parameter().value();
    const nn::Tensor features = GateFeatures(old_table, new_table);
    const nn::Var features_const(features);
    const nn::Var old_const(old_table);
    const nn::Var new_const(new_table);

    // Shared gate MLP: features (I x 4) -> tanh hidden -> sigmoid gate.
    const int64_t hidden = config_.sml_hidden;
    nn::Var w1(nn::XavierUniform(kGateFeatures, hidden, rng_),
               /*requires_grad=*/true);
    nn::Var w2(nn::XavierUniform(hidden, 1, rng_), /*requires_grad=*/true);
    nn::Adam adam(config_.sml_transfer_lr);
    adam.Register(w1);
    adam.Register(w2);

    // Validation instances: (user, validation item) of this span.
    struct ValidationSample {
      data::UserId user;
      data::ItemId item;
    };
    std::vector<ValidationSample> samples;
    for (data::UserId user : dataset.active_users(span)) {
      const data::UserSpanData& span_data = dataset.user_span(user, span);
      if (span_data.valid >= 0 && store_->Has(user)) {
        samples.push_back({user, span_data.valid});
      }
      if (static_cast<int>(samples.size()) >=
          config_.sml_max_transfer_samples) {
        break;
      }
    }

    data::NegativeSampler negatives(
        static_cast<int32_t>(model_->num_items()));
    const int kNegatives = config_.train.negatives;

    auto gates_graph = [&]() {
      nn::Var hidden_act =
          nn::ops::Tanh(nn::ops::MatMul(features_const, w1));
      // Bias +1.2 starts the gates near sigma(1.2) ~ 0.77: mostly the new
      // parameters, with the transfer module learning where to pull
      // toward the old ones.
      return nn::ops::Sigmoid(nn::ops::AddScalar(
          nn::ops::MatMul(hidden_act, w2), 1.2f));  // (I x 1)
    };

    for (int epoch = 0; epoch < config_.sml_transfer_epochs; ++epoch) {
      if (samples.empty()) break;
      nn::Var gates = gates_graph();
      nn::Var loss;
      for (const ValidationSample& sample : samples) {
        std::vector<data::ItemId> candidates = {sample.item};
        const std::vector<data::ItemId> negs =
            negatives.Sample(kNegatives, sample.item, rng_);
        candidates.insert(candidates.end(), negs.begin(), negs.end());
        std::vector<int64_t> indices(candidates.begin(), candidates.end());

        // Blended candidate embeddings: g * new + (1 - g) * old.
        nn::Var g_cand = nn::ops::Reshape(
            nn::ops::GatherRows(gates, indices),
            {static_cast<int64_t>(indices.size())});
        nn::Var cand_new = nn::ops::GatherRows(new_const, indices);
        nn::Var cand_old = nn::ops::GatherRows(old_const, indices);
        nn::Var blended = nn::ops::Add(
            nn::ops::ScaleRows(cand_new, g_cand),
            nn::ops::Sub(cand_old,
                         nn::ops::ScaleRows(cand_old, g_cand)));

        // Score candidates against the user's stored interests.
        const nn::Tensor v = models::AttentiveAggregateNoGrad(
            store_->Interests(sample.user),
            new_table.Row(sample.item));
        nn::Var scores = nn::ops::MatVec(blended, nn::Var(v));
        nn::Var sample_loss = nn::ops::NegLogSoftmax(scores, 0);
        loss = loss.defined() ? nn::ops::Add(loss, sample_loss)
                              : sample_loss;
      }
      loss = nn::ops::Scale(loss,
                            1.0f / static_cast<float>(samples.size()));
      loss.Backward();
      adam.Step();
      adam.ZeroGradAll();
    }

    // Apply the learned gates to the embedding table.
    const nn::Tensor gates = gates_graph().value();
    nn::Tensor blended = new_table;
    double gate_total = 0.0;
    const int64_t dim = blended.size(1);
    for (int64_t i = 0; i < blended.size(0); ++i) {
      const float g = gates.at(i, 0);
      gate_total += g;
      for (int64_t j = 0; j < dim; ++j) {
        blended.at(i, j) =
            g * new_table.at(i, j) + (1.0f - g) * old_table.at(i, j);
      }
    }
    model_->embeddings().parameter().mutable_value() = blended;
    return gate_total / static_cast<double>(blended.size(0));
  }

  core::StrategyConfig config_;
  core::ImsrTrainer trainer_;
  util::Rng rng_;
};

}  // namespace

std::unique_ptr<core::LearningStrategy> CreateSmlStrategy(
    const core::StrategyConfig& config, models::MsrModel* model,
    core::InterestStore* store) {
  return std::make_unique<SmlStrategy>(config, model, store);
}

}  // namespace imsr::baselines
