// GRU4Rec-style single-interest sequential recommender [Hidasi et al.
// 2015], the class of models the paper's introduction argues against:
// one preference vector per user, no multi-interest structure. Serves as
// the motivating baseline — multi-interest extractors beat it whenever
// users genuinely have several concurrent interests — and doubles as a
// recurrent-network exercise for the autograd substrate.
#ifndef IMSR_BASELINES_GRU4REC_H_
#define IMSR_BASELINES_GRU4REC_H_

#include <vector>

#include "core/interest_store.h"
#include "data/sampler.h"
#include "models/embedding.h"
#include "nn/optim.h"

namespace imsr::baselines {

struct Gru4RecConfig {
  int64_t embedding_dim = 32;
  int64_t hidden_dim = 32;
  int epochs = 5;
  int batch_size = 64;
  float learning_rate = 0.005f;
  int negatives = 10;
  int max_history = 30;
  uint64_t seed = 21;
};

// A single-layer GRU over the item sequence; the final hidden state is
// the user representation (a 1-interest "interest set" for evaluation).
class Gru4RecModel {
 public:
  Gru4RecModel(const Gru4RecConfig& config, int64_t num_items);

  // Graph-building forward over one history -> hidden state (d) Var.
  nn::Var ForwardHidden(const std::vector<data::ItemId>& history);

  // Trains on one span's next-item samples.
  void TrainSpan(const data::Dataset& dataset, int span);

  // Recomputes each active user's representation from the span's items
  // into the interest store (K = 1 row per user).
  void RefreshRepresentations(const data::Dataset& dataset, int span);

  const core::InterestStore& representations() const { return store_; }
  const nn::Tensor& item_embeddings() const {
    return embeddings_.parameter().value();
  }

  // Trainable parameters (exposed for tests).
  std::vector<nn::Var> Parameters();

 private:
  Gru4RecConfig config_;
  util::Rng rng_;
  models::EmbeddingTable embeddings_;
  // GRU gates: update z, reset r, candidate h~. Each maps [x; h] -> d_h
  // via input and recurrent weights plus bias.
  nn::Var w_update_x_, w_update_h_, b_update_;
  nn::Var w_reset_x_, w_reset_h_, b_reset_;
  nn::Var w_cand_x_, w_cand_h_, b_cand_;
  core::InterestStore store_;
  data::NegativeSampler negative_sampler_;
};

}  // namespace imsr::baselines

#endif  // IMSR_BASELINES_GRU4REC_H_
