// SML baseline [Huang et al. 2020]: after fine-tuning on the new span, a
// learned *transfer module* combines the previous span's parameters with
// the freshly trained ones. Our reduction (see DESIGN.md §1): a per-row
// gating network over the embedding table — each item row's gate is
// produced by a small shared MLP (equivalent to a 1x1 convolution over the
// stacked old/new tables) from features [||old||, ||new||, cos(old,new),
// 1], trained on the span's validation interactions; the shared extractor
// weights are blended with the mean gate.
#ifndef IMSR_BASELINES_SML_H_
#define IMSR_BASELINES_SML_H_

#include <memory>

#include "core/strategies.h"

namespace imsr::baselines {

std::unique_ptr<core::LearningStrategy> CreateSmlStrategy(
    const core::StrategyConfig& config, models::MsrModel* model,
    core::InterestStore* store);

}  // namespace imsr::baselines

#endif  // IMSR_BASELINES_SML_H_
