// Dynamic-routing multi-interest extractor (§III-1): a shared affine
// transform into the behaviour-capsule plane followed by B2I routing.
// Covers both ComiRec-DR (zero logit noise) and, via subclassing, MIND
// (random logit initialisation) — the two differ only in routing-logit
// initialisation (paper §V-A3).
#ifndef IMSR_MODELS_COMIREC_DR_H_
#define IMSR_MODELS_COMIREC_DR_H_

#include <vector>

#include "models/capsule_routing.h"
#include "models/extractor.h"

namespace imsr::models {

class DynamicRoutingExtractor : public MultiInterestExtractor {
 public:
  DynamicRoutingExtractor(int64_t embedding_dim, const RoutingConfig& config,
                          util::Rng& rng);

  ExtractorKind kind() const override { return ExtractorKind::kComiRecDr; }

  nn::Var Forward(const nn::Var& item_embeddings,
                  const nn::Tensor& interest_init,
                  data::UserId user) override;

  // One shared-transform MatMul for the whole batch (Eq. 3 is row-wise,
  // so stacked histories ride through it unchanged), then per-sample
  // routing over row slices of the result.
  void ForwardBatch(const nn::Var& flat_item_embeddings,
                    const std::vector<int64_t>& offsets,
                    const std::vector<const nn::Tensor*>& interest_inits,
                    const std::vector<data::UserId>& users,
                    std::vector<nn::Var>* out) override;

  // On by default; IMSR_FUSED_READOUT=0 in the environment forces the
  // reference chain instead (same escape-hatch convention as IMSR_SIMD,
  // see nn/simd.h) — for A/B timing and for bisecting numeric surprises
  // to the fused node.
  bool SupportsFusedRepr() const override;

  // Shared-transform MatMul once for the batch, then per sample: frozen
  // B2I routing over the slice values and ONE fused readout node
  // (models::RoutedAttentiveReadout) straight to the user
  // representation — the 7-nodes-per-sample reference chain collapsed
  // to 1. Routing consumes the extractor rng in ascending sample order,
  // the same stream order as per-sample Forward calls.
  void ForwardReprBatch(const nn::Var& flat_item_embeddings,
                        const std::vector<int64_t>& offsets,
                        const std::vector<const nn::Tensor*>& interest_inits,
                        const std::vector<data::UserId>& users,
                        const nn::Var& target_embeddings,
                        std::vector<nn::Var>* reprs) override;

  nn::Tensor ForwardNoGrad(const nn::Tensor& item_embeddings,
                           const nn::Tensor& interest_init,
                           data::UserId user) override;

  std::vector<nn::Var> SharedParameters() override { return {transform_}; }

  void Reset(util::Rng& rng) override;

  void Save(util::BinaryWriter* writer) const override;
  bool Load(util::BinaryReader* reader, std::string* error) override;
  void CopyStateFrom(const MultiInterestExtractor& other) override;

  const nn::Var& transform() const { return transform_; }

 private:
  int64_t embedding_dim_;
  RoutingConfig routing_config_;
  nn::Var transform_;  // W^t in Eq. 3, (d x d)
  util::Rng rng_;      // drives MIND's logit noise
};

}  // namespace imsr::models

#endif  // IMSR_MODELS_COMIREC_DR_H_
