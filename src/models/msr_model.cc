#include "models/msr_model.h"

#include "models/comirec_dr.h"
#include "models/comirec_sa.h"
#include "models/mind.h"

namespace imsr::models {
namespace {

std::unique_ptr<MultiInterestExtractor> MakeExtractor(
    const ModelConfig& config, util::Rng& rng) {
  switch (config.kind) {
    case ExtractorKind::kMind:
      return std::make_unique<MindExtractor>(config.embedding_dim,
                                             config.routing_iterations,
                                             config.mind_logit_noise, rng);
    case ExtractorKind::kComiRecDr:
      return std::make_unique<DynamicRoutingExtractor>(
          config.embedding_dim,
          RoutingConfig{config.routing_iterations, 0.0f}, rng);
    case ExtractorKind::kComiRecSa:
      return std::make_unique<SelfAttentionExtractor>(
          config.embedding_dim, config.attention_dim, rng);
  }
  IMSR_CHECK(false) << "unreachable extractor kind";
}

}  // namespace

MsrModel::MsrModel(const ModelConfig& config, int64_t num_items,
                   uint64_t seed)
    : config_(config),
      rng_(seed),
      embeddings_(num_items, config.embedding_dim, rng_),
      extractor_(MakeExtractor(config, rng_)) {}

std::vector<nn::Var> MsrModel::SharedParameters() {
  std::vector<nn::Var> parameters = {embeddings_.parameter()};
  for (const nn::Var& p : extractor_->SharedParameters()) {
    parameters.push_back(p);
  }
  return parameters;
}

nn::Tensor MsrModel::ExportItemEmbeddings() const {
  return embeddings_.parameter().value().Clone();
}

nn::Var MsrModel::ForwardInterests(
    const std::vector<data::ItemId>& history,
    const nn::Tensor& interest_init, data::UserId user) {
  IMSR_CHECK(!history.empty());
  nn::Var item_embeddings = embeddings_.Lookup(history);
  return extractor_->Forward(item_embeddings, interest_init, user);
}

void MsrModel::ForwardInterestsBatch(
    const std::vector<data::ItemId>& flat_history,
    const std::vector<int64_t>& offsets,
    const std::vector<const nn::Tensor*>& interest_inits,
    const std::vector<data::UserId>& users, std::vector<nn::Var>* out) {
  IMSR_CHECK(!flat_history.empty());
  nn::Var flat_embeddings = embeddings_.Lookup(flat_history);
  extractor_->ForwardBatch(flat_embeddings, offsets, interest_inits, users,
                           out);
}

bool MsrModel::ForwardReprsBatch(
    const std::vector<data::ItemId>& flat_history,
    const std::vector<int64_t>& offsets,
    const std::vector<const nn::Tensor*>& interest_inits,
    const std::vector<data::UserId>& users,
    const nn::Var& target_embeddings, std::vector<nn::Var>* reprs) {
  if (!extractor_->SupportsFusedRepr()) return false;
  IMSR_CHECK(!flat_history.empty());
  nn::Var flat_embeddings = embeddings_.Lookup(flat_history);
  extractor_->ForwardReprBatch(flat_embeddings, offsets, interest_inits,
                               users, target_embeddings, reprs);
  return true;
}

nn::Tensor MsrModel::ForwardInterestsNoGrad(
    const std::vector<data::ItemId>& history,
    const nn::Tensor& interest_init, data::UserId user) {
  IMSR_CHECK(!history.empty());
  const nn::Tensor item_embeddings = embeddings_.LookupNoGrad(history);
  return extractor_->ForwardNoGrad(item_embeddings, interest_init, user);
}

void MsrModel::Reset(uint64_t seed) {
  rng_ = util::Rng(seed);
  embeddings_.Reset(rng_);
  extractor_->Reset(rng_);
}

void MsrModel::Save(util::BinaryWriter* writer) const {
  writer->WriteString("imsr-msr-model-v1");
  writer->WriteString(ExtractorKindName(config_.kind));
  embeddings_.Save(writer);
  extractor_->Save(writer);
}

bool MsrModel::Load(util::BinaryReader* reader, std::string* error) {
  std::string magic;
  std::string kind;
  if (!reader->TryReadString(&magic) || !reader->TryReadString(&kind)) {
    *error = reader->error();
    return false;
  }
  if (magic != "imsr-msr-model-v1") {
    *error = "bad model section magic '" + magic + "'";
    return false;
  }
  if (kind != ExtractorKindName(config_.kind)) {
    *error = "extractor kind mismatch: checkpoint has '" + kind +
             "', model expects '" + ExtractorKindName(config_.kind) + "'";
    return false;
  }
  return embeddings_.Load(reader, error) && extractor_->Load(reader, error);
}

void MsrModel::CopyStateFrom(const MsrModel& other) {
  IMSR_CHECK(other.config_.kind == config_.kind);
  IMSR_CHECK_EQ(other.config_.embedding_dim, config_.embedding_dim);
  embeddings_.CopyFrom(other.embeddings_);
  extractor_->CopyStateFrom(*other.extractor_);
}

}  // namespace imsr::models
