#include "models/comirec_sa.h"

#include <cmath>

#include "nn/init.h"
#include "nn/ops.h"

namespace imsr::models {

SelfAttentionExtractor::SelfAttentionExtractor(int64_t embedding_dim,
                                               int64_t attention_dim,
                                               util::Rng& rng)
    : embedding_dim_(embedding_dim),
      attention_dim_(attention_dim),
      w1_(nn::XavierUniform(embedding_dim, attention_dim, rng),
          /*requires_grad=*/true) {}

nn::Var SelfAttentionExtractor::Forward(const nn::Var& item_embeddings,
                                        const nn::Tensor& interest_init,
                                        data::UserId user) {
  auto it = user_query_.find(user);
  IMSR_CHECK(it != user_query_.end())
      << "EnsureUserCapacity must run before Forward for user " << user;
  const nn::Var& w_user = it->second;
  IMSR_CHECK_EQ(w_user.value().size(1), interest_init.size(0))
      << "user query width must match the stored interest count";
  // Eq. 8 in row-major orientation: A^T = softmax_over_items(
  //   (W_u^T tanh(E W1))^T ), H = A^T E.
  nn::Var hidden = nn::ops::Tanh(nn::ops::MatMul(item_embeddings, w1_));
  nn::Var logits = nn::ops::MatMul(hidden, w_user);        // (n x K)
  nn::Var attention = nn::ops::Softmax(nn::ops::Transpose(logits));
  return nn::ops::MatMul(attention, item_embeddings);      // (K x d)
}

nn::Tensor SelfAttentionExtractor::ForwardNoGrad(
    const nn::Tensor& item_embeddings, const nn::Tensor& interest_init,
    data::UserId user) {
  auto it = user_query_.find(user);
  IMSR_CHECK(it != user_query_.end())
      << "EnsureUserCapacity must run before ForwardNoGrad for user "
      << user;
  const nn::Tensor& w_user = it->second.value();
  IMSR_CHECK_EQ(w_user.size(1), interest_init.size(0));
  const nn::Tensor hidden =
      nn::Tanh(nn::MatMul(item_embeddings, w1_.value()));
  const nn::Tensor logits = nn::MatMul(hidden, w_user);
  const nn::Tensor attention = nn::Softmax(nn::Transpose(logits));
  return nn::MatMul(attention, item_embeddings);
}

nn::Tensor SelfAttentionExtractor::RandomQueryColumns(
    int64_t columns, util::Rng& rng) const {
  const float bound = std::sqrt(
      6.0f / static_cast<float>(attention_dim_ + columns));
  return nn::Tensor::RandUniform({attention_dim_, columns}, rng, -bound,
                                 bound);
}

void SelfAttentionExtractor::EnsureUserCapacity(data::UserId user,
                                                int64_t num_interests,
                                                util::Rng& rng,
                                                nn::Optimizer* optimizer) {
  IMSR_CHECK_GT(num_interests, 0);
  auto it = user_query_.find(user);
  if (it == user_query_.end()) {
    nn::Var query(RandomQueryColumns(num_interests, rng),
                  /*requires_grad=*/true);
    user_query_.emplace(user, query);
    if (optimizer != nullptr) optimizer->Register(query);
    return;
  }
  const int64_t current = it->second.value().size(1);
  if (current >= num_interests) return;
  // Grow: copy existing columns, append fresh random ones.
  nn::Tensor grown({attention_dim_, num_interests});
  const nn::Tensor fresh = RandomQueryColumns(num_interests - current, rng);
  for (int64_t r = 0; r < attention_dim_; ++r) {
    for (int64_t c = 0; c < current; ++c) {
      grown.at(r, c) = it->second.value().at(r, c);
    }
    for (int64_t c = current; c < num_interests; ++c) {
      grown.at(r, c) = fresh.at(r, c - current);
    }
  }
  nn::Var replacement(std::move(grown), /*requires_grad=*/true);
  if (optimizer != nullptr) {
    optimizer->Unregister(it->second);
    optimizer->Register(replacement);
  }
  it->second = replacement;
}

void SelfAttentionExtractor::KeepUserInterests(
    data::UserId user, const std::vector<int64_t>& kept,
    nn::Optimizer* optimizer) {
  auto it = user_query_.find(user);
  IMSR_CHECK(it != user_query_.end());
  IMSR_CHECK(!kept.empty()) << "a user must keep at least one interest";
  const nn::Tensor& current = it->second.value();
  nn::Tensor shrunk({attention_dim_, static_cast<int64_t>(kept.size())});
  for (size_t c = 0; c < kept.size(); ++c) {
    IMSR_CHECK(kept[c] >= 0 && kept[c] < current.size(1));
    for (int64_t r = 0; r < attention_dim_; ++r) {
      shrunk.at(r, static_cast<int64_t>(c)) = current.at(r, kept[c]);
    }
  }
  nn::Var replacement(std::move(shrunk), /*requires_grad=*/true);
  if (optimizer != nullptr) {
    optimizer->Unregister(it->second);
    optimizer->Register(replacement);
  }
  it->second = replacement;
}

void SelfAttentionExtractor::Reset(util::Rng& rng) {
  w1_.mutable_value() =
      nn::XavierUniform(embedding_dim_, attention_dim_, rng);
  w1_.ZeroGrad();
  user_query_.clear();
}

void SelfAttentionExtractor::Save(util::BinaryWriter* writer) const {
  writer->WriteInt64(embedding_dim_);
  writer->WriteInt64(attention_dim_);
  writer->WriteFloatArray(w1_.value().data(),
                          static_cast<size_t>(w1_.value().numel()));
  writer->WriteInt64(static_cast<int64_t>(user_query_.size()));
  for (const auto& [user, query] : user_query_) {
    writer->WriteInt64(user);
    writer->WriteInt64(query.value().size(1));
    writer->WriteFloatArray(query.value().data(),
                            static_cast<size_t>(query.value().numel()));
  }
}

void SelfAttentionExtractor::Load(util::BinaryReader* reader) {
  IMSR_CHECK_EQ(reader->ReadInt64(), embedding_dim_);
  IMSR_CHECK_EQ(reader->ReadInt64(), attention_dim_);
  reader->ReadFloatArray(w1_.mutable_value().data(),
                         static_cast<size_t>(w1_.value().numel()));
  user_query_.clear();
  const int64_t count = reader->ReadInt64();
  for (int64_t i = 0; i < count; ++i) {
    const auto user = static_cast<data::UserId>(reader->ReadInt64());
    const int64_t columns = reader->ReadInt64();
    nn::Tensor query({attention_dim_, columns});
    reader->ReadFloatArray(query.data(),
                           static_cast<size_t>(query.numel()));
    user_query_.emplace(user, nn::Var(std::move(query),
                                      /*requires_grad=*/true));
  }
}

int64_t SelfAttentionExtractor::UserCapacity(data::UserId user) const {
  auto it = user_query_.find(user);
  return it == user_query_.end() ? 0 : it->second.value().size(1);
}

const nn::Var& SelfAttentionExtractor::UserQuery(data::UserId user) const {
  auto it = user_query_.find(user);
  IMSR_CHECK(it != user_query_.end());
  return it->second;
}

}  // namespace imsr::models
