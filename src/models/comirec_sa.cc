#include "models/comirec_sa.h"

#include <cmath>

#include "nn/init.h"
#include "nn/ops.h"

namespace imsr::models {

SelfAttentionExtractor::SelfAttentionExtractor(int64_t embedding_dim,
                                               int64_t attention_dim,
                                               util::Rng& rng)
    : embedding_dim_(embedding_dim),
      attention_dim_(attention_dim),
      w1_(nn::XavierUniform(embedding_dim, attention_dim, rng),
          /*requires_grad=*/true) {}

nn::Var SelfAttentionExtractor::Forward(const nn::Var& item_embeddings,
                                        const nn::Tensor& interest_init,
                                        data::UserId user) {
  auto it = user_query_.find(user);
  IMSR_CHECK(it != user_query_.end())
      << "EnsureUserCapacity must run before Forward for user " << user;
  const nn::Var& w_user = it->second;
  IMSR_CHECK_EQ(w_user.value().size(1), interest_init.size(0))
      << "user query width must match the stored interest count";
  // Eq. 8 in row-major orientation: A^T = softmax_over_items(
  //   (W_u^T tanh(E W1))^T ), H = A^T E.
  nn::Var hidden = nn::ops::Tanh(nn::ops::MatMul(item_embeddings, w1_));
  nn::Var logits = nn::ops::MatMul(hidden, w_user);        // (n x K)
  nn::Var attention = nn::ops::Softmax(nn::ops::Transpose(logits));
  return nn::ops::MatMul(attention, item_embeddings);      // (K x d)
}

nn::Tensor SelfAttentionExtractor::ForwardNoGrad(
    const nn::Tensor& item_embeddings, const nn::Tensor& interest_init,
    data::UserId user) {
  auto it = user_query_.find(user);
  IMSR_CHECK(it != user_query_.end())
      << "EnsureUserCapacity must run before ForwardNoGrad for user "
      << user;
  const nn::Tensor& w_user = it->second.value();
  IMSR_CHECK_EQ(w_user.size(1), interest_init.size(0));
  const nn::Tensor hidden =
      nn::Tanh(nn::MatMul(item_embeddings, w1_.value()));
  const nn::Tensor logits = nn::MatMul(hidden, w_user);
  const nn::Tensor attention = nn::Softmax(nn::Transpose(logits));
  return nn::MatMul(attention, item_embeddings);
}

nn::Tensor SelfAttentionExtractor::RandomQueryColumns(
    int64_t columns, util::Rng& rng) const {
  const float bound = std::sqrt(
      6.0f / static_cast<float>(attention_dim_ + columns));
  return nn::Tensor::RandUniform({attention_dim_, columns}, rng, -bound,
                                 bound);
}

void SelfAttentionExtractor::EnsureUserCapacity(data::UserId user,
                                                int64_t num_interests,
                                                util::Rng& rng,
                                                nn::Optimizer* optimizer) {
  IMSR_CHECK_GT(num_interests, 0);
  auto it = user_query_.find(user);
  if (it == user_query_.end()) {
    nn::Var query(RandomQueryColumns(num_interests, rng),
                  /*requires_grad=*/true);
    user_query_.emplace(user, query);
    if (optimizer != nullptr) optimizer->Register(query);
    return;
  }
  const int64_t current = it->second.value().size(1);
  if (current >= num_interests) return;
  // Grow: copy existing columns, append fresh random ones.
  nn::Tensor grown({attention_dim_, num_interests});
  const nn::Tensor fresh = RandomQueryColumns(num_interests - current, rng);
  for (int64_t r = 0; r < attention_dim_; ++r) {
    for (int64_t c = 0; c < current; ++c) {
      grown.at(r, c) = it->second.value().at(r, c);
    }
    for (int64_t c = current; c < num_interests; ++c) {
      grown.at(r, c) = fresh.at(r, c - current);
    }
  }
  nn::Var replacement(std::move(grown), /*requires_grad=*/true);
  if (optimizer != nullptr) {
    optimizer->Unregister(it->second);
    optimizer->Register(replacement);
  }
  it->second = replacement;
}

void SelfAttentionExtractor::KeepUserInterests(
    data::UserId user, const std::vector<int64_t>& kept,
    nn::Optimizer* optimizer) {
  auto it = user_query_.find(user);
  IMSR_CHECK(it != user_query_.end());
  IMSR_CHECK(!kept.empty()) << "a user must keep at least one interest";
  const nn::Tensor& current = it->second.value();
  nn::Tensor shrunk({attention_dim_, static_cast<int64_t>(kept.size())});
  for (size_t c = 0; c < kept.size(); ++c) {
    IMSR_CHECK(kept[c] >= 0 && kept[c] < current.size(1));
    for (int64_t r = 0; r < attention_dim_; ++r) {
      shrunk.at(r, static_cast<int64_t>(c)) = current.at(r, kept[c]);
    }
  }
  nn::Var replacement(std::move(shrunk), /*requires_grad=*/true);
  if (optimizer != nullptr) {
    optimizer->Unregister(it->second);
    optimizer->Register(replacement);
  }
  it->second = replacement;
}

void SelfAttentionExtractor::Reset(util::Rng& rng) {
  w1_.mutable_value() =
      nn::XavierUniform(embedding_dim_, attention_dim_, rng);
  w1_.ZeroGrad();
  user_query_.clear();
}

void SelfAttentionExtractor::Save(util::BinaryWriter* writer) const {
  writer->WriteInt64(embedding_dim_);
  writer->WriteInt64(attention_dim_);
  writer->WriteFloatArray(w1_.value().data(),
                          static_cast<size_t>(w1_.value().numel()));
  writer->WriteInt64(static_cast<int64_t>(user_query_.size()));
  for (const auto& [user, query] : user_query_) {
    writer->WriteInt64(user);
    writer->WriteInt64(query.value().size(1));
    writer->WriteFloatArray(query.value().data(),
                            static_cast<size_t>(query.value().numel()));
  }
}

bool SelfAttentionExtractor::Load(util::BinaryReader* reader,
                                  std::string* error) {
  auto propagate = [&] {
    *error = reader->error();
    return false;
  };
  int64_t embedding_dim = 0;
  int64_t attention_dim = 0;
  if (!reader->TryReadInt64(&embedding_dim) ||
      !reader->TryReadInt64(&attention_dim)) {
    return propagate();
  }
  if (embedding_dim != embedding_dim_ || attention_dim != attention_dim_) {
    *error = "extractor dims mismatch: checkpoint has (" +
             std::to_string(embedding_dim) + ", " +
             std::to_string(attention_dim) + "), model expects (" +
             std::to_string(embedding_dim_) + ", " +
             std::to_string(attention_dim_) + ")";
    return false;
  }
  nn::Tensor w1({embedding_dim_, attention_dim_});
  if (!reader->TryReadFloatArray(w1.data(),
                                 static_cast<size_t>(w1.numel()))) {
    return propagate();
  }
  int64_t count = 0;
  if (!reader->TryReadInt64(&count)) return propagate();
  if (count < 0 ||
      static_cast<uint64_t>(count) > reader->remaining() / sizeof(int64_t)) {
    *error = "corrupt user-query count " + std::to_string(count);
    return false;
  }
  std::unordered_map<data::UserId, nn::Var> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    int64_t user = 0;
    int64_t columns = 0;
    if (!reader->TryReadInt64(&user) || !reader->TryReadInt64(&columns)) {
      return propagate();
    }
    // Bound the width so the (attention_dim x columns) allocation cannot
    // exceed the bytes actually present in the buffer.
    if (columns <= 0 ||
        static_cast<uint64_t>(columns) >
            reader->remaining() / sizeof(float) /
                static_cast<uint64_t>(attention_dim_)) {
      *error = "corrupt query width " + std::to_string(columns) +
               " for user " + std::to_string(user);
      return false;
    }
    nn::Tensor query({attention_dim_, columns});
    if (!reader->TryReadFloatArray(query.data(),
                                   static_cast<size_t>(query.numel()))) {
      return propagate();
    }
    queries.emplace(static_cast<data::UserId>(user),
                    nn::Var(std::move(query), /*requires_grad=*/true));
  }
  w1_.mutable_value() = std::move(w1);
  user_query_ = std::move(queries);
  return true;
}

void SelfAttentionExtractor::CopyStateFrom(
    const MultiInterestExtractor& other) {
  const auto& source = dynamic_cast<const SelfAttentionExtractor&>(other);
  IMSR_CHECK_EQ(source.embedding_dim_, embedding_dim_);
  IMSR_CHECK_EQ(source.attention_dim_, attention_dim_);
  w1_.mutable_value() = source.w1_.value();
  user_query_.clear();
  for (const auto& [user, query] : source.user_query_) {
    user_query_.emplace(user, nn::Var(query.value().Clone(),
                                      /*requires_grad=*/true));
  }
}

int64_t SelfAttentionExtractor::UserCapacity(data::UserId user) const {
  auto it = user_query_.find(user);
  return it == user_query_.end() ? 0 : it->second.value().size(1);
}

const nn::Var& SelfAttentionExtractor::UserQuery(data::UserId user) const {
  auto it = user_query_.find(user);
  IMSR_CHECK(it != user_query_.end());
  return it->second;
}

}  // namespace imsr::models
