// ComiRec's controllable re-ranking (Cen et al. 2020, §"Controllable
// study"): after retrieving candidates with the multi-interest model, a
// greedy selection trades accuracy against diversity,
//   argmax_i  score(u, i) + lambda * sum_{j in S} delta(cat(i) != cat(j)),
// where delta rewards covering categories not yet in the selected set S.
// The paper under reproduction builds on ComiRec; the controllable module
// completes the base framework.
#ifndef IMSR_MODELS_DIVERSITY_H_
#define IMSR_MODELS_DIVERSITY_H_

#include <utility>
#include <vector>

#include "data/interaction.h"

namespace imsr::models {

// Item categories can come from generator ground truth or any taxonomy.
struct DiversityConfig {
  // Trade-off factor lambda: 0 = pure accuracy ranking.
  double lambda = 0.1;
  int top_n = 20;
};

// Greedy controllable selection from scored candidates.
// `candidates` holds (item, relevance score) pairs — typically the top-M
// output of eval::TopNItems with M > top_n; `item_category` maps every
// item id to a category. Returns the re-ranked top-N.
std::vector<std::pair<data::ItemId, float>> ControllableRerank(
    const std::vector<std::pair<data::ItemId, float>>& candidates,
    const std::vector<int>& item_category, const DiversityConfig& config);

// Diversity of a recommendation list: fraction of pairs with different
// categories (the ComiRec paper's Diversity@N metric).
double ListDiversity(const std::vector<std::pair<data::ItemId, float>>& items,
                     const std::vector<int>& item_category);

}  // namespace imsr::models

#endif  // IMSR_MODELS_DIVERSITY_H_
