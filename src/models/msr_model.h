// MSR model facade: embedding table + multi-interest extractor, with
// construction from a declarative config, parameter enumeration for
// optimisers, reset (full retraining) and checkpointing.
#ifndef IMSR_MODELS_MSR_MODEL_H_
#define IMSR_MODELS_MSR_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "models/embedding.h"
#include "models/extractor.h"

namespace imsr::models {

struct ModelConfig {
  ExtractorKind kind = ExtractorKind::kComiRecDr;
  int64_t embedding_dim = 32;   // d
  int64_t attention_dim = 32;   // d_a (ComiRec-SA)
  int routing_iterations = 3;   // L
  float mind_logit_noise = 0.1f;
};

class MsrModel {
 public:
  MsrModel(const ModelConfig& config, int64_t num_items, uint64_t seed);

  MsrModel(const MsrModel&) = delete;
  MsrModel& operator=(const MsrModel&) = delete;

  const ModelConfig& config() const { return config_; }
  int64_t num_items() const { return embeddings_.num_items(); }

  EmbeddingTable& embeddings() { return embeddings_; }
  const EmbeddingTable& embeddings() const { return embeddings_; }
  MultiInterestExtractor& extractor() { return *extractor_; }

  // Embedding + shared extractor parameters (per-user SA queries are
  // registered separately when created).
  std::vector<nn::Var> SharedParameters();

  // Deep copy of the (num_items x d) item-embedding values, detached from
  // the Var/autograd machinery — the frozen table a ServingSnapshot is
  // built from (see src/serve/snapshot.h).
  nn::Tensor ExportItemEmbeddings() const;

  // Graph-building interest extraction for one user history.
  nn::Var ForwardInterests(const std::vector<data::ItemId>& history,
                           const nn::Tensor& interest_init,
                           data::UserId user);
  // Batched counterpart over concatenated histories: one embedding
  // gather for all of `flat_history` (sample b owns rows [offsets[b],
  // offsets[b+1])), then the extractor's batched forward. Appends one
  // (K x d) Var per sample to `out`.
  void ForwardInterestsBatch(
      const std::vector<data::ItemId>& flat_history,
      const std::vector<int64_t>& offsets,
      const std::vector<const nn::Tensor*>& interest_inits,
      const std::vector<data::UserId>& users, std::vector<nn::Var>* out);
  // Fused fast path: one embedding gather for `flat_history`, then the
  // extractor's ForwardReprBatch straight to the per-sample user
  // representations (one graph node per sample). Returns false without
  // building anything when the extractor lacks a fused path — the
  // caller falls back to ForwardInterestsBatch + aggregation.
  bool ForwardReprsBatch(
      const std::vector<data::ItemId>& flat_history,
      const std::vector<int64_t>& offsets,
      const std::vector<const nn::Tensor*>& interest_inits,
      const std::vector<data::UserId>& users,
      const nn::Var& target_embeddings, std::vector<nn::Var>* reprs);
  // No-grad counterpart.
  nn::Tensor ForwardInterestsNoGrad(
      const std::vector<data::ItemId>& history,
      const nn::Tensor& interest_init, data::UserId user);

  // Re-initialises every parameter from `seed` (full retraining).
  void Reset(uint64_t seed);

  void Save(util::BinaryWriter* writer) const;
  // Fallible restore; returns false with a description on corrupt input or
  // configuration mismatch. The model may be partially overwritten on
  // failure — for all-or-nothing semantics load into a staging model and
  // CopyStateFrom it on success (what core::LoadCheckpoint does).
  bool Load(util::BinaryReader* reader, std::string* error);
  // Copies all learned state (embeddings + extractor) from `other`, which
  // must have the same configuration and item count (checked). Parameter
  // handles are preserved, so optimizer registrations stay valid.
  void CopyStateFrom(const MsrModel& other);

  util::Rng& rng() { return rng_; }

 private:
  ModelConfig config_;
  util::Rng rng_;
  EmbeddingTable embeddings_;
  std::unique_ptr<MultiInterestExtractor> extractor_;
};

}  // namespace imsr::models

#endif  // IMSR_MODELS_MSR_MODEL_H_
