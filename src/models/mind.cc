#include "models/mind.h"

#include "util/check.h"

namespace imsr::models {

const char* ExtractorKindName(ExtractorKind kind) {
  switch (kind) {
    case ExtractorKind::kMind:
      return "MIND";
    case ExtractorKind::kComiRecDr:
      return "ComiRec-DR";
    case ExtractorKind::kComiRecSa:
      return "ComiRec-SA";
  }
  return "?";
}

ExtractorKind ExtractorKindFromName(const std::string& name) {
  if (name == "MIND" || name == "mind") return ExtractorKind::kMind;
  if (name == "ComiRec-DR" || name == "dr") return ExtractorKind::kComiRecDr;
  if (name == "ComiRec-SA" || name == "sa") return ExtractorKind::kComiRecSa;
  IMSR_CHECK(false) << "unknown extractor kind '" << name << "'";
}

}  // namespace imsr::models
