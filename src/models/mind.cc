#include "models/mind.h"

#include "util/check.h"

namespace imsr::models {

const char* ExtractorKindName(ExtractorKind kind) {
  switch (kind) {
    case ExtractorKind::kMind:
      return "MIND";
    case ExtractorKind::kComiRecDr:
      return "ComiRec-DR";
    case ExtractorKind::kComiRecSa:
      return "ComiRec-SA";
  }
  return "?";
}

bool ExtractorKindFromName(const std::string& name, ExtractorKind* kind,
                           std::string* error) {
  IMSR_CHECK(kind != nullptr);
  if (name == "MIND" || name == "mind") {
    *kind = ExtractorKind::kMind;
    return true;
  }
  if (name == "ComiRec-DR" || name == "dr") {
    *kind = ExtractorKind::kComiRecDr;
    return true;
  }
  if (name == "ComiRec-SA" || name == "sa") {
    *kind = ExtractorKind::kComiRecSa;
    return true;
  }
  if (error != nullptr) {
    *error = "unknown extractor kind '" + name +
             "' (valid: MIND|mind, ComiRec-DR|dr, ComiRec-SA|sa)";
  }
  return false;
}

}  // namespace imsr::models
