// Target-attentive interest aggregation (Eq. 5): the user representation
// v_u is the softmax-weighted combination of the interest vectors, with
// the target (or candidate) item embedding as the query.
#ifndef IMSR_MODELS_AGGREGATOR_H_
#define IMSR_MODELS_AGGREGATOR_H_

#include "nn/variable.h"

namespace imsr::models {

// Graph version used during training: `interests` (K x d),
// `target_embedding` (d) -> v_u (d).
nn::Var AttentiveAggregate(const nn::Var& interests,
                           const nn::Var& target_embedding);

// No-grad version used at inference.
nn::Tensor AttentiveAggregateNoGrad(const nn::Tensor& interests,
                                    const nn::Tensor& target_embedding);

// Inference score of one candidate item under the attentive rule
// (Algorithm 2's inference step): v_u(e_i) . e_i.
float AttentiveScore(const nn::Tensor& interests,
                     const nn::Tensor& item_embedding);

// ComiRec's serving rule: max_k h_k . e_i.
float MaxInterestScore(const nn::Tensor& interests,
                       const nn::Tensor& item_embedding);

}  // namespace imsr::models

#endif  // IMSR_MODELS_AGGREGATOR_H_
