#include "models/interest_readout.h"

#include <cmath>
#include <utility>

#include "nn/simd.h"
#include "nn/tensor.h"
#include "util/check.h"
#include "util/hot.h"

namespace imsr::models {
namespace {

// Backward for the fused readout. Runs the seven unfused closures'
// arithmetic in their reverse-post-order execution order
// (MatVecTransA, Softmax, MatVec, RowVector, SquashRows, MatMulTransA,
// RowSlice), with each loop copied verbatim from nn/ops.cc so every
// output element sees the exact accumulation order of the reference
// chain. `raw` is C^T E (pre-squash), `interests` its squashed rows,
// `beta` the attention weights — all captured from the forward.
IMSR_HOT_BEGIN
IMSR_SIMD_CLONES
void ReadoutBackward(nn::VarNode& node, const nn::Tensor& raw,
                     const nn::Tensor& interests, const nn::Tensor& beta,
                     const nn::Tensor& coupling, int64_t begin,
                     int64_t target_row) {
  nn::VarNode* e_hat_all = node.parents[0];
  nn::VarNode* targets = node.parents[1];
  const bool need_e = e_hat_all->requires_grad;
  const bool need_t = targets->requires_grad;
  if (!need_e && !need_t) return;
  const int64_t k = interests.size(0);
  const int64_t d = interests.size(1);
  const float* __restrict__ g = node.grad.data();
  const float* __restrict__ ph = interests.data();
  const float* __restrict__ pb = beta.data();

  // MatVecTransA: dH = beta g^T (outer product, order-preserving).
  nn::Tensor g_interests;
  float* pgh = nullptr;
  if (need_e) {
    g_interests = nn::Tensor::Uninitialized({k, d});
    pgh = g_interests.data();
    for (int64_t i = 0; i < k; ++i) {
      const float bi = pb[i];
      float* __restrict__ o = pgh + i * d;
      IMSR_SIMD_PRAGMA()
      for (int64_t j = 0; j < d; ++j) o[j] = bi * g[j];
    }
  }
  // MatVecTransA: dbeta = H g (row dots through the reduction dispatch).
  nn::Tensor g_beta = nn::Tensor::Uninitialized({k});
  for (int64_t i = 0; i < k; ++i) {
    g_beta.at(i) = nn::DotSpan(ph + i * d, g, d);
  }
  // Softmax: dlogits = beta * (dbeta - <dbeta, beta>).
  nn::Tensor g_logits = nn::Tensor::Uninitialized({k});
  {
    const float* __restrict__ gb = g_beta.data();
    float* __restrict__ gl = g_logits.data();
    const float dot = nn::DotSpan(gb, pb, k);
    IMSR_SIMD_PRAGMA()
    for (int64_t i = 0; i < k; ++i) gl[i] = pb[i] * (gb[i] - dot);
  }
  const float* __restrict__ gl = g_logits.data();
  // MatVec: dH += dlogits e_t^T — the reference materialises this outer
  // product then merges it via AccumulateGrad; adding in place performs
  // the identical per-element addition.
  if (need_e) {
    const float* __restrict__ pt =
        targets->value.data() + target_row * d;
    for (int64_t i = 0; i < k; ++i) {
      const float gi = gl[i];
      float* __restrict__ o = pgh + i * d;
      IMSR_SIMD_PRAGMA()
      for (int64_t j = 0; j < d; ++j) o[j] += gi * pt[j];
    }
  }
  // MatVec: de_t = H^T dlogits (saxpy over ascending i), merged into the
  // target row exactly as the RowVector backward does.
  if (need_t) {
    nn::Tensor g_target({d});
    float* __restrict__ po = g_target.data();
    for (int64_t i = 0; i < k; ++i) {
      const float gi = gl[i];
      const float* __restrict__ hrow = ph + i * d;
      IMSR_SIMD_PRAGMA()
      for (int64_t j = 0; j < d; ++j) po[j] += gi * hrow[j];
    }
    targets->AccumulateGradRows(g_target, target_row);
  }
  if (!need_e) return;
  // SquashRows: dL/dv = c g + (c'(n)/n) (v . g) v per row of `raw`.
  nn::Tensor g_raw = nn::Tensor::Uninitialized({k, d});
  for (int64_t i = 0; i < k; ++i) {
    const float* __restrict__ v = raw.data() + i * d;
    const float* __restrict__ gr = pgh + i * d;
    float* __restrict__ o = g_raw.data() + i * d;
    const float ss = nn::DotSpan(v, v, d);
    const float vg = nn::DotSpan(v, gr, d);
    const float n = std::sqrt(ss);
    if (n < 1e-12f) {
      for (int64_t j = 0; j < d; ++j) o[j] = 0.0f;
      continue;
    }
    const float c = n / (1.0f + ss);
    const float c_prime = (1.0f - ss) / ((1.0f + ss) * (1.0f + ss));
    const float radial = c_prime / n * vg;
    IMSR_SIMD_PRAGMA()
    for (int64_t j = 0; j < d; ++j) o[j] = c * gr[j] + radial * v[j];
  }
  // MatMulTransA: dE = C draw; coupling is frozen so its branch is
  // skipped, matching the no-grad coupling Var of the reference chain.
  nn::Tensor g_e = nn::MatMul(coupling, g_raw);
  // RowSlice: merge into the shared-transform output's rows. A
  // full-range slice takes the reference path's batch==1 bypass (no
  // slice node), whose first-accumulation move it reproduces here.
  if (begin == 0 && g_e.size(0) == e_hat_all->value.size(0)) {
    e_hat_all->AccumulateGrad(std::move(g_e));
  } else {
    e_hat_all->AccumulateGradRows(g_e, begin);
  }
}
IMSR_HOT_END

}  // namespace

nn::Var RoutedAttentiveReadout(const nn::Var& e_hat_all, int64_t begin,
                               const nn::Tensor& e_hat_slice,
                               nn::Tensor coupling,
                               const nn::Var& target_embeddings,
                               int64_t target_row) {
  IMSR_CHECK_EQ(e_hat_slice.dim(), 2);
  IMSR_CHECK_EQ(coupling.size(0), e_hat_slice.size(0));
  const int64_t d = e_hat_slice.size(1);
  const int64_t k = coupling.size(1);
  IMSR_CHECK_EQ(target_embeddings.value().size(1), d);
  IMSR_CHECK_LE(begin + e_hat_slice.size(0), e_hat_all.value().size(0));
  // Eq. 4 through the unfused path's kernels: H = squash_rows(C^T E).
  nn::Tensor raw = nn::MatMulTransA(coupling, e_hat_slice);
  nn::Tensor interests = nn::SquashRows(raw);
  // Eq. 5: beta = softmax(H e_t), v = H^T beta. The logits read the
  // target row in place via the same per-row dot dispatch as nn::MatVec.
  const float* target = target_embeddings.value().data() + target_row * d;
  nn::Tensor logits = nn::Tensor::Uninitialized({k});
  for (int64_t i = 0; i < k; ++i) {
    logits.at(i) = nn::DotSpan(interests.data() + i * d, target, d);
  }
  nn::Tensor beta = nn::Softmax(logits);
  nn::Tensor v = nn::MatVecTransA(interests, beta);
  return nn::Var::MakeNode(
      std::move(v), {e_hat_all, target_embeddings},
      [raw = std::move(raw), interests = std::move(interests),
       beta = std::move(beta), coupling = std::move(coupling), begin,
       target_row](nn::VarNode& node) {
        ReadoutBackward(node, raw, interests, beta, coupling, begin,
                        target_row);
      });
}

}  // namespace imsr::models
