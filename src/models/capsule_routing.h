// Behaviour-to-Interest (B2I) dynamic routing (Eq. 4) shared by the MIND
// and ComiRec-DR extractors. Routing coefficients are computed outside the
// autograd graph and treated as constants in the backward pass (see
// DESIGN.md §1).
#ifndef IMSR_MODELS_CAPSULE_ROUTING_H_
#define IMSR_MODELS_CAPSULE_ROUTING_H_

#include "nn/tensor.h"
#include "util/rng.h"

namespace imsr::models {

struct RoutingConfig {
  int iterations = 3;
  // Stddev of Gaussian noise added to the initial logits (MIND initialises
  // logits randomly; ComiRec-DR uses 0).
  float logit_noise = 0.0f;
};

// Runs B2I routing of the transformed behaviour capsules `e_hat` (n x d)
// against `interest_init` (K x d), the user's stored interest vectors that
// seed the routing logits (b_ik = e_hat_i . h_k). Returns the final
// coupling matrix C (n x K): the interest capsules are
// H = squash(C^T e_hat).
nn::Tensor B2IRouting(const nn::Tensor& e_hat,
                      const nn::Tensor& interest_init,
                      const RoutingConfig& config, util::Rng* rng);

}  // namespace imsr::models

#endif  // IMSR_MODELS_CAPSULE_ROUTING_H_
