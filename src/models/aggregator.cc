#include "models/aggregator.h"

#include <algorithm>

#include "nn/ops.h"

namespace imsr::models {

nn::Var AttentiveAggregate(const nn::Var& interests,
                           const nn::Var& target_embedding) {
  // beta = softmax(H e_a); v = H^T beta. The fused transposed-operand op
  // keeps the accumulation order of MatVec(Transpose(H), beta) — bitwise
  // identical — without materialising H^T in the forward or the backward
  // pass.
  nn::Var logits = nn::ops::MatVec(interests, target_embedding);  // (K)
  nn::Var beta = nn::ops::Softmax(logits);
  return nn::ops::MatVecTransA(interests, beta);                  // (d)
}

nn::Tensor AttentiveAggregateNoGrad(const nn::Tensor& interests,
                                    const nn::Tensor& target_embedding) {
  const nn::Tensor logits = nn::MatVec(interests, target_embedding);
  const nn::Tensor beta = nn::Softmax(logits);
  return nn::MatVecTransA(interests, beta);
}

float AttentiveScore(const nn::Tensor& interests,
                     const nn::Tensor& item_embedding) {
  const nn::Tensor v = AttentiveAggregateNoGrad(interests, item_embedding);
  return nn::DotFlat(v, item_embedding);
}

float MaxInterestScore(const nn::Tensor& interests,
                       const nn::Tensor& item_embedding) {
  const nn::Tensor logits = nn::MatVec(interests, item_embedding);
  float best = logits.at(0);
  for (int64_t k = 1; k < logits.numel(); ++k) {
    best = std::max(best, logits.at(k));
  }
  return best;
}

}  // namespace imsr::models
