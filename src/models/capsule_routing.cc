#include "models/capsule_routing.h"

#include "obs/obs.h"
#include "util/check.h"

namespace imsr::models {

nn::Tensor B2IRouting(const nn::Tensor& e_hat,
                      const nn::Tensor& interest_init,
                      const RoutingConfig& config, util::Rng* rng) {
  IMSR_TRACE_SPAN("model/b2i_routing");
  IMSR_CHECK_EQ(e_hat.dim(), 2);
  IMSR_CHECK_EQ(interest_init.dim(), 2);
  IMSR_CHECK_EQ(e_hat.size(1), interest_init.size(1));
  IMSR_CHECK_GE(config.iterations, 1);

  const int64_t n = e_hat.size(0);
  const int64_t k = interest_init.size(0);

  // Logits seeded by similarity to the stored interests — this is how
  // existing interests persist across spans in the incremental setting.
  nn::Tensor logits = nn::MatMulTransB(e_hat, interest_init);
  if (config.logit_noise > 0.0f) {
    IMSR_CHECK(rng != nullptr) << "logit noise requires an Rng";
    for (int64_t i = 0; i < logits.numel(); ++i) {
      logits.data()[i] +=
          static_cast<float>(rng->Gaussian(0.0, config.logit_noise));
    }
  }

  // The iteration's temporaries live in reused scratch buffers: the Into
  // kernels resize once and overwrite in place every round, so the loop's
  // only storage traffic is the initial acquisition.
  nn::Tensor coupling;
  nn::Tensor votes;     // MatMulTransA(coupling, e_hat), (k x d)
  nn::Tensor capsules;  // squash(votes), (k x d)
  nn::Tensor update;    // MatMulTransB(e_hat, capsules), (n x k)
  for (int iter = 0; iter < config.iterations; ++iter) {
    // Votes: each behaviour distributes attention across interests.
    nn::SoftmaxInto(logits, &coupling);
    if (iter + 1 == config.iterations) break;
    // Candidate capsules from the current coupling, then logit update
    // b_ik += e_hat_i . h_k.
    nn::MatMulTransAInto(coupling, e_hat, &votes);
    nn::SquashRowsInto(votes, &capsules);
    nn::MatMulTransBInto(e_hat, capsules, &update);
    logits.AddInPlace(update);
  }
  IMSR_CHECK_EQ(coupling.size(0), n);
  IMSR_CHECK_EQ(coupling.size(1), k);
  return coupling;
}

}  // namespace imsr::models
