#include "models/capsule_routing.h"

#include "obs/obs.h"
#include "util/check.h"

namespace imsr::models {

nn::Tensor B2IRouting(const nn::Tensor& e_hat,
                      const nn::Tensor& interest_init,
                      const RoutingConfig& config, util::Rng* rng) {
  IMSR_TRACE_SPAN("model/b2i_routing");
  IMSR_CHECK_EQ(e_hat.dim(), 2);
  IMSR_CHECK_EQ(interest_init.dim(), 2);
  IMSR_CHECK_EQ(e_hat.size(1), interest_init.size(1));
  IMSR_CHECK_GE(config.iterations, 1);

  const int64_t n = e_hat.size(0);
  const int64_t k = interest_init.size(0);

  // Logits seeded by similarity to the stored interests — this is how
  // existing interests persist across spans in the incremental setting.
  nn::Tensor logits = nn::MatMulTransB(e_hat, interest_init);
  if (config.logit_noise > 0.0f) {
    IMSR_CHECK(rng != nullptr) << "logit noise requires an Rng";
    for (int64_t i = 0; i < logits.numel(); ++i) {
      logits.data()[i] +=
          static_cast<float>(rng->Gaussian(0.0, config.logit_noise));
    }
  }

  nn::Tensor coupling({n, k});
  for (int iter = 0; iter < config.iterations; ++iter) {
    // Votes: each behaviour distributes attention across interests.
    coupling = nn::Softmax(logits);
    if (iter + 1 == config.iterations) break;
    // Candidate capsules from the current coupling, then logit update
    // b_ik += e_hat_i . h_k.
    const nn::Tensor capsules =
        nn::SquashRows(nn::MatMulTransA(coupling, e_hat));
    logits.AddInPlace(nn::MatMulTransB(e_hat, capsules));
  }
  return coupling;
}

}  // namespace imsr::models
