#include "models/sampled_softmax.h"

#include "nn/ops.h"
#include "obs/obs.h"

namespace imsr::models {

nn::Var SampledSoftmaxLoss(const nn::Var& user_repr,
                           const nn::Var& candidates) {
  IMSR_TRACE_SPAN("model/sampled_softmax");
  nn::Var scores = nn::ops::MatVec(candidates, user_repr);
  return nn::ops::NegLogSoftmax(scores, /*target=*/0);
}

}  // namespace imsr::models
