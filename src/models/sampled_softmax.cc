#include "models/sampled_softmax.h"

#include <utility>
#include <vector>

#include "nn/ops.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "obs/obs.h"
#include "util/hot.h"

namespace imsr::models {
namespace {

// Backward for the fused batch loss. Mirrors the NegLogSoftmax + MatVec
// closure pair per sample: the score gradient of candidate c is
// probs(b,c)*g (minus g on the positive), each candidate row receives
// its outer product with the sample's representation, and the
// representation gradient is the saxpy over the sample's block in
// ascending row order. Every loop keeps the scalar accumulation order,
// so the simd annotation is unconditional (see nn/simd.h).
IMSR_HOT_BEGIN
IMSR_SIMD_CLONES
void BatchLossBackward(nn::VarNode& node, const nn::Tensor& probs) {
  nn::VarNode* cands = node.parents[0];
  const int64_t batch = probs.size(0);
  const int64_t block = probs.size(1);
  const int64_t d = cands->value.size(1);
  const float g = node.grad.at(0);
  const float* __restrict__ pp = probs.data();
  const float* __restrict__ pc = cands->value.data();
  nn::Tensor gc;
  float* pgc = nullptr;
  if (cands->requires_grad) {
    gc = nn::Tensor::Uninitialized(cands->value.shape());
    pgc = gc.data();
  }
  for (int64_t b = 0; b < batch; ++b) {
    nn::VarNode* repr = node.parents[static_cast<size_t>(1 + b)];
    const float* __restrict__ pr = repr->value.data();
    if (pgc != nullptr) {
      for (int64_t c = 0; c < block; ++c) {
        float gs = pp[b * block + c] * g;
        if (c == 0) gs -= g;
        float* __restrict__ orow = pgc + (b * block + c) * d;
        IMSR_SIMD_PRAGMA()
        for (int64_t j = 0; j < d; ++j) orow[j] = gs * pr[j];
      }
    }
    if (repr->requires_grad) {
      nn::Tensor gr({d});
      float* __restrict__ po = gr.data();
      const float* __restrict__ cblock = pc + b * block * d;
      for (int64_t c = 0; c < block; ++c) {
        float gs = pp[b * block + c] * g;
        if (c == 0) gs -= g;
        const float* __restrict__ crow = cblock + c * d;
        IMSR_SIMD_PRAGMA()
        for (int64_t j = 0; j < d; ++j) po[j] += gs * crow[j];
      }
      repr->AccumulateGrad(std::move(gr));
    }
  }
  if (pgc != nullptr) cands->AccumulateGrad(std::move(gc));
}
IMSR_HOT_END

}  // namespace

nn::Var SampledSoftmaxLoss(const nn::Var& user_repr,
                           const nn::Var& candidates) {
  IMSR_TRACE_SPAN("model/sampled_softmax");
  nn::Var scores = nn::ops::MatVec(candidates, user_repr);
  return nn::ops::NegLogSoftmax(scores, /*target=*/0);
}

nn::Var SampledSoftmaxBatchLoss(const std::vector<nn::Var>& user_reprs,
                                const nn::Var& candidates,
                                int64_t candidates_per_sample) {
  IMSR_TRACE_SPAN("model/sampled_softmax_batch");
  const auto batch = static_cast<int64_t>(user_reprs.size());
  const int64_t block = candidates_per_sample;
  IMSR_CHECK_GT(batch, 0);
  IMSR_CHECK_GT(block, 0);
  const nn::Tensor& cands = candidates.value();
  IMSR_CHECK_EQ(cands.dim(), 2);
  IMSR_CHECK_EQ(cands.size(0), batch * block);
  const int64_t d = cands.size(1);

  // Scores per block, via the same per-row dot kernel as nn::MatVec: row
  // b of `scores` equals MatVec(block_b, v_b) bit for bit.
  nn::Tensor scores = nn::Tensor::Uninitialized({batch, block});
  float* ps = scores.data();
  for (int64_t b = 0; b < batch; ++b) {
    const nn::Tensor& repr = user_reprs[static_cast<size_t>(b)].value();
    IMSR_CHECK_EQ(repr.numel(), d);
    const float* base = cands.data() + b * block * d;
    for (int64_t c = 0; c < block; ++c) {
      ps[b * block + c] = nn::DotSpan(base + c * d, repr.data(), d);
    }
  }

  // Per-sample losses summed in ascending order — the same left-fold the
  // per-sample path's Add chain produces.
  const nn::Tensor lse = nn::LogSumExpRows(scores);
  nn::Tensor out({1});
  float total = 0.0f;
  for (int64_t b = 0; b < batch; ++b) {
    total += lse.at(b) - ps[b * block];
  }
  out.at(0) = total;

  // Probabilities feed only the backward pass; skip them when no tape
  // will be built (validation under NoGradGuard).
  bool wants_grad = candidates.requires_grad();
  for (const nn::Var& repr : user_reprs) {
    wants_grad = wants_grad || repr.requires_grad();
  }
  nn::Tensor probs;
  if (nn::GradEnabled() && wants_grad) probs = nn::Softmax(scores);

  // Parent scratch persists across calls (capacity only); cleared before
  // returning so pooled buffers it pins are released with the graph.
  thread_local std::vector<nn::Var> parents;
  parents.clear();
  parents.reserve(static_cast<size_t>(1 + batch));
  parents.push_back(candidates);
  for (const nn::Var& repr : user_reprs) parents.push_back(repr);
  nn::Var result = nn::Var::MakeNode(
      std::move(out), parents,
      [probs = std::move(probs)](nn::VarNode& node) {
        BatchLossBackward(node, probs);
      });
  parents.clear();
  return result;
}

}  // namespace imsr::models
