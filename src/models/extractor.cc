#include "models/extractor.h"

#include "nn/ops.h"
#include "util/check.h"

namespace imsr::models {

void MultiInterestExtractor::ForwardBatch(
    const nn::Var& flat_item_embeddings, const std::vector<int64_t>& offsets,
    const std::vector<const nn::Tensor*>& interest_inits,
    const std::vector<data::UserId>& users, std::vector<nn::Var>* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK_GE(offsets.size(), 2u);
  const size_t batch = offsets.size() - 1;
  IMSR_CHECK_EQ(interest_inits.size(), batch);
  IMSR_CHECK_EQ(users.size(), batch);
  for (size_t b = 0; b < batch; ++b) {
    const nn::Var item_embeddings =
        batch == 1 ? flat_item_embeddings
                   : nn::ops::RowSlice(flat_item_embeddings, offsets[b],
                                       offsets[b + 1]);
    out->push_back(Forward(item_embeddings, *interest_inits[b], users[b]));
  }
}

void MultiInterestExtractor::ForwardReprBatch(
    const nn::Var& /*flat_item_embeddings*/,
    const std::vector<int64_t>& /*offsets*/,
    const std::vector<const nn::Tensor*>& /*interest_inits*/,
    const std::vector<data::UserId>& /*users*/,
    const nn::Var& /*target_embeddings*/, std::vector<nn::Var>* /*reprs*/) {
  IMSR_CHECK(false) << "ForwardReprBatch called on an extractor without a "
                       "fused path; check SupportsFusedRepr() first";
}

}  // namespace imsr::models
