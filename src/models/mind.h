// MIND extractor (§III-1, [Li et al. 2019]): dynamic routing with a shared
// bilinear mapping matrix and randomly initialised routing logits. Shares
// the routing machinery with ComiRec-DR; the distinguishing behaviour is
// the Gaussian noise on the initial logits.
#ifndef IMSR_MODELS_MIND_H_
#define IMSR_MODELS_MIND_H_

#include "models/comirec_dr.h"

namespace imsr::models {

class MindExtractor : public DynamicRoutingExtractor {
 public:
  MindExtractor(int64_t embedding_dim, int routing_iterations,
                float logit_noise, util::Rng& rng)
      : DynamicRoutingExtractor(
            embedding_dim,
            RoutingConfig{routing_iterations, logit_noise}, rng) {}

  ExtractorKind kind() const override { return ExtractorKind::kMind; }
};

}  // namespace imsr::models

#endif  // IMSR_MODELS_MIND_H_
