// Fused per-sample readout for the batched training forward: one graph
// node covering Eq. 4 (squashed capsule readout) + Eq. 5 (attentive
// aggregation) per sample, in place of the seven-node reference chain
// RowSlice -> MatMulTransA -> SquashRows -> RowVector -> MatVec ->
// Softmax -> MatVecTransA. The per-sample graph tax (node construction,
// pooled intermediates, backward-closure dispatch) dominates the
// training step at paper-scale shapes (K=4, d=32), so collapsing the
// chain is worth far more than any kernel-level win inside it — see
// DESIGN.md section 11.
#ifndef IMSR_MODELS_INTEREST_READOUT_H_
#define IMSR_MODELS_INTEREST_READOUT_H_

#include "nn/variable.h"

namespace imsr::models {

// Computes the sample's user representation
//   H    = squash_rows(C^T E)     (K x d, Eq. 4)
//   beta = softmax(H e_t)         (K)
//   v    = H^T beta               (d, Eq. 5)
// where E = rows [begin, begin + e_hat_slice.rows) of `e_hat_all` (the
// batch's shared-transform output), C = `coupling` (the sample's frozen
// routing weights, no gradient) and e_t = row `target_row` of
// `target_embeddings`.
//
// Returns v as ONE node with parents {e_hat_all, target_embeddings}.
// Every forward kernel and every backward loop replicates the unfused
// chain's computation and accumulation order bit for bit (same
// scalar/SIMD reduction dispatch, same outer-product/saxpy orders, same
// gradient-merge order into each parent), so losses and parameter
// updates are bitwise identical to the reference path — trainer_test
// asserts this at batch_size = 1 and readout tests assert it per node.
//
// `e_hat_slice` must hold a copy of the value rows [begin, begin +
// slice.rows) of `e_hat_all`; the caller already materialised that copy
// to run B2I routing, so the forward reuses it instead of re-slicing.
nn::Var RoutedAttentiveReadout(const nn::Var& e_hat_all, int64_t begin,
                               const nn::Tensor& e_hat_slice,
                               nn::Tensor coupling,
                               const nn::Var& target_embeddings,
                               int64_t target_row);

}  // namespace imsr::models

#endif  // IMSR_MODELS_INTEREST_READOUT_H_
