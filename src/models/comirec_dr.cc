#include "models/comirec_dr.h"

#include "models/interest_readout.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "util/check.h"
#include "util/env.h"

namespace imsr::models {

DynamicRoutingExtractor::DynamicRoutingExtractor(
    int64_t embedding_dim, const RoutingConfig& config, util::Rng& rng)
    : embedding_dim_(embedding_dim),
      routing_config_(config),
      transform_(nn::XavierUniform(embedding_dim, embedding_dim, rng),
                 /*requires_grad=*/true),
      rng_(rng.Fork()) {}

nn::Var DynamicRoutingExtractor::Forward(const nn::Var& item_embeddings,
                                         const nn::Tensor& interest_init,
                                         data::UserId /*user*/) {
  // Eq. 3: behaviour capsules via the shared affine transform.
  nn::Var e_hat = nn::ops::MatMul(item_embeddings, transform_);
  // Routing runs outside the graph; coefficients enter as constants.
  const nn::Var coupling(
      B2IRouting(e_hat.value(), interest_init, routing_config_, &rng_));
  // Eq. 4: h_k = squash(sum_i c_ik e_hat_i). The fused transposed-operand
  // op keeps MatMul(Transpose(C), e_hat)'s accumulation order — bitwise
  // identical — without materialising C^T.
  return nn::ops::SquashRows(nn::ops::MatMulTransA(coupling, e_hat));
}

void DynamicRoutingExtractor::ForwardBatch(
    const nn::Var& flat_item_embeddings, const std::vector<int64_t>& offsets,
    const std::vector<const nn::Tensor*>& interest_inits,
    const std::vector<data::UserId>& users, std::vector<nn::Var>* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK_GE(offsets.size(), 2u);
  const size_t batch = offsets.size() - 1;
  IMSR_CHECK_EQ(interest_inits.size(), batch);
  IMSR_CHECK_EQ(users.size(), batch);
  // Eq. 3 once for the stacked histories; each row transforms
  // independently, so every sample's slice carries the exact bits its
  // own Forward would have produced.
  nn::Var e_hat_all = nn::ops::MatMul(flat_item_embeddings, transform_);
  for (size_t b = 0; b < batch; ++b) {
    nn::Var e_hat =
        batch == 1 ? e_hat_all
                   : nn::ops::RowSlice(e_hat_all, offsets[b], offsets[b + 1]);
    const nn::Var coupling(B2IRouting(e_hat.value(), *interest_inits[b],
                                      routing_config_, &rng_));
    out->push_back(
        nn::ops::SquashRows(nn::ops::MatMulTransA(coupling, e_hat)));
  }
}

bool DynamicRoutingExtractor::SupportsFusedRepr() const {
  // Shared on/off env semantics (util/env.h): IMSR_FUSED_READOUT=0|off|
  // false|no forces the unfused reference chain, garbage warns and keeps
  // the default (fused).
  static const bool enabled =
      util::EnvEnabled("IMSR_FUSED_READOUT", /*default_value=*/true);
  return enabled;
}

void DynamicRoutingExtractor::ForwardReprBatch(
    const nn::Var& flat_item_embeddings, const std::vector<int64_t>& offsets,
    const std::vector<const nn::Tensor*>& interest_inits,
    const std::vector<data::UserId>& /*users*/,
    const nn::Var& target_embeddings, std::vector<nn::Var>* reprs) {
  IMSR_CHECK(reprs != nullptr);
  IMSR_CHECK_GE(offsets.size(), 2u);
  const size_t batch = offsets.size() - 1;
  IMSR_CHECK_EQ(interest_inits.size(), batch);
  nn::Var e_hat_all = nn::ops::MatMul(flat_item_embeddings, transform_);
  for (size_t b = 0; b < batch; ++b) {
    // The slice values feed routing and the fused node's forward; the
    // backward reaches e_hat_all's rows directly, so no slice node (and
    // no slice gradient) ever exists.
    const nn::Tensor e_hat =
        e_hat_all.value().RowSlice(offsets[b], offsets[b + 1]);
    nn::Tensor coupling =
        B2IRouting(e_hat, *interest_inits[b], routing_config_, &rng_);
    reprs->push_back(RoutedAttentiveReadout(
        e_hat_all, offsets[b], e_hat, std::move(coupling),
        target_embeddings, static_cast<int64_t>(b)));
  }
}

nn::Tensor DynamicRoutingExtractor::ForwardNoGrad(
    const nn::Tensor& item_embeddings, const nn::Tensor& interest_init,
    data::UserId /*user*/) {
  const nn::Tensor e_hat = nn::MatMul(item_embeddings, transform_.value());
  const nn::Tensor coupling =
      B2IRouting(e_hat, interest_init, routing_config_, &rng_);
  return nn::SquashRows(nn::MatMulTransA(coupling, e_hat));
}

void DynamicRoutingExtractor::Reset(util::Rng& rng) {
  transform_.mutable_value() =
      nn::XavierUniform(embedding_dim_, embedding_dim_, rng);
  transform_.ZeroGrad();
}

void DynamicRoutingExtractor::Save(util::BinaryWriter* writer) const {
  writer->WriteInt64(embedding_dim_);
  writer->WriteFloatArray(transform_.value().data(),
                          static_cast<size_t>(transform_.value().numel()));
}

bool DynamicRoutingExtractor::Load(util::BinaryReader* reader,
                                   std::string* error) {
  int64_t dim = 0;
  if (!reader->TryReadInt64(&dim)) {
    *error = reader->error();
    return false;
  }
  if (dim != embedding_dim_) {
    *error = "extractor dim mismatch: checkpoint has " +
             std::to_string(dim) + ", model expects " +
             std::to_string(embedding_dim_);
    return false;
  }
  nn::Tensor transform({embedding_dim_, embedding_dim_});
  if (!reader->TryReadFloatArray(transform.data(),
                                 static_cast<size_t>(transform.numel()))) {
    *error = reader->error();
    return false;
  }
  transform_.mutable_value() = std::move(transform);
  return true;
}

void DynamicRoutingExtractor::CopyStateFrom(
    const MultiInterestExtractor& other) {
  const auto& source = dynamic_cast<const DynamicRoutingExtractor&>(other);
  IMSR_CHECK_EQ(source.embedding_dim_, embedding_dim_);
  transform_.mutable_value() = source.transform_.value();
}

}  // namespace imsr::models
